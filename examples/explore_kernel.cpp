// Full MemExplore sweep over any of the built-in benchmark kernels,
// including set associativity and tiling, printing the complete
// design-space table (CSV to stdout with --csv).
//
// Usage: explore_kernel [compress|matmul|pde|sor|dequant|transpose] [--csv]
#include <cstring>
#include <iostream>
#include <string>

#include "memx/core/explorer.hpp"
#include "memx/core/selection.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/report/table.hpp"

namespace {

memx::Kernel kernelByName(const std::string& name) {
  using namespace memx;
  if (name == "compress") return compressKernel();
  if (name == "matmul") return matMulKernel();
  if (name == "pde") return pdeKernel();
  if (name == "sor") return sorKernel();
  if (name == "dequant") return dequantKernel();
  if (name == "transpose") return transposeKernel();
  throw std::invalid_argument("unknown kernel: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace memx;
  std::string name = "compress";
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      name = argv[i];
    }
  }

  Kernel kernel;
  try {
    kernel = kernelByName(name);
  } catch (const std::exception& e) {
    std::cerr << e.what()
              << "\nusage: explore_kernel "
                 "[compress|matmul|pde|sor|dequant|transpose] [--csv]\n";
    return 1;
  }

  ExploreOptions options;
  options.ranges.maxCacheBytes = 1024;
  options.ranges.maxTiling = 16;
  const Explorer explorer(options);
  const ExplorationResult result = explorer.explore(kernel);

  Table table({"config", "T", "L", "S", "B", "miss rate", "cycles",
               "energy (nJ)"});
  for (const DesignPoint& p : result.points) {
    table.addRow({p.label(), std::to_string(p.key.cacheBytes),
                  std::to_string(p.key.lineBytes),
                  std::to_string(p.key.associativity),
                  std::to_string(p.key.tiling), fmtFixed(p.missRate, 4),
                  fmtSig3(p.cycles), fmtSig3(p.energyNj)});
  }
  if (csv) {
    table.writeCsv(std::cout);
  } else {
    std::cout << "kernel " << kernel.name << ": " << result.points.size()
              << " design points\n\n"
              << table << '\n';
    const auto minE = minEnergyPoint(result.points);
    const auto minC = minCyclePoint(result.points);
    std::cout << "min energy: " << minE->label() << " = "
              << fmtSig3(minE->energyNj) << " nJ at "
              << fmtSig3(minE->cycles) << " cycles\n"
              << "min cycles: " << minC->label() << " = "
              << fmtSig3(minC->cycles) << " cycles at "
              << fmtSig3(minC->energyNj) << " nJ\n";
  }
  return 0;
}
