// reproduce_paper — regenerate every exploration the paper's figures are
// built from and archive them as CSV files (one per workload), plus a
// JSON dump of the MPEG composite, into an output directory.
//
// Usage: reproduce_paper [output-dir]   (default: ./paper_results)
#include <filesystem>
#include <fstream>
#include <iostream>

#include "memx/core/selection.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/mpeg/composite.hpp"
#include "memx/report/result_io.hpp"

int main(int argc, char** argv) {
  using namespace memx;
  namespace fs = std::filesystem;

  const fs::path outDir = argc > 1 ? argv[1] : "paper_results";
  fs::create_directories(outDir);

  ExploreOptions options;
  options.ranges.maxCacheBytes = 1024;
  options.ranges.maxTiling = 16;
  const Explorer explorer(options);

  // The five benchmark sweeps behind Figures 1-9.
  for (const Kernel& kernel : paperBenchmarks()) {
    const ExplorationResult result = explorer.explore(kernel);
    const fs::path file = outDir / (kernel.name + ".csv");
    std::ofstream os(file);
    writeResultCsv(os, result);
    const auto minE = minEnergyPoint(result.points);
    const auto minC = minCyclePoint(result.points);
    std::cout << kernel.name << ": " << result.points.size()
              << " points -> " << file.string()
              << "  (min energy " << minE->label() << ", min cycles "
              << minC->label() << ")\n";
  }

  // The Section-5 MPEG composite behind Figure 10.
  ExploreOptions mpegOptions = options;
  mpegOptions.ranges.maxCacheBytes = 512;
  mpegOptions.ranges.maxLineBytes = 16;
  const Explorer mpegExplorer(mpegOptions);
  const CompositeProgram decoder = mpegDecoder();
  const CompositeProgram::Result mpeg = decoder.explore(mpegExplorer);
  {
    std::ofstream os(outDir / "mpeg_combined.csv");
    writeResultCsv(os, mpeg.combined);
  }
  {
    std::ofstream os(outDir / "mpeg_combined.json");
    writeResultJson(os, mpeg.combined);
  }
  for (const ExplorationResult& r : mpeg.perKernel) {
    std::ofstream os(outDir / ("mpeg_" + r.workload + ".csv"));
    writeResultCsv(os, r);
  }
  const auto minE = minEnergyPoint(mpeg.combined.points);
  const auto minC = minCyclePoint(mpeg.combined.points);
  std::cout << "mpeg-decoder: min energy " << minE->label()
            << ", min cycles " << minC->label() << " -> "
            << (outDir / "mpeg_combined.csv").string() << '\n';

  std::cout << "\nAll sweeps archived under " << outDir.string()
            << " — diff two runs to spot regressions.\n";
  return 0;
}
