// Quickstart: explore the data-cache design space of one kernel and pick
// the minimum-energy configuration under a cycle bound.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "memx/core/explorer.hpp"
#include "memx/core/selection.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/report/table.hpp"

int main() {
  using namespace memx;

  // 1. A workload: the paper's Compress kernel (31x31 stencil).
  const Kernel kernel = compressKernel();
  std::cout << "workload: " << kernel.name << ", "
            << kernel.referenceCount() << " references\n\n";

  // 2. Sweep cache size 16..512, line size 4..64 (direct-mapped,
  //    untiled) with the paper's energy/cycle models.
  ExploreOptions options;
  options.ranges.minCacheBytes = 16;
  options.ranges.maxCacheBytes = 512;
  options.ranges.minLineBytes = 4;
  options.ranges.maxLineBytes = 64;
  options.ranges.sweepAssociativity = false;
  options.ranges.sweepTiling = false;
  const Explorer explorer(options);
  const ExplorationResult result = explorer.explore(kernel);

  // 3. Print the Pareto frontier of the energy-time trade-off.
  Table table({"config", "miss rate", "cycles", "energy (nJ)"});
  for (const DesignPoint& p : paretoFront(result.points)) {
    table.addRow({p.label(), fmtFixed(p.missRate, 3), fmtSig3(p.cycles),
                  fmtSig3(p.energyNj)});
  }
  std::cout << "energy-time Pareto frontier:\n" << table << '\n';

  // 4. Bounded selection, exactly like the paper's Figure 4 walkthrough.
  const auto minEnergy = minEnergyPoint(result.points);
  const auto minCycles = minCyclePoint(result.points);
  std::cout << "min-energy config: " << minEnergy->label() << " ("
            << fmtSig3(minEnergy->energyNj) << " nJ)\n";
  std::cout << "min-cycles config: " << minCycles->label() << " ("
            << fmtSig3(minCycles->cycles) << " cycles)\n";

  const double bound = 1.5 * minCycles->cycles;
  const auto bounded = minEnergyPoint(result.points, bound);
  std::cout << "min-energy config with cycles <= " << fmtSig3(bound)
            << ": " << bounded->label() << '\n';
  return 0;
}
