// SoC memory study: one workload, every organization this library can
// model — plain caches across the paper's sweep, higher associativity,
// a victim buffer, next-line prefetching, an L1+L2 stack, and a
// scratchpad split — all reported on the same miss/traffic axes.
//
// Usage: soc_study [kernel]   (default: dequant)
#include <iostream>
#include <string>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/hierarchy.hpp"
#include "memx/cachesim/prefetch.hpp"
#include "memx/cachesim/victim_cache.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/kernels/mpeg_kernels.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/report/table.hpp"
#include "memx/spm/spm_explorer.hpp"

namespace {

using namespace memx;

Kernel pickKernel(const std::string& name) {
  if (name == "compress") return compressKernel(32, 4);
  if (name == "sor") return sorKernel(33, 4);
  if (name == "mpeg-dequant") return mpegDequantKernel();
  return dequantKernel(32, 4);
}

CacheConfig dm(std::uint32_t size, std::uint32_t line,
               std::uint32_t ways = 1) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  c.associativity = ways;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "dequant";
  const Kernel kernel = pickKernel(name);
  const Trace trace = generateTrace(kernel);
  const double n = static_cast<double>(trace.size());

  std::cout << "SoC memory study: " << kernel.name << " ("
            << trace.size() << " references)\n\n";

  Table t({"organization", "miss rate", "off-chip lines/access"});
  auto addSim = [&](const std::string& label, const CacheConfig& c) {
    const CacheStats s = simulateTrace(c, trace);
    t.addRow({label, fmtFixed(s.missRate(), 3),
              fmtFixed(static_cast<double>(s.lineFills) / n, 3)});
  };

  addSim("C64L8 direct-mapped", dm(64, 8));
  addSim("C64L8 4-way", dm(64, 8, 4));
  addSim("C256L8 direct-mapped", dm(256, 8));

  {
    VictimCache vc(dm(64, 8), 4);
    vc.run(trace);
    t.addRow({"C64L8 + 4-entry victim",
              fmtFixed(vc.stats().effectiveMissRate(), 3),
              fmtFixed(static_cast<double>(vc.stats().main.lineFills) / n,
                       3)});
  }
  {
    PrefetchingCache pc(dm(64, 8), PrefetchPolicy::Tagged);
    pc.run(trace);
    t.addRow({"C64L8 + tagged prefetch",
              fmtFixed(pc.stats().demand.missRate(), 3),
              fmtFixed(pc.stats().trafficPerAccess(), 3)});
  }
  {
    CacheHierarchy stack(dm(64, 8), dm(256, 16, 2));
    stack.run(trace);
    t.addRow({"C64L8 + L2 256L16x2",
              fmtFixed(stack.stats().globalMissRate(), 3),
              fmtFixed(static_cast<double>(stack.stats().mainReads) / n,
                       3)});
  }
  {
    const AssignmentPlan plan = assignConflictFree(kernel, dm(64, 8));
    const CacheStats s =
        simulateTrace(dm(64, 8), generateTrace(kernel, plan.layout));
    t.addRow({"C64L8 + 4.1 data layout", fmtFixed(s.missRate(), 3),
              fmtFixed(static_cast<double>(s.lineFills) / n, 3)});
  }
  {
    ScratchpadConfig spm;
    spm.sizeBytes = 128;
    const SplitResult r = evaluateSplit(kernel, spm, dm(64, 8));
    t.addRow({"SPM128 + C64L8 split", fmtFixed(r.cacheMissRate, 3),
              "-"});
  }
  std::cout << t
            << "\nEach row is one answer to the same question the paper "
               "asks: how do we\nspend a few hundred on-chip bytes to "
               "keep this kernel's data close?\n";
  return 0;
}
