// Demonstrates the Section-4.1 off-chip data assignment on the paper's
// two worked examples (Compress row padding, Matrix-Add base staggering)
// and quantifies the conflict misses it removes.
#include <iostream>

#include "memx/cachesim/miss_classifier.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/report/table.hpp"

namespace {

void show(const memx::Kernel& kernel, const memx::CacheConfig& cache) {
  using namespace memx;
  std::cout << "== " << kernel.name << " on " << cache.label() << " ==\n";

  const AssignmentPlan plan = assignConflictFree(kernel, cache);
  Table placement({"array", "base", "row pitch", "padding", "status"});
  for (std::size_t a = 0; a < kernel.arrays.size(); ++a) {
    const ArrayAssignment& asg = plan.arrays[a];
    placement.addRow({kernel.arrays[a].name,
                      std::to_string(asg.baseAddr),
                      asg.rowPitchBytes ? std::to_string(asg.rowPitchBytes)
                                        : "tight",
                      std::to_string(asg.paddingBytes),
                      asg.conflictFree ? "conflict-free" : "best-effort"});
  }
  std::cout << placement;

  const MissBreakdown unopt =
      classifyMisses(cache, generateTrace(kernel, sequentialLayout(kernel)));
  const MissBreakdown opt =
      classifyMisses(cache, generateTrace(kernel, plan.layout));
  Table misses({"layout", "miss rate", "compulsory", "capacity",
                "conflict"});
  misses.addRow({"tight (unoptimized)", fmtFixed(unopt.missRate(), 4),
                 std::to_string(unopt.compulsory),
                 std::to_string(unopt.capacity),
                 std::to_string(unopt.conflict)});
  misses.addRow({"assigned (optimized)", fmtFixed(opt.missRate(), 4),
                 std::to_string(opt.compulsory),
                 std::to_string(opt.capacity),
                 std::to_string(opt.conflict)});
  std::cout << misses << '\n';
}

}  // namespace

int main() {
  using namespace memx;

  // The paper's byte-granular Compress walkthrough: 8-byte cache with
  // 2-byte lines; the assignment pads the row pitch from 32 to 36.
  CacheConfig tiny;
  tiny.sizeBytes = 8;
  tiny.lineBytes = 2;
  show(compressKernel(32, 1), tiny);

  // The Matrix-Add example: three 6x6 byte arrays staggered into
  // distinct line slots.
  CacheConfig small;
  small.sizeBytes = 16;
  small.lineBytes = 2;
  show(matrixAddKernel(6, 1), small);

  // The exploration-sized variant: Compress with int elements.
  CacheConfig c64;
  c64.sizeBytes = 64;
  c64.lineBytes = 8;
  show(compressKernel(), c64);
  show(dequantKernel(), c64);
  return 0;
}
