// memx_cli — command-line front end to the exploration library.
//
//   memx_cli explore <kernel> [--em <nJ>] [--no-layout] [--csv]
//                    [--write-energy] [--backend <auto|multisim|stackdist>]
//                    [--replacement <lru|fifo|plru|random>]
//                    [--search [--joint] [--seed <n>] [--pop <n>]
//                     [--gens <n>] [--budget <n>]]
//   memx_cli explore --trace <din-file[.gz]> [--skip <n>] [--warmup <n>]
//                    [--limit <n>] [common explore flags]
//   memx_cli simulate <din-file[.gz]> --cache <C..L..[S..]>
//                     [--skip <n>] [--warmup <n>] [--limit <n>]
//   memx_cli layout <kernel> --cache <C..L..>
//   memx_cli icache <kernel>
//   memx_cli workingset <kernel> [--line <bytes>]
//   memx_cli spm <kernel> [--budget <bytes>] [--line <bytes>]
//   memx_cli legality <kernel>
//   memx_cli kernels
//   memx_cli serve [--workers <n>] [--queue <n>]
//   memx_cli request '<json-request-line>'
//
// Kernels: compress matmul matadd pde sor dequant transpose lu fir
//          matvec histogram — or a path to a .mx kernel file (see
//          examples/kernels/).
#include <cmath>
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "memx/cachesim/miss_classifier.hpp"
#include "memx/core/selection.hpp"
#include "memx/core/trace_explorer.hpp"
#include "memx/icache/ifetch_model.hpp"
#include "memx/kernels/registry.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/kernel_parser.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/report/table.hpp"
#include "memx/search/front_io.hpp"
#include "memx/serve/server.hpp"
#include "memx/search/nsga.hpp"
#include "memx/spm/spm_explorer.hpp"
#include "memx/trace/din_io.hpp"
#include "memx/trace/file_source.hpp"
#include "memx/trace/working_set.hpp"
#include "memx/util/numeric_io.hpp"
#include "memx/xform/dependence.hpp"

namespace {

using namespace memx;

struct Args {
  std::vector<std::string> positional;
  double em = 4.95;
  bool noLayout = false;
  bool csv = false;
  bool writeEnergy = false;
  std::optional<std::string> cacheLabel;
  std::uint32_t lineBytes = 8;
  SweepBackend backend = SweepBackend::Auto;
  ReplacementPolicy replacement = ReplacementPolicy::LRU;
  bool search = false;
  bool joint = false;
  search::SearchOptions searchOptions;
  std::optional<std::string> traceFile;
  TraceWindow window;
  unsigned workers = 0;
  std::size_t queueCapacity = 64;
};

/// Strict numeric flag parsing, mirroring result_io's discipline: a
/// lenient std::stoul would accept "8x", "-1" (wrapping) or " 12"
/// and silently mis-drive the run. Errors name the flag and the
/// offending value.
std::uint64_t parseFlagUnsigned(const std::string& flag,
                                const std::string& text,
                                std::uint64_t max) {
  const std::string where = flag + " value '" + text + "'";
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(where + ": not an unsigned integer");
  }
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(text, &pos);
    if (pos != text.size() || v > max) {
      throw std::invalid_argument(where + ": out of range");
    }
    return v;
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception&) {
    throw std::invalid_argument(where + ": out of range");
  }
}

ReplacementPolicy parseReplacementFlag(const std::string& text) {
  if (text == "lru") return ReplacementPolicy::LRU;
  if (text == "fifo") return ReplacementPolicy::FIFO;
  if (text == "plru") return ReplacementPolicy::TreePLRU;
  if (text == "random") return ReplacementPolicy::Random;
  throw std::invalid_argument("unknown replacement policy '" + text +
                              "' (expected lru, fifo, plru or random)");
}

double parseFlagDouble(const std::string& flag, const std::string& text) {
  const auto v = parseDoubleText(text);
  if (!v) {
    throw std::invalid_argument(flag + " value '" + text +
                                "': not a finite number");
  }
  return *v;
}

Args parseArgs(int argc, char** argv) {
  constexpr std::uint64_t kU32 = 0xffffffffull;
  constexpr std::uint64_t kU64 = ~0ull;
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--em") {
      args.em = parseFlagDouble(arg, value());
    } else if (arg == "--no-layout") {
      args.noLayout = true;
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--write-energy") {
      args.writeEnergy = true;
    } else if (arg == "--cache") {
      args.cacheLabel = value();
    } else if (arg == "--line") {
      args.lineBytes =
          static_cast<std::uint32_t>(parseFlagUnsigned(arg, value(), kU32));
    } else if (arg == "--backend") {
      args.backend = parseSweepBackend(value());
    } else if (arg == "--replacement") {
      args.replacement = parseReplacementFlag(value());
    } else if (arg == "--search") {
      args.search = true;
    } else if (arg == "--joint") {
      args.joint = true;
    } else if (arg == "--seed") {
      args.searchOptions.seed = parseFlagUnsigned(arg, value(), kU64);
    } else if (arg == "--pop") {
      args.searchOptions.populationSize =
          static_cast<std::uint32_t>(parseFlagUnsigned(arg, value(), kU32));
    } else if (arg == "--gens") {
      args.searchOptions.generations =
          static_cast<std::uint32_t>(parseFlagUnsigned(arg, value(), kU32));
    } else if (arg == "--budget") {
      args.searchOptions.maxEvaluations =
          parseFlagUnsigned(arg, value(), kU64);
    } else if (arg == "--workers") {
      args.workers =
          static_cast<unsigned>(parseFlagUnsigned(arg, value(), 1024));
    } else if (arg == "--queue") {
      args.queueCapacity = static_cast<std::size_t>(
          parseFlagUnsigned(arg, value(), 1u << 20));
    } else if (arg == "--trace") {
      args.traceFile = value();
    } else if (arg == "--skip") {
      args.window.skip = parseFlagUnsigned(arg, value(), kU64);
    } else if (arg == "--warmup") {
      args.window.warmup = parseFlagUnsigned(arg, value(), kU64);
    } else if (arg == "--limit") {
      args.window.limit = parseFlagUnsigned(arg, value(), kU64);
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

void emitResult(const ExplorationResult& result, bool csv) {
  Table t({"config", "miss rate", "cycles", "energy (nJ)"});
  for (const DesignPoint& p : result.points) {
    t.addRow({p.label(), fmtFixed(p.missRate, 4), fmtSig3(p.cycles),
              fmtSig3(p.energyNj)});
  }
  if (csv) {
    t.writeCsv(std::cout);
    return;
  }
  std::cout << t;
  const auto minE = minEnergyPoint(result.points);
  const auto minC = minCyclePoint(result.points);
  std::cout << "\nmin energy: " << minE->label() << " ("
            << fmtSig3(minE->energyNj) << " nJ)\n"
            << "min cycles: " << minC->label() << " ("
            << fmtSig3(minC->cycles) << ")\n";
}

void emitFront(const search::SearchResult& result, bool csv) {
  if (csv) {
    std::vector<search::FrontRow> rows;
    rows.reserve(result.front.size());
    for (const search::SearchPoint& p : result.front) {
      rows.push_back(search::toFrontRow(result.workload, p));
    }
    search::writeFrontCsv(std::cout, rows);
    return;
  }
  Table t({"config", "policies", "layout", "L2", "energy (nJ)", "cycles",
           "size (RBE)"});
  for (const search::SearchPoint& p : result.front) {
    t.addRow({p.decoded.key.label(),
              std::string(toString(p.decoded.replacement)) + "/" +
                  toString(p.decoded.writePolicy),
              p.decoded.optimizeLayout ? "opt" : "tight",
              p.decoded.l2 ? p.decoded.l2->label() : "-",
              fmtSig3(p.objectives[0]), fmtSig3(p.objectives[1]),
              fmtSig3(p.objectives[2])});
  }
  std::cout << t << "\nfront: " << result.front.size() << " points, "
            << result.evaluations << " evaluations (" << result.cacheHits
            << " cache hits) over " << result.spaceSize
            << "-genome space in " << result.generations
            << " generations; " << (result.exact ? "exact" : "approximate")
            << '\n';
}

int cmdExplore(const Args& args) {
  if (args.traceFile) {
    // Trace mode: sweep (L, S) over a recorded din stream, pulled from
    // disk in bounded-memory chunks (gzip inflated on the fly).
    ExploreOptions options;
    options.energy.emNj = args.em;
    options.includeWriteEnergy = args.writeEnergy;
    options.backend = args.backend;
    options.replacement = args.replacement;
    FileTraceSource source(*args.traceFile);
    const ExplorationResult result =
        exploreTrace(*args.traceFile, source, options, args.window);
    const IngestStats ingest = source.ingest();
    emitResult(result, args.csv);
    if (!args.csv) {
      std::cout << "ingested: " << ingest.refsDecoded << " references, "
                << ingest.bytesRead << " file bytes\n";
    }
    return 0;
  }
  const Kernel kernel = kernelByNameOrPath(args.positional.at(1));
  ExploreOptions options;
  options.energy.emNj = args.em;
  options.optimizeLayout = !args.noLayout;
  // Write-back is the default write policy, so --write-energy exercises
  // the writeback-charging metric — served analytically by the
  // stackdist backend via its dirty-stack accounting.
  options.includeWriteEnergy = args.writeEnergy;
  options.backend = args.backend;
  // Any deterministic policy may force the analytic backend: LRU rides
  // the Hill-Smith profile, FIFO/PLRU the single-pass policy grid.
  options.replacement = args.replacement;
  const Explorer explorer(options);
  if (args.search) {
    search::SearchOptions searchOptions = args.searchOptions;
    if (args.joint) {
      // Joint space: every replacement and write policy, both layout
      // choices, and an optional L2 at 4x the largest L1 capacity.
      search::DesignSpaceOptions space;
      space.ranges = options.ranges;
      space.replacements = {
          ReplacementPolicy::LRU, ReplacementPolicy::FIFO,
          ReplacementPolicy::Random, ReplacementPolicy::TreePLRU};
      space.writePolicies = {WritePolicy::WriteBack,
                             WritePolicy::WriteThrough};
      space.sweepLayout = true;
      space.l2CapacityBytes = {4 * space.ranges.maxCacheBytes};
      searchOptions.space = space;
    }
    emitFront(explorer.searchPareto(kernel, searchOptions), args.csv);
    return 0;
  }
  emitResult(explorer.explore(kernel), args.csv);
  return 0;
}

int cmdSimulate(const Args& args) {
  if (!args.cacheLabel) {
    throw std::invalid_argument("simulate requires --cache <label>");
  }
  const std::string& path =
      args.traceFile ? *args.traceFile : args.positional.at(1);
  const CacheConfig cache = parseCacheLabel(*args.cacheLabel);
  ExploreOptions options;
  options.energy.emNj = args.em;
  // Streamed: the trace never materializes, so multi-hundred-MB files
  // (plain or .gz) simulate in bounded memory.
  FileTraceSource source(path);
  const DesignPoint p =
      evaluateTracePoint(source, cache, options, args.window);
  const IngestStats ingest = source.ingest();
  std::cout << "trace: " << p.accesses << " counted references ("
            << ingest.refsDecoded << " decoded, " << ingest.bytesRead
            << " file bytes)\n"
            << "cache: " << cache.label() << "\n"
            << "miss rate: " << fmtFixed(p.missRate, 4) << "\n"
            << "cycles: " << fmtSig3(p.cycles) << "\n"
            << "energy: " << fmtSig3(p.energyNj) << " nJ\n";
  return 0;
}

int cmdLayout(const Args& args) {
  const Kernel kernel = kernelByNameOrPath(args.positional.at(1));
  const CacheConfig cache =
      parseCacheLabel(args.cacheLabel.value_or("C64L8"));
  const AssignmentPlan plan = assignConflictFree(kernel, cache);
  Table t({"array", "base", "row pitch", "padding", "status"});
  for (std::size_t a = 0; a < kernel.arrays.size(); ++a) {
    t.addRow({kernel.arrays[a].name,
              std::to_string(plan.arrays[a].baseAddr),
              plan.arrays[a].rowPitchBytes
                  ? std::to_string(plan.arrays[a].rowPitchBytes)
                  : "tight",
              std::to_string(plan.arrays[a].paddingBytes),
              plan.arrays[a].conflictFree ? "conflict-free"
                                          : "best-effort"});
  }
  std::cout << t;
  const MissBreakdown unopt = classifyMisses(
      cache, generateTrace(kernel, sequentialLayout(kernel)));
  const MissBreakdown opt =
      classifyMisses(cache, generateTrace(kernel, plan.layout));
  std::cout << "\nmiss rate: " << fmtFixed(unopt.missRate(), 4)
            << " (tight) -> " << fmtFixed(opt.missRate(), 4)
            << " (assigned); conflicts " << unopt.conflict << " -> "
            << opt.conflict << '\n';
  return 0;
}

int cmdIcache(const Args& args) {
  const Kernel kernel = kernelByNameOrPath(args.positional.at(1));
  const InstructionLayout layout;
  const Trace fetches = generateIFetchTrace(kernel, layout);
  ExploreOptions options;
  options.ranges.minCacheBytes = 32;
  options.ranges.maxAssociativity = 2;
  emitResult(exploreTrace("icache-" + kernel.name, fetches, options),
             args.csv);
  return 0;
}

int cmdWorkingSet(const Args& args) {
  const Kernel kernel = kernelByNameOrPath(args.positional.at(1));
  const ReuseProfile profile(generateTrace(kernel), args.lineBytes);
  Table t({"lines", "predicted fully-assoc miss rate"});
  for (std::uint64_t lines = 1; lines <= profile.uniqueLines();
       lines *= 2) {
    t.addRow({std::to_string(lines),
              fmtFixed(profile.predictedMissRate(lines), 4)});
  }
  std::cout << t << "\n90%-hit working set: "
            << profile.linesForHitRate(0.9) << " lines of "
            << args.lineBytes << " bytes\n";
  return 0;
}

int cmdSpm(const Args& args) {
  const Kernel kernel = kernelByNameOrPath(args.positional.at(1));
  const std::uint32_t budget = args.cacheLabel
                                   ? parseCacheLabel(*args.cacheLabel)
                                         .sizeBytes
                                   : 512;
  Table t({"split", "SPM arrays", "cache miss rate", "cycles",
           "energy (nJ)"});
  for (const SplitResult& r :
       exploreBudgetSplits(kernel, budget, args.lineBytes)) {
    std::string arrays;
    for (const std::string& a : r.spmArrays) {
      if (!arrays.empty()) arrays += ",";
      arrays += a;
    }
    t.addRow({r.label(), arrays.empty() ? "-" : arrays,
              fmtFixed(r.cacheMissRate, 4), fmtSig3(r.cycles),
              fmtSig3(r.energyNj)});
  }
  std::cout << t;
  return 0;
}

int cmdLegality(const Args& args) {
  const Kernel kernel = kernelByNameOrPath(args.positional.at(1));
  Table t({"transform", "legal"});
  if (kernel.nest.depth() >= 2) {
    t.addRow({"tile2D", tilingIsLegal(kernel) ? "yes" : "no"});
    t.addRow({"interchange(0,1)",
              interchangeIsLegal(kernel, 0, 1) ? "yes" : "no"});
  } else {
    t.addRow({"tile2D", "n/a (1-deep nest)"});
  }
  std::cout << t;
  Table deps({"kind", "src", "dst", "distance"});
  for (const Dependence& d : computeDependences(kernel)) {
    std::string dist = "(";
    for (std::size_t i = 0; i < d.distance.size(); ++i) {
      if (i) dist += ",";
      dist += d.distance[i].known()
                  ? std::to_string(*d.distance[i].value)
                  : std::string("*");
    }
    dist += ")";
    deps.addRow({toString(d.kind), std::to_string(d.srcAccess),
                 std::to_string(d.dstAccess), dist});
  }
  std::cout << "\ndependences:\n" << deps;
  return 0;
}

serve::Server* gServeServer = nullptr;

extern "C" void memxCliOnSignal(int) {
  // Async-signal-safe: only sets relaxed atomic flags. The blocked
  // stdin read returns EINTR (the handler is installed without
  // SA_RESTART), the reader loop observes the drain flag, in-flight
  // requests finish, and queued ones get a clean shutdown error.
  if (gServeServer != nullptr) gServeServer->requestDrain();
}

int cmdServe(const Args& args) {
  serve::ServerOptions options;
  options.workers = args.workers;
  options.queueCapacity = args.queueCapacity;
  serve::Server server(options);
  gServeServer = &server;
  struct sigaction action = {};
  action.sa_handler = memxCliOnSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  server.run(std::cin, std::cout);
  gServeServer = nullptr;
  return 0;
}

int cmdRequest(const Args& args) {
  // One-shot client mode: process a single request line in-process and
  // print the response — the protocol without the long-running server.
  serve::Server server;
  const std::string response = server.handleLine(args.positional.at(1));
  std::cout << response << '\n';
  // Exit nonzero on an error response so shell pipelines can branch.
  return response.find("\"ok\":true") != std::string::npos ? 0 : 1;
}

int run(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  if (args.positional.empty()) {
    std::cerr << "usage: memx_cli "
                 "<explore|simulate|layout|icache|workingset|spm|"
                 "legality|kernels|serve|request> "
                 "...\n";
    return 2;
  }
  const std::string& cmd = args.positional.front();
  if (cmd == "serve") return cmdServe(args);
  if (cmd == "kernels") {
    for (const std::string& k : kernelRegistryNames()) std::cout << k << '\n';
    return 0;
  }
  // explore/simulate take their input from --trace instead of a
  // positional argument when given.
  const bool traceDriven =
      args.traceFile && (cmd == "explore" || cmd == "simulate");
  if (args.positional.size() < 2 && !traceDriven) {
    throw std::invalid_argument(cmd + " requires an argument");
  }
  if (cmd == "request") return cmdRequest(args);
  if (cmd == "explore") return cmdExplore(args);
  if (cmd == "spm") return cmdSpm(args);
  if (cmd == "legality") return cmdLegality(args);
  if (cmd == "simulate") return cmdSimulate(args);
  if (cmd == "layout") return cmdLayout(args);
  if (cmd == "icache") return cmdIcache(args);
  if (cmd == "workingset") return cmdWorkingSet(args);
  throw std::invalid_argument("unknown command '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "memx_cli: " << e.what() << '\n';
    return 1;
  }
}
