// The Section-5 MPEG decoder case study: per-kernel minimum-energy
// configurations (Figure 10) and the whole-program optimum, showing the
// paper's headline result that they differ.
#include <iostream>

#include "memx/core/selection.hpp"
#include "memx/mpeg/composite.hpp"
#include "memx/report/table.hpp"

int main() {
  using namespace memx;

  ExploreOptions options;
  options.ranges.minCacheBytes = 16;
  options.ranges.maxCacheBytes = 512;
  options.ranges.minLineBytes = 4;
  options.ranges.maxLineBytes = 16;
  options.ranges.maxAssociativity = 8;
  options.ranges.maxTiling = 16;
  const Explorer explorer(options);

  const CompositeProgram decoder = mpegDecoder();
  std::cout << "exploring " << decoder.kernelCount()
            << " MPEG kernels over " << explorer.sweepKeys().size()
            << " configurations each...\n\n";
  const CompositeProgram::Result result = decoder.explore(explorer);

  Table perKernel({"kernel", "trips", "min-energy config", "energy (nJ)",
                   "cycles"});
  for (std::size_t j = 0; j < result.perKernel.size(); ++j) {
    const auto best = minEnergyPoint(result.perKernel[j].points);
    perKernel.addRow({result.perKernel[j].workload,
                      std::to_string(result.tripCounts[j]), best->label(),
                      fmtSig3(best->energyNj), fmtSig3(best->cycles)});
  }
  std::cout << "Figure 10 - per-kernel minimum-energy configurations:\n"
            << perKernel << '\n';

  const auto minE = minEnergyPoint(result.combined.points);
  const auto minC = minCyclePoint(result.combined.points);
  Table program({"objective", "config", "energy (nJ)", "cycles"});
  program.addRow({"min energy", minE->label(), fmtSig3(minE->energyNj),
                  fmtSig3(minE->cycles)});
  program.addRow({"min cycles", minC->label(), fmtSig3(minC->energyNj),
                  fmtSig3(minC->cycles)});
  std::cout << "whole-program optima (trip-weighted):\n" << program << '\n';

  if (minE->key != minC->key) {
    std::cout << "As in the paper, the minimum-energy configuration "
                 "differs from the minimum-cycles configuration.\n";
  }
  return 0;
}
