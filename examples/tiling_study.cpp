// Tiling study (Section 4.2): how miss rate, cycles and energy respond to
// the tiling size on the transpose kernel (the paper's Example 3) and on
// the five benchmark kernels at C64L8.
#include <iostream>

#include "memx/core/explorer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/report/table.hpp"

int main() {
  using namespace memx;

  ExploreOptions options;
  const Explorer explorer(options);
  CacheConfig cache;
  cache.sizeBytes = 64;
  cache.lineBytes = 8;  // 8 lines: the paper's predicted sweet spot

  std::vector<Kernel> kernels = paperBenchmarks();
  kernels.push_back(transposeKernel(32));

  for (const Kernel& kernel : kernels) {
    Table t({"tiling B", "miss rate", "cycles", "energy (nJ)"});
    for (const std::uint32_t b : {1u, 2u, 4u, 8u, 16u}) {
      const DesignPoint p = explorer.evaluate(kernel, cache, b);
      t.addRow({std::to_string(b), fmtFixed(p.missRate, 4),
                fmtSig3(p.cycles), fmtSig3(p.energyNj)});
    }
    std::cout << "== " << kernel.name << " at " << cache.label()
              << " ==\n"
              << t << '\n';
  }
  std::cout << "The paper's guidance: for low energy, choose a tiling "
               "size no larger than the number of cache lines.\n";
  return 0;
}
