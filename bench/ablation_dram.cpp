// Ablation: the paper's flat per-access Em vs a row-buffer memory.
//
// The paper charges Em for every main-memory access regardless of
// address. A page-mode part charges rowHit or rowMiss depending on
// locality in the *miss stream* — which the cache configuration itself
// shapes: bigger lines make the miss stream more sequential. The
// equivalent-Em column shows what constant the paper's model would need
// per configuration to match.
#include "bench_util.hpp"

#include "memx/energy/dram_model.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: row-buffer memory vs flat Em (miss streams of the "
          "five kernels)");
  Table t({"kernel", "cache", "row-hit rate", "memory energy (nJ)",
           "equivalent Em (nJ)"});
  for (const Kernel& k : paperBenchmarks()) {
    for (const auto& [size, line] :
         {std::pair{64u, 8u}, std::pair{64u, 32u}}) {
      const DramStats s =
          replayMissStream(dm(size, line), generateTrace(k));
      const double equivalentEm =
          s.energyNj / std::max<double>(static_cast<double>(s.accesses),
                                        1.0);
      t.addRow({k.name, dm(size, line).label(),
                fmtFixed(s.rowHitRate(), 3), fmtSig3(s.energyNj),
                fmtFixed(equivalentEm, 2)});
    }
  }
  std::cout << t;
  std::cout << "\nLarger lines raise the row-hit rate of the miss stream "
               "and so LOWER the\nper-access memory energy — a coupling "
               "the paper's constant Em cannot\nexpress; with page-mode "
               "parts the Em * L penalty for long lines is\noverstated.\n";
}

void BM_DramReplay(benchmark::State& state) {
  const Trace trace = generateTrace(sorKernel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(replayMissStream(dm(64, 8), trace));
  }
}
BENCHMARK(BM_DramReplay);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
