// Ablation: the paper's closed-form miss-rate expressions vs the
// trace-driven simulator. The authors chose analytical expressions over
// porting to Dinero; this quantifies what that choice costs in accuracy.
#include "bench_util.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/core/analytic_model.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: analytic miss-rate model vs trace-driven simulation");
  Table t({"kernel", "config", "analytic", "simulated", "abs error"});
  for (const Kernel& k : paperBenchmarks()) {
    for (const auto& [size, line] :
         {std::pair{64u, 8u}, std::pair{256u, 16u}}) {
      const CacheConfig cache = dm(size, line);
      const AssignmentPlan plan = assignConflictFree(k, cache);
      const double sim =
          simulateTrace(cache, generateTrace(k, plan.layout)).missRate();
      const double analytic = analyticMissRate(k, cache, plan.complete);
      t.addRow({k.name, cache.label(), fmtFixed(analytic, 4),
                fmtFixed(sim, 4), fmtFixed(std::abs(analytic - sim), 4)});
    }
  }
  std::cout << t;
  std::cout << "\nThe closed form tracks the simulator on streaming "
               "kernels and drifts on\nkernels with cross-iteration "
               "temporal reuse the expressions do not see\n(the paper's "
               "matmul), motivating the simulator this library adds.\n";
}

void BM_AnalyticModel(benchmark::State& state) {
  const Kernel k = matMulKernel();
  const CacheConfig cache = dm(64, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyticMissRate(k, cache, true));
  }
}
BENCHMARK(BM_AnalyticModel);

void BM_SimulatedModel(benchmark::State& state) {
  const Kernel k = matMulKernel();
  const CacheConfig cache = dm(64, 8);
  const Trace trace = generateTrace(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulateTrace(cache, trace));
  }
}
BENCHMARK(BM_SimulatedModel);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
