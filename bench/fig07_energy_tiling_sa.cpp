// Figure 7: Compress and Dequant — energy vs tiling size (T1..T16) and
// energy vs set associativity (SA1..SA8), both at C64L8, Em = 4.95 nJ.
#include "bench_util.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  const Explorer ex(paperOptions());
  const std::vector<Kernel> kernels = {compressKernel(), dequantKernel()};

  section("Figure 7a: energy (nJ) vs tiling size, C64L8");
  Table tiling({"kernel", "T1", "T2", "T4", "T8", "T16"});
  for (const Kernel& k : kernels) {
    std::vector<std::string> row{k.name};
    for (const std::uint32_t b : {1u, 2u, 4u, 8u, 16u}) {
      row.push_back(fmtSig3(ex.evaluate(k, dm(64, 8), b).energyNj));
    }
    tiling.addRow(std::move(row));
  }
  std::cout << tiling;

  section("Figure 7b: energy (nJ) vs set associativity, C64L8");
  Table assoc({"kernel", "SA1", "SA2", "SA4", "SA8"});
  for (const Kernel& k : kernels) {
    std::vector<std::string> row{k.name};
    for (const std::uint32_t s : {1u, 2u, 4u, 8u}) {
      row.push_back(fmtSig3(ex.evaluate(k, dm(64, 8, s)).energyNj));
    }
    assoc.addRow(std::move(row));
  }
  std::cout << assoc;
}

void BM_AssocEvaluate(benchmark::State& state) {
  const Explorer ex(paperOptions());
  const Kernel k = compressKernel();
  const auto s = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.evaluate(k, dm(64, 8, s)));
  }
}
BENCHMARK(BM_AssocEvaluate)->Arg(1)->Arg(8);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
