// Serve-layer speed gate: the second identical request must come from
// the result store, not from a re-simulation. Runs an in-process
// serve::Server (no sockets; the same handleLine path the NDJSON loop
// uses), issues the same explore request twice plus a narrower subset
// request, and gates, each fatal:
//
//   * bit-identity: the served CSV equals toCsvString() of the same
//     exploration called directly through Explorer::explore, for both
//     the wide and the subset request,
//   * store counters: exactly one miss (the first request), one exact
//     hit (the repeat), one subset hit (the narrow request re-selected
//     from the wide sweep),
//   * speedup: the cached repeat answers >= 5x faster than the first
//     computation (the real ratio is orders of magnitude).
//
// Writes BENCH_serve_speed.json. Plain main (no google-benchmark): the
// first request does a full sweep, far above scheduler noise; the
// cached path is timed over many repeats and reported per request.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "memx/core/explorer.hpp"
#include "memx/kernels/registry.hpp"
#include "memx/report/result_io.hpp"
#include "memx/serve/json.hpp"
#include "memx/serve/server.hpp"
#include "memx/util/numeric_io.hpp"

namespace {

using memx::serve::JsonValue;

double seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

const JsonValue& field(const JsonValue& v, const std::string& key) {
  return v.asObject().at(key);
}

}  // namespace

int main() {
  // A sweep big enough that computation dominates request handling.
  const char* kWideRequest =
      R"({"id":"wide","op":"explore","workload":"compress","options":{)"
      R"("ranges":{"on_chip_bytes":2048,"max_cache_bytes":2048,)"
      R"("max_line_bytes":64,"max_associativity":4,"max_tiling":8}},)"
      R"("include_points":true})";
  const char* kNarrowRequest =
      R"({"id":"narrow","op":"explore","workload":"compress","options":{)"
      R"("ranges":{"on_chip_bytes":512,"max_cache_bytes":512,)"
      R"("max_line_bytes":32,"max_associativity":2,"max_tiling":4}},)"
      R"("include_points":true})";

  memx::serve::Server server;

  const auto t0 = std::chrono::steady_clock::now();
  const JsonValue first = JsonValue::parse(server.handleLine(kWideRequest));
  const auto t1 = std::chrono::steady_clock::now();
  const double coldSec = seconds(t0, t1);
  if (!field(first, "ok").asBool()) {
    std::cerr << "GATE: first request failed: " << first.dump() << '\n';
    return 1;
  }

  // Cached repeats: time several and report the mean.
  constexpr int kRepeats = 20;
  const auto t2 = std::chrono::steady_clock::now();
  JsonValue second;
  for (int i = 0; i < kRepeats; ++i) {
    second = JsonValue::parse(server.handleLine(kWideRequest));
  }
  const auto t3 = std::chrono::steady_clock::now();
  const double warmSec = seconds(t2, t3) / kRepeats;

  const JsonValue narrow =
      JsonValue::parse(server.handleLine(kNarrowRequest));

  // --- bit-identity against direct library calls ------------------
  memx::ExploreOptions wide;
  wide.ranges.onChipBytes = 2048;
  wide.ranges.maxCacheBytes = 2048;
  wide.ranges.maxLineBytes = 64;
  wide.ranges.maxAssociativity = 4;
  wide.ranges.maxTiling = 8;
  memx::ExploreOptions sub;
  sub.ranges.onChipBytes = 512;
  sub.ranges.maxCacheBytes = 512;
  sub.ranges.maxLineBytes = 32;
  sub.ranges.maxAssociativity = 2;
  sub.ranges.maxTiling = 4;
  const memx::Kernel kernel = memx::registeredKernel("compress");
  const std::string wideCsv =
      memx::toCsvString(memx::Explorer(wide).explore(kernel));
  const std::string narrowCsv =
      memx::toCsvString(memx::Explorer(sub).explore(kernel));

  bool identical = field(first, "csv").asString() == wideCsv &&
                   field(second, "csv").asString() == wideCsv &&
                   field(narrow, "csv").asString() == narrowCsv;
  if (!identical) {
    std::cerr << "GATE: served CSV differs from the direct exploration\n";
  }

  // --- store counters ---------------------------------------------
  const auto counters = server.store().counters();
  const bool countersOk =
      counters.misses == 1 && counters.subsetHits == 1 &&
      counters.hits == static_cast<std::uint64_t>(kRepeats) &&
      !field(first, "cached").asBool() &&
      field(second, "cached").asBool() && field(narrow, "subset").asBool();
  if (!countersOk) {
    std::cerr << "GATE: store counters off: misses=" << counters.misses
              << " hits=" << counters.hits
              << " subset_hits=" << counters.subsetHits << '\n';
  }

  // --- speedup ----------------------------------------------------
  const double speedup = warmSec > 0 ? coldSec / warmSec : 1e9;
  const bool fastEnough = speedup >= 5.0;
  if (!fastEnough) {
    std::cerr << "GATE: cached speedup " << speedup
              << "x is below the 5x floor (cold " << coldSec << "s, warm "
              << warmSec << "s)\n";
  }

  const bool ok = identical && countersOk && fastEnough;
  std::cout << "serve_speed: cold " << coldSec << " s, warm " << warmSec
            << " s/request, speedup " << speedup << "x, store misses "
            << counters.misses << " hits " << counters.hits
            << " subset_hits " << counters.subsetHits
            << (ok ? "  [gates ok]\n" : "  [GATES FAILED]\n");

  std::ofstream json("BENCH_serve_speed.json");
  json << "{\"workload\": \"compress\""
       << ", \"cold_seconds\": " << memx::formatDouble17(coldSec)
       << ", \"warm_seconds_per_request\": " << memx::formatDouble17(warmSec)
       << ", \"speedup\": " << memx::formatDouble17(speedup)
       << ", \"store_misses\": " << counters.misses
       << ", \"store_hits\": " << counters.hits
       << ", \"store_subset_hits\": " << counters.subsetHits
       << ", \"bit_identical\": " << (identical ? "true" : "false")
       << ", \"gates_ok\": " << (ok ? "true" : "false") << "}\n";
  return ok ? 0 : 1;
}
