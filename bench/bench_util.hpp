// Shared helpers for the figure-regeneration benches.
//
// Every bench binary prints its paper table(s) first (the reproduction
// artifact), then runs its google-benchmark timings (the performance
// artifact). Run all of them with:  for b in build/bench/*; do $b; done
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "memx/core/explorer.hpp"
#include "memx/core/selection.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/report/table.hpp"

namespace memx::bench {

/// Explorer options matching the paper's main experimental setup
/// (Em = 4.95 nJ Cypress part, Section-4.1 layout applied).
inline ExploreOptions paperOptions(double emNj = 4.95,
                                   bool optimizeLayout = true) {
  ExploreOptions o;
  o.ranges.minCacheBytes = 16;
  o.ranges.maxCacheBytes = 1024;
  o.ranges.minLineBytes = 4;
  o.ranges.maxLineBytes = 64;
  o.ranges.maxAssociativity = 8;
  o.ranges.maxTiling = 16;
  o.energy.emNj = emNj;
  o.optimizeLayout = optimizeLayout;
  return o;
}

/// Direct-mapped cache configuration shorthand.
inline CacheConfig dm(std::uint32_t size, std::uint32_t line,
                      std::uint32_t ways = 1) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  c.associativity = ways;
  return c;
}

/// Print a titled section.
inline void section(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Emit one instrumented run's RunReport: print the human-readable
/// summary, append the report object under a "report" key into the
/// BENCH_*.json stream (callers write the surrounding object), and dump
/// the chrome://tracing timeline next to it.
inline void emitRunReport(const memx::obs::RunReport& report,
                          std::ostream& benchJson,
                          const std::string& tracePath) {
  std::cout << '\n' << report.summary();
  benchJson << ", \"report\": ";
  report.writeJson(benchJson);
  std::ofstream trace(tracePath);
  report.writeChromeTrace(trace);
  std::cout << "trace-event timeline written to " << tracePath
            << " (load via chrome://tracing or ui.perfetto.dev)\n";
}

/// Standard bench main: print the figure, then run the timings.
#define MEMX_BENCH_MAIN(printFigure)                       \
  int main(int argc, char** argv) {                        \
    printFigure();                                         \
    ::benchmark::Initialize(&argc, argv);                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                 \
    ::benchmark::Shutdown();                               \
    return 0;                                              \
  }

}  // namespace memx::bench
