// Figure 3: Compress — variation in the number of processor cycles for
// different cache sizes (32..512) and line sizes (4..64), keeping at
// least 4 cache lines, Em = 4.95 nJ.
#include "bench_util.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Figure 3: Compress cycles vs (C, L), >= 4 cache lines");
  const Explorer ex(paperOptions());
  const Kernel k = compressKernel();
  Table t({"cache", "L4", "L8", "L16", "L32", "L64"});
  for (const std::uint32_t size : {32u, 64u, 128u, 256u, 512u}) {
    std::vector<std::string> row{"C" + std::to_string(size)};
    for (const std::uint32_t line : {4u, 8u, 16u, 32u, 64u}) {
      if (line > size / 4) {
        row.push_back("-");
        continue;
      }
      row.push_back(fmtSig3(ex.evaluate(k, dm(size, line)).cycles));
    }
    t.addRow(std::move(row));
  }
  std::cout << t;
  std::cout << "\nCycles fall monotonically toward large caches with "
               "large lines;\nthe minimum-time configuration sits at the "
               "bottom-right of the grid.\n";
}

void BM_CompressTraceSimC512L64(benchmark::State& state) {
  const Explorer ex(paperOptions());
  const Kernel k = compressKernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.evaluate(k, dm(512, 64)));
  }
}
BENCHMARK(BM_CompressTraceSimC512L64);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
