// Section 5: whole-program MPEG decoder exploration. The paper's
// headline numbers: minimum-energy configuration (C64, L4, 8-way, T16)
// vs minimum-cycles configuration (C512, L16, 8-way, T8) — the two are
// different configurations, and both differ from the per-kernel optima.
#include "bench_util.hpp"

#include "memx/mpeg/composite.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

ExploreOptions mpegOptions() {
  ExploreOptions o = paperOptions();
  o.ranges.maxCacheBytes = 512;
  o.ranges.maxLineBytes = 16;
  o.ranges.maxTiling = 16;
  return o;
}

void printFigure() {
  section("Section 5: MPEG decoder whole-program exploration");
  const Explorer ex(mpegOptions());
  const CompositeProgram decoder = mpegDecoder();
  const CompositeProgram::Result r = decoder.explore(ex);

  const auto minE = minEnergyPoint(r.combined.points);
  const auto minC = minCyclePoint(r.combined.points);

  Table t({"objective", "config", "energy (nJ)", "cycles", "miss rate"});
  t.addRow({"minimum energy", minE->label(), fmtSig3(minE->energyNj),
            fmtSig3(minE->cycles), fmtFixed(minE->missRate, 3)});
  t.addRow({"minimum cycles", minC->label(), fmtSig3(minC->energyNj),
            fmtSig3(minC->cycles), fmtFixed(minC->missRate, 3)});
  std::cout << t;

  std::cout << "\npaper reference: min-energy C64 L4 SA8 T16 "
               "(293,000 nJ; 142,000 cycles)\n"
               "                 min-cycles C512 L16 SA8 T8 "
               "(1,110,000 nJ; 121,000 cycles)\n";
  std::cout << (minE->key != minC->key
                    ? "\nReproduced: the two objectives select different "
                      "configurations.\n"
                    : "\n!! expected the objectives to differ\n");

  // Per-kernel optima differ from the whole-program optimum.
  bool anyMatchesComposite = false;
  for (std::size_t j = 0; j < r.perKernel.size(); ++j) {
    const auto kernelBest = minEnergyPoint(r.perKernel[j].points);
    if (kernelBest->key == minE->key) anyMatchesComposite = true;
  }
  std::cout << (anyMatchesComposite
                    ? "note: one kernel's optimum coincides with the "
                      "composite optimum in this run\n"
                    : "Reproduced: no per-kernel optimum equals the "
                      "whole-program optimum.\n");
}

void BM_WholeDecoderSweep(benchmark::State& state) {
  ExploreOptions o = mpegOptions();
  o.ranges.maxCacheBytes = 128;
  o.ranges.maxTiling = 4;
  const CompositeProgram decoder = mpegDecoder();
  for (auto _ : state) {
    const Explorer ex(o);
    benchmark::DoNotOptimize(decoder.explore(ex));
  }
}
BENCHMARK(BM_WholeDecoderSweep);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
