// Ablation: tag-array read energy.
//
// The paper (following Kamble-Ghose) drops tag and comparator energy
// from its model. This ablation turns the tag-array term on and
// measures how much the per-configuration energies — and, more
// importantly, the *selected* configuration — change.
#include "bench_util.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: tag-array energy on vs off (Compress sweep)");
  ExploreOptions off = paperOptions();
  off.ranges.sweepAssociativity = false;
  off.ranges.sweepTiling = false;
  ExploreOptions on = off;
  on.energy.includeTagArray = true;

  const Kernel k = compressKernel();
  const Explorer exOff(off);
  const Explorer exOn(on);

  Table t({"config", "energy w/o tags", "energy w/ tags", "delta"});
  for (const auto& [size, line] :
       {std::pair{16u, 4u}, std::pair{64u, 8u}, std::pair{256u, 16u},
        std::pair{1024u, 32u}}) {
    const double eOff = exOff.evaluate(k, dm(size, line)).energyNj;
    const double eOn = exOn.evaluate(k, dm(size, line)).energyNj;
    t.addRow({dm(size, line).label(), fmtSig3(eOff), fmtSig3(eOn),
              fmtFixed(100.0 * (eOn - eOff) / eOff, 1) + "%"});
  }
  std::cout << t;

  const auto bestOff = minEnergyPoint(exOff.explore(k).points);
  const auto bestOn = minEnergyPoint(exOn.explore(k).points);
  std::cout << "\nmin-energy config without tags: " << bestOff->label()
            << "\nmin-energy config with tags:    " << bestOn->label()
            << '\n'
            << (bestOff->key == bestOn->key
                    ? "The selected configuration is unchanged — the "
                      "paper's omission is safe\nfor selection purposes, "
                      "even though absolute energies shift.\n"
                    : "The selected configuration CHANGES when tag "
                      "energy is modeled — the\nomission is not "
                      "selection-safe at these geometries.\n");
}

void BM_TagEnergyEvaluate(benchmark::State& state) {
  ExploreOptions o = paperOptions();
  o.energy.includeTagArray = true;
  const Explorer ex(o);
  const Kernel k = compressKernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.evaluate(k, dm(64, 8)));
  }
}
BENCHMARK(BM_TagEnergyEvaluate);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
