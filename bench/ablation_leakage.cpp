// Ablation: static (leakage) energy — the term the journal follow-up
// (Shiue & Chakrabarti 2001) adds to this paper's purely dynamic model.
// Leakage charges every cache byte for every cycle of runtime, so it
// penalizes both big caches AND slow configurations; the min-energy
// selection migrates as the coefficient grows (deep-submicron CMOS).
#include "bench_util.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: leakage coefficient vs the selected configuration "
          "(Compress)");
  Table t({"leakage (pJ/byte/cycle)", "min-energy config", "energy (nJ)",
           "C512L4 energy (nJ)"});
  const Kernel k = compressKernel();
  for (const double leak : {0.0, 1.0, 10.0, 100.0}) {
    ExploreOptions o = paperOptions();
    o.ranges.maxCacheBytes = 512;
    o.ranges.sweepAssociativity = false;
    o.ranges.sweepTiling = false;
    o.energy.leakagePjPerBytePerCycle = leak;
    const Explorer ex(o);
    const ExplorationResult r = ex.explore(k);
    const auto minE = minEnergyPoint(r.points);
    t.addRow({fmtFixed(leak, 1), minE->label(), fmtSig3(minE->energyNj),
              fmtSig3(r.at(ConfigKey{512, 4, 1, 1}).energyNj)});
  }
  std::cout << t;
  std::cout << "\nAt 0 the paper's dynamic-only selection holds; as "
               "leakage grows, large\ncaches pay rent for idle capacity "
               "and the optimum shifts toward smaller,\nfaster "
               "configurations.\n";
}

void BM_LeakageEvaluate(benchmark::State& state) {
  ExploreOptions o = paperOptions();
  o.energy.leakagePjPerBytePerCycle = 0.01;
  const Explorer ex(o);
  const Kernel k = compressKernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.evaluate(k, dm(64, 8)));
  }
}
BENCHMARK(BM_LeakageEvaluate);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
