// Ablation: next-line prefetching vs the paper's line-size lever.
//
// The paper buys spatial locality by doubling L (paying Em * L on every
// miss); a one-block-lookahead prefetcher gets streaming coverage at
// small L. This table compares the three designs on demand miss rate
// and total off-chip line traffic.
#include "bench_util.hpp"

#include "memx/cachesim/prefetch.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: prefetching (C64) — demand miss rate / off-chip "
          "lines per access");
  Table t({"kernel", "L8 plain", "L16 plain", "L8 + on-miss",
           "L8 + tagged", "tagged accuracy"});
  for (const Kernel& k : paperBenchmarks()) {
    const Trace trace = generateTrace(k);

    const CacheStats l8 = simulateTrace(dm(64, 8), trace);
    const CacheStats l16 = simulateTrace(dm(64, 16), trace);

    PrefetchingCache onMiss(dm(64, 8), PrefetchPolicy::OnMiss);
    onMiss.run(trace);
    PrefetchingCache tagged(dm(64, 8), PrefetchPolicy::Tagged);
    tagged.run(trace);

    auto cell = [](double mr, double traffic) {
      return fmtFixed(mr, 3) + " / " + fmtFixed(traffic, 3);
    };
    const double n = static_cast<double>(trace.size());
    t.addRow({k.name,
              cell(l8.missRate(), static_cast<double>(l8.lineFills) / n),
              cell(l16.missRate(),
                   static_cast<double>(l16.lineFills) / n),
              cell(onMiss.stats().demand.missRate(),
                   onMiss.stats().trafficPerAccess()),
              cell(tagged.stats().demand.missRate(),
                   tagged.stats().trafficPerAccess()),
              fmtFixed(tagged.stats().accuracy(), 2)});
  }
  std::cout << t;
  std::cout << "\nOn the streaming kernels tagged prefetch at L8 beats "
               "doubling the line\nsize on demand misses at comparable "
               "traffic; on reuse-heavy kernels it\npollutes — the same "
               "trade-off the paper's L sweep exposes.\n";
}

void BM_TaggedPrefetchRun(benchmark::State& state) {
  const Trace trace = generateTrace(dequantKernel());
  for (auto _ : state) {
    PrefetchingCache pc(dm(64, 8), PrefetchPolicy::Tagged);
    pc.run(trace);
    benchmark::DoNotOptimize(pc.stats());
  }
}
BENCHMARK(BM_TaggedPrefetchRun);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
