// Extension: two-level hierarchies. The paper trades one on-chip cache
// against off-chip SRAM; adding an on-chip L2 moves the energy/traffic
// trade-off — a small L1 plus a modest L2 can beat any single-level
// cache on off-chip traffic, which is where the energy goes.
#include "bench_util.hpp"

#include "memx/cachesim/hierarchy.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Extension: single-level vs two-level hierarchy (off-chip "
          "line fills)");
  Table t({"kernel", "C64L8 only", "C256L16 only", "C64L8 + L2 256L16",
           "L1 miss rate", "global miss rate"});
  for (const Kernel& k : paperBenchmarks()) {
    const Trace trace = generateTrace(k);

    CacheSim small(dm(64, 8));
    small.run(trace);
    CacheSim big(dm(256, 16));
    big.run(trace);

    CacheHierarchy stack(dm(64, 8), dm(256, 16, 2));
    stack.run(trace);

    t.addRow({k.name, std::to_string(small.stats().lineFills),
              std::to_string(big.stats().lineFills),
              std::to_string(stack.stats().mainReads),
              fmtFixed(stack.stats().l1.missRate(), 3),
              fmtFixed(stack.stats().globalMissRate(), 3)});
  }
  std::cout << t;
  std::cout << "\nThe stack's off-chip traffic approaches the big "
               "single-level cache while\nmost accesses still pay only "
               "the small-cache hit energy.\n";
}

void BM_HierarchyRun(benchmark::State& state) {
  const Trace trace = generateTrace(sorKernel());
  for (auto _ : state) {
    CacheHierarchy stack(dm(64, 8), dm(256, 16, 2));
    stack.run(trace);
    benchmark::DoNotOptimize(stack.stats());
  }
}
BENCHMARK(BM_HierarchyRun);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
