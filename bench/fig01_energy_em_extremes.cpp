// Figure 1: Compress — variation in energy for different cache sizes and
// line sizes, at the two main-memory energy extremes (Em = 43.56 nJ
// 16 Mbit SRAM vs Em = 2.31 nJ 2 Mbit SRAM).
//
// Paper shape: with expensive main memory, energy falls as the cache
// grows; with cheap main memory, it rises.
#include "bench_util.hpp"

#include "memx/energy/sram_catalog.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printEnergyGrid(double em) {
  const Explorer ex(paperOptions(em));
  const Kernel k = compressKernel();
  Table t({"cache", "L4", "L8", "L16", "L32", "L64"});
  for (const std::uint32_t size : {16u, 32u, 64u, 128u, 256u, 512u}) {
    std::vector<std::string> row{"C" + std::to_string(size)};
    for (const std::uint32_t line : {4u, 8u, 16u, 32u, 64u}) {
      if (line > size / 4) {  // the paper keeps >= 4 cache lines
        row.push_back("-");
        continue;
      }
      row.push_back(fmtSig3(ex.evaluate(k, dm(size, line)).energyNj));
    }
    t.addRow(std::move(row));
  }
  std::cout << t;
}

void printFigure() {
  section("Figure 1a: Compress energy (nJ), Em = 43.56 nJ (16 Mbit SRAM)");
  printEnergyGrid(kEmHigh16MbitNj);
  section("Figure 1b: Compress energy (nJ), Em = 2.31 nJ (2 Mbit SRAM)");
  printEnergyGrid(kEmLow2MbitNj);

  // The headline crossover, stated explicitly.
  const Kernel k = compressKernel();
  const double hiSmall =
      Explorer(paperOptions(kEmHigh16MbitNj)).evaluate(k, dm(16, 4)).energyNj;
  const double hiLarge =
      Explorer(paperOptions(kEmHigh16MbitNj)).evaluate(k, dm(512, 4)).energyNj;
  const double loSmall =
      Explorer(paperOptions(kEmLow2MbitNj)).evaluate(k, dm(16, 4)).energyNj;
  const double loLarge =
      Explorer(paperOptions(kEmLow2MbitNj)).evaluate(k, dm(512, 4)).energyNj;
  std::cout << "\nEm = 43.56: C16L4 " << fmtSig3(hiSmall) << " -> C512L4 "
            << fmtSig3(hiLarge)
            << (hiLarge < hiSmall ? "  (energy falls with cache size)"
                                  : "  (!! expected fall)")
            << "\nEm =  2.31: C16L4 " << fmtSig3(loSmall) << " -> C512L4 "
            << fmtSig3(loLarge)
            << (loLarge > loSmall ? "  (energy rises with cache size)"
                                  : "  (!! expected rise)")
            << '\n';
}

void BM_EvaluatePoint(benchmark::State& state) {
  const Explorer ex(paperOptions());
  const Kernel k = compressKernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.evaluate(k, dm(64, 8)));
  }
}
BENCHMARK(BM_EvaluatePoint);

void BM_EnergyModelOnly(benchmark::State& state) {
  EnergyParams p;
  const CacheEnergyModel m(dm(64, 8), p, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.totalNj(4805, 0.1));
  }
}
BENCHMARK(BM_EnergyModelOnly);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
