// Figure 10: minimum-energy cache configuration (cache size, line size,
// set associativity, tiling size) for each kernel program in the MPEG
// decoder.
#include "bench_util.hpp"

#include "memx/kernels/mpeg_kernels.hpp"
#include "memx/mpeg/composite.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

ExploreOptions mpegOptions() {
  ExploreOptions o = paperOptions();
  o.ranges.maxCacheBytes = 512;
  o.ranges.maxLineBytes = 16;
  o.ranges.maxTiling = 16;
  return o;
}

void printFigure() {
  section("Figure 10: minimum-energy cache configuration per MPEG kernel");
  const Explorer ex(mpegOptions());
  const CompositeProgram decoder = mpegDecoder();

  Table t({"kernel", "cache size", "line size", "set assoc.",
           "tiling size", "energy (nJ)", "miss rate"});
  for (std::size_t j = 0; j < decoder.kernelCount(); ++j) {
    const ExplorationResult r = ex.explore(decoder.kernel(j));
    const auto best = minEnergyPoint(r.points);
    t.addRow({decoder.kernel(j).name,
              std::to_string(best->key.cacheBytes),
              std::to_string(best->key.lineBytes),
              std::to_string(best->key.associativity),
              std::to_string(best->key.tiling), fmtSig3(best->energyNj),
              fmtFixed(best->missRate, 3)});
  }
  std::cout << t;
  std::cout << "\nAs in the paper, different kernels prefer different "
               "corners of the\ndesign space (streaming kernels want tiny "
               "caches; table-reuse kernels\nwant to fit their tables).\n";
}

void BM_OneMpegKernelSweep(benchmark::State& state) {
  const Explorer ex(mpegOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.explore(mpegDequantKernel()));
  }
}
BENCHMARK(BM_OneMpegKernelSweep);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
