// Extension (paper Section 1, future work): instruction-cache
// exploration. "The exploration procedure described here for data caches
// can be extended to instruction caches..." — this bench runs MemExplore
// over the instruction-fetch streams of the benchmark kernels.
#include "bench_util.hpp"

#include "memx/core/trace_explorer.hpp"
#include "memx/icache/ifetch_model.hpp"
#include "memx/trace/trace_stats.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Extension: I-cache exploration over kernel fetch streams");
  const InstructionLayout layout;
  ExploreOptions o;
  o.ranges.minCacheBytes = 32;
  o.ranges.maxCacheBytes = 1024;
  o.ranges.minLineBytes = 4;
  o.ranges.maxLineBytes = 32;
  o.ranges.maxAssociativity = 2;

  Table t({"kernel", "code bytes", "fetches", "min-energy I-cache",
           "miss rate", "energy (nJ)"});
  for (const Kernel& k : paperBenchmarks()) {
    const Trace fetches = generateIFetchTrace(k, layout);
    const ExplorationResult r =
        exploreTrace("icache-" + k.name, fetches, o);
    const auto best = minEnergyPoint(r.points);
    t.addRow({k.name, std::to_string(layout.codeBytes(k)),
              std::to_string(fetches.size()), best->label(),
              fmtFixed(best->missRate, 4), fmtSig3(best->energyNj)});
  }
  std::cout << t;
  std::cout << "\nLoops are tiny: the minimum-energy I-cache is the "
               "smallest power of two\nthat holds the loop body — after "
               "that, every fetch hits and larger\narrays only burn cell "
               "energy.\n";
}

void BM_IFetchTraceGeneration(benchmark::State& state) {
  const Kernel k = sorKernel();
  const InstructionLayout layout;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generateIFetchTrace(k, layout));
  }
}
BENCHMARK(BM_IFetchTraceGeneration);

void BM_ICacheSweep(benchmark::State& state) {
  const Trace fetches =
      generateIFetchTrace(compressKernel(), InstructionLayout{});
  ExploreOptions o;
  o.ranges.maxCacheBytes = 256;
  o.ranges.maxAssociativity = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exploreTrace("i", fetches, o));
  }
}
BENCHMARK(BM_ICacheSweep);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
