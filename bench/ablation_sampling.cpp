// Ablation: set-sampled simulation accuracy vs speedup.
//
// Industrial traces are simulated on 1-in-N set samples; this table
// quantifies the miss-rate error that buys on our kernels, and the
// google-benchmark section measures the actual speedup.
#include "bench_util.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/set_sampling.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: set-sampling accuracy (C256L8, 32 sets)");
  Table t({"kernel", "full", "1/2 sets", "1/4 sets", "1/8 sets",
           "max abs error"});
  for (const Kernel& k : paperBenchmarks()) {
    const Trace trace = generateTrace(k);
    const CacheConfig c = dm(256, 8);
    const double full = simulateTrace(c, trace).missRate();
    std::vector<std::string> row{k.name, fmtFixed(full, 4)};
    double maxErr = 0.0;
    for (const std::uint32_t factor : {2u, 4u, 8u}) {
      const double est =
          estimateMissRateBySetSampling(c, trace, factor);
      maxErr = std::max(maxErr, std::abs(est - full));
      row.push_back(fmtFixed(est, 4));
    }
    row.push_back(fmtFixed(maxErr, 4));
    t.addRow(std::move(row));
  }
  std::cout << t;
}

void BM_FullSimulation(benchmark::State& state) {
  const Trace trace = generateTrace(matMulKernel());
  const CacheConfig c = dm(256, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulateTrace(c, trace));
  }
}
BENCHMARK(BM_FullSimulation);

void BM_SampledSimulation(benchmark::State& state) {
  const Trace trace = generateTrace(matMulKernel());
  const CacheConfig c = dm(256, 8);
  const auto factor = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        estimateMissRateBySetSampling(c, trace, factor));
  }
}
BENCHMARK(BM_SampledSimulation)->Arg(4)->Arg(8);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
