// Extension: loop skewing unlocks tiling on wavefront stencils.
//
// The paper tiles kernels whose dependences are already non-negative;
// a wavefront stencil (distance (1, -1)) defeats rectangular tiling
// until the inner loop is skewed (Wolf-Lam). This bench shows the
// legality flip and the dependence distances before and after.
#include "bench_util.hpp"

#include "memx/xform/dependence.hpp"
#include "memx/xform/tiling.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

Kernel wavefront(std::int64_t n) {
  Kernel k;
  k.name = "wavefront";
  k.arrays = {ArrayDecl{"a", {n, n}, 1}};
  k.nest = LoopNest::rectangular({{1, n - 2}, {0, n - 2}});
  k.body = {
      makeAccess(0, {AffineExpr::var(0).plusConstant(-1),
                     AffineExpr::var(1).plusConstant(+1)}),
      makeAccess(0, {AffineExpr::var(0), AffineExpr::var(1)},
                 AccessType::Write),
  };
  k.validate();
  return k;
}

std::string distancesOf(const Kernel& k) {
  std::string out;
  for (const Dependence& d : computeDependences(k)) {
    out += toString(d.kind) + " (";
    for (std::size_t i = 0; i < d.distance.size(); ++i) {
      if (i) out += ",";
      out += d.distance[i].known()
                 ? std::to_string(*d.distance[i].value)
                 : std::string("*");
    }
    out += ") ";
  }
  return out.empty() ? "-" : out;
}

void printFigure() {
  section("Extension: skewing makes the wavefront stencil tileable");
  const Kernel k = wavefront(32);
  Table t({"variant", "dependences", "tile2D legal"});
  t.addRow({"a[i][j] = a[i-1][j+1]", distancesOf(k),
            tilingIsLegal(k) ? "yes" : "no"});
  for (const std::int64_t f : {1, 2}) {
    const Kernel skewed = skew(k, 1, 0, f);
    t.addRow({"skewed j += " + std::to_string(f) + "*i",
              distancesOf(skewed),
              tilingIsLegal(skewed) ? "yes" : "no"});
  }
  std::cout << t;

  // Legality summary across the built-in kernels.
  Table legality({"kernel", "tile2D", "interchange(0,1)"});
  for (const Kernel& b : paperBenchmarks()) {
    legality.addRow({b.name, tilingIsLegal(b) ? "yes" : "no",
                     interchangeIsLegal(b, 0, 1) ? "yes" : "no"});
  }
  legality.addRow({"wavefront", "no",
                   interchangeIsLegal(k, 0, 1) ? "yes" : "no"});
  std::cout << "\nlegality of the paper's transforms on the built-in "
               "kernels:\n"
            << legality;
}

void BM_DependenceAnalysis(benchmark::State& state) {
  const Kernel k = sorKernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(computeDependences(k));
  }
}
BENCHMARK(BM_DependenceAnalysis);

void BM_SkewTransform(benchmark::State& state) {
  const Kernel k = wavefront(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(skew(k, 1, 0, 1));
  }
}
BENCHMARK(BM_SkewTransform);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
