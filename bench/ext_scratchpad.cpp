// Extension: scratchpad + cache budget splits (Panda-Dutt exploration).
//
// The paper explores a pure cache; its predecessor work splits the same
// on-chip SRAM budget between a software-managed scratchpad and a cache.
// This bench sweeps the splits for kernels with and without a hot array.
#include "bench_util.hpp"

#include "memx/kernels/mpeg_kernels.hpp"
#include "memx/spm/spm_explorer.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printKernel(const Kernel& k, std::uint32_t budget,
                 std::uint32_t line) {
  Table t({"split", "SPM arrays", "SPM accesses", "cache miss rate",
           "cycles", "energy (nJ)"});
  for (const SplitResult& r : exploreBudgetSplits(k, budget, line)) {
    std::string arrays;
    for (const std::string& name : r.spmArrays) {
      if (!arrays.empty()) arrays += ",";
      arrays += name;
    }
    if (arrays.empty()) arrays = "-";
    t.addRow({r.label(), arrays, std::to_string(r.spmAccesses),
              fmtFixed(r.cacheMissRate, 3), fmtSig3(r.cycles),
              fmtSig3(r.energyNj)});
  }
  std::cout << "-- " << k.name << " (budget " << budget << " B) --\n"
            << t << '\n';
}

void printFigure() {
  section("Extension: scratchpad/cache splits of one on-chip budget");
  // The MPEG dequant kernel has a hot 128-byte quantizer table: a split
  // that pins it in the SPM beats every pure cache.
  printKernel(mpegDequantKernel(), 512, 8);
  // The paper's dequant streams three arrays with no reuse: the SPM can
  // only capture whole arrays, so splits mostly trade silicon for
  // nothing and the pure cache wins.
  printKernel(dequantKernel(), 512, 8);
  printKernel(mpegComputeKernel(), 2048, 8);
}

void BM_EvaluateSplit(benchmark::State& state) {
  const Kernel k = mpegDequantKernel();
  ScratchpadConfig spm;
  spm.sizeBytes = 128;
  CacheConfig cache = dm(256, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluateSplit(k, spm, cache));
  }
}
BENCHMARK(BM_EvaluateSplit);

void BM_KnapsackDp(benchmark::State& state) {
  const auto usages = profileArrayUsage(mpegDequantKernel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocateOptimal(usages, 4096));
  }
}
BENCHMARK(BM_KnapsackDp);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
