// Extension: working-set curves from one-pass stack-distance analysis
// (Mattson et al.), cross-checked against the simulator.
//
// One Mattson pass yields the fully-associative miss rate of *every*
// capacity; the knee of that curve is the analytically-derived minimum
// cache size of the paper's Section 3, recovered from the trace alone.
#include "bench_util.hpp"

#include "memx/loopir/ref_classes.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/working_set.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Extension: working-set curves (fully-associative miss rate "
          "vs lines, L = 8)");
  Table t({"kernel", "2", "4", "8", "16", "32", "64", "knee (90% hits)",
           "Section-3 min lines"});
  for (const Kernel& k : paperBenchmarks()) {
    const Trace trace = generateTrace(k);
    const ReuseProfile profile(trace, 8);
    std::vector<std::string> row{k.name};
    for (const std::uint64_t lines : {2u, 4u, 8u, 16u, 32u, 64u}) {
      row.push_back(fmtFixed(profile.predictedMissRate(lines), 3));
    }
    row.push_back(std::to_string(profile.linesForHitRate(0.9)));
    row.push_back(std::to_string(minCacheLines(k, 8)));
    t.addRow(std::move(row));
  }
  std::cout << t;
  std::cout << "\nThe 90%-hit knee sits at (or near) the Section-3 "
               "analytical minimum for\nthe stencil kernels — two "
               "independent derivations of the same number.\n";
}

void BM_MattsonPass(benchmark::State& state) {
  const Trace trace = generateTrace(sorKernel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReuseProfile(trace, 8));
  }
}
BENCHMARK(BM_MattsonPass);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
