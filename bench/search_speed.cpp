// Pareto-search speed and quality check on an exhaustively-checkable
// joint space of ~50k genomes (matadd; cache geometry x replacement x
// write policy x optional L2). The NSGA-II engine runs with a fresh
// evaluator and a budget of 10% of the space, then a second fresh
// evaluator enumerates the whole space to compute the true front (via
// the oracle-validated production extractor). Gates, each fatal:
//
//   * evaluations <= 10% of the space (the budget actually binds),
//   * search-front hypervolume >= 99% of the true front's (reference
//     point: per-objective max over the whole space, scaled by 1.1),
//   * a repeat run from the same seed returns a bit-identical front.
//
// Writes BENCH_search_speed.json with the space/budget/quality numbers
// and the instrumented run's RunReport, and BENCH_search_trace.json
// with the chrome://tracing timeline. Exits nonzero on any blown gate.
//
// This is a plain main (no google-benchmark): each phase runs once —
// the search and the exhaustive sweep both do thousands of evaluations,
// far above scheduler noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "memx/search/dominance.hpp"
#include "memx/search/evaluator.hpp"
#include "memx/search/nsga.hpp"

namespace {

using memx::Kernel;
using memx::search::DesignSpace;
using memx::search::DesignSpaceOptions;
using memx::search::Genome;
using memx::search::NsgaSearch;
using memx::search::Objectives;
using memx::search::SearchEvaluator;
using memx::search::SearchOptions;
using memx::search::SearchResult;

double seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// The bench space: T 16..16K, L 4..256, S <= 8, B <= 16, all four
/// replacement policies, both write policies, tight layout, and five
/// optional L2 capacities — ~50k valid genomes.
DesignSpaceOptions benchSpace() {
  DesignSpaceOptions s;
  s.ranges.onChipBytes = 16384;
  s.ranges.minCacheBytes = 16;
  s.ranges.maxCacheBytes = 16384;
  s.ranges.minLineBytes = 4;
  s.ranges.maxLineBytes = 256;
  s.ranges.maxAssociativity = 8;
  s.ranges.maxTiling = 16;
  s.replacements = {
      memx::ReplacementPolicy::LRU, memx::ReplacementPolicy::FIFO,
      memx::ReplacementPolicy::Random, memx::ReplacementPolicy::TreePLRU};
  s.writePolicies = {memx::WritePolicy::WriteBack,
                     memx::WritePolicy::WriteThrough};
  s.sweepLayout = false;
  s.defaultOptimizeLayout = false;  // tight layout: one trace per tiling
  s.l2CapacityBytes = {32768, 65536, 131072, 524288, 2097152};
  return s;
}

memx::ExploreOptions benchBase() {
  memx::ExploreOptions o;
  o.ranges = benchSpace().ranges;
  o.optimizeLayout = false;
  return o;
}

SearchOptions benchSearch(std::uint64_t spaceSize) {
  SearchOptions o;
  o.seed = 1;
  o.populationSize = 128;
  o.generations = 1000;       // budget-bound, not generation-bound
  o.maxEvaluations = spaceSize / 10;
  o.finishExhaustively = false;  // the budget is the whole point here
  o.space = benchSpace();
  return o;
}

}  // namespace

int main() {
  const Kernel kernel = memx::matrixAddKernel(6, 1);
  const DesignSpace space{benchSpace()};
  const std::uint64_t spaceSize = space.size();
  const std::uint64_t budget = spaceSize / 10;

  memx::bench::section("Pareto search speed (" + kernel.name + ", " +
                       std::to_string(spaceSize) + "-genome space, budget " +
                       std::to_string(budget) + ")");

  // Search run: fresh evaluator, instrumented.
  memx::obs::Recorder recorder;
  NsgaSearch engine(kernel, DesignSpace{benchSpace()}, benchBase(),
                    benchSearch(spaceSize), &recorder);
  const auto t0 = std::chrono::steady_clock::now();
  const SearchResult result = engine.run();
  const double searchSec = seconds(t0, std::chrono::steady_clock::now());
  const memx::obs::RunReport report = recorder.report();

  // Exhaustive truth: a second fresh evaluator, so the search cannot
  // have warmed any cache the oracle benefits from (or vice versa).
  SearchEvaluator oracle(kernel, space, benchBase());
  const std::vector<Genome> all = space.enumerate();
  const auto t1 = std::chrono::steady_clock::now();
  const std::vector<Objectives> objectives = oracle.evaluate(all);
  const double exhaustiveSec = seconds(t1, std::chrono::steady_clock::now());
  const std::vector<std::size_t> trueFront =
      memx::search::nonDominatedFront(objectives);

  // Hypervolume reference: per-objective worst over the whole space,
  // pushed out by 10% so every point contributes volume.
  Objectives ref{0.0, 0.0, 0.0};
  for (const Objectives& o : objectives) {
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ref[i] = std::max(ref[i], o[i]);
    }
  }
  for (double& r : ref) r *= 1.1;

  std::vector<Objectives> trueFrontObjs;
  trueFrontObjs.reserve(trueFront.size());
  for (const std::size_t i : trueFront) {
    trueFrontObjs.push_back(objectives[i]);
  }
  std::vector<Objectives> searchFrontObjs;
  searchFrontObjs.reserve(result.front.size());
  for (const auto& p : result.front) {
    searchFrontObjs.push_back(p.objectives);
  }
  const double hvTrue = memx::search::hypervolume(trueFrontObjs, ref);
  const double hvSearch = memx::search::hypervolume(searchFrontObjs, ref);
  const double hvRatio = hvTrue > 0.0 ? hvSearch / hvTrue : 0.0;

  // Determinism: a second engine from the same seed on another fresh
  // evaluator must return the identical front, bit for bit.
  NsgaSearch repeatEngine(kernel, DesignSpace{benchSpace()}, benchBase(),
                          benchSearch(spaceSize));
  const SearchResult repeat = repeatEngine.run();
  bool deterministic = repeat.front.size() == result.front.size() &&
                       repeat.evaluations == result.evaluations;
  if (deterministic) {
    for (std::size_t i = 0; i < result.front.size(); ++i) {
      if (repeat.front[i].genome != result.front[i].genome ||
          repeat.front[i].objectives != result.front[i].objectives) {
        deterministic = false;
        break;
      }
    }
  }

  const double evalPct =
      100.0 * static_cast<double>(result.evaluations) /
      static_cast<double>(spaceSize);
  std::printf("space              : %8llu genomes (true front %zu points)\n",
              static_cast<unsigned long long>(spaceSize), trueFront.size());
  std::printf("search             : %8.3f s  %llu evaluations (%.1f%% of "
              "space), %llu cache hits, %u generations\n",
              searchSec,
              static_cast<unsigned long long>(result.evaluations), evalPct,
              static_cast<unsigned long long>(result.cacheHits),
              result.generations);
  std::printf("exhaustive sweep   : %8.3f s  (%9.1f points/s)\n",
              exhaustiveSec,
              static_cast<double>(spaceSize) / exhaustiveSec);
  std::printf("front              : %zu of %zu true points found\n",
              result.front.size(), trueFront.size());
  std::printf("hypervolume        : %.6f of true front (floor 0.99)\n",
              hvRatio);
  std::printf("deterministic      : %s\n", deterministic ? "yes" : "NO");

  const bool budgetOk = result.evaluations <= budget;
  if (!budgetOk) {
    std::cerr << "GATE: " << result.evaluations
              << " evaluations exceed the 10% budget of " << budget << "\n";
  }
  const bool hvOk = hvRatio >= 0.99;
  if (!hvOk) {
    std::cerr << "GATE: hypervolume ratio " << hvRatio
              << " is below the 0.99 floor\n";
  }
  if (!deterministic) {
    std::cerr << "GATE: repeat run from the same seed diverged\n";
  }

  std::ofstream json("BENCH_search_speed.json");
  json << "{\"workload\": \"" << kernel.name
       << "\", \"space_size\": " << spaceSize << ", \"budget\": " << budget
       << ", \"evaluations\": " << result.evaluations
       << ", \"cache_hits\": " << result.cacheHits
       << ", \"generations\": " << result.generations
       << ", \"search_seconds\": " << searchSec
       << ", \"exhaustive_seconds\": " << exhaustiveSec
       << ", \"exhaustive_points_per_sec\": "
       << static_cast<double>(spaceSize) / exhaustiveSec
       << ", \"true_front_points\": " << trueFront.size()
       << ", \"search_front_points\": " << result.front.size()
       << ", \"hypervolume_true\": " << hvTrue
       << ", \"hypervolume_search\": " << hvSearch
       << ", \"hypervolume_ratio\": " << hvRatio
       << ", \"deterministic\": " << (deterministic ? "true" : "false")
       << ", \"gates_ok\": "
       << ((budgetOk && hvOk && deterministic) ? "true" : "false");
  memx::bench::emitRunReport(report, json, "BENCH_search_trace.json");
  json << "}\n";

  return (budgetOk && hvOk && deterministic) ? 0 : 1;
}
