// Extension: cold-cache aggregation (the paper's Section-5 method) vs a
// warm chained run of the same MPEG decoder.
//
// The paper computes MISS_R as a trip-weighted sum of per-kernel miss
// rates measured in isolation. A real decoder's kernels share one cache;
// repeated invocations of the same kernel hit their own leftovers, and
// neighbors can either feed or pollute each other.
#include "bench_util.hpp"

#include "memx/mpeg/chained.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Extension: cold-aggregate vs warm chained MPEG miss rate");
  const CompositeProgram decoder = mpegDecoder();
  Table t({"cache", "cold aggregate (paper method)", "warm chained",
           "warm/cold"});
  for (const auto& [size, line] :
       {std::pair{64u, 4u}, std::pair{256u, 8u}, std::pair{1024u, 16u},
        std::pair{4096u, 16u}}) {
    const ChainedRun run = runChained(decoder, dm(size, line));
    t.addRow({dm(size, line).label(),
              fmtFixed(run.coldAggregateMissRate, 3),
              fmtFixed(run.warmMissRate(), 3),
              fmtFixed(run.warmMissRate() /
                           std::max(run.coldAggregateMissRate, 1e-9),
                       2)});
  }
  std::cout << t;

  const ChainedRun detail = runChained(decoder, dm(1024, 16));
  Table perKernel({"kernel", "trips", "warm miss rate"});
  for (std::size_t j = 0; j < decoder.kernelCount(); ++j) {
    perKernel.addRow({decoder.kernel(j).name,
                      std::to_string(decoder.trips(j)),
                      fmtFixed(detail.kernelMissRates[j], 3)});
  }
  std::cout << "\nper-kernel warm miss rates at C1024L16:\n" << perKernel;
  std::cout << "\nRepeated kernels (trips > 1) re-hit their own data once "
               "the cache holds\ntheir working set, so the cold-cache "
               "aggregation overestimates misses on\nlarge caches — the "
               "paper's method is conservative there.\n";
}

void BM_ChainedDecoder(benchmark::State& state) {
  const CompositeProgram decoder = mpegDecoder();
  for (auto _ : state) {
    benchmark::DoNotOptimize(runChained(decoder, dm(1024, 16)));
  }
}
BENCHMARK(BM_ChainedDecoder);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
