// Figure 2: miss rate, number of cycles and energy vs cache size and
// cache line size along the paper's diagonal C16L4, C32L8, C64L16,
// C128L32 for all five benchmarks (Em = 4.95 nJ).
#include "bench_util.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

constexpr std::pair<std::uint32_t, std::uint32_t> kDiagonal[] = {
    {16, 4}, {32, 8}, {64, 16}, {128, 32}};

void printFigure() {
  const Explorer ex(paperOptions());
  const std::vector<Kernel> kernels = paperBenchmarks();

  section("Figure 2: miss rate vs (C, L), Em = 4.95 nJ");
  Table miss({"config", "Compress", "Mat.Multi.", "PDE", "SOR", "Dequant"});
  Table cycles(
      {"config", "Compress", "Mat.Multi.", "PDE", "SOR", "Dequant"});
  Table energy(
      {"config", "Compress", "Mat.Multi.", "PDE", "SOR", "Dequant"});
  for (const auto& [size, line] : kDiagonal) {
    const std::string label =
        "C" + std::to_string(size) + "L" + std::to_string(line);
    std::vector<std::string> mrow{label}, crow{label}, erow{label};
    for (const Kernel& k : kernels) {
      const DesignPoint p = ex.evaluate(k, dm(size, line));
      mrow.push_back(fmtFixed(p.missRate, 3));
      crow.push_back(fmtSig3(p.cycles));
      erow.push_back(fmtSig3(p.energyNj));
    }
    miss.addRow(std::move(mrow));
    cycles.addRow(std::move(crow));
    energy.addRow(std::move(erow));
  }
  std::cout << miss;
  section("Figure 2: number of cycles vs (C, L)");
  std::cout << cycles;
  section("Figure 2: energy (nJ) vs (C, L)");
  std::cout << energy;
}

void BM_FiveKernelDiagonal(benchmark::State& state) {
  const Explorer ex(paperOptions());
  const std::vector<Kernel> kernels = paperBenchmarks();
  for (auto _ : state) {
    double sum = 0;
    for (const Kernel& k : kernels) {
      sum += ex.evaluate(k, dm(64, 16)).energyNj;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_FiveKernelDiagonal);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
