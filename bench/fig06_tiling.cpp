// Figure 6: miss rate, number of cycles and energy vs tiling size at
// C64L8 (Em = 4.95 nJ) for the five benchmarks, plus the transpose
// kernel that motivates tiling (Example 3).
#include "bench_util.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  const Explorer ex(paperOptions());
  const CacheConfig cache = dm(64, 8);
  std::vector<Kernel> kernels = paperBenchmarks();
  kernels.push_back(transposeKernel(32));

  for (const char* metric : {"miss rate", "cycles", "energy (nJ)"}) {
    section(std::string("Figure 6: ") + metric + " vs tiling size, C64L8");
    Table t({"kernel", "B1", "B2", "B4", "B8", "B16"});
    for (const Kernel& k : kernels) {
      std::vector<std::string> row{k.name};
      for (const std::uint32_t b : {1u, 2u, 4u, 8u, 16u}) {
        const DesignPoint p = ex.evaluate(k, cache, b);
        if (std::string(metric) == "miss rate") {
          row.push_back(fmtFixed(p.missRate, 3));
        } else if (std::string(metric) == "cycles") {
          row.push_back(fmtSig3(p.cycles));
        } else {
          row.push_back(fmtSig3(p.energyNj));
        }
      }
      t.addRow(std::move(row));
    }
    std::cout << t;
  }
  std::cout << "\nReuse-rich kernels (compress, sor, transpose) improve "
               "with small tiles\nand degrade once the tile working set "
               "exceeds the 8 cache lines;\npure streaming kernels "
               "(dequant) gain nothing, as expected.\n";
}

void BM_TiledEvaluate(benchmark::State& state) {
  const Explorer ex(paperOptions());
  const Kernel k = sorKernel();
  const auto b = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.evaluate(k, dm(64, 8), b));
  }
}
BENCHMARK(BM_TiledEvaluate)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
