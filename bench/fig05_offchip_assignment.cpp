// Figure 5: Compress — miss-rate reduction due to off-chip memory
// assignment, optimized vs unoptimized, at C32L4, C64L8 and C128L16.
//
// Uses the word-array view of Compress (4-byte elements, 128-byte rows):
// the paper's unoptimized placement aliases consecutive rows in all three
// caches, which is what produces its ~0.97 unoptimized miss rates.
#include "bench_util.hpp"

#include "memx/cachesim/miss_classifier.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Figure 5: Compress miss rate, optimized vs unoptimized layout");
  const Kernel k = compressKernel(32, 4);
  Table t({"config", "unoptimized", "optimized", "improvement",
           "conflicts removed"});
  for (const auto& [size, line] :
       {std::pair{32u, 4u}, std::pair{64u, 8u}, std::pair{128u, 16u}}) {
    const CacheConfig cache = dm(size, line);
    const MissBreakdown unopt =
        classifyMisses(cache, generateTrace(k, sequentialLayout(k)));
    const AssignmentPlan plan = assignConflictFree(k, cache);
    const MissBreakdown opt =
        classifyMisses(cache, generateTrace(k, plan.layout));
    t.addRow({cache.label(), fmtFixed(unopt.missRate(), 3),
              fmtFixed(opt.missRate(), 3),
              fmtFixed(unopt.missRate() / std::max(opt.missRate(), 1e-9),
                       1) +
                  "x",
              std::to_string(unopt.conflict - opt.conflict)});
  }
  std::cout << t;
  std::cout << "\nAs in the paper, the off-chip assignment removes the "
               "conflict misses\nand is the single largest performance "
               "lever in the study.\n";
}

void BM_AssignConflictFree(benchmark::State& state) {
  const Kernel k = compressKernel(32, 4);
  const CacheConfig cache = dm(64, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assignConflictFree(k, cache));
  }
}
BENCHMARK(BM_AssignConflictFree);

void BM_MissClassification(benchmark::State& state) {
  const Kernel k = compressKernel(32, 4);
  const Trace trace = generateTrace(k);
  const CacheConfig cache = dm(64, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifyMisses(cache, trace));
  }
}
BENCHMARK(BM_MissClassification);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
