// Figure 8: miss rate, number of cycles and energy vs set associativity
// (1, 2, 4, 8) at C64L8, tiling size 1, Em = 4.95 nJ — plus the
// Section-4.3 counterpoint that at C1024L32 the benefit disappears.
#include "bench_util.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printGrid(const Explorer& ex, const CacheConfig& base) {
  const std::vector<Kernel> kernels = paperBenchmarks();
  for (const char* metric : {"miss rate", "cycles", "energy (nJ)"}) {
    Table t({"kernel", "SA1", "SA2", "SA4", "SA8"});
    for (const Kernel& k : kernels) {
      std::vector<std::string> row{k.name};
      for (const std::uint32_t s : {1u, 2u, 4u, 8u}) {
        CacheConfig c = base;
        c.associativity = s;
        const DesignPoint p = ex.evaluate(k, c);
        if (std::string(metric) == "miss rate") {
          row.push_back(fmtFixed(p.missRate, 3));
        } else if (std::string(metric) == "cycles") {
          row.push_back(fmtSig3(p.cycles));
        } else {
          row.push_back(fmtSig3(p.energyNj));
        }
      }
      t.addRow(std::move(row));
    }
    std::cout << metric << ":\n" << t << '\n';
  }
}

void printFigure() {
  const Explorer ex(paperOptions());
  section("Figure 8: metrics vs set associativity, C64L8, tiling 1");
  printGrid(ex, dm(64, 8));
  section(
      "Section 4.3 counterpoint: C1024L32 — cycles/energy no longer "
      "necessarily improve");
  printGrid(ex, dm(1024, 32));
}

void BM_EightWaySimulation(benchmark::State& state) {
  const Explorer ex(paperOptions());
  const Kernel k = pdeKernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.evaluate(k, dm(64, 8, 8)));
  }
}
BENCHMARK(BM_EightWaySimulation);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
