// Section 3: the analytical minimum cache size. For each kernel and line
// size, the number of cache lines needed to avoid intra-class conflicts
// (Compress: 2 classes x 2 lines = 4 lines, minimum cache = 4L).
#include "bench_util.hpp"

#include "memx/kernels/mpeg_kernels.hpp"
#include "memx/loopir/ref_classes.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Section 3: reference classes and minimum cache size");
  std::vector<Kernel> kernels = paperBenchmarks();
  kernels.push_back(transposeKernel(32));
  kernels.push_back(mpegVldKernel());

  Table t({"kernel", "classes", "cases", "indirect", "min lines (L=4)",
           "min size (L=4)", "min lines (L=16)", "min size (L=16)"});
  for (const Kernel& k : kernels) {
    const RefAnalysis a = analyzeReferences(k);
    t.addRow({k.name, std::to_string(a.groups.size()),
              std::to_string(a.cases.size()),
              std::to_string(a.indirectAccesses.size()),
              std::to_string(minCacheLines(k, 4)),
              std::to_string(minCacheSizeBytes(k, 4)),
              std::to_string(minCacheLines(k, 16)),
              std::to_string(minCacheSizeBytes(k, 16))});
  }
  std::cout << t;
  std::cout << "\nCompress: 2 classes, 2 lines each => minimum cache "
               "size 4L, exactly as\nthe paper derives in Section 3.\n";
}

void BM_ReferenceAnalysis(benchmark::State& state) {
  const Kernel k = sorKernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzeReferences(k));
  }
}
BENCHMARK(BM_ReferenceAnalysis);

void BM_MinCacheLines(benchmark::State& state) {
  const Kernel k = compressKernel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(minCacheLines(k, 8));
  }
}
BENCHMARK(BM_MinCacheLines);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
