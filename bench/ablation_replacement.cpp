// Ablation: replacement policy (LRU vs FIFO vs random) across the
// benchmark kernels at a 4-way C128L8 — quantifies how much of the
// Section-4.3 associativity benefit depends on LRU.
#include "bench_util.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: replacement policy, 4-way C128L8");
  Table t({"kernel", "LRU miss rate", "FIFO miss rate",
           "random miss rate"});
  for (const Kernel& k : paperBenchmarks()) {
    const Trace trace = generateTrace(k);
    std::vector<std::string> row{k.name};
    for (const ReplacementPolicy policy :
         {ReplacementPolicy::LRU, ReplacementPolicy::FIFO,
          ReplacementPolicy::Random}) {
      CacheConfig c = dm(128, 8, 4);
      c.replacement = policy;
      row.push_back(fmtFixed(simulateTrace(c, trace).missRate(), 4));
    }
    t.addRow(std::move(row));
  }
  std::cout << t;
}

void BM_SimulateLru(benchmark::State& state) {
  const Trace trace = generateTrace(sorKernel());
  CacheConfig c = dm(128, 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulateTrace(c, trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_SimulateLru);

void BM_SimulateRandom(benchmark::State& state) {
  const Trace trace = generateTrace(sorKernel());
  CacheConfig c = dm(128, 8, 4);
  c.replacement = ReplacementPolicy::Random;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulateTrace(c, trace));
  }
}
BENCHMARK(BM_SimulateRandom);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
