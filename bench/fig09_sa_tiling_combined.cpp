// Figure 9: miss rate, cycles and energy vs combined (set associativity,
// tiling size) at C64L8 for the five benchmarks. The values in
// parentheses are the unoptimized (tight off-chip layout) results —
// the word-array view (4-byte elements) is used so the unoptimized rows
// alias exactly as in the paper (its ~0.97 parenthesized miss rates).
#include "bench_util.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

std::vector<Kernel> wordKernels() {
  return {compressKernel(32, 4), matMulKernel(32, 4), pdeKernel(33, 4),
          sorKernel(33, 4), dequantKernel(32, 4)};
}

void printFigure() {
  section("Figure 9: metrics vs (SA, TS) at C64L8; parentheses = "
          "unoptimized layout");
  const Explorer opt(paperOptions());
  ExploreOptions uo = paperOptions();
  uo.optimizeLayout = false;
  const Explorer unopt(uo);

  const std::pair<std::uint32_t, std::uint32_t> combos[] = {
      {1, 1}, {2, 4}, {8, 8}};  // (SA, TS)

  for (const char* metric : {"miss rate", "cycles", "energy (nJ)"}) {
    Table t({"kernel", "SA1 TS1", "SA2 TS4", "SA8 TS8"});
    for (const Kernel& k : wordKernels()) {
      std::vector<std::string> row{k.name};
      for (const auto& [sa, ts] : combos) {
        const DesignPoint o = opt.evaluate(k, dm(64, 8, sa), ts);
        const DesignPoint u = unopt.evaluate(k, dm(64, 8, sa), ts);
        std::string cell;
        if (std::string(metric) == "miss rate") {
          cell = fmtFixed(o.missRate, 3) + " (" + fmtFixed(u.missRate, 3) +
                 ")";
        } else if (std::string(metric) == "cycles") {
          cell = fmtSig3(o.cycles) + " (" + fmtSig3(u.cycles) + ")";
        } else {
          cell = fmtSig3(o.energyNj) + " (" + fmtSig3(u.energyNj) + ")";
        }
        row.push_back(std::move(cell));
      }
      t.addRow(std::move(row));
    }
    std::cout << metric << ":\n" << t << '\n';
  }
  std::cout << "The unoptimized miss rates are so large that tiling and "
               "set associativity\nbarely move them — the paper's central "
               "observation about Figure 9.\n";
}

void BM_CombinedSaTiling(benchmark::State& state) {
  const Explorer ex(paperOptions());
  const Kernel k = compressKernel(32, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.evaluate(k, dm(64, 8, 2), 4));
  }
}
BENCHMARK(BM_CombinedSaTiling);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
