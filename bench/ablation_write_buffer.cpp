// Ablation: write-buffer depth. A write-through cache without a merging
// buffer would make write energy significant, undermining the paper's
// read-only accounting; this sweep shows how few entries are needed to
// keep write traffic negligible.
#include "bench_util.hpp"

#include "memx/cachesim/write_buffer.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: merging write-buffer depth (line 8, drain every 16 "
          "accesses)");
  Table t({"kernel", "stores", "1 entry", "2 entries", "4 entries",
           "8 entries", "mem writes @4"});
  for (const Kernel& k : paperBenchmarks()) {
    const Trace trace = generateTrace(k);
    std::vector<std::string> row{k.name};
    std::uint64_t stores = 0;
    std::uint64_t memWritesAt4 = 0;
    for (const std::uint32_t entries : {1u, 2u, 4u, 8u}) {
      WriteBufferConfig c;
      c.entries = entries;
      c.lineBytes = 8;
      c.drainInterval = 16;
      WriteBuffer wb(c);
      wb.run(trace);
      if (entries == 1) {
        stores = wb.stats().writesSeen;
        row.insert(row.begin() + 1, std::to_string(stores));
      }
      row.push_back(fmtFixed(wb.stats().mergeRate(), 3));
      if (entries == 4) memWritesAt4 = wb.stats().memWrites;
    }
    row.push_back(std::to_string(memWritesAt4));
    t.addRow(std::move(row));
  }
  std::cout << t;
  std::cout << "\nA 2-4 entry buffer merges a third or more of the "
               "stores on the byte-wise\nstencils; writes are a minor "
               "fraction of off-chip traffic either way.\n";
}

void BM_WriteBufferRun(benchmark::State& state) {
  const Trace trace = generateTrace(compressKernel());
  WriteBufferConfig c;
  c.entries = 4;
  for (auto _ : state) {
    WriteBuffer wb(c);
    wb.run(trace);
    benchmark::DoNotOptimize(wb.stats());
  }
}
BENCHMARK(BM_WriteBufferRun);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
