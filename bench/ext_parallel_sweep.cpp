// Extension: multi-threaded sweep throughput. Design points are
// independent; the parallel explorer partitions the key grid across
// workers and reproduces the serial result bit for bit.
#include "bench_util.hpp"

#include <thread>

#include "memx/core/parallel_explorer.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

ExploreOptions sweep() {
  ExploreOptions o = paperOptions();
  o.ranges.maxCacheBytes = 256;
  o.ranges.maxTiling = 4;
  return o;
}

void printFigure() {
  section("Extension: parallel sweep equivalence");
  const Kernel k = sorKernel();
  const ExplorationResult serial = Explorer(sweep()).explore(k);
  const ExplorationResult parallel = exploreParallel(k, sweep(), 4);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    if (serial.points[i].energyNj != parallel.points[i].energyNj ||
        serial.points[i].cycles != parallel.points[i].cycles) {
      ++mismatches;
    }
  }
  std::cout << serial.points.size() << " design points, " << mismatches
            << " mismatches between serial and 4-thread sweeps.\n"
            << "hardware concurrency on this machine: "
            << std::thread::hardware_concurrency()
            << " (speedup scales with cores; on a single-core box the "
               "timings below\nonly demonstrate the parallel path adds "
               "no overhead).\n";
}

void BM_SerialSweep(benchmark::State& state) {
  const Kernel k = sorKernel();
  for (auto _ : state) {
    const Explorer ex(sweep());
    benchmark::DoNotOptimize(ex.explore(k));
  }
}
BENCHMARK(BM_SerialSweep)->Unit(benchmark::kMillisecond);

void BM_ParallelSweep(benchmark::State& state) {
  const Kernel k = sorKernel();
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exploreParallel(k, sweep(), threads));
  }
}
BENCHMARK(BM_ParallelSweep)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
