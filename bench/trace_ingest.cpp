// Out-of-core trace ingestion gate: generates a large synthetic .din.gz
// on disk, then
//   1. streams a materializable prefix through both sweep backends and
//      asserts the results are bit-identical to the in-memory Trace
//      path (windowing included),
//   2. times decode-only draining and full streamed sweeps over the
//      whole compressed file (StackDist and MultiSim backends, one
//      instrumented run with the obs sink attached),
//   3. asserts peak RSS stays under a fixed budget independent of the
//      trace length — the point of the chunked pipeline.
// Writes BENCH_trace_ingest.json (+ BENCH_trace_ingest_trace.json
// timeline) and exits nonzero on any mismatch, refs/sec floor, or blown
// memory budget.
//
// Plain main (no google-benchmark): the bit-identity check is the
// point, and each phase runs once — at the default trace size the
// stream is long enough to swamp scheduler noise.
//
// MEMX_TRACE_INGEST_REFS overrides the reference count (default 100M,
// the acceptance-scale run CI uses; set it to ~1M for a quick local
// check).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "memx/core/trace_explorer.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/trace/din_io.hpp"
#include "memx/trace/file_source.hpp"
#include "memx/trace/gzip_stream.hpp"
#include "memx/trace/trace_source.hpp"

namespace {

using namespace memx;

double seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Peak resident set size in bytes (Linux ru_maxrss is in KiB).
std::uint64_t peakRssBytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

/// Deterministic synthetic workload source: a looping working set with
/// random far excursions, ~25% writes, occasional ifetches — enough
/// locality that the sweep results are non-trivial, enough entropy that
/// gzip still has work to do.
class SynthSource final : public TraceSource {
public:
  explicit SynthSource(std::uint64_t count) : remaining_(count) {}

  std::optional<MemRef> next() override {
    if (remaining_ == 0) return std::nullopt;
    --remaining_;
    const std::uint64_t roll = rng_();
    std::uint64_t addr;
    if (roll % 16 == 0) {
      addr = 0x100000 + rng_() % (1u << 20);  // far excursion
    } else {
      addr = 0x1000 + (cursor_++ % 4096) * 4;  // working-set loop
    }
    AccessType type = AccessType::Read;
    if (roll % 4 == 1) type = AccessType::Write;
    if (roll % 8 == 2) type = AccessType::Instr;
    return MemRef{addr, 4, type};
  }

private:
  std::uint64_t remaining_;
  std::uint64_t cursor_ = 0;
  std::mt19937_64 rng_{0x1234abcd};
};

ExploreOptions sweepOptions(SweepBackend backend) {
  ExploreOptions options;
  options.ranges.minCacheBytes = 64;
  options.ranges.maxCacheBytes = 1024;
  options.ranges.minLineBytes = 8;
  options.ranges.maxLineBytes = 32;
  options.ranges.maxAssociativity = 2;
  options.backend = backend;
  return options;
}

bool identicalPoints(const ExplorationResult& a, const ExplorationResult& b,
                     const char* label) {
  if (a.points.size() != b.points.size()) {
    std::cerr << "MISMATCH (" << label << "): " << a.points.size()
              << " vs " << b.points.size() << " points\n";
    return false;
  }
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const DesignPoint& x = a.points[i];
    const DesignPoint& y = b.points[i];
    if (!(x.key == y.key && x.accesses == y.accesses &&
          x.missRate == y.missRate && x.cycles == y.cycles &&
          x.energyNj == y.energyNj)) {
      std::cerr << "MISMATCH (" << label << ") at point " << i << " "
                << x.key.label() << '\n';
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using clock = std::chrono::steady_clock;

  std::uint64_t totalRefs = 100'000'000;
  if (const char* env = std::getenv("MEMX_TRACE_INGEST_REFS")) {
    totalRefs = std::strtoull(env, nullptr, 10);
    if (totalRefs == 0) {
      std::cerr << "bad MEMX_TRACE_INGEST_REFS\n";
      return 1;
    }
  }
  const bool gz = gzipSupported();
  const std::string path =
      std::string("trace_ingest_workload.din") + (gz ? ".gz" : "");
  std::cout << "trace ingest bench: " << totalRefs << " references -> "
            << path << (gz ? "" : " (no zlib in this build: plain text)")
            << "\n";

  // --- Phase A: write the workload to disk, compressed when possible.
  const auto tGen0 = clock::now();
  std::uint64_t fileBytes = 0;
  {
    std::ofstream raw(path, std::ios::binary);
    SynthSource synth(totalRefs);
    std::vector<MemRef> chunk;
    Trace buf;
    if (gz) {
      GzipOutputStream deflate(raw, 1);
      while (fillChunk(synth, chunk, kDefaultTraceChunkRefs) > 0) {
        buf = Trace(std::move(chunk));
        writeDin(deflate, buf);
        chunk = std::vector<MemRef>();
      }
      deflate.close();
    } else {
      while (fillChunk(synth, chunk, kDefaultTraceChunkRefs) > 0) {
        buf = Trace(std::move(chunk));
        writeDin(raw, buf);
        chunk = std::vector<MemRef>();
      }
    }
    raw.flush();
  }
  {
    std::ifstream probe(path, std::ios::binary | std::ios::ate);
    fileBytes = static_cast<std::uint64_t>(probe.tellg());
  }
  const double genSec = seconds(tGen0, clock::now());
  std::cout << "generated " << fileBytes << " file bytes in " << genSec
            << " s\n";

  bool ok = true;

  // --- Phase B: streamed == materialized on a prefix small enough to
  // hold in memory, for both backends, trivial and shifted windows.
  const std::uint64_t prefixRefs = std::min<std::uint64_t>(totalRefs, 500'000);
  Trace prefix;
  {
    FileTraceSource source(path);
    WindowedSource head(source, TraceWindow{0, 0, prefixRefs});
    prefix = drain(head);
  }
  for (const SweepBackend backend :
       {SweepBackend::StackDist, SweepBackend::MultiSim}) {
    const ExploreOptions options = sweepOptions(backend);
    const ExplorationResult inMemory = exploreTrace("w", prefix, options);
    FileTraceSource source(path);
    const ExplorationResult streamed = exploreTrace(
        "w", source, options, TraceWindow{0, 0, prefixRefs});
    const char* label = backend == SweepBackend::StackDist
                            ? "prefix stackdist"
                            : "prefix multisim";
    ok = identicalPoints(streamed, inMemory, label) && ok;
  }
  {
    // Windowed: skip + limit must equal the in-memory subrange.
    const std::uint64_t skip = prefixRefs / 4;
    const std::uint64_t limit = prefixRefs / 2;
    Trace sub;
    for (std::uint64_t i = skip; i < skip + limit; ++i) sub.push(prefix[i]);
    const ExploreOptions options = sweepOptions(SweepBackend::StackDist);
    const ExplorationResult inMemory = exploreTrace("w", sub, options);
    FileTraceSource source(path);
    const ExplorationResult streamed = exploreTrace(
        "w", source, options, TraceWindow{skip, 0, limit});
    ok = identicalPoints(streamed, inMemory, "windowed prefix") && ok;
  }
  std::cout << "prefix bit-identity (" << prefixRefs << " refs): "
            << (ok ? "ok" : "FAILED") << "\n";
  prefix = Trace();

  // --- Phase C: decode-only drain of the full file (refs/sec floor).
  const auto tDec0 = clock::now();
  std::uint64_t decoded = 0;
  {
    FileTraceSource source(path);
    while (source.next()) ++decoded;
  }
  const double decodeSec = seconds(tDec0, clock::now());
  const double decodeRefsPerSec = static_cast<double>(decoded) / decodeSec;
  std::cout << "decode-only: " << decoded << " refs in " << decodeSec
            << " s (" << decodeRefsPerSec / 1e6 << " Mref/s)\n";
  if (decoded != totalRefs) {
    std::cerr << "MISMATCH: decoded " << decoded << " of " << totalRefs
              << " refs\n";
    ok = false;
  }

  // --- Phase D: full streamed sweeps through both backends; the
  // StackDist run carries the obs sink (counters + ingest spans).
  obs::Recorder recorder;
  const auto tStack0 = clock::now();
  std::uint64_t stackAccesses = 0;
  {
    FileTraceSource source(path);
    const ExplorationResult result =
        exploreTrace("ingest", source, sweepOptions(SweepBackend::StackDist),
                     TraceWindow{}, kDefaultTraceChunkRefs, &recorder);
    stackAccesses = result.points.empty() ? 0 : result.points[0].accesses;
  }
  const double stackSec = seconds(tStack0, clock::now());
  const double stackRefsPerSec =
      static_cast<double>(stackAccesses) / stackSec;
  std::cout << "stackdist streamed sweep: " << stackAccesses << " refs in "
            << stackSec << " s (" << stackRefsPerSec / 1e6 << " Mref/s)\n";

  const auto tSim0 = clock::now();
  std::uint64_t simAccesses = 0;
  {
    CacheConfig cache;
    cache.sizeBytes = 512;
    cache.lineBytes = 16;
    cache.associativity = 2;
    FileTraceSource source(path);
    const DesignPoint p = evaluateTracePoint(
        source, cache, sweepOptions(SweepBackend::MultiSim));
    simAccesses = p.accesses;
  }
  const double simSec = seconds(tSim0, clock::now());
  const double simRefsPerSec = static_cast<double>(simAccesses) / simSec;
  std::cout << "multisim streamed point: " << simAccesses << " refs in "
            << simSec << " s (" << simRefsPerSec / 1e6 << " Mref/s)\n";
  if (stackAccesses != totalRefs || simAccesses != totalRefs) {
    std::cerr << "MISMATCH: streamed sweeps counted " << stackAccesses
              << " / " << simAccesses << " of " << totalRefs << " refs\n";
    ok = false;
  }
  if (recorder.counterValue("trace.refs_decoded") != totalRefs) {
    std::cerr << "MISMATCH: recorder saw "
              << recorder.counterValue("trace.refs_decoded")
              << " decoded refs\n";
    ok = false;
  }

  // --- Gates. Floors sit far (>5x) below the numbers a debug-ish CI
  // box produces, so only a real regression trips them; the memory
  // budget is absolute and length-independent — the whole point of the
  // chunked pipeline (100M refs materialized would be ~1.6 GB alone).
  const double kDecodeFloor = 1e6;  // refs/sec
  const double kSweepFloor = 2e5;   // refs/sec
  const std::uint64_t kRssBudget = std::uint64_t{512} << 20;
  const std::uint64_t rss = peakRssBytes();
  std::cout << "peak RSS: " << (rss >> 20) << " MiB (budget "
            << (kRssBudget >> 20) << " MiB)\n";
  if (decodeRefsPerSec < kDecodeFloor) {
    std::cerr << "BUDGET: decode " << decodeRefsPerSec
              << " refs/s below the " << kDecodeFloor << " floor\n";
    ok = false;
  }
  if (stackRefsPerSec < kSweepFloor || simRefsPerSec < kSweepFloor) {
    std::cerr << "BUDGET: streamed sweep below the " << kSweepFloor
              << " refs/s floor\n";
    ok = false;
  }
  if (rss > kRssBudget) {
    std::cerr << "BUDGET: peak RSS " << (rss >> 20)
              << " MiB exceeds the " << (kRssBudget >> 20)
              << " MiB budget\n";
    ok = false;
  }

  std::ofstream json("BENCH_trace_ingest.json");
  json << "{\"refs\": " << totalRefs << ", \"file_bytes\": " << fileBytes
       << ", \"gzip\": " << (gz ? "true" : "false")
       << ", \"generate_seconds\": " << genSec
       << ", \"decode_seconds\": " << decodeSec
       << ", \"decode_refs_per_sec\": " << decodeRefsPerSec
       << ", \"stackdist_seconds\": " << stackSec
       << ", \"stackdist_refs_per_sec\": " << stackRefsPerSec
       << ", \"multisim_seconds\": " << simSec
       << ", \"multisim_refs_per_sec\": " << simRefsPerSec
       << ", \"peak_rss_bytes\": " << rss
       << ", \"identical\": " << (ok ? "true" : "false")
       << ", \"report\": ";
  recorder.report().writeJson(json);
  json << "}\n";
  {
    std::ofstream trace("BENCH_trace_ingest_trace.json");
    recorder.report().writeChromeTrace(trace);
  }
  std::remove(path.c_str());
  std::cout << (ok ? "PASS" : "FAIL")
            << "; BENCH_trace_ingest.json written\n";
  return ok ? 0 : 1;
}
