// Extension: two-level exploration — the MemExplore loop extended one
// memory level down. For each workload, sweep (L1, L2) pairs and pick
// the minimum-energy stack; compare against the best single-level cache
// of the same total capacity.
#include "bench_util.hpp"

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/cachesim/cache_sim.hpp"
#include "memx/core/hierarchy_explorer.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Extension: (L1, L2) sweep vs best single-level cache");
  Table t({"kernel", "best stack", "stack energy (nJ)",
           "stack global mr", "flat cache (same bytes)",
           "flat energy (nJ)"});
  HierarchyRanges ranges;
  for (const Kernel& k : paperBenchmarks()) {
    const Trace trace = generateTrace(k);
    const auto points = exploreHierarchy(trace, ranges);

    const HierarchyPoint* best = &points.front();
    for (const HierarchyPoint& p : points) {
      if (p.energyNj < best->energyNj) best = &p;
    }

    // Single-level comparator with the same total on-chip bytes.
    const std::uint32_t totalBytes =
        best->l1.sizeBytes + best->l2.sizeBytes;
    std::uint32_t flatSize = 1;
    while (flatSize * 2 <= totalBytes) flatSize *= 2;
    CacheConfig flat;
    flat.sizeBytes = flatSize;
    flat.lineBytes = 16;
    const CacheStats flatStats = simulateTrace(flat, trace);
    const CacheEnergyModel flatModel(flat, EnergyParams{},
                                     measureAddrActivity(trace));

    t.addRow({k.name, best->label(), fmtSig3(best->energyNj),
              fmtFixed(best->globalMissRate, 3), flat.label(),
              fmtSig3(flatModel.totalNj(flatStats))});
  }
  std::cout << t;
  std::cout << "\nMost accesses hit the small L1 at small-array energy; "
               "the L2 keeps the\noff-chip traffic of a large cache. The "
               "stack wins whenever the kernel\nhas both a hot working "
               "set and a long tail.\n";
}

void BM_HierarchySweep(benchmark::State& state) {
  const Trace trace = generateTrace(matrixAddKernel(16, 1));
  HierarchyRanges ranges;
  ranges.maxL2Bytes = 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exploreHierarchy(trace, ranges));
  }
}
BENCHMARK(BM_HierarchySweep);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
