// Ablation: true LRU vs tree pseudo-LRU vs FIFO vs random.
//
// The paper's associativity study implicitly assumes LRU; embedded
// hardware ships tree-PLRU. This sweep bounds what that substitution
// costs on the benchmark kernels.
#include "bench_util.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: replacement policy at 4-way and 8-way C128L8");
  for (const std::uint32_t ways : {4u, 8u}) {
    Table t({"kernel", "LRU", "tree-PLRU", "FIFO", "random"});
    for (const Kernel& k : paperBenchmarks()) {
      std::vector<std::string> row{k.name};
      const Trace trace = generateTrace(k);
      for (const ReplacementPolicy policy :
           {ReplacementPolicy::LRU, ReplacementPolicy::TreePLRU,
            ReplacementPolicy::FIFO, ReplacementPolicy::Random}) {
        CacheConfig c = dm(128, 8, ways);
        c.replacement = policy;
        row.push_back(fmtFixed(simulateTrace(c, trace).missRate(), 4));
      }
      t.addRow(std::move(row));
    }
    std::cout << ways << "-way:\n" << t << '\n';
  }
  std::cout << "Tree-PLRU tracks true LRU within a fraction of a percent "
               "on every kernel;\nthe paper's LRU assumption is safe for "
               "embedded PLRU hardware.\n";
}

void BM_PlruSimulation(benchmark::State& state) {
  const Trace trace = generateTrace(sorKernel());
  CacheConfig c = dm(128, 8, 8);
  c.replacement = ReplacementPolicy::TreePLRU;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulateTrace(c, trace));
  }
}
BENCHMARK(BM_PlruSimulation);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
