// Ablation: Gray-coded vs binary address buses.
//
// The paper assumes Gray coding when counting address-bus switching
// (its E_dec and E_io terms). This ablation measures how much that
// assumption matters on the real traces.
#include "bench_util.hpp"

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: address-bus switching, Gray vs binary encoding");
  Table t({"kernel", "Gray (switches/access)", "binary (switches/access)",
           "ratio", "energy w/ Gray (nJ)", "energy w/ binary (nJ)"});
  for (const Kernel& k : paperBenchmarks()) {
    const Trace trace = generateTrace(k);
    const double gray = measureAddrActivity(trace, AddressEncoding::Gray);
    const double bin = measureAddrActivity(trace, AddressEncoding::Binary);

    // Energy under each activity figure at a representative point.
    const CacheConfig cache = dm(64, 8);
    EnergyParams p;
    const CacheEnergyModel mGray(cache, p, gray);
    const CacheEnergyModel mBin(cache, p, bin);
    const double mr = 0.1;
    t.addRow({k.name, fmtFixed(gray, 3), fmtFixed(bin, 3),
              fmtFixed(bin / std::max(gray, 1e-9), 2),
              fmtSig3(mGray.totalNj(k.referenceCount(), mr)),
              fmtSig3(mBin.totalNj(k.referenceCount(), mr))});
  }
  std::cout << t;
  std::cout << "\nGray coding reduces switching on the stride-dominated "
               "kernels; the total\nenergy impact is small because E_dec "
               "is a minor term (alpha = 0.001).\n";
}

void BM_BusMonitorGray(benchmark::State& state) {
  const Trace trace = generateTrace(compressKernel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        measureAddrActivity(trace, AddressEncoding::Gray));
  }
}
BENCHMARK(BM_BusMonitorGray);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
