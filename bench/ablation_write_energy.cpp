// Ablation: read-only energy accounting (the paper's model) vs full
// accounting including store traffic.
#include "bench_util.hpp"

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/cachesim/cache_sim.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: read-only vs write-inclusive energy, C64L8");
  Table t({"kernel", "policy", "read-only (nJ)", "with writes (nJ)",
           "delta"});
  for (const Kernel& k : paperBenchmarks()) {
    const Trace trace = generateTrace(k);
    for (const WritePolicy wp :
         {WritePolicy::WriteBack, WritePolicy::WriteThrough}) {
      CacheConfig c = dm(64, 8);
      c.writePolicy = wp;
      const CacheStats stats = simulateTrace(c, trace);
      const CacheEnergyModel model(c, EnergyParams{},
                                   measureAddrActivity(trace));
      const double readOnly = model.totalNj(stats);
      const double full = model.totalIncludingWritesNj(stats);
      t.addRow({k.name, toString(wp), fmtSig3(readOnly), fmtSig3(full),
                fmtFixed(100.0 * (full - readOnly) / readOnly, 1) + "%"});
    }
  }
  std::cout << t;
  std::cout << "\nWith write-back caches the store traffic adds a modest "
               "share; with\nwrite-through (no buffer) it would not be "
               "ignorable — quantifying the\npaper's implicit write-back "
               "assumption.\n";
}

void BM_WriteInclusiveEnergy(benchmark::State& state) {
  const Trace trace = generateTrace(compressKernel());
  CacheConfig c = dm(64, 8);
  const CacheStats stats = simulateTrace(c, trace);
  const CacheEnergyModel model(c, EnergyParams{}, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.totalIncludingWritesNj(stats));
  }
}
BENCHMARK(BM_WriteInclusiveEnergy);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
