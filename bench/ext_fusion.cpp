// Extension: loop fusion as a memory optimization alongside the paper's
// tiling and layout. Producer/consumer kernel pairs re-read arrays a
// whole kernel apart; fusing them turns that into intra-iteration reuse.
#include "bench_util.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/xform/fusion.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

Kernel producer(std::int64_t n) {
  Kernel k;
  k.name = "blur";
  k.arrays = {ArrayDecl{"in", {n, n}, 1}, ArrayDecl{"tmp", {n, n}, 1}};
  k.nest = LoopNest::rectangular({{1, n - 2}, {1, n - 2}});
  k.body = {
      makeAccess(0, {AffineExpr::var(0), AffineExpr::var(1)}),
      makeAccess(0, {AffineExpr::var(0),
                     AffineExpr::var(1).plusConstant(1)}),
      makeAccess(1, {AffineExpr::var(0), AffineExpr::var(1)},
                 AccessType::Write),
  };
  return k;
}

Kernel consumer(std::int64_t n) {
  Kernel k;
  k.name = "sharpen";
  k.arrays = {ArrayDecl{"tmp", {n, n}, 1}, ArrayDecl{"out", {n, n}, 1}};
  k.nest = LoopNest::rectangular({{1, n - 2}, {1, n - 2}});
  k.body = {
      makeAccess(0, {AffineExpr::var(0), AffineExpr::var(1)}),
      makeAccess(1, {AffineExpr::var(0), AffineExpr::var(1)},
                 AccessType::Write),
  };
  return k;
}

void printFigure() {
  section("Extension: loop fusion vs sequential kernels");
  Table t({"cache", "sequential miss rate", "fused miss rate",
           "improvement"});
  const std::int64_t n = 32;
  const Kernel fused = fuseKernels(producer(n), consumer(n));

  for (const auto& [size, ways] :
       {std::pair{64u, 2u}, std::pair{128u, 2u}, std::pair{256u, 4u}}) {
    const CacheConfig cache = dm(size, 8, ways);
    // Fusion composes with the Section-4.1 assignment: place the fused
    // kernel's arrays conflict-free, then compare traversals.
    const MemoryLayout layout =
        assignConflictFree(fused, cache).layout;
    Kernel prodView = fused;
    prodView.body.assign(fused.body.begin(), fused.body.begin() + 3);
    Kernel consView = fused;
    consView.body.assign(fused.body.begin() + 3, fused.body.end());
    Trace sequential = generateTrace(prodView, layout);
    sequential.append(generateTrace(consView, layout));
    const Trace fusedTrace = generateTrace(fused, layout);

    const double seq = simulateTrace(cache, sequential).missRate();
    const double fus = simulateTrace(cache, fusedTrace).missRate();
    t.addRow({cache.label(), fmtFixed(seq, 3), fmtFixed(fus, 3),
              fmtFixed(seq / std::max(fus, 1e-9), 2) + "x"});
  }
  std::cout << t;
  std::cout << "\nFusion removes the tmp-array round trip entirely — the "
               "consumer reads the\nline the producer just wrote.\n";
}

void BM_FuseKernels(benchmark::State& state) {
  const Kernel a = producer(32);
  const Kernel b = consumer(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuseKernels(a, b));
  }
}
BENCHMARK(BM_FuseKernels);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
