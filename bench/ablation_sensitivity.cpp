// Ablation: sensitivity of the selected configuration to the model
// constants — the generalization of Figure 1's Em study.
#include "bench_util.hpp"

#include "memx/core/sensitivity.hpp"
#include "memx/energy/sram_catalog.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

ExploreOptions sweepBase() {
  ExploreOptions o = paperOptions();
  o.ranges.maxCacheBytes = 512;
  o.ranges.sweepAssociativity = false;
  o.ranges.sweepTiling = false;
  return o;
}

void printRows(const std::vector<SensitivityRow>& rows,
               const std::string& name) {
  Table t({name, "min-energy config", "energy (nJ)", "min-cycle config",
           "cycles"});
  for (const SensitivityRow& r : rows) {
    t.addRow({fmtSig3(r.parameterValue), r.minEnergyKey.label(),
              fmtSig3(r.minEnergyNj), r.minCycleKey.label(),
              fmtSig3(r.minCycles)});
  }
  std::cout << t;
  std::cout << (selectionStable(rows)
                    ? "selection STABLE across the range\n\n"
                    : "selection MOVES across the range\n\n");
}

void printFigure() {
  section("Ablation: Em sensitivity (Compress)");
  const double ems[] = {1.0, kEmLow2MbitNj, kEmCypress2MbitNj, 10.0,
                        kEmHigh16MbitNj};
  printRows(sweepEmSensitivity(compressKernel(), ems, sweepBase()), "Em");

  section("Ablation: data-bus activity sensitivity (Compress)");
  const double activities[] = {0.1, 0.25, 0.5, 0.75, 1.0};
  printRows(sweepSensitivity(
                compressKernel(), activities,
                [](ExploreOptions& o, double v) {
                  o.energy.dataActivity = v;
                },
                sweepBase()),
            "activity");

  section("Ablation: beta (cell energy) sensitivity (Compress)");
  const double betas[] = {0.5, 1.0, 2.0, 4.0, 8.0};
  printRows(sweepSensitivity(
                compressKernel(), betas,
                [](ExploreOptions& o, double v) { o.energy.betaPj = v; },
                sweepBase()),
            "beta (pJ)");
}

void BM_SensitivitySweep(benchmark::State& state) {
  const double ems[] = {2.0, 4.0};
  ExploreOptions o = sweepBase();
  o.ranges.maxCacheBytes = 128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sweepEmSensitivity(dequantKernel(), ems, o));
  }
}
BENCHMARK(BM_SensitivitySweep);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
