// Figure 4: Compress — variation in energy for different cache sizes and
// line sizes (Em = 4.95 nJ, the Cypress CY7C SRAM), plus the paper's
// bounded selections: minimum-energy configuration, minimum-time
// configuration, and the choices under a cycle bound / an energy bound.
#include "bench_util.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Figure 4: Compress energy (nJ) vs (C, L), Em = 4.95 nJ");
  ExploreOptions o = paperOptions();
  o.ranges.maxCacheBytes = 512;
  o.ranges.sweepAssociativity = false;
  o.ranges.sweepTiling = false;
  const Explorer ex(o);
  const Kernel k = compressKernel();

  Table t({"cache", "L4", "L8", "L16", "L32", "L64"});
  for (const std::uint32_t size : {16u, 32u, 64u, 128u, 256u, 512u}) {
    std::vector<std::string> row{"C" + std::to_string(size)};
    for (const std::uint32_t line : {4u, 8u, 16u, 32u, 64u}) {
      if (line > size / 4) {
        row.push_back("-");
        continue;
      }
      row.push_back(fmtSig3(ex.evaluate(k, dm(size, line)).energyNj));
    }
    t.addRow(std::move(row));
  }
  std::cout << t;

  const ExplorationResult r = ex.explore(k);
  const auto minE = minEnergyPoint(r.points);
  const auto minC = minCyclePoint(r.points);
  std::cout << "\nminimum-energy configuration: " << minE->label() << " ("
            << fmtSig3(minE->energyNj) << " nJ, " << fmtSig3(minE->cycles)
            << " cycles)\n";
  std::cout << "minimum-time configuration:   " << minC->label() << " ("
            << fmtSig3(minC->cycles) << " cycles, "
            << fmtSig3(minC->energyNj) << " nJ)\n";

  // The paper's walkthrough: a cycle bound forces a compromise.
  const double cycleBound = 1.6 * minC->cycles;
  const auto underCycles = minEnergyPoint(r.points, cycleBound);
  std::cout << "min-energy with cycles <= " << fmtSig3(cycleBound) << ": "
            << underCycles->label() << '\n';
  const double energyBound = 1.5 * minE->energyNj;
  const auto underEnergy = minCyclePoint(r.points, energyBound);
  std::cout << "min-time with energy (nJ) <= " << fmtSig3(energyBound)
            << ": " << underEnergy->label() << '\n';

  // The paper reports C16L4 as the minimum-energy configuration. Its
  // Em * line_size term charges one SRAM access per *byte*; the Cypress
  // part is 16 bits wide, so the physically-consistent reading charges
  // one access per two bytes. Under that reading the selection matches
  // the paper exactly:
  ExploreOptions o16 = o;
  o16.energy.mainBytesPerAccess = 2;
  const Explorer ex16(o16);
  const auto minE16 = minEnergyPoint(ex16.explore(k).points);
  std::cout << "\nwith a 16-bit main-memory part (Em per 2 bytes): "
               "min-energy = "
            << minE16->label() << " ("
            << fmtSig3(minE16->energyNj) << " nJ)"
            << (minE16->key.cacheBytes == 16
                    ? "  <- the paper's C16L4 corner\n"
                    : "\n");
}

void BM_FullCompressSweep(benchmark::State& state) {
  ExploreOptions o = paperOptions();
  o.ranges.maxCacheBytes = 512;
  o.ranges.sweepAssociativity = false;
  o.ranges.sweepTiling = false;
  for (auto _ : state) {
    const Explorer ex(o);  // fresh layout memo per iteration
    benchmark::DoNotOptimize(ex.explore(compressKernel()));
  }
}
BENCHMARK(BM_FullCompressSweep);

void BM_ParetoExtraction(benchmark::State& state) {
  ExploreOptions o = paperOptions();
  o.ranges.sweepAssociativity = false;
  o.ranges.sweepTiling = false;
  const Explorer ex(o);
  const ExplorationResult r = ex.explore(compressKernel());
  for (auto _ : state) {
    benchmark::DoNotOptimize(paretoFront(r.points));
  }
}
BENCHMARK(BM_ParetoExtraction);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
