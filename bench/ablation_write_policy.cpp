// Ablation: write policy. The paper models READ energy only (reads
// dominate); this ablation quantifies the off-chip write traffic the
// choice of write policy would add, justifying that simplification.
#include "bench_util.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: write policy, C64L8 (off-chip write traffic)");
  Table t({"kernel", "writes", "WB writebacks", "WT mem writes",
           "WB traffic (lines)", "WT traffic (words)"});
  for (const Kernel& k : paperBenchmarks()) {
    const Trace trace = generateTrace(k);

    CacheConfig wb = dm(64, 8);
    wb.writePolicy = WritePolicy::WriteBack;
    const CacheStats sWb = simulateTrace(wb, trace);

    CacheConfig wt = dm(64, 8);
    wt.writePolicy = WritePolicy::WriteThrough;
    const CacheStats sWt = simulateTrace(wt, trace);

    t.addRow({k.name, std::to_string(sWb.writes),
              std::to_string(sWb.writebacks),
              std::to_string(sWt.memWrites),
              std::to_string(sWb.writebacks),
              std::to_string(sWt.memWrites)});
  }
  std::cout << t;
  std::cout << "\nRead fills dominate the off-chip traffic on every "
               "kernel, supporting the\npaper's read-only energy "
               "accounting.\n";
}

void BM_WriteBackSim(benchmark::State& state) {
  const Trace trace = generateTrace(compressKernel());
  CacheConfig c = dm(64, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulateTrace(c, trace));
  }
}
BENCHMARK(BM_WriteBackSim);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
