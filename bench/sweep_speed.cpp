// Sweep-engine speed check: the full Compress sweep on the reference
// per-point path (Explorer::evaluate per sweep key, regenerating the
// trace every time) versus the shared-trace one-pass engine (explore()
// and exploreParallel()), plus an instrumented parallel run with an
// obs::Recorder attached to measure the observability layer's overhead
// (budget: < 5%), plus two backend comparisons — the same serial
// shared-trace sweep forced onto SweepBackend::MultiSim versus
// SweepBackend::StackDist (the sweep is LRU-only, so the analytic
// backend applies; budget: >= 2x points/sec), once on the paper's
// read-only energy metric and once with write-back + write energy on
// (exact writebacks via dirty-stack accounting; same >= 2x budget,
// and Auto must resolve that sweep to StackDist), plus the same
// comparison on FIFO and tree-PLRU sweeps (served by the single-pass
// policy-grid engine; same bit-identity requirement and >= 2x
// points/sec budget, and Auto must resolve both to StackDist). Asserts
// every path produces bit-identical DesignPoint vectors, then writes
// BENCH_sweep_speed.json with points/sec of each path and backend, the
// speedup (including fifo_*/plru_* fields for the grid engine), the
// sink overhead, and the full RunReport, and BENCH_sweep_trace.json
// with the chrome://tracing worker timeline. Exits nonzero on any
// mismatch or blown budget.
//
// This is a plain main (no google-benchmark): the determinism check is
// the point, and each path is simply timed best-of-kReps (every rep does
// the same cold-trace work) to shrug off scheduler noise.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "memx/core/parallel_explorer.hpp"

namespace {

using memx::ConfigKey;
using memx::DesignPoint;
using memx::ExplorationResult;
using memx::Explorer;
using memx::Kernel;

double seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Bit-exact comparison: the shared-trace engine must not perturb a
/// single ULP relative to per-point evaluation.
bool identical(const std::vector<DesignPoint>& a,
               const std::vector<DesignPoint>& b, const char* label) {
  if (a.size() != b.size()) {
    std::cerr << "MISMATCH (" << label << "): " << a.size() << " vs "
              << b.size() << " points\n";
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const DesignPoint& x = a[i];
    const DesignPoint& y = b[i];
    const bool same =
        x.key == y.key && x.accesses == y.accesses &&
        x.missRate == y.missRate && x.cycles == y.cycles &&
        x.energyNj == y.energyNj;
    if (!same) {
      std::cerr << "MISMATCH (" << label << ") at point " << i << " "
                << x.key.label() << '\n';
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const Kernel kernel = memx::compressKernel();
  // The simulating backend is pinned so the baseline/shared/parallel
  // timings keep measuring what they always measured; the analytic
  // backend gets its own timed path below.
  memx::ExploreOptions simOptions = memx::bench::paperOptions();
  simOptions.backend = memx::SweepBackend::MultiSim;
  const Explorer grid(simOptions);
  const std::vector<ConfigKey> keys = grid.sweepKeys();

  memx::bench::section("Sweep-engine speed (" + kernel.name + ", " +
                       std::to_string(keys.size()) + " points)");

  // Pre-warm the layout memo (untimed): the Section-4.1 conflict-free
  // assignment is computed and memoized identically by every path and is
  // untouched by the sweep engine, so the timings below isolate what the
  // engine changed — trace generation and cache simulation.
  (void)grid.planSweep(kernel, keys);

  // The engine paths finish in ~10 ms, so any single rep is at the mercy
  // of one scheduler blip; best-of-9 reliably lands each timing in a
  // quiet window (the whole bench still runs in ~2 s).
  constexpr int kReps = 9;

  // Reference path: one evaluate() per key, trace regenerated per point.
  double baseSec = 1e30;
  std::vector<DesignPoint> baseline;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<DesignPoint> pts;
    pts.reserve(keys.size());
    for (const ConfigKey& key : keys) {
      pts.push_back(grid.evaluate(kernel, grid.configFor(key), key.tiling));
    }
    baseSec = std::min(baseSec, seconds(t0, std::chrono::steady_clock::now()));
    baseline = std::move(pts);
  }

  // Shared-trace one-pass engine, serial and parallel. Each serial rep
  // runs on a pristine copy of `grid` (warm layouts, empty trace cache)
  // so every rep generates the group traces from scratch, like the
  // baseline regenerates its per-point traces. The serial timing itself
  // happens in the interleaved backend loop below so the backend
  // speedups pair measurements taken under the same machine conditions.
  double sharedSec = 1e30;
  std::vector<DesignPoint> sharedPts;

  double parSec = 1e30;
  std::vector<DesignPoint> parPts;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    ExplorationResult r = memx::exploreParallel(grid, kernel);
    parSec = std::min(parSec, seconds(t0, std::chrono::steady_clock::now()));
    parPts = std::move(r.points);
  }

  // Instrumented parallel run: recorder attached, fresh per rep so the
  // kept report describes exactly one run. The timing difference against
  // the uninstrumented parallel path is the observability overhead.
  double obsSec = 1e30;
  std::vector<DesignPoint> obsPts;
  memx::obs::RunReport report;
  for (int rep = 0; rep < kReps; ++rep) {
    memx::obs::Recorder recorder;
    Explorer observed = grid;
    observed.setRecorder(&recorder);
    const auto t0 = std::chrono::steady_clock::now();
    ExplorationResult r = memx::exploreParallel(observed, kernel);
    obsSec = std::min(obsSec, seconds(t0, std::chrono::steady_clock::now()));
    obsPts = std::move(r.points);
    report = recorder.report();
  }

  // Backend comparison: the identical serial shared-trace sweep forced
  // onto the stack-distance backend (this sweep is LRU/write-allocate
  // throughout, so the analytic engine is exact; the property suite
  // pins bit-equality, re-asserted here), once on the paper's read-only
  // metric and once with write-back + write energy on. The write-back
  // sweep — the one the paper's write-energy experiments run, and
  // ineligible for the analytic backend before dirty-stack accounting —
  // must additionally be served by StackDist under Auto.
  memx::ExploreOptions stackOptions = memx::bench::paperOptions();
  stackOptions.backend = memx::SweepBackend::StackDist;
  const Explorer stackGrid(stackOptions);
  (void)stackGrid.planSweep(kernel, keys);  // warm the layout memo too

  memx::ExploreOptions wbOptions = memx::bench::paperOptions();
  wbOptions.includeWriteEnergy = true;  // writePolicy defaults to WriteBack
  const bool wbAutoIsStackDist =
      Explorer(wbOptions).resolvedBackend() == memx::SweepBackend::StackDist;
  if (!wbAutoIsStackDist) {
    std::cerr << "MISMATCH: Auto backend did not resolve to StackDist for "
                 "the write-back + write-energy sweep\n";
  }

  wbOptions.backend = memx::SweepBackend::MultiSim;
  const Explorer wbSimGrid(wbOptions);
  (void)wbSimGrid.planSweep(kernel, keys);  // warm the layout memo
  wbOptions.backend = memx::SweepBackend::StackDist;
  const Explorer wbStackGrid(wbOptions);
  (void)wbStackGrid.planSweep(kernel, keys);

  // Policy-grid comparison: the same sweep under FIFO and tree-PLRU
  // replacement, where StackDist means the single-pass PolicyGridProfile
  // engine instead of the Hill-Smith profile. Auto must resolve both to
  // the analytic backend, and the grid must beat per-config simulation
  // by the same >= 2x floor while staying bit-identical.
  memx::ExploreOptions fifoOptions = memx::bench::paperOptions();
  fifoOptions.replacement = memx::ReplacementPolicy::FIFO;
  memx::ExploreOptions plruOptions = memx::bench::paperOptions();
  plruOptions.replacement = memx::ReplacementPolicy::TreePLRU;
  const bool gridAutoIsStackDist =
      Explorer(fifoOptions).resolvedBackend() ==
          memx::SweepBackend::StackDist &&
      Explorer(plruOptions).resolvedBackend() ==
          memx::SweepBackend::StackDist;
  if (!gridAutoIsStackDist) {
    std::cerr << "MISMATCH: Auto backend did not resolve to StackDist for "
                 "the FIFO/PLRU sweeps\n";
  }

  fifoOptions.backend = memx::SweepBackend::MultiSim;
  const Explorer fifoSimGrid(fifoOptions);
  (void)fifoSimGrid.planSweep(kernel, keys);
  fifoOptions.backend = memx::SweepBackend::StackDist;
  const Explorer fifoStackGrid(fifoOptions);
  (void)fifoStackGrid.planSweep(kernel, keys);

  plruOptions.backend = memx::SweepBackend::MultiSim;
  const Explorer plruSimGrid(plruOptions);
  (void)plruSimGrid.planSweep(kernel, keys);
  plruOptions.backend = memx::SweepBackend::StackDist;
  const Explorer plruStackGrid(plruOptions);
  (void)plruStackGrid.planSweep(kernel, keys);

  // The four backend timings are interleaved inside one rep loop: each
  // speedup pairs two ~10 ms measurements taken back to back, so both
  // sides of a ratio see the same background-load conditions, and the
  // budgets check the median of the per-rep ratios — separate loops
  // (and ratios of independently-taken minima) made the speedups
  // seesaw on a busy machine even at best-of-9.
  auto timeExplore = [&](const Explorer& g, double& best,
                         std::vector<DesignPoint>& pts) {
    const Explorer fresh = g;  // warm layouts, empty trace cache
    const auto t0 = std::chrono::steady_clock::now();
    ExplorationResult r = fresh.explore(kernel);
    const double sec = seconds(t0, std::chrono::steady_clock::now());
    best = std::min(best, sec);
    pts = std::move(r.points);
    return sec;
  };
  double stackSec = 1e30, wbSimSec = 1e30, wbStackSec = 1e30;
  double fifoSimSec = 1e30, fifoStackSec = 1e30;
  double plruSimSec = 1e30, plruStackSec = 1e30;
  std::vector<DesignPoint> stackPts, wbSimPts, wbStackPts;
  std::vector<DesignPoint> fifoSimPts, fifoStackPts, plruSimPts,
      plruStackPts;
  std::vector<double> stackRatios, wbRatios, fifoRatios, plruRatios;
  for (int rep = 0; rep < kReps; ++rep) {
    const double sharedT = timeExplore(grid, sharedSec, sharedPts);
    const double stackT = timeExplore(stackGrid, stackSec, stackPts);
    const double wbSimT = timeExplore(wbSimGrid, wbSimSec, wbSimPts);
    const double wbStackT = timeExplore(wbStackGrid, wbStackSec, wbStackPts);
    const double fifoSimT = timeExplore(fifoSimGrid, fifoSimSec, fifoSimPts);
    const double fifoStackT =
        timeExplore(fifoStackGrid, fifoStackSec, fifoStackPts);
    const double plruSimT = timeExplore(plruSimGrid, plruSimSec, plruSimPts);
    const double plruStackT =
        timeExplore(plruStackGrid, plruStackSec, plruStackPts);
    stackRatios.push_back(sharedT / stackT);
    wbRatios.push_back(wbSimT / wbStackT);
    fifoRatios.push_back(fifoSimT / fifoStackT);
    plruRatios.push_back(plruSimT / plruStackT);
  }

  const bool ok = identical(baseline, sharedPts, "explore") &&
                  identical(baseline, parPts, "exploreParallel") &&
                  identical(baseline, obsPts, "exploreParallel+recorder") &&
                  identical(baseline, stackPts, "explore+stackdist") &&
                  identical(wbSimPts, wbStackPts,
                            "writeback+write-energy stackdist") &&
                  identical(fifoSimPts, fifoStackPts, "fifo policy grid") &&
                  identical(plruSimPts, plruStackPts, "plru policy grid") &&
                  wbAutoIsStackDist && gridAutoIsStackDist;
  const double n = static_cast<double>(keys.size());
  const double speedup = baseSec / sharedSec;
  auto medianOf = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double backendSpeedup = medianOf(stackRatios);
  const double wbBackendSpeedup = medianOf(wbRatios);
  const double fifoBackendSpeedup = medianOf(fifoRatios);
  const double plruBackendSpeedup = medianOf(plruRatios);
  const double overheadPct = 100.0 * (obsSec - parSec) / parSec;

  std::printf("per-point baseline : %8.3f s  (%9.1f points/s)\n", baseSec,
              n / baseSec);
  std::printf("shared-trace serial: %8.3f s  (%9.1f points/s)  %.2fx\n",
              sharedSec, n / sharedSec, speedup);
  std::printf("shared-trace para. : %8.3f s  (%9.1f points/s)  %.2fx\n",
              parSec, n / parSec, baseSec / parSec);
  std::printf("para. + report sink: %8.3f s  (%9.1f points/s)  %+.1f%% overhead\n",
              obsSec, n / obsSec, overheadPct);
  std::printf("stackdist backend  : %8.3f s  (%9.1f points/s)  %.2fx vs multisim\n",
              stackSec, n / stackSec, backendSpeedup);
  std::printf("wb+energy multisim : %8.3f s  (%9.1f points/s)\n", wbSimSec,
              n / wbSimSec);
  std::printf("wb+energy stackdist: %8.3f s  (%9.1f points/s)  %.2fx vs multisim\n",
              wbStackSec, n / wbStackSec, wbBackendSpeedup);
  std::printf("fifo multisim      : %8.3f s  (%9.1f points/s)\n", fifoSimSec,
              n / fifoSimSec);
  std::printf("fifo policy grid   : %8.3f s  (%9.1f points/s)  %.2fx vs multisim\n",
              fifoStackSec, n / fifoStackSec, fifoBackendSpeedup);
  std::printf("plru multisim      : %8.3f s  (%9.1f points/s)\n", plruSimSec,
              n / plruSimSec);
  std::printf("plru policy grid   : %8.3f s  (%9.1f points/s)  %.2fx vs multisim\n",
              plruStackSec, n / plruStackSec, plruBackendSpeedup);
  std::printf("bit-identical      : %s\n", ok ? "yes" : "NO");

  // Budgets: the analytic backend must earn its keep on an LRU-only
  // sweep — both on the read-only metric and on the write-back +
  // write-energy sweep it newly serves — and the report sink must stay
  // in the noise (absolute guard for sub-100ms runs where one scheduler
  // blip is a large percentage).
  const bool fastEnough =
      backendSpeedup >= 2.0 && wbBackendSpeedup >= 2.0 &&
      fifoBackendSpeedup >= 2.0 && plruBackendSpeedup >= 2.0;
  if (backendSpeedup < 2.0) {
    std::cerr << "BUDGET: stackdist backend speedup " << backendSpeedup
              << "x is below the 2x floor\n";
  }
  if (wbBackendSpeedup < 2.0) {
    std::cerr << "BUDGET: write-back stackdist backend speedup "
              << wbBackendSpeedup << "x is below the 2x floor\n";
  }
  if (fifoBackendSpeedup < 2.0) {
    std::cerr << "BUDGET: FIFO policy-grid speedup " << fifoBackendSpeedup
              << "x is below the 2x floor\n";
  }
  if (plruBackendSpeedup < 2.0) {
    std::cerr << "BUDGET: PLRU policy-grid speedup " << plruBackendSpeedup
              << "x is below the 2x floor\n";
  }
  const bool lowOverhead = overheadPct < 5.0 || (obsSec - parSec) < 0.05;
  if (!lowOverhead) {
    std::cerr << "BUDGET: instrumentation overhead " << overheadPct
              << "% exceeds the 5% budget\n";
  }

  std::ofstream json("BENCH_sweep_speed.json");
  json << "{\"workload\": \"" << kernel.name << "\", \"points\": "
       << keys.size() << ", \"per_point_seconds\": " << baseSec
       << ", \"shared_seconds\": " << sharedSec
       << ", \"parallel_seconds\": " << parSec
       << ", \"instrumented_seconds\": " << obsSec
       << ", \"per_point_points_per_sec\": " << n / baseSec
       << ", \"shared_points_per_sec\": " << n / sharedSec
       << ", \"parallel_points_per_sec\": " << n / parSec
       << ", \"instrumented_points_per_sec\": " << n / obsSec
       << ", \"stackdist_seconds\": " << stackSec
       << ", \"stackdist_points_per_sec\": " << n / stackSec
       << ", \"writeback_multisim_seconds\": " << wbSimSec
       << ", \"writeback_multisim_points_per_sec\": " << n / wbSimSec
       << ", \"writeback_stackdist_seconds\": " << wbStackSec
       << ", \"writeback_stackdist_points_per_sec\": " << n / wbStackSec
       << ", \"writeback_backend_speedup\": " << wbBackendSpeedup
       << ", \"fifo_multisim_seconds\": " << fifoSimSec
       << ", \"fifo_multisim_points_per_sec\": " << n / fifoSimSec
       << ", \"fifo_stackdist_seconds\": " << fifoStackSec
       << ", \"fifo_stackdist_points_per_sec\": " << n / fifoStackSec
       << ", \"fifo_backend_speedup\": " << fifoBackendSpeedup
       << ", \"plru_multisim_seconds\": " << plruSimSec
       << ", \"plru_multisim_points_per_sec\": " << n / plruSimSec
       << ", \"plru_stackdist_seconds\": " << plruStackSec
       << ", \"plru_stackdist_points_per_sec\": " << n / plruStackSec
       << ", \"plru_backend_speedup\": " << plruBackendSpeedup
       << ", \"speedup\": " << speedup
       << ", \"backend_speedup\": " << backendSpeedup
       << ", \"sink_overhead_pct\": " << overheadPct
       << ", \"identical\": " << (ok ? "true" : "false");
  memx::bench::emitRunReport(report, json, "BENCH_sweep_trace.json");
  json << "}\n";

  return (ok && fastEnough && lowOverhead) ? 0 : 1;
}
