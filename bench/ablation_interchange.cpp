// Ablation: loop interchange vs tiling on the transpose kernel.
//
// The paper's Example 3 argues that interchange cannot fix a[i][j] =
// b[j][i] — whichever loop is innermost, one array is stride-n — while
// tiling fixes both. This bench verifies that argument by simulation.
#include "bench_util.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/xform/tiling.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Ablation: interchange vs tiling on transpose (Example 3)");
  const Kernel original = transposeKernel(32);
  const Kernel swapped = interchange(original, 0, 1);

  ExploreOptions o = paperOptions();
  const Explorer ex(o);
  const CacheConfig cache = dm(128, 8);

  Table t({"variant", "miss rate", "cycles", "energy (nJ)"});
  const DesignPoint base = ex.evaluate(original, cache, 1);
  t.addRow({"original (i, j)", fmtFixed(base.missRate, 3),
            fmtSig3(base.cycles), fmtSig3(base.energyNj)});

  // Interchange produces a structurally different kernel; evaluate it
  // through the same pipeline.
  const DesignPoint inter = ex.evaluate(swapped, cache, 1);
  t.addRow({"interchanged (j, i)", fmtFixed(inter.missRate, 3),
            fmtSig3(inter.cycles), fmtSig3(inter.energyNj)});

  for (const std::uint32_t b : {2u, 4u}) {
    const DesignPoint tiled = ex.evaluate(original, cache, b);
    t.addRow({"tiled B=" + std::to_string(b),
              fmtFixed(tiled.missRate, 3), fmtSig3(tiled.cycles),
              fmtSig3(tiled.energyNj)});
  }
  std::cout << t;
  std::cout << "\nInterchange merely swaps which array streams "
               "(miss rates comparable);\ntiling is the transform that "
               "actually removes misses — the paper's\nExample 3 "
               "argument, verified by simulation.\n";
}

void BM_Interchange(benchmark::State& state) {
  const Kernel k = transposeKernel(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interchange(k, 0, 1));
  }
}
BENCHMARK(BM_Interchange);

void BM_Tile2D(benchmark::State& state) {
  const Kernel k = transposeKernel(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tile2D(k, 4));
  }
}
BENCHMARK(BM_Tile2D);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
