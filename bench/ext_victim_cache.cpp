// Extension: hardware vs software conflict elimination.
//
// The paper removes conflict misses with data placement (Section 4.1);
// Jouppi's victim cache removes them with hardware. This bench pits the
// two against each other on the word-array kernels whose rows alias.
#include "bench_util.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/victim_cache.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace {

using namespace memx;
using namespace memx::bench;

void printFigure() {
  section("Extension: Section-4.1 layout vs victim cache, C64L8");
  const CacheConfig cache = dm(64, 8);
  Table t({"kernel", "plain DM", "victim x2", "victim x4",
           "4.1 layout", "layout + victim x2"});
  for (Kernel k : {compressKernel(32, 4), sorKernel(33, 4),
                   dequantKernel(32, 4), pdeKernel(33, 4)}) {
    const Trace tight = generateTrace(k, sequentialLayout(k));
    const AssignmentPlan plan = assignConflictFree(k, cache);
    const Trace optimized = generateTrace(k, plan.layout);

    CacheSim plain(cache);
    plain.run(tight);

    VictimCache v2(cache, 2);
    v2.run(tight);
    VictimCache v4(cache, 4);
    v4.run(tight);

    CacheSim layoutOnly(cache);
    layoutOnly.run(optimized);

    VictimCache both(cache, 2);
    both.run(optimized);

    t.addRow({k.name, fmtFixed(plain.stats().missRate(), 3),
              fmtFixed(v2.stats().effectiveMissRate(), 3),
              fmtFixed(v4.stats().effectiveMissRate(), 3),
              fmtFixed(layoutOnly.stats().missRate(), 3),
              fmtFixed(both.stats().effectiveMissRate(), 3)});
  }
  std::cout << t;
  std::cout << "\nBoth attacks remove the same conflict misses; the "
               "software fix needs no\nextra silicon, the hardware fix "
               "needs no control over data placement.\n";
}

void BM_VictimCacheRun(benchmark::State& state) {
  const Kernel k = compressKernel(32, 4);
  const Trace trace = generateTrace(k);
  for (auto _ : state) {
    VictimCache vc(dm(64, 8), 4);
    vc.run(trace);
    benchmark::DoNotOptimize(vc.stats());
  }
}
BENCHMARK(BM_VictimCacheRun);

}  // namespace

MEMX_BENCH_MAIN(printFigure)
