file(REMOVE_RECURSE
  "CMakeFiles/mpeg_casestudy.dir/mpeg_casestudy.cpp.o"
  "CMakeFiles/mpeg_casestudy.dir/mpeg_casestudy.cpp.o.d"
  "mpeg_casestudy"
  "mpeg_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpeg_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
