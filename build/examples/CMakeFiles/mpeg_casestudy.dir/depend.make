# Empty dependencies file for mpeg_casestudy.
# This may be replaced when dependencies are built.
