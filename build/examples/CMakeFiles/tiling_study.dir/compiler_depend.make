# Empty compiler generated dependencies file for tiling_study.
# This may be replaced when dependencies are built.
