file(REMOVE_RECURSE
  "CMakeFiles/tiling_study.dir/tiling_study.cpp.o"
  "CMakeFiles/tiling_study.dir/tiling_study.cpp.o.d"
  "tiling_study"
  "tiling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
