file(REMOVE_RECURSE
  "CMakeFiles/layout_padding.dir/layout_padding.cpp.o"
  "CMakeFiles/layout_padding.dir/layout_padding.cpp.o.d"
  "layout_padding"
  "layout_padding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_padding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
