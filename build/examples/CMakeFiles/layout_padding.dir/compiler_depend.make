# Empty compiler generated dependencies file for layout_padding.
# This may be replaced when dependencies are built.
