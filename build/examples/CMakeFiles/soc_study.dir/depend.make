# Empty dependencies file for soc_study.
# This may be replaced when dependencies are built.
