file(REMOVE_RECURSE
  "CMakeFiles/soc_study.dir/soc_study.cpp.o"
  "CMakeFiles/soc_study.dir/soc_study.cpp.o.d"
  "soc_study"
  "soc_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
