file(REMOVE_RECURSE
  "CMakeFiles/explore_kernel.dir/explore_kernel.cpp.o"
  "CMakeFiles/explore_kernel.dir/explore_kernel.cpp.o.d"
  "explore_kernel"
  "explore_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
