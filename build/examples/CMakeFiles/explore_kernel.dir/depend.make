# Empty dependencies file for explore_kernel.
# This may be replaced when dependencies are built.
