file(REMOVE_RECURSE
  "CMakeFiles/memx_cli.dir/memx_cli.cpp.o"
  "CMakeFiles/memx_cli.dir/memx_cli.cpp.o.d"
  "memx_cli"
  "memx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
