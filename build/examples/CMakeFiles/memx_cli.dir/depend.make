# Empty dependencies file for memx_cli.
# This may be replaced when dependencies are built.
