# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_layout_padding "/root/repo/build/examples/layout_padding")
set_tests_properties(example_layout_padding PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tiling_study "/root/repo/build/examples/tiling_study")
set_tests_properties(example_tiling_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_soc_study "/root/repo/build/examples/soc_study")
set_tests_properties(example_soc_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_kernels "/root/repo/build/examples/memx_cli" "kernels")
set_tests_properties(example_cli_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_layout "/root/repo/build/examples/memx_cli" "layout" "compress" "--cache" "C64L8")
set_tests_properties(example_cli_layout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_workingset "/root/repo/build/examples/memx_cli" "workingset" "sor")
set_tests_properties(example_cli_workingset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_spm "/root/repo/build/examples/memx_cli" "spm" "fir")
set_tests_properties(example_cli_spm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_legality "/root/repo/build/examples/memx_cli" "legality" "sor")
set_tests_properties(example_cli_legality PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_file_kernel "/root/repo/build/examples/memx_cli" "legality" "/root/repo/examples/kernels/compress.mx")
set_tests_properties(example_cli_file_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_conv3 "/root/repo/build/examples/memx_cli" "legality" "/root/repo/examples/kernels/conv3.mx")
set_tests_properties(example_cli_conv3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
