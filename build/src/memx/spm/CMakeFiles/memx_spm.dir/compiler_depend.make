# Empty compiler generated dependencies file for memx_spm.
# This may be replaced when dependencies are built.
