file(REMOVE_RECURSE
  "CMakeFiles/memx_spm.dir/allocation.cpp.o"
  "CMakeFiles/memx_spm.dir/allocation.cpp.o.d"
  "CMakeFiles/memx_spm.dir/scratchpad.cpp.o"
  "CMakeFiles/memx_spm.dir/scratchpad.cpp.o.d"
  "CMakeFiles/memx_spm.dir/spm_explorer.cpp.o"
  "CMakeFiles/memx_spm.dir/spm_explorer.cpp.o.d"
  "libmemx_spm.a"
  "libmemx_spm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_spm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
