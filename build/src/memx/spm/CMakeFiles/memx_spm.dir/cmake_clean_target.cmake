file(REMOVE_RECURSE
  "libmemx_spm.a"
)
