file(REMOVE_RECURSE
  "libmemx_util.a"
)
