# Empty compiler generated dependencies file for memx_util.
# This may be replaced when dependencies are built.
