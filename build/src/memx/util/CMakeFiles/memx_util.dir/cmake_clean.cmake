file(REMOVE_RECURSE
  "CMakeFiles/memx_util.dir/assert.cpp.o"
  "CMakeFiles/memx_util.dir/assert.cpp.o.d"
  "CMakeFiles/memx_util.dir/pow2_range.cpp.o"
  "CMakeFiles/memx_util.dir/pow2_range.cpp.o.d"
  "libmemx_util.a"
  "libmemx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
