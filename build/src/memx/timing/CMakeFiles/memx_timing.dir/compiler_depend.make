# Empty compiler generated dependencies file for memx_timing.
# This may be replaced when dependencies are built.
