file(REMOVE_RECURSE
  "CMakeFiles/memx_timing.dir/cycle_model.cpp.o"
  "CMakeFiles/memx_timing.dir/cycle_model.cpp.o.d"
  "libmemx_timing.a"
  "libmemx_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
