file(REMOVE_RECURSE
  "libmemx_timing.a"
)
