file(REMOVE_RECURSE
  "CMakeFiles/memx_xform.dir/dependence.cpp.o"
  "CMakeFiles/memx_xform.dir/dependence.cpp.o.d"
  "CMakeFiles/memx_xform.dir/fusion.cpp.o"
  "CMakeFiles/memx_xform.dir/fusion.cpp.o.d"
  "CMakeFiles/memx_xform.dir/tiling.cpp.o"
  "CMakeFiles/memx_xform.dir/tiling.cpp.o.d"
  "libmemx_xform.a"
  "libmemx_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
