file(REMOVE_RECURSE
  "libmemx_xform.a"
)
