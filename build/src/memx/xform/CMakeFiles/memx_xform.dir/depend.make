# Empty dependencies file for memx_xform.
# This may be replaced when dependencies are built.
