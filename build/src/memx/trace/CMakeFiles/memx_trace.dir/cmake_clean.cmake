file(REMOVE_RECURSE
  "CMakeFiles/memx_trace.dir/din_io.cpp.o"
  "CMakeFiles/memx_trace.dir/din_io.cpp.o.d"
  "CMakeFiles/memx_trace.dir/generators.cpp.o"
  "CMakeFiles/memx_trace.dir/generators.cpp.o.d"
  "CMakeFiles/memx_trace.dir/trace.cpp.o"
  "CMakeFiles/memx_trace.dir/trace.cpp.o.d"
  "CMakeFiles/memx_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/memx_trace.dir/trace_stats.cpp.o.d"
  "CMakeFiles/memx_trace.dir/working_set.cpp.o"
  "CMakeFiles/memx_trace.dir/working_set.cpp.o.d"
  "libmemx_trace.a"
  "libmemx_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
