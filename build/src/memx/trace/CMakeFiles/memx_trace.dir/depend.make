# Empty dependencies file for memx_trace.
# This may be replaced when dependencies are built.
