
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memx/trace/din_io.cpp" "src/memx/trace/CMakeFiles/memx_trace.dir/din_io.cpp.o" "gcc" "src/memx/trace/CMakeFiles/memx_trace.dir/din_io.cpp.o.d"
  "/root/repo/src/memx/trace/generators.cpp" "src/memx/trace/CMakeFiles/memx_trace.dir/generators.cpp.o" "gcc" "src/memx/trace/CMakeFiles/memx_trace.dir/generators.cpp.o.d"
  "/root/repo/src/memx/trace/trace.cpp" "src/memx/trace/CMakeFiles/memx_trace.dir/trace.cpp.o" "gcc" "src/memx/trace/CMakeFiles/memx_trace.dir/trace.cpp.o.d"
  "/root/repo/src/memx/trace/trace_stats.cpp" "src/memx/trace/CMakeFiles/memx_trace.dir/trace_stats.cpp.o" "gcc" "src/memx/trace/CMakeFiles/memx_trace.dir/trace_stats.cpp.o.d"
  "/root/repo/src/memx/trace/working_set.cpp" "src/memx/trace/CMakeFiles/memx_trace.dir/working_set.cpp.o" "gcc" "src/memx/trace/CMakeFiles/memx_trace.dir/working_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memx/util/CMakeFiles/memx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
