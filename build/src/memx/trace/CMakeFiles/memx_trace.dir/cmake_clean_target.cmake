file(REMOVE_RECURSE
  "libmemx_trace.a"
)
