file(REMOVE_RECURSE
  "CMakeFiles/memx_report.dir/result_io.cpp.o"
  "CMakeFiles/memx_report.dir/result_io.cpp.o.d"
  "CMakeFiles/memx_report.dir/table.cpp.o"
  "CMakeFiles/memx_report.dir/table.cpp.o.d"
  "libmemx_report.a"
  "libmemx_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
