# Empty compiler generated dependencies file for memx_report.
# This may be replaced when dependencies are built.
