file(REMOVE_RECURSE
  "libmemx_report.a"
)
