file(REMOVE_RECURSE
  "CMakeFiles/memx_loopir.dir/affine.cpp.o"
  "CMakeFiles/memx_loopir.dir/affine.cpp.o.d"
  "CMakeFiles/memx_loopir.dir/kernel.cpp.o"
  "CMakeFiles/memx_loopir.dir/kernel.cpp.o.d"
  "CMakeFiles/memx_loopir.dir/kernel_parser.cpp.o"
  "CMakeFiles/memx_loopir.dir/kernel_parser.cpp.o.d"
  "CMakeFiles/memx_loopir.dir/loop_nest.cpp.o"
  "CMakeFiles/memx_loopir.dir/loop_nest.cpp.o.d"
  "CMakeFiles/memx_loopir.dir/memory_layout.cpp.o"
  "CMakeFiles/memx_loopir.dir/memory_layout.cpp.o.d"
  "CMakeFiles/memx_loopir.dir/ref_classes.cpp.o"
  "CMakeFiles/memx_loopir.dir/ref_classes.cpp.o.d"
  "CMakeFiles/memx_loopir.dir/trace_gen.cpp.o"
  "CMakeFiles/memx_loopir.dir/trace_gen.cpp.o.d"
  "libmemx_loopir.a"
  "libmemx_loopir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_loopir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
