# Empty dependencies file for memx_loopir.
# This may be replaced when dependencies are built.
