file(REMOVE_RECURSE
  "libmemx_loopir.a"
)
