
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memx/loopir/affine.cpp" "src/memx/loopir/CMakeFiles/memx_loopir.dir/affine.cpp.o" "gcc" "src/memx/loopir/CMakeFiles/memx_loopir.dir/affine.cpp.o.d"
  "/root/repo/src/memx/loopir/kernel.cpp" "src/memx/loopir/CMakeFiles/memx_loopir.dir/kernel.cpp.o" "gcc" "src/memx/loopir/CMakeFiles/memx_loopir.dir/kernel.cpp.o.d"
  "/root/repo/src/memx/loopir/kernel_parser.cpp" "src/memx/loopir/CMakeFiles/memx_loopir.dir/kernel_parser.cpp.o" "gcc" "src/memx/loopir/CMakeFiles/memx_loopir.dir/kernel_parser.cpp.o.d"
  "/root/repo/src/memx/loopir/loop_nest.cpp" "src/memx/loopir/CMakeFiles/memx_loopir.dir/loop_nest.cpp.o" "gcc" "src/memx/loopir/CMakeFiles/memx_loopir.dir/loop_nest.cpp.o.d"
  "/root/repo/src/memx/loopir/memory_layout.cpp" "src/memx/loopir/CMakeFiles/memx_loopir.dir/memory_layout.cpp.o" "gcc" "src/memx/loopir/CMakeFiles/memx_loopir.dir/memory_layout.cpp.o.d"
  "/root/repo/src/memx/loopir/ref_classes.cpp" "src/memx/loopir/CMakeFiles/memx_loopir.dir/ref_classes.cpp.o" "gcc" "src/memx/loopir/CMakeFiles/memx_loopir.dir/ref_classes.cpp.o.d"
  "/root/repo/src/memx/loopir/trace_gen.cpp" "src/memx/loopir/CMakeFiles/memx_loopir.dir/trace_gen.cpp.o" "gcc" "src/memx/loopir/CMakeFiles/memx_loopir.dir/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memx/trace/CMakeFiles/memx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/util/CMakeFiles/memx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
