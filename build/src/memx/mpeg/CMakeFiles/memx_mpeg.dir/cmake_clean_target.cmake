file(REMOVE_RECURSE
  "libmemx_mpeg.a"
)
