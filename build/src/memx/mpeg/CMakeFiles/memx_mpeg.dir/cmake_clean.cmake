file(REMOVE_RECURSE
  "CMakeFiles/memx_mpeg.dir/chained.cpp.o"
  "CMakeFiles/memx_mpeg.dir/chained.cpp.o.d"
  "CMakeFiles/memx_mpeg.dir/composite.cpp.o"
  "CMakeFiles/memx_mpeg.dir/composite.cpp.o.d"
  "libmemx_mpeg.a"
  "libmemx_mpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_mpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
