# Empty dependencies file for memx_mpeg.
# This may be replaced when dependencies are built.
