file(REMOVE_RECURSE
  "libmemx_icache.a"
)
