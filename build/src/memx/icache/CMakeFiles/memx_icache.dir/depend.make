# Empty dependencies file for memx_icache.
# This may be replaced when dependencies are built.
