file(REMOVE_RECURSE
  "CMakeFiles/memx_icache.dir/ifetch_model.cpp.o"
  "CMakeFiles/memx_icache.dir/ifetch_model.cpp.o.d"
  "libmemx_icache.a"
  "libmemx_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
