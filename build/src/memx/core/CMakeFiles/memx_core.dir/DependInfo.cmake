
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memx/core/analytic_model.cpp" "src/memx/core/CMakeFiles/memx_core.dir/analytic_model.cpp.o" "gcc" "src/memx/core/CMakeFiles/memx_core.dir/analytic_model.cpp.o.d"
  "/root/repo/src/memx/core/design_point.cpp" "src/memx/core/CMakeFiles/memx_core.dir/design_point.cpp.o" "gcc" "src/memx/core/CMakeFiles/memx_core.dir/design_point.cpp.o.d"
  "/root/repo/src/memx/core/explorer.cpp" "src/memx/core/CMakeFiles/memx_core.dir/explorer.cpp.o" "gcc" "src/memx/core/CMakeFiles/memx_core.dir/explorer.cpp.o.d"
  "/root/repo/src/memx/core/hierarchy_explorer.cpp" "src/memx/core/CMakeFiles/memx_core.dir/hierarchy_explorer.cpp.o" "gcc" "src/memx/core/CMakeFiles/memx_core.dir/hierarchy_explorer.cpp.o.d"
  "/root/repo/src/memx/core/parallel_explorer.cpp" "src/memx/core/CMakeFiles/memx_core.dir/parallel_explorer.cpp.o" "gcc" "src/memx/core/CMakeFiles/memx_core.dir/parallel_explorer.cpp.o.d"
  "/root/repo/src/memx/core/selection.cpp" "src/memx/core/CMakeFiles/memx_core.dir/selection.cpp.o" "gcc" "src/memx/core/CMakeFiles/memx_core.dir/selection.cpp.o.d"
  "/root/repo/src/memx/core/sensitivity.cpp" "src/memx/core/CMakeFiles/memx_core.dir/sensitivity.cpp.o" "gcc" "src/memx/core/CMakeFiles/memx_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/memx/core/trace_explorer.cpp" "src/memx/core/CMakeFiles/memx_core.dir/trace_explorer.cpp.o" "gcc" "src/memx/core/CMakeFiles/memx_core.dir/trace_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memx/loopir/CMakeFiles/memx_loopir.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/cachesim/CMakeFiles/memx_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/energy/CMakeFiles/memx_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/timing/CMakeFiles/memx_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/layout/CMakeFiles/memx_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/xform/CMakeFiles/memx_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/util/CMakeFiles/memx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/trace/CMakeFiles/memx_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
