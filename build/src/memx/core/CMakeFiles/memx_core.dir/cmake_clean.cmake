file(REMOVE_RECURSE
  "CMakeFiles/memx_core.dir/analytic_model.cpp.o"
  "CMakeFiles/memx_core.dir/analytic_model.cpp.o.d"
  "CMakeFiles/memx_core.dir/design_point.cpp.o"
  "CMakeFiles/memx_core.dir/design_point.cpp.o.d"
  "CMakeFiles/memx_core.dir/explorer.cpp.o"
  "CMakeFiles/memx_core.dir/explorer.cpp.o.d"
  "CMakeFiles/memx_core.dir/hierarchy_explorer.cpp.o"
  "CMakeFiles/memx_core.dir/hierarchy_explorer.cpp.o.d"
  "CMakeFiles/memx_core.dir/parallel_explorer.cpp.o"
  "CMakeFiles/memx_core.dir/parallel_explorer.cpp.o.d"
  "CMakeFiles/memx_core.dir/selection.cpp.o"
  "CMakeFiles/memx_core.dir/selection.cpp.o.d"
  "CMakeFiles/memx_core.dir/sensitivity.cpp.o"
  "CMakeFiles/memx_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/memx_core.dir/trace_explorer.cpp.o"
  "CMakeFiles/memx_core.dir/trace_explorer.cpp.o.d"
  "libmemx_core.a"
  "libmemx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
