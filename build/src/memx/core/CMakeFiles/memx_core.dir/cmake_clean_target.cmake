file(REMOVE_RECURSE
  "libmemx_core.a"
)
