# Empty compiler generated dependencies file for memx_core.
# This may be replaced when dependencies are built.
