
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memx/energy/area_model.cpp" "src/memx/energy/CMakeFiles/memx_energy.dir/area_model.cpp.o" "gcc" "src/memx/energy/CMakeFiles/memx_energy.dir/area_model.cpp.o.d"
  "/root/repo/src/memx/energy/dram_model.cpp" "src/memx/energy/CMakeFiles/memx_energy.dir/dram_model.cpp.o" "gcc" "src/memx/energy/CMakeFiles/memx_energy.dir/dram_model.cpp.o.d"
  "/root/repo/src/memx/energy/energy_model.cpp" "src/memx/energy/CMakeFiles/memx_energy.dir/energy_model.cpp.o" "gcc" "src/memx/energy/CMakeFiles/memx_energy.dir/energy_model.cpp.o.d"
  "/root/repo/src/memx/energy/sram_catalog.cpp" "src/memx/energy/CMakeFiles/memx_energy.dir/sram_catalog.cpp.o" "gcc" "src/memx/energy/CMakeFiles/memx_energy.dir/sram_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memx/cachesim/CMakeFiles/memx_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/util/CMakeFiles/memx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/trace/CMakeFiles/memx_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
