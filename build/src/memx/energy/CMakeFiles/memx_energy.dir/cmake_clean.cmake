file(REMOVE_RECURSE
  "CMakeFiles/memx_energy.dir/area_model.cpp.o"
  "CMakeFiles/memx_energy.dir/area_model.cpp.o.d"
  "CMakeFiles/memx_energy.dir/dram_model.cpp.o"
  "CMakeFiles/memx_energy.dir/dram_model.cpp.o.d"
  "CMakeFiles/memx_energy.dir/energy_model.cpp.o"
  "CMakeFiles/memx_energy.dir/energy_model.cpp.o.d"
  "CMakeFiles/memx_energy.dir/sram_catalog.cpp.o"
  "CMakeFiles/memx_energy.dir/sram_catalog.cpp.o.d"
  "libmemx_energy.a"
  "libmemx_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
