file(REMOVE_RECURSE
  "libmemx_energy.a"
)
