# Empty compiler generated dependencies file for memx_energy.
# This may be replaced when dependencies are built.
