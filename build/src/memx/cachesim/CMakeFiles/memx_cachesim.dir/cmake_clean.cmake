file(REMOVE_RECURSE
  "CMakeFiles/memx_cachesim.dir/bus_monitor.cpp.o"
  "CMakeFiles/memx_cachesim.dir/bus_monitor.cpp.o.d"
  "CMakeFiles/memx_cachesim.dir/cache_config.cpp.o"
  "CMakeFiles/memx_cachesim.dir/cache_config.cpp.o.d"
  "CMakeFiles/memx_cachesim.dir/cache_sim.cpp.o"
  "CMakeFiles/memx_cachesim.dir/cache_sim.cpp.o.d"
  "CMakeFiles/memx_cachesim.dir/hierarchy.cpp.o"
  "CMakeFiles/memx_cachesim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/memx_cachesim.dir/miss_classifier.cpp.o"
  "CMakeFiles/memx_cachesim.dir/miss_classifier.cpp.o.d"
  "CMakeFiles/memx_cachesim.dir/prefetch.cpp.o"
  "CMakeFiles/memx_cachesim.dir/prefetch.cpp.o.d"
  "CMakeFiles/memx_cachesim.dir/set_sampling.cpp.o"
  "CMakeFiles/memx_cachesim.dir/set_sampling.cpp.o.d"
  "CMakeFiles/memx_cachesim.dir/victim_cache.cpp.o"
  "CMakeFiles/memx_cachesim.dir/victim_cache.cpp.o.d"
  "CMakeFiles/memx_cachesim.dir/write_buffer.cpp.o"
  "CMakeFiles/memx_cachesim.dir/write_buffer.cpp.o.d"
  "libmemx_cachesim.a"
  "libmemx_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
