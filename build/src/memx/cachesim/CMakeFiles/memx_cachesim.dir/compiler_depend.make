# Empty compiler generated dependencies file for memx_cachesim.
# This may be replaced when dependencies are built.
