file(REMOVE_RECURSE
  "libmemx_cachesim.a"
)
