
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memx/cachesim/bus_monitor.cpp" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/bus_monitor.cpp.o" "gcc" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/bus_monitor.cpp.o.d"
  "/root/repo/src/memx/cachesim/cache_config.cpp" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/cache_config.cpp.o" "gcc" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/cache_config.cpp.o.d"
  "/root/repo/src/memx/cachesim/cache_sim.cpp" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/cache_sim.cpp.o" "gcc" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/cache_sim.cpp.o.d"
  "/root/repo/src/memx/cachesim/hierarchy.cpp" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/hierarchy.cpp.o" "gcc" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/hierarchy.cpp.o.d"
  "/root/repo/src/memx/cachesim/miss_classifier.cpp" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/miss_classifier.cpp.o" "gcc" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/miss_classifier.cpp.o.d"
  "/root/repo/src/memx/cachesim/prefetch.cpp" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/prefetch.cpp.o" "gcc" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/prefetch.cpp.o.d"
  "/root/repo/src/memx/cachesim/set_sampling.cpp" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/set_sampling.cpp.o" "gcc" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/set_sampling.cpp.o.d"
  "/root/repo/src/memx/cachesim/victim_cache.cpp" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/victim_cache.cpp.o" "gcc" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/victim_cache.cpp.o.d"
  "/root/repo/src/memx/cachesim/write_buffer.cpp" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/write_buffer.cpp.o" "gcc" "src/memx/cachesim/CMakeFiles/memx_cachesim.dir/write_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memx/trace/CMakeFiles/memx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/util/CMakeFiles/memx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
