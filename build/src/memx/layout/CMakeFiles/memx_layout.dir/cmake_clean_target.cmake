file(REMOVE_RECURSE
  "libmemx_layout.a"
)
