file(REMOVE_RECURSE
  "CMakeFiles/memx_layout.dir/offchip_assign.cpp.o"
  "CMakeFiles/memx_layout.dir/offchip_assign.cpp.o.d"
  "libmemx_layout.a"
  "libmemx_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
