# Empty dependencies file for memx_layout.
# This may be replaced when dependencies are built.
