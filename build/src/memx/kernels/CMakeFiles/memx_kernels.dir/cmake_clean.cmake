file(REMOVE_RECURSE
  "CMakeFiles/memx_kernels.dir/benchmarks.cpp.o"
  "CMakeFiles/memx_kernels.dir/benchmarks.cpp.o.d"
  "CMakeFiles/memx_kernels.dir/extra_kernels.cpp.o"
  "CMakeFiles/memx_kernels.dir/extra_kernels.cpp.o.d"
  "CMakeFiles/memx_kernels.dir/mpeg_kernels.cpp.o"
  "CMakeFiles/memx_kernels.dir/mpeg_kernels.cpp.o.d"
  "libmemx_kernels.a"
  "libmemx_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memx_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
