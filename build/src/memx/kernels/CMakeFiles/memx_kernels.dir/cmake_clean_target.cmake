file(REMOVE_RECURSE
  "libmemx_kernels.a"
)
