# Empty dependencies file for memx_kernels.
# This may be replaced when dependencies are built.
