
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memx/kernels/benchmarks.cpp" "src/memx/kernels/CMakeFiles/memx_kernels.dir/benchmarks.cpp.o" "gcc" "src/memx/kernels/CMakeFiles/memx_kernels.dir/benchmarks.cpp.o.d"
  "/root/repo/src/memx/kernels/extra_kernels.cpp" "src/memx/kernels/CMakeFiles/memx_kernels.dir/extra_kernels.cpp.o" "gcc" "src/memx/kernels/CMakeFiles/memx_kernels.dir/extra_kernels.cpp.o.d"
  "/root/repo/src/memx/kernels/mpeg_kernels.cpp" "src/memx/kernels/CMakeFiles/memx_kernels.dir/mpeg_kernels.cpp.o" "gcc" "src/memx/kernels/CMakeFiles/memx_kernels.dir/mpeg_kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memx/loopir/CMakeFiles/memx_loopir.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/util/CMakeFiles/memx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/trace/CMakeFiles/memx_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
