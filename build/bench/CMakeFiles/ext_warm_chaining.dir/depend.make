# Empty dependencies file for ext_warm_chaining.
# This may be replaced when dependencies are built.
