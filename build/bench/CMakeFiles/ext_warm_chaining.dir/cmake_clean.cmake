file(REMOVE_RECURSE
  "CMakeFiles/ext_warm_chaining.dir/ext_warm_chaining.cpp.o"
  "CMakeFiles/ext_warm_chaining.dir/ext_warm_chaining.cpp.o.d"
  "ext_warm_chaining"
  "ext_warm_chaining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_warm_chaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
