file(REMOVE_RECURSE
  "CMakeFiles/ext_hierarchy.dir/ext_hierarchy.cpp.o"
  "CMakeFiles/ext_hierarchy.dir/ext_hierarchy.cpp.o.d"
  "ext_hierarchy"
  "ext_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
