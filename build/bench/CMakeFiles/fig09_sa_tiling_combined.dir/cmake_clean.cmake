file(REMOVE_RECURSE
  "CMakeFiles/fig09_sa_tiling_combined.dir/fig09_sa_tiling_combined.cpp.o"
  "CMakeFiles/fig09_sa_tiling_combined.dir/fig09_sa_tiling_combined.cpp.o.d"
  "fig09_sa_tiling_combined"
  "fig09_sa_tiling_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sa_tiling_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
