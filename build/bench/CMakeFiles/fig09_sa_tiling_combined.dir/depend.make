# Empty dependencies file for fig09_sa_tiling_combined.
# This may be replaced when dependencies are built.
