# Empty compiler generated dependencies file for fig02_metric_grid.
# This may be replaced when dependencies are built.
