file(REMOVE_RECURSE
  "CMakeFiles/fig02_metric_grid.dir/fig02_metric_grid.cpp.o"
  "CMakeFiles/fig02_metric_grid.dir/fig02_metric_grid.cpp.o.d"
  "fig02_metric_grid"
  "fig02_metric_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_metric_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
