# Empty dependencies file for fig10_mpeg_kernel_configs.
# This may be replaced when dependencies are built.
