file(REMOVE_RECURSE
  "CMakeFiles/fig10_mpeg_kernel_configs.dir/fig10_mpeg_kernel_configs.cpp.o"
  "CMakeFiles/fig10_mpeg_kernel_configs.dir/fig10_mpeg_kernel_configs.cpp.o.d"
  "fig10_mpeg_kernel_configs"
  "fig10_mpeg_kernel_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_mpeg_kernel_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
