# Empty dependencies file for fig05_offchip_assignment.
# This may be replaced when dependencies are built.
