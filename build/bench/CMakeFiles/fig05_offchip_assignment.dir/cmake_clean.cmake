file(REMOVE_RECURSE
  "CMakeFiles/fig05_offchip_assignment.dir/fig05_offchip_assignment.cpp.o"
  "CMakeFiles/fig05_offchip_assignment.dir/fig05_offchip_assignment.cpp.o.d"
  "fig05_offchip_assignment"
  "fig05_offchip_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_offchip_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
