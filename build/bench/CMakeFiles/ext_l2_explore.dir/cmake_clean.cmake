file(REMOVE_RECURSE
  "CMakeFiles/ext_l2_explore.dir/ext_l2_explore.cpp.o"
  "CMakeFiles/ext_l2_explore.dir/ext_l2_explore.cpp.o.d"
  "ext_l2_explore"
  "ext_l2_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_l2_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
