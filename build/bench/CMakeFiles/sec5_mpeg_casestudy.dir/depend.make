# Empty dependencies file for sec5_mpeg_casestudy.
# This may be replaced when dependencies are built.
