file(REMOVE_RECURSE
  "CMakeFiles/sec5_mpeg_casestudy.dir/sec5_mpeg_casestudy.cpp.o"
  "CMakeFiles/sec5_mpeg_casestudy.dir/sec5_mpeg_casestudy.cpp.o.d"
  "sec5_mpeg_casestudy"
  "sec5_mpeg_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_mpeg_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
