# Empty dependencies file for sec3_min_cache_size.
# This may be replaced when dependencies are built.
