file(REMOVE_RECURSE
  "CMakeFiles/sec3_min_cache_size.dir/sec3_min_cache_size.cpp.o"
  "CMakeFiles/sec3_min_cache_size.dir/sec3_min_cache_size.cpp.o.d"
  "sec3_min_cache_size"
  "sec3_min_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_min_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
