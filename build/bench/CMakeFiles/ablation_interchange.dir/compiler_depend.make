# Empty compiler generated dependencies file for ablation_interchange.
# This may be replaced when dependencies are built.
