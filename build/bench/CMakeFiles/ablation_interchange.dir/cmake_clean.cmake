file(REMOVE_RECURSE
  "CMakeFiles/ablation_interchange.dir/ablation_interchange.cpp.o"
  "CMakeFiles/ablation_interchange.dir/ablation_interchange.cpp.o.d"
  "ablation_interchange"
  "ablation_interchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
