file(REMOVE_RECURSE
  "CMakeFiles/fig08_set_assoc.dir/fig08_set_assoc.cpp.o"
  "CMakeFiles/fig08_set_assoc.dir/fig08_set_assoc.cpp.o.d"
  "fig08_set_assoc"
  "fig08_set_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_set_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
