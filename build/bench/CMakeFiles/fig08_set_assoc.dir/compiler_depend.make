# Empty compiler generated dependencies file for fig08_set_assoc.
# This may be replaced when dependencies are built.
