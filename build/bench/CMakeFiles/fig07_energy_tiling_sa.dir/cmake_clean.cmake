file(REMOVE_RECURSE
  "CMakeFiles/fig07_energy_tiling_sa.dir/fig07_energy_tiling_sa.cpp.o"
  "CMakeFiles/fig07_energy_tiling_sa.dir/fig07_energy_tiling_sa.cpp.o.d"
  "fig07_energy_tiling_sa"
  "fig07_energy_tiling_sa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_energy_tiling_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
