# Empty dependencies file for fig07_energy_tiling_sa.
# This may be replaced when dependencies are built.
