file(REMOVE_RECURSE
  "CMakeFiles/ablation_leakage.dir/ablation_leakage.cpp.o"
  "CMakeFiles/ablation_leakage.dir/ablation_leakage.cpp.o.d"
  "ablation_leakage"
  "ablation_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
