# Empty compiler generated dependencies file for fig04_compress_energy.
# This may be replaced when dependencies are built.
