file(REMOVE_RECURSE
  "CMakeFiles/ext_parallel_sweep.dir/ext_parallel_sweep.cpp.o"
  "CMakeFiles/ext_parallel_sweep.dir/ext_parallel_sweep.cpp.o.d"
  "ext_parallel_sweep"
  "ext_parallel_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_parallel_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
