# Empty dependencies file for ext_parallel_sweep.
# This may be replaced when dependencies are built.
