# Empty compiler generated dependencies file for ablation_dram.
# This may be replaced when dependencies are built.
