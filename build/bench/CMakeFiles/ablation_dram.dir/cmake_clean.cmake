file(REMOVE_RECURSE
  "CMakeFiles/ablation_dram.dir/ablation_dram.cpp.o"
  "CMakeFiles/ablation_dram.dir/ablation_dram.cpp.o.d"
  "ablation_dram"
  "ablation_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
