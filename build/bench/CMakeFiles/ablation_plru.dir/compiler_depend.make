# Empty compiler generated dependencies file for ablation_plru.
# This may be replaced when dependencies are built.
