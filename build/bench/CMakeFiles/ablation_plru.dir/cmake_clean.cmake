file(REMOVE_RECURSE
  "CMakeFiles/ablation_plru.dir/ablation_plru.cpp.o"
  "CMakeFiles/ablation_plru.dir/ablation_plru.cpp.o.d"
  "ablation_plru"
  "ablation_plru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_plru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
