file(REMOVE_RECURSE
  "CMakeFiles/fig03_compress_cycles.dir/fig03_compress_cycles.cpp.o"
  "CMakeFiles/fig03_compress_cycles.dir/fig03_compress_cycles.cpp.o.d"
  "fig03_compress_cycles"
  "fig03_compress_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_compress_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
