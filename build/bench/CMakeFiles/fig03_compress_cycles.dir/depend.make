# Empty dependencies file for fig03_compress_cycles.
# This may be replaced when dependencies are built.
