# Empty dependencies file for ablation_addr_encoding.
# This may be replaced when dependencies are built.
