file(REMOVE_RECURSE
  "CMakeFiles/ablation_addr_encoding.dir/ablation_addr_encoding.cpp.o"
  "CMakeFiles/ablation_addr_encoding.dir/ablation_addr_encoding.cpp.o.d"
  "ablation_addr_encoding"
  "ablation_addr_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_addr_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
