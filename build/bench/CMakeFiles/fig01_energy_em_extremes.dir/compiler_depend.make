# Empty compiler generated dependencies file for fig01_energy_em_extremes.
# This may be replaced when dependencies are built.
