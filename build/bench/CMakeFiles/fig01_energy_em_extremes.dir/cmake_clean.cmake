file(REMOVE_RECURSE
  "CMakeFiles/fig01_energy_em_extremes.dir/fig01_energy_em_extremes.cpp.o"
  "CMakeFiles/fig01_energy_em_extremes.dir/fig01_energy_em_extremes.cpp.o.d"
  "fig01_energy_em_extremes"
  "fig01_energy_em_extremes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_energy_em_extremes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
