file(REMOVE_RECURSE
  "CMakeFiles/ablation_tag_energy.dir/ablation_tag_energy.cpp.o"
  "CMakeFiles/ablation_tag_energy.dir/ablation_tag_energy.cpp.o.d"
  "ablation_tag_energy"
  "ablation_tag_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tag_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
