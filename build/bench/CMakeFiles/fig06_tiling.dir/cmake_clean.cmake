file(REMOVE_RECURSE
  "CMakeFiles/fig06_tiling.dir/fig06_tiling.cpp.o"
  "CMakeFiles/fig06_tiling.dir/fig06_tiling.cpp.o.d"
  "fig06_tiling"
  "fig06_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
