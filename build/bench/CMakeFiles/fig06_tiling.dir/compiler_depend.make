# Empty compiler generated dependencies file for fig06_tiling.
# This may be replaced when dependencies are built.
