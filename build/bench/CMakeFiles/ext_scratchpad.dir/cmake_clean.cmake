file(REMOVE_RECURSE
  "CMakeFiles/ext_scratchpad.dir/ext_scratchpad.cpp.o"
  "CMakeFiles/ext_scratchpad.dir/ext_scratchpad.cpp.o.d"
  "ext_scratchpad"
  "ext_scratchpad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scratchpad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
