# Empty dependencies file for ext_scratchpad.
# This may be replaced when dependencies are built.
