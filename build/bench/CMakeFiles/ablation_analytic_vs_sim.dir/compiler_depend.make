# Empty compiler generated dependencies file for ablation_analytic_vs_sim.
# This may be replaced when dependencies are built.
