file(REMOVE_RECURSE
  "CMakeFiles/ablation_analytic_vs_sim.dir/ablation_analytic_vs_sim.cpp.o"
  "CMakeFiles/ablation_analytic_vs_sim.dir/ablation_analytic_vs_sim.cpp.o.d"
  "ablation_analytic_vs_sim"
  "ablation_analytic_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_analytic_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
