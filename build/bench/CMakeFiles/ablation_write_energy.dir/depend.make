# Empty dependencies file for ablation_write_energy.
# This may be replaced when dependencies are built.
