file(REMOVE_RECURSE
  "CMakeFiles/ablation_write_energy.dir/ablation_write_energy.cpp.o"
  "CMakeFiles/ablation_write_energy.dir/ablation_write_energy.cpp.o.d"
  "ablation_write_energy"
  "ablation_write_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_write_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
