# Empty dependencies file for ext_skewing.
# This may be replaced when dependencies are built.
