file(REMOVE_RECURSE
  "CMakeFiles/ext_skewing.dir/ext_skewing.cpp.o"
  "CMakeFiles/ext_skewing.dir/ext_skewing.cpp.o.d"
  "ext_skewing"
  "ext_skewing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_skewing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
