file(REMOVE_RECURSE
  "CMakeFiles/ext_working_set.dir/ext_working_set.cpp.o"
  "CMakeFiles/ext_working_set.dir/ext_working_set.cpp.o.d"
  "ext_working_set"
  "ext_working_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
