# Empty dependencies file for ext_working_set.
# This may be replaced when dependencies are built.
