file(REMOVE_RECURSE
  "CMakeFiles/test_chained.dir/chained_test.cpp.o"
  "CMakeFiles/test_chained.dir/chained_test.cpp.o.d"
  "test_chained"
  "test_chained.pdb"
  "test_chained[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
