# Empty dependencies file for test_chained.
# This may be replaced when dependencies are built.
