# Empty dependencies file for test_kernel_parser.
# This may be replaced when dependencies are built.
