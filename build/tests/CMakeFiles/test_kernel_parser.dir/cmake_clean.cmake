file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_parser.dir/kernel_parser_test.cpp.o"
  "CMakeFiles/test_kernel_parser.dir/kernel_parser_test.cpp.o.d"
  "test_kernel_parser"
  "test_kernel_parser.pdb"
  "test_kernel_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
