file(REMOVE_RECURSE
  "CMakeFiles/test_loopir.dir/loopir_test.cpp.o"
  "CMakeFiles/test_loopir.dir/loopir_test.cpp.o.d"
  "test_loopir"
  "test_loopir.pdb"
  "test_loopir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loopir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
