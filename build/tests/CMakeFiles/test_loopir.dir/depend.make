# Empty dependencies file for test_loopir.
# This may be replaced when dependencies are built.
