
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/write_buffer_test.cpp" "tests/CMakeFiles/test_write_buffer.dir/write_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/test_write_buffer.dir/write_buffer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memx/icache/CMakeFiles/memx_icache.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/spm/CMakeFiles/memx_spm.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/mpeg/CMakeFiles/memx_mpeg.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/kernels/CMakeFiles/memx_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/report/CMakeFiles/memx_report.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/core/CMakeFiles/memx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/energy/CMakeFiles/memx_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/timing/CMakeFiles/memx_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/xform/CMakeFiles/memx_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/layout/CMakeFiles/memx_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/cachesim/CMakeFiles/memx_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/loopir/CMakeFiles/memx_loopir.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/trace/CMakeFiles/memx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memx/util/CMakeFiles/memx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
