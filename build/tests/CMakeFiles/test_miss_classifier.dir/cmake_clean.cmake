file(REMOVE_RECURSE
  "CMakeFiles/test_miss_classifier.dir/miss_classifier_test.cpp.o"
  "CMakeFiles/test_miss_classifier.dir/miss_classifier_test.cpp.o.d"
  "test_miss_classifier"
  "test_miss_classifier.pdb"
  "test_miss_classifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miss_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
