# Empty dependencies file for test_random_kernel.
# This may be replaced when dependencies are built.
