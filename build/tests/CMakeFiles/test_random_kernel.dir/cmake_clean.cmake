file(REMOVE_RECURSE
  "CMakeFiles/test_random_kernel.dir/random_kernel_test.cpp.o"
  "CMakeFiles/test_random_kernel.dir/random_kernel_test.cpp.o.d"
  "test_random_kernel"
  "test_random_kernel.pdb"
  "test_random_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
