file(REMOVE_RECURSE
  "CMakeFiles/test_din_io.dir/din_io_test.cpp.o"
  "CMakeFiles/test_din_io.dir/din_io_test.cpp.o.d"
  "test_din_io"
  "test_din_io.pdb"
  "test_din_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_din_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
