# Empty compiler generated dependencies file for test_din_io.
# This may be replaced when dependencies are built.
