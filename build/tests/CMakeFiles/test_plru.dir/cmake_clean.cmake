file(REMOVE_RECURSE
  "CMakeFiles/test_plru.dir/plru_test.cpp.o"
  "CMakeFiles/test_plru.dir/plru_test.cpp.o.d"
  "test_plru"
  "test_plru.pdb"
  "test_plru[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
