# Empty dependencies file for test_plru.
# This may be replaced when dependencies are built.
