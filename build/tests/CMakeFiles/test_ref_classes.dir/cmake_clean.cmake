file(REMOVE_RECURSE
  "CMakeFiles/test_ref_classes.dir/ref_classes_test.cpp.o"
  "CMakeFiles/test_ref_classes.dir/ref_classes_test.cpp.o.d"
  "test_ref_classes"
  "test_ref_classes.pdb"
  "test_ref_classes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ref_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
