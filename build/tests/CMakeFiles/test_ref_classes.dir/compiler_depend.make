# Empty compiler generated dependencies file for test_ref_classes.
# This may be replaced when dependencies are built.
