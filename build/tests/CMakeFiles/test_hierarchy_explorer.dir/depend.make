# Empty dependencies file for test_hierarchy_explorer.
# This may be replaced when dependencies are built.
