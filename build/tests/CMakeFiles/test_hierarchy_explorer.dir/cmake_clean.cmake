file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchy_explorer.dir/hierarchy_explorer_test.cpp.o"
  "CMakeFiles/test_hierarchy_explorer.dir/hierarchy_explorer_test.cpp.o.d"
  "test_hierarchy_explorer"
  "test_hierarchy_explorer.pdb"
  "test_hierarchy_explorer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
