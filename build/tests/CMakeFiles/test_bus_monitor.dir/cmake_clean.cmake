file(REMOVE_RECURSE
  "CMakeFiles/test_bus_monitor.dir/bus_monitor_test.cpp.o"
  "CMakeFiles/test_bus_monitor.dir/bus_monitor_test.cpp.o.d"
  "test_bus_monitor"
  "test_bus_monitor.pdb"
  "test_bus_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
