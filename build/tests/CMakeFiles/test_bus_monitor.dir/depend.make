# Empty dependencies file for test_bus_monitor.
# This may be replaced when dependencies are built.
