file(REMOVE_RECURSE
  "CMakeFiles/test_skew.dir/skew_test.cpp.o"
  "CMakeFiles/test_skew.dir/skew_test.cpp.o.d"
  "test_skew"
  "test_skew.pdb"
  "test_skew[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
