file(REMOVE_RECURSE
  "CMakeFiles/test_extra_kernels.dir/extra_kernels_test.cpp.o"
  "CMakeFiles/test_extra_kernels.dir/extra_kernels_test.cpp.o.d"
  "test_extra_kernels"
  "test_extra_kernels.pdb"
  "test_extra_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extra_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
