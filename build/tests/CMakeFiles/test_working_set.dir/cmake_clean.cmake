file(REMOVE_RECURSE
  "CMakeFiles/test_working_set.dir/working_set_test.cpp.o"
  "CMakeFiles/test_working_set.dir/working_set_test.cpp.o.d"
  "test_working_set"
  "test_working_set.pdb"
  "test_working_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
