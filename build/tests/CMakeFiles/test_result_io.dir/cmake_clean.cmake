file(REMOVE_RECURSE
  "CMakeFiles/test_result_io.dir/result_io_test.cpp.o"
  "CMakeFiles/test_result_io.dir/result_io_test.cpp.o.d"
  "test_result_io"
  "test_result_io.pdb"
  "test_result_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_result_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
