#include <gtest/gtest.h>

#include <sstream>

#include "memx/report/table.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22222"});
  const std::string s = t.toString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Every line has the same column start for "value"/"1"/"22222".
  std::istringstream is(s);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header.find("value"), 7u);  // "name" padded to width 5 + 2
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), ContractViolation);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, RowAccess) {
  Table t({"a"});
  t.addRow({"x"});
  EXPECT_EQ(t.rowCount(), 1u);
  EXPECT_EQ(t.row(0)[0], "x");
  EXPECT_THROW((void)t.row(3), ContractViolation);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"k", "v"});
  t.addRow({"plain", "a,b"});
  t.addRow({"quoted", "say \"hi\""});
  std::ostringstream os;
  t.writeCsv(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRoundRows) {
  Table t({"x", "y"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.writeCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Format, FixedDecimals) {
  EXPECT_EQ(fmtFixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmtFixed(2.0, 0), "2");
}

TEST(Format, Sig3MatchesPaperStyle) {
  EXPECT_EQ(fmtSig3(0.9692), "0.969");
  EXPECT_EQ(fmtSig3(37321.0), "37300");
  EXPECT_EQ(fmtSig3(1114000.0), "1110000");
  EXPECT_EQ(fmtSig3(0.0), "0");
  EXPECT_EQ(fmtSig3(4.95), "4.95");
}

TEST(Format, Sig3Negative) {
  EXPECT_EQ(fmtSig3(-37321.0), "-37300");
}

TEST(Format, Sig3SmallValues) {
  EXPECT_EQ(fmtSig3(0.001234), "0.00123");
}

}  // namespace
}  // namespace memx
