// Unit and determinism tests for the Pareto search subsystem: design
// space encoding/repair, the dominance kernel (against brute force and
// known answers), evaluator caching, and seed/backed reproducibility
// of full searches. The exhaustive differentials live in
// search_differential_test.cpp; the pinned fronts in
// golden_front_test.cpp.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <sstream>

#include "memx/kernels/benchmarks.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/search/design_space.hpp"
#include "memx/search/dominance.hpp"
#include "memx/search/evaluator.hpp"
#include "memx/search/front_io.hpp"
#include "memx/search/nsga.hpp"
#include "memx/search/search_diff.hpp"
#include "memx/util/assert.hpp"

namespace memx::search {
namespace {

/// A small joint space exercising every gene: 2 cache sizes x lines x
/// assoc x tiling, 2 replacements, 2 write policies, both layouts, and
/// one optional L2.
DesignSpaceOptions smallJointSpace() {
  DesignSpaceOptions s;
  s.ranges.onChipBytes = 64;
  s.ranges.minCacheBytes = 16;
  s.ranges.maxCacheBytes = 64;
  s.ranges.minLineBytes = 4;
  s.ranges.maxLineBytes = 16;
  s.ranges.maxAssociativity = 2;
  s.ranges.maxTiling = 2;
  s.replacements = {ReplacementPolicy::LRU, ReplacementPolicy::FIFO};
  s.writePolicies = {WritePolicy::WriteBack, WritePolicy::WriteThrough};
  s.sweepLayout = true;
  s.l2CapacityBytes = {256};
  return s;
}

TEST(DesignSpace, EnumerateMatchesAnalyticSizeAndIsValid) {
  const DesignSpace space(smallJointSpace());
  const std::vector<Genome> all = space.enumerate();
  EXPECT_EQ(all.size(), space.size());
  ASSERT_FALSE(all.empty());
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_TRUE(space.isValid(all[i]));
    const std::uint64_t packed = space.packed(all[i]);
    if (i != 0) {
      EXPECT_LT(prev, packed) << "enumerate() must yield strictly "
                                 "increasing packed order at " << i;
    }
    prev = packed;
  }
}

TEST(DesignSpace, RepairIsIdempotentAndProducesValidGenomes) {
  const DesignSpace space(smallJointSpace());
  std::mt19937_64 rng(99);
  for (int i = 0; i < 2000; ++i) {
    Genome raw;
    for (std::uint8_t& g : raw) {
      g = static_cast<std::uint8_t>(rng());  // arbitrary bytes
    }
    const Genome fixed = space.repair(raw);
    EXPECT_TRUE(space.isValid(fixed));
    EXPECT_EQ(space.repair(fixed), fixed) << "repair must be idempotent";
  }
}

TEST(DesignSpace, RepairKeepsValidGenomesUntouched) {
  const DesignSpace space(smallJointSpace());
  for (const Genome& g : space.enumerate()) {
    EXPECT_EQ(space.repair(g), g);
  }
}

TEST(DesignSpace, DecodeProducesValidatedConfigs) {
  const DesignSpace space(smallJointSpace());
  for (const Genome& g : space.enumerate()) {
    const JointPoint p = space.decode(g);
    EXPECT_GE(p.key.cacheBytes, 16u);
    EXPECT_LE(p.key.cacheBytes, 64u);
    EXPECT_LE(p.key.lineBytes, p.key.cacheBytes);
    if (p.l2) {
      EXPECT_EQ(p.l2->sizeBytes, 256u);
      EXPECT_GE(p.l2->lineBytes, p.key.lineBytes);
    }
    EXPECT_FALSE(p.label().empty());
  }
}

TEST(DesignSpace, RandomGenomesAreValid) {
  const DesignSpace space(smallJointSpace());
  std::mt19937_64 rng(5);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(space.isValid(space.randomGenome(rng)));
  }
}

TEST(Dominance, DominatesIsStrictAndComponentwise) {
  const Objectives a{1.0, 2.0, 3.0};
  EXPECT_FALSE(dominates(a, a));  // irreflexive
  EXPECT_TRUE(dominates(Objectives{1.0, 2.0, 2.0}, a));
  EXPECT_TRUE(dominates(Objectives{0.0, 0.0, 0.0}, a));
  EXPECT_FALSE(dominates(Objectives{0.0, 0.0, 4.0}, a));  // trade-off
  EXPECT_FALSE(dominates(a, Objectives{1.0, 2.0, 2.0}));
}

std::vector<Objectives> randomObjectives(std::uint64_t seed,
                                         std::size_t count,
                                         int distinctValues) {
  std::mt19937_64 rng(seed);
  std::vector<Objectives> points(count);
  for (Objectives& p : points) {
    for (double& o : p) {
      // A coarse value grid forces ties and duplicate points.
      o = static_cast<double>(rng() % distinctValues);
    }
  }
  return points;
}

TEST(Dominance, ProductionExtractorMatchesBruteForce) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const std::vector<Objectives> points =
        randomObjectives(seed, 120, seed % 2 == 0 ? 4 : 64);
    EXPECT_EQ(nonDominatedFront(points), bruteForceFront(points))
        << "seed " << seed;
  }
}

TEST(Dominance, RankZeroIsTheFront) {
  const std::vector<Objectives> points = randomObjectives(7, 80, 8);
  const std::vector<std::uint32_t> ranks = nonDominatedRanks(points);
  std::vector<std::size_t> rankZero;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (ranks[i] == 0) rankZero.push_back(i);
  }
  EXPECT_EQ(rankZero, bruteForceFront(points));
  // Every rank-k point is dominated by some rank-(k-1) point.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (ranks[i] == 0) continue;
    bool covered = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (ranks[j] == ranks[i] - 1 && dominates(points[j], points[i])) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "point " << i << " rank " << ranks[i];
  }
}

TEST(Dominance, CrowdingBoundariesAreInfiniteAndTiesDeterministic) {
  const std::vector<Objectives> points{
      {0.0, 4.0, 1.0}, {1.0, 3.0, 1.0}, {2.0, 2.0, 1.0},
      {3.0, 1.0, 1.0}, {4.0, 0.0, 1.0},
  };
  std::vector<std::size_t> members{0, 1, 2, 3, 4};
  const std::vector<double> crowd = crowdingDistances(points, members);
  EXPECT_TRUE(std::isinf(crowd[0]));
  EXPECT_TRUE(std::isinf(crowd[4]));
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(crowd[i], 0.0);
    EXPECT_FALSE(std::isinf(crowd[i]));
  }
  // Duplicate points: the (value, index) sort key makes the assignment
  // deterministic — same call, same distances, run after run.
  const std::vector<Objectives> dups(6, Objectives{1.0, 1.0, 1.0});
  std::vector<std::size_t> dupMembers{0, 1, 2, 3, 4, 5};
  const std::vector<double> first = crowdingDistances(dups, dupMembers);
  const std::vector<double> second = crowdingDistances(dups, dupMembers);
  EXPECT_EQ(first, second);
}

TEST(Dominance, HypervolumeKnownAnswers) {
  const Objectives ref{1.0, 1.0, 1.0};
  const auto hv = [&](std::vector<Objectives> points) {
    return hypervolume(points, ref);
  };
  // One point at the ideal corner sweeps the whole unit cube.
  EXPECT_DOUBLE_EQ(hv({Objectives{0.0, 0.0, 0.0}}), 1.0);
  // A half-scale point sweeps its own box.
  EXPECT_DOUBLE_EQ(hv({Objectives{0.5, 0.5, 0.5}}), 0.125);
  // Two trade-off points: union of two boxes, overlap counted once.
  EXPECT_DOUBLE_EQ(
      hv({Objectives{0.5, 0.0, 0.0}, Objectives{0.0, 0.5, 0.0}}), 0.75);
  // A dominated point adds nothing.
  EXPECT_DOUBLE_EQ(
      hv({Objectives{0.0, 0.0, 0.0}, Objectives{0.5, 0.5, 0.5}}), 1.0);
  // Points at or beyond the reference contribute nothing.
  EXPECT_DOUBLE_EQ(hv({Objectives{1.0, 0.0, 0.0}}), 0.0);
  EXPECT_DOUBLE_EQ(hv({Objectives{2.0, 2.0, 2.0}}), 0.0);
  EXPECT_DOUBLE_EQ(hv({}), 0.0);
}

TEST(Dominance, HypervolumeIsMonotoneInAddedPoints) {
  const Objectives ref{8.0, 8.0, 8.0};
  std::vector<Objectives> points;
  double prev = 0.0;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 40; ++i) {
    points.push_back(Objectives{static_cast<double>(rng() % 8),
                                static_cast<double>(rng() % 8),
                                static_cast<double>(rng() % 8)});
    const double hv = hypervolume(points, ref);
    EXPECT_GE(hv, prev - 1e-12) << "adding a point shrank the volume";
    prev = hv;
  }
}

TEST(Evaluator, ArchiveServesRepeatsBitIdentically) {
  const DesignSpace space(smallJointSpace());
  SearchEvaluator evaluator(matrixAddKernel(6, 1), space, ExploreOptions{});
  std::vector<Genome> batch = space.enumerate();
  batch.resize(40);
  const std::vector<Objectives> first = evaluator.evaluate(batch);
  EXPECT_EQ(evaluator.evaluations(), 40u);
  EXPECT_EQ(evaluator.cacheHits(), 0u);
  const std::vector<Objectives> second = evaluator.evaluate(batch);
  EXPECT_EQ(evaluator.evaluations(), 40u) << "repeats must be free";
  EXPECT_EQ(evaluator.cacheHits(), 40u);
  EXPECT_EQ(first, second);
}

TEST(Evaluator, InBatchDuplicatesCountAsHits) {
  const DesignSpace space(smallJointSpace());
  SearchEvaluator evaluator(matrixAddKernel(6, 1), space, ExploreOptions{});
  const std::vector<Genome> all = space.enumerate();
  const std::vector<Genome> batch{all[0], all[1], all[0], all[1], all[0]};
  const std::vector<Objectives> objs = evaluator.evaluate(batch);
  EXPECT_EQ(evaluator.evaluations(), 2u);
  EXPECT_EQ(evaluator.cacheHits(), 3u);
  EXPECT_EQ(objs[0], objs[2]);
  EXPECT_EQ(objs[0], objs[4]);
  EXPECT_EQ(objs[1], objs[3]);
}

SearchOptions quickSearch(std::uint64_t seed) {
  SearchOptions o;
  o.seed = seed;
  o.populationSize = 16;
  o.generations = 4;
  return o;
}

TEST(Search, SameSeedIsBitIdenticalAcrossRuns) {
  const Kernel kernel = matrixAddKernel(6, 1);
  SearchOptions options = quickSearch(42);
  options.space = smallJointSpace();
  const Explorer explorer{ExploreOptions{}};
  const SearchResult a = explorer.searchPareto(kernel, options);
  const SearchResult b = explorer.searchPareto(kernel, options);
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].genome, b.front[i].genome);
    EXPECT_EQ(a.front[i].objectives, b.front[i].objectives);
  }
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.generations, b.generations);
}

TEST(Search, SameSeedIsBitIdenticalAcrossBackends) {
  const Kernel kernel = matrixAddKernel(6, 1);
  SearchOptions options = quickSearch(7);
  options.space = smallJointSpace();
  ExploreOptions autoBackend;
  autoBackend.backend = SweepBackend::Auto;
  ExploreOptions multisim;
  multisim.backend = SweepBackend::MultiSim;
  const SearchResult a =
      Explorer{autoBackend}.searchPareto(kernel, options);
  const SearchResult b = Explorer{multisim}.searchPareto(kernel, options);
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].genome, b.front[i].genome);
    EXPECT_EQ(a.front[i].objectives, b.front[i].objectives)
        << a.front[i].decoded.label();
  }
}

TEST(Search, DifferentSeedsStayWithinBudget) {
  const Kernel kernel = matrixAddKernel(6, 1);
  const Explorer explorer{ExploreOptions{}};
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SearchOptions options = quickSearch(seed);
    options.space = smallJointSpace();
    options.maxEvaluations = 50;
    options.finishExhaustively = false;
    const SearchResult r = explorer.searchPareto(kernel, options);
    EXPECT_LE(r.evaluations, 50u) << "seed " << seed;
    EXPECT_FALSE(r.front.empty());
    EXPECT_FALSE(r.exact);
  }
}

TEST(Search, FullBudgetIsExactOnASmallSpace) {
  // One quick in-process differential: full budget => mop-up => the
  // front equals the brute-force front bit for bit. The seeded sweep
  // over many spaces lives in search_differential_test.cpp.
  const DiffResult r = replaySearchDiffCase(1, {});
  EXPECT_TRUE(r.ok) << r.message;
}

TEST(Search, RecorderSeesSearchCountersAndSpans) {
  obs::Recorder recorder;
  NsgaSearch engine(matrixAddKernel(6, 1), DesignSpace(smallJointSpace()),
                    ExploreOptions{}, quickSearch(3), &recorder);
  const SearchResult r = engine.run();
  EXPECT_GT(r.evaluations, 0u);
  const obs::RunReport report = recorder.report();
  EXPECT_EQ(report.counter("search.generations"), r.generations);
  EXPECT_EQ(report.counter("search.evals"), r.evaluations);
  EXPECT_EQ(report.counter("search.cache_hits"), r.cacheHits);
  const obs::PhaseStat* run = report.phase("search.run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->count, 1u);
  const obs::PhaseStat* gen = report.phase("search.generation");
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->count, r.generations);
  const obs::PhaseStat* batch = report.phase("search.evaluate_batch");
  ASSERT_NE(batch, nullptr);
  EXPECT_GT(batch->count, 0u);
}

TEST(FrontIo, CsvRoundTripsBitExactly) {
  const Kernel kernel = matrixAddKernel(6, 1);
  SearchOptions options = quickSearch(11);
  options.space = smallJointSpace();
  const SearchResult result =
      Explorer{ExploreOptions{}}.searchPareto(kernel, options);
  ASSERT_FALSE(result.front.empty());
  std::vector<FrontRow> rows;
  for (const SearchPoint& p : result.front) {
    rows.push_back(toFrontRow(result.workload, p));
  }
  std::stringstream io;
  writeFrontCsv(io, rows);
  const std::vector<FrontRow> parsed = readFrontCsv(io);
  ASSERT_EQ(parsed.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(parsed[i].workload, rows[i].workload);
    EXPECT_EQ(parsed[i].cacheBytes, rows[i].cacheBytes);
    EXPECT_EQ(parsed[i].lineBytes, rows[i].lineBytes);
    EXPECT_EQ(parsed[i].associativity, rows[i].associativity);
    EXPECT_EQ(parsed[i].tiling, rows[i].tiling);
    EXPECT_EQ(parsed[i].replacement, rows[i].replacement);
    EXPECT_EQ(parsed[i].writePolicy, rows[i].writePolicy);
    EXPECT_EQ(parsed[i].layout, rows[i].layout);
    EXPECT_EQ(parsed[i].l2Bytes, rows[i].l2Bytes);
    EXPECT_EQ(parsed[i].objectives, rows[i].objectives)
        << "doubles must round-trip bit-exactly (row " << i << ")";
  }
}

TEST(FrontIo, RejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW((void)readFrontCsv(empty), std::runtime_error);
  std::stringstream badHeader("nope\n");
  EXPECT_THROW((void)readFrontCsv(badHeader), std::runtime_error);
  std::stringstream shortRow(frontCsvHeader() + "\nmatadd,16,8\n");
  EXPECT_THROW((void)readFrontCsv(shortRow), std::runtime_error);
  std::stringstream badNumber(
      frontCsvHeader() +
      "\nmatadd,16,x,1,1,LRU,write-back,tight,0,1,2,3\n");
  EXPECT_THROW((void)readFrontCsv(badNumber), std::runtime_error);
  std::stringstream badLayout(
      frontCsvHeader() +
      "\nmatadd,16,8,1,1,LRU,write-back,loose,0,1,2,3\n");
  EXPECT_THROW((void)readFrontCsv(badLayout), std::runtime_error);
}

TEST(SearchDiff, ShrinkStepsReduceOrReportMinimal) {
  DesignSpaceOptions s = smallJointSpace();
  const std::uint64_t before = DesignSpace(s).size();
  bool any = false;
  for (std::size_t step = 0; step < kSearchShrinkSteps; ++step) {
    DesignSpaceOptions trial = s;
    if (!applySearchShrinkStep(trial, step)) continue;
    any = true;
    EXPECT_LT(DesignSpace(trial).size(), before) << "step " << step;
  }
  EXPECT_TRUE(any);
  // Exhaustively applying every step bottoms out at a 1-genome space,
  // and every further step reports no-op.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t step = 0; step < kSearchShrinkSteps; ++step) {
      changed = applySearchShrinkStep(s, step) || changed;
    }
  }
  EXPECT_EQ(DesignSpace(s).size(), 1u);
}

TEST(SearchDiff, GeneratedCasesStayWithinTheCap) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const SearchDiffCase c = makeSearchDiffCase(seed);
    const std::uint64_t size = DesignSpace(c.space).size();
    EXPECT_GE(size, 1u) << "seed " << seed;
    EXPECT_LE(size, 512u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace memx::search
