#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/util/assert.hpp"
#include "memx/xform/tiling.hpp"

namespace memx {
namespace {

/// Multiset of (addr, type) pairs of a trace — tiling must preserve it.
std::map<std::pair<std::uint64_t, int>, std::size_t> multiset(
    const Trace& t) {
  std::map<std::pair<std::uint64_t, int>, std::size_t> m;
  for (const MemRef& r : t) {
    ++m[{r.addr, static_cast<int>(r.type)}];
  }
  return m;
}

TEST(Tiling, PreservesAccessMultiset) {
  const Kernel k = compressKernel();
  const Trace base = generateTrace(k);
  for (const std::int64_t b : {2, 4, 8, 16}) {
    const Kernel tiled = tile2D(k, b);
    const Trace t = generateTrace(tiled);
    EXPECT_EQ(t.size(), base.size()) << "B=" << b;
    EXPECT_EQ(multiset(t), multiset(base)) << "B=" << b;
  }
}

TEST(Tiling, TileSizeOnePreservesOrder) {
  const Kernel k = matrixAddKernel(6, 1);
  const Trace base = generateTrace(k);
  const Trace t = generateTrace(tile2D(k, 1));
  ASSERT_EQ(t.size(), base.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i].addr, base[i].addr) << "i=" << i;
  }
}

TEST(Tiling, ChangesTraversalOrder) {
  const Kernel k = transposeKernel(16);
  const Trace base = generateTrace(k);
  const Trace t = generateTrace(tile2D(k, 4));
  EXPECT_EQ(multiset(t), multiset(base));
  bool differs = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].addr != base[i].addr) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Tiling, BoundaryTilesClamped) {
  // n-1 = 31 iterations per loop do not divide evenly by 8.
  const Kernel k = compressKernel();  // i, j = 1..31
  const Kernel tiled = tile2D(k, 8);
  EXPECT_EQ(tiled.nest.depth(), 4u);
  EXPECT_EQ(tiled.nest.iterationCount(), 961u);
}

TEST(Tiling, NonDividingTileSize) {
  const Kernel k = matrixAddKernel(7, 4);  // 7x7 iterations
  const Kernel tiled = tile2D(k, 4);       // 4 + 3 per dimension
  EXPECT_EQ(tiled.nest.iterationCount(), 49u);
  EXPECT_EQ(multiset(generateTrace(tiled)),
            multiset(generateTrace(k)));
}

TEST(Tiling, SingleLevelTiling) {
  const Kernel k = compressKernel();
  const Kernel tiled = tileLoops(k, {1}, 4);  // tile only j
  EXPECT_EQ(tiled.nest.depth(), 3u);
  EXPECT_EQ(multiset(generateTrace(tiled)),
            multiset(generateTrace(k)));
}

TEST(Tiling, ThreeDeepNestTiling) {
  const Kernel k = matMulKernel(8);
  const Kernel tiled = tile2D(k, 2);  // tiles i and j, k untouched
  EXPECT_EQ(tiled.nest.depth(), 5u);
  EXPECT_EQ(multiset(generateTrace(tiled)),
            multiset(generateTrace(k)));
}

TEST(Tiling, TileSizeLargerThanLoopIsIdentityTraversal) {
  const Kernel k = matrixAddKernel(6, 1);
  const Trace base = generateTrace(k);
  const Trace t = generateTrace(tile2D(k, 64));
  ASSERT_EQ(t.size(), base.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i].addr, base[i].addr);
  }
}

// tile2D on a 1-deep kernel must throw; build one inline.
Kernel oneDeepKernel() {
  Kernel k;
  k.name = "one-deep";
  k.arrays = {ArrayDecl{"a", {8}, 4}};
  k.nest = LoopNest::rectangular({{0, 7}});
  k.body = {makeAccess(0, {AffineExpr::var(0)})};
  return k;
}

TEST(Tiling, RejectsBadArguments) {
  const Kernel k = compressKernel();
  EXPECT_THROW(tileLoops(k, {0, 0}, 4), ContractViolation);  // duplicate
  EXPECT_THROW(tileLoops(k, {5}, 4), ContractViolation);  // out of range
  EXPECT_THROW(tileLoops(k, {0}, 0), ContractViolation);  // bad size
  EXPECT_THROW(tile2D(oneDeepKernel(), 4), ContractViolation);
}

TEST(Tiling, RejectsNonRectangularInput) {
  const Kernel tiled = tile2D(compressKernel(), 4);
  // A tiled kernel has min-bounds; tiling it again must be rejected.
  EXPECT_THROW(tile2D(tiled, 2), ContractViolation);
}

TEST(Interchange, SwapsTraversalOrder) {
  const Kernel k = transposeKernel(8);
  const Kernel swapped = interchange(k, 0, 1);
  const Trace base = generateTrace(k);
  const Trace t = generateTrace(swapped);
  EXPECT_EQ(multiset(t), multiset(base));
  // After interchange, the b[j][i] read becomes sequential: its stride-1
  // accesses show up as consecutive addresses.
  EXPECT_EQ(t.size(), base.size());
}

TEST(Interchange, SelfSwapIsIdentity) {
  const Kernel k = matrixAddKernel(4, 1);
  const Trace base = generateTrace(k);
  const Trace t = generateTrace(interchange(k, 0, 0));
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i].addr, base[i].addr);
  }
}

TEST(Interchange, MakesColumnAccessRowAccess) {
  // Example 3(a) discussion: interchanging transpose flips which array
  // streams. Verify by measuring the dominant stride of the b-read.
  const Kernel k = transposeKernel(8);
  const Kernel swapped = interchange(k, 0, 1);
  const Trace t = generateTrace(swapped);
  // In the swapped kernel, iteration order is (j, i); b[j][i] now walks
  // i fastest => stride 4 bytes between consecutive b reads.
  std::vector<std::uint64_t> bReads;
  for (std::size_t i = 0; i < t.size(); i += 2) bReads.push_back(t[i].addr);
  for (std::size_t i = 1; i < 7; ++i) {
    EXPECT_EQ(bReads[i] - bReads[i - 1], 4u);
  }
}

TEST(Interchange, RejectsOutOfRange) {
  EXPECT_THROW(interchange(compressKernel(), 0, 3), ContractViolation);
}

}  // namespace
}  // namespace memx
