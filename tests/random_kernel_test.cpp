// Randomized property tests: seeded random stencil kernels are pushed
// through the whole pipeline and its invariants are checked.
#include <gtest/gtest.h>

#include <map>

#include "memx/cachesim/miss_classifier.hpp"
#include "memx/check/random_gen.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/ref_classes.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/working_set.hpp"
#include "memx/xform/tiling.hpp"

namespace memx {
namespace {

// The kernel generator lives in memx/check/random_gen.hpp so the
// differential and metamorphic suites draw from the same distribution.
Kernel randomKernel(std::uint64_t seed) {
  return randomStencilKernel(seed);
}

std::map<std::uint64_t, std::size_t> addrMultiset(const Trace& t) {
  std::map<std::uint64_t, std::size_t> m;
  for (const MemRef& r : t) ++m[r.addr];
  return m;
}

class RandomKernelSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomKernelSweep, TilingPreservesAccessMultiset) {
  const Kernel k = randomKernel(static_cast<std::uint64_t>(GetParam()));
  const Trace base = generateTrace(k);
  for (const std::int64_t b : {2, 4, 8}) {
    const Trace tiled = generateTrace(tile2D(k, b));
    EXPECT_EQ(addrMultiset(tiled), addrMultiset(base))
        << k.name << " B=" << b;
  }
}

TEST_P(RandomKernelSweep, CompleteLayoutHasNoConflictMisses) {
  const Kernel k = randomKernel(static_cast<std::uint64_t>(GetParam()));
  for (const std::uint32_t size : {128u, 256u, 512u}) {
    CacheConfig cache;
    cache.sizeBytes = size;
    cache.lineBytes = 8;
    const AssignmentPlan plan = assignConflictFree(k, cache);
    if (!plan.complete) continue;
    const MissBreakdown b =
        classifyMisses(cache, generateTrace(k, plan.layout));
    EXPECT_EQ(b.conflict, 0u) << k.name << " C" << size;
  }
}

TEST_P(RandomKernelSweep, MattsonMatchesFullyAssociativeSim) {
  const Kernel k = randomKernel(static_cast<std::uint64_t>(GetParam()));
  const Trace t = generateTrace(k);
  const ReuseProfile profile(t, 8);
  for (const std::uint32_t size : {32u, 128u, 512u}) {
    CacheConfig fa;
    fa.sizeBytes = size;
    fa.lineBytes = 8;
    fa.associativity = fa.numLines();
    EXPECT_NEAR(profile.predictedMissRate(fa.numLines()),
                simulateTrace(fa, t).missRate(), 1e-12)
        << k.name << " C" << size;
  }
}

TEST_P(RandomKernelSweep, MinCacheSizeAnalysisIsConsistent) {
  const Kernel k = randomKernel(static_cast<std::uint64_t>(GetParam()));
  const std::uint32_t line = 8;
  // The tight live-lines bound never exceeds the paper's formula.
  EXPECT_LE(minLiveLines(k, line), minCacheLines(k, line));
  // Every class the analysis reports covers every affine body access.
  const RefAnalysis a = analyzeReferences(k);
  std::size_t covered = a.indirectAccesses.size();
  for (const RefGroup& g : a.groups) covered += g.accessIndices.size();
  EXPECT_EQ(covered, k.body.size());
}

TEST_P(RandomKernelSweep, LargerCachesNeverMissMoreFullyAssoc) {
  const Kernel k = randomKernel(static_cast<std::uint64_t>(GetParam()));
  const Trace t = generateTrace(k);
  double prev = 1.1;
  for (const std::uint32_t size : {32u, 64u, 128u, 256u, 512u}) {
    CacheConfig fa;
    fa.sizeBytes = size;
    fa.lineBytes = 8;
    fa.associativity = fa.numLines();
    const double mr = simulateTrace(fa, t).missRate();
    EXPECT_LE(mr, prev + 1e-12) << k.name;  // LRU inclusion property
    prev = mr;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelSweep,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace memx
