#include <gtest/gtest.h>

#include "memx/cachesim/prefetch.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/generators.hpp"

namespace memx {
namespace {

CacheConfig dm(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  return c;
}

TEST(Prefetch, NonePolicyMatchesPlainCache) {
  const Trace t = randomTrace(0, 4096, 2000, 5);
  PrefetchingCache pc(dm(128, 8), PrefetchPolicy::None);
  pc.run(t);
  const CacheStats plain = simulateTrace(dm(128, 8), t);
  EXPECT_EQ(pc.stats().demand.misses(), plain.misses());
  EXPECT_EQ(pc.stats().prefetches, 0u);
}

TEST(Prefetch, OnMissHalvesSequentialMisses) {
  // Sequential stream: every other line arrives via prefetch.
  const Trace t = stridedTrace(0, 512, 4, 4);  // 2048 B, 256 lines at L8
  PrefetchingCache pc(dm(128, 8), PrefetchPolicy::OnMiss);
  pc.run(t);
  const CacheStats plain = simulateTrace(dm(128, 8), t);
  EXPECT_EQ(plain.misses(), 256u);
  EXPECT_EQ(pc.stats().demand.misses(), 128u);
  EXPECT_GT(pc.stats().accuracy(), 0.95);
}

TEST(Prefetch, TaggedCoversWholeSequentialStream) {
  // Tagged prefetch chains: each used prefetch triggers the next, so
  // after warmup every line arrives early.
  const Trace t = stridedTrace(0, 1024, 4, 4);
  PrefetchingCache pc(dm(128, 8), PrefetchPolicy::Tagged);
  pc.run(t);
  // Only the very first line truly misses; a handful of cold edges
  // remain.
  EXPECT_LT(pc.stats().demand.missRate(), 0.01);
  EXPECT_GT(pc.stats().accuracy(), 0.95);
}

TEST(Prefetch, UselessOnRandomTraffic) {
  const Trace t = randomTrace(0, 1 << 16, 4000, 9);
  PrefetchingCache pc(dm(256, 8), PrefetchPolicy::OnMiss);
  pc.run(t);
  EXPECT_LT(pc.stats().accuracy(), 0.2);
  // And it pollutes: traffic exceeds one fill per miss.
  EXPECT_GT(pc.stats().trafficPerAccess(),
            pc.stats().demand.missRate());
}

TEST(Prefetch, DemandCountersExcludeProbes) {
  const Trace t = stridedTrace(0, 64, 4, 4);
  PrefetchingCache pc(dm(128, 8), PrefetchPolicy::OnMiss);
  pc.run(t);
  EXPECT_EQ(pc.stats().demand.accesses(), 64u);
}

TEST(Prefetch, MatchesLargerLineOnStreams) {
  // The paper's lever (L16) vs prefetching at L8: on a pure stream both
  // halve the demand misses of the L8 cache.
  const Trace t = generateTrace(dequantKernel());
  PrefetchingCache pc(dm(64, 8), PrefetchPolicy::OnMiss);
  pc.run(t);
  const CacheStats l16 = simulateTrace(dm(64, 16), t);
  EXPECT_NEAR(pc.stats().demand.missRate(), l16.missRate(), 0.03);
}

}  // namespace
}  // namespace memx
