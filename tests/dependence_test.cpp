#include <gtest/gtest.h>

#include "memx/kernels/benchmarks.hpp"
#include "memx/util/assert.hpp"
#include "memx/xform/dependence.hpp"
#include "memx/xform/fusion.hpp"

namespace memx {
namespace {

AffineExpr I(std::int64_t c = 0) { return AffineExpr::var(0).plusConstant(c); }
AffineExpr J(std::int64_t c = 0) { return AffineExpr::var(1).plusConstant(c); }

/// a[i][j] = a[i-1][j] over n x n (classic flow dependence (1,0)).
Kernel flowKernel(std::int64_t n = 8) {
  Kernel k;
  k.name = "flow";
  k.arrays = {ArrayDecl{"a", {n, n}, 1}};
  k.nest = LoopNest::rectangular({{1, n - 1}, {0, n - 1}});
  k.body = {makeAccess(0, {I(-1), J()}),
            makeAccess(0, {I(), J()}, AccessType::Write)};
  return k;
}

/// a[i][j] = a[i+1][j] (anti dependence (1,0): reads before overwrite).
Kernel antiKernel(std::int64_t n = 8) {
  Kernel k;
  k.name = "anti";
  k.arrays = {ArrayDecl{"a", {n, n}, 1}};
  k.nest = LoopNest::rectangular({{0, n - 2}, {0, n - 1}});
  k.body = {makeAccess(0, {I(+1), J()}),
            makeAccess(0, {I(), J()}, AccessType::Write)};
  return k;
}

/// a[i][j] = a[i][j+1] with the dependence carried NEGATIVELY by an
/// interchange candidate: distance (0,1) anti.
Kernel rowAntiKernel(std::int64_t n = 8) {
  Kernel k;
  k.name = "rowanti";
  k.arrays = {ArrayDecl{"a", {n, n}, 1}};
  k.nest = LoopNest::rectangular({{0, n - 1}, {0, n - 2}});
  k.body = {makeAccess(0, {I(), J(+1)}),
            makeAccess(0, {I(), J()}, AccessType::Write)};
  return k;
}

TEST(Dependence, CompressDistancesArePositive) {
  const auto deps = computeDependences(compressKernel());
  EXPECT_FALSE(deps.empty());
  for (const Dependence& d : deps) {
    EXPECT_TRUE(d.isDistanceVector());
    EXPECT_TRUE(d.lexNonNegative());
  }
}

TEST(Dependence, FlowKernelCarriesDistanceOneZero) {
  const auto deps = computeDependences(flowKernel());
  bool found = false;
  for (const Dependence& d : deps) {
    if (d.kind == DepKind::Flow && d.isDistanceVector() &&
        d.distance.size() >= 2 && *d.distance[0].value == 1 &&
        *d.distance[1].value == 0) {
      found = true;
      // Source is the write, destination the read.
      EXPECT_EQ(d.srcAccess, 1u);
      EXPECT_EQ(d.dstAccess, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dependence, AntiKernelClassified) {
  const auto deps = computeDependences(antiKernel());
  bool found = false;
  for (const Dependence& d : deps) {
    if (d.kind == DepKind::Anti && d.isDistanceVector() &&
        *d.distance[0].value == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dependence, IndependentArraysHaveNoDeps) {
  // transpose: reads b, writes a — no shared array, no dependences.
  EXPECT_TRUE(computeDependences(transposeKernel(8)).empty());
}

TEST(Dependence, ReadOnlyPairsIgnored) {
  const auto deps = computeDependences(pdeKernel());
  for (const Dependence& d : deps) {
    const Kernel k = pdeKernel();
    const bool srcW = k.body[d.srcAccess].type == AccessType::Write;
    const bool dstW = k.body[d.dstAccess].type == AccessType::Write;
    EXPECT_TRUE(srcW || dstW);
  }
}

TEST(Dependence, OutputDependenceOnRepeatedWrite) {
  // matmul writes c[i][j] every k iteration: output dep with k-distance
  // unconstrained is pinned to 0 on i/j.
  const auto deps = computeDependences(matMulKernel(4));
  bool foundOutput = false;
  for (const Dependence& d : deps) {
    if (d.kind == DepKind::Output) foundOutput = true;
  }
  EXPECT_TRUE(foundOutput);
}

TEST(Dependence, IndirectAccessIsConservative) {
  Kernel k;
  k.name = "indirect";
  k.arrays = {ArrayDecl{"t", {64}, 4}};
  k.nest = LoopNest::rectangular({{0, 15}});
  ArrayAccess gather;
  gather.arrayIndex = 0;
  gather.subscripts = {AffineExpr(0)};
  gather.indirectSeed = 3;
  k.body = {gather, makeAccess(0, {AffineExpr::var(0)},
                               AccessType::Write)};
  const auto deps = computeDependences(k);
  ASSERT_FALSE(deps.empty());
  EXPECT_FALSE(deps.front().isDistanceVector());
  EXPECT_FALSE(deps.front().lexNonNegative());
}

TEST(Legality, TilingLegalOnPaperKernels) {
  // All five benchmarks have non-negative distances: rectangular tiling
  // of the outer two loops is legal — which is why the paper can tile
  // them.
  for (const Kernel& k : paperBenchmarks()) {
    EXPECT_TRUE(tilingIsLegal(k)) << k.name;
  }
  EXPECT_TRUE(tilingIsLegal(transposeKernel(8)));
}

TEST(Legality, TilingIllegalWithUnknownDistances) {
  Kernel k;
  k.name = "gatherwrite";
  k.arrays = {ArrayDecl{"t", {64}, 4}};
  k.nest = LoopNest::rectangular({{0, 15}, {0, 3}});
  ArrayAccess gather;
  gather.arrayIndex = 0;
  gather.subscripts = {AffineExpr(0)};
  gather.indirectSeed = 9;
  k.body = {gather,
            makeAccess(0, {AffineExpr::var(0)}, AccessType::Write)};
  EXPECT_FALSE(tilingIsLegal(k));
}

TEST(Legality, OneDeepNestNotTileable) {
  Kernel k;
  k.name = "onedeep";
  k.arrays = {ArrayDecl{"a", {8}, 4}};
  k.nest = LoopNest::rectangular({{0, 7}});
  k.body = {makeAccess(0, {AffineExpr::var(0)}, AccessType::Write)};
  EXPECT_FALSE(tilingIsLegal(k));
}

TEST(Legality, InterchangeLegalForSymmetricStencil) {
  EXPECT_TRUE(interchangeIsLegal(compressKernel(), 0, 1));
  EXPECT_TRUE(interchangeIsLegal(transposeKernel(8), 0, 1));
}

TEST(Legality, InterchangeRejectsOutOfRange) {
  EXPECT_THROW((void)interchangeIsLegal(compressKernel(), 0, 5),
               ContractViolation);
}

TEST(Legality, FusionLegalForProducerConsumer) {
  // scale: c = 2a; sum: d = c + a — sum reads what scale wrote at the
  // same iteration: legal.
  Kernel scale;
  scale.name = "scale";
  scale.arrays = {ArrayDecl{"a", {8, 8}, 1}, ArrayDecl{"c", {8, 8}, 1}};
  scale.nest = LoopNest::rectangular({{0, 7}, {0, 7}});
  scale.body = {makeAccess(0, {I(), J()}),
                makeAccess(1, {I(), J()}, AccessType::Write)};
  Kernel sum;
  sum.name = "sum";
  sum.arrays = {ArrayDecl{"c", {8, 8}, 1}, ArrayDecl{"d", {8, 8}, 1}};
  sum.nest = LoopNest::rectangular({{0, 7}, {0, 7}});
  sum.body = {makeAccess(0, {I(), J()}),
              makeAccess(1, {I(), J()}, AccessType::Write)};
  EXPECT_TRUE(fusionIsLegal(scale, sum));
}

TEST(Legality, FusionIllegalWhenConsumerLooksAhead) {
  // second reads c[i+1][j]: at iteration i it needs a value the fused
  // first part has not produced yet.
  Kernel scale;
  scale.name = "scale";
  scale.arrays = {ArrayDecl{"c", {9, 8}, 1}};
  scale.nest = LoopNest::rectangular({{0, 7}, {0, 7}});
  scale.body = {makeAccess(0, {I(), J()}, AccessType::Write)};
  Kernel ahead;
  ahead.name = "ahead";
  ahead.arrays = {ArrayDecl{"c", {9, 8}, 1}, ArrayDecl{"d", {8, 8}, 1}};
  ahead.nest = LoopNest::rectangular({{0, 7}, {0, 7}});
  ahead.body = {makeAccess(0, {I(+1), J()}),
                makeAccess(1, {I(), J()}, AccessType::Write)};
  EXPECT_FALSE(fusionIsLegal(scale, ahead));
}

TEST(Legality, FusionIllegalOnShapeConflict) {
  Kernel a;
  a.name = "a";
  a.arrays = {ArrayDecl{"x", {8, 8}, 1}};
  a.nest = LoopNest::rectangular({{0, 7}, {0, 7}});
  a.body = {makeAccess(0, {I(), J()}, AccessType::Write)};
  Kernel b = a;
  b.name = "b";
  b.arrays[0].elemBytes = 4;
  EXPECT_FALSE(fusionIsLegal(a, b));
}

TEST(Legality, FusionIllegalOnDifferentSpaces) {
  EXPECT_FALSE(fusionIsLegal(flowKernel(8), flowKernel(16)));
}

TEST(Dependence, RowAntiInterchangeStillLegal) {
  // Distance (0,1): swapping loops gives (1,0) — still lexicographically
  // positive, so interchange is legal here.
  EXPECT_TRUE(interchangeIsLegal(rowAntiKernel(), 0, 1));
}

TEST(Legality, DistributionLegalForIndependentStatements) {
  // c[i][j] = a[i][j]; d[i][j] = b[i][j]: the halves share nothing.
  Kernel k;
  k.name = "indep";
  k.arrays = {ArrayDecl{"a", {8, 8}, 1}, ArrayDecl{"c", {8, 8}, 1},
              ArrayDecl{"b", {8, 8}, 1}, ArrayDecl{"d", {8, 8}, 1}};
  k.nest = LoopNest::rectangular({{0, 7}, {0, 7}});
  k.body = {makeAccess(0, {I(), J()}),
            makeAccess(1, {I(), J()}, AccessType::Write),
            makeAccess(2, {I(), J()}),
            makeAccess(3, {I(), J()}, AccessType::Write)};
  EXPECT_TRUE(distributionIsLegal(k, 2));
}

TEST(Legality, DistributionLegalForForwardFlow) {
  // c written in the first half, read in the second at the same
  // iteration: the dependence still points first -> second afterwards.
  Kernel k;
  k.name = "forward";
  k.arrays = {ArrayDecl{"a", {8, 8}, 1}, ArrayDecl{"c", {8, 8}, 1},
              ArrayDecl{"d", {8, 8}, 1}};
  k.nest = LoopNest::rectangular({{0, 7}, {0, 7}});
  k.body = {makeAccess(0, {I(), J()}),
            makeAccess(1, {I(), J()}, AccessType::Write),
            makeAccess(1, {I(), J()}),
            makeAccess(2, {I(), J()}, AccessType::Write)};
  EXPECT_TRUE(distributionIsLegal(k, 2));
}

TEST(Legality, DistributionIllegalWhenSecondFeedsFirst) {
  // First half reads c[i-1][j] that the SECOND half writes: iteration
  // i+1's read needs iteration i's (second-half) write — distribution
  // runs all reads first. Illegal.
  Kernel k;
  k.name = "backward";
  k.arrays = {ArrayDecl{"c", {9, 8}, 1}, ArrayDecl{"d", {8, 8}, 1}};
  k.nest = LoopNest::rectangular({{1, 7}, {0, 7}});
  k.body = {makeAccess(0, {I(-1), J()}),
            makeAccess(1, {I(), J()}, AccessType::Write),
            makeAccess(0, {I(), J()}, AccessType::Write)};
  EXPECT_FALSE(distributionIsLegal(k, 2));
}

TEST(Legality, DistributionRejectsBadSplit) {
  EXPECT_THROW((void)distributionIsLegal(compressKernel(), 0),
               ContractViolation);
}

TEST(Dependence, ToStringNames) {
  EXPECT_EQ(toString(DepKind::Flow), "flow");
  EXPECT_EQ(toString(DepKind::Anti), "anti");
  EXPECT_EQ(toString(DepKind::Output), "output");
}

}  // namespace
}  // namespace memx
