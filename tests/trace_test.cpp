#include <gtest/gtest.h>

#include "memx/trace/generators.hpp"
#include "memx/trace/trace.hpp"
#include "memx/trace/trace_stats.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(MemRef, FactoriesSetFields) {
  const MemRef r = readRef(100, 8);
  EXPECT_EQ(r.addr, 100u);
  EXPECT_EQ(r.size, 8u);
  EXPECT_EQ(r.type, AccessType::Read);

  const MemRef w = writeRef(4);
  EXPECT_EQ(w.type, AccessType::Write);
  EXPECT_EQ(w.size, 4u);
}

TEST(Trace, PushAndIterate) {
  Trace t;
  EXPECT_TRUE(t.empty());
  t.push(readRef(0));
  t.push(writeRef(4));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0u);
  EXPECT_EQ(t[1].type, AccessType::Write);
}

TEST(Trace, ReadWriteCounts) {
  Trace t;
  t.push(readRef(0));
  t.push(readRef(4));
  t.push(writeRef(8));
  EXPECT_EQ(t.readCount(), 2u);
  EXPECT_EQ(t.writeCount(), 1u);
}

TEST(Trace, AppendPreservesOrder) {
  Trace a;
  a.push(readRef(0));
  Trace b;
  b.push(readRef(100));
  b.push(readRef(200));
  a.append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[1].addr, 100u);
  EXPECT_EQ(a[2].addr, 200u);
}

TEST(TraceSource, VectorSourceDrains) {
  Trace t;
  t.push(readRef(0));
  t.push(readRef(4));
  VectorTraceSource src(t);
  const Trace drained = drain(src);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[1].addr, 4u);
  EXPECT_FALSE(src.next().has_value());
}

TEST(Generators, StridedTraceAddresses) {
  const Trace t = stridedTrace(100, 4, 8);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0].addr, 100u);
  EXPECT_EQ(t[3].addr, 124u);
}

TEST(Generators, NegativeStride) {
  const Trace t = stridedTrace(100, 3, -4);
  EXPECT_EQ(t[2].addr, 92u);
}

TEST(Generators, ZeroStrideRepeats) {
  const Trace t = stridedTrace(64, 5, 0);
  for (const MemRef& r : t) EXPECT_EQ(r.addr, 64u);
}

TEST(Generators, RandomTraceDeterministicPerSeed) {
  const Trace a = randomTrace(0, 1024, 100, 42);
  const Trace b = randomTrace(0, 1024, 100, 42);
  const Trace c = randomTrace(0, 1024, 100, 43);
  EXPECT_EQ(a.refs(), b.refs());
  EXPECT_NE(a.refs(), c.refs());
}

TEST(Generators, RandomTraceStaysInSpan) {
  const Trace t = randomTrace(1000, 256, 500, 7, 4);
  for (const MemRef& r : t) {
    EXPECT_GE(r.addr, 1000u);
    EXPECT_LT(r.addr + r.size, 1000u + 256u + 1u);
    EXPECT_EQ((r.addr - 1000u) % 4, 0u);
  }
}

TEST(Generators, LoopingTraceRevisits) {
  const Trace t = loopingTrace(0, 4, 3);
  ASSERT_EQ(t.size(), 12u);
  EXPECT_EQ(t[0].addr, t[4].addr);
  EXPECT_EQ(t[3].addr, t[11].addr);
}

TEST(Generators, PingPongAlternates) {
  const Trace t = pingPongTrace(0, 1000, 3, 4);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[0].addr, 0u);
  EXPECT_EQ(t[1].addr, 1000u);
  EXPECT_EQ(t[4].addr, 8u);
  EXPECT_EQ(t[5].addr, 1008u);
}

TEST(Generators, RejectBadArguments) {
  EXPECT_THROW(stridedTrace(0, 4, 4, 0), ContractViolation);
  EXPECT_THROW(randomTrace(0, 2, 10, 1, 4), ContractViolation);
}

TEST(TraceStats, CountsAndFootprint) {
  Trace t;
  t.push(readRef(0, 4));
  t.push(writeRef(16, 4));
  t.push(readRef(8, 4));
  const TraceStats s = computeStats(t, 8);
  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.minAddr, 0u);
  EXPECT_EQ(s.maxAddr, 19u);
  EXPECT_EQ(s.footprint(), 20u);
}

TEST(TraceStats, UniqueLinesAtLineSize) {
  Trace t;
  t.push(readRef(0, 4));
  t.push(readRef(4, 4));   // same 8-byte line as 0
  t.push(readRef(8, 4));   // new line
  t.push(readRef(0, 4));   // repeat
  const TraceStats s = computeStats(t, 8);
  EXPECT_EQ(s.uniqueAddresses, 3u);
  EXPECT_EQ(s.uniqueLines, 2u);
}

TEST(TraceStats, StraddlingAccessTouchesTwoLines) {
  Trace t;
  t.push(readRef(6, 4));  // bytes 6..9 straddle lines 0 and 1 (L=8)
  const TraceStats s = computeStats(t, 8);
  EXPECT_EQ(s.uniqueLines, 2u);
}

TEST(TraceStats, EmptyTrace) {
  const TraceStats s = computeStats(Trace{}, 16);
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.footprint(), 0u);
}

TEST(TraceStats, RejectsNonPow2Line) {
  EXPECT_THROW((void)computeStats(Trace{}, 12), ContractViolation);
}

TEST(TraceStats, StrideHistogram) {
  const Trace t = stridedTrace(0, 5, 8);
  const auto hist = strideHistogram(t);
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist.at(8), 4u);
}

TEST(TraceStats, StrideHistogramMixed) {
  Trace t;
  t.push(readRef(0));
  t.push(readRef(8));
  t.push(readRef(4));
  const auto hist = strideHistogram(t);
  EXPECT_EQ(hist.at(8), 1u);
  EXPECT_EQ(hist.at(-4), 1u);
}

}  // namespace
}  // namespace memx
