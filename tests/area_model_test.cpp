#include <gtest/gtest.h>

#include "memx/energy/area_model.hpp"
#include "memx/energy/energy_model.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig cfg(std::uint32_t size, std::uint32_t line,
                std::uint32_t ways = 1) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  c.associativity = ways;
  return c;
}

TEST(AreaModel, TagBitsComputed) {
  // C64L8 direct-mapped: 8 sets (3 bits), 8-byte lines (3 bits).
  EXPECT_EQ(tagBits(cfg(64, 8), 32), 26u);
  // Fully associative: no index bits.
  EXPECT_EQ(tagBits(cfg(64, 8, 8), 32), 29u);
  // Wider lines shrink the tag.
  EXPECT_EQ(tagBits(cfg(64, 32), 32), 26u);  // 1 set bit + 5 offset
}

TEST(AreaModel, TagBitsRejectTinyAddresses) {
  EXPECT_THROW((void)tagBits(cfg(1024, 4), 8), ContractViolation);
}

TEST(AreaModel, DataAreaDominates) {
  const CacheArea a = estimateArea(cfg(1024, 32));
  EXPECT_GT(a.dataRbe, a.tagRbe);
  EXPECT_GT(a.dataRbe, a.statusRbe);
  EXPECT_DOUBLE_EQ(a.totalRbe(),
                   a.dataRbe + a.tagRbe + a.statusRbe + a.comparatorRbe);
}

TEST(AreaModel, SmallLinesPayMoreTagOverhead) {
  const double fine = estimateArea(cfg(256, 4)).overheadRatio();
  const double coarse = estimateArea(cfg(256, 64)).overheadRatio();
  EXPECT_GT(fine, coarse);
  EXPECT_GT(fine, 0.3);  // >30% overhead at 4-byte lines, 32-bit tags
}

TEST(AreaModel, AreaMonotoneInCapacity) {
  double prev = 0.0;
  for (const std::uint32_t size : {16u, 64u, 256u, 1024u}) {
    const double total = estimateArea(cfg(size, 8)).totalRbe();
    EXPECT_GT(total, prev);
    prev = total;
  }
}

TEST(AreaModel, AssociativityAddsComparators) {
  const CacheArea dm1 = estimateArea(cfg(128, 8, 1));
  const CacheArea sa4 = estimateArea(cfg(128, 8, 4));
  EXPECT_GT(sa4.comparatorRbe, dm1.comparatorRbe);
  EXPECT_DOUBLE_EQ(sa4.dataRbe, dm1.dataRbe);
}

TEST(AreaModel, ParamValidation) {
  AreaParams p;
  p.sramCellRbe = 0;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = AreaParams{};
  p.addressBits = 4;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(TagEnergy, DisabledByDefault) {
  EnergyParams p;
  const CacheEnergyModel m(cfg(64, 8), p, 2.0);
  EXPECT_DOUBLE_EQ(m.tagEnergyNj(), 0.0);
  EXPECT_DOUBLE_EQ(m.hitEnergyNj(), m.decodeEnergyNj() + m.cellEnergyNj());
}

TEST(TagEnergy, EnabledAddsToHitEnergy) {
  EnergyParams p;
  p.includeTagArray = true;
  const CacheEnergyModel m(cfg(64, 8), p, 2.0);
  EXPECT_GT(m.tagEnergyNj(), 0.0);
  EXPECT_DOUBLE_EQ(m.hitEnergyNj(), m.decodeEnergyNj() +
                                        m.cellEnergyNj() +
                                        m.tagEnergyNj());
}

TEST(TagEnergy, ShrinksWithNarrowerAddresses) {
  EnergyParams wide;
  wide.includeTagArray = true;
  wide.addressBits = 32;
  EnergyParams narrow = wide;
  narrow.addressBits = 16;
  const CacheEnergyModel mWide(cfg(64, 8), wide, 2.0);
  const CacheEnergyModel mNarrow(cfg(64, 8), narrow, 2.0);
  EXPECT_GT(mWide.tagEnergyNj(), mNarrow.tagEnergyNj());
}

TEST(TagEnergy, RelativeCostFallsWithLineSize) {
  EnergyParams p;
  p.includeTagArray = true;
  const CacheEnergyModel fine(cfg(256, 4), p, 2.0);
  const CacheEnergyModel coarse(cfg(256, 64), p, 2.0);
  EXPECT_GT(fine.tagEnergyNj() / fine.cellEnergyNj(),
            coarse.tagEnergyNj() / coarse.cellEnergyNj());
}

}  // namespace
}  // namespace memx
