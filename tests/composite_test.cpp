#include <gtest/gtest.h>

#include "memx/core/selection.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/mpeg/composite.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

ExploreOptions tinySweep() {
  ExploreOptions o;
  o.ranges.minCacheBytes = 16;
  o.ranges.maxCacheBytes = 64;
  o.ranges.minLineBytes = 4;
  o.ranges.maxLineBytes = 8;
  o.ranges.maxAssociativity = 2;
  o.ranges.maxTiling = 2;
  return o;
}

TEST(Composite, RejectsEmptyAndBadTrips) {
  CompositeProgram p("empty");
  EXPECT_THROW(p.explore(Explorer(tinySweep())), ContractViolation);
  EXPECT_THROW(p.add(matrixAddKernel(4, 4), 0), ContractViolation);
}

TEST(Composite, AccessorsWork) {
  CompositeProgram p("two");
  p.add(matrixAddKernel(4, 4), 3);
  p.add(dequantKernel(8), 2);
  EXPECT_EQ(p.kernelCount(), 2u);
  EXPECT_EQ(p.kernel(1).name, "dequant");
  EXPECT_EQ(p.trips(0), 3u);
  EXPECT_THROW((void)p.kernel(5), ContractViolation);
}

TEST(Composite, CombinedMetricsAreTripWeighted) {
  CompositeProgram p("pair");
  p.add(matrixAddKernel(8, 4), 2);
  p.add(dequantKernel(8), 3);
  const Explorer ex(tinySweep());
  const CompositeProgram::Result r = p.explore(ex);

  ASSERT_EQ(r.perKernel.size(), 2u);
  for (const DesignPoint& combined : r.combined.points) {
    const DesignPoint& a = r.perKernel[0].at(combined.key);
    const DesignPoint& b = r.perKernel[1].at(combined.key);
    EXPECT_NEAR(combined.cycles, 2 * a.cycles + 3 * b.cycles, 1e-6);
    EXPECT_NEAR(combined.energyNj, 2 * a.energyNj + 3 * b.energyNj, 1e-6);
    EXPECT_NEAR(combined.missRate,
                (2 * a.missRate + 3 * b.missRate) / 5.0, 1e-12);
    EXPECT_EQ(combined.accesses, 2 * a.accesses + 3 * b.accesses);
  }
}

TEST(Composite, SingleKernelWithUnitTripMatchesPlain) {
  CompositeProgram p("solo");
  p.add(dequantKernel(8), 1);
  const Explorer ex(tinySweep());
  const auto r = p.explore(ex);
  const ExplorationResult direct = ex.explore(dequantKernel(8));
  ASSERT_EQ(r.combined.points.size(), direct.points.size());
  for (std::size_t i = 0; i < direct.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.combined.points[i].cycles, direct.points[i].cycles);
    EXPECT_DOUBLE_EQ(r.combined.points[i].energyNj,
                     direct.points[i].energyNj);
  }
}

TEST(Composite, CombineResultsValidatesShape) {
  EXPECT_THROW(combineResults("x", {}, {}), ContractViolation);
}

TEST(Composite, MpegDecoderAssembles) {
  const CompositeProgram p = mpegDecoder();
  EXPECT_EQ(p.name(), "mpeg-decoder");
  EXPECT_EQ(p.kernelCount(), 9u);
}

TEST(Composite, MpegOptimaExistAndDiffer) {
  // Section-5 headline: the composite min-energy configuration differs
  // from the composite min-cycles configuration.
  ExploreOptions o;
  o.ranges.minCacheBytes = 16;
  o.ranges.maxCacheBytes = 512;
  o.ranges.minLineBytes = 4;
  o.ranges.maxLineBytes = 16;
  o.ranges.maxAssociativity = 8;
  o.ranges.maxTiling = 8;
  const CompositeProgram p = mpegDecoder();
  const auto r = p.explore(Explorer(o));
  const auto minE = minEnergyPoint(r.combined.points);
  const auto minC = minCyclePoint(r.combined.points);
  ASSERT_TRUE(minE.has_value());
  ASSERT_TRUE(minC.has_value());
  EXPECT_NE(minE->key, minC->key);
  EXPECT_LE(minE->energyNj, minC->energyNj);
  EXPECT_LE(minC->cycles, minE->cycles);
}

}  // namespace
}  // namespace memx
