#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "memx/core/parallel_explorer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/obs/run_report.hpp"

namespace memx {
namespace {

// --- Minimal JSON validator -------------------------------------------
//
// Enough of RFC 8259 to prove the exported trace-event and report files
// are well-formed: objects, arrays, strings with escapes, numbers,
// literals. Returns false instead of throwing so tests can EXPECT on it.

class JsonChecker {
public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == text_.size();
  }

private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool validJson(const std::string& s) { return JsonChecker(s).valid(); }

TEST(JsonChecker, SanityOnHandWrittenCases) {
  EXPECT_TRUE(validJson(R"({"a":[1,2.5,-3e4],"b":"x\n\"y\"","c":null})"));
  EXPECT_FALSE(validJson(R"({"a":1)"));
  EXPECT_FALSE(validJson(R"(["unterminated)"));
  EXPECT_FALSE(validJson("{\"a\":\"\x01\"}"));
  EXPECT_FALSE(validJson(R"({"a":1}trailing)"));
}

// --- Counters ----------------------------------------------------------

TEST(Recorder, CounterConcurrentBumpsAreLossless) {
  obs::Recorder recorder;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kBumps = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder]() {
      // Half the bumps go through a cached handle (the hot-loop idiom),
      // half re-resolve the name, exercising the registry lock.
      obs::Counter& cached = recorder.counter("shared");
      for (std::uint64_t i = 0; i < kBumps / 2; ++i) cached.add();
      for (std::uint64_t i = 0; i < kBumps / 2; ++i) {
        recorder.counter("shared").add();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(recorder.counterValue("shared"), kThreads * kBumps);
  EXPECT_EQ(recorder.counterValue("never_bumped"), 0u);
}

TEST(Recorder, CountersAreIndependentAndSupportDeltas) {
  obs::Recorder recorder;
  recorder.counter("a").add(3);
  recorder.counter("b").add();
  recorder.counter("a").add(4);
  EXPECT_EQ(recorder.counterValue("a"), 7u);
  EXPECT_EQ(recorder.counterValue("b"), 1u);
  const obs::RunReport report = recorder.report();
  EXPECT_EQ(report.counter("a"), 7u);
  EXPECT_EQ(report.counter("missing"), 0u);
}

// --- Spans and report aggregation --------------------------------------

TEST(Recorder, SpanNestingAggregatesPerPhase) {
  obs::Recorder recorder;
  {
    const obs::ScopedSpan outer(&recorder, "outer");
    for (int i = 0; i < 3; ++i) {
      const obs::ScopedSpan inner(&recorder, "inner");
    }
  }
  const obs::RunReport report = recorder.report();
  ASSERT_EQ(report.spans.size(), 4u);

  const obs::PhaseStat* outer = report.phase("outer");
  const obs::PhaseStat* inner = report.phase("inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 3u);
  EXPECT_EQ(report.phase("absent"), nullptr);

  // The outer span contains all inner spans.
  EXPECT_GE(outer->totalSec, inner->totalSec);
  EXPECT_LE(inner->minSec, inner->maxSec);
  EXPECT_GE(report.wallSec, outer->totalSec);

  // One thread; its busy time is the interval union, so nesting must
  // not double-count: busy == outer's span, within clock resolution.
  ASSERT_EQ(report.workers.size(), 1u);
  EXPECT_EQ(report.workers[0].spans, 4u);
  EXPECT_LE(report.workers[0].busySec, report.wallSec + 1e-9);
  EXPECT_NEAR(report.workers[0].busySec, outer->totalSec, 1e-9);
}

TEST(Recorder, ThreadsGetDenseStableIndices) {
  obs::Recorder recorder;
  const std::uint32_t main1 = recorder.threadIndex();
  const std::uint32_t main2 = recorder.threadIndex();
  EXPECT_EQ(main1, main2);
  std::uint32_t other = 0;
  std::thread([&]() { other = recorder.threadIndex(); }).join();
  EXPECT_NE(other, main1);
  EXPECT_LT(std::max(other, main1), 2u);
}

TEST(Recorder, NullSinkSpansAndExternalIntervalsWork) {
  // Null recorder: ScopedSpan must be a no-op, not a crash.
  { const obs::ScopedSpan span(nullptr, "ignored"); }

  // Externally timed interval via recordSpan directly.
  obs::Recorder recorder;
  recorder.recordSpan("manual", 7, 1'000, 4'000);
  const obs::RunReport report = recorder.report();
  ASSERT_EQ(report.spans.size(), 1u);
  EXPECT_EQ(report.spans[0].tid, 7u);
  EXPECT_DOUBLE_EQ(report.spans[0].durationSec(), 3e-6);
  EXPECT_DOUBLE_EQ(report.wallSec, 3e-6);
}

TEST(RunReport, GaugesAndSummaryRender) {
  obs::Recorder recorder;
  recorder.setGauge("trace_cache_mb", 1.5);
  recorder.setGauge("trace_cache_mb", 2.5);  // last write wins
  recorder.counter("points").add(42);
  { const obs::ScopedSpan span(&recorder, "phase"); }
  const obs::RunReport report = recorder.report();
  ASSERT_EQ(report.gauges.count("trace_cache_mb"), 1u);
  EXPECT_DOUBLE_EQ(report.gauges.at("trace_cache_mb"), 2.5);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("phase"), std::string::npos);
  EXPECT_NE(summary.find("points"), std::string::npos);
  EXPECT_NE(summary.find("trace_cache_mb"), std::string::npos);
  EXPECT_EQ(report.phaseTable().rowCount(), 1u);
}

// --- JSON sinks ---------------------------------------------------------

TEST(RunReport, ChromeTraceAndReportJsonAreWellFormed) {
  obs::Recorder recorder;
  // Hostile names: quotes, backslashes, newline, control char.
  {
    const obs::ScopedSpan span(&recorder, "na\"me\\with\nweird\x01chars");
  }
  { const obs::ScopedSpan span(&recorder, "plain"); }
  recorder.counter("count\"er").add(5);
  recorder.setGauge("ga\\uge", 0.25);

  const obs::RunReport report = recorder.report();
  std::ostringstream trace;
  report.writeChromeTrace(trace);
  EXPECT_TRUE(validJson(trace.str())) << trace.str();
  // Spot-check the trace-event shape.
  EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"ph\":\"X\""), std::string::npos);

  std::ostringstream json;
  report.writeJson(json);
  EXPECT_TRUE(validJson(json.str())) << json.str();
  EXPECT_NE(json.str().find("\"wall_seconds\""), std::string::npos);
}

TEST(RunReport, EmptyRecorderStillExportsValidJson) {
  const obs::RunReport report = obs::Recorder().report();
  EXPECT_DOUBLE_EQ(report.wallSec, 0.0);
  std::ostringstream trace;
  report.writeChromeTrace(trace);
  EXPECT_TRUE(validJson(trace.str())) << trace.str();
  std::ostringstream json;
  report.writeJson(json);
  EXPECT_TRUE(validJson(json.str())) << json.str();
}

// --- End-to-end: instrumented exploration -------------------------------

ExploreOptions smallSweep() {
  ExploreOptions o;
  o.ranges.minCacheBytes = 16;
  o.ranges.maxCacheBytes = 128;
  o.ranges.minLineBytes = 4;
  o.ranges.maxLineBytes = 16;
  o.ranges.maxTiling = 4;
  return o;
}

bool samePoints(const std::vector<DesignPoint>& a,
                const std::vector<DesignPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].key == b[i].key) || a[i].accesses != b[i].accesses ||
        a[i].missRate != b[i].missRate || a[i].cycles != b[i].cycles ||
        a[i].energyNj != b[i].energyNj) {
      return false;
    }
  }
  return true;
}

TEST(ObsIntegration, ExploreWithReportIsBitIdenticalToWithout) {
  const Kernel kernel = compressKernel();
  const Explorer plain(smallSweep());
  const ExplorationResult bare = plain.explore(kernel);

  obs::Recorder recorder;
  Explorer observed(smallSweep());
  observed.setRecorder(&recorder);
  const ExplorationResult instrumented = observed.explore(kernel);

  EXPECT_TRUE(samePoints(bare.points, instrumented.points));

  const obs::RunReport report = recorder.report();
  ASSERT_NE(report.phase("explore"), nullptr);
  ASSERT_NE(report.phase("planSweep"), nullptr);
  ASSERT_NE(report.phase("group.evaluate"), nullptr);
  ASSERT_NE(report.phase("trace.build"), nullptr);
  EXPECT_EQ(report.counter("sweep.points"), bare.points.size());
  EXPECT_EQ(report.counter("plan.keys"), bare.points.size());
  EXPECT_GT(report.counter("plan.groups"), 0u);
  EXPECT_EQ(report.counter("sweep.groups"), report.counter("plan.groups"));
  // The serial path goes through the trace cache: every group misses
  // once, and there are no repeat visits in a single explore().
  EXPECT_EQ(report.counter("trace.cache_miss"),
            report.counter("plan.groups"));
  EXPECT_GT(report.counter("trace.accesses"), 0u);
  // Default options are LRU/write-allocate, so the sweep resolves to the
  // stack-distance backend: the analytic workload counters replace the
  // per-config simulation counter.
  EXPECT_EQ(plain.resolvedBackend(), SweepBackend::StackDist);
  EXPECT_EQ(report.counter("sweep.groups_stackdist"),
            report.counter("sweep.groups"));
  EXPECT_EQ(report.counter("sim.accesses"), 0u);
  EXPECT_GT(report.counter("stackdist.passes"), 0u);
  EXPECT_GE(report.counter("stackdist.accesses"),
            report.counter("trace.accesses"));
}

TEST(ObsIntegration, ParallelReportCarriesWorkerSpans) {
  const Kernel kernel = compressKernel();
  const ExplorationResult bare = exploreParallel(kernel, smallSweep(), 2);

  obs::Recorder recorder;
  Explorer observed(smallSweep());
  observed.setRecorder(&recorder);
  const ExplorationResult instrumented =
      exploreParallel(observed, kernel, 2);
  EXPECT_TRUE(samePoints(bare.points, instrumented.points));

  const obs::RunReport report = recorder.report();
  ASSERT_NE(report.phase("exploreParallel"), nullptr);
  const obs::PhaseStat* drain = report.phase("worker.drain");
  ASSERT_NE(drain, nullptr);
  EXPECT_EQ(drain->count, report.counter("parallel.workers"));
  EXPECT_EQ(report.counter("parallel.workers"), 2u);
  // Every group is claimed exactly once across all workers (the +workers
  // overshoot claims past the end are not counted).
  EXPECT_EQ(report.counter("parallel.groups_claimed"),
            report.counter("plan.groups"));
  EXPECT_EQ(report.counter("sweep.points"), bare.points.size());
  // Worker utilization is defined and sane.
  ASSERT_GE(report.workers.size(), 2u);  // main thread + workers
  for (const obs::WorkerStat& w : report.workers) {
    EXPECT_GE(w.utilization, 0.0);
    EXPECT_LE(w.utilization, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace memx
