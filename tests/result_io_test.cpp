#include <gtest/gtest.h>

#include "memx/core/explorer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/report/result_io.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

ExplorationResult sampleResult() {
  ExploreOptions o;
  o.ranges.maxCacheBytes = 64;
  o.ranges.maxLineBytes = 8;
  o.ranges.maxAssociativity = 2;
  o.ranges.maxTiling = 2;
  return Explorer(o).explore(matrixAddKernel(8, 1));
}

TEST(ResultIo, CsvRoundTripsEveryField) {
  const ExplorationResult original = sampleResult();
  const ExplorationResult parsed =
      fromCsvString(toCsvString(original));
  EXPECT_EQ(parsed.workload, original.workload);
  ASSERT_EQ(parsed.points.size(), original.points.size());
  for (std::size_t i = 0; i < parsed.points.size(); ++i) {
    EXPECT_EQ(parsed.points[i].key, original.points[i].key);
    EXPECT_EQ(parsed.points[i].accesses, original.points[i].accesses);
    EXPECT_NEAR(parsed.points[i].missRate, original.points[i].missRate,
                1e-9);
    EXPECT_NEAR(parsed.points[i].cycles, original.points[i].cycles,
                original.points[i].cycles * 1e-9 + 1e-9);
    EXPECT_NEAR(parsed.points[i].energyNj, original.points[i].energyNj,
                original.points[i].energyNj * 1e-9 + 1e-9);
  }
}

TEST(ResultIo, CsvHeaderChecked) {
  EXPECT_THROW(fromCsvString("bogus,header\n1,2\n"), ContractViolation);
  EXPECT_THROW(fromCsvString(""), ContractViolation);
}

TEST(ResultIo, CsvRowShapeChecked) {
  std::string text = toCsvString(sampleResult());
  text += "too,few,columns\n";
  EXPECT_THROW(fromCsvString(text), ContractViolation);
}

TEST(ResultIo, CsvBadFieldChecked) {
  const std::string good = toCsvString(sampleResult());
  const std::size_t firstRow = good.find('\n') + 1;
  std::string bad = good.substr(0, firstRow);
  bad += "matadd,notanumber,8,1,1,192,0.1,100,50\n";
  EXPECT_THROW(fromCsvString(bad), ContractViolation);
}

TEST(ResultIo, TruncatedFileRejected) {
  const std::string good = toCsvString(sampleResult());
  // Cut at the last comma: the final line loses a column and must be
  // rejected, not silently absorbed as a shorter sweep.
  const std::string truncated = good.substr(0, good.rfind(','));
  EXPECT_THROW(fromCsvString(truncated), ContractViolation);
  // Header-only is a valid empty result, half a header is not.
  EXPECT_THROW(fromCsvString(good.substr(0, 10)), ContractViolation);
}

TEST(ResultIo, NumericRangeViolationsRejected) {
  const std::string header = toCsvString(ExplorationResult{});
  auto row = [&](const std::string& r) { return header + r + "\n"; };
  // 2^32 does not fit the uint32 cache field: stoul would silently
  // truncate this to 0; the reader must refuse instead.
  EXPECT_THROW(fromCsvString(row("k,4294967296,8,1,1,10,0.1,100,50")),
               ContractViolation);
  // Negative values wrap under stoul; unsigned columns take digits only.
  EXPECT_THROW(fromCsvString(row("k,-64,8,1,1,10,0.1,100,50")),
               ContractViolation);
  // Trailing garbage after a number is corruption, not a number.
  EXPECT_THROW(fromCsvString(row("k,64x,8,1,1,10,0.1,100,50")),
               ContractViolation);
  EXPECT_THROW(fromCsvString(row("k,64,8,1,1,10,0.1junk,100,50")),
               ContractViolation);
  // Out-of-range and non-finite doubles.
  EXPECT_THROW(fromCsvString(row("k,64,8,1,1,10,0.1,1e999,50")),
               ContractViolation);
  EXPECT_THROW(fromCsvString(row("k,64,8,1,1,10,nan,100,50")),
               ContractViolation);
  EXPECT_THROW(fromCsvString(row("k,64,8,1,1,10,inf,100,50")),
               ContractViolation);
  // Empty numeric cell.
  EXPECT_THROW(fromCsvString(row("k,,8,1,1,10,0.1,100,50")),
               ContractViolation);
  // The same values in range parse fine (the guards are not overeager).
  const ExplorationResult ok =
      fromCsvString(row("k,4294967295,8,1,1,10,0.1,100,50"));
  ASSERT_EQ(ok.points.size(), 1u);
  EXPECT_EQ(ok.points[0].key.cacheBytes, 4294967295u);
}

TEST(ResultIo, RangeErrorsNameRowAndColumn) {
  const std::string header = toCsvString(ExplorationResult{});
  try {
    (void)fromCsvString(header + "k,64,8,1,1,10,0.1,100,50\n" +
                        "k,4294967296,8,1,1,10,0.1,100,50\n");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("row 3"), std::string::npos) << what;
    EXPECT_NE(what.find("cache"), std::string::npos) << what;
  }
}

TEST(ResultIo, WorkloadWithCommaRoundTrips) {
  ExplorationResult r;
  r.workload = "mpeg, decode \"fast\"";
  DesignPoint p;
  p.key = ConfigKey{64, 8, 2, 1};
  p.accesses = 100;
  p.missRate = 0.25;
  p.cycles = 400.0;
  p.energyNj = 12.5;
  r.points.push_back(p);
  const std::string csv = toCsvString(r);
  // The free-text field is quoted; the numeric columns are untouched.
  EXPECT_NE(csv.find("\"mpeg, decode \"\"fast\"\"\""), std::string::npos);
  const ExplorationResult parsed = fromCsvString(csv);
  EXPECT_EQ(parsed.workload, r.workload);
  ASSERT_EQ(parsed.points.size(), 1u);
  EXPECT_EQ(parsed.points[0].key, p.key);
  EXPECT_EQ(parsed.points[0].accesses, 100u);
}

TEST(ResultIo, MalformedQuotingRejectedWithLineNumber) {
  const std::string header =
      "workload,cache,line,assoc,tiling,accesses,miss_rate,cycles,"
      "energy_nj\n";
  // Unterminated quote.
  try {
    (void)fromCsvString(header + "\"broken,64,8,1,1,10,0.1,100,50\n");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("row 2"), std::string::npos);
  }
  // Content after a closing quote.
  EXPECT_THROW(
      (void)fromCsvString(header + "\"a\"b,64,8,1,1,10,0.1,100,50\n"),
      ContractViolation);
  // Quote opening mid-field.
  EXPECT_THROW(
      (void)fromCsvString(header + "a\"b\",64,8,1,1,10,0.1,100,50\n"),
      ContractViolation);
}

TEST(ResultIo, EmptyResultRoundTrips) {
  ExplorationResult empty;
  empty.workload = "none";
  const ExplorationResult parsed = fromCsvString(toCsvString(empty));
  EXPECT_TRUE(parsed.points.empty());
}

TEST(ResultIo, JsonShapeIsSane) {
  const std::string json = toJsonString(sampleResult());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"workload\": \"matadd\""), std::string::npos);
  EXPECT_NE(json.find("\"points\": ["), std::string::npos);
  EXPECT_NE(json.find("\"miss_rate\": "), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ResultIo, JsonEscapesQuotes) {
  ExplorationResult r;
  r.workload = "we\"ird";
  const std::string json = toJsonString(r);
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
}

}  // namespace
}  // namespace memx
