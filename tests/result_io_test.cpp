#include <gtest/gtest.h>

#include "memx/core/explorer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/report/result_io.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

ExplorationResult sampleResult() {
  ExploreOptions o;
  o.ranges.maxCacheBytes = 64;
  o.ranges.maxLineBytes = 8;
  o.ranges.maxAssociativity = 2;
  o.ranges.maxTiling = 2;
  return Explorer(o).explore(matrixAddKernel(8, 1));
}

TEST(ResultIo, CsvRoundTripsEveryField) {
  const ExplorationResult original = sampleResult();
  const ExplorationResult parsed =
      fromCsvString(toCsvString(original));
  EXPECT_EQ(parsed.workload, original.workload);
  ASSERT_EQ(parsed.points.size(), original.points.size());
  for (std::size_t i = 0; i < parsed.points.size(); ++i) {
    EXPECT_EQ(parsed.points[i].key, original.points[i].key);
    EXPECT_EQ(parsed.points[i].accesses, original.points[i].accesses);
    EXPECT_NEAR(parsed.points[i].missRate, original.points[i].missRate,
                1e-9);
    EXPECT_NEAR(parsed.points[i].cycles, original.points[i].cycles,
                original.points[i].cycles * 1e-9 + 1e-9);
    EXPECT_NEAR(parsed.points[i].energyNj, original.points[i].energyNj,
                original.points[i].energyNj * 1e-9 + 1e-9);
  }
}

TEST(ResultIo, CsvHeaderChecked) {
  EXPECT_THROW(fromCsvString("bogus,header\n1,2\n"), ContractViolation);
  EXPECT_THROW(fromCsvString(""), ContractViolation);
}

TEST(ResultIo, CsvRowShapeChecked) {
  std::string text = toCsvString(sampleResult());
  text += "too,few,columns\n";
  EXPECT_THROW(fromCsvString(text), ContractViolation);
}

TEST(ResultIo, CsvBadFieldChecked) {
  const std::string good = toCsvString(sampleResult());
  const std::size_t firstRow = good.find('\n') + 1;
  std::string bad = good.substr(0, firstRow);
  bad += "matadd,notanumber,8,1,1,192,0.1,100,50\n";
  EXPECT_THROW(fromCsvString(bad), ContractViolation);
}

TEST(ResultIo, EmptyResultRoundTrips) {
  ExplorationResult empty;
  empty.workload = "none";
  const ExplorationResult parsed = fromCsvString(toCsvString(empty));
  EXPECT_TRUE(parsed.points.empty());
}

TEST(ResultIo, JsonShapeIsSane) {
  const std::string json = toJsonString(sampleResult());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"workload\": \"matadd\""), std::string::npos);
  EXPECT_NE(json.find("\"points\": ["), std::string::npos);
  EXPECT_NE(json.find("\"miss_rate\": "), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ResultIo, JsonEscapesQuotes) {
  ExplorationResult r;
  r.workload = "we\"ird";
  const std::string json = toJsonString(r);
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
}

}  // namespace
}  // namespace memx
