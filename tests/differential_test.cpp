// Differential oracle sweep: seeded random cases replayed through every
// production simulation path and diffed against RefCacheSim. See
// docs/TESTING.md for the harness contract and how to reproduce a
// failing seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <utility>

#include "memx/check/differential.hpp"
#include "memx/check/random_gen.hpp"

namespace memx {
namespace {

/// Case count: 512 by default (32 cases per policy combination), with
/// MEMX_DIFF_CASES overriding for the short sanitizer run in CI.
std::size_t caseCount() {
  if (const char* env = std::getenv("MEMX_DIFF_CASES")) {
    const long n = std::atol(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 512;
}

TEST(Differential, SixteenConsecutiveSeedsCoverEveryPolicyCombo) {
  std::set<std::tuple<ReplacementPolicy, WritePolicy, AllocatePolicy>>
      combos;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const CacheConfig c = randomCacheConfig(seed);
    combos.insert({c.replacement, c.writePolicy, c.allocatePolicy});
  }
  EXPECT_EQ(combos.size(), 16u);
}

TEST(Differential, FourConsecutiveSeedsCoverEveryGridCombo) {
  // The policy-grid path draws FIFO/TreePLRU x write-back/write-through
  // from the seed alone; any four consecutive seeds must cover all
  // four, so the default sweep exercises each combination often.
  std::set<std::pair<ReplacementPolicy, WritePolicy>> combos;
  for (std::uint64_t seed = 8; seed < 12; ++seed) {
    const CacheConfig c = randomGridCacheConfig(seed);
    EXPECT_TRUE(c.replacement == ReplacementPolicy::FIFO ||
                c.replacement == ReplacementPolicy::TreePLRU);
    EXPECT_EQ(c.allocatePolicy, AllocatePolicy::WriteAllocate);
    combos.insert({c.replacement, c.writePolicy});
  }
  EXPECT_EQ(combos.size(), 4u);
}

TEST(Differential, GeneratedConfigsAreValid) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const DiffCase c = makeDiffCase(seed);
    EXPECT_NO_THROW(c.config.validate()) << "seed " << seed;
    EXPECT_NO_THROW(c.l2.validate()) << "seed " << seed;
    EXPECT_NO_THROW(c.grid.validate()) << "seed " << seed;
    EXPECT_GE(c.l2.lineBytes, c.config.lineBytes);
    EXPECT_GE(c.l2.sizeBytes, c.config.sizeBytes);
    EXPECT_GE(c.trace.size(), 200u) << "seed " << seed;
  }
}

TEST(Differential, SweepMatchesOracleOnAllPaths) {
  const std::size_t count = caseCount();
  const DiffSummary summary = runDifferential(1, count);
  EXPECT_EQ(summary.casesRun, count);
  for (const std::string& failure : summary.failures) {
    ADD_FAILURE() << failure;
  }
}

TEST(Differential, ReplayFromSeedIsDeterministic) {
  // The repro contract: a case reconstructs from its seed alone, and a
  // prefix replay gives the same verdict every time.
  const DiffCase a = makeDiffCase(42);
  const DiffCase b = makeDiffCase(42);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_EQ(a.trace[i], b.trace[i]) << "ref " << i;
  }
  EXPECT_EQ(a.config, b.config);
  EXPECT_TRUE(replayDiffCase(42, 100).ok);
  EXPECT_TRUE(replayDiffCase(42, a.trace.size()).ok);
}

TEST(Differential, ReproLineNamesSeedLengthAndPolicies) {
  const DiffCase c = makeDiffCase(17);
  const std::string line = diffCaseRepro(c, 123);
  EXPECT_NE(line.find("seed=17"), std::string::npos) << line;
  EXPECT_NE(line.find("len=123"), std::string::npos) << line;
  EXPECT_NE(line.find("cfg=" + c.config.label()), std::string::npos);
  EXPECT_NE(line.find(toString(c.config.replacement)), std::string::npos);
  EXPECT_NE(line.find("grid=" + c.grid.label()), std::string::npos);
  EXPECT_NE(line.find(toString(c.grid.replacement)), std::string::npos);
  EXPECT_NE(line.find("replayDiffCase(17, 123)"), std::string::npos);
  // Single line: failures must grep as one repro entry.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace memx
