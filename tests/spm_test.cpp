#include <gtest/gtest.h>

#include "memx/kernels/benchmarks.hpp"
#include "memx/kernels/mpeg_kernels.hpp"
#include "memx/spm/allocation.hpp"
#include "memx/spm/scratchpad.hpp"
#include "memx/spm/spm_explorer.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(Scratchpad, ConfigValidation) {
  ScratchpadConfig c;
  c.sizeBytes = 48;
  EXPECT_THROW(c.validate(), ContractViolation);
  c.sizeBytes = 2;
  EXPECT_THROW(c.validate(), ContractViolation);
  c.sizeBytes = 256;
  EXPECT_NO_THROW(c.validate());
}

TEST(Scratchpad, EnergyScalesWithCapacityAndBeatsCacheHit) {
  ScratchpadCostModel cost;
  ScratchpadConfig small{64};
  ScratchpadConfig big{256};
  EXPECT_LT(cost.accessEnergyNj(small), cost.accessEnergyNj(big));
  // Equal-capacity cache hit energy (beta * 8T / 1000) is higher by the
  // efficiency factor.
  const double cacheCell = 2.0 * 8.0 * 64 * 1e-3;
  EXPECT_NEAR(cost.accessEnergyNj(small), 0.6 * cacheCell, 1e-12);
}

TEST(Scratchpad, CostModelValidation) {
  ScratchpadCostModel cost;
  cost.efficiency = 0.0;
  EXPECT_THROW(cost.validate(), ContractViolation);
  cost = ScratchpadCostModel{};
  cost.efficiency = 1.5;
  EXPECT_THROW(cost.validate(), ContractViolation);
}

TEST(Allocation, ProfileCountsPerArray) {
  // Dequant: coef read, qtab read, out write — one access each per
  // iteration over 31x31.
  const Kernel k = dequantKernel();
  const auto usages = profileArrayUsage(k);
  ASSERT_EQ(usages.size(), 3u);
  for (const ArrayUsage& u : usages) {
    EXPECT_EQ(u.accesses, 961u);
    EXPECT_EQ(u.sizeBytes, 1024u);
  }
}

TEST(Allocation, ProfileWeightsMultiplyAccessedArrays) {
  // SOR touches its single array six times per iteration.
  const auto usages = profileArrayUsage(sorKernel());
  ASSERT_EQ(usages.size(), 1u);
  EXPECT_EQ(usages[0].accesses, 6u * 961u);
}

TEST(Allocation, GreedyPrefersDensestArray) {
  std::vector<ArrayUsage> usages = {
      {0, 1024, 1000},  // density ~1
      {1, 64, 640},     // density 10  <- best per byte
      {2, 64, 320},     // density 5
  };
  const SpmAllocation a = allocateGreedy(usages, 128);
  EXPECT_EQ(a.arrayIndices, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(a.usedBytes, 128u);
  EXPECT_EQ(a.capturedAccesses, 960u);
}

TEST(Allocation, OptimalBeatsGreedyOnPathologicalCase) {
  // Greedy takes the dense small item and wastes the rest; optimal
  // takes the two larger ones.
  std::vector<ArrayUsage> usages = {
      {0, 60, 600},   // density 10, but blocks both others
      {1, 50, 450},   // density 9
      {2, 50, 450},   // density 9
  };
  const SpmAllocation greedy = allocateGreedy(usages, 100);
  const SpmAllocation optimal = allocateOptimal(usages, 100);
  EXPECT_EQ(greedy.capturedAccesses, 600u);
  EXPECT_EQ(optimal.capturedAccesses, 900u);
  EXPECT_EQ(optimal.arrayIndices, (std::vector<std::size_t>{1, 2}));
}

TEST(Allocation, OptimalNeverWorseThanGreedy) {
  const auto usages = profileArrayUsage(mpegDequantKernel());
  for (const std::uint64_t cap : {64u, 128u, 1024u, 4096u}) {
    EXPECT_GE(allocateOptimal(usages, cap).capturedAccesses,
              allocateGreedy(usages, cap).capturedAccesses)
        << "cap=" << cap;
  }
}

TEST(Allocation, RespectsCapacity) {
  const auto usages = profileArrayUsage(dequantKernel());
  for (const std::uint64_t cap : {0u, 512u, 1024u, 2048u, 4096u}) {
    EXPECT_LE(allocateOptimal(usages, cap).usedBytes, cap);
    EXPECT_LE(allocateGreedy(usages, cap).usedBytes, cap);
  }
}

TEST(Allocation, DpCapacityGuard) {
  EXPECT_THROW(allocateOptimal({}, 1u << 20), ContractViolation);
}

TEST(SpmExplorer, CapturedAccessesLeaveTheCache) {
  // The MPEG dequant kernel reuses its 128-byte quantizer table heavily:
  // a 128-byte SPM captures those accesses.
  const Kernel k = mpegDequantKernel();
  ScratchpadConfig spm{128};
  CacheConfig cache;
  cache.sizeBytes = 64;
  cache.lineBytes = 8;
  const SplitResult r = evaluateSplit(k, spm, cache);
  EXPECT_EQ(r.spmArrays, (std::vector<std::string>{"qtab"}));
  EXPECT_EQ(r.spmAccesses, 24u * 64u);  // one qtab read per iteration
  EXPECT_EQ(r.totalAccesses, 3u * 24u * 64u);
}

TEST(SpmExplorer, AllArraysInSpmMeansNoCacheTraffic) {
  const Kernel k = matrixAddKernel(4, 1);  // 3 x 16-byte arrays
  ScratchpadConfig spm{64};
  CacheConfig cache;
  cache.sizeBytes = 16;
  cache.lineBytes = 4;
  const SplitResult r = evaluateSplit(k, spm, cache);
  EXPECT_EQ(r.spmAccesses, r.totalAccesses);
  EXPECT_DOUBLE_EQ(r.cacheMissRate, 0.0);
  EXPECT_GT(r.energyNj, 0.0);
}

TEST(SpmExplorer, BudgetSweepContainsCacheOnlyBaseline) {
  const auto results = exploreBudgetSplits(dequantKernel(), 256, 8);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results.front().spmBytes, 0u);
  EXPECT_EQ(results.front().cache.sizeBytes, 256u);
  for (const SplitResult& r : results) {
    EXPECT_LE(r.spmBytes + r.cache.sizeBytes, 256u + 128u);
  }
}

TEST(SpmExplorer, LabelFormat) {
  SplitResult r;
  r.spmBytes = 128;
  r.cache.sizeBytes = 64;
  r.cache.lineBytes = 8;
  EXPECT_EQ(r.label(), "SPM128+C64L8");
}

TEST(SpmExplorer, RejectsBadBudget) {
  EXPECT_THROW(exploreBudgetSplits(dequantKernel(), 100, 8),
               ContractViolation);
  EXPECT_THROW(exploreBudgetSplits(dequantKernel(), 16, 8),
               ContractViolation);
}

}  // namespace
}  // namespace memx
