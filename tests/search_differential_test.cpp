// Differential oracle sweep for the Pareto search engine: seeded small
// joint spaces (<= 512 genomes), exact search vs brute-force front,
// bit-identical objectives. Failures print a one-line
// `MEMX_SEARCH_DIFF repro:` that reconstructs the minimized case from
// the seed and shrink-step list alone.
//
// MEMX_SEARCH_DIFF_CASES overrides the case count (the nightly-depth
// CI job runs 512; the default keeps `ctest` whole-seconds fast).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "memx/search/search_diff.hpp"

namespace memx::search {
namespace {

std::size_t caseCount() {
  if (const char* env = std::getenv("MEMX_SEARCH_DIFF_CASES")) {
    const unsigned long n = std::stoul(env);
    if (n > 0) return n;
  }
  return 64;
}

TEST(SearchDifferential, ExactSearchMatchesBruteForceFront) {
  const DiffSummary summary = runSearchDifferential(1, caseCount());
  EXPECT_EQ(summary.casesRun, caseCount());
  for (const std::string& failure : summary.failures) {
    ADD_FAILURE() << failure;
  }
}

TEST(SearchDifferential, ReplayReconstructsACase) {
  // The repro entry point must agree with the sweep on a passing case
  // (a failing one would have surfaced above).
  EXPECT_TRUE(replaySearchDiffCase(1, {}).ok);
  // Replaying with shrink steps applies them without blowing up, even
  // when some steps are no-ops on this case.
  const DiffResult shrunk = replaySearchDiffCase(1, {0, 1, 2, 3, 4});
  EXPECT_TRUE(shrunk.ok) << shrunk.message;
}

}  // namespace
}  // namespace memx::search
