// End-to-end checks of the paper's headline claims (DESIGN.md Section 4).
#include <gtest/gtest.h>

#include "memx/core/explorer.hpp"
#include "memx/core/selection.hpp"
#include "memx/energy/sram_catalog.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/xform/tiling.hpp"

namespace memx {
namespace {

ExploreOptions paperSweep() {
  ExploreOptions o;
  o.ranges.minCacheBytes = 16;
  o.ranges.maxCacheBytes = 512;
  o.ranges.minLineBytes = 4;
  o.ranges.maxLineBytes = 64;
  o.ranges.sweepAssociativity = false;
  o.ranges.sweepTiling = false;
  return o;
}

CacheConfig dmc(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  return c;
}

/// Claim 1 (Figure 1): the energy trend with cache size reverses between
/// cheap and expensive off-chip memory on Compress.
TEST(PaperClaims, Fig1EnergyTrendReversesWithEm) {
  const Kernel k = compressKernel();
  auto energyAt = [&](double em, std::uint32_t size) {
    ExploreOptions o = paperSweep();
    o.energy.emNj = em;
    return Explorer(o).evaluate(k, dmc(size, 4)).energyNj;
  };
  // Expensive 16 Mbit SRAM: bigger cache pays off.
  EXPECT_GT(energyAt(kEmHigh16MbitNj, 16),
            energyAt(kEmHigh16MbitNj, 512));
  // Cheap 2 Mbit SRAM: bigger cache wastes energy.
  EXPECT_LT(energyAt(kEmLow2MbitNj, 16), energyAt(kEmLow2MbitNj, 512));
}

/// Claim (Figure 2 family): miss rate and cycles fall along the paper's
/// C16L4 -> C128L32 diagonal for every benchmark.
TEST(PaperClaims, Fig2DiagonalImprovesMissRateAndCycles) {
  const Explorer ex(paperSweep());
  for (const Kernel& k : paperBenchmarks()) {
    const DesignPoint small = ex.evaluate(k, dmc(16, 4));
    const DesignPoint large = ex.evaluate(k, dmc(128, 32));
    EXPECT_LT(large.missRate, small.missRate) << k.name;
    EXPECT_LT(large.cycles, small.cycles) << k.name;
  }
}

/// Claim 2 (Figure 5 / Figure 9 parentheses): the off-chip assignment
/// removes an order of magnitude of Compress misses.
TEST(PaperClaims, Fig5OffchipAssignmentSlashesMissRate) {
  ExploreOptions opt = paperSweep();
  ExploreOptions unopt = paperSweep();
  unopt.optimizeLayout = false;
  // The paper's unoptimized baseline corresponds to word-granular rows
  // (128 bytes) aliasing at all three cache sizes.
  const Kernel k = compressKernel(32, 4);
  for (const auto& [size, line] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {32, 4}, {64, 8}, {128, 16}}) {
    const double optimized =
        Explorer(opt).evaluate(k, dmc(size, line)).missRate;
    const double unoptimized =
        Explorer(unopt).evaluate(k, dmc(size, line)).missRate;
    EXPECT_LT(optimized, unoptimized)
        << "C" << size << "L" << line;
  }
}

/// Claim 3 (Figures 6-7): tiling the transpose-like kernels is U-shaped
/// in energy with the sweet spot at or below the number of cache lines.
TEST(PaperClaims, Fig6TilingHelpsTransposeThenHurts) {
  ExploreOptions o = paperSweep();
  const Explorer ex(o);
  const Kernel k = transposeKernel(32);
  const CacheConfig cache = dmc(128, 8);  // 16 lines
  const DesignPoint untiled = ex.evaluate(k, cache, 1);
  double best = untiled.missRate;
  for (const std::uint32_t b : {2u, 4u, 8u}) {
    best = std::min(best, ex.evaluate(k, cache, b).missRate);
  }
  EXPECT_LT(best, untiled.missRate);
}

/// Claim (Section 4.3): associativity lowers the miss rate of small
/// caches on conflict-prone workloads.
TEST(PaperClaims, Sec43AssociativityLowersMissRateSmallCache) {
  ExploreOptions o = paperSweep();
  o.optimizeLayout = false;  // leave conflicts for associativity to fix
  const Explorer ex(o);
  const Kernel k = dequantKernel();
  CacheConfig c1 = dmc(64, 8);
  CacheConfig c4 = dmc(64, 8);
  c4.associativity = 4;
  EXPECT_LT(ex.evaluate(k, c4).missRate, ex.evaluate(k, c1).missRate);
}

/// Claim (Figure 4): bounded selection picks different corners: the
/// global min-energy point is small, the min-cycles point is large.
TEST(PaperClaims, Fig4BoundedSelectionsDiffer) {
  const Explorer ex(paperSweep());
  const ExplorationResult r = ex.explore(compressKernel());
  const auto minE = minEnergyPoint(r.points);
  const auto minC = minCyclePoint(r.points);
  ASSERT_TRUE(minE && minC);
  EXPECT_LT(minE->key.cacheBytes, minC->key.cacheBytes);
  // A cycle bound between the extremes forces a compromise point.
  const double bound = (minE->cycles + minC->cycles) / 2;
  const auto bounded = minEnergyPoint(r.points, bound);
  ASSERT_TRUE(bounded.has_value());
  EXPECT_LE(bounded->cycles, bound);
  EXPECT_GE(bounded->energyNj, minE->energyNj);
}

/// Tiling must never change how much work is done, only its order.
TEST(PaperClaims, TilingPreservesAccessCount) {
  const Explorer ex(paperSweep());
  const Kernel k = sorKernel();
  const DesignPoint a = ex.evaluate(k, dmc(64, 8), 1);
  const DesignPoint b = ex.evaluate(k, dmc(64, 8), 4);
  EXPECT_EQ(a.accesses, b.accesses);
}

}  // namespace
}  // namespace memx
