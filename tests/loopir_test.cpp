#include <gtest/gtest.h>

#include "memx/loopir/affine.hpp"
#include "memx/loopir/kernel.hpp"
#include "memx/loopir/loop_nest.hpp"
#include "memx/loopir/memory_layout.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(AffineExpr, ConstantEval) {
  const AffineExpr e(7);
  EXPECT_EQ(e.eval({}), 7);
  EXPECT_TRUE(e.isConstant());
}

TEST(AffineExpr, VarEval) {
  const AffineExpr e = AffineExpr::var(1, 3);
  const std::int64_t iv[] = {10, 20};
  EXPECT_EQ(e.eval(iv), 60);
  EXPECT_FALSE(e.isConstant());
}

TEST(AffineExpr, PlusCombines) {
  const AffineExpr e =
      AffineExpr::var(0).plus(AffineExpr::var(2, 2)).plusConstant(-1);
  const std::int64_t iv[] = {5, 9, 3};
  EXPECT_EQ(e.eval(iv), 5 + 6 - 1);
}

TEST(AffineExpr, CoeffBeyondStorageIsZero) {
  const AffineExpr e = AffineExpr::var(0);
  EXPECT_EQ(e.coeff(0), 1);
  EXPECT_EQ(e.coeff(5), 0);
}

TEST(AffineExpr, EvalThrowsWhenIterationVectorTooShort) {
  const AffineExpr e = AffineExpr::var(2);
  const std::int64_t iv[] = {1, 2};
  EXPECT_THROW((void)e.eval(iv), ContractViolation);
}

TEST(AffineExpr, ToStringReadable) {
  EXPECT_EQ(AffineExpr(5).toString(), "5");
  EXPECT_EQ(AffineExpr::var(0).plusConstant(-1).toString(), "i0 - 1");
  EXPECT_EQ(AffineExpr(0, {2, 0, 1}).toString(), "2*i0 + i2");
}

TEST(LoopNest, RectangularIteratesLexicographically) {
  const LoopNest nest = LoopNest::rectangular({{0, 1}, {0, 2}});
  std::vector<std::vector<std::int64_t>> seen;
  nest.forEachIteration([&](std::span<const std::int64_t> iv) {
    seen.emplace_back(iv.begin(), iv.end());
  });
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen.front(), (std::vector<std::int64_t>{0, 0}));
  EXPECT_EQ(seen[1], (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(seen.back(), (std::vector<std::int64_t>{1, 2}));
}

TEST(LoopNest, IterationCountMatches) {
  EXPECT_EQ(LoopNest::rectangular({{1, 31}, {1, 31}}).iterationCount(),
            961u);
  EXPECT_EQ(LoopNest::rectangular({{0, 0}}).iterationCount(), 1u);
}

TEST(LoopNest, EmptyRangeYieldsNoIterations) {
  EXPECT_EQ(LoopNest::rectangular({{5, 4}}).iterationCount(), 0u);
}

TEST(LoopNest, SteppedLoop) {
  Loop l;
  l.name = "i";
  l.lower = LoopBound(0);
  l.upper = LoopBound(9);
  l.step = 3;
  const LoopNest nest({l});
  std::vector<std::int64_t> seen;
  nest.forEachIteration(
      [&](std::span<const std::int64_t> iv) { seen.push_back(iv[0]); });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 3, 6, 9}));
}

TEST(LoopNest, MinClampedUpperBound) {
  // for t = 0, 9, 4 ; for i = t, min(t+3, 9)
  Loop outer;
  outer.name = "t";
  outer.lower = LoopBound(0);
  outer.upper = LoopBound(9);
  outer.step = 4;
  Loop inner;
  inner.name = "i";
  inner.lower = LoopBound(AffineExpr::var(0));
  inner.upper = LoopBound{AffineExpr::var(0).plusConstant(3), AffineExpr(9)};
  const LoopNest nest({outer, inner});
  EXPECT_EQ(nest.iterationCount(), 10u);  // 4 + 4 + 2
}

TEST(LoopNest, RejectsNonPositiveStep) {
  Loop l;
  l.lower = LoopBound(0);
  l.upper = LoopBound(3);
  l.step = 0;
  EXPECT_THROW(LoopNest({l}), ContractViolation);
  l.step = -1;
  EXPECT_THROW(LoopNest({l}), ContractViolation);
}

TEST(ArrayDecl, SizesComputed) {
  const ArrayDecl d{"a", {6, 6}, 1};
  EXPECT_EQ(d.elemCount(), 36u);
  EXPECT_EQ(d.sizeBytes(), 36u);
  EXPECT_EQ(d.rank(), 2u);
}

TEST(Kernel, ValidateCatchesBadAccess) {
  Kernel k;
  k.name = "bad";
  k.arrays = {ArrayDecl{"a", {4, 4}, 4}};
  k.nest = LoopNest::rectangular({{0, 3}});
  k.body = {makeAccess(1, {AffineExpr(0), AffineExpr(0)})};
  EXPECT_THROW(k.validate(), ContractViolation);  // array index 1
  k.body = {makeAccess(0, {AffineExpr(0)})};
  EXPECT_THROW(k.validate(), ContractViolation);  // rank mismatch
}

TEST(Kernel, ArrayIndexOf) {
  Kernel k;
  k.arrays = {ArrayDecl{"a", {4}, 4}, ArrayDecl{"b", {4}, 4}};
  EXPECT_EQ(k.arrayIndexOf("b"), 1u);
  EXPECT_THROW((void)k.arrayIndexOf("z"), ContractViolation);
}

TEST(MemoryLayout, TightRowMajorAddressing) {
  Kernel k;
  k.name = "t";
  k.arrays = {ArrayDecl{"a", {4, 8}, 4}, ArrayDecl{"b", {2, 2}, 4}};
  k.nest = LoopNest::rectangular({{0, 0}});
  k.body = {makeAccess(0, {AffineExpr(0), AffineExpr(0)})};
  const MemoryLayout layout = MemoryLayout::tight(k, 100);
  const std::int64_t s00[] = {0, 0};
  const std::int64_t s13[] = {1, 3};
  EXPECT_EQ(layout.address(0, s00), 100u);
  EXPECT_EQ(layout.address(0, s13), 100u + (8 + 3) * 4u);
  // b starts right after a (4*8*4 bytes).
  const std::int64_t b00[] = {0, 0};
  EXPECT_EQ(layout.address(1, b00), 100u + 128u);
  EXPECT_EQ(layout.endAddr(k), 100u + 128u + 16u);
}

TEST(MemoryLayout, RowPitchPadding) {
  const ArrayDecl d{"a", {4, 8}, 4};  // tight row = 32 bytes
  const auto pitches = rowMajorPitches(d, 40);
  EXPECT_EQ(pitches[0], 40u);
  EXPECT_EQ(pitches[1], 4u);
  EXPECT_THROW(rowMajorPitches(d, 16), ContractViolation);  // too small
}

TEST(MemoryLayout, SpanIncludesPadding) {
  const ArrayDecl d{"a", {4, 8}, 4};
  ArrayPlacement p;
  p.baseAddr = 0;
  p.pitches = rowMajorPitches(d, 40);
  EXPECT_EQ(p.spanBytes(d), 3u * 40u + 7u * 4u + 4u);
}

TEST(TraceGen, EmitsBodyInProgramOrder) {
  Kernel k;
  k.name = "t";
  k.arrays = {ArrayDecl{"a", {8}, 4}, ArrayDecl{"b", {8}, 4}};
  k.nest = LoopNest::rectangular({{0, 2}});
  k.body = {makeAccess(0, {AffineExpr::var(0)}),
            makeAccess(1, {AffineExpr::var(0)}, AccessType::Write)};
  const Trace t = generateTrace(k);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[0].addr, 0u);           // a[0]
  EXPECT_EQ(t[1].addr, 32u);          // b[0]
  EXPECT_EQ(t[1].type, AccessType::Write);
  EXPECT_EQ(t[4].addr, 8u);           // a[2]
  EXPECT_EQ(t[5].addr, 40u);          // b[2]
}

TEST(TraceGen, OutOfBoundsSubscriptThrows) {
  Kernel k;
  k.name = "t";
  k.arrays = {ArrayDecl{"a", {4}, 4}};
  k.nest = LoopNest::rectangular({{0, 4}});  // runs to 4, extent is 4
  k.body = {makeAccess(0, {AffineExpr::var(0)})};
  EXPECT_THROW(generateTrace(k), ContractViolation);
}

TEST(TraceGen, IndirectAccessDeterministicAndInBounds) {
  Kernel k;
  k.name = "t";
  k.arrays = {ArrayDecl{"tab", {16}, 4}};
  k.nest = LoopNest::rectangular({{0, 99}});
  ArrayAccess acc;
  acc.arrayIndex = 0;
  acc.subscripts = {AffineExpr(0)};
  acc.indirectSeed = 7;
  k.body = {acc};
  const Trace a = generateTrace(k);
  const Trace b = generateTrace(k);
  EXPECT_EQ(a.refs(), b.refs());
  for (const MemRef& r : a) {
    EXPECT_LT(r.addr, 16u * 4u);
    EXPECT_EQ(r.addr % 4, 0u);
  }
  // Not all the same element (it actually scatters).
  bool scattered = false;
  for (std::size_t i = 1; i < a.size(); ++i) {
    if (a[i].addr != a[0].addr) scattered = true;
  }
  EXPECT_TRUE(scattered);
}

TEST(TraceGen, ReferenceCountMatchesTraceSize) {
  Kernel k;
  k.name = "t";
  k.arrays = {ArrayDecl{"a", {8, 8}, 4}};
  k.nest = LoopNest::rectangular({{0, 7}, {0, 7}});
  k.body = {makeAccess(0, {AffineExpr::var(0), AffineExpr::var(1)}),
            makeAccess(0, {AffineExpr::var(0), AffineExpr::var(1)},
                       AccessType::Write)};
  EXPECT_EQ(k.referenceCount(), 128u);
  EXPECT_EQ(generateTrace(k).size(), 128u);
}

}  // namespace
}  // namespace memx
