#include <gtest/gtest.h>

#include "memx/core/hierarchy_explorer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig cfg(std::uint32_t size, std::uint32_t line,
                std::uint32_t ways = 1) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  c.associativity = ways;
  return c;
}

TEST(HierarchyExplorer, RangesValidate) {
  HierarchyRanges r;
  r.minL1Bytes = 48;
  EXPECT_THROW(r.validate(), ContractViolation);
  r = HierarchyRanges{};
  r.l1LineBytes = 32;
  r.l2LineBytes = 16;
  EXPECT_THROW(r.validate(), ContractViolation);
}

TEST(HierarchyExplorer, PointCarriesBothConfigs) {
  const Trace t = generateTrace(sorKernel());
  const HierarchyPoint p =
      evaluateHierarchyPoint(t, cfg(64, 8), cfg(512, 16, 2));
  EXPECT_EQ(p.label(), "L1:C64L8+L2:C512L16S2");
  EXPECT_GT(p.l1MissRate, 0.0);
  EXPECT_LE(p.globalMissRate, p.l1MissRate);
  EXPECT_GT(p.cycles, 0.0);
  EXPECT_GT(p.energyNj, 0.0);
}

TEST(HierarchyExplorer, SweepSkipsInvertedPairs) {
  HierarchyRanges r;
  r.minL1Bytes = 64;
  r.maxL1Bytes = 512;
  r.minL2Bytes = 256;
  r.maxL2Bytes = 512;
  const Trace t = generateTrace(matrixAddKernel(8, 1));
  const auto points = exploreHierarchy(t, r);
  for (const HierarchyPoint& p : points) {
    EXPECT_GE(p.l2.sizeBytes, p.l1.sizeBytes);
  }
  // L1 in {64,128,256,512}, L2 in {256,512}: pairs with L2 >= L1.
  EXPECT_EQ(points.size(), 3u + 4u);
}

TEST(HierarchyExplorer, BiggerL2NeverRaisesGlobalMissRate) {
  const Trace t = generateTrace(sorKernel());
  const CacheConfig l1 = cfg(64, 8);
  double prev = 1.1;
  for (const std::uint32_t l2size : {256u, 512u, 1024u, 2048u}) {
    const HierarchyPoint p =
        evaluateHierarchyPoint(t, l1, cfg(l2size, 16, 2));
    EXPECT_LE(p.globalMissRate, prev + 1e-12);
    prev = p.globalMissRate;
  }
}

TEST(HierarchyExplorer, EnergyGrowsWithIdleCapacity) {
  // A tiny workload that fits L1: growing the L2 only adds cell energy.
  const Trace t = generateTrace(matrixAddKernel(4, 1));
  const CacheConfig l1 = cfg(256, 8);
  const double small =
      evaluateHierarchyPoint(t, l1, cfg(512, 16)).energyNj;
  const double big =
      evaluateHierarchyPoint(t, l1, cfg(4096, 16)).energyNj;
  EXPECT_LT(small, big);
}

TEST(HierarchyExplorer, L1MissRateIndependentOfL2) {
  const Trace t = generateTrace(dequantKernel());
  const HierarchyPoint a =
      evaluateHierarchyPoint(t, cfg(64, 8), cfg(256, 16));
  const HierarchyPoint b =
      evaluateHierarchyPoint(t, cfg(64, 8), cfg(2048, 16));
  EXPECT_DOUBLE_EQ(a.l1MissRate, b.l1MissRate);
}

}  // namespace
}  // namespace memx
