#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "memx/trace/din_io.hpp"
#include "memx/trace/generators.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(DinIo, WritesLabelsAndHexAddresses) {
  Trace t;
  t.push(readRef(0x1a2b));
  t.push(writeRef(0xff));
  EXPECT_EQ(toDinString(t), "0 1a2b\n1 ff\n");
}

TEST(DinIo, RoundTripsAddressesAndTypes) {
  const Trace original = randomTrace(0, 1 << 20, 500, 11);
  const Trace parsed = fromDinString(toDinString(original), 4);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].addr, original[i].addr);
    EXPECT_EQ(parsed[i].type, original[i].type);
  }
}

TEST(DinIo, PreservesIfetchLabel) {
  const Trace t = fromDinString("2 400\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].type, AccessType::Instr);
  EXPECT_EQ(t[0].addr, 0x400u);
}

TEST(DinIo, IfetchRoundTrips) {
  Trace original;
  original.push(instrRef(0x1000));
  original.push(readRef(0x20));
  original.push(instrRef(0x1004));
  original.push(writeRef(0x24));
  EXPECT_EQ(toDinString(original), "2 1000\n0 20\n2 1004\n1 24\n");
  const Trace parsed = fromDinString(toDinString(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].addr, original[i].addr);
    EXPECT_EQ(parsed[i].type, original[i].type);
  }
}

TEST(DinIo, IfetchIsReadLikeInTraceCounts) {
  const Trace t = fromDinString("2 0\n0 4\n1 8\n");
  EXPECT_EQ(t.readCount(), 2u);
  EXPECT_EQ(t.writeCount(), 1u);
}

TEST(DinIo, SkipsBlankAndCommentLines) {
  const Trace t = fromDinString("# header\n\n0 10\n   \n1 20 # inline\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0x10u);
  EXPECT_EQ(t[1].addr, 0x20u);
  EXPECT_EQ(t[1].type, AccessType::Write);
}

TEST(DinIo, StampsRequestedSize) {
  const Trace t = fromDinString("0 0\n", 8);
  EXPECT_EQ(t[0].size, 8u);
}

TEST(DinIo, RejectsMalformedInput) {
  EXPECT_THROW(fromDinString("9 10\n"), ContractViolation);   // bad label
  EXPECT_THROW(fromDinString("0\n"), ContractViolation);      // no addr
  EXPECT_THROW(fromDinString("0 zzz\n"), ContractViolation);  // bad hex
  EXPECT_THROW(fromDinString("0 10", 0), ContractViolation);  // bad size
}

TEST(DinIo, RejectsSignedAddresses) {
  // A stoull-style parse accepts "-1" and wraps it to 2^64 - 1 — a
  // silently corrupt trace. Signs are not hex digits; reject them.
  EXPECT_THROW(fromDinString("0 -1\n"), ContractViolation);
  EXPECT_THROW(fromDinString("1 -ff\n"), ContractViolation);
  EXPECT_THROW(fromDinString("0 +10\n"), ContractViolation);
}

TEST(DinIo, RejectsTrailingGarbage) {
  // Extra tokens used to be silently dropped, turning a column
  // misalignment into a wrong-but-plausible trace.
  EXPECT_THROW(fromDinString("0 10 20\n"), ContractViolation);
  EXPECT_THROW(fromDinString("1 ff extra\n"), ContractViolation);
  // ... but a comment after the address is fine.
  EXPECT_EQ(fromDinString("0 10 # fine\n").size(), 1u);
}

TEST(DinIo, RejectsNonNumericLabelLinesInsteadOfSkipping) {
  // Garbage-label lines were silently skipped (`>> int` fails, line
  // dropped), hiding trace corruption. They now throw.
  EXPECT_THROW(fromDinString("r 10\n"), ContractViolation);
  EXPECT_THROW(fromDinString("load 10\n"), ContractViolation);
  EXPECT_THROW(fromDinString("-1 10\n"), ContractViolation);
  EXPECT_THROW(fromDinString("+1 10\n"), ContractViolation);
}

TEST(DinIo, RejectsAddressOverflow) {
  // 17 significant hex digits cannot fit 64 bits.
  EXPECT_THROW(fromDinString("0 10000000000000000\n"), ContractViolation);
  // Leading zeros are not significant.
  const Trace t = fromDinString("0 000000000000000000ff\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].addr, 0xffu);
  // The full 64-bit range round-trips.
  const Trace big = fromDinString("0 ffffffffffffffff\n");
  EXPECT_EQ(big[0].addr, 0xffffffffffffffffull);
}

TEST(DinIo, AcceptsHexPrefix) {
  const Trace t = fromDinString("0 0x1f\n1 0XFF\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0x1fu);
  EXPECT_EQ(t[1].addr, 0xffu);
  EXPECT_THROW(fromDinString("0 0x\n"), ContractViolation);  // prefix only
}

TEST(DinIo, ErrorsNameTheLine) {
  try {
    (void)fromDinString("0 10\n1 20\n0 bad!\n");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(DinIo, WhitespaceVariantsAccepted) {
  const Trace t = fromDinString("0\t1f\n  1    2A\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0x1fu);
  EXPECT_EQ(t[1].addr, 0x2au);
}

TEST(DinIo, EmptyInputYieldsEmptyTrace) {
  EXPECT_TRUE(fromDinString("").empty());
}

TEST(DinIo, PropertyRandomTracesRoundTripBitIdentically) {
  // din carries (label, address); refSize is stamped on parse. Any
  // trace of word accesses must survive writeDin -> readDin exactly,
  // across the full 64-bit address range.
  std::mt19937_64 rng(123);
  for (int iter = 0; iter < 25; ++iter) {
    Trace original;
    const std::size_t n = 1 + rng() % 300;
    for (std::size_t i = 0; i < n; ++i) {
      // Vary magnitude so small, medium and near-2^64 addresses all
      // appear.
      const std::uint64_t addr = rng() >> (rng() % 64);
      const std::uint32_t pick = rng() % 3;
      const AccessType type = pick == 0   ? AccessType::Read
                              : pick == 1 ? AccessType::Write
                                          : AccessType::Instr;
      original.push(MemRef{addr, 4, type});
    }
    const Trace parsed = fromDinString(toDinString(original), 4);
    ASSERT_EQ(parsed.size(), original.size()) << "iter " << iter;
    for (std::size_t i = 0; i < parsed.size(); ++i) {
      ASSERT_EQ(parsed[i].addr, original[i].addr) << "iter " << iter;
      ASSERT_EQ(parsed[i].type, original[i].type) << "iter " << iter;
      ASSERT_EQ(parsed[i].size, 4u) << "iter " << iter;
    }
  }
}

TEST(DinIo, StreamInterface) {
  std::istringstream is("0 1\n1 2\n");
  const Trace t = readDin(is);
  EXPECT_EQ(t.size(), 2u);
  std::ostringstream os;
  writeDin(os, t);
  EXPECT_EQ(os.str(), "0 1\n1 2\n");
}

}  // namespace
}  // namespace memx
