#include <gtest/gtest.h>

#include <sstream>

#include "memx/trace/din_io.hpp"
#include "memx/trace/generators.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(DinIo, WritesLabelsAndHexAddresses) {
  Trace t;
  t.push(readRef(0x1a2b));
  t.push(writeRef(0xff));
  EXPECT_EQ(toDinString(t), "0 1a2b\n1 ff\n");
}

TEST(DinIo, RoundTripsAddressesAndTypes) {
  const Trace original = randomTrace(0, 1 << 20, 500, 11);
  const Trace parsed = fromDinString(toDinString(original), 4);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].addr, original[i].addr);
    EXPECT_EQ(parsed[i].type, original[i].type);
  }
}

TEST(DinIo, PreservesIfetchLabel) {
  const Trace t = fromDinString("2 400\n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].type, AccessType::Instr);
  EXPECT_EQ(t[0].addr, 0x400u);
}

TEST(DinIo, IfetchRoundTrips) {
  Trace original;
  original.push(instrRef(0x1000));
  original.push(readRef(0x20));
  original.push(instrRef(0x1004));
  original.push(writeRef(0x24));
  EXPECT_EQ(toDinString(original), "2 1000\n0 20\n2 1004\n1 24\n");
  const Trace parsed = fromDinString(toDinString(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].addr, original[i].addr);
    EXPECT_EQ(parsed[i].type, original[i].type);
  }
}

TEST(DinIo, IfetchIsReadLikeInTraceCounts) {
  const Trace t = fromDinString("2 0\n0 4\n1 8\n");
  EXPECT_EQ(t.readCount(), 2u);
  EXPECT_EQ(t.writeCount(), 1u);
}

TEST(DinIo, SkipsBlankAndCommentLines) {
  const Trace t = fromDinString("# header\n\n0 10\n   \n1 20 # inline\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0x10u);
  EXPECT_EQ(t[1].addr, 0x20u);
  EXPECT_EQ(t[1].type, AccessType::Write);
}

TEST(DinIo, StampsRequestedSize) {
  const Trace t = fromDinString("0 0\n", 8);
  EXPECT_EQ(t[0].size, 8u);
}

TEST(DinIo, RejectsMalformedInput) {
  EXPECT_THROW(fromDinString("9 10\n"), ContractViolation);   // bad label
  EXPECT_THROW(fromDinString("0\n"), ContractViolation);      // no addr
  EXPECT_THROW(fromDinString("0 zzz\n"), ContractViolation);  // bad hex
  EXPECT_THROW(fromDinString("0 10", 0), ContractViolation);  // bad size
}

TEST(DinIo, WhitespaceVariantsAccepted) {
  const Trace t = fromDinString("0\t1f\n  1    2A\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0x1fu);
  EXPECT_EQ(t[1].addr, 0x2au);
}

TEST(DinIo, EmptyInputYieldsEmptyTrace) {
  EXPECT_TRUE(fromDinString("").empty());
}

TEST(DinIo, StreamInterface) {
  std::istringstream is("0 1\n1 2\n");
  const Trace t = readDin(is);
  EXPECT_EQ(t.size(), 2u);
  std::ostringstream os;
  writeDin(os, t);
  EXPECT_EQ(os.str(), "0 1\n1 2\n");
}

}  // namespace
}  // namespace memx
