// The serve subsystem: JSON strictness, protocol validation, the
// single-flight result store, and the full server lifecycle — with the
// headline guarantee that a served response is bit-identical to the
// same exploration called directly.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <streambuf>
#include <thread>
#include <vector>

#include "memx/core/selection.hpp"
#include "memx/core/trace_explorer.hpp"
#include "memx/kernels/registry.hpp"
#include "memx/report/result_io.hpp"
#include "memx/search/front_io.hpp"
#include "memx/serve/job_queue.hpp"
#include "memx/serve/json.hpp"
#include "memx/serve/protocol.hpp"
#include "memx/serve/result_store.hpp"
#include "memx/serve/server.hpp"
#include "memx/trace/din_io.hpp"
#include "memx/trace/file_source.hpp"

namespace memx::serve {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, ParsesScalarsAndContainers) {
  EXPECT_TRUE(JsonValue::parse("null").isNull());
  EXPECT_TRUE(JsonValue::parse("true").asBool());
  EXPECT_FALSE(JsonValue::parse("false").asBool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5e2").asNumber(), -1250.0);
  EXPECT_EQ(JsonValue::parse("\"a b\"").asString(), "a b");
  EXPECT_EQ(JsonValue::parse("[1,2,3]").asArray().size(), 3u);
  const JsonValue o = JsonValue::parse(R"({"a":1,"b":[true,null]})");
  EXPECT_EQ(o.asObject().size(), 2u);
  EXPECT_DOUBLE_EQ(o.asObject().at("a").asNumber(), 1.0);
}

TEST(Json, EscapesRoundTrip) {
  const JsonValue v =
      JsonValue::parse(R"("line\n tab\t quote\" back\\ u\u0041")");
  EXPECT_EQ(v.asString(), "line\n tab\t quote\" back\\ uA");
  // Surrogate pair: U+1F600 (4-byte UTF-8).
  const JsonValue emoji = JsonValue::parse(R"("\ud83d\ude00")");
  EXPECT_EQ(emoji.asString(), "\xF0\x9F\x98\x80");
  // dump escapes control characters and round-trips.
  const JsonValue s(std::string("a\nb\x01" "c"));
  EXPECT_EQ(s.dump(), "\"a\\nb\\u0001c\"");
  EXPECT_EQ(JsonValue::parse(s.dump()).asString(), std::string("a\nb\x01") + "c");
}

TEST(Json, RejectsMalformedInput) {
  const char* bad[] = {
      "",         "{",          "[1,]",        "{\"a\":}",
      "tru",      "01",         "1.",          "1e",
      "+1",       "\"\\x\"",    "\"unterminated", "{\"a\":1,}",
      "[1] tail", "\"\\ud800\"" /* unpaired surrogate */,
      "{\"a\":1,\"a\":2}" /* duplicate key */,
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)JsonValue::parse(text), JsonError) << text;
  }
}

TEST(Json, BoundsNestingDepth) {
  const std::string deep(1000, '[');
  EXPECT_THROW((void)JsonValue::parse(deep), JsonError);
}

TEST(Json, DumpsIntegersWithoutExponent) {
  EXPECT_EQ(JsonValue(17).dump(), "17");
  EXPECT_EQ(JsonValue(std::uint64_t{1} << 40).dump(), "1099511627776");
  EXPECT_EQ(JsonValue(0.25).dump(), "0.25");
  EXPECT_EQ(JsonValue::parse(JsonValue(0.1).dump()).asNumber(), 0.1);
}

// ------------------------------------------------------------ protocol

TEST(Protocol, RejectsUnknownFieldsWithDiagnostics) {
  const auto parse = [](const std::string& text) {
    return parseRequest(JsonValue::parse(text));
  };
  EXPECT_THROW((void)parse(R"({"op":"ping","bogus":1})"), ServeError);
  EXPECT_THROW((void)parse(R"({"op":"explore"})"), ServeError);
  EXPECT_THROW(
      (void)parse(
          R"({"op":"explore","workload":"matadd","options":{"emnj":1}})"),
      ServeError);
  EXPECT_THROW(
      (void)parse(
          R"({"op":"explore","workload":"x","options":{"ranges":{"max_cache":64}}})"),
      ServeError);
  try {
    (void)parse(R"({"op":"explore","workload":"x","options":{"bogus":1}})");
    FAIL() << "expected ServeError";
  } catch (const ServeError& e) {
    EXPECT_NE(std::string(e.what()).find("options.bogus"), std::string::npos);
  }
}

TEST(Protocol, ParsesFullRequest) {
  const Request r = parseRequest(JsonValue::parse(R"({
    "id": 7, "op": "explore", "workload": "matmul",
    "options": {"em_nj": 2.5, "write_policy": "write-through",
                "replacement": "FIFO", "backend": "multisim",
                "ranges": {"max_cache_bytes": 128, "sweep_tiling": false}},
    "selection": {"metric": "min_cycles", "energy_bound": 1e6},
    "include_points": true})"));
  EXPECT_EQ(r.op, RequestOp::Explore);
  EXPECT_EQ(r.workload, "matmul");
  EXPECT_DOUBLE_EQ(r.options.energy.emNj, 2.5);
  EXPECT_EQ(r.options.writePolicy, WritePolicy::WriteThrough);
  EXPECT_EQ(r.options.replacement, ReplacementPolicy::FIFO);
  EXPECT_EQ(r.options.backend, SweepBackend::MultiSim);
  EXPECT_EQ(r.options.ranges.maxCacheBytes, 128u);
  EXPECT_FALSE(r.options.ranges.sweepTiling);
  EXPECT_EQ(r.metric, SelectionMetric::MinCycles);
  ASSERT_TRUE(r.energyBound.has_value());
  EXPECT_TRUE(r.includePoints);
}

TEST(Protocol, CanonicalKeySplitsIntoRangesAndModel) {
  ExploreOptions a;
  EXPECT_EQ(canonicalExploreKey(a),
            canonicalRangesKey(a.ranges) + canonicalModelKey(a));
  // Auto collapses to its resolution: an Auto/LRU run shares its key
  // with a forced-stackdist run — and so does an Auto/FIFO run now
  // that the policy-grid backend serves FIFO/PLRU sweeps analytically.
  // Only Random still resolves to (and keys as) the multisim backend.
  ExploreOptions forced = a;
  forced.backend = SweepBackend::StackDist;
  EXPECT_EQ(canonicalExploreKey(a), canonicalExploreKey(forced));
  ExploreOptions fifo = a;
  fifo.replacement = ReplacementPolicy::FIFO;
  ExploreOptions fifoForced = fifo;
  fifoForced.backend = SweepBackend::StackDist;
  EXPECT_EQ(canonicalExploreKey(fifo), canonicalExploreKey(fifoForced));
  EXPECT_NE(canonicalExploreKey(a), canonicalExploreKey(fifo));
  ExploreOptions rnd = a;
  rnd.replacement = ReplacementPolicy::Random;
  ExploreOptions rndForced = rnd;
  rndForced.backend = SweepBackend::MultiSim;
  EXPECT_EQ(canonicalExploreKey(rnd), canonicalExploreKey(rndForced));
  EXPECT_NE(canonicalExploreKey(a), canonicalExploreKey(rnd));
  // Model changes move the key; range changes move only the range half.
  ExploreOptions em = a;
  em.energy.emNj = 9.0;
  EXPECT_EQ(canonicalRangesKey(em.ranges), canonicalRangesKey(a.ranges));
  EXPECT_NE(canonicalModelKey(em), canonicalModelKey(a));
}

// --------------------------------------------------------- result store

TEST(ResultStore, SingleFlightSharesOneComputation) {
  ResultStore store;
  const ResultStore::Key key{"k1", "", std::nullopt};
  std::atomic<int> leaders{0};
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&] {
      const ResultStore::Outcome outcome = store.get(key);
      if (outcome.leader) {
        leaders.fetch_add(1);
        // Hold leadership briefly so the others actually wait.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        auto value = std::make_shared<StoredResult>();
        EXPECT_TRUE(store.publish(key.exact, outcome.generation, value));
      } else {
        EXPECT_NE(outcome.value, nullptr);
        hits.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(hits.load(), 5);
  EXPECT_EQ(store.counters().hits, 5u);
}

TEST(ResultStore, FailedLeaderHandsOverToAWaiter) {
  ResultStore store;
  const ResultStore::Key key{"k1", "", std::nullopt};
  const ResultStore::Outcome first = store.get(key);
  ASSERT_TRUE(first.leader);
  std::atomic<bool> tookOver{false};
  std::thread waiter([&] {
    const ResultStore::Outcome second = store.get(key);
    // After the leader fails, the waiter must become the new leader,
    // not receive a null value or hang.
    EXPECT_TRUE(second.leader);
    tookOver.store(true);
    store.fail(key.exact, second.generation);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(tookOver.load());
  store.fail(key.exact, first.generation);
  waiter.join();
  EXPECT_TRUE(tookOver.load());
}

TEST(ResultStore, InvalidationBlocksStalePublishes) {
  ResultStore store;
  const ResultStore::Key key{"k1", "", std::nullopt};
  const ResultStore::Outcome outcome = store.get(key);
  ASSERT_TRUE(outcome.leader);
  EXPECT_EQ(store.invalidateAll(), 1u);
  // The result was computed against the invalidated model: it must not
  // enter the cache, and the next lookup must be a fresh miss.
  EXPECT_FALSE(
      store.publish(key.exact, outcome.generation,
                    std::make_shared<StoredResult>()));
  const ResultStore::Outcome after = store.get(key);
  EXPECT_TRUE(after.leader);
  EXPECT_EQ(after.generation, 1u);
  store.fail(key.exact, after.generation);
}

TEST(ResultStore, EvictsLeastRecentlyUsedReadyEntries) {
  ResultStore store(ResultStore::Config{2});
  for (int i = 0; i < 4; ++i) {
    const std::string exact = "k" + std::to_string(i);
    const ResultStore::Outcome outcome =
        store.get({exact, "", std::nullopt});
    ASSERT_TRUE(outcome.leader);
    store.publish(exact, outcome.generation,
                  std::make_shared<StoredResult>());
  }
  EXPECT_EQ(store.entries(), 2u);
  EXPECT_FALSE(store.get({"k0", "", std::nullopt}).value != nullptr);
  store.fail("k0", 0);
  EXPECT_NE(store.get({"k3", "", std::nullopt}).value, nullptr);
}

// ------------------------------------------------------------ job queue

TEST(JobQueue, BackpressureBlocksPushUntilPop) {
  JobQueue<int> queue(2);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(3));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(pushed.load()) << "push must block while the queue is full";
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(JobQueue, CloseDrainsRemainingItems) {
  JobQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3)) << "closed queue must reject new items";
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.pop(out)) << "closed and empty means done";
}

// -------------------------------------------------------------- server

/// Small sweep so every server test stays in the tier-1 budget.
constexpr const char* kSmallRanges =
    R"("ranges":{"on_chip_bytes":128,"max_cache_bytes":128,)"
    R"("max_line_bytes":16,"max_associativity":2,"max_tiling":4})";

[[nodiscard]] ExploreOptions smallOptions() {
  ExploreOptions o;
  o.ranges.onChipBytes = 128;
  o.ranges.maxCacheBytes = 128;
  o.ranges.maxLineBytes = 16;
  o.ranges.maxAssociativity = 2;
  o.ranges.maxTiling = 4;
  return o;
}

[[nodiscard]] JsonValue response(Server& server, const std::string& line) {
  return JsonValue::parse(server.handleLine(line));
}

[[nodiscard]] const JsonValue& field(const JsonValue& v,
                                     const std::string& key) {
  const auto& object = v.asObject();
  const auto it = object.find(key);
  EXPECT_NE(it, object.end()) << "missing field " << key << " in " << v.dump();
  if (it == object.end()) throw std::runtime_error("missing " + key);
  return it->second;
}

[[nodiscard]] bool okOf(const JsonValue& v) {
  return field(v, "ok").asBool();
}

/// Feed `lines` through a full run() and index the responses by id.
[[nodiscard]] std::map<std::string, JsonValue> runLines(
    Server& server, const std::vector<std::string>& lines) {
  std::stringstream in;
  for (const std::string& line : lines) in << line << '\n';
  std::stringstream out;
  server.run(in, out);
  std::map<std::string, JsonValue> byId;
  std::string line;
  while (std::getline(out, line)) {
    JsonValue v = JsonValue::parse(line);
    const JsonValue& id = field(v, "id");
    byId.emplace(id.isString() ? id.asString() : id.dump(), std::move(v));
  }
  return byId;
}

TEST(Server, ExploreResponseIsBitIdenticalToDirectCall) {
  const ExplorationResult direct =
      Explorer(smallOptions()).explore(registeredKernel("matadd"));
  Server server;
  const JsonValue v = response(
      server, std::string(R"({"id":1,"op":"explore","workload":"matadd",)") +
                  R"("options":{)" + kSmallRanges + R"(},)" +
                  R"("include_points":true})");
  ASSERT_TRUE(okOf(v)) << v.dump();
  EXPECT_EQ(field(v, "csv").asString(), toCsvString(direct));
  EXPECT_EQ(field(v, "points").asNumber(),
            static_cast<double>(direct.points.size()));
  // The selected point is the default min-energy selection.
  const auto selected = minEnergyPoint(direct.points);
  ASSERT_TRUE(selected.has_value());
  EXPECT_EQ(field(field(v, "selected"), "label").asString(),
            selected->label());
  EXPECT_DOUBLE_EQ(field(field(v, "selected"), "energy_nj").asNumber(),
                   selected->energyNj);
}

TEST(Server, SearchResponseIsBitIdenticalToDirectCall) {
  search::SearchOptions searchOptions;
  searchOptions.seed = 7;
  searchOptions.populationSize = 8;
  searchOptions.generations = 3;
  const search::SearchResult direct =
      Explorer(smallOptions())
          .searchPareto(registeredKernel("matadd"), searchOptions);
  std::vector<search::FrontRow> rows;
  for (const search::SearchPoint& p : direct.front) {
    rows.push_back(search::toFrontRow(direct.workload, p));
  }
  std::ostringstream directCsv;
  search::writeFrontCsv(directCsv, rows);

  Server server;
  const JsonValue v = response(
      server, std::string(R"({"id":1,"op":"search","workload":"matadd",)") +
                  R"("options":{)" + kSmallRanges + R"(},)" +
                  R"("search":{"seed":7,"pop":8,"gens":3},)" +
                  R"("include_points":true})");
  ASSERT_TRUE(okOf(v)) << v.dump();
  EXPECT_EQ(field(v, "csv").asString(), directCsv.str());
  EXPECT_EQ(field(v, "front").asNumber(),
            static_cast<double>(direct.front.size()));
  EXPECT_EQ(field(v, "evaluations").asNumber(),
            static_cast<double>(direct.evaluations));
  EXPECT_EQ(field(v, "exact").asBool(), direct.exact);
}

TEST(Server, TraceResponseIsBitIdenticalToDirectCall) {
  const std::string path = testing::TempDir() + "serve_test_trace.din";
  {
    std::ofstream file(path);
    for (int i = 0; i < 400; ++i) {
      file << (i % 3 == 0 ? 1 : 0) << ' ' << std::hex << (i * 12 % 256)
           << std::dec << '\n';
    }
  }
  const ExploreOptions options = smallOptions();
  FileTraceSource source(path);
  const TraceWindow window{0, 50, 0};
  const ExplorationResult direct =
      exploreTrace(path, source, options, window);

  Server server;
  const JsonValue v = response(
      server, std::string(R"({"id":1,"op":"trace","trace":")") + path +
                  R"(","window":{"warmup":50},)" + R"("options":{)" +
                  kSmallRanges + R"(},"include_points":true})");
  ASSERT_TRUE(okOf(v)) << v.dump();
  EXPECT_EQ(field(v, "csv").asString(), toCsvString(direct));
  // Second identical request: served from the store.
  const JsonValue again = response(
      server, std::string(R"({"id":2,"op":"trace","trace":")") + path +
                  R"(","window":{"warmup":50},)" + R"("options":{)" +
                  kSmallRanges + R"(},"include_points":true})");
  ASSERT_TRUE(okOf(again)) << again.dump();
  EXPECT_TRUE(field(again, "cached").asBool());
  EXPECT_EQ(field(again, "csv").asString(), toCsvString(direct));
}

TEST(Server, CacheHitStress) {
  // Phase 1: seed the store with the wide sweep.
  Server server;
  const std::string wideBody =
      std::string(R"("op":"explore","workload":"matadd","options":{)") +
      kSmallRanges + R"(},"include_points":true})";
  ASSERT_TRUE(okOf(response(server, R"({"id":"seed",)" + wideBody)));

  // Phase 2: N identical wide + M identical narrow requests, all
  // concurrent. The narrow grid is strictly inside the wide one.
  const std::string narrowBody =
      R"("op":"explore","workload":"matadd","options":{"ranges":{)"
      R"("on_chip_bytes":64,"max_cache_bytes":64,"max_line_bytes":8,)"
      R"("max_associativity":2,"max_tiling":2}},"include_points":true})";
  constexpr int kWide = 6;
  constexpr int kNarrow = 4;
  std::vector<std::string> lines;
  for (int i = 0; i < kWide; ++i) {
    lines.push_back(R"({"id":"w)" + std::to_string(i) + R"(",)" + wideBody);
  }
  for (int i = 0; i < kNarrow; ++i) {
    lines.push_back(R"({"id":"n)" + std::to_string(i) + R"(",)" +
                    narrowBody);
  }
  const auto byId = runLines(server, lines);
  ASSERT_EQ(byId.size(), static_cast<std::size_t>(kWide + kNarrow));

  const ExplorationResult narrowDirect = [&] {
    ExploreOptions o;
    o.ranges.onChipBytes = 64;
    o.ranges.maxCacheBytes = 64;
    o.ranges.maxLineBytes = 8;
    o.ranges.maxAssociativity = 2;
    o.ranges.maxTiling = 2;
    return Explorer(o).explore(registeredKernel("matadd"));
  }();

  int subsets = 0;
  for (const auto& [id, v] : byId) {
    ASSERT_TRUE(okOf(v)) << v.dump();
    if (id[0] == 'w') {
      EXPECT_TRUE(field(v, "cached").asBool()) << id;
    } else {
      // Narrow responses re-select from the cached wide sweep — and
      // stay bit-identical to the direct narrow exploration.
      EXPECT_EQ(field(v, "csv").asString(), toCsvString(narrowDirect))
          << id;
      if (field(v, "subset").asBool()) ++subsets;
    }
  }
  EXPECT_EQ(subsets, 1) << "exactly one narrow leader re-selects";

  const ResultStore::Counters counters = server.store().counters();
  EXPECT_EQ(counters.misses, 1u) << "only the phase-1 seed computed";
  EXPECT_EQ(counters.subsetHits, 1u);
  EXPECT_EQ(counters.hits, static_cast<std::uint64_t>(kWide + kNarrow - 1));
}

TEST(Server, BoundsChangeReselectsWithoutRecomputing) {
  Server server;
  const std::string base =
      std::string(R"("op":"explore","workload":"matadd","options":{)") +
      kSmallRanges + R"(})";
  const JsonValue unbounded =
      response(server, R"({"id":1,)" + base + "}");
  ASSERT_TRUE(okOf(unbounded));
  EXPECT_FALSE(field(unbounded, "cached").asBool());
  const double unboundedCycles =
      field(field(unbounded, "selected"), "cycles").asNumber();

  // Tighten the cycle bound: same cache key, new selection.
  const JsonValue bounded = response(
      server, R"({"id":2,)" + base +
                  R"(,"selection":{"cycle_bound":)" +
                  std::to_string(unboundedCycles * 0.999) + "}}");
  ASSERT_TRUE(okOf(bounded)) << bounded.dump();
  EXPECT_TRUE(field(bounded, "cached").asBool())
      << "bounds are not part of the cache key";
  EXPECT_EQ(field(bounded, "cache_key").asString(),
            field(unbounded, "cache_key").asString());
  const ExplorationResult direct =
      Explorer(smallOptions()).explore(registeredKernel("matadd"));
  const auto expected =
      bestUnderBounds(direct.points, unboundedCycles * 0.999, std::nullopt);
  if (expected.has_value()) {
    EXPECT_EQ(field(field(bounded, "selected"), "label").asString(),
              expected->label());
  } else {
    EXPECT_TRUE(field(bounded, "selected").isNull());
  }
  EXPECT_EQ(server.store().counters().misses, 1u);
  EXPECT_EQ(server.store().counters().hits, 1u);
}

TEST(Server, InvalidateForcesRecomputation) {
  Server server;
  const std::string line =
      std::string(R"({"id":1,"op":"explore","workload":"matadd",)") +
      R"("options":{)" + kSmallRanges + R"(}})";
  ASSERT_TRUE(okOf(response(server, line)));
  const JsonValue inv = response(server, R"({"id":9,"op":"invalidate"})");
  ASSERT_TRUE(okOf(inv));
  EXPECT_EQ(field(inv, "generation").asNumber(), 1.0);
  const JsonValue after = response(server, line);
  ASSERT_TRUE(okOf(after));
  EXPECT_FALSE(field(after, "cached").asBool());
  EXPECT_EQ(server.store().counters().misses, 2u);
}

TEST(Server, MalformedRequestsGetDiagnosticsNotCrashes) {
  Server server;
  const JsonValue junk = response(server, "{nope");
  EXPECT_FALSE(okOf(junk));
  EXPECT_NE(field(junk, "error").asString().find("JSON error"),
            std::string::npos);
  const JsonValue badOp = response(server, R"({"id":3,"op":"frobnicate"})");
  EXPECT_FALSE(okOf(badOp));
  EXPECT_EQ(field(badOp, "id").asNumber(), 3.0);
  EXPECT_NE(field(badOp, "error").asString().find("unknown op"),
            std::string::npos);
  const JsonValue badKernel =
      response(server, R"({"id":4,"op":"explore","workload":"nope"})");
  EXPECT_FALSE(okOf(badKernel));
  EXPECT_NE(field(badKernel, "error").asString().find("unknown kernel"),
            std::string::npos);
  // The server carries on serving after every rejection.
  EXPECT_TRUE(okOf(response(server, R"({"id":5,"op":"ping"})")));
}

TEST(Server, OversizedRequestRejectedAndConnectionSurvives) {
  ServerOptions options;
  options.maxRequestBytes = 256;
  options.workers = 2;
  Server server(options);
  std::string big = R"({"id":"big","op":"ping","workload":")";
  big += std::string(1024, 'x');
  big += R"("})";
  const auto byId = runLines(
      server, {big, R"({"id":"ok","op":"ping"})"});
  ASSERT_EQ(byId.size(), 2u);
  const JsonValue& rejected = byId.at("null");
  EXPECT_FALSE(okOf(rejected));
  EXPECT_NE(field(rejected, "error").asString().find("exceeds"),
            std::string::npos);
  EXPECT_TRUE(okOf(byId.at("ok")));
}

/// An istream buffer fed line-by-line from another thread: underflow
/// blocks until more text is appended (or finish() signals EOF). Lets
/// lifecycle tests sequence input against server-side state instead of
/// racing a stringstream that is entirely readable up front.
class BlockingInputBuf : public std::streambuf {
public:
  void append(const std::string& text) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      data_ += text;
    }
    ready_.notify_all();
  }
  void finish() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    ready_.notify_all();
  }

protected:
  int_type underflow() override {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return pos_ < data_.size() || done_; });
    if (pos_ >= data_.size()) return traits_type::eof();
    current_ = data_[pos_++];
    setg(&current_, &current_, &current_ + 1);
    return traits_type::to_int_type(current_);
  }

private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::string data_;
  std::size_t pos_ = 0;
  bool done_ = false;
  char current_ = 0;
};

TEST(Server, GracefulDrainFinishesInflightAndShedsQueued) {
  // One worker, pinned in-flight by the onJobStart hook: job A is
  // being processed when the shutdown arrives, job B is still queued.
  // A must finish normally, B must get a clean shutdown error. Input
  // is fed step by step so each state is reached deterministically.
  std::atomic<bool> aEntered{false};
  std::atomic<bool> release{false};
  ServerOptions options;
  options.workers = 1;
  options.onJobStart = [&](const Request&) {
    aEntered.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Server server(options);
  BlockingInputBuf inputBuf;
  std::istream in(&inputBuf);
  std::stringstream out;
  std::thread serving([&] { server.run(in, out); });

  // Step 1: job A is being processed by the only worker.
  inputBuf.append(
      std::string(
          R"({"id":"a","op":"explore","workload":"matadd","options":{)") +
      kSmallRanges + R"(}})" + "\n");
  while (!aEntered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Step 2: job B sits in the queue (the worker is pinned on A).
  inputBuf.append(
      std::string(
          R"({"id":"b","op":"explore","workload":"matadd","options":{)") +
      kSmallRanges + R"(}})" + "\n");
  while (server.stats().requests.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Step 3: shutdown arrives; only then is the pinned worker released.
  inputBuf.append(R"({"id":"s","op":"shutdown"})" "\n");
  while (!server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.store(true);
  serving.join();
  inputBuf.finish();

  std::map<std::string, JsonValue> byId;
  std::string line;
  while (std::getline(out, line)) {
    JsonValue v = JsonValue::parse(line);
    byId.emplace(field(v, "id").isNull() ? "s" : field(v, "id").asString(),
                 std::move(v));
  }
  ASSERT_EQ(byId.size(), 3u);
  EXPECT_TRUE(okOf(byId.at("a"))) << "in-flight request must finish";
  EXPECT_FALSE(okOf(byId.at("b")));
  EXPECT_NE(field(byId.at("b"), "error").asString().find("shutting down"),
            std::string::npos);
  EXPECT_TRUE(okOf(byId.at("s")));
  EXPECT_EQ(server.stats().drained.load(), 1u);
}

TEST(Server, InterleavedRequestsKeepTheirOwnReports) {
  // Two different workloads in flight at once (the hook holds each job
  // until both have entered, or a deadline passes when one worker ran
  // them back to back). Each response's RunReport must contain only
  // its own request's counters and spans — one serve.request span, one
  // store miss, and a sweep.points count matching its own sweep.
  std::atomic<int> entered{0};
  ServerOptions options;
  options.workers = 2;
  options.onJobStart = [&](const Request&) {
    entered.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
    while (entered.load() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Server server(options);
  const auto byId = runLines(
      server,
      {std::string(
           R"({"id":"a","op":"explore","workload":"matadd","options":{)") +
           kSmallRanges + R"(},"include_report":true})",
       std::string(
           R"({"id":"b","op":"explore","workload":"dequant","options":{)") +
           kSmallRanges + R"(},"include_report":true})"});
  ASSERT_EQ(byId.size(), 2u);
  for (const auto& [id, v] : byId) {
    ASSERT_TRUE(okOf(v)) << v.dump();
    const JsonValue& report = field(v, "report");
    const JsonValue& counters = field(report, "counters");
    // Exactly this request's store traffic: one miss, zero hits.
    EXPECT_EQ(field(counters, "serve.store_misses").asNumber(), 1.0) << id;
    EXPECT_EQ(counters.asObject().count("serve.store_hits"), 0u) << id;
    // The sweep instrumentation matches this request's own point count.
    EXPECT_EQ(field(counters, "sweep.points").asNumber(),
              field(v, "points").asNumber())
        << id;
    // Exactly one serve.request span was recorded in this report.
    int requestSpans = 0;
    for (const JsonValue& phase : field(report, "phases").asArray()) {
      if (field(phase, "name").asString() == "serve.request") {
        requestSpans += static_cast<int>(field(phase, "count").asNumber());
      }
    }
    EXPECT_EQ(requestSpans, 1) << id;
  }
  // The two workloads genuinely differ, so any cross-request bleed
  // would have broken the per-report sweep.points equality above.
  EXPECT_NE(field(byId.at("a"), "points").asNumber(), 0.0);
}

TEST(Server, InlineKernelSourceExploresAndCaches) {
  Server server;
  const std::string kernel =
      "array a[16][16] : 1\\nfor i = 0 .. 15\\n  for j = 0 .. 15\\n"
      "    a[i][j] = a[i][j] + 1\\n";
  const std::string line =
      std::string(R"({"id":1,"op":"explore","kernel_src":")") + kernel +
      R"(","options":{)" + kSmallRanges + R"(}})";
  const JsonValue first = response(server, line);
  ASSERT_TRUE(okOf(first)) << first.dump();
  EXPECT_FALSE(field(first, "cached").asBool());
  const JsonValue second = response(server, line);
  ASSERT_TRUE(okOf(second));
  EXPECT_TRUE(field(second, "cached").asBool());
}

TEST(Server, StatsReportStoreAndServerCounters) {
  Server server;
  ASSERT_TRUE(okOf(response(
      server, std::string(R"({"id":1,"op":"explore","workload":"matadd",)") +
                  R"("options":{)" + kSmallRanges + R"(}})")));
  const JsonValue stats = response(server, R"({"id":2,"op":"stats"})");
  ASSERT_TRUE(okOf(stats));
  EXPECT_EQ(field(field(stats, "store"), "misses").asNumber(), 1.0);
  EXPECT_EQ(field(field(stats, "store"), "entries").asNumber(), 1.0);
  EXPECT_EQ(field(field(stats, "server"), "requests").asNumber(), 2.0);
}

}  // namespace
}  // namespace memx::serve
