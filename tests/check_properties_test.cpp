// Metamorphic property checks over the simulation and model stack.
// Each property is an invariant the paper's pipeline must satisfy for
// *every* input, checked here on seeded random workloads; see
// docs/TESTING.md for the invariant list with paper-section references.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/miss_classifier.hpp"
#include "memx/check/random_gen.hpp"
#include "memx/core/explorer.hpp"
#include "memx/core/parallel_explorer.hpp"
#include "memx/energy/energy_model.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/search/dominance.hpp"
#include "memx/stackdist/all_assoc.hpp"
#include "memx/timing/cycle_model.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

class PropertySweep : public ::testing::TestWithParam<int> {
protected:
  [[nodiscard]] std::uint64_t seed() const {
    return static_cast<std::uint64_t>(GetParam());
  }
};

// --- Stack inclusion (Mattson): for LRU, a set's resident lines are a
// superset of any narrower LRU set's, so at a fixed set count and line
// size the miss count is monotone non-increasing in associativity.
// (At fixed *capacity* T the property does not hold - halving the set
// count changes the index mapping; docs/TESTING.md shows the classic
// counterexample - so the harness states it the provable way.)
TEST_P(PropertySweep, LruMissesMonotoneInAssociativityAtFixedSets) {
  const Trace trace = randomCheckTrace(seed(), 300, 1200);
  for (const std::uint32_t sets : {1u, 4u, 16u}) {
    for (const std::uint32_t line : {8u, 16u}) {
      std::uint64_t prev = ~std::uint64_t{0};
      for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        CacheConfig c;
        c.lineBytes = line;
        c.associativity = assoc;
        c.sizeBytes = line * sets * assoc;
        c.replacement = ReplacementPolicy::LRU;
        const std::uint64_t misses = simulateTrace(c, trace).misses();
        EXPECT_LE(misses, prev)
            << "seed " << seed() << " sets=" << sets << " L=" << line
            << " S=" << assoc;
        prev = misses;
      }
    }
  }
}

// Fully-associative LRU inclusion across capacities (the form the
// paper's Section-3 working-set argument relies on).
TEST_P(PropertySweep, FullyAssociativeLruMonotoneInCapacity) {
  const Trace trace = randomCheckTrace(seed(), 300, 1200);
  std::uint64_t prev = ~std::uint64_t{0};
  for (const std::uint32_t size : {32u, 64u, 128u, 256u, 512u}) {
    CacheConfig c;
    c.sizeBytes = size;
    c.lineBytes = 8;
    c.associativity = c.numLines();
    const std::uint64_t misses = simulateTrace(c, trace).misses();
    EXPECT_LE(misses, prev) << "seed " << seed() << " C" << size;
    prev = misses;
  }
}

// --- Model sanity (paper Secs. 2.2-2.3): cycles and energy are
// non-negative and additive over trace concatenation. Counters of a
// continuous run split exactly at any point, and both models are linear
// in (hits, misses), so model(whole) == model(first part) +
// model(second part) up to floating-point rounding.
CacheStats minusStats(const CacheStats& a, const CacheStats& b) {
  CacheStats d;
  d.reads = a.reads - b.reads;
  d.writes = a.writes - b.writes;
  d.readHits = a.readHits - b.readHits;
  d.readMisses = a.readMisses - b.readMisses;
  d.writeHits = a.writeHits - b.writeHits;
  d.writeMisses = a.writeMisses - b.writeMisses;
  d.lineFills = a.lineFills - b.lineFills;
  d.writebacks = a.writebacks - b.writebacks;
  d.memWrites = a.memWrites - b.memWrites;
  return d;
}

TEST_P(PropertySweep, CycleAndEnergyModelsAdditiveOverConcatenation) {
  const Trace trace = randomCheckTrace(seed(), 400, 1500);
  const CacheConfig config = randomCacheConfig(seed());

  // One continuous run, stats snapshotted at the split point.
  CacheSim sim(config);
  const std::size_t split = trace.size() / 3;
  for (std::size_t i = 0; i < split; ++i) sim.access(trace[i]);
  const CacheStats first = sim.stats();
  for (std::size_t i = split; i < trace.size(); ++i) sim.access(trace[i]);
  const CacheStats whole = sim.stats();
  const CacheStats second = minusStats(whole, first);

  const CycleModel cycles;
  const double cWhole = cycles.cycles(whole, config);
  const double cParts =
      cycles.cycles(first, config) + cycles.cycles(second, config);
  EXPECT_GE(cWhole, 0.0);
  EXPECT_NEAR(cWhole, cParts, 1e-9 * (1.0 + cWhole)) << "seed " << seed();

  const CacheEnergyModel energy(config, EnergyParams{},
                                kDefaultAddrSwitchesPerAccess);
  const double eWhole = energy.totalNj(whole);
  const double eParts = energy.totalNj(first) + energy.totalNj(second);
  EXPECT_GE(eWhole, 0.0);
  EXPECT_NEAR(eWhole, eParts, 1e-9 * (1.0 + eWhole)) << "seed " << seed();

  // The write-inclusive variant is additive too (it is a plain linear
  // combination of the counters).
  const double wWhole = energy.totalIncludingWritesNj(whole);
  const double wParts = energy.totalIncludingWritesNj(first) +
                        energy.totalIncludingWritesNj(second);
  EXPECT_GE(wWhole, 0.0);
  EXPECT_NEAR(wWhole, wParts, 1e-9 * (1.0 + wWhole)) << "seed " << seed();
}

// --- Paper Sec. 4.1: when the conflict-free assignment reports a
// complete placement, the padded layout exhibits zero conflict misses.
TEST_P(PropertySweep, CompletePaddingPlanKillsConflictMisses) {
  const Kernel k = randomStencilKernel(seed());
  for (const std::uint32_t size : {128u, 256u, 512u}) {
    CacheConfig cache;
    cache.sizeBytes = size;
    cache.lineBytes = 8;
    const AssignmentPlan plan = assignConflictFree(k, cache);
    if (!plan.complete) continue;
    const MissBreakdown b =
        classifyMisses(cache, generateTrace(k, plan.layout));
    EXPECT_EQ(b.conflict, 0u) << k.name << " C" << size;
  }
}

// --- PR-1 engine contract: the shared-trace sweep, the parallel sweep
// and the per-point reference path are bit-identical.
TEST(Properties, ExploreParallelAndPerPointAreBitIdentical) {
  ExploreOptions options;
  options.ranges.onChipBytes = 256;
  options.ranges.maxCacheBytes = 256;
  options.ranges.minCacheBytes = 32;
  options.ranges.maxLineBytes = 16;
  options.ranges.maxAssociativity = 2;
  options.ranges.maxTiling = 2;
  const Kernel kernel = compressKernel(16);

  const Explorer explorer(options);
  const ExplorationResult serial = explorer.explore(kernel);
  const ExplorationResult parallel =
      exploreParallel(kernel, options, 4);

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  ASSERT_FALSE(serial.points.empty());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const DesignPoint& s = serial.points[i];
    const DesignPoint& p = parallel.points[i];
    EXPECT_EQ(s.key, p.key);
    EXPECT_EQ(s.accesses, p.accesses);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(s.missRate, p.missRate) << s.label();
    EXPECT_EQ(s.cycles, p.cycles) << s.label();
    EXPECT_EQ(s.energyNj, p.energyNj) << s.label();

    const DesignPoint one = explorer.evaluate(
        kernel, explorer.configFor(s.key), s.key.tiling);
    EXPECT_EQ(s.accesses, one.accesses) << s.label();
    EXPECT_EQ(s.missRate, one.missRate) << s.label();
    EXPECT_EQ(s.cycles, one.cycles) << s.label();
    EXPECT_EQ(s.energyNj, one.energyNj) << s.label();
  }
}

// --- Stack-inclusion monotonicity, asserted on the stack-distance
// engine itself (not the simulator): one AllAssocProfile serves every
// (sets, ways) corner, so both axes read off a single trace pass.
TEST_P(PropertySweep, StackDistMissesMonotoneInAssociativityAtFixedSets) {
  const Trace trace = randomCheckTrace(seed(), 300, 1200);
  const AllAssocProfile profile(trace, 8, 16, 8);
  for (const std::uint32_t sets : {1u, 4u, 16u}) {
    std::uint64_t prev = ~std::uint64_t{0};
    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
      const std::uint64_t misses = profile.misses(sets, assoc);
      EXPECT_LE(misses, prev)
          << "seed " << seed() << " sets=" << sets << " ways=" << assoc;
      prev = misses;
    }
  }
}

// Growing T at fixed S and L adds sets; under bit-selection indexing a
// set of the bigger cache holds a subset of the lines contending in the
// corresponding set of the smaller one, so per-set stack distances only
// shrink: misses are non-increasing in cache size at fixed ways.
TEST_P(PropertySweep, StackDistMissesMonotoneInCacheSizeAtFixedWays) {
  const Trace trace = randomCheckTrace(seed(), 300, 1200);
  const AllAssocProfile profile(trace, 8, 16, 8);
  for (const std::uint32_t assoc : {1u, 2u, 8u}) {
    std::uint64_t prev = ~std::uint64_t{0};
    for (const std::uint32_t sets : {1u, 2u, 4u, 8u, 16u}) {
      const std::uint64_t misses = profile.misses(sets, assoc);
      EXPECT_LE(misses, prev)
          << "seed " << seed() << " sets=" << sets << " ways=" << assoc;
      prev = misses;
    }
  }
}

// --- PR-5 engine contract: forcing the StackDist backend produces a
// bit-identical ExplorationResult to forcing MultiCacheSim, on the same
// workloads the golden corpus pins (so any drift is double-caught).
TEST(Properties, StackDistBackendBitIdenticalToMultiSimOnGoldenCorpus) {
  ExploreOptions options;
  options.ranges.onChipBytes = 256;
  options.ranges.maxCacheBytes = 256;
  options.ranges.minCacheBytes = 16;
  options.ranges.minLineBytes = 4;
  options.ranges.maxLineBytes = 32;
  options.ranges.maxAssociativity = 4;
  options.ranges.maxTiling = 4;

  const Kernel kernels[] = {compressKernel(), matrixAddKernel(8),
                            dequantKernel(16), transposeKernel(16)};
  // The write-energy metric reads memWrites and writebacks, so the
  // second pass (write-back + includeWriteEnergy, newly analytic via
  // dirty-stack accounting) pins the writeback counts bit-for-bit
  // through the energy totals; the first is the paper's read-only model.
  for (const bool writeEnergy : {false, true}) {
    options.includeWriteEnergy = writeEnergy;
    options.writePolicy = WritePolicy::WriteBack;
    ExploreOptions stackOptions = options;
    stackOptions.backend = SweepBackend::StackDist;
    ExploreOptions simOptions = options;
    simOptions.backend = SweepBackend::MultiSim;

    for (const Kernel& kernel : kernels) {
      const ExplorationResult analytic =
          Explorer(stackOptions).explore(kernel);
      const ExplorationResult simulated =
          Explorer(simOptions).explore(kernel);
      ASSERT_EQ(analytic.points.size(), simulated.points.size());
      ASSERT_FALSE(analytic.points.empty());
      for (std::size_t i = 0; i < analytic.points.size(); ++i) {
        const DesignPoint& a = analytic.points[i];
        const DesignPoint& s = simulated.points[i];
        ASSERT_EQ(a.key, s.key) << kernel.name;
        EXPECT_EQ(a.accesses, s.accesses)
            << kernel.name << " " << a.label();
        // Bit-identical, not approximately equal.
        EXPECT_EQ(a.missRate, s.missRate)
            << kernel.name << " " << a.label();
        EXPECT_EQ(a.cycles, s.cycles) << kernel.name << " " << a.label();
        EXPECT_EQ(a.energyNj, s.energyNj)
            << kernel.name << " writeEnergy=" << writeEnergy << " "
            << a.label();
      }
    }
  }
}

// The same golden-corpus bit-equality contract for the policy-grid
// engine: forcing StackDist on FIFO and tree-PLRU sweeps must produce
// results indistinguishable from MultiCacheSim, point by point, with
// write-back dirty accounting exercised through the energy totals.
TEST(Properties, GridBackendBitIdenticalToMultiSimOnGoldenCorpus) {
  ExploreOptions options;
  options.ranges.onChipBytes = 256;
  options.ranges.maxCacheBytes = 256;
  options.ranges.minCacheBytes = 16;
  options.ranges.minLineBytes = 4;
  options.ranges.maxLineBytes = 32;
  options.ranges.maxAssociativity = 4;
  options.ranges.maxTiling = 4;
  options.writePolicy = WritePolicy::WriteBack;

  const Kernel kernels[] = {compressKernel(), matrixAddKernel(8),
                            dequantKernel(16), transposeKernel(16)};
  for (const ReplacementPolicy rp :
       {ReplacementPolicy::FIFO, ReplacementPolicy::TreePLRU}) {
    options.replacement = rp;
    for (const bool writeEnergy : {false, true}) {
      options.includeWriteEnergy = writeEnergy;
      ExploreOptions stackOptions = options;
      stackOptions.backend = SweepBackend::StackDist;
      ExploreOptions simOptions = options;
      simOptions.backend = SweepBackend::MultiSim;

      for (const Kernel& kernel : kernels) {
        const ExplorationResult analytic =
            Explorer(stackOptions).explore(kernel);
        const ExplorationResult simulated =
            Explorer(simOptions).explore(kernel);
        ASSERT_EQ(analytic.points.size(), simulated.points.size());
        ASSERT_FALSE(analytic.points.empty());
        for (std::size_t i = 0; i < analytic.points.size(); ++i) {
          const DesignPoint& a = analytic.points[i];
          const DesignPoint& s = simulated.points[i];
          ASSERT_EQ(a.key, s.key) << kernel.name;
          EXPECT_EQ(a.accesses, s.accesses)
              << toString(rp) << " " << kernel.name << " " << a.label();
          // Bit-identical, not approximately equal: any drift prints
          // the per-point delta through the gtest failure message.
          EXPECT_EQ(a.missRate, s.missRate)
              << toString(rp) << " " << kernel.name << " " << a.label();
          EXPECT_EQ(a.cycles, s.cycles)
              << toString(rp) << " " << kernel.name << " " << a.label();
          EXPECT_EQ(a.energyNj, s.energyNj)
              << toString(rp) << " " << kernel.name << " writeEnergy="
              << writeEnergy << " " << a.label();
        }
      }
    }
  }
}

// An Explorer whose options force StackDist outside its domain must be
// rejected at construction, not silently fall back — and the domain is
// now "any deterministic replacement": LRU runs the Hill-Smith
// profile, FIFO and tree-PLRU the single-pass policy grid, so only a
// Random sweep (simulator-owned rng stream) still gates.
TEST(Properties, ForcedStackDistBackendRejectsIneligibleOptions) {
  ExploreOptions options;
  options.backend = SweepBackend::StackDist;
  options.replacement = ReplacementPolicy::Random;
  EXPECT_THROW(Explorer{options}, ContractViolation);

  // FIFO and tree-PLRU used to be rejected here; the policy-grid
  // engine made them first-class analytic sweeps (both write policies).
  options.replacement = ReplacementPolicy::FIFO;
  EXPECT_EQ(Explorer(options).resolvedBackend(), SweepBackend::StackDist);
  options.replacement = ReplacementPolicy::TreePLRU;
  options.includeWriteEnergy = true;
  options.writePolicy = WritePolicy::WriteBack;
  EXPECT_EQ(Explorer(options).resolvedBackend(), SweepBackend::StackDist);

  // LRU + write-back + write energy stays eligible (dirty-stack
  // accounting), as does write-through with write energy.
  options.replacement = ReplacementPolicy::LRU;
  EXPECT_EQ(Explorer(options).resolvedBackend(), SweepBackend::StackDist);
  options.writePolicy = WritePolicy::WriteThrough;
  EXPECT_EQ(Explorer(options).resolvedBackend(), SweepBackend::StackDist);

  // Auto picks the analytic backend for every deterministic policy...
  options.backend = SweepBackend::Auto;
  options.writePolicy = WritePolicy::WriteBack;
  for (const ReplacementPolicy rp :
       {ReplacementPolicy::LRU, ReplacementPolicy::FIFO,
        ReplacementPolicy::TreePLRU}) {
    options.replacement = rp;
    EXPECT_TRUE(Explorer(options).stackDistEligible()) << toString(rp);
    EXPECT_EQ(Explorer(options).resolvedBackend(), SweepBackend::StackDist)
        << toString(rp);
  }

  // ...while Random replacement still falls back to simulation.
  options.replacement = ReplacementPolicy::Random;
  EXPECT_FALSE(Explorer(options).stackDistEligible());
  EXPECT_EQ(Explorer(options).resolvedBackend(), SweepBackend::MultiSim);
}

// --- Pareto dominance and front extraction (the search engine's
// foundations). Dominance must be a strict partial order, and the
// non-dominated set must be invariant under the two transformations a
// correct extractor cannot notice: positive affine rescaling of each
// objective and a reorder of the candidate points.

std::vector<search::Objectives> randomObjectiveSet(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  // A coarse grid forces exact ties and duplicates; odd seeds use a
  // fine grid for near-general position.
  const std::uint64_t grid = seed % 2 == 0 ? 5 : 1000;
  std::vector<search::Objectives> points(60 + rng() % 60);
  for (search::Objectives& p : points) {
    for (double& o : p) o = static_cast<double>(rng() % grid);
  }
  return points;
}

TEST_P(PropertySweep, ParetoDominanceIsAStrictPartialOrder) {
  const std::vector<search::Objectives> points = randomObjectiveSet(seed());
  for (const search::Objectives& a : points) {
    EXPECT_FALSE(search::dominates(a, a));  // irreflexive
  }
  std::mt19937_64 rng(seed() ^ 0xabcdu);
  for (int i = 0; i < 400; ++i) {
    const search::Objectives& a = points[rng() % points.size()];
    const search::Objectives& b = points[rng() % points.size()];
    const search::Objectives& c = points[rng() % points.size()];
    if (search::dominates(a, b)) {
      EXPECT_FALSE(search::dominates(b, a));  // asymmetric
      if (search::dominates(b, c)) {
        EXPECT_TRUE(search::dominates(a, c));  // transitive
      }
    }
  }
}

TEST_P(PropertySweep, ParetoFrontInvariantUnderPositiveAffineRescale) {
  const std::vector<search::Objectives> points = randomObjectiveSet(seed());
  const std::vector<std::size_t> front = search::nonDominatedFront(points);

  std::mt19937_64 rng(seed() ^ 0x5ca1eu);
  const auto scale = [&] { return 0.25 + static_cast<double>(rng() % 16); };
  const auto shift = [&] {
    return static_cast<double>(rng() % 100) - 50.0;
  };
  const double a0 = scale(), b0 = shift();
  const double a1 = scale(), b1 = shift();
  const double a2 = scale(), b2 = shift();
  std::vector<search::Objectives> rescaled = points;
  for (search::Objectives& p : rescaled) {
    p[0] = a0 * p[0] + b0;
    p[1] = a1 * p[1] + b1;
    p[2] = a2 * p[2] + b2;
  }
  EXPECT_EQ(search::nonDominatedFront(rescaled), front)
      << "seed " << seed() << ": positive affine rescaling must not "
      << "change front membership";
}

TEST_P(PropertySweep, ParetoFrontInvariantUnderEnumerationOrderShuffle) {
  const std::vector<search::Objectives> points = randomObjectiveSet(seed());
  const std::vector<std::size_t> front = search::nonDominatedFront(points);

  std::vector<std::size_t> perm(points.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::mt19937_64 rng(seed() ^ 0xf00du);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<search::Objectives> shuffled(points.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    shuffled[i] = points[perm[i]];
  }
  // Map the shuffled front back to original indices; as a set it must
  // equal the original front (duplicates make per-index comparison
  // meaningless, so compare the multiset of objective vectors too).
  std::vector<std::size_t> mappedBack;
  for (const std::size_t i : search::nonDominatedFront(shuffled)) {
    mappedBack.push_back(perm[i]);
  }
  std::sort(mappedBack.begin(), mappedBack.end());
  EXPECT_EQ(mappedBack, front)
      << "seed " << seed() << ": reordering candidates must not change "
      << "front membership";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range(1, 21));

}  // namespace
}  // namespace memx
