// Golden-front regression: exact Pareto fronts for two paper kernels
// over restricted joint spaces, pinned in tests/golden/front_*.csv.
// The searches run with a full-enumeration budget, so the pinned
// fronts are the true fronts of their spaces — robust to GA parameter
// tuning; only a genuine model or search-semantics change moves them,
// and this test then reports the exact per-point delta.
//
// Regenerating (only when such a change is *intended*):
//   MEMX_REGEN_GOLDEN=1 ./build/tests/test_golden_front
// rewrites the corpus in the source tree; commit the diff alongside
// the change that caused it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "memx/kernels/benchmarks.hpp"
#include "memx/search/front_io.hpp"
#include "memx/search/nsga.hpp"

#ifndef MEMX_GOLDEN_DIR
#error "MEMX_GOLDEN_DIR must point at tests/golden"
#endif

namespace memx::search {
namespace {

struct GoldenFront {
  const char* file;
  Kernel kernel;
  DesignSpaceOptions space;
};

/// compress: single-level space with mixed replacement policies.
DesignSpaceOptions compressSpace() {
  DesignSpaceOptions s;
  s.ranges.onChipBytes = 256;
  s.ranges.maxCacheBytes = 256;
  s.ranges.minCacheBytes = 16;
  s.ranges.minLineBytes = 4;
  s.ranges.maxLineBytes = 32;
  s.ranges.maxAssociativity = 2;
  s.ranges.maxTiling = 4;
  s.replacements = {ReplacementPolicy::LRU, ReplacementPolicy::FIFO};
  s.writePolicies = {WritePolicy::WriteBack};
  return s;
}

/// matadd: joint space with both write policies, layout sweep, and an
/// optional L2.
DesignSpaceOptions mataddSpace() {
  DesignSpaceOptions s;
  s.ranges.onChipBytes = 128;
  s.ranges.maxCacheBytes = 128;
  s.ranges.minCacheBytes = 16;
  s.ranges.minLineBytes = 4;
  s.ranges.maxLineBytes = 16;
  s.ranges.maxAssociativity = 2;
  s.ranges.maxTiling = 2;
  s.writePolicies = {WritePolicy::WriteBack, WritePolicy::WriteThrough};
  s.sweepLayout = true;
  s.l2CapacityBytes = {512};
  return s;
}

std::vector<GoldenFront> goldenFronts() {
  std::vector<GoldenFront> fronts;
  fronts.push_back({"front_compress.csv", compressKernel(), compressSpace()});
  fronts.push_back(
      {"front_matadd.csv", matrixAddKernel(6, 1), mataddSpace()});
  return fronts;
}

std::vector<FrontRow> computeFront(const GoldenFront& g) {
  SearchOptions options;
  options.seed = 7;
  options.populationSize = 16;
  options.generations = 2;
  options.space = g.space;
  // Full-enumeration budget: the mop-up makes the front exact, so the
  // pinned corpus does not depend on the GA trajectory at all.
  options.maxEvaluations = DesignSpace(g.space).size();
  const SearchResult result =
      Explorer{ExploreOptions{}}.searchPareto(g.kernel, options);
  EXPECT_TRUE(result.exact) << g.file;
  std::vector<FrontRow> rows;
  rows.reserve(result.front.size());
  for (const SearchPoint& p : result.front) {
    rows.push_back(toFrontRow(result.workload, p));
  }
  return rows;
}

std::string rowLabel(const FrontRow& r) {
  return r.workload + "/C" + std::to_string(r.cacheBytes) + "L" +
         std::to_string(r.lineBytes) + "S" +
         std::to_string(r.associativity) + "B" + std::to_string(r.tiling) +
         "|" + r.replacement + "|" + r.writePolicy + "|" + r.layout +
         "|L2:" + std::to_string(r.l2Bytes);
}

/// Exact comparison that prints the delta: the front is pinned bit for
/// bit (the CSV round-trips doubles exactly).
void expectExact(const char* field, const std::string& label,
                 double golden, double current) {
  EXPECT_EQ(current, golden)
      << label << " " << field << " drifted: golden=" << golden
      << " current=" << current << " delta=" << (current - golden);
}

TEST(GoldenFront, ExactFrontsMatchCorpus) {
  const bool regen = std::getenv("MEMX_REGEN_GOLDEN") != nullptr;
  for (const GoldenFront& g : goldenFronts()) {
    const std::vector<FrontRow> current = computeFront(g);
    ASSERT_FALSE(current.empty()) << g.file;
    const std::string path = std::string(MEMX_GOLDEN_DIR) + "/" + g.file;

    if (regen) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      writeFrontCsv(out, current);
      continue;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden front " << path
                           << " (regenerate with MEMX_REGEN_GOLDEN=1)";
    const std::vector<FrontRow> golden = readFrontCsv(in);
    ASSERT_EQ(golden.size(), current.size())
        << g.file << ": front size changed";
    for (std::size_t i = 0; i < golden.size(); ++i) {
      const FrontRow& want = golden[i];
      const FrontRow& got = current[i];
      ASSERT_EQ(rowLabel(want), rowLabel(got))
          << g.file << ": front membership changed at point " << i;
      const std::string label = rowLabel(got);
      expectExact("energy_nj", label, want.objectives[0],
                  got.objectives[0]);
      expectExact("cycles", label, want.objectives[1], got.objectives[1]);
      expectExact("size_rbe", label, want.objectives[2],
                  got.objectives[2]);
    }
  }
}

}  // namespace
}  // namespace memx::search
