// Locale-independence regression suite.
//
// Every test runs under a hostile global locale whose numpunct facet
// uses ',' as the decimal point and '.' as a thousands separator with
// 3-digit grouping (the de_DE shape, built from a custom facet because
// the container ships no named locales). Machine-read output must stay
// byte-identical to the classic locale, and parsers must keep accepting
// '.'-decimal input.
#include <gtest/gtest.h>

#include <locale>
#include <sstream>
#include <string>

#include "memx/core/explorer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/report/result_io.hpp"
#include "memx/search/front_io.hpp"
#include "memx/serve/json.hpp"
#include "memx/trace/din_io.hpp"
#include "memx/trace/trace.hpp"
#include "memx/util/numeric_io.hpp"

namespace memx {
namespace {

/// de_DE-shaped numeric punctuation: ',' decimal point, '.' grouping.
class GermanNumpunct : public std::numpunct<char> {
protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// Installs the hostile locale globally for the duration of each test,
/// so any stream constructed inside the code under test inherits it.
class HostileLocaleTest : public ::testing::Test {
protected:
  void SetUp() override {
    previous_ = std::locale::global(
        std::locale(std::locale::classic(), new GermanNumpunct));
    // Sanity: an unguarded stream really does corrupt numeric output.
    std::ostringstream probe;
    probe << 1234.5;
    ASSERT_EQ(probe.str(), "1.234,5") << "hostile locale not in effect";
  }
  void TearDown() override { std::locale::global(previous_); }

private:
  std::locale previous_{};
};

TEST_F(HostileLocaleTest, FormatDouble17UsesDotDecimalPoint) {
  EXPECT_EQ(formatDouble17(0.5), "0.5");
  EXPECT_EQ(formatDouble17(1234567.25), "1234567.25");
  EXPECT_EQ(formatDouble17(1e300).find(','), std::string::npos);
  // Round-trip exactness survives the hostile locale.
  const double v = 0.1 + 0.2;
  const auto parsed = parseDoubleText(formatDouble17(v));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, v);
}

TEST_F(HostileLocaleTest, ParsersStayLocaleBlind) {
  // '.'-decimal input parses; ','-decimal and grouped input do not
  // (from_chars never honors the global locale).
  ASSERT_TRUE(parseDoubleText("3.14").has_value());
  EXPECT_DOUBLE_EQ(*parseDoubleText("3.14"), 3.14);
  EXPECT_FALSE(parseDoubleText("3,14").has_value());
  EXPECT_FALSE(parseDoubleText("1.234,5").has_value());
  EXPECT_FALSE(parseDoubleText("nan").has_value());
  EXPECT_FALSE(parseDoubleText("1e999").has_value());
  ASSERT_TRUE(parseUnsignedText("1234", 1u << 20).has_value());
  EXPECT_EQ(*parseUnsignedText("1234", 1u << 20), 1234u);
  EXPECT_FALSE(parseUnsignedText("1.234", 1u << 20).has_value());
  EXPECT_FALSE(parseUnsignedText("12345", 100).has_value());
}

TEST_F(HostileLocaleTest, ClassicLocaleGuardScopesAndRestores) {
  std::ostringstream os;
  os << 1234.5;
  EXPECT_EQ(os.str(), "1.234,5");
  os.str("");
  {
    ClassicLocaleGuard guard(os);
    os << 1234.5;
    EXPECT_EQ(os.str(), "1234.5");
  }
  os.str("");
  os << 1234.5;  // guard restored the hostile locale
  EXPECT_EQ(os.str(), "1.234,5");
}

[[nodiscard]] ExplorationResult smallResult() {
  ExploreOptions o;
  o.ranges.maxCacheBytes = 64;
  o.ranges.maxLineBytes = 16;
  o.ranges.maxAssociativity = 2;
  o.ranges.maxTiling = 2;
  return Explorer(o).explore(matrixAddKernel(8, 1));
}

TEST_F(HostileLocaleTest, ResultCsvRoundTripsBitExactly) {
  const ExplorationResult result = smallResult();
  const std::string csv = toCsvString(result);
  // No grouped thousands and no ','-decimals: every comma in the CSV is
  // a field separator, so the round-trip reproduces every number.
  const ExplorationResult back = fromCsvString(csv);
  ASSERT_EQ(back.points.size(), result.points.size());
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    EXPECT_EQ(back.points[i].key, result.points[i].key);
    EXPECT_EQ(back.points[i].missRate, result.points[i].missRate);
    EXPECT_EQ(back.points[i].cycles, result.points[i].cycles);
    EXPECT_EQ(back.points[i].energyNj, result.points[i].energyNj);
  }
  EXPECT_EQ(toCsvString(back), csv);
}

TEST_F(HostileLocaleTest, ResultJsonStaysMachineParseable) {
  const ExplorationResult result = smallResult();
  std::ostringstream os;
  writeResultJson(os, result);
  // Strict RFC 8259 parse: a ','-decimal or '.'-grouped number anywhere
  // in the document would be a syntax error.
  EXPECT_NO_THROW((void)serve::JsonValue::parse(os.str())) << os.str();
}

TEST_F(HostileLocaleTest, FrontCsvRoundTripsBitExactly) {
  search::FrontRow row;
  row.workload = "w";
  row.cacheBytes = 4096;
  row.lineBytes = 16;
  row.associativity = 2;
  row.tiling = 4;
  row.replacement = "LRU";
  row.writePolicy = "write-back";
  row.layout = "opt";
  row.objectives = {123456.78125, 9876543.0, 40960.5};
  std::ostringstream os;
  search::writeFrontCsv(os, {row});
  EXPECT_EQ(os.str().find(",5"), std::string::npos)
      << "','-decimal leaked into front CSV: " << os.str();
  std::istringstream is(os.str());
  const std::vector<search::FrontRow> back = search::readFrontCsv(is);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].cacheBytes, 4096u);
  EXPECT_EQ(back[0].objectives, row.objectives);
}

TEST_F(HostileLocaleTest, DinOutputHasNoGroupSeparators) {
  Trace trace;
  for (std::uint64_t i = 0; i < 4; ++i) {
    trace.push(readRef(0x123456 + i * 4096));
  }
  std::ostringstream os;
  writeDin(os, trace);
  EXPECT_EQ(os.str().find('.'), std::string::npos) << os.str();
  // Round-trip through the strict din parser.
  std::istringstream is(os.str());
  std::string line;
  std::size_t lineNo = 0;
  std::size_t parsed = 0;
  while (std::getline(is, line)) {
    if (parseDinLine(line, ++lineNo).has_value()) ++parsed;
  }
  EXPECT_EQ(parsed, trace.size());
}

TEST_F(HostileLocaleTest, RunReportJsonAndChromeTraceStayParseable) {
  obs::Recorder recorder;
  {
    obs::ScopedSpan span(&recorder, "phase.locale");
    recorder.counter("items").add(1234567);
  }
  const obs::RunReport report = recorder.report();
  std::ostringstream json;
  report.writeJson(json);
  EXPECT_NO_THROW((void)serve::JsonValue::parse(json.str())) << json.str();
  std::ostringstream chrome;
  report.writeChromeTrace(chrome);
  EXPECT_NO_THROW((void)serve::JsonValue::parse(chrome.str()))
      << chrome.str();
}

TEST_F(HostileLocaleTest, JsonValueDumpAndParseIgnoreGlobalLocale) {
  serve::JsonValue::Object o;
  o.emplace("big", serve::JsonValue(1234567.5));
  o.emplace("int", serve::JsonValue(9876543));
  const std::string text = serve::JsonValue(std::move(o)).dump();
  EXPECT_EQ(text, R"({"big":1234567.5,"int":9876543})");
  const serve::JsonValue back = serve::JsonValue::parse(text);
  EXPECT_DOUBLE_EQ(back.asObject().at("big").asNumber(), 1234567.5);
}

}  // namespace
}  // namespace memx
