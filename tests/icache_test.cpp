#include <gtest/gtest.h>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/core/selection.hpp"
#include "memx/core/trace_explorer.hpp"
#include "memx/icache/ifetch_model.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/trace/trace_stats.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(IFetch, LayoutValidation) {
  InstructionLayout layout;
  layout.instrBytes = 0;
  EXPECT_THROW(layout.validate(), ContractViolation);
  layout = InstructionLayout{};
  layout.instrPerAccess = 0;
  EXPECT_THROW(layout.validate(), ContractViolation);
}

TEST(IFetch, BodySizeFollowsKernelBody) {
  const InstructionLayout layout;
  // Compress: 5 accesses * 3 + 4 arithmetic = 19 instructions.
  EXPECT_EQ(layout.bodyInstructions(compressKernel()), 19u);
  // Matrix add: 3 accesses * 3 + 4 = 13.
  EXPECT_EQ(layout.bodyInstructions(matrixAddKernel()), 13u);
}

TEST(IFetch, CodeBytesIncludeLoopOverhead) {
  const InstructionLayout layout;
  const Kernel k = matrixAddKernel();  // 2-deep nest
  EXPECT_EQ(layout.codeBytes(k), (13u + 2u * 3u) * 4u);
}

TEST(IFetch, TraceCountsMatchStructure) {
  const InstructionLayout layout;
  const Kernel k = matrixAddKernel(4, 1);  // 4x4 iterations
  const Trace t = generateIFetchTrace(k, layout);
  // Headers: outer loop restarts 4 times (3 instrs each), inner level
  // fetches its header on every iteration (16 x 3), body 16 x 13.
  EXPECT_EQ(t.size(), 4u * 3u + 16u * 3u + 16u * 13u);
  for (const MemRef& r : t) {
    EXPECT_EQ(r.type, AccessType::Read);
    EXPECT_EQ(r.size, 4u);
  }
}

TEST(IFetch, AddressesStayInsideCodeRegion) {
  const InstructionLayout layout;
  const Kernel k = compressKernel();
  const Trace t = generateIFetchTrace(k, layout);
  const TraceStats s = computeStats(t);
  EXPECT_GE(s.minAddr, layout.codeBase);
  EXPECT_LT(s.maxAddr, layout.codeBase + layout.codeBytes(k));
}

TEST(IFetch, TinyICacheCapturesTheLoop) {
  // Once the I-cache holds the whole body, only cold misses remain —
  // the classic embedded-loop result.
  const InstructionLayout layout;
  const Kernel k = compressKernel();
  const Trace t = generateIFetchTrace(k, layout);
  CacheConfig big;
  big.sizeBytes = 128;  // code is (19 + 6) * 4 = 100 bytes
  big.lineBytes = 16;
  const CacheStats s = simulateTrace(big, t);
  EXPECT_EQ(s.misses(), (computeStats(t, 16).uniqueLines));
  EXPECT_LT(s.missRate(), 0.001);
}

TEST(IFetch, TooSmallICacheThrashes) {
  const InstructionLayout layout;
  const Kernel k = compressKernel();
  const Trace t = generateIFetchTrace(k, layout);
  CacheConfig tiny;
  tiny.sizeBytes = 32;  // body alone is 76 bytes
  tiny.lineBytes = 8;
  const CacheStats s = simulateTrace(tiny, t);
  EXPECT_GT(s.missRate(), 0.5);
}

TEST(IFetch, ExploreTraceFindsSmallestFittingCache) {
  const InstructionLayout layout;
  const Kernel k = compressKernel();
  const Trace t = generateIFetchTrace(k, layout);
  ExploreOptions o;
  o.ranges.minCacheBytes = 32;
  o.ranges.maxCacheBytes = 1024;
  o.ranges.sweepAssociativity = false;
  const ExplorationResult r = exploreTrace("icache-compress", t, o);
  const auto best = minEnergyPoint(r.points);
  ASSERT_TRUE(best.has_value());
  // The code is ~100 bytes: a 128-byte I-cache is the energy optimum
  // (everything bigger burns cell energy for no miss benefit).
  EXPECT_EQ(best->key.cacheBytes, 128u);
}

TEST(TraceExplorer, PointsCarryUnitTiling) {
  ExploreOptions o;
  o.ranges.maxCacheBytes = 64;
  const Trace t = generateIFetchTrace(matrixAddKernel(4, 1), {});
  const ExplorationResult r = exploreTrace("x", t, o);
  ASSERT_FALSE(r.points.empty());
  for (const DesignPoint& p : r.points) {
    EXPECT_EQ(p.key.tiling, 1u);
    EXPECT_EQ(p.accesses, t.size());
  }
}

TEST(TraceExplorer, MatchesDirectSimulation) {
  const Trace t = generateIFetchTrace(compressKernel(), {});
  ExploreOptions o;
  CacheConfig c;
  c.sizeBytes = 64;
  c.lineBytes = 8;
  const DesignPoint p = evaluateTracePoint(t, c, o);
  CacheConfig sim = c;
  sim.writePolicy = o.writePolicy;
  EXPECT_DOUBLE_EQ(p.missRate, simulateTrace(sim, t).missRate());
}

}  // namespace
}  // namespace memx
