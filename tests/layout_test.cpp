#include <gtest/gtest.h>

#include "memx/cachesim/miss_classifier.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace memx {
namespace {

CacheConfig dm(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  return c;
}

TEST(OffChipAssign, PaperCompressExample) {
  // Section 4.1: byte elements, cache size 8, line size 2 => 4 lines.
  // The paper pads so a[1][0] lands at address 36 => cache line 2.
  const Kernel k = compressKernel(32, 1);
  const AssignmentPlan plan = assignConflictFree(k, dm(8, 2));
  ASSERT_EQ(plan.arrays.size(), 1u);
  EXPECT_TRUE(plan.complete);
  EXPECT_EQ(plan.arrays[0].baseAddr, 0u);
  EXPECT_EQ(plan.arrays[0].rowPitchBytes, 36u);
  // Row r starts at 36r; row 1 = 36 -> line 18 mod 4 = 2.
  const std::int64_t row1[] = {1, 0};
  EXPECT_EQ(plan.layout.address(0, row1), 36u);
}

TEST(OffChipAssign, PaperMatrixAddExample) {
  // Example 2: 6x6 byte arrays, line 2; minimal 3-line placement puts
  // a at 0, b at 38, c at 76. Our modulus is the (power-of-two) set
  // count, so we verify staggering rather than the literal addresses,
  // then check the literal addresses with a 3-slot helper cache of 8
  // lines where the paper's arithmetic still holds.
  const Kernel k = matrixAddKernel(6, 1);
  const AssignmentPlan plan = assignConflictFree(k, dm(16, 2));  // 8 lines
  EXPECT_TRUE(plan.complete);
  const std::int64_t origin[] = {0, 0};
  const std::uint64_t la =
      plan.layout.address(0, origin) / 2 % 8;
  const std::uint64_t lb =
      plan.layout.address(1, origin) / 2 % 8;
  const std::uint64_t lc =
      plan.layout.address(2, origin) / 2 % 8;
  EXPECT_EQ(la, 0u);
  EXPECT_EQ(lb, 1u);
  EXPECT_EQ(lc, 2u);
}

TEST(OffChipAssign, MatrixAddBasesAreMinimallyPadded) {
  const Kernel k = matrixAddKernel(6, 1);
  const AssignmentPlan plan = assignConflictFree(k, dm(16, 2));
  // a occupies [0, 36); b must start at the first address >= 36 whose
  // line slot is 1 => 34 is below 36, so 34+16=50? No: slots repeat every
  // 16 bytes (8 lines x 2): first candidate >= 36 with (addr/2)%8 == 1 is
  // 34 + 16 = 50.
  EXPECT_EQ(plan.arrays[0].baseAddr, 0u);
  EXPECT_EQ(plan.arrays[1].baseAddr, 50u);
}

TEST(OffChipAssign, SequentialLayoutIsTight) {
  const Kernel k = matrixAddKernel(6, 1);
  const MemoryLayout layout = sequentialLayout(k);
  const std::int64_t origin[] = {0, 0};
  EXPECT_EQ(layout.address(0, origin), 0u);
  EXPECT_EQ(layout.address(1, origin), 36u);
  EXPECT_EQ(layout.address(2, origin), 72u);
}

TEST(OffChipAssign, EliminatesConflictMissesOnCompress) {
  // Word-granular rows (128 bytes) alias in a 64-byte cache.
  const Kernel k = compressKernel(32, 4);
  const CacheConfig cache = dm(64, 8);
  const MissBreakdown unopt =
      classifyMisses(cache, generateTrace(k, sequentialLayout(k)));
  const AssignmentPlan plan = assignConflictFree(k, cache);
  const MissBreakdown opt =
      classifyMisses(cache, generateTrace(k, plan.layout));
  EXPECT_LT(opt.conflict, unopt.conflict / 10 + 1);
  EXPECT_LT(opt.missRate(), unopt.missRate());
}

TEST(OffChipAssign, EliminatesConflictMissesOnDequant) {
  // Three same-shaped arrays accessed in lockstep: the tight layout
  // aliases them badly in a small cache.
  const Kernel k = dequantKernel();
  const CacheConfig cache = dm(64, 8);
  const MissBreakdown unopt =
      classifyMisses(cache, generateTrace(k, sequentialLayout(k)));
  const AssignmentPlan plan = assignConflictFree(k, cache);
  const MissBreakdown opt =
      classifyMisses(cache, generateTrace(k, plan.layout));
  EXPECT_GT(unopt.conflictRate(), 0.4);
  EXPECT_EQ(opt.conflict, 0u);
}

TEST(OffChipAssign, PlanReportsPadding) {
  const Kernel k = dequantKernel();
  const AssignmentPlan plan = assignConflictFree(k, dm(64, 8));
  EXPECT_EQ(plan.totalPaddingBytes(),
            plan.arrays[0].paddingBytes + plan.arrays[1].paddingBytes +
                plan.arrays[2].paddingBytes);
}

TEST(OffChipAssign, GroupSlotsAreDistinctWhenComplete) {
  const Kernel k = sorKernel();
  const AssignmentPlan plan = assignConflictFree(k, dm(128, 8));
  ASSERT_TRUE(plan.complete);
  for (std::size_t i = 0; i < plan.groupSlots.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.groupSlots.size(); ++j) {
      EXPECT_NE(plan.groupSlots[i], plan.groupSlots[j]);
    }
  }
}

TEST(OffChipAssign, TooSmallCacheFallsBackIncomplete) {
  // 2 lines cannot stagger compress's 4 required lines.
  const Kernel k = compressKernel();
  const AssignmentPlan plan = assignConflictFree(k, dm(8, 4));
  EXPECT_FALSE(plan.complete);
}

TEST(OffChipAssign, LayoutCarriesOverToTiledKernels) {
  // The layout computed on the untiled kernel stays valid for any tiled
  // variant (arrays are unchanged); the tiled trace under the optimized
  // layout should have no more conflicts than under the tight one.
  const Kernel k = dequantKernel();
  const CacheConfig cache = dm(64, 8);
  const AssignmentPlan plan = assignConflictFree(k, cache);
  // Generate the tiled trace through both layouts via xform-free path:
  // (tiling preserves the access multiset; conflicts depend on order, so
  // just validate addresses stay in the padded regions).
  const Trace t = generateTrace(k, plan.layout);
  const std::uint64_t end = plan.layout.endAddr(k);
  for (const MemRef& r : t) {
    EXPECT_LT(r.addr + r.size, end + 1);
  }
}

/// Property sweep: whenever the plan reports complete, the optimized
/// layout has zero conflict misses across cache geometries.
class ConflictFreeSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ConflictFreeSweep, CompleteImpliesNoConflictMisses) {
  const auto [size, line] = GetParam();
  const CacheConfig cache =
      dm(static_cast<std::uint32_t>(size), static_cast<std::uint32_t>(line));
  for (const Kernel& k :
       {matrixAddKernel(16, 4), dequantKernel(), pdeKernel()}) {
    const AssignmentPlan plan = assignConflictFree(k, cache);
    if (!plan.complete) continue;
    const MissBreakdown b =
        classifyMisses(cache, generateTrace(k, plan.layout));
    EXPECT_EQ(b.conflict, 0u)
        << k.name << " " << cache.label();
  }
}

INSTANTIATE_TEST_SUITE_P(Caches, ConflictFreeSweep,
                         ::testing::Values(std::make_pair(64, 8),
                                           std::make_pair(128, 8),
                                           std::make_pair(128, 16),
                                           std::make_pair(256, 16),
                                           std::make_pair(512, 32)));

}  // namespace
}  // namespace memx
