#include <gtest/gtest.h>

#include "memx/cachesim/hierarchy.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/generators.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig cfg(std::uint32_t size, std::uint32_t line,
                std::uint32_t ways = 1) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  c.associativity = ways;
  return c;
}

TEST(Hierarchy, RejectsInvertedGeometry) {
  EXPECT_THROW(CacheHierarchy(cfg(256, 16), cfg(64, 16)),
               ContractViolation);
  EXPECT_THROW(CacheHierarchy(cfg(64, 16), cfg(256, 8)),
               ContractViolation);
}

TEST(Hierarchy, L1HitNeverTouchesL2) {
  CacheHierarchy h(cfg(64, 8), cfg(512, 16));
  h.access(readRef(0));  // cold: both levels miss
  h.access(readRef(0));  // L1 hit
  h.access(readRef(4));  // L1 hit (same line)
  EXPECT_EQ(h.stats().l1.hits(), 2u);
  EXPECT_EQ(h.stats().l2.accesses(), 1u);
}

TEST(Hierarchy, L2CatchesL1CapacityMisses) {
  // Working set fits L2 but not L1: second round hits in L2.
  CacheHierarchy h(cfg(64, 8), cfg(1024, 8));
  const Trace t = loopingTrace(0, 64, 2, 4);  // 256 B set, 2 rounds
  h.run(t);
  EXPECT_GT(h.stats().l1.misses(), 32u);  // L1 thrashes
  // Only the cold fills leave the chip.
  EXPECT_EQ(h.stats().mainReads, 32u);
  EXPECT_LT(h.stats().globalMissRate(), h.stats().l1.missRate());
}

TEST(Hierarchy, GlobalMissRateEqualsL1WhenL2Useless) {
  // L2 == L1 size: everything L1 misses, L2 misses too (same contents).
  CacheHierarchy h(cfg(64, 8), cfg(64, 8));
  const Trace t = randomTrace(0, 65536, 2000, 3);
  h.run(t);
  EXPECT_NEAR(h.stats().globalMissRate(), h.stats().l1.missRate(), 0.02);
}

TEST(Hierarchy, DirtyVictimsAbsorbedByL2) {
  CacheHierarchy h(cfg(16, 8), cfg(256, 8));
  h.access(writeRef(0));    // dirty line 0 in L1
  h.access(writeRef(16));   // set 0 conflict? 16B L1, 8B lines: 2 sets.
  h.access(writeRef(32));   // evicts dirty line 0 -> L2 write
  h.access(writeRef(64));   // evicts dirty line 32
  EXPECT_GT(h.stats().l1.writebacks, 0u);
  EXPECT_GT(h.stats().l2.writes, 0u);
  // L2 holds the victims: nothing dirty left the chip yet.
  EXPECT_EQ(h.stats().mainWrites, 0u);
}

TEST(Hierarchy, ResetClearsEverything) {
  CacheHierarchy h(cfg(64, 8), cfg(256, 16));
  h.run(stridedTrace(0, 64, 8));
  h.reset();
  EXPECT_EQ(h.stats().l1.accesses(), 0u);
  EXPECT_EQ(h.stats().mainReads, 0u);
}

TEST(Hierarchy, TimingModelAccumulates) {
  HierarchyStats s;
  s.l1.reads = 100;
  s.l1.readHits = 90;
  s.l1.readMisses = 10;
  s.l2.reads = 10;
  s.l2.readHits = 8;
  s.l2.readMisses = 2;
  const HierarchyTiming t;
  EXPECT_DOUBLE_EQ(t.cycles(s), 100 * 1.0 + 10 * 8.0 + 2 * 40.0);
}

TEST(Hierarchy, L2ReducesOffChipTrafficOnKernels) {
  const Trace t = generateTrace(sorKernel());
  CacheHierarchy with(cfg(64, 8), cfg(1024, 16));
  with.run(t);
  CacheSim without(cfg(64, 8));
  without.run(t);
  EXPECT_LT(with.stats().mainReads, without.stats().lineFills);
}

/// Property: the L2 never sees more accesses than L1 misses + L1
/// writebacks.
class HierarchyTraffic : public ::testing::TestWithParam<int> {};

TEST_P(HierarchyTraffic, L2TrafficBounded) {
  const int seed = GetParam();
  CacheHierarchy h(cfg(64, 8), cfg(512, 16));
  h.run(randomTrace(0, 8192, 3000, static_cast<std::uint64_t>(seed)));
  EXPECT_LE(h.stats().l2.accesses(),
            h.stats().l1.misses() + h.stats().l1.writebacks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyTraffic,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace memx
