#include <gtest/gtest.h>

#include <string>

#include "memx/core/selection.hpp"
#include "memx/core/sensitivity.hpp"
#include "memx/energy/sram_catalog.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

ExploreOptions smallSweep() {
  ExploreOptions o;
  o.ranges.minCacheBytes = 16;
  o.ranges.maxCacheBytes = 256;
  o.ranges.minLineBytes = 4;
  o.ranges.maxLineBytes = 16;
  o.ranges.sweepAssociativity = false;
  o.ranges.sweepTiling = false;
  return o;
}

TEST(Sensitivity, EmSweepMovesTheSelection) {
  // Figure 1's lesson as a property: under a cheap main memory the
  // min-energy cache is no bigger than under an expensive one.
  const Kernel k = compressKernel();
  const double values[] = {kEmLow2MbitNj, kEmCypress2MbitNj,
                           kEmHigh16MbitNj};
  const auto rows = sweepEmSensitivity(k, values, smallSweep());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_LE(rows.front().minEnergyKey.cacheBytes,
            rows.back().minEnergyKey.cacheBytes);
  // Energy of the chosen point grows with Em.
  EXPECT_LT(rows.front().minEnergyNj, rows.back().minEnergyNj);
}

TEST(Sensitivity, RowsCarryParameterValues) {
  const double values[] = {2.0, 4.0};
  const auto rows = sweepEmSensitivity(dequantKernel(8), values,
                                       smallSweep());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].parameterValue, 2.0);
  EXPECT_DOUBLE_EQ(rows[1].parameterValue, 4.0);
}

TEST(Sensitivity, GenericMutatorSweepsAnyParameter) {
  const Kernel k = matrixAddKernel(8, 1);
  const double activities[] = {0.1, 0.9};
  const auto rows = sweepSensitivity(
      k, activities,
      [](ExploreOptions& o, double v) { o.energy.dataActivity = v; },
      smallSweep());
  ASSERT_EQ(rows.size(), 2u);
  // Higher bus activity means higher miss energy everywhere.
  EXPECT_LE(rows[0].minEnergyNj, rows[1].minEnergyNj);
}

TEST(Sensitivity, MinCycleSelectionIndependentOfEnergyParams) {
  const Kernel k = sorKernel();
  const double values[] = {1.0, 50.0};
  const auto rows = sweepEmSensitivity(k, values, smallSweep());
  // Em only affects energy; the min-cycle choice must not move.
  EXPECT_EQ(rows[0].minCycleKey, rows[1].minCycleKey);
  EXPECT_DOUBLE_EQ(rows[0].minCycles, rows[1].minCycles);
}

TEST(Sensitivity, StabilityPredicate) {
  SensitivityRow a;
  a.minEnergyKey = ConfigKey{64, 8, 1, 1};
  SensitivityRow b = a;
  EXPECT_TRUE(selectionStable(std::vector<SensitivityRow>{a, b}));
  b.minEnergyKey = ConfigKey{128, 8, 1, 1};
  EXPECT_FALSE(selectionStable(std::vector<SensitivityRow>{a, b}));
  EXPECT_TRUE(selectionStable(std::vector<SensitivityRow>{}));
}

TEST(Sensitivity, EmptySweepErrorNamesTheParameterValue) {
  // Regression: an empty exploration used to die on a generic
  // MEMX_ENSURES postcondition; now it raises EmptySweepError carrying
  // the offending parameter value (and workload) in the message.
  ExplorationResult empty;
  empty.workload = "compress";
  try {
    (void)summarizeSweep(3.5, empty);
    FAIL() << "should have thrown";
  } catch (const EmptySweepError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3.5"), std::string::npos) << what;
    EXPECT_NE(what.find("compress"), std::string::npos) << what;
    EXPECT_NE(what.find("no design points"), std::string::npos) << what;
  }
}

TEST(Sensitivity, SummarizeSweepMatchesSelectionHelpers) {
  const Kernel k = dequantKernel(8);
  const Explorer ex(smallSweep());
  const ExplorationResult result = ex.explore(k);
  const SensitivityRow row = summarizeSweep(7.0, result);
  EXPECT_DOUBLE_EQ(row.parameterValue, 7.0);
  EXPECT_EQ(row.minEnergyKey, minEnergyPoint(result.points)->key);
  EXPECT_EQ(row.minCycleKey, minCyclePoint(result.points)->key);
}

TEST(Sensitivity, ParallelRoutingMatchesSerialBaseline) {
  // sweepSensitivity now runs each value through exploreParallel; the
  // engine is bit-identical to serial exploration, so the rows must be
  // exactly what a hand-rolled serial sweep computes.
  const Kernel k = compressKernel();
  const double values[] = {2.0, 8.0};
  const auto rows = sweepEmSensitivity(k, values, smallSweep());
  ASSERT_EQ(rows.size(), 2u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    ExploreOptions o = smallSweep();
    o.energy.emNj = values[i];
    const ExplorationResult serial = Explorer(o).explore(k);
    const SensitivityRow expected = summarizeSweep(values[i], serial);
    EXPECT_EQ(rows[i].minEnergyKey, expected.minEnergyKey);
    EXPECT_DOUBLE_EQ(rows[i].minEnergyNj, expected.minEnergyNj);
    EXPECT_EQ(rows[i].minCycleKey, expected.minCycleKey);
    EXPECT_DOUBLE_EQ(rows[i].minCycles, expected.minCycles);
  }
}

TEST(Sensitivity, RecorderObservesEveryValueSweep) {
  obs::Recorder recorder;
  const double values[] = {1.0, 4.0, 16.0};
  const auto rows = sweepEmSensitivity(compressKernel(), values,
                                       smallSweep(), &recorder, 2);
  ASSERT_EQ(rows.size(), 3u);
  const obs::RunReport report = recorder.report();
  const obs::PhaseStat* perValue = report.phase("sensitivity.value");
  ASSERT_NE(perValue, nullptr);
  EXPECT_EQ(perValue->count, 3u);
  const obs::PhaseStat* parallel = report.phase("exploreParallel");
  ASSERT_NE(parallel, nullptr);
  EXPECT_EQ(parallel->count, 3u);
  EXPECT_GT(report.counter("sweep.points"), 0u);
}

TEST(Sensitivity, RejectsNullMutator) {
  const double values[] = {1.0};
  EXPECT_THROW(
      sweepSensitivity(compressKernel(), values, OptionsMutator{},
                       smallSweep()),
      ContractViolation);
}

}  // namespace
}  // namespace memx
