#include <gtest/gtest.h>

#include "memx/core/sensitivity.hpp"
#include "memx/energy/sram_catalog.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

ExploreOptions smallSweep() {
  ExploreOptions o;
  o.ranges.minCacheBytes = 16;
  o.ranges.maxCacheBytes = 256;
  o.ranges.minLineBytes = 4;
  o.ranges.maxLineBytes = 16;
  o.ranges.sweepAssociativity = false;
  o.ranges.sweepTiling = false;
  return o;
}

TEST(Sensitivity, EmSweepMovesTheSelection) {
  // Figure 1's lesson as a property: under a cheap main memory the
  // min-energy cache is no bigger than under an expensive one.
  const Kernel k = compressKernel();
  const double values[] = {kEmLow2MbitNj, kEmCypress2MbitNj,
                           kEmHigh16MbitNj};
  const auto rows = sweepEmSensitivity(k, values, smallSweep());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_LE(rows.front().minEnergyKey.cacheBytes,
            rows.back().minEnergyKey.cacheBytes);
  // Energy of the chosen point grows with Em.
  EXPECT_LT(rows.front().minEnergyNj, rows.back().minEnergyNj);
}

TEST(Sensitivity, RowsCarryParameterValues) {
  const double values[] = {2.0, 4.0};
  const auto rows = sweepEmSensitivity(dequantKernel(8), values,
                                       smallSweep());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].parameterValue, 2.0);
  EXPECT_DOUBLE_EQ(rows[1].parameterValue, 4.0);
}

TEST(Sensitivity, GenericMutatorSweepsAnyParameter) {
  const Kernel k = matrixAddKernel(8, 1);
  const double activities[] = {0.1, 0.9};
  const auto rows = sweepSensitivity(
      k, activities,
      [](ExploreOptions& o, double v) { o.energy.dataActivity = v; },
      smallSweep());
  ASSERT_EQ(rows.size(), 2u);
  // Higher bus activity means higher miss energy everywhere.
  EXPECT_LE(rows[0].minEnergyNj, rows[1].minEnergyNj);
}

TEST(Sensitivity, MinCycleSelectionIndependentOfEnergyParams) {
  const Kernel k = sorKernel();
  const double values[] = {1.0, 50.0};
  const auto rows = sweepEmSensitivity(k, values, smallSweep());
  // Em only affects energy; the min-cycle choice must not move.
  EXPECT_EQ(rows[0].minCycleKey, rows[1].minCycleKey);
  EXPECT_DOUBLE_EQ(rows[0].minCycles, rows[1].minCycles);
}

TEST(Sensitivity, StabilityPredicate) {
  SensitivityRow a;
  a.minEnergyKey = ConfigKey{64, 8, 1, 1};
  SensitivityRow b = a;
  EXPECT_TRUE(selectionStable(std::vector<SensitivityRow>{a, b}));
  b.minEnergyKey = ConfigKey{128, 8, 1, 1};
  EXPECT_FALSE(selectionStable(std::vector<SensitivityRow>{a, b}));
  EXPECT_TRUE(selectionStable(std::vector<SensitivityRow>{}));
}

TEST(Sensitivity, RejectsNullMutator) {
  const double values[] = {1.0};
  EXPECT_THROW(
      sweepSensitivity(compressKernel(), values, OptionsMutator{},
                       smallSweep()),
      ContractViolation);
}

}  // namespace
}  // namespace memx
