#include <gtest/gtest.h>

#include "memx/kernels/benchmarks.hpp"
#include "memx/mpeg/chained.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig dm(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  return c;
}

TEST(Chained, RejectsEmptyProgram) {
  CompositeProgram empty("none");
  EXPECT_THROW(runChained(empty, dm(64, 8)), ContractViolation);
}

TEST(Chained, SingleKernelSingleTripMatchesCold) {
  CompositeProgram p("solo");
  p.add(dequantKernel(), 1);
  const ChainedRun run = runChained(p, dm(64, 8));
  EXPECT_NEAR(run.warmMissRate(), run.coldAggregateMissRate, 1e-12);
  ASSERT_EQ(run.kernelMissRates.size(), 1u);
  EXPECT_NEAR(run.kernelMissRates[0], run.coldAggregateMissRate, 1e-12);
}

TEST(Chained, RepeatedKernelWarmsUp) {
  // A kernel whose working set fits the cache: the second trip is all
  // hits, so warm << cold.
  CompositeProgram p("hot");
  p.add(matrixAddKernel(8, 1), 8);  // 3 x 64-byte arrays, 8 trips
  const ChainedRun run = runChained(p, dm(512, 8));
  EXPECT_LT(run.warmMissRate(), run.coldAggregateMissRate / 4);
}

TEST(Chained, DisjointAddressSpacesPerKernel) {
  // Two identical kernels must not share arrays: the second kernel's
  // trace misses (cold region) even though the first just ran.
  CompositeProgram p("two");
  p.add(matrixAddKernel(8, 1), 1);
  p.add(matrixAddKernel(8, 1), 1);
  const ChainedRun run = runChained(p, dm(4096, 8));
  ASSERT_EQ(run.kernelMissRates.size(), 2u);
  EXPECT_NEAR(run.kernelMissRates[0], run.kernelMissRates[1], 1e-12);
}

TEST(Chained, TotalsAccumulateAllKernels) {
  CompositeProgram p("pair");
  p.add(matrixAddKernel(8, 1), 2);
  p.add(dequantKernel(8), 3);
  const ChainedRun run = runChained(p, dm(128, 8));
  const std::uint64_t expected =
      2 * matrixAddKernel(8, 1).referenceCount() +
      3 * dequantKernel(8).referenceCount();
  EXPECT_EQ(run.total.accesses(), expected);
}

TEST(Chained, MpegDecoderRuns) {
  const ChainedRun run = runChained(mpegDecoder(), dm(1024, 16));
  EXPECT_EQ(run.kernelMissRates.size(), 9u);
  EXPECT_GT(run.total.accesses(), 0u);
  EXPECT_LE(run.warmMissRate(), 1.0);
}

}  // namespace
}  // namespace memx
