#include <gtest/gtest.h>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"
#include "memx/util/pow2_range.hpp"

namespace memx {
namespace {

TEST(Bits, IsPow2RecognizesPowers) {
  EXPECT_TRUE(isPow2(1));
  EXPECT_TRUE(isPow2(2));
  EXPECT_TRUE(isPow2(64));
  EXPECT_TRUE(isPow2(1ull << 40));
}

TEST(Bits, IsPow2RejectsNonPowers) {
  EXPECT_FALSE(isPow2(0));
  EXPECT_FALSE(isPow2(3));
  EXPECT_FALSE(isPow2(6));
  EXPECT_FALSE(isPow2(36));
}

TEST(Bits, Log2ExactOnPowers) {
  EXPECT_EQ(log2Exact(1), 0u);
  EXPECT_EQ(log2Exact(2), 1u);
  EXPECT_EQ(log2Exact(1024), 10u);
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(7), 2u);
  EXPECT_EQ(log2Floor(8), 3u);
  EXPECT_EQ(log2Floor(9), 3u);
}

TEST(Bits, GrayCodeRoundTrips) {
  for (std::uint64_t v = 0; v < 1000; ++v) {
    EXPECT_EQ(grayDecode(grayEncode(v)), v);
  }
}

TEST(Bits, GrayAdjacentValuesDifferInOneBit) {
  for (std::uint64_t v = 0; v < 1000; ++v) {
    EXPECT_EQ(hammingDistance(grayEncode(v), grayEncode(v + 1)), 1u);
  }
}

TEST(Bits, HammingDistanceCountsDifferingBits) {
  EXPECT_EQ(hammingDistance(0, 0), 0u);
  EXPECT_EQ(hammingDistance(0b1010, 0b0101), 4u);
  EXPECT_EQ(hammingDistance(0xFF, 0x0F), 4u);
}

TEST(Bits, AlignUp) {
  EXPECT_EQ(alignUp(0, 8), 0u);
  EXPECT_EQ(alignUp(1, 8), 8u);
  EXPECT_EQ(alignUp(8, 8), 8u);
  EXPECT_EQ(alignUp(9, 4), 12u);
}

TEST(Pow2Range, InclusiveEndpoints) {
  const auto r = pow2Range(4, 64);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r.front(), 4u);
  EXPECT_EQ(r.back(), 64u);
}

TEST(Pow2Range, SingleElement) {
  const auto r = pow2Range(16, 16);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], 16u);
}

TEST(Pow2Range, TopBitBoundaryTerminates) {
  // Regression: with hi == 2^63 the old overflow guard (`v != hi` on the
  // break) skipped the break on the last iteration, `v <<= 1` wrapped to
  // 0, and the loop appended 0 forever.
  const std::uint64_t top = 1ull << 63;

  const auto single = pow2Range(top, top);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], top);

  const auto pair = pow2Range(1ull << 62, top);
  ASSERT_EQ(pair.size(), 2u);
  EXPECT_EQ(pair[0], 1ull << 62);
  EXPECT_EQ(pair[1], top);

  const auto full = pow2Range(1, top);
  ASSERT_EQ(full.size(), 64u);
  EXPECT_EQ(full.front(), 1u);
  EXPECT_EQ(full.back(), top);
}

TEST(Pow2Range, RejectsNonPowerBounds) {
  EXPECT_THROW(pow2Range(3, 16), ContractViolation);
  EXPECT_THROW(pow2Range(4, 17), ContractViolation);
}

TEST(Pow2Range, RejectsInvertedBounds) {
  EXPECT_THROW(pow2Range(32, 16), ContractViolation);
}

TEST(Contracts, ExpectsThrowsWithContext) {
  try {
    MEMX_EXPECTS(false, "something went wrong");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("something went wrong"), std::string::npos);
    EXPECT_NE(what.find("precondition"), std::string::npos);
  }
}

TEST(Contracts, EnsuresThrowsPostcondition) {
  try {
    MEMX_ENSURES(false, "invariant broken");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("postcondition"), std::string::npos);
  }
}

}  // namespace
}  // namespace memx
