#include <gtest/gtest.h>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/trace/generators.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig dm(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  c.associativity = 1;
  return c;
}

CacheConfig sa(std::uint32_t size, std::uint32_t line, std::uint32_t ways) {
  CacheConfig c = dm(size, line);
  c.associativity = ways;
  return c;
}

TEST(CacheConfig, DerivedGeometry) {
  const CacheConfig c = sa(64, 8, 2);
  EXPECT_EQ(c.numLines(), 8u);
  EXPECT_EQ(c.numSets(), 4u);
  EXPECT_FALSE(c.isFullyAssociative());
}

TEST(CacheConfig, FullyAssociativeDetected) {
  const CacheConfig c = sa(64, 8, 8);
  EXPECT_TRUE(c.isFullyAssociative());
  EXPECT_EQ(c.numSets(), 1u);
}

TEST(CacheConfig, ValidateRejectsNonPow2) {
  CacheConfig c = dm(96, 8);
  EXPECT_THROW(c.validate(), ContractViolation);
  c = dm(64, 12);
  EXPECT_THROW(c.validate(), ContractViolation);
  c = sa(64, 8, 3);
  EXPECT_THROW(c.validate(), ContractViolation);
}

TEST(CacheConfig, ValidateRejectsLineLargerThanCache) {
  EXPECT_THROW(dm(8, 16).validate(), ContractViolation);
}

TEST(CacheConfig, ValidateRejectsTooManyWays) {
  EXPECT_THROW(sa(64, 8, 16).validate(), ContractViolation);
}

TEST(CacheConfig, Label) {
  EXPECT_EQ(dm(64, 8).label(), "C64L8");
  EXPECT_EQ(sa(64, 8, 4).label(), "C64L8S4");
}

TEST(CacheConfig, ParseLabelRoundTrips) {
  for (const CacheConfig& c :
       {dm(64, 8), sa(64, 8, 4), dm(1024, 64), sa(16, 4, 2)}) {
    const CacheConfig parsed = parseCacheLabel(c.label());
    EXPECT_EQ(parsed.sizeBytes, c.sizeBytes);
    EXPECT_EQ(parsed.lineBytes, c.lineBytes);
    EXPECT_EQ(parsed.associativity, c.associativity);
  }
}

TEST(CacheConfig, ParseLabelCaseInsensitive) {
  const CacheConfig c = parseCacheLabel("c128l16s2");
  EXPECT_EQ(c.sizeBytes, 128u);
  EXPECT_EQ(c.lineBytes, 16u);
  EXPECT_EQ(c.associativity, 2u);
}

TEST(CacheConfig, ParseLabelRejectsGarbage) {
  EXPECT_THROW((void)parseCacheLabel(""), ContractViolation);
  EXPECT_THROW((void)parseCacheLabel("64L8"), ContractViolation);
  EXPECT_THROW((void)parseCacheLabel("C64"), ContractViolation);
  EXPECT_THROW((void)parseCacheLabel("C64L8X2"), ContractViolation);
  EXPECT_THROW((void)parseCacheLabel("C64L8S2junk"), ContractViolation);
  EXPECT_THROW((void)parseCacheLabel("C63L8"), ContractViolation);  // not pow2
}

TEST(CacheSim, ColdMissThenHit) {
  CacheSim sim(dm(64, 8));
  EXPECT_FALSE(sim.access(readRef(0)).hit);
  EXPECT_TRUE(sim.access(readRef(0)).hit);
  EXPECT_TRUE(sim.access(readRef(4)).hit);  // same line
  EXPECT_EQ(sim.stats().readMisses, 1u);
  EXPECT_EQ(sim.stats().readHits, 2u);
}

TEST(CacheSim, SpatialLocalityWithinLine) {
  CacheSim sim(dm(64, 16));
  sim.run(stridedTrace(0, 16, 4));  // 64 bytes = 4 lines of 16
  EXPECT_EQ(sim.stats().misses(), 4u);
  EXPECT_EQ(sim.stats().hits(), 12u);
}

TEST(CacheSim, DirectMappedConflict) {
  // Two addresses 64 apart alias in a 64-byte direct-mapped cache.
  CacheSim sim(dm(64, 8));
  sim.run(pingPongTrace(0, 64, 10, 0));
  EXPECT_EQ(sim.stats().misses(), 20u);  // every access evicts the other
}

TEST(CacheSim, TwoWayResolvesPingPong) {
  CacheSim sim(sa(64, 8, 2));
  sim.run(pingPongTrace(0, 64, 10, 0));
  // Both lines fit one set: only the two cold misses remain.
  EXPECT_EQ(sim.stats().misses(), 2u);
  EXPECT_EQ(sim.stats().hits(), 18u);
}

TEST(CacheSim, LruEvictsLeastRecentlyUsed) {
  // Fully-associative 2-way cache of 2 lines; touch A, B, A, C -> B evicted.
  CacheSim sim(sa(16, 8, 2));
  sim.access(readRef(0));    // A
  sim.access(readRef(64));   // B
  sim.access(readRef(0));    // A (refresh)
  sim.access(readRef(128));  // C evicts B
  EXPECT_TRUE(sim.contains(0));
  EXPECT_FALSE(sim.contains(64));
  EXPECT_TRUE(sim.contains(128));
}

TEST(CacheSim, FifoEvictsOldestFill) {
  CacheConfig c = sa(16, 8, 2);
  c.replacement = ReplacementPolicy::FIFO;
  CacheSim sim(c);
  sim.access(readRef(0));    // A filled first
  sim.access(readRef(64));   // B
  sim.access(readRef(0));    // A touched again (FIFO ignores this)
  sim.access(readRef(128));  // C evicts A, not B
  EXPECT_FALSE(sim.contains(0));
  EXPECT_TRUE(sim.contains(64));
  EXPECT_TRUE(sim.contains(128));
}

TEST(CacheSim, WriteBackMarksDirtyAndWritesBackOnEviction) {
  CacheSim sim(dm(16, 8));
  sim.access(writeRef(0));   // miss, fill, dirty
  EXPECT_EQ(sim.stats().writebacks, 0u);
  sim.access(readRef(64));   // evicts dirty line 0 -> writeback
  EXPECT_EQ(sim.stats().writebacks, 1u);
  EXPECT_EQ(sim.stats().memWrites, 0u);
}

TEST(CacheSim, WriteThroughWritesEveryStore) {
  CacheConfig c = dm(64, 8);
  c.writePolicy = WritePolicy::WriteThrough;
  CacheSim sim(c);
  sim.access(writeRef(0));  // miss + allocate + through-write
  sim.access(writeRef(0));  // hit + through-write
  EXPECT_EQ(sim.stats().memWrites, 2u);
  EXPECT_EQ(sim.stats().writebacks, 0u);
}

TEST(CacheSim, NoWriteAllocateBypassesCache) {
  CacheConfig c = dm(64, 8);
  c.allocatePolicy = AllocatePolicy::NoWriteAllocate;
  c.writePolicy = WritePolicy::WriteThrough;
  CacheSim sim(c);
  sim.access(writeRef(0));
  EXPECT_FALSE(sim.contains(0));
  EXPECT_EQ(sim.stats().writeMisses, 1u);
  EXPECT_EQ(sim.stats().lineFills, 0u);
  EXPECT_EQ(sim.stats().memWrites, 1u);
}

TEST(CacheSim, AccessStraddlingLinesMissesBothSides) {
  CacheSim sim(dm(64, 8));
  const AccessOutcome out = sim.access(readRef(6, 4));  // lines 0 and 1
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.fills, 2u);
  EXPECT_TRUE(sim.contains(0));
  EXPECT_TRUE(sim.contains(8));
}

TEST(CacheSim, ResetClearsContentsAndStats) {
  CacheSim sim(dm(64, 8));
  sim.access(readRef(0));
  sim.reset();
  EXPECT_EQ(sim.stats().accesses(), 0u);
  EXPECT_EQ(sim.validLineCount(), 0u);
  EXPECT_FALSE(sim.contains(0));
}

TEST(CacheSim, SetIndexAndTag) {
  CacheSim sim(dm(64, 8));  // 8 sets
  EXPECT_EQ(sim.setIndexOf(0), 0u);
  EXPECT_EQ(sim.setIndexOf(8), 1u);
  EXPECT_EQ(sim.setIndexOf(64), 0u);
  EXPECT_EQ(sim.tagOf(0), 0u);
  EXPECT_EQ(sim.tagOf(64), 1u);
}

TEST(CacheSim, MissRateOfRandomWorkloadBounded) {
  CacheSim sim(dm(256, 16));
  sim.run(randomTrace(0, 4096, 5000, 99));
  const double mr = sim.stats().missRate();
  // Resident fraction is 256/4096 = 1/16; miss rate near 15/16.
  EXPECT_GT(mr, 0.8);
  EXPECT_LT(mr, 1.0);
}

TEST(CacheSim, LoopingWorkingSetFitsAfterFirstRound) {
  CacheSim sim(dm(256, 16));
  sim.run(loopingTrace(0, 64, 4, 4));  // 256-byte working set, 4 rounds
  // 16 cold misses, everything else hits.
  EXPECT_EQ(sim.stats().misses(), 16u);
  EXPECT_EQ(sim.stats().hits(), 4u * 64u - 16u);
}

TEST(CacheSim, LoopingWorkingSetTooBigThrashesDM) {
  CacheSim sim(dm(64, 16));
  sim.run(loopingTrace(0, 64, 4, 4));  // 256-byte set in 64-byte cache
  // Every 4th access fetches a new line and the cache never retains the
  // loop, so each round re-misses all 16 lines.
  EXPECT_EQ(sim.stats().lineFills, 64u);
}

TEST(CacheSim, RejectsZeroSizeAccess) {
  CacheSim sim(dm(64, 8));
  MemRef bad = readRef(0);
  bad.size = 0;
  EXPECT_THROW(sim.access(bad), ContractViolation);
}

TEST(CacheSim, SimulateTraceConvenience) {
  const CacheStats s = simulateTrace(dm(64, 8), stridedTrace(0, 16, 8));
  EXPECT_EQ(s.accesses(), 16u);
  EXPECT_EQ(s.misses(), 16u);  // stride = line size: all cold
}

TEST(CacheStats, RatesComputed) {
  CacheStats s;
  s.reads = 8;
  s.readHits = 6;
  s.readMisses = 2;
  EXPECT_DOUBLE_EQ(s.missRate(), 0.25);
  EXPECT_DOUBLE_EQ(s.hitRate(), 0.75);
  EXPECT_DOUBLE_EQ(s.readMissRate(), 0.25);
}

TEST(CacheStats, EmptyRunHasZeroRates) {
  const CacheStats s;
  EXPECT_DOUBLE_EQ(s.missRate(), 0.0);
  EXPECT_DOUBLE_EQ(s.hitRate(), 0.0);
}

/// Property sweep: on a pure sequential stream, miss rate == L_elem^-1
/// scaled: misses = ceil(bytes/line), independent of associativity.
class SequentialSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SequentialSweep, MissesEqualLinesTouched) {
  const auto [size, line, ways] = GetParam();
  CacheConfig c = sa(static_cast<std::uint32_t>(size),
                     static_cast<std::uint32_t>(line),
                     static_cast<std::uint32_t>(ways));
  const std::size_t n = 512;
  const Trace t = stridedTrace(0, n, 4, 4);
  const CacheStats s = simulateTrace(c, t);
  const std::uint64_t bytes = n * 4;
  EXPECT_EQ(s.misses(), bytes / static_cast<std::uint64_t>(line));
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, SequentialSweep,
    ::testing::Values(std::make_tuple(64, 8, 1), std::make_tuple(64, 8, 2),
                      std::make_tuple(128, 16, 4),
                      std::make_tuple(256, 32, 8),
                      std::make_tuple(1024, 64, 1),
                      std::make_tuple(32, 4, 1)));

/// Property sweep: when the working set fits the cache, every geometry
/// incurs only cold misses, regardless of associativity.
class FittingWorkingSetSweep : public ::testing::TestWithParam<int> {};

TEST_P(FittingWorkingSetSweep, OnlyColdMissesOnceResident) {
  const int line = GetParam();
  const Trace t = loopingTrace(0, 24, 6, 4);  // 96 bytes < 128-byte cache
  for (const std::uint32_t ways : {1u, 2u, 4u, 8u}) {
    const CacheStats s = simulateTrace(
        sa(128, static_cast<std::uint32_t>(line), ways), t);
    EXPECT_EQ(s.misses(), 96u / static_cast<std::uint64_t>(line))
        << "ways=" << ways << " line=" << line;
  }
}

INSTANTIATE_TEST_SUITE_P(Lines, FittingWorkingSetSweep,
                         ::testing::Values(4, 8, 16));

}  // namespace
}  // namespace memx
