#include <gtest/gtest.h>

#include <algorithm>

#include "memx/core/explorer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

ExploreOptions smallSweep() {
  ExploreOptions o;
  o.ranges.minCacheBytes = 16;
  o.ranges.maxCacheBytes = 128;
  o.ranges.minLineBytes = 4;
  o.ranges.maxLineBytes = 16;
  o.ranges.maxAssociativity = 2;
  o.ranges.maxTiling = 4;
  return o;
}

TEST(ExploreRanges, ValidateRejectsBadBounds) {
  ExploreRanges r;
  r.minCacheBytes = 48;
  EXPECT_THROW(r.validate(), ContractViolation);
  r = ExploreRanges{};
  r.minCacheBytes = 256;
  r.maxCacheBytes = 64;
  EXPECT_THROW(r.validate(), ContractViolation);
  r = ExploreRanges{};
  r.minLineBytes = 2;  // below the cycle-model table
  EXPECT_THROW(r.validate(), ContractViolation);
}

TEST(Explorer, SweepKeysRespectConstraints) {
  const Explorer ex(smallSweep());
  const auto keys = ex.sweepKeys();
  EXPECT_FALSE(keys.empty());
  for (const ConfigKey& k : keys) {
    EXPECT_LE(k.lineBytes, k.cacheBytes);
    EXPECT_LE(k.associativity * k.lineBytes, k.cacheBytes);
    EXPECT_LE(k.tiling, k.cacheBytes / k.lineBytes);
    EXPECT_LE(k.associativity, 2u);
    EXPECT_LE(k.tiling, 4u);
  }
}

TEST(Explorer, SweepKeysAreUnique) {
  const Explorer ex(smallSweep());
  auto keys = ex.sweepKeys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(Explorer, OnChipLimitCapsCacheSize) {
  ExploreOptions o = smallSweep();
  o.ranges.onChipBytes = 32;
  const Explorer ex(o);
  for (const ConfigKey& k : ex.sweepKeys()) {
    EXPECT_LE(k.cacheBytes, 32u);
  }
}

TEST(Explorer, EvaluateFillsEveryMetric) {
  const Explorer ex(smallSweep());
  CacheConfig c;
  c.sizeBytes = 64;
  c.lineBytes = 8;
  const DesignPoint p = ex.evaluate(compressKernel(), c, 1);
  EXPECT_EQ(p.accesses, 4805u);
  EXPECT_GT(p.missRate, 0.0);
  EXPECT_LT(p.missRate, 1.0);
  EXPECT_GT(p.cycles, static_cast<double>(p.accesses));
  EXPECT_GT(p.energyNj, 0.0);
  EXPECT_EQ(p.key.cacheBytes, 64u);
  EXPECT_EQ(p.key.tiling, 1u);
}

TEST(Explorer, ExploreVisitsEveryKey) {
  const Explorer ex(smallSweep());
  const ExplorationResult r = ex.explore(dequantKernel(8));
  EXPECT_EQ(r.workload, "dequant");
  EXPECT_EQ(r.points.size(), ex.sweepKeys().size());
  for (const ConfigKey& k : ex.sweepKeys()) {
    EXPECT_NE(r.find(k), nullptr) << k.label();
  }
}

TEST(Explorer, ResultAtThrowsOnUnexploredKey) {
  const Explorer ex(smallSweep());
  const ExplorationResult r = ex.explore(matrixAddKernel(8, 4));
  EXPECT_THROW((void)r.at(ConfigKey{4096, 64, 1, 1}), ContractViolation);
}

TEST(ExplorationResult, FindIndexRebuildsAfterAppend) {
  ExplorationResult r;
  DesignPoint p;
  p.key = ConfigKey{64, 8, 1, 1};
  p.cycles = 10.0;
  r.points.push_back(p);
  const DesignPoint* first = r.find(ConfigKey{64, 8, 1, 1});
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->cycles, 10.0);
  EXPECT_EQ(r.find(ConfigKey{128, 8, 1, 1}), nullptr);

  // Appending changes the size, so the lazy index must rebuild and see
  // the new point on the next lookup.
  p.key = ConfigKey{128, 8, 1, 1};
  p.cycles = 20.0;
  r.points.push_back(p);
  const DesignPoint* second = r.find(ConfigKey{128, 8, 1, 1});
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->cycles, 20.0);
  EXPECT_EQ(&r.at(ConfigKey{64, 8, 1, 1}), &r.points[0]);
}

TEST(ExplorationResult, GrowingArchiveAppendsToIndexInsteadOfRebuilding) {
  // Regression: searchPareto appends to per-combo archives between
  // find() calls, and the index used to be rebuilt from scratch on
  // every size change — O(n log n) per batch across thousands of
  // batches. A pure append must merge the new tail into the index.
  ExplorationResult r;
  const auto append = [&](std::uint32_t size, double cycles) {
    DesignPoint p;
    p.key = ConfigKey{size, 8, 1, 1};
    p.cycles = cycles;
    r.points.push_back(p);
  };
  append(64, 1.0);
  ASSERT_NE(r.find(ConfigKey{64, 8, 1, 1}), nullptr);
  EXPECT_EQ(r.indexRebuilds(), 1u);

  // Interleave appends (in non-sorted key order) with lookups: every
  // point stays findable, and no further rebuild happens.
  std::uint32_t sizes[] = {512, 32, 256, 16, 128};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    append(sizes[i], static_cast<double>(sizes[i]));
    const DesignPoint* fresh = r.find(ConfigKey{sizes[i], 8, 1, 1});
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(fresh->cycles, static_cast<double>(sizes[i]));
    ASSERT_NE(r.find(ConfigKey{64, 8, 1, 1}), nullptr);
  }
  EXPECT_EQ(r.indexRebuilds(), 1u);
  EXPECT_EQ(r.indexAppends(), std::size(sizes));

  // An appended duplicate key must not shadow the original: find()
  // still returns the first occurrence, exactly like a full rebuild.
  append(64, 99.0);
  const DesignPoint* dup = r.find(ConfigKey{64, 8, 1, 1});
  ASSERT_NE(dup, nullptr);
  EXPECT_EQ(dup, &r.points[0]);
  EXPECT_EQ(dup->cycles, 1.0);

  // Shrinking the archive falls back to a full rebuild.
  r.points.pop_back();
  r.points.pop_back();
  ASSERT_NE(r.find(ConfigKey{64, 8, 1, 1}), nullptr);
  EXPECT_EQ(r.find(ConfigKey{128, 8, 1, 1}), nullptr);
  EXPECT_EQ(r.indexRebuilds(), 2u);
}

TEST(ExplorationResult, FindNeverReturnsWrongPointAfterKeyMutation) {
  // Regression: the index used to go stale on a same-size in-place key
  // rewrite, so find() could hand back a point whose key is not the one
  // asked for.
  ExplorationResult r;
  for (std::uint32_t size : {32u, 64u, 128u}) {
    DesignPoint p;
    p.key = ConfigKey{size, 8, 1, 1};
    p.cycles = static_cast<double>(size);
    r.points.push_back(p);
  }
  const ConfigKey oldKey{64, 8, 1, 1};
  const ConfigKey newKey{256, 16, 2, 1};
  ASSERT_NE(r.find(oldKey), nullptr);  // build the index

  r.points[1].key = newKey;  // in-place rewrite, size unchanged

  // The stale entry self-check must refuse to return points[1] for the
  // old key even though invalidateIndex() was never called.
  EXPECT_EQ(r.find(oldKey), nullptr);
  const DesignPoint* moved = r.find(newKey);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved, &r.points[1]);
}

TEST(ExplorationResult, InvalidateIndexPicksUpMutatedKeys) {
  // The generation counter covers the case the self-check cannot: the
  // mutated key is queried first, so no stale entry is ever touched.
  ExplorationResult r;
  DesignPoint p;
  p.key = ConfigKey{64, 8, 1, 1};
  r.points.push_back(p);
  p.key = ConfigKey{128, 8, 1, 1};
  r.points.push_back(p);
  ASSERT_NE(r.find(ConfigKey{64, 8, 1, 1}), nullptr);  // build the index

  const ConfigKey newKey{512, 32, 1, 1};
  r.points[0].key = newKey;
  r.invalidateIndex();
  const DesignPoint* found = r.find(newKey);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &r.points[0]);
  EXPECT_EQ(r.find(ConfigKey{64, 8, 1, 1}), nullptr);
}

TEST(Explorer, StalePlanRejectedAfterClearCaches) {
  // Regression: group.layout aliases the Explorer's layout memo, and
  // clearCaches() used to leave plans silently dangling. Now the plan
  // carries a generation stamp and using it after clearCaches() throws.
  Explorer ex(smallSweep());
  const Kernel kernel = compressKernel();
  const SweepPlan plan = ex.planSweep(kernel, ex.sweepKeys());
  ASSERT_FALSE(plan.groups.empty());

  Explorer::PatternCache patterns;
  const Trace trace = ex.buildGroupTrace(kernel, plan.groups[0], patterns);
  std::vector<DesignPoint> out(plan.keys.size());
  ex.evaluateGroup(plan.groups[0], trace, ex.addrActivityFor(trace),
                   plan.keys, out);  // fresh plan: both calls fine

  ex.clearCaches();
  EXPECT_THROW((void)ex.buildGroupTrace(kernel, plan.groups[0], patterns),
               ContractViolation);
  EXPECT_THROW(ex.evaluateGroup(plan.groups[0], trace,
                                ex.addrActivityFor(trace), plan.keys, out),
               ContractViolation);
  try {
    (void)ex.buildGroupTrace(kernel, plan.groups[0], patterns);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("stale SweepPlan"),
              std::string::npos);
  }

  // Re-planning against the cleared caches works again.
  const SweepPlan fresh = ex.planSweep(kernel, ex.sweepKeys());
  Explorer::PatternCache patterns2;
  EXPECT_NO_THROW(
      (void)ex.buildGroupTrace(kernel, fresh.groups[0], patterns2));
}

TEST(ExplorationResult, FindReturnsFirstOfDuplicateKeys) {
  ExplorationResult r;
  DesignPoint p;
  p.key = ConfigKey{64, 8, 1, 1};
  p.cycles = 1.0;
  r.points.push_back(p);
  p.cycles = 2.0;
  r.points.push_back(p);
  const DesignPoint* found = r.find(p.key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &r.points[0]);
}

TEST(Explorer, ExploreMatchesPerPointEvaluateExactly) {
  // The shared-trace engine must be bit-identical to the reference
  // per-point path (the old explore() implementation).
  const Explorer ex(smallSweep());
  const Kernel k = compressKernel();
  const ExplorationResult r = ex.explore(k);
  const std::vector<ConfigKey> keys = ex.sweepKeys();
  ASSERT_EQ(r.points.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const DesignPoint p =
        ex.evaluate(k, ex.configFor(keys[i]), keys[i].tiling);
    EXPECT_EQ(r.points[i].key, p.key);
    EXPECT_EQ(r.points[i].accesses, p.accesses);
    EXPECT_EQ(r.points[i].missRate, p.missRate);
    EXPECT_EQ(r.points[i].cycles, p.cycles);
    EXPECT_EQ(r.points[i].energyNj, p.energyNj);
  }
}

TEST(Explorer, TraceCacheGrowsAndClears) {
  Explorer ex(smallSweep());
  EXPECT_EQ(ex.traceCacheBytes(), 0u);
  (void)ex.explore(dequantKernel(8));
  EXPECT_GT(ex.traceCacheBytes(), 0u);
  ex.clearCaches();
  EXPECT_EQ(ex.traceCacheBytes(), 0u);
}

TEST(Explorer, OptimizedLayoutNeverWorseOnCompress) {
  ExploreOptions opt = smallSweep();
  ExploreOptions unopt = smallSweep();
  unopt.optimizeLayout = false;
  const Explorer exOpt(opt);
  const Explorer exUnopt(unopt);
  const Kernel k = compressKernel();
  CacheConfig c;
  c.sizeBytes = 64;
  c.lineBytes = 8;
  const DesignPoint a = exOpt.evaluate(k, c);
  const DesignPoint b = exUnopt.evaluate(k, c);
  EXPECT_LE(a.missRate, b.missRate);
}

TEST(Explorer, LargerCacheNeverMoreMissesSameLine) {
  const Explorer ex(smallSweep());
  const Kernel k = sorKernel();
  double prev = 2.0;
  for (const std::uint32_t size : {16u, 32u, 64u, 128u}) {
    CacheConfig c;
    c.sizeBytes = size;
    c.lineBytes = 8;
    const double mr = ex.evaluate(k, c).missRate;
    EXPECT_LE(mr, prev + 1e-9) << "size=" << size;
    prev = mr;
  }
}

TEST(Explorer, TilingTermRaisesCyclesAtFixedMissRate) {
  // For a 1-deep kernel tiling cannot change the trace, so the B term
  // strictly raises cycles.
  Kernel k;
  k.name = "stream";
  k.arrays = {ArrayDecl{"a", {256}, 4}};
  k.nest = LoopNest::rectangular({{0, 255}});
  k.body = {makeAccess(0, {AffineExpr::var(0)})};
  const Explorer ex(smallSweep());
  CacheConfig c;
  c.sizeBytes = 64;
  c.lineBytes = 8;
  const DesignPoint b1 = ex.evaluate(k, c, 1);
  const DesignPoint b4 = ex.evaluate(k, c, 4);
  EXPECT_DOUBLE_EQ(b1.missRate, b4.missRate);
  EXPECT_LT(b1.cycles, b4.cycles);
}

TEST(Explorer, MeasuredBusActivityChangesEnergy) {
  ExploreOptions measured = smallSweep();
  ExploreOptions fixed = smallSweep();
  fixed.measureBusActivity = false;
  const Kernel k = compressKernel();
  CacheConfig c;
  c.sizeBytes = 64;
  c.lineBytes = 8;
  const DesignPoint a = Explorer(measured).evaluate(k, c);
  const DesignPoint b = Explorer(fixed).evaluate(k, c);
  // Same miss profile, slightly different E_dec/E_io terms.
  EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
  EXPECT_NE(a.energyNj, b.energyNj);
}

TEST(Explorer, WritePolicyConfigurable) {
  ExploreOptions o = smallSweep();
  o.writePolicy = WritePolicy::WriteThrough;
  const Explorer ex(o);
  CacheConfig c;
  c.sizeBytes = 64;
  c.lineBytes = 8;
  EXPECT_NO_THROW((void)ex.evaluate(compressKernel(), c));
}

TEST(Explorer, WriteEnergyOptionRaisesEnergy) {
  ExploreOptions readOnly = smallSweep();
  ExploreOptions withWrites = smallSweep();
  withWrites.includeWriteEnergy = true;
  const Kernel k = compressKernel();
  CacheConfig c;
  c.sizeBytes = 64;
  c.lineBytes = 8;
  const DesignPoint a = Explorer(readOnly).evaluate(k, c);
  const DesignPoint b = Explorer(withWrites).evaluate(k, c);
  EXPECT_DOUBLE_EQ(a.missRate, b.missRate);
  EXPECT_GT(b.energyNj, a.energyNj);
}

TEST(ConfigKey, LabelsAndOrdering) {
  EXPECT_EQ((ConfigKey{64, 8, 1, 1}).label(), "C64L8");
  EXPECT_EQ((ConfigKey{64, 8, 4, 8}).label(), "C64L8S4B8");
  EXPECT_LT((ConfigKey{16, 4, 1, 1}), (ConfigKey{16, 4, 1, 2}));
}

}  // namespace
}  // namespace memx
