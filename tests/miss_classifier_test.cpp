#include <gtest/gtest.h>

#include "memx/cachesim/miss_classifier.hpp"
#include "memx/trace/generators.hpp"

namespace memx {
namespace {

CacheConfig dm(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  return c;
}

TEST(MissClassifier, FirstTouchIsCompulsory) {
  const MissBreakdown b = classifyMisses(dm(64, 8), stridedTrace(0, 8, 8));
  EXPECT_EQ(b.compulsory, 8u);
  EXPECT_EQ(b.capacity, 0u);
  EXPECT_EQ(b.conflict, 0u);
}

TEST(MissClassifier, RepeatAccessesHit) {
  Trace t = stridedTrace(0, 4, 8);
  t.append(stridedTrace(0, 4, 8));
  const MissBreakdown b = classifyMisses(dm(64, 8), t);
  EXPECT_EQ(b.compulsory, 4u);
  EXPECT_EQ(b.hits, 4u);
}

TEST(MissClassifier, PingPongIsConflict) {
  // Two lines aliasing in a direct-mapped cache but fitting a
  // fully-associative one: pure conflict misses after the cold pair.
  const Trace t = pingPongTrace(0, 64, 20, 0);
  const MissBreakdown b = classifyMisses(dm(64, 8), t);
  EXPECT_EQ(b.compulsory, 2u);
  EXPECT_EQ(b.capacity, 0u);
  EXPECT_EQ(b.conflict, 38u);
  EXPECT_EQ(b.hits, 0u);
}

TEST(MissClassifier, CyclicOversizedWorkingSetIsCapacity) {
  // Working set of 2x the cache, fully-associative shadow also thrashes:
  // misses beyond the cold ones are capacity misses for the FA-missing
  // part.
  const Trace t = loopingTrace(0, 32, 4, 4);  // 128 B set, 64 B cache
  const MissBreakdown b = classifyMisses(dm(64, 8), t);
  EXPECT_EQ(b.compulsory, 16u);
  EXPECT_GT(b.capacity, 0u);
  EXPECT_EQ(b.accesses, 128u);
  EXPECT_EQ(b.misses() + b.hits, b.accesses);
}

TEST(MissClassifier, BreakdownSumsToTargetMisses) {
  const Trace t = randomTrace(0, 2048, 3000, 5);
  MissClassifier cls(dm(128, 16));
  cls.run(t);
  EXPECT_EQ(cls.breakdown().misses(), cls.targetStats().misses());
  EXPECT_EQ(cls.breakdown().hits, cls.targetStats().hits());
}

TEST(MissClassifier, ConflictRateZeroWhenFullyAssociative) {
  CacheConfig c = dm(64, 8);
  c.associativity = 8;  // target == shadow
  const Trace t = randomTrace(0, 1024, 2000, 11);
  const MissBreakdown b = classifyMisses(c, t);
  EXPECT_EQ(b.conflict, 0u);
}

TEST(MissClassifier, ConflictRateComputed) {
  const Trace t = pingPongTrace(0, 64, 10, 0);
  const MissBreakdown b = classifyMisses(dm(64, 8), t);
  EXPECT_NEAR(b.conflictRate(), 18.0 / 20.0, 1e-12);
  EXPECT_DOUBLE_EQ(b.missRate(), 1.0);
}

}  // namespace
}  // namespace memx
