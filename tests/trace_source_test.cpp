// Streaming trace ingestion: din decoding, gzip streams, file sources,
// windowing, chunked replay, and the streamed-vs-materialized
// differential that pins the out-of-core path to the in-memory one.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>

#include "memx/cachesim/multi_sim.hpp"
#include "memx/core/trace_explorer.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/stackdist/stackdist_sim.hpp"
#include "memx/trace/din_io.hpp"
#include "memx/trace/file_source.hpp"
#include "memx/trace/generators.hpp"
#include "memx/trace/gzip_stream.hpp"
#include "memx/trace/trace_source.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

Trace mixedTrace(std::size_t n, unsigned seed) {
  // Reads, writes and ifetches with occasional line straddles — the
  // shapes din files carry (sizes are stamped to 4 on parse, so keep
  // size 4 and let unaligned addresses produce the straddles).
  std::mt19937_64 rng(seed);
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t addr = rng() % 4096 + (rng() % 8 == 0 ? 3 : 0);
    const std::uint32_t pick = rng() % 4;
    const AccessType type = pick == 0   ? AccessType::Write
                            : pick == 1 ? AccessType::Instr
                                        : AccessType::Read;
    t.push(MemRef{addr, 4, type});
  }
  return t;
}

void expectSameRefs(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].addr, b[i].addr) << "ref " << i;
    ASSERT_EQ(a[i].size, b[i].size) << "ref " << i;
    ASSERT_EQ(a[i].type, b[i].type) << "ref " << i;
  }
}

void expectSameStats(const CacheStats& a, const CacheStats& b,
                     const std::string& what) {
  EXPECT_EQ(a.reads, b.reads) << what;
  EXPECT_EQ(a.writes, b.writes) << what;
  EXPECT_EQ(a.readHits, b.readHits) << what;
  EXPECT_EQ(a.readMisses, b.readMisses) << what;
  EXPECT_EQ(a.writeHits, b.writeHits) << what;
  EXPECT_EQ(a.writeMisses, b.writeMisses) << what;
  EXPECT_EQ(a.lineFills, b.lineFills) << what;
  EXPECT_EQ(a.writebacks, b.writebacks) << what;
  EXPECT_EQ(a.memWrites, b.memWrites) << what;
}

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// --- DinStreamSource ----------------------------------------------------

TEST(DinStreamSource, DeliversRefsIncrementally) {
  std::istringstream is("# hdr\n0 10\n\n1 20\n2 30\n");
  DinStreamSource source(is);
  EXPECT_EQ(source.ingest().refsDecoded, 0u);
  auto r0 = source.next();
  ASSERT_TRUE(r0);
  EXPECT_EQ(r0->addr, 0x10u);
  EXPECT_EQ(r0->type, AccessType::Read);
  EXPECT_EQ(source.ingest().refsDecoded, 1u);
  auto r1 = source.next();
  ASSERT_TRUE(r1);
  EXPECT_EQ(r1->addr, 0x20u);
  EXPECT_EQ(r1->type, AccessType::Write);
  auto r2 = source.next();
  ASSERT_TRUE(r2);
  EXPECT_EQ(r2->type, AccessType::Instr);
  EXPECT_FALSE(source.next());
  EXPECT_FALSE(source.next());  // exhausted stays exhausted
  EXPECT_EQ(source.ingest().refsDecoded, 3u);
  EXPECT_EQ(source.lineNo(), 5u);
}

TEST(DinStreamSource, MatchesReadDin) {
  const Trace original = mixedTrace(500, 7);
  const std::string text = toDinString(original);
  std::istringstream a(text);
  std::istringstream b(text);
  DinStreamSource source(a);
  const Trace streamed = drain(source);
  expectSameRefs(streamed, readDin(b));
}

TEST(FillChunk, ShortCountSignalsExhaustion) {
  VectorTraceSource source(stridedTrace(0, 10, 4));
  std::vector<MemRef> buf;
  EXPECT_EQ(fillChunk(source, buf, 4), 4u);
  EXPECT_EQ(buf[0].addr, 0u);
  EXPECT_EQ(fillChunk(source, buf, 4), 4u);
  EXPECT_EQ(buf[0].addr, 16u);  // buffer is reused, not appended
  EXPECT_EQ(fillChunk(source, buf, 4), 2u);
  EXPECT_EQ(fillChunk(source, buf, 4), 0u);
}

// --- WindowedSource -----------------------------------------------------

TEST(WindowedSource, AppliesSkipWarmupAndLimit) {
  VectorTraceSource inner(stridedTrace(0, 20, 4));
  WindowedSource window(inner, TraceWindow{5, 2, 3});
  // Delivers warmup + limit = 5 refs, starting after the 5 skipped.
  for (std::uint64_t want = 5; want < 10; ++want) {
    auto ref = window.next();
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref->addr, want * 4);
  }
  EXPECT_FALSE(window.next());
  EXPECT_EQ(window.delivered(), 5u);
}

TEST(WindowedSource, LimitZeroIsUnbounded) {
  VectorTraceSource inner(stridedTrace(0, 10, 4));
  WindowedSource window(inner, TraceWindow{2, 0, 0});
  EXPECT_EQ(drain(window).size(), 8u);
}

TEST(WindowedSource, SkipPastEndIsEmpty) {
  VectorTraceSource inner(stridedTrace(0, 5, 4));
  WindowedSource window(inner, TraceWindow{100, 0, 0});
  EXPECT_FALSE(window.next());
  EXPECT_EQ(window.delivered(), 0u);
}

TEST(WindowedSource, ForwardsIngestStats) {
  std::istringstream is("0 10\n0 20\n0 30\n");
  DinStreamSource din(is);
  WindowedSource window(din, TraceWindow{1, 0, 1});
  (void)drain(window);
  // Skip consumed one ref, limit delivered one: both decoded.
  EXPECT_EQ(window.ingest().refsDecoded, 2u);
}

TEST(WindowedSource, WindowsCompose) {
  VectorTraceSource inner(stridedTrace(0, 100, 4));
  WindowedSource outer(inner, TraceWindow{10, 0, 50});
  WindowedSource nested(outer, TraceWindow{5, 0, 10});
  const Trace got = drain(nested);
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got[0].addr, 15u * 4);
}

// --- Gzip streams -------------------------------------------------------

TEST(GzipStream, RoundTripsThroughMemory) {
  if (!gzipSupported()) GTEST_SKIP() << "built without zlib";
  const Trace original = mixedTrace(2000, 11);
  std::stringstream compressed;
  {
    GzipOutputStream gz(compressed, 6);
    writeDin(gz, original);
    gz.close();
  }
  // The gzip layer actually compressed (din text is highly redundant).
  EXPECT_LT(compressed.str().size(), toDinString(original).size() / 2);
  GzipInputStream inflate(compressed);
  expectSameRefs(readDin(inflate), original);
}

TEST(GzipStream, SmallBuffersStillRoundTrip) {
  if (!gzipSupported()) GTEST_SKIP() << "built without zlib";
  const Trace original = mixedTrace(300, 13);
  std::stringstream compressed;
  {
    GzipOutputStream gz(compressed, -1, 16);  // tiny deflate buffers
    writeDin(gz, original);
    gz.close();
  }
  GzipInputStream inflate(compressed, 16);  // tiny inflate buffers
  expectSameRefs(readDin(inflate), original);
}

TEST(GzipStream, ConcatenatedMembersInflateBackToBack) {
  if (!gzipSupported()) GTEST_SKIP() << "built without zlib";
  // `cat a.gz b.gz` is a valid gzip file; gzip -d inflates both.
  std::stringstream compressed;
  {
    GzipOutputStream gz(compressed);
    gz << "0 10\n";
    gz.close();
  }
  {
    GzipOutputStream gz(compressed);
    gz << "1 20\n";
    gz.close();
  }
  GzipInputStream inflate(compressed);
  const Trace t = readDin(inflate);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0x10u);
  EXPECT_EQ(t[1].addr, 0x20u);
}

TEST(GzipStream, TruncatedInputThrows) {
  if (!gzipSupported()) GTEST_SKIP() << "built without zlib";
  // Through readDin's getline path: istream machinery must rethrow the
  // streambuf's ContractViolation, not swallow it into a short read.
  std::stringstream compressed;
  {
    GzipOutputStream gz(compressed);
    gz << "0 10\n0 20\n0 30\n";
    gz.close();
  }
  const std::string whole = compressed.str();
  std::istringstream cut(whole.substr(0, whole.size() / 2));
  GzipInputStream inflate(cut);
  EXPECT_THROW((void)readDin(inflate), ContractViolation);
}

TEST(GzipStream, GarbageInputThrows) {
  if (!gzipSupported()) GTEST_SKIP() << "built without zlib";
  std::istringstream garbage("this is not a gzip stream at all");
  GzipInputStream inflate(garbage);
  EXPECT_THROW((void)readDin(inflate), ContractViolation);
}

// --- FileTraceSource ----------------------------------------------------

TEST(FileTraceSource, StreamsPlainDinFiles) {
  const Trace original = mixedTrace(800, 17);
  const std::string path = tempPath("plain_trace.din");
  {
    std::ofstream out(path);
    writeDin(out, original);
  }
  FileTraceSource source(path);
  expectSameRefs(drain(source), original);
  const IngestStats ingest = source.ingest();
  EXPECT_EQ(ingest.refsDecoded, original.size());
  EXPECT_EQ(ingest.bytesRead, toDinString(original).size());
  std::remove(path.c_str());
}

TEST(FileTraceSource, StreamsGzipCompressedFiles) {
  if (!gzipSupported()) GTEST_SKIP() << "built without zlib";
  const Trace original = mixedTrace(800, 19);
  const std::string path = tempPath("gz_trace.din.gz");
  {
    std::ofstream raw(path, std::ios::binary);
    GzipOutputStream gz(raw);
    writeDin(gz, original);
    gz.close();
  }
  FileTraceSource source(path);
  expectSameRefs(drain(source), original);
  const IngestStats ingest = source.ingest();
  EXPECT_EQ(ingest.refsDecoded, original.size());
  // bytesRead counts the compressed file, which is far smaller than
  // the decompressed text.
  EXPECT_GT(ingest.bytesRead, 0u);
  EXPECT_LT(ingest.bytesRead, toDinString(original).size() / 2);
  std::remove(path.c_str());
}

TEST(FileTraceSource, MissingFileThrows) {
  EXPECT_THROW(FileTraceSource("/nonexistent/trace.din"),
               ContractViolation);
}

TEST(FileTraceSource, TruncatedGzipFileThrows) {
  if (!gzipSupported()) GTEST_SKIP() << "built without zlib";
  const Trace original = mixedTrace(500, 21);
  const std::string path = tempPath("cut_trace.din.gz");
  std::string whole;
  {
    std::ostringstream buf;
    GzipOutputStream gz(buf);
    writeDin(gz, original);
    gz.close();
    whole = buf.str();
  }
  {
    std::ofstream out(path, std::ios::binary);
    out.write(whole.data(),
              static_cast<std::streamsize>(whole.size() / 2));
  }
  FileTraceSource source(path);
  EXPECT_THROW((void)drain(source), ContractViolation);
  std::remove(path.c_str());
}

TEST(FileTraceSource, DetectsGzipByExtension) {
  EXPECT_TRUE(isGzipPath("trace.din.gz"));
  EXPECT_TRUE(isGzipPath("/a/b/c.gz"));
  EXPECT_FALSE(isGzipPath("trace.din"));
  EXPECT_FALSE(isGzipPath(".gz"));  // no stem
}

// --- Chunked replay -----------------------------------------------------

std::vector<CacheConfig> sweepBank() {
  std::vector<CacheConfig> configs;
  for (const std::uint32_t size : {64u, 256u}) {
    for (const std::uint32_t line : {8u, 16u}) {
      for (const std::uint32_t assoc : {1u, 2u}) {
        CacheConfig c;
        c.sizeBytes = size;
        c.lineBytes = line;
        c.associativity = assoc;
        configs.push_back(c);
      }
    }
  }
  return configs;
}

TEST(ChunkedReplay, MultiCacheSimMatchesWholeTraceRun) {
  const Trace trace = mixedTrace(3000, 23);
  const std::vector<CacheConfig> configs = sweepBank();
  MultiCacheSim whole(configs);
  whole.run(trace);
  for (const std::size_t chunkRefs : {std::size_t{1}, std::size_t{7},
                                      std::size_t{256}}) {
    MultiCacheSim chunked(configs);
    VectorTraceSource source(trace);
    chunked.run(source, chunkRefs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      expectSameStats(chunked.stats(i), whole.stats(i),
                      "chunk=" + std::to_string(chunkRefs) + " member " +
                          std::to_string(i));
    }
  }
}

TEST(ChunkedReplay, StackDistSimMatchesWholeTraceRun) {
  const Trace trace = mixedTrace(3000, 27);
  const std::vector<CacheConfig> configs = sweepBank();
  StackDistSim whole(configs);
  whole.run(trace);
  for (const std::size_t chunkRefs : {std::size_t{1}, std::size_t{13},
                                      std::size_t{512}}) {
    StackDistSim chunked(configs);
    VectorTraceSource source(trace);
    chunked.run(source, chunkRefs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      expectSameStats(chunked.stats(i), whole.stats(i),
                      "chunk=" + std::to_string(chunkRefs) + " member " +
                          std::to_string(i));
    }
  }
}

TEST(ChunkedReplay, StackDistSimAccumulatesAcrossRunCalls) {
  // Streaming runs accumulate: two half-trace calls equal one whole
  // pass (the warmup-snapshot mechanism depends on this).
  const Trace trace = mixedTrace(2000, 29);
  Trace firstHalf;
  Trace secondHalf;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    (i < trace.size() / 2 ? firstHalf : secondHalf).push(trace[i]);
  }
  const std::vector<CacheConfig> configs = sweepBank();
  StackDistSim whole(configs);
  whole.run(trace);
  StackDistSim split(configs);
  VectorTraceSource a(firstHalf);
  VectorTraceSource b(secondHalf);
  split.run(a);
  split.run(b);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expectSameStats(split.stats(i), whole.stats(i),
                    "member " + std::to_string(i));
  }
}

TEST(ChunkedReplay, StackDistSimRejectsMixingModes) {
  const Trace trace = mixedTrace(100, 31);
  StackDistSim bank(sweepBank());
  bank.run(trace);
  VectorTraceSource source(trace);
  EXPECT_THROW(bank.run(source), ContractViolation);
}

TEST(AllAssocProfile, FeedSplitsAreInvariant) {
  const Trace trace = mixedTrace(4000, 37);
  const AllAssocProfile whole(trace, 16, 64, 4);
  AllAssocProfile fed(16, 64, 4);
  // Feed in ragged chunks.
  std::size_t pos = 0;
  std::size_t step = 1;
  while (pos < trace.size()) {
    const std::size_t n = std::min(step, trace.size() - pos);
    fed.feed(trace.refs().data() + pos, n);
    pos += n;
    step = step * 2 + 1;
  }
  for (const std::uint32_t sets : {1u, 8u, 64u}) {
    for (const std::uint32_t assoc : {1u, 2u, 4u}) {
      expectSameStats(fed.stats(sets, assoc, WritePolicy::WriteBack),
                      whole.stats(sets, assoc, WritePolicy::WriteBack),
                      "S" + std::to_string(sets) + "A" +
                          std::to_string(assoc));
    }
  }
}

TEST(AllAssocProfile, PackedToSplitMigrationIsExact) {
  // A line index beyond 2^56 - 2 forces the packed pass to hand over
  // mid-stream. The migrated profile must stay exact — pin it against
  // the cache simulator on a trace that goes small -> huge -> small.
  Trace trace;
  Trace prefix = mixedTrace(600, 41);
  for (const MemRef& r : prefix) trace.push(r);
  const std::uint64_t huge = (std::uint64_t{1} << 60);
  for (std::size_t i = 0; i < 50; ++i) {
    trace.push(MemRef{huge + i * 8, 4,
                      i % 3 == 0 ? AccessType::Write : AccessType::Read});
  }
  Trace suffix = mixedTrace(600, 43);
  for (const MemRef& r : suffix) trace.push(r);

  const AllAssocProfile profile(trace, 8, 16, 4);
  for (const std::uint32_t sets : {1u, 4u, 16u}) {
    for (const std::uint32_t assoc : {1u, 2u, 4u}) {
      CacheConfig c;
      c.lineBytes = 8;
      c.sizeBytes = sets * assoc * 8;
      c.associativity = assoc;
      const CacheStats sim = simulateTrace(c, trace);
      expectSameStats(profile.stats(sets, assoc, WritePolicy::WriteBack),
                      sim,
                      "S" + std::to_string(sets) + "A" +
                          std::to_string(assoc));
    }
  }
}

// --- Streamed vs materialized explorer ----------------------------------

ExploreOptions smallSweep(SweepBackend backend) {
  ExploreOptions options;
  options.ranges.minCacheBytes = 32;
  options.ranges.maxCacheBytes = 256;
  options.ranges.maxAssociativity = 2;
  options.backend = backend;
  return options;
}

void expectSamePoints(const ExplorationResult& a,
                      const ExplorationResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const DesignPoint& pa = a.points[i];
    const DesignPoint& pb = b.points[i];
    EXPECT_EQ(pa.key, pb.key);
    EXPECT_EQ(pa.accesses, pb.accesses);
    // Bit-identical, not approximately equal: the streamed path must
    // fold the exact same integers through the exact same doubles.
    EXPECT_EQ(pa.missRate, pb.missRate) << pa.key.label();
    EXPECT_EQ(pa.cycles, pb.cycles) << pa.key.label();
    EXPECT_EQ(pa.energyNj, pb.energyNj) << pa.key.label();
  }
}

TEST(StreamedExplore, TrivialWindowMatchesMaterializedBothBackends) {
  const Trace trace = mixedTrace(4000, 47);
  for (const SweepBackend backend :
       {SweepBackend::StackDist, SweepBackend::MultiSim}) {
    const ExploreOptions options = smallSweep(backend);
    const ExplorationResult materialized =
        exploreTrace("w", trace, options);
    VectorTraceSource source(trace);
    const ExplorationResult streamed =
        exploreTrace("w", source, options, TraceWindow{}, 64);
    expectSamePoints(streamed, materialized);
  }
}

TEST(StreamedExplore, SkipAndLimitMatchMaterializedSubrange) {
  const Trace trace = mixedTrace(3000, 53);
  const TraceWindow window{500, 0, 1000};
  Trace sub;
  for (std::size_t i = 500; i < 1500; ++i) sub.push(trace[i]);
  for (const SweepBackend backend :
       {SweepBackend::StackDist, SweepBackend::MultiSim}) {
    const ExploreOptions options = smallSweep(backend);
    const ExplorationResult materialized = exploreTrace("w", sub, options);
    VectorTraceSource source(trace);
    const ExplorationResult streamed =
        exploreTrace("w", source, options, window, 128);
    expectSamePoints(streamed, materialized);
  }
}

TEST(StreamedExplore, WarmupAgreesAcrossBackends) {
  // Warmup exclusion uses snapshot subtraction in both backends; the
  // simulated and analytic paths must agree exactly on the counted
  // region (LRU/write-allocate domain).
  const Trace trace = mixedTrace(3000, 59);
  const TraceWindow window{200, 500, 1500};
  VectorTraceSource a(trace);
  VectorTraceSource b(trace);
  const ExplorationResult viaStackDist = exploreTrace(
      "w", a, smallSweep(SweepBackend::StackDist), window, 64);
  const ExplorationResult viaMultiSim = exploreTrace(
      "w", b, smallSweep(SweepBackend::MultiSim), window, 64);
  expectSamePoints(viaStackDist, viaMultiSim);
}

TEST(StreamedExplore, EvaluatePointMatchesMaterialized) {
  const Trace trace = mixedTrace(2000, 61);
  CacheConfig cache;
  cache.sizeBytes = 128;
  cache.lineBytes = 8;
  cache.associativity = 2;
  ExploreOptions options;
  const DesignPoint materialized =
      evaluateTracePoint(trace, cache, options);
  VectorTraceSource source(trace);
  const DesignPoint streamed =
      evaluateTracePoint(source, cache, options, TraceWindow{}, 32);
  EXPECT_EQ(streamed.key, materialized.key);
  EXPECT_EQ(streamed.accesses, materialized.accesses);
  EXPECT_EQ(streamed.missRate, materialized.missRate);
  EXPECT_EQ(streamed.cycles, materialized.cycles);
  EXPECT_EQ(streamed.energyNj, materialized.energyNj);
}

TEST(StreamedExplore, FileSourceMatchesInMemoryEndToEnd) {
  // The full production chain: write a din file, stream it through the
  // explorer, compare against the in-memory result.
  const Trace trace = mixedTrace(1500, 67);
  const std::string path = tempPath("explore_trace.din");
  {
    std::ofstream out(path);
    writeDin(out, trace);
  }
  // din drops sizes; compare against the re-parsed trace.
  const Trace parsed = fromDinString(toDinString(trace));
  const ExploreOptions options = smallSweep(SweepBackend::Auto);
  const ExplorationResult materialized =
      exploreTrace("w", parsed, options);
  FileTraceSource source(path);
  const ExplorationResult streamed =
      exploreTrace("w", source, options, TraceWindow{}, 256);
  expectSamePoints(streamed, materialized);
  std::remove(path.c_str());
}

TEST(StreamedExplore, RecordsIngestCountersAndSpans) {
  const Trace trace = mixedTrace(1000, 71);
  const std::string path = tempPath("obs_trace.din");
  {
    std::ofstream out(path);
    writeDin(out, trace);
  }
  obs::Recorder recorder;
  FileTraceSource source(path);
  (void)evaluateTracePoint(source, CacheConfig{}, ExploreOptions{},
                           TraceWindow{0, 100, 0}, 128, &recorder);
  EXPECT_EQ(recorder.counterValue("trace.refs_decoded"), trace.size());
  EXPECT_EQ(recorder.counterValue("trace.bytes_read"),
            toDinString(trace).size());
  EXPECT_GE(recorder.spanCount(), 3u);  // ingest + warmup + replay
  std::remove(path.c_str());
}

}  // namespace
}  // namespace memx
