#include <gtest/gtest.h>

#include "memx/cachesim/write_buffer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/generators.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(WriteBuffer, ConfigValidation) {
  WriteBufferConfig c;
  c.entries = 0;
  EXPECT_THROW(c.validate(), ContractViolation);
  c = WriteBufferConfig{};
  c.lineBytes = 12;
  EXPECT_THROW(c.validate(), ContractViolation);
  c = WriteBufferConfig{};
  c.drainInterval = 0;
  EXPECT_THROW(c.validate(), ContractViolation);
}

TEST(WriteBuffer, ReadsDoNotEnterTheBuffer) {
  WriteBuffer wb(WriteBufferConfig{});
  wb.run(stridedTrace(0, 100, 4, 4, AccessType::Read));
  EXPECT_EQ(wb.stats().writesSeen, 0u);
  EXPECT_EQ(wb.stats().memWrites, 0u);
}

TEST(WriteBuffer, SameLineStoresMerge) {
  WriteBufferConfig c;
  c.lineBytes = 8;
  c.drainInterval = 1000;  // nothing drains during the run
  WriteBuffer wb(c);
  // Four stores into one 8-byte line.
  for (std::uint64_t a : {0u, 2u, 4u, 6u}) wb.observe(writeRef(a, 1));
  EXPECT_EQ(wb.stats().writesSeen, 4u);
  EXPECT_EQ(wb.stats().merged, 3u);
  EXPECT_EQ(wb.pending(), 1u);
  wb.flush();
  EXPECT_EQ(wb.stats().memWrites, 1u);
  EXPECT_DOUBLE_EQ(wb.stats().mergeRate(), 0.75);
}

TEST(WriteBuffer, DistinctLinesDoNotMerge) {
  WriteBufferConfig c;
  c.entries = 16;
  c.drainInterval = 1000;
  WriteBuffer wb(c);
  for (std::uint64_t a = 0; a < 8; ++a) wb.observe(writeRef(a * 8, 1));
  EXPECT_EQ(wb.stats().merged, 0u);
  EXPECT_EQ(wb.pending(), 8u);
}

TEST(WriteBuffer, FullBufferStalls) {
  WriteBufferConfig c;
  c.entries = 2;
  c.drainInterval = 100;  // effectively never drains on its own
  WriteBuffer wb(c);
  wb.observe(writeRef(0));
  wb.observe(writeRef(64));
  EXPECT_EQ(wb.stats().stallCycles, 0u);
  wb.observe(writeRef(128));  // full: must force out the head
  EXPECT_GT(wb.stats().stallCycles, 0u);
  EXPECT_EQ(wb.stats().memWrites, 1u);
}

TEST(WriteBuffer, DrainsBetweenAccesses) {
  WriteBufferConfig c;
  c.entries = 8;
  c.drainInterval = 2;
  WriteBuffer wb(c);
  wb.observe(writeRef(0));
  // Two reads give the buffer time to retire the line.
  wb.observe(readRef(1000));
  wb.observe(readRef(1004));
  EXPECT_EQ(wb.pending(), 0u);
  EXPECT_EQ(wb.stats().memWrites, 1u);
  EXPECT_EQ(wb.stats().stallCycles, 0u);
}

TEST(WriteBuffer, FlushRetiresEverything) {
  WriteBufferConfig c;
  c.drainInterval = 1000;
  WriteBuffer wb(c);
  wb.observe(writeRef(0));
  wb.observe(writeRef(64));
  wb.flush();
  EXPECT_EQ(wb.pending(), 0u);
  EXPECT_EQ(wb.stats().memWrites, 2u);
}

TEST(WriteBuffer, KernelStoresMergeWell) {
  // Compress writes a[i][j] sequentially: byte elements share lines.
  const Trace t = generateTrace(compressKernel());
  WriteBufferConfig c;
  c.lineBytes = 8;
  c.entries = 4;
  c.drainInterval = 8;
  WriteBuffer wb(c);
  wb.run(t);
  EXPECT_EQ(wb.stats().writesSeen, 961u);
  EXPECT_GT(wb.stats().mergeRate(), 0.3);
}

/// Property: memWrites + merged == writesSeen after a flush.
class WriteBufferConservation : public ::testing::TestWithParam<int> {};

TEST_P(WriteBufferConservation, StoresAreConserved) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Trace t = randomTrace(0, 4096, 1000, seed, 4, AccessType::Write);
  t.append(randomTrace(0, 4096, 1000, seed + 1, 4, AccessType::Read));
  WriteBufferConfig c;
  c.entries = 4;
  c.drainInterval = 3;
  WriteBuffer wb(c);
  wb.run(t);
  EXPECT_EQ(wb.stats().memWrites + wb.stats().merged,
            wb.stats().writesSeen);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteBufferConservation,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace memx
