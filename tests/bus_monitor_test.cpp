#include <gtest/gtest.h>

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/trace/generators.hpp"

namespace memx {
namespace {

TEST(BusMonitor, FirstAccessCausesNoSwitching) {
  BusMonitor m;
  m.observe(readRef(12345));
  EXPECT_EQ(m.stats().accesses, 1u);
  EXPECT_EQ(m.stats().addrBitSwitches, 0u);
}

TEST(BusMonitor, GraySequentialTogglesOneWirePerStep) {
  BusMonitor m(AddressEncoding::Gray);
  for (std::uint64_t a = 0; a < 100; ++a) m.observe(readRef(a, 1));
  EXPECT_EQ(m.stats().addrBitSwitches, 99u);
  EXPECT_NEAR(m.stats().addrSwitchesPerAccess(), 0.99, 1e-12);
}

TEST(BusMonitor, BinarySequentialTogglesMore) {
  BusMonitor gray(AddressEncoding::Gray);
  BusMonitor bin(AddressEncoding::Binary);
  for (std::uint64_t a = 0; a < 256; ++a) {
    gray.observe(readRef(a, 1));
    bin.observe(readRef(a, 1));
  }
  // Binary counting toggles ~2 wires per increment on average.
  EXPECT_GT(bin.stats().addrBitSwitches, gray.stats().addrBitSwitches);
}

TEST(BusMonitor, RepeatedAddressIsFree) {
  BusMonitor m;
  m.observe(stridedTrace(64, 50, 0));
  EXPECT_EQ(m.stats().addrBitSwitches, 0u);
}

TEST(BusMonitor, ObserveWholeTrace) {
  BusMonitor m;
  m.observe(stridedTrace(0, 10, 4));
  EXPECT_EQ(m.stats().accesses, 10u);
}

TEST(BusMonitor, MeasureHelperMatchesMonitor) {
  const Trace t = randomTrace(0, 4096, 200, 3);
  BusMonitor m;
  m.observe(t);
  EXPECT_DOUBLE_EQ(measureAddrActivity(t),
                   m.stats().addrSwitchesPerAccess());
}

TEST(BusMonitor, RandomTrafficSwitchesMoreThanSequential) {
  const double seq = measureAddrActivity(stridedTrace(0, 1000, 4));
  const double rnd = measureAddrActivity(randomTrace(0, 65536, 1000, 17));
  EXPECT_LT(seq, rnd);
}

}  // namespace
}  // namespace memx
