#include <gtest/gtest.h>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/kernels/extra_kernels.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/ref_classes.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/spm/allocation.hpp"
#include "memx/trace/trace_stats.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig dm(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  return c;
}

TEST(ExtraKernels, LuShape) {
  const Kernel k = luKernel(8);
  EXPECT_EQ(k.nest.iterationCount(), 7u * 7u * 7u);
  EXPECT_EQ(k.body.size(), 4u);
  EXPECT_NO_THROW(generateTrace(k));
}

TEST(ExtraKernels, LuDistinctHSignatures) {
  // a[i][k], a[k][j], a[i][j]: three distinct linear parts on one array.
  const RefAnalysis a = analyzeReferences(luKernel(8));
  EXPECT_EQ(a.groups.size(), 3u);
  EXPECT_EQ(a.cases.size(), 3u);
}

TEST(ExtraKernels, FirCoefficientsAreHot) {
  const Kernel k = firKernel(128, 16);
  const auto usages = profileArrayUsage(k);
  // coef: one access per (i, t) iteration over a 16-byte array —
  // by far the densest candidate for a scratchpad.
  const ArrayUsage& coef = usages[k.arrayIndexOf("coef")];
  for (const ArrayUsage& u : usages) {
    EXPECT_LE(u.density(), coef.density() + 1e-9);
  }
}

TEST(ExtraKernels, FirSlidingWindowHitsInTinyCache) {
  // Window of 16 bytes + 16 coef bytes: a 64-byte cache captures it
  // (2-way, so the sliding window cannot evict the coefficient lines).
  const Kernel k = firKernel(256, 16);
  CacheConfig c = dm(64, 8);
  c.associativity = 2;
  const CacheStats s = simulateTrace(c, generateTrace(k));
  EXPECT_LT(s.missRate(), 0.1);
}

TEST(ExtraKernels, FirAccessesInBounds) {
  const Trace t = generateTrace(firKernel(64, 8));
  const TraceStats s = computeStats(t);
  // in[64+8] + coef[8] + out[64] with tight packing.
  EXPECT_LT(s.maxAddr, 72u + 8u + 64u);
}

TEST(ExtraKernels, HistogramReadWritePairHitsSameBin) {
  const Kernel k = histogramKernel(64, 16);
  const Trace t = generateTrace(k);
  ASSERT_EQ(t.size(), 64u * 3u);
  for (std::size_t i = 0; i < t.size(); i += 3) {
    EXPECT_EQ(t[i + 1].addr, t[i + 2].addr) << "iteration " << i / 3;
    EXPECT_EQ(t[i + 1].type, AccessType::Read);
    EXPECT_EQ(t[i + 2].type, AccessType::Write);
  }
}

TEST(ExtraKernels, HistogramDefeatsLayoutOptimization) {
  const Kernel k = histogramKernel(256, 64);
  const AssignmentPlan plan = assignConflictFree(k, dm(64, 8));
  // The bins accesses are indirect: the plan cannot certify them.
  const RefAnalysis a = analyzeReferences(k);
  EXPECT_EQ(a.indirectAccesses.size(), 2u);
}

TEST(ExtraKernels, MatVecVectorReusedPerRow) {
  // x fits a 64-byte cache: after row 0, x accesses hit.
  const Kernel k = matVecKernel(32);
  CacheConfig c = dm(128, 8);
  c.associativity = 4;  // keep m's streaming from evicting x
  const CacheStats s = simulateTrace(c, generateTrace(k));
  // m misses: 1024/8 = 128 lines; x misses ~4 lines; y ~4:
  // everything else hits.
  EXPECT_LT(s.missRate(), 0.1);
}

TEST(ExtraKernels, FactoriesValidateArguments) {
  EXPECT_THROW(luKernel(2), ContractViolation);
  EXPECT_THROW(firKernel(0, 4), ContractViolation);
  EXPECT_THROW(histogramKernel(4, 0), ContractViolation);
  EXPECT_THROW(matVecKernel(0), ContractViolation);
}

}  // namespace
}  // namespace memx
