#include <gtest/gtest.h>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/core/analytic_model.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/kernels/mpeg_kernels.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"

namespace memx {
namespace {

CacheConfig dm(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  return c;
}

TEST(AnalyticModel, MissRateInUnitRange) {
  for (const Kernel& k : paperBenchmarks()) {
    for (const std::uint32_t line : {4u, 8u, 16u}) {
      const double mr = analyticMissRate(k, dm(128, line));
      EXPECT_GE(mr, 0.0) << k.name;
      EXPECT_LE(mr, 1.0) << k.name;
    }
  }
}

TEST(AnalyticModel, LargerLinesLowerStreamingMissRate) {
  const Kernel k = dequantKernel();
  const double l4 = analyticMissRate(k, dm(256, 4));
  const double l16 = analyticMissRate(k, dm(256, 16));
  EXPECT_GT(l4, l16);
}

TEST(AnalyticModel, UnoptimizedLayoutPredictsMoreMisses) {
  const Kernel k = dequantKernel();
  const double opt = analyticMissRate(k, dm(64, 8), true);
  const double unopt = analyticMissRate(k, dm(64, 8), false);
  EXPECT_LT(opt, unopt);
}

TEST(AnalyticModel, TooSmallCacheDegradesToConflictMode) {
  const Kernel k = compressKernel();
  // 2 lines of 4 bytes cannot hold the 4-plus required lines.
  const double tiny = analyticMissRate(k, dm(8, 4), true);
  const double roomy = analyticMissRate(k, dm(128, 4), true);
  EXPECT_GT(tiny, roomy);
}

TEST(AnalyticModel, MatchesSimulationOnStreamingKernel) {
  // Dequant with an optimized layout is pure streaming: the closed form
  // should land close to the simulator.
  const Kernel k = dequantKernel();
  const CacheConfig cache = dm(128, 8);
  const AssignmentPlan plan = assignConflictFree(k, cache);
  ASSERT_TRUE(plan.complete);
  const CacheStats sim =
      simulateTrace(cache, generateTrace(k, plan.layout));
  const double analytic = analyticMissRate(k, cache, true);
  EXPECT_NEAR(analytic, sim.missRate(), 0.15);
}

TEST(AnalyticModel, MatchesSimulationOnCompress) {
  const Kernel k = compressKernel();
  const CacheConfig cache = dm(256, 8);
  const AssignmentPlan plan = assignConflictFree(k, cache);
  const CacheStats sim =
      simulateTrace(cache, generateTrace(k, plan.layout));
  const double analytic = analyticMissRate(k, cache, true);
  EXPECT_NEAR(analytic, sim.missRate(), 0.2);
}

TEST(AnalyticModel, IndirectAccessPenalizedBySize) {
  const Kernel vld = mpegVldKernel();
  const double small = analyticMissRate(vld, dm(16, 4));
  const double large = analyticMissRate(vld, dm(1024, 4));
  EXPECT_GE(small, large);
}

}  // namespace
}  // namespace memx
