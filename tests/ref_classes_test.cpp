#include <gtest/gtest.h>

#include "memx/kernels/benchmarks.hpp"
#include "memx/kernels/mpeg_kernels.hpp"
#include "memx/loopir/ref_classes.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(RefClasses, CompressHasTwoClasses) {
  // Paper Example 1: class 1 = {a[i-1][j-1], a[i-1][j]},
  //                  class 2 = {a[i][j-1], a[i][j] (R+W)}.
  const Kernel k = compressKernel();
  const RefAnalysis a = analyzeReferences(k);
  ASSERT_EQ(a.groups.size(), 2u);
  // One class holds the two row-(i-1) reads, the other the three row-i
  // references.
  std::size_t small = a.groups[0].accessIndices.size();
  std::size_t large = a.groups[1].accessIndices.size();
  if (small > large) std::swap(small, large);
  EXPECT_EQ(small, 2u);
  EXPECT_EQ(large, 3u);
  EXPECT_TRUE(a.indirectAccesses.empty());
}

TEST(RefClasses, CompressClassesShareOneCase) {
  const Kernel k = compressKernel();
  const RefAnalysis a = analyzeReferences(k);
  // Identical H on one array: classes are distinct, the case is shared.
  ASSERT_EQ(a.cases.size(), 1u);
  EXPECT_EQ(a.cases[0].groupIndices.size(), 2u);
}

TEST(RefClasses, CompressNeedsFourLines) {
  // Paper Section 3: total number of cache lines is 4 (two per class),
  // minimum cache size is 4 * L.
  const Kernel k = compressKernel();
  for (const std::uint32_t line : {8u, 16u, 32u}) {
    EXPECT_EQ(minCacheLines(k, line), 4u) << "L=" << line;
    EXPECT_EQ(minCacheSizeBytes(k, line), 4u * line);
  }
}

TEST(RefClasses, MatrixAddThreeSingletonClassesOneCase) {
  // Paper Example 2: a, b, c each need one line; same H => one case.
  const Kernel k = matrixAddKernel(6, 1);
  const RefAnalysis a = analyzeReferences(k);
  ASSERT_EQ(a.groups.size(), 3u);
  for (const RefGroup& g : a.groups) {
    EXPECT_EQ(g.accessIndices.size(), 1u);
    EXPECT_EQ(g.spanElems(), 0);
  }
  ASSERT_EQ(a.cases.size(), 1u);
  EXPECT_EQ(a.cases[0].groupIndices.size(), 3u);
  EXPECT_EQ(minCacheLines(k, 2), 3u);
}

TEST(RefClasses, SorHasThreeClasses) {
  // Rows i-1, i, i+1 of array a.
  const RefAnalysis a = analyzeReferences(sorKernel());
  EXPECT_EQ(a.groups.size(), 3u);
}

TEST(RefClasses, PdeClassesAcrossTwoArrays) {
  // a rows i-1, i, i+1 plus the b[i][j] write: 4 classes.
  const RefAnalysis a = analyzeReferences(pdeKernel());
  EXPECT_EQ(a.groups.size(), 4u);
}

TEST(RefClasses, MatMulSeparateHSignatures) {
  // a[i][k], b[k][j], c[i][j] all have different H: 3 classes, 3 cases.
  const RefAnalysis a = analyzeReferences(matMulKernel());
  EXPECT_EQ(a.groups.size(), 3u);
  EXPECT_EQ(a.cases.size(), 3u);
}

TEST(RefClasses, TransposedAccessDistinctFromDirect) {
  const Kernel k = transposeKernel();
  const RefAnalysis a = analyzeReferences(k);
  ASSERT_EQ(a.groups.size(), 2u);
  EXPECT_NE(a.groups[0].h, a.groups[1].h);
  EXPECT_EQ(a.cases.size(), 2u);
}

TEST(RefClasses, CompatibilityPredicate) {
  const Kernel k = compressKernel();
  // All affine references of compress share H: pairwise compatible.
  for (std::size_t i = 0; i < k.body.size(); ++i) {
    for (std::size_t j = 0; j < k.body.size(); ++j) {
      EXPECT_TRUE(compatible(k, k.body[i], k.body[j]));
    }
  }
  const Kernel t = transposeKernel();
  EXPECT_FALSE(compatible(t, t.body[0], t.body[1]));
}

TEST(RefClasses, IndirectAccessesAreIncompatibleAndSeparate) {
  const Kernel vld = mpegVldKernel();
  const RefAnalysis a = analyzeReferences(vld);
  EXPECT_EQ(a.indirectAccesses.size(), 1u);
  EXPECT_FALSE(compatible(vld, vld.body[0], vld.body[1]));
  // Indirect access contributes a floor of one line.
  EXPECT_GE(minCacheLines(vld, 4), a.groups.size() + 1);
}

TEST(RefClasses, GroupDistanceFormula) {
  const Kernel k = compressKernel();
  const RefAnalysis a = analyzeReferences(k);
  for (const RefGroup& g : a.groups) {
    // Span of 1 element, stride 1 => distance 2.
    EXPECT_EQ(groupDistance(g, 1), 2);
  }
}

TEST(RefClasses, LinesNeededPaperFormula) {
  RefGroup g;
  g.minFlatOffset = 0;
  g.maxFlatOffset = 1;  // distance 2
  g.innerStrideElems = 1;
  // L = 2 elements: 2 mod 2 == 0 -> floor(2/2)+1 = 2 lines.
  EXPECT_EQ(linesNeeded(g, 8, 4, 1), 2u);
  // L = 4 elements: 2 mod 4 == 2 -> floor(2/4)+2 = 2 lines.
  EXPECT_EQ(linesNeeded(g, 16, 4, 1), 2u);
  // Distance 1 (singleton): 1 mod anything in {0,1} -> 1 line.
  g.maxFlatOffset = 0;
  EXPECT_EQ(linesNeeded(g, 8, 4, 1), 1u);
}

TEST(RefClasses, LinesNeededRejectsBadGeometry) {
  RefGroup g;
  EXPECT_THROW((void)linesNeeded(g, 2, 4, 1), ContractViolation);  // line < elem
}

TEST(RefClasses, StrideZeroGroupTouchesOneLine) {
  // c[i][j] inside the k-loop of matmul: invariant in the innermost loop.
  const Kernel k = matMulKernel();
  const RefAnalysis a = analyzeReferences(k);
  bool foundInvariant = false;
  for (const RefGroup& g : a.groups) {
    if (g.innerStrideElems == 0) {
      foundInvariant = true;
      EXPECT_EQ(groupDistance(g, 1), 1);
    }
  }
  EXPECT_TRUE(foundInvariant);
}

TEST(RefClasses, MinCacheSizeScalesWithLine) {
  const Kernel k = sorKernel();
  const std::uint64_t atL8 = minCacheSizeBytes(k, 8);
  const std::uint64_t atL16 = minCacheSizeBytes(k, 16);
  EXPECT_GT(atL16, atL8);
}

}  // namespace
}  // namespace memx
