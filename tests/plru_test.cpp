#include <gtest/gtest.h>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/generators.hpp"

namespace memx {
namespace {

CacheConfig plru(std::uint32_t size, std::uint32_t line,
                 std::uint32_t ways) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  c.associativity = ways;
  c.replacement = ReplacementPolicy::TreePLRU;
  return c;
}

TEST(TreePlru, TwoWayEqualsTrueLru) {
  // With two ways the PLRU tree is exact LRU: identical miss counts on
  // any trace.
  const Trace t = randomTrace(0, 4096, 5000, 21);
  CacheConfig lru = plru(128, 8, 2);
  lru.replacement = ReplacementPolicy::LRU;
  EXPECT_EQ(simulateTrace(plru(128, 8, 2), t).misses(),
            simulateTrace(lru, t).misses());
}

TEST(TreePlru, ProtectsMostRecentlyUsed) {
  // Fully-associative 4-way, 4 lines. Touch A,B,C,D then re-touch A;
  // the next fill must not evict A (the MRU).
  CacheSim sim(plru(32, 8, 4));
  sim.access(readRef(0));    // A
  sim.access(readRef(64));   // B
  sim.access(readRef(128));  // C
  sim.access(readRef(192));  // D
  sim.access(readRef(0));    // A again
  sim.access(readRef(256));  // E: evicts someone, never A
  EXPECT_TRUE(sim.contains(0));
}

TEST(TreePlru, StillSolvesPingPong) {
  CacheSim sim(plru(64, 8, 2));
  sim.run(pingPongTrace(0, 64, 20, 0));
  EXPECT_EQ(sim.stats().misses(), 2u);
}

TEST(TreePlru, CloseToLruOnKernels) {
  for (const Kernel& k : paperBenchmarks()) {
    const Trace t = generateTrace(k);
    CacheConfig l = plru(128, 8, 4);
    l.replacement = ReplacementPolicy::LRU;
    const double lruMr = simulateTrace(l, t).missRate();
    const double plruMr = simulateTrace(plru(128, 8, 4), t).missRate();
    EXPECT_NEAR(plruMr, lruMr, 0.05) << k.name;
  }
}

TEST(TreePlru, EightWayValidVictims) {
  // Round-robin over 16 lines in an 8-way set must keep exactly 8 valid.
  CacheSim sim(plru(64, 8, 8));
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      sim.access(readRef(i * 64));  // all map to set 0 (1 set)
    }
  }
  EXPECT_EQ(sim.validLineCount(), 8u);
}

TEST(TreePlru, ResetClearsTreeState) {
  CacheSim sim(plru(32, 8, 4));
  sim.access(readRef(0));
  sim.access(readRef(64));
  sim.reset();
  // After reset the tree points left again: deterministic re-run gives
  // identical stats.
  sim.access(readRef(0));
  sim.access(readRef(64));
  EXPECT_EQ(sim.stats().misses(), 2u);
  EXPECT_EQ(sim.stats().hits(), 0u);
}

TEST(TreePlru, ToStringNames) {
  EXPECT_EQ(toString(ReplacementPolicy::TreePLRU), "tree-PLRU");
}

}  // namespace
}  // namespace memx
