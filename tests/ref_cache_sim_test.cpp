// Known-answer tests for the RefCacheSim oracle itself. The oracle is
// the trusted side of the differential harness, so its behaviour is
// pinned here by hand-computed sequences, not by the simulator it
// exists to check.
#include <gtest/gtest.h>

#include "memx/check/ref_cache_sim.hpp"

namespace memx {
namespace {

CacheConfig config(std::uint32_t size, std::uint32_t line,
                   std::uint32_t assoc,
                   ReplacementPolicy repl = ReplacementPolicy::LRU,
                   WritePolicy write = WritePolicy::WriteBack,
                   AllocatePolicy alloc = AllocatePolicy::WriteAllocate) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  c.associativity = assoc;
  c.replacement = repl;
  c.writePolicy = write;
  c.allocatePolicy = alloc;
  return c;
}

TEST(RefCacheSim, DirectMappedConflict) {
  // 2 sets of 8-byte lines. Addresses 0 and 16 share set 0 and evict
  // each other; address 8 lives alone in set 1.
  RefCacheSim sim(config(16, 8, 1));
  EXPECT_FALSE(sim.access(readRef(0)).hit);   // fill set 0
  EXPECT_FALSE(sim.access(readRef(8)).hit);   // fill set 1
  EXPECT_TRUE(sim.access(readRef(0)).hit);
  EXPECT_FALSE(sim.access(readRef(16)).hit);  // evicts 0
  EXPECT_FALSE(sim.access(readRef(0)).hit);   // evicts 16
  EXPECT_TRUE(sim.access(readRef(8)).hit);
  EXPECT_EQ(sim.stats().reads, 6u);
  EXPECT_EQ(sim.stats().readHits, 2u);
  EXPECT_EQ(sim.stats().readMisses, 4u);
  EXPECT_EQ(sim.stats().lineFills, 4u);
}

TEST(RefCacheSim, LruEvictsLeastRecentlyUsed) {
  // Fully associative, 2 ways. Touch A, B, re-touch A, then C: B goes.
  RefCacheSim sim(config(16, 8, 2));
  sim.access(readRef(0));    // A
  sim.access(readRef(8));    // B
  sim.access(readRef(0));    // A again
  sim.access(readRef(16));   // C evicts B
  EXPECT_TRUE(sim.access(readRef(0)).hit);
  EXPECT_FALSE(sim.access(readRef(8)).hit);
}

TEST(RefCacheSim, FifoEvictsOldestFill) {
  // Same sequence as above, but FIFO evicts A (the older fill) even
  // though it was re-touched.
  RefCacheSim sim(config(16, 8, 2, ReplacementPolicy::FIFO));
  sim.access(readRef(0));    // A
  sim.access(readRef(8));    // B
  sim.access(readRef(0));    // A again (does not refresh FIFO age)
  sim.access(readRef(16));   // C evicts A
  EXPECT_FALSE(sim.access(readRef(0)).hit);
  // A's refill evicted B (the oldest remaining fill, despite the
  // re-touch); B's refill in turn evicts C, and A stays resident.
  EXPECT_FALSE(sim.access(readRef(8)).hit);
  EXPECT_TRUE(sim.access(readRef(0)).hit);
}

TEST(RefCacheSim, TreePlruEvictsAwayFromRecentTouches) {
  // 4-way single set, fill ways 0..3 in order: the tree then points at
  // way 0 (least recently touched half of each subtree).
  RefCacheSim sim(config(32, 8, 4, ReplacementPolicy::TreePLRU));
  sim.access(readRef(0));
  sim.access(readRef(8));
  sim.access(readRef(16));
  sim.access(readRef(24));
  sim.access(readRef(32));  // miss, must evict way 0 (line 0)
  EXPECT_FALSE(sim.access(readRef(0)).hit);
  EXPECT_TRUE(sim.access(readRef(24)).hit);
}

TEST(RefCacheSim, WriteBackTracksDirtyEvictions) {
  RefCacheSim sim(config(8, 8, 1));  // one line
  sim.access(writeRef(0));           // fill + dirty
  const RefAccessOutcome out = sim.access(readRef(8));  // evicts dirty 0
  EXPECT_EQ(out.writebacks, 1u);
  ASSERT_EQ(out.evictedDirtyLines.size(), 1u);
  EXPECT_EQ(out.evictedDirtyLines[0], 0u);
  EXPECT_EQ(sim.stats().writebacks, 1u);
  EXPECT_EQ(sim.stats().memWrites, 0u);
}

TEST(RefCacheSim, WriteThroughSendsEveryWriteToMemory) {
  RefCacheSim sim(config(8, 8, 1, ReplacementPolicy::LRU,
                         WritePolicy::WriteThrough));
  sim.access(writeRef(0));  // miss: allocate, then write through
  sim.access(writeRef(0));  // hit: write through again
  sim.access(readRef(8));   // evicts line 0 - clean, no writeback
  EXPECT_EQ(sim.stats().memWrites, 2u);
  EXPECT_EQ(sim.stats().writebacks, 0u);
}

TEST(RefCacheSim, NoWriteAllocateGoesAroundTheCache) {
  RefCacheSim sim(config(8, 8, 1, ReplacementPolicy::LRU,
                         WritePolicy::WriteBack,
                         AllocatePolicy::NoWriteAllocate));
  const RefAccessOutcome out = sim.access(writeRef(0));
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.fills, 0u);
  EXPECT_EQ(sim.stats().memWrites, 1u);
  EXPECT_EQ(sim.stats().lineFills, 0u);
  // The line was not allocated: a read still misses.
  EXPECT_FALSE(sim.access(readRef(0)).hit);
}

TEST(RefCacheSim, StraddlingAccessCountsOnceButFillsTwice) {
  RefCacheSim sim(config(32, 8, 4));
  const RefAccessOutcome out = sim.access(readRef(6, 4));  // lines 0 and 1
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.fills, 2u);
  EXPECT_EQ(sim.stats().reads, 1u);
  EXPECT_EQ(sim.stats().readMisses, 1u);
  EXPECT_EQ(sim.stats().lineFills, 2u);
  EXPECT_TRUE(sim.access(readRef(6, 4)).hit);
}

TEST(RefCacheSim, InstrBehavesLikeReadAndNeverDirties) {
  RefCacheSim sim(config(8, 8, 1));
  sim.access(instrRef(0));
  EXPECT_EQ(sim.stats().reads, 1u);
  EXPECT_EQ(sim.stats().writes, 0u);
  const RefAccessOutcome out = sim.access(readRef(8));  // evict line 0
  EXPECT_EQ(out.writebacks, 0u);
}

TEST(RefCacheSim, ResetClearsContentsAndStats) {
  RefCacheSim sim(config(16, 8, 2));
  sim.access(writeRef(0));
  sim.reset();
  EXPECT_EQ(sim.stats().accesses(), 0u);
  EXPECT_FALSE(sim.access(readRef(0)).hit);  // cold again
  EXPECT_EQ(sim.stats().writebacks, 0u);     // dirty state gone
}

TEST(RefCacheSim, HierarchyAbsorbsDirtyVictims) {
  // L1: one 8-byte line; L2: four lines. A dirty L1 victim must land in
  // the L2, not in main memory.
  const CacheConfig l1 = config(8, 8, 1);
  const CacheConfig l2 = config(32, 8, 4);
  Trace t;
  t.push(writeRef(0));
  t.push(readRef(8));   // evicts dirty 0 into L2
  t.push(readRef(0));   // L1 miss, L2 hit
  const RefHierarchyStats stats = refSimulateHierarchy(l1, l2, t);
  EXPECT_EQ(stats.mainWrites, 0u);
  EXPECT_EQ(stats.l2.writeHits + stats.l2.writeMisses, 1u);
  EXPECT_EQ(stats.l2.readHits, 1u);  // the refetch of line 0
}

TEST(RefCacheSim, SetSamplingFactorOneIsFullSimulation) {
  const CacheConfig c = config(64, 8, 2);
  Trace t;
  for (int i = 0; i < 50; ++i) t.push(readRef((i * 12) % 256));
  EXPECT_EQ(refEstimateMissRateBySetSampling(c, t, 1),
            refSimulateTrace(c, t).missRate());
}

}  // namespace
}  // namespace memx
