#include <gtest/gtest.h>

#include "memx/energy/energy_model.hpp"
#include "memx/energy/sram_catalog.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig cfg(std::uint32_t size, std::uint32_t line,
                std::uint32_t ways = 1) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  c.associativity = ways;
  return c;
}

CacheEnergyModel model(std::uint32_t size, std::uint32_t line,
                       double em = 4.95, std::uint32_t ways = 1) {
  EnergyParams p;
  p.emNj = em;
  return CacheEnergyModel(cfg(size, line, ways), p, 2.0);
}

TEST(SramCatalog, PaperPartsPresent) {
  const SramCatalog cat = SramCatalog::paperCatalog();
  EXPECT_TRUE(cat.contains("CY7C-2Mbit"));
  EXPECT_DOUBLE_EQ(cat.byName("CY7C-2Mbit").energyPerAccessNj, 4.95);
  EXPECT_DOUBLE_EQ(cat.byName("SRAM-2Mbit-low").energyPerAccessNj, 2.31);
  EXPECT_DOUBLE_EQ(cat.byName("SRAM-16Mbit").energyPerAccessNj, 43.56);
}

TEST(SramCatalog, DerivedEnergyMatchesDatasheetOrder) {
  const SramCatalog cat = SramCatalog::paperCatalog();
  // V * I * t = 3.3 V * 375 mA * 4 ns = 4.95 nJ for the CY7C part.
  EXPECT_NEAR(cat.byName("CY7C-2Mbit").derivedEnergyNj(), 4.95, 1e-9);
}

TEST(SramCatalog, RejectsDuplicatesAndUnknown) {
  SramCatalog cat = SramCatalog::paperCatalog();
  EXPECT_THROW(cat.add(SramPart{"CY7C-2Mbit", 1, 1, 1, 1, 1}),
               ContractViolation);
  EXPECT_THROW((void)cat.byName("nope"), ContractViolation);
}

TEST(EnergyParams, ValidateRejectsBadValues) {
  EnergyParams p;
  p.alphaPj = 0;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = EnergyParams{};
  p.dataActivity = 1.5;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = EnergyParams{};
  p.emNj = -1;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(EnergyModel, HitEnergyIsDecodePlusCell) {
  const CacheEnergyModel m = model(64, 8);
  EXPECT_DOUBLE_EQ(m.hitEnergyNj(),
                   m.decodeEnergyNj() + m.cellEnergyNj());
}

TEST(EnergyModel, MissEnergyAddsIoAndMain) {
  const CacheEnergyModel m = model(64, 8);
  EXPECT_DOUBLE_EQ(m.missEnergyNj(), m.hitEnergyNj() + m.ioEnergyNj() +
                                         m.mainEnergyNj());
  EXPECT_GT(m.missEnergyNj(), m.hitEnergyNj());
}

TEST(EnergyModel, CellEnergyGrowsWithCacheSize) {
  EXPECT_LT(model(16, 8).cellEnergyNj(), model(64, 8).cellEnergyNj());
  EXPECT_LT(model(64, 8).cellEnergyNj(), model(1024, 8).cellEnergyNj());
}

TEST(EnergyModel, CellEnergyIndependentOfWaysAtFixedCapacity) {
  // word_line * bit_line = 8*T cells regardless of the (L, S) split.
  EXPECT_DOUBLE_EQ(model(64, 8, 4.95, 1).cellEnergyNj(),
                   model(64, 8, 4.95, 4).cellEnergyNj());
}

TEST(EnergyModel, IoAndMainEnergyGrowWithLineSize) {
  EXPECT_LT(model(256, 8).ioEnergyNj(), model(256, 32).ioEnergyNj());
  EXPECT_LT(model(256, 8).mainEnergyNj(), model(256, 32).mainEnergyNj());
}

TEST(EnergyModel, MainEnergyScalesWithEm) {
  const double lowEm = model(64, 8, kEmLow2MbitNj).mainEnergyNj();
  const double highEm = model(64, 8, kEmHigh16MbitNj).mainEnergyNj();
  EXPECT_GT(highEm, lowEm * 10);
}

TEST(EnergyModel, PerAccessInterpolatesHitAndMiss) {
  const CacheEnergyModel m = model(64, 8);
  EXPECT_DOUBLE_EQ(m.perAccessNj(0.0), m.hitEnergyNj());
  EXPECT_DOUBLE_EQ(m.perAccessNj(1.0), m.missEnergyNj());
  const double mid = m.perAccessNj(0.5);
  EXPECT_DOUBLE_EQ(mid, 0.5 * m.hitEnergyNj() + 0.5 * m.missEnergyNj());
}

TEST(EnergyModel, TotalScalesWithAccesses) {
  const CacheEnergyModel m = model(64, 8);
  EXPECT_DOUBLE_EQ(m.totalNj(2000, 0.1), 2.0 * m.totalNj(1000, 0.1));
}

TEST(EnergyModel, TotalFromStatsMatchesManual) {
  const CacheEnergyModel m = model(64, 8);
  CacheStats s;
  s.reads = 80;
  s.readHits = 60;
  s.readMisses = 20;
  EXPECT_DOUBLE_EQ(m.totalNj(s), m.totalNj(80, 0.25));
}

TEST(EnergyModel, BreakdownSumsToPerAccess) {
  const CacheEnergyModel m = model(128, 16);
  for (const double mr : {0.0, 0.25, 0.7, 1.0}) {
    const EnergyBreakdown b = m.breakdown(mr);
    EXPECT_NEAR(b.totalNj(), m.perAccessNj(mr), 1e-12) << "mr=" << mr;
  }
}

TEST(EnergyModel, RejectsBadMissRate) {
  const CacheEnergyModel m = model(64, 8);
  EXPECT_THROW((void)m.perAccessNj(-0.1), ContractViolation);
  EXPECT_THROW((void)m.perAccessNj(1.1), ContractViolation);
}

TEST(EnergyModel, RejectsNegativeAddressActivity) {
  EXPECT_THROW(CacheEnergyModel(cfg(64, 8), EnergyParams{}, -1.0),
               ContractViolation);
}

/// The paper's Section-3 observation: at fixed miss rate, growing the
/// cache raises hit energy; whether total energy falls with cache size
/// depends on Em, because bigger caches lower the miss rate but raise
/// E_cell. Emulate the two Em extremes with a fixed miss-rate profile.
TEST(EnergyModel, EmExtremesReverseTheTrend) {
  // A stencil-like miss-rate profile: improves with size, then hits the
  // compulsory floor (what Compress actually shows at L = 4).
  const std::vector<std::pair<std::uint32_t, double>> profile = {
      {16, 0.40}, {64, 0.25}, {256, 0.20}, {512, 0.20}};
  auto total = [&](double em) {
    std::vector<double> e;
    for (const auto& [size, mr] : profile) {
      e.push_back(model(size, 4, em).totalNj(1000, mr));
    }
    return e;
  };
  const std::vector<double> cheap = total(kEmLow2MbitNj);
  const std::vector<double> costly = total(kEmHigh16MbitNj);
  // Expensive main memory: growing the cache pays off.
  EXPECT_GT(costly.front(), costly.back());
  // Cheap main memory: the E_cell growth dominates and energy rises.
  EXPECT_LT(cheap.front(), cheap.back());
}

/// Parameterized property: energy components are monotone in line size.
class LineSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LineSweep, MissEnergyMonotoneInLine) {
  const std::uint32_t line = GetParam();
  if (line < 256) {
    EXPECT_LT(model(1024, line).missEnergyNj(),
              model(1024, line * 2).missEnergyNj());
  }
}

INSTANTIATE_TEST_SUITE_P(Lines, LineSweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u));

TEST(EnergyModel, WriteAccountingAddsStoreTraffic) {
  const CacheEnergyModel m = model(64, 8);
  CacheStats s;
  s.reads = 100;
  s.readHits = 90;
  s.readMisses = 10;
  // Read-only view.
  const double readOnly = m.totalNj(s);
  EXPECT_DOUBLE_EQ(m.totalIncludingWritesNj(s), readOnly);
  // Add write-back evictions: each pays a line transfer.
  s.writebacks = 5;
  EXPECT_DOUBLE_EQ(m.totalIncludingWritesNj(s),
                   readOnly + 5 * m.memoryTransferNj(8));
  // Write-through stores pay word transfers.
  s.writebacks = 0;
  s.memWrites = 20;
  EXPECT_DOUBLE_EQ(m.totalIncludingWritesNj(s),
                   readOnly + 20 * m.memoryTransferNj(4));
}

TEST(EnergyModel, LeakageZeroByDefault) {
  const CacheEnergyModel m = model(64, 8);
  EXPECT_DOUBLE_EQ(m.leakageNj(1e6), 0.0);
}

TEST(EnergyModel, LeakageScalesWithSizeAndCycles) {
  EnergyParams p;
  p.leakagePjPerBytePerCycle = 0.01;
  const CacheEnergyModel small(cfg(64, 8), p, 2.0);
  const CacheEnergyModel big(cfg(512, 8), p, 2.0);
  EXPECT_DOUBLE_EQ(small.leakageNj(1000), 0.01 * 64 * 1000 * 1e-3);
  EXPECT_DOUBLE_EQ(big.leakageNj(1000), 8 * small.leakageNj(1000));
  EXPECT_DOUBLE_EQ(small.leakageNj(2000), 2 * small.leakageNj(1000));
  EXPECT_THROW((void)small.leakageNj(-1), ContractViolation);
}

TEST(EnergyModel, MemoryTransferScalesWithBytes) {
  const CacheEnergyModel m = model(64, 8);
  EXPECT_LT(m.memoryTransferNj(4), m.memoryTransferNj(32));
  EXPECT_NEAR(m.memoryTransferNj(8), 2 * m.memoryTransferNj(4), 1e-12);
}

TEST(EnergyModel, WriteAccountingCountsWriteAccessesToo) {
  const CacheEnergyModel m = model(64, 8);
  CacheStats s;
  s.writes = 50;
  s.writeHits = 40;
  s.writeMisses = 10;
  // 40 hits at hit energy + 10 misses at miss energy.
  EXPECT_DOUBLE_EQ(m.totalIncludingWritesNj(s),
                   40 * m.hitEnergyNj() + 10 * m.missEnergyNj());
}

TEST(EnergyModel, MainBytesPerAccessReducesEm) {
  EnergyParams narrow;  // 1 byte per main access (paper literal)
  EnergyParams wide;
  wide.mainBytesPerAccess = 2;
  const CacheEnergyModel m1(cfg(64, 8), narrow, 2.0);
  const CacheEnergyModel m2(cfg(64, 8), wide, 2.0);
  EXPECT_GT(m1.mainEnergyNj(), m2.mainEnergyNj());
}

}  // namespace
}  // namespace memx
