#include <gtest/gtest.h>

#include "memx/core/parallel_explorer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

ExploreOptions smallSweep() {
  ExploreOptions o;
  o.ranges.minCacheBytes = 16;
  o.ranges.maxCacheBytes = 128;
  o.ranges.maxLineBytes = 16;
  o.ranges.maxAssociativity = 2;
  o.ranges.maxTiling = 4;
  return o;
}

TEST(ParallelExplorer, MatchesSerialExactly) {
  const Kernel k = dequantKernel();
  const ExploreOptions o = smallSweep();
  const ExplorationResult serial = Explorer(o).explore(k);
  const ExplorationResult parallel = exploreParallel(k, o, 4);
  ASSERT_EQ(parallel.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(parallel.points[i].key, serial.points[i].key);
    EXPECT_DOUBLE_EQ(parallel.points[i].missRate,
                     serial.points[i].missRate);
    EXPECT_DOUBLE_EQ(parallel.points[i].cycles, serial.points[i].cycles);
    EXPECT_DOUBLE_EQ(parallel.points[i].energyNj,
                     serial.points[i].energyNj);
  }
}

TEST(ParallelExplorer, AgreesBitExactlyWithSerial) {
  // Stronger than MatchesSerialExactly: exact (not ULP-tolerant)
  // equality of every field, on a kernel deep enough that tiling
  // actually produces distinct trace groups.
  const Kernel k = compressKernel();
  const ExploreOptions o = smallSweep();
  const ExplorationResult serial = Explorer(o).explore(k);
  const ExplorationResult parallel = exploreParallel(k, o, 4);
  ASSERT_EQ(parallel.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(parallel.points[i].key, serial.points[i].key);
    EXPECT_EQ(parallel.points[i].accesses, serial.points[i].accesses);
    EXPECT_EQ(parallel.points[i].missRate, serial.points[i].missRate);
    EXPECT_EQ(parallel.points[i].cycles, serial.points[i].cycles);
    EXPECT_EQ(parallel.points[i].energyNj, serial.points[i].energyNj);
  }
}

TEST(ParallelExplorer, WorkerExceptionPropagates) {
  // An out-of-bounds access fires deep in the iteration space, during
  // trace generation inside a worker thread (optimizeLayout=false keeps
  // the serial planning phase from walking the nest first). The
  // exception must surface on the calling thread, not terminate().
  Kernel k;
  k.name = "oob";
  k.arrays = {ArrayDecl{"a", {100}, 4}};
  k.nest = LoopNest::rectangular({{0, 127}});
  k.body = {makeAccess(0, {AffineExpr::var(0)})};
  ExploreOptions o = smallSweep();
  o.optimizeLayout = false;
  EXPECT_THROW((void)exploreParallel(k, o, 4), ContractViolation);
}

TEST(ParallelExplorer, SingleThreadWorks) {
  const Kernel k = matrixAddKernel(8, 1);
  const ExplorationResult r = exploreParallel(k, smallSweep(), 1);
  EXPECT_FALSE(r.points.empty());
  EXPECT_EQ(r.workload, "matadd");
}

TEST(ParallelExplorer, MoreThreadsThanPointsIsFine) {
  ExploreOptions o = smallSweep();
  o.ranges.maxCacheBytes = 16;
  o.ranges.maxLineBytes = 4;
  o.ranges.sweepAssociativity = false;
  o.ranges.sweepTiling = false;
  const ExplorationResult r =
      exploreParallel(matrixAddKernel(4, 1), o, 64);
  EXPECT_EQ(r.points.size(), 1u);
}

TEST(ParallelExplorer, DefaultThreadCount) {
  const ExplorationResult r =
      exploreParallel(matrixAddKernel(8, 1), smallSweep(), 0);
  EXPECT_FALSE(r.points.empty());
}

}  // namespace
}  // namespace memx
