#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "memx/core/parallel_explorer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

ExploreOptions smallSweep() {
  ExploreOptions o;
  o.ranges.minCacheBytes = 16;
  o.ranges.maxCacheBytes = 128;
  o.ranges.maxLineBytes = 16;
  o.ranges.maxAssociativity = 2;
  o.ranges.maxTiling = 4;
  return o;
}

TEST(ParallelExplorer, MatchesSerialExactly) {
  const Kernel k = dequantKernel();
  const ExploreOptions o = smallSweep();
  const ExplorationResult serial = Explorer(o).explore(k);
  const ExplorationResult parallel = exploreParallel(k, o, 4);
  ASSERT_EQ(parallel.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(parallel.points[i].key, serial.points[i].key);
    EXPECT_DOUBLE_EQ(parallel.points[i].missRate,
                     serial.points[i].missRate);
    EXPECT_DOUBLE_EQ(parallel.points[i].cycles, serial.points[i].cycles);
    EXPECT_DOUBLE_EQ(parallel.points[i].energyNj,
                     serial.points[i].energyNj);
  }
}

TEST(ParallelExplorer, AgreesBitExactlyWithSerial) {
  // Stronger than MatchesSerialExactly: exact (not ULP-tolerant)
  // equality of every field, on a kernel deep enough that tiling
  // actually produces distinct trace groups.
  const Kernel k = compressKernel();
  const ExploreOptions o = smallSweep();
  const ExplorationResult serial = Explorer(o).explore(k);
  const ExplorationResult parallel = exploreParallel(k, o, 4);
  ASSERT_EQ(parallel.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(parallel.points[i].key, serial.points[i].key);
    EXPECT_EQ(parallel.points[i].accesses, serial.points[i].accesses);
    EXPECT_EQ(parallel.points[i].missRate, serial.points[i].missRate);
    EXPECT_EQ(parallel.points[i].cycles, serial.points[i].cycles);
    EXPECT_EQ(parallel.points[i].energyNj, serial.points[i].energyNj);
  }
}

TEST(ParallelExplorer, WorkerExceptionPropagates) {
  // An out-of-bounds access fires deep in the iteration space, during
  // trace generation inside a worker thread (optimizeLayout=false keeps
  // the serial planning phase from walking the nest first). The
  // exception must surface on the calling thread, not terminate().
  Kernel k;
  k.name = "oob";
  k.arrays = {ArrayDecl{"a", {100}, 4}};
  k.nest = LoopNest::rectangular({{0, 127}});
  k.body = {makeAccess(0, {AffineExpr::var(0)})};
  ExploreOptions o = smallSweep();
  o.optimizeLayout = false;
  EXPECT_THROW((void)exploreParallel(k, o, 4), ContractViolation);
}

TEST(ParallelExplorer, SingleThreadWorks) {
  const Kernel k = matrixAddKernel(8, 1);
  const ExplorationResult r = exploreParallel(k, smallSweep(), 1);
  EXPECT_FALSE(r.points.empty());
  EXPECT_EQ(r.workload, "matadd");
}

TEST(ParallelExplorer, MoreThreadsThanPointsIsFine) {
  ExploreOptions o = smallSweep();
  o.ranges.maxCacheBytes = 16;
  o.ranges.maxLineBytes = 4;
  o.ranges.sweepAssociativity = false;
  o.ranges.sweepTiling = false;
  const ExplorationResult r =
      exploreParallel(matrixAddKernel(4, 1), o, 64);
  EXPECT_EQ(r.points.size(), 1u);
}

TEST(ParallelExplorer, DefaultThreadCount) {
  const ExplorationResult r =
      exploreParallel(matrixAddKernel(8, 1), smallSweep(), 0);
  EXPECT_FALSE(r.points.empty());
}

// Regression: ExplorationResult::find lazily builds its sorted index
// through a logically-const call. Before the index was put behind a
// shared mutex, N threads doing their first find() on a shared result
// raced on that construction (the serve result store hands one cached
// result to many workers at once). Run under TSan this test is the
// tripwire; under any build it verifies concurrent lookups stay
// correct.
TEST(ExplorationResultConcurrency, ConcurrentFindIsSafeAndCorrect) {
  const Kernel k = dequantKernel();
  const ExploreOptions o = smallSweep();
  const Explorer explorer(o);
  const ExplorationResult result = explorer.explore(k);
  const std::vector<ConfigKey> keys = explorer.sweepKeys();
  ASSERT_EQ(keys.size(), result.points.size());

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Stagger starting offsets so threads collide on different keys
      // while the index is still being built.
      for (std::size_t round = 0; round < 50; ++round) {
        for (std::size_t i = 0; i < keys.size(); ++i) {
          const ConfigKey& key =
              keys[(i + static_cast<std::size_t>(t) * 7) % keys.size()];
          const DesignPoint* p = result.find(key);
          if (p == nullptr || p->key != key) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
  // All that concurrency amounted to exactly one index construction.
  EXPECT_EQ(result.indexRebuilds(), 1u);
  EXPECT_EQ(result.indexAppends(), 0u);
  const ConfigKey missing{3, 3, 3, 3};
  EXPECT_EQ(result.find(missing), nullptr);
}

// buildIndex() is the publish-time precompute: afterwards every
// concurrent find() takes only the shared lock, and copies drop the
// index rather than share it.
TEST(ExplorationResultConcurrency, BuildIndexIsIdempotentAndCopiesDropIt) {
  const Kernel k = dequantKernel();
  const Explorer explorer(smallSweep());
  const ExplorationResult result = explorer.explore(k);
  result.buildIndex();
  result.buildIndex();
  EXPECT_EQ(result.indexRebuilds(), 1u);
  ASSERT_FALSE(result.points.empty());
  EXPECT_EQ(result.find(result.points.front().key),
            &result.points.front());
  EXPECT_EQ(result.indexRebuilds(), 1u);

  const ExplorationResult copy(result);
  EXPECT_EQ(copy.indexRebuilds(), 0u);  // fresh index state
  EXPECT_EQ(copy.find(copy.points.front().key), &copy.points.front());
  EXPECT_EQ(copy.indexRebuilds(), 1u);
}

}  // namespace
}  // namespace memx
