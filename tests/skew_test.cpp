#include <gtest/gtest.h>

#include <map>

#include "memx/loopir/trace_gen.hpp"
#include "memx/util/assert.hpp"
#include "memx/xform/dependence.hpp"
#include "memx/xform/tiling.hpp"

namespace memx {
namespace {

AffineExpr I(std::int64_t c = 0) { return AffineExpr::var(0).plusConstant(c); }
AffineExpr J(std::int64_t c = 0) { return AffineExpr::var(1).plusConstant(c); }

/// Wavefront stencil a[i][j] = a[i-1][j+1]: distance (1, -1), which
/// blocks rectangular tiling until the inner loop is skewed.
Kernel wavefrontKernel(std::int64_t n = 10) {
  Kernel k;
  k.name = "wavefront";
  k.arrays = {ArrayDecl{"a", {n, n}, 1}};
  k.nest = LoopNest::rectangular({{1, n - 2}, {0, n - 2}});
  k.body = {makeAccess(0, {I(-1), J(+1)}),
            makeAccess(0, {I(), J()}, AccessType::Write)};
  k.validate();
  return k;
}

std::map<std::uint64_t, std::size_t> multiset(const Trace& t) {
  std::map<std::uint64_t, std::size_t> m;
  for (const MemRef& r : t) ++m[r.addr];
  return m;
}

TEST(Skew, PreservesTraceExactly) {
  const Kernel k = wavefrontKernel();
  const Kernel skewed = skew(k, 1, 0, 1);
  const Trace a = generateTrace(k);
  const Trace b = generateTrace(skewed);
  ASSERT_EQ(a.size(), b.size());
  // Skewing renames the induction variable without reordering anything:
  // the traces are identical access for access.
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr) << "i=" << i;
    EXPECT_EQ(a[i].type, b[i].type);
  }
}

TEST(Skew, MakesWavefrontTileable) {
  const Kernel k = wavefrontKernel();
  // Distance (1, -1): rectangular tiling of (i, j) is illegal.
  EXPECT_FALSE(tilingIsLegal(k));
  // After skewing j by i, the distance becomes (1, 0): legal.
  const Kernel skewed = skew(k, 1, 0, 1);
  EXPECT_TRUE(tilingIsLegal(skewed));
}

TEST(Skew, DependenceDistancesShiftByFactor) {
  const Kernel skewed = skew(wavefrontKernel(), 1, 0, 2);
  // d' = (1, -1 + 2*1) = (1, 1).
  bool found = false;
  for (const Dependence& d : computeDependences(skewed)) {
    if (d.isDistanceVector() && d.distance.size() >= 2 &&
        *d.distance[0].value == 1) {
      EXPECT_EQ(*d.distance[1].value, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Skew, SkewedThenTiledStillSameMultiset) {
  const Kernel k = wavefrontKernel(12);
  const Kernel skewed = skew(k, 1, 0, 1);
  // The skewed nest has affine bounds, so tiling must reject it (the
  // transform requires rectangular input)...
  EXPECT_THROW(tile2D(skewed, 2), ContractViolation);
  // ...but the untiled skewed traversal still covers the same accesses.
  EXPECT_EQ(multiset(generateTrace(skewed)), multiset(generateTrace(k)));
}

TEST(Skew, RejectsBadLevels) {
  const Kernel k = wavefrontKernel();
  EXPECT_THROW(skew(k, 0, 1, 1), ContractViolation);  // source inner
  EXPECT_THROW(skew(k, 1, 1, 1), ContractViolation);  // same level
  EXPECT_THROW(skew(k, 5, 0, 1), ContractViolation);  // out of range
}

TEST(Skew, IterationCountUnchanged) {
  const Kernel k = wavefrontKernel(9);
  EXPECT_EQ(skew(k, 1, 0, 3).nest.iterationCount(),
            k.nest.iterationCount());
}

}  // namespace
}  // namespace memx
