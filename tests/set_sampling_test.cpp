#include <gtest/gtest.h>

#include <random>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/set_sampling.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/generators.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig dm(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  return c;
}

TEST(SetSampling, KeepsOnlyMatchingSets) {
  const Trace t = stridedTrace(0, 64, 8, 4);  // one ref per line
  const Trace sampled = sampleSets(t, 8, 8, 2, 0);
  EXPECT_EQ(sampled.size(), 32u);
  for (const MemRef& r : sampled) {
    EXPECT_EQ((r.addr / 8) % 8 % 2, 0u);
  }
}

TEST(SetSampling, OffsetsPartitionTheTrace) {
  const Trace t = randomTrace(0, 8192, 2000, 3);
  std::size_t total = 0;
  for (std::uint32_t off = 0; off < 4; ++off) {
    total += sampleSets(t, 8, 16, 4, off).size();
  }
  EXPECT_EQ(total, t.size());
}

TEST(SetSampling, FactorOneIsExact) {
  const Trace t = randomTrace(0, 8192, 3000, 7);
  const CacheConfig c = dm(256, 8);
  EXPECT_DOUBLE_EQ(estimateMissRateBySetSampling(c, t, 1),
                   simulateTrace(c, t).missRate());
}

TEST(SetSampling, EstimateTracksFullSimulationOnRandom) {
  const Trace t = randomTrace(0, 16384, 20000, 13);
  const CacheConfig c = dm(512, 8);  // 64 sets
  const double full = simulateTrace(c, t).missRate();
  for (const std::uint32_t factor : {2u, 4u, 8u}) {
    const double est = estimateMissRateBySetSampling(c, t, factor);
    EXPECT_NEAR(est, full, 0.05) << "factor=" << factor;
  }
}

TEST(SetSampling, EstimateTracksFullSimulationOnKernels) {
  for (const Kernel& k : {sorKernel(), dequantKernel()}) {
    const Trace t = generateTrace(k);
    const CacheConfig c = dm(256, 8);  // 32 sets
    const double full = simulateTrace(c, t).missRate();
    const double est = estimateMissRateBySetSampling(c, t, 4);
    EXPECT_NEAR(est, full, 0.08) << k.name;
  }
}

TEST(SetSampling, AverageOverOffsetsIsCloser) {
  const Trace t = randomTrace(0, 16384, 10000, 17);
  const CacheConfig c = dm(512, 8);
  const double full = simulateTrace(c, t).missRate();
  double sum = 0.0;
  for (std::uint32_t off = 0; off < 4; ++off) {
    sum += estimateMissRateBySetSampling(c, t, 4, off);
  }
  EXPECT_NEAR(sum / 4.0, full, 0.02);
}

TEST(SetSampling, SplitsStraddlersAtLineGranularity) {
  // lineBytes=8, numSets=4: a 2-byte access at addr 15 touches line 1
  // (set 1) and line 2 (set 2). Classifying by the first line alone
  // dropped it from every even-set sample and kept the set-2 byte in
  // the odd one — probes leaking across samples.
  Trace t;
  t.push(MemRef{15, 2, AccessType::Read});
  const Trace even = sampleSets(t, 8, 4, 2, 0);  // keeps sets 0 and 2
  ASSERT_EQ(even.size(), 1u);
  EXPECT_EQ(even[0].addr, 16u);  // clipped to line 2
  EXPECT_EQ(even[0].size, 1u);
  const Trace odd = sampleSets(t, 8, 4, 2, 1);  // keeps sets 1 and 3
  ASSERT_EQ(odd.size(), 1u);
  EXPECT_EQ(odd[0].addr, 15u);  // clipped to line 1
  EXPECT_EQ(odd[0].size, 1u);
}

Trace straddlingTrace(std::size_t n, unsigned seed) {
  // Unaligned sizes so many references straddle 8-byte lines.
  std::mt19937_64 rng(seed);
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t addr = rng() % 4096;
    const std::uint32_t size = 1 + rng() % 16;
    t.push(MemRef{addr, size,
                  rng() % 4 == 0 ? AccessType::Write : AccessType::Read});
  }
  return t;
}

TEST(SetSampling, OffsetsConserveLineFillsOnStraddlingTraces) {
  // With per-line splitting each line probe of the full simulation
  // lands in exactly one sample, and the kept sets simulate exactly as
  // they do in the full cache — so probe-based counters conserve:
  // summed over all offsets, the shrunk simulations' lineFills (and
  // writebacks) equal the full simulation's. This was false under
  // first-line classification, which leaked straddler probes across
  // samples.
  const Trace t = straddlingTrace(4000, 29);
  const CacheConfig c = dm(256, 8);  // 32 sets, direct-mapped
  const CacheStats full = simulateTrace(c, t);
  for (const std::uint32_t factor : {2u, 4u}) {
    std::uint64_t fills = 0;
    std::uint64_t writebacks = 0;
    for (std::uint32_t off = 0; off < factor; ++off) {
      const CacheStats s = sampleSetsStats(c, t, factor, off);
      fills += s.lineFills;
      writebacks += s.writebacks;
    }
    EXPECT_EQ(fills, full.lineFills) << "factor=" << factor;
    EXPECT_EQ(writebacks, full.writebacks) << "factor=" << factor;
  }
}

TEST(SetSampling, EstimateStaysCloseOnStraddlingTraces) {
  // Unlike the probe-level counters above, per-access miss rate is not
  // exactly conserved on straddling traces: the full simulation counts
  // a straddler as one access while its split halves land in different
  // samples as separate accesses, so the pooled denominator is larger.
  // The estimate is still close — just not within the aligned-trace
  // tolerance.
  const Trace t = straddlingTrace(20000, 31);
  const CacheConfig c = dm(512, 8);
  const double full = simulateTrace(c, t).missRate();
  double sum = 0.0;
  for (std::uint32_t off = 0; off < 4; ++off) {
    sum += estimateMissRateBySetSampling(c, t, 4, off);
  }
  EXPECT_NEAR(sum / 4.0, full, 0.08);
}

TEST(SetSampling, RejectsBadArguments) {
  const Trace t = stridedTrace(0, 8, 8);
  EXPECT_THROW(sampleSets(t, 12, 8, 2), ContractViolation);
  EXPECT_THROW(sampleSets(t, 8, 8, 3), ContractViolation);
  EXPECT_THROW(sampleSets(t, 8, 8, 16), ContractViolation);
  EXPECT_THROW(sampleSets(t, 8, 8, 2, 5), ContractViolation);
}

TEST(SetSampling, EmptySampleYieldsZero) {
  // A trace that only touches set 1 sampled at offset 0 is empty.
  const Trace t = stridedTrace(8, 10, 0);
  EXPECT_DOUBLE_EQ(
      estimateMissRateBySetSampling(dm(64, 8), t, 8, 0), 0.0);
}

}  // namespace
}  // namespace memx
