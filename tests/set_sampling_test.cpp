#include <gtest/gtest.h>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/set_sampling.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/generators.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig dm(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  return c;
}

TEST(SetSampling, KeepsOnlyMatchingSets) {
  const Trace t = stridedTrace(0, 64, 8, 4);  // one ref per line
  const Trace sampled = sampleSets(t, 8, 8, 2, 0);
  EXPECT_EQ(sampled.size(), 32u);
  for (const MemRef& r : sampled) {
    EXPECT_EQ((r.addr / 8) % 8 % 2, 0u);
  }
}

TEST(SetSampling, OffsetsPartitionTheTrace) {
  const Trace t = randomTrace(0, 8192, 2000, 3);
  std::size_t total = 0;
  for (std::uint32_t off = 0; off < 4; ++off) {
    total += sampleSets(t, 8, 16, 4, off).size();
  }
  EXPECT_EQ(total, t.size());
}

TEST(SetSampling, FactorOneIsExact) {
  const Trace t = randomTrace(0, 8192, 3000, 7);
  const CacheConfig c = dm(256, 8);
  EXPECT_DOUBLE_EQ(estimateMissRateBySetSampling(c, t, 1),
                   simulateTrace(c, t).missRate());
}

TEST(SetSampling, EstimateTracksFullSimulationOnRandom) {
  const Trace t = randomTrace(0, 16384, 20000, 13);
  const CacheConfig c = dm(512, 8);  // 64 sets
  const double full = simulateTrace(c, t).missRate();
  for (const std::uint32_t factor : {2u, 4u, 8u}) {
    const double est = estimateMissRateBySetSampling(c, t, factor);
    EXPECT_NEAR(est, full, 0.05) << "factor=" << factor;
  }
}

TEST(SetSampling, EstimateTracksFullSimulationOnKernels) {
  for (const Kernel& k : {sorKernel(), dequantKernel()}) {
    const Trace t = generateTrace(k);
    const CacheConfig c = dm(256, 8);  // 32 sets
    const double full = simulateTrace(c, t).missRate();
    const double est = estimateMissRateBySetSampling(c, t, 4);
    EXPECT_NEAR(est, full, 0.08) << k.name;
  }
}

TEST(SetSampling, AverageOverOffsetsIsCloser) {
  const Trace t = randomTrace(0, 16384, 10000, 17);
  const CacheConfig c = dm(512, 8);
  const double full = simulateTrace(c, t).missRate();
  double sum = 0.0;
  for (std::uint32_t off = 0; off < 4; ++off) {
    sum += estimateMissRateBySetSampling(c, t, 4, off);
  }
  EXPECT_NEAR(sum / 4.0, full, 0.02);
}

TEST(SetSampling, RejectsBadArguments) {
  const Trace t = stridedTrace(0, 8, 8);
  EXPECT_THROW(sampleSets(t, 12, 8, 2), ContractViolation);
  EXPECT_THROW(sampleSets(t, 8, 8, 3), ContractViolation);
  EXPECT_THROW(sampleSets(t, 8, 8, 16), ContractViolation);
  EXPECT_THROW(sampleSets(t, 8, 8, 2, 5), ContractViolation);
}

TEST(SetSampling, EmptySampleYieldsZero) {
  // A trace that only touches set 1 sampled at offset 0 is empty.
  const Trace t = stridedTrace(8, 10, 0);
  EXPECT_DOUBLE_EQ(
      estimateMissRateBySetSampling(dm(64, 8), t, 8, 0), 0.0);
}

}  // namespace
}  // namespace memx
