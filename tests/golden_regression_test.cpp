// Golden-results regression: miss/cycle/energy numbers for the paper
// kernels at Table-level configurations, pinned in tests/golden/*.csv.
// A silent change to the trace generator, the simulator or the models
// fails here with the exact per-point delta.
//
// Regenerating (only when a model change is *intended*):
//   MEMX_REGEN_GOLDEN=1 ./build/tests/test_golden_regression
// rewrites the corpus in the source tree; commit the diff alongside the
// change that caused it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>

#include "memx/core/explorer.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/report/result_io.hpp"

#ifndef MEMX_GOLDEN_DIR
#error "MEMX_GOLDEN_DIR must point at tests/golden"
#endif

namespace memx {
namespace {

/// The corpus sweep: restricted MemExplore ranges around the paper's
/// table configurations (T 16..256, L 4..32, S <= 4, B <= 4) with the
/// paper-default energy/timing parameters and the Sec. 4.1 layout.
ExploreOptions goldenOptions() {
  ExploreOptions o;
  o.ranges.onChipBytes = 256;
  o.ranges.maxCacheBytes = 256;
  o.ranges.minCacheBytes = 16;
  o.ranges.minLineBytes = 4;
  o.ranges.maxLineBytes = 32;
  o.ranges.maxAssociativity = 4;
  o.ranges.maxTiling = 4;
  return o;
}

struct GoldenKernel {
  const char* file;
  Kernel kernel;
};

std::vector<GoldenKernel> goldenKernels() {
  std::vector<GoldenKernel> kernels;
  kernels.push_back({"compress.csv", compressKernel()});
  kernels.push_back({"matadd.csv", matrixAddKernel(8)});
  kernels.push_back({"dequant.csv", dequantKernel(16)});
  kernels.push_back({"transpose.csv", transposeKernel(16)});
  return kernels;
}

std::string goldenPath(const char* file) {
  return std::string(MEMX_GOLDEN_DIR) + "/" + file;
}

/// Relative comparison with an absolute floor; prints the delta.
void expectClose(const char* field, const std::string& label,
                 double golden, double current) {
  const double tol = 1e-9 * (std::abs(golden) + 1.0);
  EXPECT_NEAR(current, golden, tol)
      << label << " " << field << " drifted: golden=" << golden
      << " current=" << current << " delta=" << (current - golden);
}

TEST(GoldenRegression, PaperKernelSweepsMatchCorpus) {
  const bool regen = std::getenv("MEMX_REGEN_GOLDEN") != nullptr;
  const Explorer explorer(goldenOptions());

  for (const GoldenKernel& g : goldenKernels()) {
    const ExplorationResult current = explorer.explore(g.kernel);
    const std::string path = goldenPath(g.file);

    if (regen) {
      std::ofstream out(path);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      writeResultCsv(out, current);
      continue;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden corpus " << path
        << " (regenerate with MEMX_REGEN_GOLDEN=1)";
    const ExplorationResult golden = readResultCsv(in);

    EXPECT_EQ(golden.workload, current.workload);
    ASSERT_EQ(golden.points.size(), current.points.size())
        << g.file << ": sweep shape changed";
    for (std::size_t i = 0; i < golden.points.size(); ++i) {
      const DesignPoint& want = golden.points[i];
      const DesignPoint& got = current.points[i];
      ASSERT_EQ(want.key, got.key)
          << g.file << ": key order changed at point " << i;
      const std::string label = current.workload + "/" + got.label();
      EXPECT_EQ(want.accesses, got.accesses) << label;
      expectClose("miss_rate", label, want.missRate, got.missRate);
      expectClose("cycles", label, want.cycles, got.cycles);
      expectClose("energy_nj", label, want.energyNj, got.energyNj);
    }
  }
}

}  // namespace
}  // namespace memx
