#include <gtest/gtest.h>

#include "memx/energy/dram_model.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/generators.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(Dram, ConfigValidation) {
  DramConfig c;
  c.rowBytes = 100;
  EXPECT_THROW(c.validate(), ContractViolation);
  c = DramConfig{};
  c.rowMissNj = 0.5;  // cheaper than a hit
  EXPECT_THROW(c.validate(), ContractViolation);
  c = DramConfig{};
  c.accessBytes = 1024;  // wider than a row
  c.rowBytes = 512;
  EXPECT_THROW(c.validate(), ContractViolation);
}

TEST(Dram, SequentialFillsHitTheOpenRow) {
  DramModel m(DramConfig{});
  // 512-byte row, 2-byte accesses: one fill of 32 bytes = 16 accesses,
  // first one opens the row.
  m.fill(0, 32);
  EXPECT_EQ(m.stats().accesses, 16u);
  EXPECT_EQ(m.stats().rowMisses, 1u);
  EXPECT_EQ(m.stats().rowHits, 15u);
  // The next fill in the same row is all hits.
  m.fill(32, 32);
  EXPECT_EQ(m.stats().rowMisses, 1u);
}

TEST(Dram, RowCrossingsPayActivation) {
  DramConfig c;
  c.rowBytes = 64;
  DramModel m(c);
  m.fill(0, 32);
  m.fill(64, 32);   // new row
  m.fill(0, 32);    // back to the first row: another activation
  EXPECT_EQ(m.stats().rowMisses, 3u);
}

TEST(Dram, EnergyAccumulates) {
  DramConfig c;
  c.rowHitNj = 1.0;
  c.rowMissNj = 10.0;
  DramModel m(c);
  m.fill(0, 8);  // 4 accesses: 1 miss + 3 hits
  EXPECT_DOUBLE_EQ(m.stats().energyNj, 10.0 + 3.0);
  EXPECT_DOUBLE_EQ(m.equivalentEmNj(), 13.0 / 4.0);
}

TEST(Dram, PingPongBetweenRowsIsWorstCase) {
  DramConfig c;
  c.rowBytes = 64;
  c.accessBytes = 2;
  DramModel m(c);
  for (int i = 0; i < 10; ++i) {
    m.fill(0, 2);
    m.fill(1024, 2);
  }
  EXPECT_DOUBLE_EQ(m.stats().rowHitRate(), 0.0);
  EXPECT_DOUBLE_EQ(m.equivalentEmNj(), c.rowMissNj);
}

TEST(Dram, ReplayMissStreamSequentialKernelsHitRows) {
  // Streaming kernels produce sequential miss addresses: high row-hit
  // rate, so the equivalent Em is near the row-hit energy.
  CacheConfig cache;
  cache.sizeBytes = 64;
  cache.lineBytes = 8;
  const DramStats s =
      replayMissStream(cache, generateTrace(dequantKernel()));
  // One 8-byte fill = 4 accesses; the arrays interleave across rows, so
  // each fill re-opens its row: exactly 1 miss + 3 hits per fill.
  EXPECT_GT(s.rowHitRate(), 0.7);
  DramConfig c;
  EXPECT_LT(s.energyNj, s.flatEnergyNj(c.rowMissNj));
}

TEST(Dram, RandomMissStreamNearRowMissEnergy) {
  CacheConfig cache;
  cache.sizeBytes = 64;
  cache.lineBytes = 8;
  const Trace t = randomTrace(0, 1 << 20, 5000, 3);
  const DramStats s = replayMissStream(cache, t);
  // Each 8-byte fill is 4 accesses: 1 row miss + 3 row hits typically.
  EXPECT_LT(s.rowHitRate(), 0.8);
  EXPECT_GT(s.rowHitRate(), 0.6);
}

TEST(Dram, FillSmallerThanAccessRejected) {
  DramConfig c;
  c.accessBytes = 8;
  DramModel m(c);
  EXPECT_THROW(m.fill(0, 4), ContractViolation);
}

}  // namespace
}  // namespace memx
