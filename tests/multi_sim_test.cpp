#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/multi_sim.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

/// Mixed random reads/writes/ifetches over a span that overflows the
/// small bank geometries, with occasional line-straddling sizes.
Trace mixedRandomTrace(std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> addr(0, 4096);
  std::uniform_int_distribution<int> kind(0, 9);
  std::vector<MemRef> refs;
  refs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t a = addr(rng);
    const int k = kind(rng);
    if (k < 4) {
      refs.push_back(readRef(a));
    } else if (k < 7) {
      refs.push_back(writeRef(a));
    } else if (k < 9) {
      refs.push_back(instrRef(a));
    } else {
      refs.push_back(MemRef{a, 8, AccessType::Read});  // may straddle lines
    }
  }
  return Trace(std::move(refs));
}

/// A bank mixing geometries: several distinct line sizes so the shared
/// line-decomposition groups are actually exercised, plus repeated line
/// sizes within a group.
std::vector<CacheConfig> bankConfigs(ReplacementPolicy replacement,
                                     WritePolicy write,
                                     AllocatePolicy allocate) {
  std::vector<CacheConfig> configs;
  const std::uint32_t geometries[][3] = {
      {64, 8, 1}, {64, 8, 2}, {128, 8, 4}, {64, 16, 2},
      {128, 16, 1}, {256, 32, 2}, {64, 4, 1},
  };
  for (const auto& g : geometries) {
    CacheConfig c;
    c.sizeBytes = g[0];
    c.lineBytes = g[1];
    c.associativity = g[2];
    c.replacement = replacement;
    c.writePolicy = write;
    c.allocatePolicy = allocate;
    configs.push_back(c);
  }
  return configs;
}

void expectStatsEqual(const CacheStats& a, const CacheStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.reads, b.reads) << what;
  EXPECT_EQ(a.writes, b.writes) << what;
  EXPECT_EQ(a.readHits, b.readHits) << what;
  EXPECT_EQ(a.readMisses, b.readMisses) << what;
  EXPECT_EQ(a.writeHits, b.writeHits) << what;
  EXPECT_EQ(a.writeMisses, b.writeMisses) << what;
  EXPECT_EQ(a.lineFills, b.lineFills) << what;
  EXPECT_EQ(a.writebacks, b.writebacks) << what;
  EXPECT_EQ(a.memWrites, b.memWrites) << what;
}

TEST(MultiCacheSim, MatchesIndependentSimsEveryPolicyCombination) {
  const Trace trace = mixedRandomTrace(3000, 42);
  for (const ReplacementPolicy replacement :
       {ReplacementPolicy::LRU, ReplacementPolicy::FIFO,
        ReplacementPolicy::Random, ReplacementPolicy::TreePLRU}) {
    for (const WritePolicy write :
         {WritePolicy::WriteBack, WritePolicy::WriteThrough}) {
      for (const AllocatePolicy allocate :
           {AllocatePolicy::WriteAllocate, AllocatePolicy::NoWriteAllocate}) {
        const std::vector<CacheConfig> configs =
            bankConfigs(replacement, write, allocate);
        const std::vector<CacheStats> multi =
            simulateTraceMulti(configs, trace);
        ASSERT_EQ(multi.size(), configs.size());
        for (std::size_t i = 0; i < configs.size(); ++i) {
          const CacheStats solo = simulateTrace(configs[i], trace);
          expectStatsEqual(multi[i], solo,
                           configs[i].label() + " " + toString(replacement) +
                               "/" + toString(write) + "/" +
                               toString(allocate));
        }
      }
    }
  }
}

TEST(MultiCacheSim, MatchesIndependentSimsOnSeveralSeeds) {
  const std::vector<CacheConfig> configs = bankConfigs(
      ReplacementPolicy::LRU, WritePolicy::WriteBack,
      AllocatePolicy::WriteAllocate);
  for (const std::uint64_t seed : {1u, 7u, 1234u}) {
    const Trace trace = mixedRandomTrace(1500, seed);
    const std::vector<CacheStats> multi = simulateTraceMulti(configs, trace);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      expectStatsEqual(multi[i], simulateTrace(configs[i], trace),
                       configs[i].label() + " seed " + std::to_string(seed));
    }
  }
}

TEST(MultiCacheSim, ResetClearsStatsAndContents) {
  const std::vector<CacheConfig> configs = bankConfigs(
      ReplacementPolicy::LRU, WritePolicy::WriteBack,
      AllocatePolicy::WriteAllocate);
  const Trace trace = mixedRandomTrace(500, 3);
  MultiCacheSim bank(configs);
  bank.run(trace);
  const CacheStats first = bank.stats(0);
  bank.reset();
  EXPECT_EQ(bank.stats(0).accesses(), 0u);
  bank.run(trace);
  expectStatsEqual(bank.stats(0), first, "after reset");
}

TEST(MultiCacheSim, RejectsEmptyBankAndInvalidConfig) {
  EXPECT_THROW(MultiCacheSim(std::vector<CacheConfig>{}), ContractViolation);
  CacheConfig bad;
  bad.sizeBytes = 48;  // not a power of two
  EXPECT_THROW(MultiCacheSim(std::vector<CacheConfig>{bad}),
               ContractViolation);
}

TEST(MultiCacheSim, StatsFollowInputOrder) {
  std::vector<CacheConfig> configs;
  CacheConfig small;
  small.sizeBytes = 16;
  small.lineBytes = 4;
  CacheConfig large;
  large.sizeBytes = 1024;
  large.lineBytes = 4;
  configs.push_back(large);
  configs.push_back(small);
  const Trace trace = mixedRandomTrace(2000, 5);
  const std::vector<CacheStats> stats = simulateTraceMulti(configs, trace);
  // The large cache can only miss less; order must match the inputs.
  EXPECT_LE(stats[0].misses(), stats[1].misses());
  EXPECT_EQ(stats[0].accesses(), stats[1].accesses());
}

}  // namespace
}  // namespace memx
