#include <gtest/gtest.h>

#include <set>

#include "memx/kernels/benchmarks.hpp"
#include "memx/util/assert.hpp"
#include "memx/kernels/mpeg_kernels.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/trace_stats.hpp"

namespace memx {
namespace {

TEST(Benchmarks, CompressShapeMatchesPaper) {
  const Kernel k = compressKernel();
  EXPECT_EQ(k.name, "compress");
  EXPECT_EQ(k.nest.iterationCount(), 961u);  // 31 x 31
  EXPECT_EQ(k.body.size(), 5u);              // 4 reads + 1 write
  EXPECT_EQ(k.referenceCount(), 4805u);
}

TEST(Benchmarks, CompressTraceStaysInArray) {
  const Kernel k = compressKernel();
  const Trace t = generateTrace(k);
  const TraceStats s = computeStats(t);
  EXPECT_EQ(s.total, 4805u);
  EXPECT_LT(s.maxAddr, 32u * 32u * 4u);
  EXPECT_EQ(s.writes, 961u);
}

TEST(Benchmarks, MatMulShape) {
  const Kernel k = matMulKernel();
  EXPECT_EQ(k.nest.iterationCount(), 31u * 31u * 31u);
  EXPECT_EQ(k.body.size(), 4u);
  EXPECT_EQ(k.arrays.size(), 3u);
}

TEST(Benchmarks, MatrixAddMatchesPaperExample) {
  const Kernel k = matrixAddKernel(6, 1);
  EXPECT_EQ(k.nest.iterationCount(), 36u);
  EXPECT_EQ(k.arrays[0].sizeBytes(), 36u);
  const Trace t = generateTrace(k);
  EXPECT_EQ(t.size(), 108u);
}

TEST(Benchmarks, PdeShape) {
  const Kernel k = pdeKernel();
  EXPECT_EQ(k.nest.iterationCount(), 961u);
  EXPECT_EQ(k.body.size(), 5u);
  EXPECT_EQ(k.arrays.size(), 2u);
  // Stencil touches rows i-1..i+1: needs extents >= 33.
  EXPECT_NO_THROW(generateTrace(k));
}

TEST(Benchmarks, SorShape) {
  const Kernel k = sorKernel();
  EXPECT_EQ(k.nest.iterationCount(), 961u);
  EXPECT_EQ(k.body.size(), 6u);
  EXPECT_EQ(k.arrays.size(), 1u);
  EXPECT_NO_THROW(generateTrace(k));
}

TEST(Benchmarks, DequantShape) {
  const Kernel k = dequantKernel();
  EXPECT_EQ(k.nest.iterationCount(), 961u);
  EXPECT_EQ(k.arrays.size(), 3u);
}

TEST(Benchmarks, TransposeReadsColumnWise) {
  const Kernel k = transposeKernel(8);
  const Trace t = generateTrace(k);
  // First two b-reads (even indices 0 and 2) are a column apart: 8*4.
  EXPECT_EQ(t[2].addr - t[0].addr, 32u);
}

TEST(Benchmarks, PaperBenchmarksOrder) {
  const std::vector<Kernel> ks = paperBenchmarks();
  ASSERT_EQ(ks.size(), 5u);
  EXPECT_EQ(ks[0].name, "compress");
  EXPECT_EQ(ks[1].name, "matmul");
  EXPECT_EQ(ks[2].name, "pde");
  EXPECT_EQ(ks[3].name, "sor");
  EXPECT_EQ(ks[4].name, "dequant");
  for (const Kernel& k : ks) EXPECT_NO_THROW(k.validate());
}

TEST(Benchmarks, FactoriesRejectTinyGrids) {
  EXPECT_THROW(compressKernel(1), ContractViolation);
  EXPECT_THROW(pdeKernel(2), ContractViolation);
}

TEST(MpegKernels, AllNineValidateAndTrace) {
  const auto ks = mpegDecoderKernels();
  ASSERT_EQ(ks.size(), 9u);
  const char* names[] = {"VLD",     "Dequant", "IDCT",  "Plus", "Display",
                         "Store",   "Addr",    "Fetch", "Compute"};
  for (std::size_t i = 0; i < ks.size(); ++i) {
    EXPECT_EQ(ks[i].kernel.name, names[i]);
    EXPECT_GE(ks[i].trips, 1u);
    EXPECT_NO_THROW(generateTrace(ks[i].kernel)) << names[i];
  }
}

TEST(MpegKernels, VldHasIndirectLookup) {
  const Kernel k = mpegVldKernel();
  bool indirect = false;
  for (const ArrayAccess& a : k.body) {
    if (!a.isAffine()) indirect = true;
  }
  EXPECT_TRUE(indirect);
}

TEST(MpegKernels, DisplayIsSequential) {
  const Kernel k = mpegDisplayKernel();
  const Trace t = generateTrace(k);
  // Reads at even indices walk bytes sequentially.
  EXPECT_EQ(t[2].addr - t[0].addr, 1u);
  EXPECT_EQ(t[4].addr - t[2].addr, 1u);
}

TEST(MpegKernels, IdctReadsTransposed) {
  const Kernel k = mpegIdctKernel();
  const Trace t = generateTrace(k);
  // Consecutive blk reads are a row (8 elements x 2 bytes) apart.
  EXPECT_EQ(t[3].addr - t[0].addr, 16u);
}

TEST(MpegKernels, FetchOffsetsIntoReferenceFrame) {
  const Kernel k = mpegFetchKernel();
  const Trace t = generateTrace(k);
  // First read is refframe[1][1] = 41 bytes into the 40-wide frame.
  EXPECT_EQ(t[0].addr, 41u);
}

TEST(MpegKernels, DistinctWorkloadSizes) {
  // The kernels must differ enough to pull exploration different ways.
  const auto ks = mpegDecoderKernels();
  std::set<std::uint64_t> sizes;
  for (const auto& wk : ks) sizes.insert(wk.kernel.referenceCount());
  EXPECT_GE(sizes.size(), 5u);
}

}  // namespace
}  // namespace memx
