#include <gtest/gtest.h>

#include "memx/timing/cycle_model.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig cfg(std::uint32_t size, std::uint32_t line,
                std::uint32_t ways = 1) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  c.associativity = ways;
  return c;
}

TEST(CycleModel, PaperHitCycleTable) {
  const CycleModel m;
  EXPECT_DOUBLE_EQ(m.cyclesPerHit(1), 1.0);
  EXPECT_DOUBLE_EQ(m.cyclesPerHit(2), 1.1);
  EXPECT_DOUBLE_EQ(m.cyclesPerHit(4), 1.12);
  EXPECT_DOUBLE_EQ(m.cyclesPerHit(8), 1.14);
}

TEST(CycleModel, PaperMissCycleTable) {
  const CycleModel m;
  EXPECT_DOUBLE_EQ(m.cyclesPerMiss(4), 40.0);
  EXPECT_DOUBLE_EQ(m.cyclesPerMiss(8), 40.0);
  EXPECT_DOUBLE_EQ(m.cyclesPerMiss(16), 42.0);
  EXPECT_DOUBLE_EQ(m.cyclesPerMiss(32), 44.0);
  EXPECT_DOUBLE_EQ(m.cyclesPerMiss(64), 48.0);
  EXPECT_DOUBLE_EQ(m.cyclesPerMiss(128), 56.0);
  EXPECT_DOUBLE_EQ(m.cyclesPerMiss(256), 72.0);
}

TEST(CycleModel, RejectsOutOfTableValues) {
  const CycleModel m;
  EXPECT_THROW((void)m.cyclesPerHit(16), ContractViolation);
  EXPECT_THROW((void)m.cyclesPerHit(3), ContractViolation);
  EXPECT_THROW((void)m.cyclesPerMiss(2), ContractViolation);
  EXPECT_THROW((void)m.cyclesPerMiss(512), ContractViolation);
}

TEST(CycleModel, PaperFormulaUntiled) {
  const CycleModel m;
  // 1000 accesses, 10% misses, direct-mapped, L=8, B=1:
  // 900*1 + 100*(1 + 40) = 5000.
  EXPECT_DOUBLE_EQ(m.cycles(1000, 0.1, cfg(64, 8), 1), 900.0 + 100 * 41);
}

TEST(CycleModel, TilingTermAddsToMissPenalty) {
  const CycleModel m;
  const double b1 = m.cycles(1000, 0.1, cfg(64, 8), 1);
  const double b8 = m.cycles(1000, 0.1, cfg(64, 8), 8);
  EXPECT_DOUBLE_EQ(b8 - b1, 100 * 7.0);  // misses * (8 - 1)
}

TEST(CycleModel, AssociativityRaisesHitTime) {
  const CycleModel m;
  const double dm1 = m.cycles(1000, 0.0, cfg(64, 8, 1));
  const double sa8 = m.cycles(1000, 0.0, cfg(64, 8, 8));
  EXPECT_DOUBLE_EQ(dm1, 1000.0);
  EXPECT_DOUBLE_EQ(sa8, 1140.0);
}

TEST(CycleModel, LargerLinesCostMorePerMiss) {
  const CycleModel m;
  const double l4 = m.cycles(1000, 0.5, cfg(1024, 4));
  const double l256 = m.cycles(1000, 0.5, cfg(1024, 256));
  EXPECT_LT(l4, l256);
}

TEST(CycleModel, BreakdownSumsToTotal) {
  const CycleModel m;
  const CycleBreakdown b = m.breakdown(500, 0.2, cfg(128, 16, 2), 4);
  EXPECT_DOUBLE_EQ(b.total(), m.cycles(500, 0.2, cfg(128, 16, 2), 4));
  EXPECT_DOUBLE_EQ(b.hitCycles, 400 * 1.1);
  EXPECT_DOUBLE_EQ(b.missCycles, 100 * (4 + 42));
}

TEST(CycleModel, FromStats) {
  const CycleModel m;
  CacheStats s;
  s.reads = 1000;
  s.readHits = 900;
  s.readMisses = 100;
  EXPECT_DOUBLE_EQ(m.cycles(s, cfg(64, 8)), m.cycles(1000, 0.1, cfg(64, 8)));
}

TEST(CycleModel, RejectsBadInputs) {
  const CycleModel m;
  EXPECT_THROW((void)m.cycles(100, -0.1, cfg(64, 8)), ContractViolation);
  EXPECT_THROW((void)m.cycles(100, 1.5, cfg(64, 8)), ContractViolation);
  EXPECT_THROW((void)m.cycles(100, 0.5, cfg(64, 8), 0), ContractViolation);
}

TEST(TimingParams, ValidateRejectsEmptyOrNonPositive) {
  TimingParams p;
  p.hitCyclesByAssoc.clear();
  EXPECT_THROW(p.validate(), ContractViolation);
  p = TimingParams{};
  p.missCyclesByLine[2] = -1;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(TimingParams, CustomTablesHonored) {
  TimingParams p;
  p.hitCyclesByAssoc = {2.0};
  p.missCyclesByLine = {10, 20};  // L = 4, 8
  const CycleModel m(p);
  EXPECT_DOUBLE_EQ(m.cyclesPerHit(1), 2.0);
  EXPECT_DOUBLE_EQ(m.cyclesPerMiss(8), 20.0);
  EXPECT_THROW((void)m.cyclesPerMiss(16), ContractViolation);
}

/// Property: cycles are monotone in miss rate for any geometry.
class MissRateMonotone
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MissRateMonotone, MoreMissesMoreCycles) {
  const auto [line, ways] = GetParam();
  const CycleModel m;
  double prev = -1.0;
  for (double mr = 0.0; mr <= 1.0; mr += 0.1) {
    const double c =
        m.cycles(1000, mr,
                 cfg(1024, static_cast<std::uint32_t>(line),
                     static_cast<std::uint32_t>(ways)));
    EXPECT_GT(c, prev);
    prev = c;
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, MissRateMonotone,
                         ::testing::Values(std::make_pair(4, 1),
                                           std::make_pair(8, 2),
                                           std::make_pair(32, 4),
                                           std::make_pair(64, 8)));

}  // namespace
}  // namespace memx
