#include <gtest/gtest.h>

#include "memx/core/selection.hpp"

namespace memx {
namespace {

DesignPoint pt(std::uint32_t size, double cycles, double energy) {
  DesignPoint p;
  p.key = ConfigKey{size, 8, 1, 1};
  p.cycles = cycles;
  p.energyNj = energy;
  return p;
}

const std::vector<DesignPoint> kPoints = {
    pt(16, 9000, 3000),   // slow, frugal
    pt(32, 7000, 3500),
    pt(64, 5000, 5000),
    pt(128, 4200, 6500),
    pt(256, 4000, 9000),  // fast, hungry
    pt(512, 4100, 9500),  // dominated by 256 in cycles, worse energy
};

TEST(Selection, GlobalMinEnergy) {
  const auto p = minEnergyPoint(kPoints);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.cacheBytes, 16u);
}

TEST(Selection, GlobalMinCycles) {
  const auto p = minCyclePoint(kPoints);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.cacheBytes, 256u);
}

TEST(Selection, MinEnergyUnderCycleBound) {
  // Paper Figure 4 scenario: bound the cycles, pick minimum energy.
  const auto p = minEnergyPoint(kPoints, 5000.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.cacheBytes, 64u);
}

TEST(Selection, MinCyclesUnderEnergyBound) {
  const auto p = minCyclePoint(kPoints, 5500.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.cacheBytes, 64u);
}

TEST(Selection, UnsatisfiableBoundsReturnNothing) {
  EXPECT_FALSE(minEnergyPoint(kPoints, 100.0).has_value());
  EXPECT_FALSE(minCyclePoint(kPoints, 100.0).has_value());
  EXPECT_FALSE(
      bestUnderBounds(kPoints, 4500.0, 4000.0).has_value());
}

TEST(Selection, BestUnderBothBounds) {
  const auto p = bestUnderBounds(kPoints, 7500.0, 4000.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.cacheBytes, 32u);
}

TEST(Selection, BoundsAreInclusive) {
  const auto p = minEnergyPoint(kPoints, 4000.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.cacheBytes, 256u);
}

TEST(Selection, ParetoFrontExcludesDominated) {
  const auto front = paretoFront(kPoints);
  ASSERT_EQ(front.size(), 5u);  // every point but the 512 one
  for (const DesignPoint& p : front) {
    EXPECT_NE(p.key.cacheBytes, 512u);
  }
  // Sorted by ascending cycles, descending energy.
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].cycles, front[i - 1].cycles);
    EXPECT_LT(front[i].energyNj, front[i - 1].energyNj);
  }
}

TEST(Selection, ParetoOfEmptyIsEmpty) {
  EXPECT_TRUE(paretoFront({}).empty());
  EXPECT_FALSE(minEnergyPoint({}).has_value());
}

TEST(Selection, ParetoSinglePoint) {
  const std::vector<DesignPoint> one = {pt(64, 100, 100)};
  EXPECT_EQ(paretoFront(one).size(), 1u);
}

TEST(Selection, TieBreakPrefersFewerCyclesThenSmallerKey) {
  const std::vector<DesignPoint> ties = {pt(128, 5000, 1000),
                                         pt(64, 4000, 1000),
                                         pt(32, 4000, 1000)};
  const auto p = minEnergyPoint(ties);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.cacheBytes, 32u);
}

TEST(Selection, MinCycleTieBreakPrefersLowerEnergyThenSmallerKey) {
  const std::vector<DesignPoint> ties = {pt(128, 4000, 1200),
                                         pt(64, 4000, 1000),
                                         pt(32, 4000, 1000)};
  const auto p = minCyclePoint(ties);
  ASSERT_TRUE(p.has_value());
  // 128 loses on energy; 64 vs 32 tie fully, the smaller key wins.
  EXPECT_EQ(p->key.cacheBytes, 32u);
}

TEST(Selection, EnergyBoundIsInclusiveAtTheBoundary) {
  // A bound equal to the frugal point's energy keeps it feasible; a
  // bound one ulp-ish below it does not.
  const auto at = minCyclePoint(kPoints, 3000.0);
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(at->key.cacheBytes, 16u);
  EXPECT_FALSE(minCyclePoint(kPoints, 2999.999).has_value());
}

TEST(Selection, CycleBoundJustBelowFastestIsInfeasible) {
  EXPECT_FALSE(minEnergyPoint(kPoints, 3999.999).has_value());
  const auto at = minEnergyPoint(kPoints, 4000.0);
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(at->key.cacheBytes, 256u);
}

TEST(Selection, BestUnderBoundsWithSingleOrNoBound) {
  // Only a cycle bound: behaves like minEnergyPoint under that bound.
  const auto cycOnly = bestUnderBounds(kPoints, 5000.0, std::nullopt);
  ASSERT_TRUE(cycOnly.has_value());
  EXPECT_EQ(cycOnly->key, minEnergyPoint(kPoints, 5000.0)->key);
  // Only an energy bound: min energy among the feasible ones - kPoints'
  // global optimum is also the cheapest, so it survives its own bound.
  const auto enOnly = bestUnderBounds(kPoints, std::nullopt, 3000.0);
  ASSERT_TRUE(enOnly.has_value());
  EXPECT_EQ(enOnly->key.cacheBytes, 16u);
  // No bounds at all: the global energy optimum.
  const auto none = bestUnderBounds(kPoints, std::nullopt, std::nullopt);
  ASSERT_TRUE(none.has_value());
  EXPECT_EQ(none->key, minEnergyPoint(kPoints)->key);
}

TEST(Selection, MinEdpTieBreakPrefersLowerEnergyThenSmallerKey) {
  // Equal EDP (2000*1000 == 1000*2000): the lower-energy point wins.
  const std::vector<DesignPoint> ties = {pt(32, 1000, 2000),
                                         pt(64, 2000, 1000)};
  const auto p = minEdpPoint(ties);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.cacheBytes, 64u);
  // Fully tied points fall back to the smaller key.
  const std::vector<DesignPoint> equal = {pt(128, 1500, 1500),
                                          pt(16, 1500, 1500)};
  const auto q = minEdpPoint(equal);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->key.cacheBytes, 16u);
}

TEST(Selection, ParetoFrontSortedWhenEqualCycles) {
  const std::vector<DesignPoint> pts = {pt(16, 4000, 900),
                                        pt(32, 4000, 800)};
  const auto front = paretoFront(pts);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].key.cacheBytes, 32u);
}

TEST(Selection, MinEdpBalancesBothMetrics) {
  // EDPs: 16: 27e6, 32: 24.5e6, 64: 25e6, 128: 27.3e6, 256: 36e6.
  const auto p = minEdpPoint(kPoints);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.cacheBytes, 32u);
}

TEST(Selection, MinEdpEmpty) {
  EXPECT_FALSE(minEdpPoint({}).has_value());
}

TEST(Selection, AreaBoundedSelection) {
  // A 64-byte cache is ~360 RBE; bounding at 400 excludes 128+.
  const auto p = minEnergyPointWithinArea(kPoints, 400.0);
  ASSERT_TRUE(p.has_value());
  EXPECT_LE(p->key.cacheBytes, 64u);
  // Unbounded-equivalent: a huge budget returns the global optimum.
  const auto all = minEnergyPointWithinArea(kPoints, 1e12);
  EXPECT_EQ(all->key, minEnergyPoint(kPoints)->key);
}

TEST(Selection, AreaBoundTooTightReturnsNothing) {
  EXPECT_FALSE(minEnergyPointWithinArea(kPoints, 1.0).has_value());
}

}  // namespace
}  // namespace memx
