// Known-answer and oracle tests for the stack-distance engine: the
// OrderedStack Fenwick core, the Hill-Smith all-associativity profile
// and the StackDistSim bank. Hand-traced expectations are pinned like
// ref_cache_sim_test.cpp; everything else is diffed against CacheSim
// or the naive reference walk (memx/check/ref_stack_dist.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/multi_sim.hpp"
#include "memx/check/random_gen.hpp"
#include "memx/check/ref_stack_dist.hpp"
#include "memx/stackdist/all_assoc.hpp"
#include "memx/stackdist/ordered_stack.hpp"
#include "memx/stackdist/policy_grid.hpp"
#include "memx/stackdist/stackdist_sim.hpp"
#include "memx/trace/working_set.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

// --- OrderedStack ---------------------------------------------------

TEST(OrderedStack, HandTracedDistances) {
  // Touch sequence a b a c b a; the LRU stack evolves as
  //   a | b a | a b | c a b | b c a | a b c
  // so the distances are: cold, cold, 1, cold, 2, 2.
  OrderedStack s;
  EXPECT_EQ(s.touch('a'), kColdDistance);
  EXPECT_EQ(s.touch('b'), kColdDistance);
  EXPECT_EQ(s.touch('a'), 1u);
  EXPECT_EQ(s.touch('c'), kColdDistance);
  EXPECT_EQ(s.touch('b'), 2u);
  EXPECT_EQ(s.touch('a'), 2u);
  EXPECT_EQ(s.uniqueLines(), 3u);
}

TEST(OrderedStack, MruReaccessIsDistanceZero) {
  OrderedStack s;
  EXPECT_EQ(s.touch(7), kColdDistance);
  EXPECT_EQ(s.touch(7), 0u);
  EXPECT_EQ(s.touch(7), 0u);
  EXPECT_EQ(s.uniqueLines(), 1u);
}

TEST(OrderedStack, CompactionPreservesDistances) {
  // initialCapacity 2 forces a tree rebuild every couple of touches;
  // distances must be indistinguishable from a large-capacity stack.
  OrderedStack tight(2);
  OrderedStack roomy(1024);
  std::mt19937_64 rng(42);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t line = rng() % 64;
    ASSERT_EQ(tight.touch(line), roomy.touch(line)) << "touch " << i;
  }
  EXPECT_EQ(tight.uniqueLines(), roomy.uniqueLines());
}

TEST(OrderedStack, CyclicSweepDistanceEqualsWorkingSetMinusOne) {
  OrderedStack s;
  for (std::uint64_t line = 0; line < 8; ++line) {
    EXPECT_EQ(s.touch(line), kColdDistance);
  }
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t line = 0; line < 8; ++line) {
      EXPECT_EQ(s.touch(line), 7u) << "round " << round;
    }
  }
}

// --- ReuseProfile (reimplemented on OrderedStack) vs the naive walk --

TEST(ReuseProfileOracle, MatchesNaiveWalkOnRandomTraces) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trace trace = randomCheckTrace(seed, 200, 800);
    for (const std::uint32_t lineBytes : {4u, 16u}) {
      const ReuseProfile fast(trace, lineBytes);
      const RefReuseProfile ref(trace, lineBytes);
      ASSERT_EQ(fast.accesses(), ref.accesses()) << "seed " << seed;
      ASSERT_EQ(fast.coldMisses(), ref.coldMisses()) << "seed " << seed;
      ASSERT_EQ(fast.uniqueLines(), ref.uniqueLines()) << "seed " << seed;
      for (std::uint64_t d = 0; d < ref.uniqueLines(); ++d) {
        ASSERT_EQ(fast.countAtDistance(d), ref.countAtDistance(d))
            << "seed " << seed << " L=" << lineBytes << " d=" << d;
      }
    }
  }
}

// --- AllAssocProfile known answers -----------------------------------

TEST(AllAssocProfile, HandTracedMissGrid) {
  // 4-byte reads touching lines 0, 1, 0, 2, 0, 4 (L = 4).
  Trace t;
  for (const std::uint64_t addr : {0u, 4u, 0u, 8u, 0u, 16u}) {
    t.push(readRef(addr, 4));
  }
  const AllAssocProfile p(t, 4, 2, 2);
  EXPECT_EQ(p.accesses(), 6u);
  EXPECT_EQ(p.reads(), 6u);
  EXPECT_EQ(p.writes(), 0u);
  EXPECT_EQ(p.lineProbes(), 6u);

  // Hand-traced LRU miss counts (see the sequence above):
  //   1 set, 1 way: only line re-accesses after no intervening touch
  //   hit; there are none -> 6 misses.
  EXPECT_EQ(p.misses(1, 1), 6u);
  //   1 set, 2 ways: the three re-accesses of line 0 at global stack
  //   distance 1 hit -> 4 misses (the cold touches).
  EXPECT_EQ(p.misses(1, 2), 4u);
  //   2 sets (even lines -> set 0, line 1 alone in set 1), 1 way: the
  //   second access of line 0 hits (distance 0 in its set) -> 5.
  EXPECT_EQ(p.misses(2, 1), 5u);
  //   2 sets, 2 ways: every re-access of line 0 hits -> cold only.
  EXPECT_EQ(p.misses(2, 2), 4u);

  // Cold misses are the infinite-distance bucket: at the deepest
  // tracked geometry only the 4 first touches miss.
  EXPECT_EQ(p.readMisses(1, 2), 4u);
  EXPECT_EQ(p.writeMisses(1, 2), 0u);
}

TEST(AllAssocProfile, MatchesCacheSimOnTheHandTrace) {
  Trace t;
  for (const std::uint64_t addr : {0u, 4u, 0u, 8u, 0u, 16u}) {
    t.push(readRef(addr, 4));
  }
  const AllAssocProfile p(t, 4, 2, 2);
  for (const std::uint32_t sets : {1u, 2u}) {
    for (const std::uint32_t assoc : {1u, 2u}) {
      CacheConfig c;
      c.lineBytes = 4;
      c.associativity = assoc;
      c.sizeBytes = 4 * sets * assoc;
      const CacheStats sim = simulateTrace(c, t);
      EXPECT_EQ(p.misses(sets, assoc), sim.misses())
          << "sets=" << sets << " ways=" << assoc;
      EXPECT_EQ(p.lineFills(sets, assoc), sim.lineFills)
          << "sets=" << sets << " ways=" << assoc;
    }
  }
}

TEST(AllAssocProfile, StraddlingReferenceProbesBothLines) {
  // A 4-byte access at address 2 spans lines 0 and 1 (L = 4). The
  // reference misses when either probe misses.
  Trace t;
  t.push(readRef(2, 4));
  t.push(readRef(2, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.accesses(), 2u);
  EXPECT_EQ(p.lineProbes(), 4u);
  // 1 way: after the first reference the cache holds line 1, so the
  // second reference's line-0 probe misses again -> both refs miss.
  EXPECT_EQ(p.misses(1, 1), 2u);
  // 2 ways: both lines resident, second reference hits.
  EXPECT_EQ(p.misses(1, 2), 1u);
  EXPECT_EQ(p.lineFills(1, 2), 2u);  // the two cold fills
  EXPECT_EQ(p.lineFills(1, 1), 4u);  // every probe refills
}

TEST(AllAssocProfile, WriteThroughMemWritesCountWriteProbes) {
  Trace t;
  t.push(writeRef(0, 4));   // 1 probe
  t.push(writeRef(2, 4));   // straddles: 2 probes
  t.push(readRef(0, 4));    // reads never write memory
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writes(), 2u);
  EXPECT_EQ(p.reads(), 1u);
  const CacheStats wt = p.stats(1, 2, WritePolicy::WriteThrough);
  EXPECT_EQ(wt.memWrites, 3u);  // one word store per write probe
  const CacheStats wb = p.stats(1, 2, WritePolicy::WriteBack);
  EXPECT_EQ(wb.memWrites, 0u);
  EXPECT_EQ(wb.writebacks, 0u);  // both dirty lines stay resident
  // Hit/miss accounting is write-policy independent.
  EXPECT_EQ(wt.misses(), wb.misses());
}

// --- Dirty-stack writeback known answers ----------------------------

/// Writebacks of a write-back LRU cache (1 set of `assoc` ways, L = 4)
/// simulated over `t` — the oracle every hand trace is double-checked
/// against.
std::uint64_t simWritebacks(const Trace& t, std::uint32_t assoc,
                            std::uint32_t sets = 1) {
  CacheConfig c;
  c.lineBytes = 4;
  c.associativity = assoc;
  c.sizeBytes = 4 * sets * assoc;
  c.writePolicy = WritePolicy::WriteBack;
  return simulateTrace(c, t).writebacks;
}

TEST(AllAssocProfile, WritebackOnDirtyEvictionPerAssociativity) {
  // w0 r0 w0 r4 r8 (L = 4, lines 0/1/2). Re-dirtying resident line 0
  // (write, read hit, write again) still costs exactly one writeback
  // when it is finally evicted:
  //   1 way : r4 evicts dirty line 0 (wb), r8 evicts clean line 1.
  //   2 ways: r8 evicts LRU line 0, still dirty from w0 (wb).
  Trace t;
  t.push(writeRef(0, 4));
  t.push(readRef(0, 4));
  t.push(writeRef(0, 4));
  t.push(readRef(4, 4));
  t.push(readRef(8, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writebacks(1, 1), 1u);
  EXPECT_EQ(p.writebacks(1, 2), 1u);
  EXPECT_EQ(p.writebacks(1, 1), simWritebacks(t, 1));
  EXPECT_EQ(p.writebacks(1, 2), simWritebacks(t, 2));
}

TEST(AllAssocProfile, ReadAfterWriteKeepsTheDirtyBit) {
  // w0 r0 r4: the read hit must not clean line 0, so the direct-mapped
  // eviction at r4 still writes it back.
  Trace t;
  t.push(writeRef(0, 4));
  t.push(readRef(0, 4));
  t.push(readRef(4, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writebacks(1, 1), 1u);
  EXPECT_EQ(p.writebacks(1, 1), simWritebacks(t, 1));
  EXPECT_EQ(p.writebacks(1, 2), 0u);  // 2 ways: line 0 dirty at end
  EXPECT_EQ(p.writebacks(1, 2), simWritebacks(t, 2));
}

TEST(AllAssocProfile, WriteStraddlingTwoLinesDirtiesBoth) {
  // A 4-byte write at address 2 spans lines 0 and 1 (L = 4); both
  // probes dirty their line, exactly like CacheSim's per-probe loop.
  //   1 way : the straddle itself evicts dirty line 0 (probe of line 1),
  //           then r8 evicts dirty line 1 -> 2 writebacks.
  //   2 ways: r8 evicts dirty line 0, r12 evicts dirty line 1 -> 2.
  Trace t;
  t.push(writeRef(2, 4));
  t.push(readRef(8, 4));
  t.push(readRef(12, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writebacks(1, 1), 2u);
  EXPECT_EQ(p.writebacks(1, 2), 2u);
  EXPECT_EQ(p.writebacks(1, 1), simWritebacks(t, 1));
  EXPECT_EQ(p.writebacks(1, 2), simWritebacks(t, 2));
}

TEST(AllAssocProfile, CleanEvictionAfterDeepReReference) {
  // w0 r4 r0 r4 r8: line 0's dirty state is per-configuration. The
  // 1-way cache writes it back at r4, refills it CLEAN at r0, and must
  // not write it back again at the second r4; the 2-way cache keeps the
  // original dirty fill resident (r0 hits) and pays its single
  // writeback only when r8 finally evicts line 0.
  Trace t;
  t.push(writeRef(0, 4));
  t.push(readRef(4, 4));
  t.push(readRef(0, 4));
  t.push(readRef(4, 4));
  t.push(readRef(8, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writebacks(1, 1), 1u);
  EXPECT_EQ(p.writebacks(1, 2), 1u);
  EXPECT_EQ(p.writebacks(1, 1), simWritebacks(t, 1));
  EXPECT_EQ(p.writebacks(1, 2), simWritebacks(t, 2));
}

TEST(AllAssocProfile, DirtyLinesAtTraceEndAreNeverWrittenBack) {
  // w0 w4: both lines fit in 2 ways and are dirty when the trace ends;
  // CacheSim does not flush, so neither does the profile. The 1-way
  // cache did evict dirty line 0 under w4's fill.
  Trace t;
  t.push(writeRef(0, 4));
  t.push(writeRef(4, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writebacks(1, 2), 0u);
  EXPECT_EQ(p.writebacks(1, 1), 1u);
  EXPECT_EQ(p.writebacks(1, 2), simWritebacks(t, 2));
  EXPECT_EQ(p.writebacks(1, 1), simWritebacks(t, 1));
  const CacheStats wb = p.stats(1, 2, WritePolicy::WriteBack);
  EXPECT_EQ(wb.writebacks, 0u);
  EXPECT_EQ(wb.memWrites, 0u);  // write-back/write-allocate: no stores
}

TEST(AllAssocProfile, StatsMatchCacheSimOnRandomTraces) {
  // The full stats() surface against the simulator over the whole
  // (sets, ways) grid, write-back and write-through, random streams.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Trace trace = randomCheckTrace(seed, 200, 700);
    const std::uint32_t lineBytes = (seed % 2 == 0) ? 8u : 16u;
    const AllAssocProfile p(trace, lineBytes, 8, 4);
    for (const std::uint32_t sets : {1u, 2u, 4u, 8u}) {
      for (const std::uint32_t assoc : {1u, 2u, 4u}) {
        for (const WritePolicy wp :
             {WritePolicy::WriteBack, WritePolicy::WriteThrough}) {
          CacheConfig c;
          c.lineBytes = lineBytes;
          c.associativity = assoc;
          c.sizeBytes = lineBytes * sets * assoc;
          c.writePolicy = wp;
          const CacheStats sim = simulateTrace(c, trace);
          const CacheStats got = p.stats(sets, assoc, wp);
          ASSERT_EQ(got.reads, sim.reads);
          ASSERT_EQ(got.writes, sim.writes);
          ASSERT_EQ(got.readHits, sim.readHits)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.readMisses, sim.readMisses)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.writeHits, sim.writeHits)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.writeMisses, sim.writeMisses)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.lineFills, sim.lineFills)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.memWrites, sim.memWrites)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.writebacks, sim.writebacks)
              << "seed " << seed << " " << c.label() << " " << toString(wp);
        }
      }
    }
  }
}

TEST(AllAssocProfile, RejectsBadArguments) {
  Trace t;
  t.push(readRef(0));
  EXPECT_THROW(AllAssocProfile(t, 12, 4, 2), ContractViolation);
  EXPECT_THROW(AllAssocProfile(t, 8, 3, 2), ContractViolation);
  EXPECT_THROW(AllAssocProfile(t, 8, 4, 0), ContractViolation);

  const AllAssocProfile p(t, 8, 4, 2);
  EXPECT_THROW((void)p.misses(3, 1), ContractViolation);   // not pow2
  EXPECT_THROW((void)p.misses(8, 1), ContractViolation);   // > maxSets
  EXPECT_THROW((void)p.misses(1, 0), ContractViolation);   // ways < 1
  EXPECT_THROW((void)p.misses(1, 3), ContractViolation);   // > maxAssoc

  Trace bad;
  bad.push(MemRef{0, 0, AccessType::Read});
  EXPECT_THROW(AllAssocProfile(bad, 8, 1, 1), ContractViolation);
}

// --- PolicyGridProfile known answers ---------------------------------

/// CacheStats of a `policy` cache (`sets` x `assoc`, L = 4) simulated
/// over `t` — the oracle every grid hand trace is double-checked
/// against.
CacheStats simPolicy(const Trace& t, ReplacementPolicy policy,
                     std::uint32_t sets, std::uint32_t assoc,
                     WritePolicy wp = WritePolicy::WriteBack) {
  CacheConfig c;
  c.lineBytes = 4;
  c.associativity = assoc;
  c.sizeBytes = 4 * sets * assoc;
  c.replacement = policy;
  c.writePolicy = wp;
  return simulateTrace(c, t);
}

/// One 4-byte read per entry, entry i touching line `lines[i]` (L = 4).
Trace lineTrace(std::initializer_list<std::uint64_t> lines) {
  Trace t;
  for (const std::uint64_t line : lines) t.push(readRef(line * 4, 4));
  return t;
}

TEST(PolicyGridProfile, FifoEvictionOrderIgnoresReReference) {
  // Lines A=0 B=1 C=2 in 1 set of 2 ways, sequence A B A C A. The A
  // re-reference does not refresh A's fill stamp, so C still evicts A
  // (the oldest fill) and the final A misses again: 4 FIFO misses.
  // LRU protects the re-referenced A and evicts B instead: 3 misses.
  const Trace t = lineTrace({0, 1, 0, 2, 0});
  const PolicyGridProfile fifo(t, ReplacementPolicy::FIFO, 4, 1, 2);
  EXPECT_EQ(fifo.accesses(), 5u);
  EXPECT_EQ(fifo.misses(1, 2), 4u);
  EXPECT_EQ(fifo.misses(1, 2),
            simPolicy(t, ReplacementPolicy::FIFO, 1, 2).misses());
  const AllAssocProfile lru(t, 4, 1, 2);
  EXPECT_EQ(lru.misses(1, 2), 3u);
}

TEST(PolicyGridProfile, PinnedBeladyAnomalyMoreWaysMoreMisses) {
  // Bélády's anomaly, pinned: FIFO over line sequence 3 4 1 2 0 3.
  // Both geometries hold four lines, yet the 2-set x 2-way cache takes
  // 5 misses while the fully associative 1-set x 4-way cache takes 6
  // (its round-robin cursor evicts line 3 under the fill of line 0, so
  // the final re-access of 3 misses; the split cache keeps 3 resident
  // in set 1). More ways, more misses at fixed capacity — FIFO grid
  // cells are not inclusive, which is exactly why PolicyGridProfile
  // simulates every cell instead of reading a Mattson histogram, and
  // why no "bigger cell hits => smaller cell hits" shortcut is legal.
  const Trace t = lineTrace({3, 4, 1, 2, 0, 3});
  const PolicyGridProfile p(t, ReplacementPolicy::FIFO, 4, 2, 4);
  EXPECT_EQ(p.misses(2, 2), 5u);
  EXPECT_EQ(p.misses(1, 4), 6u);
  EXPECT_EQ(p.misses(2, 2),
            simPolicy(t, ReplacementPolicy::FIFO, 2, 2).misses());
  EXPECT_EQ(p.misses(1, 4),
            simPolicy(t, ReplacementPolicy::FIFO, 1, 4).misses());
}

TEST(PolicyGridProfile, PlruTwoWaysDegeneratesToLru) {
  // A single tree bit over 2 ways is precise LRU: on A B A C A the
  // re-referenced A survives (3 misses, like AllAssocProfile), unlike
  // FIFO's 4 in FifoEvictionOrderIgnoresReReference.
  const Trace t = lineTrace({0, 1, 0, 2, 0});
  const PolicyGridProfile plru(t, ReplacementPolicy::TreePLRU, 4, 1, 2);
  EXPECT_EQ(plru.misses(1, 2), 3u);
  EXPECT_EQ(plru.misses(1, 2),
            simPolicy(t, ReplacementPolicy::TreePLRU, 1, 2).misses());
  const AllAssocProfile lru(t, 4, 1, 2);
  EXPECT_EQ(lru.misses(1, 2), plru.misses(1, 2));
}

TEST(PolicyGridProfile, PlruFourWayTreeBitFlips) {
  // A B C D A E B C in 1 set of 4 ways, tree bits hand-walked with
  // CacheSim's lo/hi/mid layout (root = bit 0, left child = bit 1,
  // right child = bit 2; a set bit points right, away from the touch):
  //   A miss w0 -> 011, B miss w1 -> 001, C miss w2 -> 100,
  //   D miss w3 -> 000, A hit w0 -> 011 (root now points right),
  //   E miss: root right, bit 2 clear -> victim w2 evicts C (LRU would
  //   evict B; FIFO would evict A), fill E -> 110,
  //   B hit w1 -> 101, C miss: root right, bit 2 set -> victim w3
  //   evicts D, fill C -> 000.
  // 6 misses, 2 hits — a count that separates tree-PLRU (6) from both
  // FIFO (5) and true LRU (7) on the same sequence.
  const Trace t = lineTrace({0, 1, 2, 3, 0, 4, 1, 2});
  const PolicyGridProfile plru(t, ReplacementPolicy::TreePLRU, 4, 1, 4);
  EXPECT_EQ(plru.misses(1, 4), 6u);
  EXPECT_EQ(plru.misses(1, 4),
            simPolicy(t, ReplacementPolicy::TreePLRU, 1, 4).misses());
  const PolicyGridProfile fifo(t, ReplacementPolicy::FIFO, 4, 1, 4);
  EXPECT_EQ(fifo.misses(1, 4), 5u);
  const AllAssocProfile lru(t, 4, 1, 4);
  EXPECT_EQ(lru.misses(1, 4), 7u);
}

TEST(PolicyGridProfile, PlruEightWayTreeBitFlips) {
  // Three tree levels: lines 0..7 cold-fill ways 0..7, then
  //   0 hit w0 (root and both level-1/2 bits on its path point right),
  //   8 miss: victim walk crosses the root into the upper half and
  //     evicts line 4 from w4,
  //   4 miss: w4's fill pointed the root left again, so the walk stays
  //     in the lower half and evicts line 2 from w2,
  //   9 miss: evicts line 6 from w6.
  // 11 misses, 1 hit (hand-walked against CacheSim's exact tree).
  const Trace t = lineTrace({0, 1, 2, 3, 4, 5, 6, 7, 0, 8, 4, 9});
  const PolicyGridProfile plru(t, ReplacementPolicy::TreePLRU, 4, 1, 8);
  EXPECT_EQ(plru.accesses(), 12u);
  EXPECT_EQ(plru.misses(1, 8), 11u);
  EXPECT_EQ(plru.misses(1, 8),
            simPolicy(t, ReplacementPolicy::TreePLRU, 1, 8).misses());
}

TEST(PolicyGridProfile, DirtyEvictionWritebackPerPolicy) {
  // w0 r0 w0 r4 r8 in 1 set of 2 ways. Re-dirtying resident line 0
  // through the MRU fast path (write, read hit, write again) must cost
  // exactly one writeback when r8's fill finally evicts it — for both
  // grid policies, matching the write-back simulator; the 1-way column
  // pays one writeback at r4 and evicts clean line 1 at r8.
  Trace t;
  t.push(writeRef(0, 4));
  t.push(readRef(0, 4));
  t.push(writeRef(0, 4));
  t.push(readRef(4, 4));
  t.push(readRef(8, 4));
  for (const ReplacementPolicy policy :
       {ReplacementPolicy::FIFO, ReplacementPolicy::TreePLRU}) {
    const PolicyGridProfile p(t, policy, 4, 1, 2);
    EXPECT_EQ(p.writebacks(1, 1), 1u) << toString(policy);
    EXPECT_EQ(p.writebacks(1, 2), 1u) << toString(policy);
    EXPECT_EQ(p.writebacks(1, 1), simPolicy(t, policy, 1, 1).writebacks);
    EXPECT_EQ(p.writebacks(1, 2), simPolicy(t, policy, 1, 2).writebacks);
    const CacheStats wb = p.stats(1, 2, WritePolicy::WriteBack);
    EXPECT_EQ(wb.writebacks, 1u) << toString(policy);
    EXPECT_EQ(wb.memWrites, 0u) << toString(policy);
    // Write-through never writes back; one word store per write probe.
    const CacheStats wt = p.stats(1, 2, WritePolicy::WriteThrough);
    EXPECT_EQ(wt.writebacks, 0u) << toString(policy);
    EXPECT_EQ(wt.memWrites, 2u) << toString(policy);
    EXPECT_EQ(wt.misses(), wb.misses()) << toString(policy);
  }
}

TEST(PolicyGridProfile, ChunkedFeedIsBitIdenticalToOnePass) {
  // Cell state persists across feed() calls, so any chunking — even
  // one that lands mid-straddle — matches a whole-trace pass.
  for (const ReplacementPolicy policy :
       {ReplacementPolicy::FIFO, ReplacementPolicy::TreePLRU}) {
    const Trace trace = randomCheckTrace(11, 150, 600);
    const PolicyGridProfile whole(trace, policy, 8, 4, 4);
    PolicyGridProfile chunked(policy, 8, 4, 4);
    std::size_t fed = 0;
    std::size_t chunk = 1;
    while (fed < trace.size()) {
      const std::size_t n = std::min(chunk, trace.size() - fed);
      chunked.feed(trace.refs().data() + fed, n);
      fed += n;
      chunk = chunk * 2 + 1;
    }
    for (const std::uint32_t sets : {1u, 2u, 4u}) {
      for (const std::uint32_t assoc : {1u, 2u, 4u}) {
        ASSERT_EQ(chunked.misses(sets, assoc), whole.misses(sets, assoc))
            << toString(policy) << " sets=" << sets << " ways=" << assoc;
        ASSERT_EQ(chunked.writebacks(sets, assoc),
                  whole.writebacks(sets, assoc))
            << toString(policy) << " sets=" << sets << " ways=" << assoc;
      }
    }
  }
}

TEST(PolicyGridProfile, RestrictedCellsMatchFullGridAndGuardTheRest) {
  // Cells are independent (no inclusion — see the pinned anomaly
  // above), so a pass restricted to the cells a bank queries must be
  // bit-identical to the full lattice on those cells; the masked-off
  // cells are never simulated and their accessors enforce it.
  for (const ReplacementPolicy policy :
       {ReplacementPolicy::FIFO, ReplacementPolicy::TreePLRU}) {
    const Trace trace = randomCheckTrace(13, 150, 600);
    const PolicyGridProfile whole(trace, policy, 8, 8, 4);
    PolicyGridProfile narrow(policy, 8, 8, 4);
    // A diagonal plus one corner — the shape sweeps actually query.
    const std::vector<std::pair<std::uint32_t, std::uint32_t>> queried = {
        {1, 1}, {2, 2}, {4, 4}, {8, 1}};
    narrow.restrictCells(queried);
    EXPECT_EQ(narrow.cellCount(), 4u);
    EXPECT_EQ(whole.cellCount(), 12u);
    narrow.feed(trace);
    for (const auto& [sets, ways] : queried) {
      ASSERT_EQ(narrow.misses(sets, ways), whole.misses(sets, ways))
          << toString(policy) << " sets=" << sets << " ways=" << ways;
      ASSERT_EQ(narrow.lineFills(sets, ways), whole.lineFills(sets, ways))
          << toString(policy) << " sets=" << sets << " ways=" << ways;
      ASSERT_EQ(narrow.writebacks(sets, ways), whole.writebacks(sets, ways))
          << toString(policy) << " sets=" << sets << " ways=" << ways;
    }
    // Unrestricted-pass invariants that do not depend on cells.
    EXPECT_EQ(narrow.accesses(), whole.accesses());
    EXPECT_EQ(narrow.lineProbes(), whole.lineProbes());
    // A masked-off cell was never simulated; querying it is a contract
    // violation, not a silent zero.
    EXPECT_THROW((void)narrow.misses(1, 2), ContractViolation);
    EXPECT_THROW((void)narrow.stats(2, 4, WritePolicy::WriteBack),
                 ContractViolation);
  }

  // The restriction must precede the first feed (cell state cannot be
  // reconstructed mid-trace), the list must be non-empty, and every
  // listed cell must lie inside the profiled grid.
  PolicyGridProfile late(ReplacementPolicy::FIFO, 8, 4, 2);
  Trace t;
  t.push(readRef(0));
  late.feed(t);
  EXPECT_THROW(late.restrictCells({{1, 1}}), ContractViolation);
  PolicyGridProfile fresh(ReplacementPolicy::FIFO, 8, 4, 2);
  EXPECT_THROW(fresh.restrictCells({}), ContractViolation);
  EXPECT_THROW(fresh.restrictCells({{8, 1}}), ContractViolation);
  EXPECT_THROW(fresh.restrictCells({{3, 1}}), ContractViolation);
}

TEST(PolicyGridProfile, RejectsBadArguments) {
  Trace t;
  t.push(readRef(0));
  using PGP = PolicyGridProfile;
  const ReplacementPolicy fifo = ReplacementPolicy::FIFO;
  EXPECT_THROW(PGP(t, ReplacementPolicy::LRU, 8, 4, 2), ContractViolation);
  EXPECT_THROW(PGP(t, fifo, 12, 4, 2), ContractViolation);  // L not pow2
  EXPECT_THROW(PGP(t, fifo, 8, 3, 2), ContractViolation);   // sets not pow2
  EXPECT_THROW(PGP(t, fifo, 8, 4, 0), ContractViolation);
  EXPECT_THROW(PGP(t, fifo, 8, 4, 128), ContractViolation);  // > 64 ways

  const PGP p(t, fifo, 8, 4, 2);
  EXPECT_THROW((void)p.misses(3, 1), ContractViolation);   // not pow2
  EXPECT_THROW((void)p.misses(8, 1), ContractViolation);   // > maxSets
  EXPECT_THROW((void)p.misses(1, 0), ContractViolation);   // ways < 1
  EXPECT_THROW((void)p.misses(1, 3), ContractViolation);   // > maxAssoc

  Trace bad;
  bad.push(MemRef{0, 0, AccessType::Read});
  EXPECT_THROW(PGP(bad, fifo, 8, 1, 1), ContractViolation);
}

// --- StackDistSim ----------------------------------------------------

TEST(StackDistSim, MatchesMultiCacheSimAcrossRandomLruBanks) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    // Mixed line sizes in one bank exercise the per-line-size grouping.
    const std::vector<CacheConfig> bank = {
        randomLruCacheConfig(seed),
        randomLruCacheConfig(seed + 1000),
        randomLruCacheConfig(seed + 2000),
    };
    const Trace trace = randomCheckTrace(seed, 200, 800);

    StackDistSim analytic(bank);
    analytic.run(trace);
    MultiCacheSim simulated(bank);
    simulated.run(trace);

    for (std::size_t i = 0; i < bank.size(); ++i) {
      const CacheStats& want = simulated.stats(i);
      const CacheStats& got = analytic.stats(i);
      ASSERT_EQ(got.readMisses, want.readMisses)
          << "seed " << seed << " " << bank[i].label();
      ASSERT_EQ(got.writeMisses, want.writeMisses)
          << "seed " << seed << " " << bank[i].label();
      ASSERT_EQ(got.readHits, want.readHits);
      ASSERT_EQ(got.writeHits, want.writeHits);
      ASSERT_EQ(got.lineFills, want.lineFills);
      ASSERT_EQ(got.memWrites, want.memWrites);
      ASSERT_EQ(got.writebacks, want.writebacks)
          << "seed " << seed << " " << bank[i].label();
    }
  }
}

TEST(StackDistSim, GroupsSharingALineSizeUseOnePass) {
  CacheConfig a = randomLruCacheConfig(2);  // write-back variant
  CacheConfig b = a;
  b.associativity = 1;
  CacheConfig c = a;
  c.sizeBytes *= 2;
  CacheConfig d = a;
  d.lineBytes *= 2;
  d.sizeBytes *= 2;
  const StackDistSim bankSim({a, b, c, d});
  EXPECT_EQ(bankSim.size(), 4u);
  EXPECT_EQ(bankSim.passCount(), 2u);  // two distinct line sizes
}

TEST(StackDistSim, RejectsConfigsOutsideItsDomain) {
  // FIFO and tree-PLRU sweeps are served by the PolicyGridProfile
  // engine; only Random replacement (simulator-owned rng stream) and
  // no-write-allocate caches still require simulation.
  CacheConfig fifo = randomLruCacheConfig(1);
  fifo.replacement = ReplacementPolicy::FIFO;
  EXPECT_TRUE(StackDistSim::supports(fifo));

  CacheConfig plru = randomLruCacheConfig(1);
  plru.replacement = ReplacementPolicy::TreePLRU;
  EXPECT_TRUE(StackDistSim::supports(plru));

  CacheConfig rnd = randomLruCacheConfig(1);
  rnd.replacement = ReplacementPolicy::Random;
  EXPECT_FALSE(StackDistSim::supports(rnd));
  EXPECT_THROW(StackDistSim({rnd}), ContractViolation);

  CacheConfig noAlloc = randomLruCacheConfig(1);
  noAlloc.allocatePolicy = AllocatePolicy::NoWriteAllocate;
  EXPECT_FALSE(StackDistSim::supports(noAlloc));
  EXPECT_THROW(StackDistSim({noAlloc}), ContractViolation);

  EXPECT_TRUE(StackDistSim::supports(randomLruCacheConfig(1)));
  EXPECT_THROW(StackDistSim({}), ContractViolation);
}

TEST(StackDistSim, FifoAndPlruGroupsUseTheGridEngine) {
  CacheConfig lru = randomLruCacheConfig(2);
  CacheConfig fifo = lru;
  fifo.replacement = ReplacementPolicy::FIFO;
  CacheConfig plru = lru;
  plru.replacement = ReplacementPolicy::TreePLRU;
  plru.sizeBytes *= 2;
  const StackDistSim bank({lru, fifo, plru});
  EXPECT_EQ(bank.size(), 3u);
  // Same line size but three distinct replacement policies: one LRU
  // pass plus two analytic grid passes.
  EXPECT_EQ(bank.passCount(), 3u);
  EXPECT_EQ(bank.gridPassCount(), 2u);
  EXPECT_GT(bank.gridCellCount(), 0u);
}

TEST(StackDistSim, MatchesMultiCacheSimAcrossRandomGridBanks) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    CacheConfig fifo = randomLruCacheConfig(seed);
    fifo.replacement = ReplacementPolicy::FIFO;
    CacheConfig plru = randomLruCacheConfig(seed + 1000);
    plru.replacement = ReplacementPolicy::TreePLRU;
    const std::vector<CacheConfig> bank = {fifo, plru,
                                           randomLruCacheConfig(seed + 2000)};
    const Trace trace = randomCheckTrace(seed, 200, 800);

    StackDistSim analytic(bank);
    analytic.run(trace);
    MultiCacheSim simulated(bank);
    simulated.run(trace);

    for (std::size_t i = 0; i < bank.size(); ++i) {
      const CacheStats& want = simulated.stats(i);
      const CacheStats& got = analytic.stats(i);
      ASSERT_EQ(got.readMisses, want.readMisses)
          << "seed " << seed << " " << bank[i].label();
      ASSERT_EQ(got.writeMisses, want.writeMisses)
          << "seed " << seed << " " << bank[i].label();
      ASSERT_EQ(got.readHits, want.readHits);
      ASSERT_EQ(got.writeHits, want.writeHits);
      ASSERT_EQ(got.lineFills, want.lineFills);
      ASSERT_EQ(got.memWrites, want.memWrites);
      ASSERT_EQ(got.writebacks, want.writebacks)
          << "seed " << seed << " " << bank[i].label();
    }
  }
}

TEST(StackDistSim, IsSingleShot) {
  StackDistSim bank({randomLruCacheConfig(3)});
  EXPECT_THROW((void)bank.stats(0), ContractViolation);  // before run()
  const Trace trace = randomCheckTrace(3, 50, 100);
  bank.run(trace);
  (void)bank.stats(0);
  EXPECT_THROW(bank.run(trace), ContractViolation);
}

TEST(StackDistSim, ConvenienceWrapperPreservesInputOrder) {
  const std::vector<CacheConfig> bank = {randomLruCacheConfig(5),
                                         randomLruCacheConfig(6)};
  const Trace trace = randomCheckTrace(5, 100, 200);
  const std::vector<CacheStats> stats = stackDistStats(bank, trace);
  ASSERT_EQ(stats.size(), 2u);
  StackDistSim direct(bank);
  direct.run(trace);
  for (std::size_t i = 0; i < bank.size(); ++i) {
    EXPECT_EQ(stats[i].misses(), direct.stats(i).misses());
    EXPECT_EQ(stats[i].accesses(), direct.stats(i).accesses());
  }
}

}  // namespace
}  // namespace memx
