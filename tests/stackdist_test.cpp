// Known-answer and oracle tests for the stack-distance engine: the
// OrderedStack Fenwick core, the Hill-Smith all-associativity profile
// and the StackDistSim bank. Hand-traced expectations are pinned like
// ref_cache_sim_test.cpp; everything else is diffed against CacheSim
// or the naive reference walk (memx/check/ref_stack_dist.hpp).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/multi_sim.hpp"
#include "memx/check/random_gen.hpp"
#include "memx/check/ref_stack_dist.hpp"
#include "memx/stackdist/all_assoc.hpp"
#include "memx/stackdist/ordered_stack.hpp"
#include "memx/stackdist/stackdist_sim.hpp"
#include "memx/trace/working_set.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

// --- OrderedStack ---------------------------------------------------

TEST(OrderedStack, HandTracedDistances) {
  // Touch sequence a b a c b a; the LRU stack evolves as
  //   a | b a | a b | c a b | b c a | a b c
  // so the distances are: cold, cold, 1, cold, 2, 2.
  OrderedStack s;
  EXPECT_EQ(s.touch('a'), kColdDistance);
  EXPECT_EQ(s.touch('b'), kColdDistance);
  EXPECT_EQ(s.touch('a'), 1u);
  EXPECT_EQ(s.touch('c'), kColdDistance);
  EXPECT_EQ(s.touch('b'), 2u);
  EXPECT_EQ(s.touch('a'), 2u);
  EXPECT_EQ(s.uniqueLines(), 3u);
}

TEST(OrderedStack, MruReaccessIsDistanceZero) {
  OrderedStack s;
  EXPECT_EQ(s.touch(7), kColdDistance);
  EXPECT_EQ(s.touch(7), 0u);
  EXPECT_EQ(s.touch(7), 0u);
  EXPECT_EQ(s.uniqueLines(), 1u);
}

TEST(OrderedStack, CompactionPreservesDistances) {
  // initialCapacity 2 forces a tree rebuild every couple of touches;
  // distances must be indistinguishable from a large-capacity stack.
  OrderedStack tight(2);
  OrderedStack roomy(1024);
  std::mt19937_64 rng(42);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t line = rng() % 64;
    ASSERT_EQ(tight.touch(line), roomy.touch(line)) << "touch " << i;
  }
  EXPECT_EQ(tight.uniqueLines(), roomy.uniqueLines());
}

TEST(OrderedStack, CyclicSweepDistanceEqualsWorkingSetMinusOne) {
  OrderedStack s;
  for (std::uint64_t line = 0; line < 8; ++line) {
    EXPECT_EQ(s.touch(line), kColdDistance);
  }
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t line = 0; line < 8; ++line) {
      EXPECT_EQ(s.touch(line), 7u) << "round " << round;
    }
  }
}

// --- ReuseProfile (reimplemented on OrderedStack) vs the naive walk --

TEST(ReuseProfileOracle, MatchesNaiveWalkOnRandomTraces) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trace trace = randomCheckTrace(seed, 200, 800);
    for (const std::uint32_t lineBytes : {4u, 16u}) {
      const ReuseProfile fast(trace, lineBytes);
      const RefReuseProfile ref(trace, lineBytes);
      ASSERT_EQ(fast.accesses(), ref.accesses()) << "seed " << seed;
      ASSERT_EQ(fast.coldMisses(), ref.coldMisses()) << "seed " << seed;
      ASSERT_EQ(fast.uniqueLines(), ref.uniqueLines()) << "seed " << seed;
      for (std::uint64_t d = 0; d < ref.uniqueLines(); ++d) {
        ASSERT_EQ(fast.countAtDistance(d), ref.countAtDistance(d))
            << "seed " << seed << " L=" << lineBytes << " d=" << d;
      }
    }
  }
}

// --- AllAssocProfile known answers -----------------------------------

TEST(AllAssocProfile, HandTracedMissGrid) {
  // 4-byte reads touching lines 0, 1, 0, 2, 0, 4 (L = 4).
  Trace t;
  for (const std::uint64_t addr : {0u, 4u, 0u, 8u, 0u, 16u}) {
    t.push(readRef(addr, 4));
  }
  const AllAssocProfile p(t, 4, 2, 2);
  EXPECT_EQ(p.accesses(), 6u);
  EXPECT_EQ(p.reads(), 6u);
  EXPECT_EQ(p.writes(), 0u);
  EXPECT_EQ(p.lineProbes(), 6u);

  // Hand-traced LRU miss counts (see the sequence above):
  //   1 set, 1 way: only line re-accesses after no intervening touch
  //   hit; there are none -> 6 misses.
  EXPECT_EQ(p.misses(1, 1), 6u);
  //   1 set, 2 ways: the three re-accesses of line 0 at global stack
  //   distance 1 hit -> 4 misses (the cold touches).
  EXPECT_EQ(p.misses(1, 2), 4u);
  //   2 sets (even lines -> set 0, line 1 alone in set 1), 1 way: the
  //   second access of line 0 hits (distance 0 in its set) -> 5.
  EXPECT_EQ(p.misses(2, 1), 5u);
  //   2 sets, 2 ways: every re-access of line 0 hits -> cold only.
  EXPECT_EQ(p.misses(2, 2), 4u);

  // Cold misses are the infinite-distance bucket: at the deepest
  // tracked geometry only the 4 first touches miss.
  EXPECT_EQ(p.readMisses(1, 2), 4u);
  EXPECT_EQ(p.writeMisses(1, 2), 0u);
}

TEST(AllAssocProfile, MatchesCacheSimOnTheHandTrace) {
  Trace t;
  for (const std::uint64_t addr : {0u, 4u, 0u, 8u, 0u, 16u}) {
    t.push(readRef(addr, 4));
  }
  const AllAssocProfile p(t, 4, 2, 2);
  for (const std::uint32_t sets : {1u, 2u}) {
    for (const std::uint32_t assoc : {1u, 2u}) {
      CacheConfig c;
      c.lineBytes = 4;
      c.associativity = assoc;
      c.sizeBytes = 4 * sets * assoc;
      const CacheStats sim = simulateTrace(c, t);
      EXPECT_EQ(p.misses(sets, assoc), sim.misses())
          << "sets=" << sets << " ways=" << assoc;
      EXPECT_EQ(p.lineFills(sets, assoc), sim.lineFills)
          << "sets=" << sets << " ways=" << assoc;
    }
  }
}

TEST(AllAssocProfile, StraddlingReferenceProbesBothLines) {
  // A 4-byte access at address 2 spans lines 0 and 1 (L = 4). The
  // reference misses when either probe misses.
  Trace t;
  t.push(readRef(2, 4));
  t.push(readRef(2, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.accesses(), 2u);
  EXPECT_EQ(p.lineProbes(), 4u);
  // 1 way: after the first reference the cache holds line 1, so the
  // second reference's line-0 probe misses again -> both refs miss.
  EXPECT_EQ(p.misses(1, 1), 2u);
  // 2 ways: both lines resident, second reference hits.
  EXPECT_EQ(p.misses(1, 2), 1u);
  EXPECT_EQ(p.lineFills(1, 2), 2u);  // the two cold fills
  EXPECT_EQ(p.lineFills(1, 1), 4u);  // every probe refills
}

TEST(AllAssocProfile, WriteThroughMemWritesCountWriteProbes) {
  Trace t;
  t.push(writeRef(0, 4));   // 1 probe
  t.push(writeRef(2, 4));   // straddles: 2 probes
  t.push(readRef(0, 4));    // reads never write memory
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writes(), 2u);
  EXPECT_EQ(p.reads(), 1u);
  const CacheStats wt = p.stats(1, 2, WritePolicy::WriteThrough);
  EXPECT_EQ(wt.memWrites, 3u);  // one word store per write probe
  const CacheStats wb = p.stats(1, 2, WritePolicy::WriteBack);
  EXPECT_EQ(wb.memWrites, 0u);
  EXPECT_EQ(wb.writebacks, 0u);  // both dirty lines stay resident
  // Hit/miss accounting is write-policy independent.
  EXPECT_EQ(wt.misses(), wb.misses());
}

// --- Dirty-stack writeback known answers ----------------------------

/// Writebacks of a write-back LRU cache (1 set of `assoc` ways, L = 4)
/// simulated over `t` — the oracle every hand trace is double-checked
/// against.
std::uint64_t simWritebacks(const Trace& t, std::uint32_t assoc,
                            std::uint32_t sets = 1) {
  CacheConfig c;
  c.lineBytes = 4;
  c.associativity = assoc;
  c.sizeBytes = 4 * sets * assoc;
  c.writePolicy = WritePolicy::WriteBack;
  return simulateTrace(c, t).writebacks;
}

TEST(AllAssocProfile, WritebackOnDirtyEvictionPerAssociativity) {
  // w0 r0 w0 r4 r8 (L = 4, lines 0/1/2). Re-dirtying resident line 0
  // (write, read hit, write again) still costs exactly one writeback
  // when it is finally evicted:
  //   1 way : r4 evicts dirty line 0 (wb), r8 evicts clean line 1.
  //   2 ways: r8 evicts LRU line 0, still dirty from w0 (wb).
  Trace t;
  t.push(writeRef(0, 4));
  t.push(readRef(0, 4));
  t.push(writeRef(0, 4));
  t.push(readRef(4, 4));
  t.push(readRef(8, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writebacks(1, 1), 1u);
  EXPECT_EQ(p.writebacks(1, 2), 1u);
  EXPECT_EQ(p.writebacks(1, 1), simWritebacks(t, 1));
  EXPECT_EQ(p.writebacks(1, 2), simWritebacks(t, 2));
}

TEST(AllAssocProfile, ReadAfterWriteKeepsTheDirtyBit) {
  // w0 r0 r4: the read hit must not clean line 0, so the direct-mapped
  // eviction at r4 still writes it back.
  Trace t;
  t.push(writeRef(0, 4));
  t.push(readRef(0, 4));
  t.push(readRef(4, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writebacks(1, 1), 1u);
  EXPECT_EQ(p.writebacks(1, 1), simWritebacks(t, 1));
  EXPECT_EQ(p.writebacks(1, 2), 0u);  // 2 ways: line 0 dirty at end
  EXPECT_EQ(p.writebacks(1, 2), simWritebacks(t, 2));
}

TEST(AllAssocProfile, WriteStraddlingTwoLinesDirtiesBoth) {
  // A 4-byte write at address 2 spans lines 0 and 1 (L = 4); both
  // probes dirty their line, exactly like CacheSim's per-probe loop.
  //   1 way : the straddle itself evicts dirty line 0 (probe of line 1),
  //           then r8 evicts dirty line 1 -> 2 writebacks.
  //   2 ways: r8 evicts dirty line 0, r12 evicts dirty line 1 -> 2.
  Trace t;
  t.push(writeRef(2, 4));
  t.push(readRef(8, 4));
  t.push(readRef(12, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writebacks(1, 1), 2u);
  EXPECT_EQ(p.writebacks(1, 2), 2u);
  EXPECT_EQ(p.writebacks(1, 1), simWritebacks(t, 1));
  EXPECT_EQ(p.writebacks(1, 2), simWritebacks(t, 2));
}

TEST(AllAssocProfile, CleanEvictionAfterDeepReReference) {
  // w0 r4 r0 r4 r8: line 0's dirty state is per-configuration. The
  // 1-way cache writes it back at r4, refills it CLEAN at r0, and must
  // not write it back again at the second r4; the 2-way cache keeps the
  // original dirty fill resident (r0 hits) and pays its single
  // writeback only when r8 finally evicts line 0.
  Trace t;
  t.push(writeRef(0, 4));
  t.push(readRef(4, 4));
  t.push(readRef(0, 4));
  t.push(readRef(4, 4));
  t.push(readRef(8, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writebacks(1, 1), 1u);
  EXPECT_EQ(p.writebacks(1, 2), 1u);
  EXPECT_EQ(p.writebacks(1, 1), simWritebacks(t, 1));
  EXPECT_EQ(p.writebacks(1, 2), simWritebacks(t, 2));
}

TEST(AllAssocProfile, DirtyLinesAtTraceEndAreNeverWrittenBack) {
  // w0 w4: both lines fit in 2 ways and are dirty when the trace ends;
  // CacheSim does not flush, so neither does the profile. The 1-way
  // cache did evict dirty line 0 under w4's fill.
  Trace t;
  t.push(writeRef(0, 4));
  t.push(writeRef(4, 4));
  const AllAssocProfile p(t, 4, 1, 2);
  EXPECT_EQ(p.writebacks(1, 2), 0u);
  EXPECT_EQ(p.writebacks(1, 1), 1u);
  EXPECT_EQ(p.writebacks(1, 2), simWritebacks(t, 2));
  EXPECT_EQ(p.writebacks(1, 1), simWritebacks(t, 1));
  const CacheStats wb = p.stats(1, 2, WritePolicy::WriteBack);
  EXPECT_EQ(wb.writebacks, 0u);
  EXPECT_EQ(wb.memWrites, 0u);  // write-back/write-allocate: no stores
}

TEST(AllAssocProfile, StatsMatchCacheSimOnRandomTraces) {
  // The full stats() surface against the simulator over the whole
  // (sets, ways) grid, write-back and write-through, random streams.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Trace trace = randomCheckTrace(seed, 200, 700);
    const std::uint32_t lineBytes = (seed % 2 == 0) ? 8u : 16u;
    const AllAssocProfile p(trace, lineBytes, 8, 4);
    for (const std::uint32_t sets : {1u, 2u, 4u, 8u}) {
      for (const std::uint32_t assoc : {1u, 2u, 4u}) {
        for (const WritePolicy wp :
             {WritePolicy::WriteBack, WritePolicy::WriteThrough}) {
          CacheConfig c;
          c.lineBytes = lineBytes;
          c.associativity = assoc;
          c.sizeBytes = lineBytes * sets * assoc;
          c.writePolicy = wp;
          const CacheStats sim = simulateTrace(c, trace);
          const CacheStats got = p.stats(sets, assoc, wp);
          ASSERT_EQ(got.reads, sim.reads);
          ASSERT_EQ(got.writes, sim.writes);
          ASSERT_EQ(got.readHits, sim.readHits)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.readMisses, sim.readMisses)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.writeHits, sim.writeHits)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.writeMisses, sim.writeMisses)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.lineFills, sim.lineFills)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.memWrites, sim.memWrites)
              << "seed " << seed << " " << c.label();
          ASSERT_EQ(got.writebacks, sim.writebacks)
              << "seed " << seed << " " << c.label() << " " << toString(wp);
        }
      }
    }
  }
}

TEST(AllAssocProfile, RejectsBadArguments) {
  Trace t;
  t.push(readRef(0));
  EXPECT_THROW(AllAssocProfile(t, 12, 4, 2), ContractViolation);
  EXPECT_THROW(AllAssocProfile(t, 8, 3, 2), ContractViolation);
  EXPECT_THROW(AllAssocProfile(t, 8, 4, 0), ContractViolation);

  const AllAssocProfile p(t, 8, 4, 2);
  EXPECT_THROW((void)p.misses(3, 1), ContractViolation);   // not pow2
  EXPECT_THROW((void)p.misses(8, 1), ContractViolation);   // > maxSets
  EXPECT_THROW((void)p.misses(1, 0), ContractViolation);   // ways < 1
  EXPECT_THROW((void)p.misses(1, 3), ContractViolation);   // > maxAssoc

  Trace bad;
  bad.push(MemRef{0, 0, AccessType::Read});
  EXPECT_THROW(AllAssocProfile(bad, 8, 1, 1), ContractViolation);
}

// --- StackDistSim ----------------------------------------------------

TEST(StackDistSim, MatchesMultiCacheSimAcrossRandomLruBanks) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    // Mixed line sizes in one bank exercise the per-line-size grouping.
    const std::vector<CacheConfig> bank = {
        randomLruCacheConfig(seed),
        randomLruCacheConfig(seed + 1000),
        randomLruCacheConfig(seed + 2000),
    };
    const Trace trace = randomCheckTrace(seed, 200, 800);

    StackDistSim analytic(bank);
    analytic.run(trace);
    MultiCacheSim simulated(bank);
    simulated.run(trace);

    for (std::size_t i = 0; i < bank.size(); ++i) {
      const CacheStats& want = simulated.stats(i);
      const CacheStats& got = analytic.stats(i);
      ASSERT_EQ(got.readMisses, want.readMisses)
          << "seed " << seed << " " << bank[i].label();
      ASSERT_EQ(got.writeMisses, want.writeMisses)
          << "seed " << seed << " " << bank[i].label();
      ASSERT_EQ(got.readHits, want.readHits);
      ASSERT_EQ(got.writeHits, want.writeHits);
      ASSERT_EQ(got.lineFills, want.lineFills);
      ASSERT_EQ(got.memWrites, want.memWrites);
      ASSERT_EQ(got.writebacks, want.writebacks)
          << "seed " << seed << " " << bank[i].label();
    }
  }
}

TEST(StackDistSim, GroupsSharingALineSizeUseOnePass) {
  CacheConfig a = randomLruCacheConfig(2);  // write-back variant
  CacheConfig b = a;
  b.associativity = 1;
  CacheConfig c = a;
  c.sizeBytes *= 2;
  CacheConfig d = a;
  d.lineBytes *= 2;
  d.sizeBytes *= 2;
  const StackDistSim bankSim({a, b, c, d});
  EXPECT_EQ(bankSim.size(), 4u);
  EXPECT_EQ(bankSim.passCount(), 2u);  // two distinct line sizes
}

TEST(StackDistSim, RejectsConfigsOutsideItsDomain) {
  CacheConfig fifo = randomLruCacheConfig(1);
  fifo.replacement = ReplacementPolicy::FIFO;
  EXPECT_FALSE(StackDistSim::supports(fifo));
  EXPECT_THROW(StackDistSim({fifo}), ContractViolation);

  CacheConfig noAlloc = randomLruCacheConfig(1);
  noAlloc.allocatePolicy = AllocatePolicy::NoWriteAllocate;
  EXPECT_FALSE(StackDistSim::supports(noAlloc));
  EXPECT_THROW(StackDistSim({noAlloc}), ContractViolation);

  EXPECT_TRUE(StackDistSim::supports(randomLruCacheConfig(1)));
  EXPECT_THROW(StackDistSim({}), ContractViolation);
}

TEST(StackDistSim, IsSingleShot) {
  StackDistSim bank({randomLruCacheConfig(3)});
  EXPECT_THROW((void)bank.stats(0), ContractViolation);  // before run()
  const Trace trace = randomCheckTrace(3, 50, 100);
  bank.run(trace);
  (void)bank.stats(0);
  EXPECT_THROW(bank.run(trace), ContractViolation);
}

TEST(StackDistSim, ConvenienceWrapperPreservesInputOrder) {
  const std::vector<CacheConfig> bank = {randomLruCacheConfig(5),
                                         randomLruCacheConfig(6)};
  const Trace trace = randomCheckTrace(5, 100, 200);
  const std::vector<CacheStats> stats = stackDistStats(bank, trace);
  ASSERT_EQ(stats.size(), 2u);
  StackDistSim direct(bank);
  direct.run(trace);
  for (std::size_t i = 0; i < bank.size(); ++i) {
    EXPECT_EQ(stats[i].misses(), direct.stats(i).misses());
    EXPECT_EQ(stats[i].accesses(), direct.stats(i).accesses());
  }
}

}  // namespace
}  // namespace memx
