#include <gtest/gtest.h>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/generators.hpp"
#include "memx/trace/working_set.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

TEST(ReuseProfile, ColdMissesAreFirstTouches) {
  const Trace t = stridedTrace(0, 16, 8, 4);  // 16 distinct 8-byte lines
  const ReuseProfile p(t, 8);
  EXPECT_EQ(p.coldMisses(), 16u);
  EXPECT_EQ(p.uniqueLines(), 16u);
  EXPECT_EQ(p.accesses(), 16u);
}

TEST(ReuseProfile, ImmediateReuseIsDistanceZero) {
  Trace t;
  t.push(readRef(0));
  t.push(readRef(0));
  t.push(readRef(0));
  const ReuseProfile p(t, 8);
  EXPECT_EQ(p.countAtDistance(0), 2u);
  EXPECT_EQ(p.coldMisses(), 1u);
}

TEST(ReuseProfile, CyclicSweepHasDistanceEqualToSetSize) {
  // Looping over 8 lines: each revisit has stack distance 7.
  const Trace t = loopingTrace(0, 8, 3, 8);  // 8 lines x 3 rounds
  const ReuseProfile p(t, 8);
  EXPECT_EQ(p.countAtDistance(7), 16u);  // rounds 2 and 3
  EXPECT_EQ(p.coldMisses(), 8u);
}

TEST(ReuseProfile, PredictsFullyAssociativeMissRateExactly) {
  // Mattson's theorem: the stack-distance prediction equals an actual
  // fully-associative LRU simulation, for every capacity.
  for (const Kernel& k :
       {compressKernel(), sorKernel(), dequantKernel()}) {
    const Trace t = generateTrace(k);
    const ReuseProfile p(t, 8);
    for (const std::uint32_t sizeBytes : {16u, 64u, 256u, 1024u}) {
      CacheConfig fa;
      fa.sizeBytes = sizeBytes;
      fa.lineBytes = 8;
      fa.associativity = fa.numLines();
      const double simulated = simulateTrace(fa, t).missRate();
      const double predicted = p.predictedMissRate(fa.numLines());
      EXPECT_NEAR(predicted, simulated, 1e-12)
          << k.name << " size=" << sizeBytes;
    }
  }
}

TEST(ReuseProfile, MissRateMonotoneInCapacity) {
  const Trace t = generateTrace(pdeKernel());
  const ReuseProfile p(t, 8);
  double prev = 1.1;
  for (std::uint64_t lines = 1; lines <= 256; lines *= 2) {
    const double mr = p.predictedMissRate(lines);
    EXPECT_LE(mr, prev);
    prev = mr;
  }
}

TEST(ReuseProfile, LinesForHitRateFindsTheKnee) {
  const Trace t = loopingTrace(0, 8, 10, 8);  // 8 lines, 10 rounds
  const ReuseProfile p(t, 8);
  // 90% of accesses hit once 8 lines are resident.
  EXPECT_EQ(p.linesForHitRate(0.85), 8u);
  // 100% is unreachable (cold misses): falls back to uniqueLines.
  EXPECT_EQ(p.linesForHitRate(1.0), 8u);
}

TEST(ReuseProfile, EmptyTrace) {
  const ReuseProfile p(Trace{}, 8);
  EXPECT_EQ(p.accesses(), 0u);
  EXPECT_DOUBLE_EQ(p.predictedMissRate(4), 0.0);
  EXPECT_EQ(p.linesForHitRate(0.5), 0u);
}

TEST(ReuseProfile, RejectsBadArguments) {
  EXPECT_THROW(ReuseProfile(Trace{}, 12), ContractViolation);
  const ReuseProfile p(Trace{}, 8);
  EXPECT_THROW((void)p.linesForHitRate(1.5), ContractViolation);
}

TEST(ReuseProfile, StraddlingAccessTouchesBothLines) {
  Trace t;
  t.push(readRef(6, 4));  // lines 0 and 1 at L=8
  t.push(readRef(6, 4));
  const ReuseProfile p(t, 8);
  EXPECT_EQ(p.accesses(), 4u);  // two line touches per access
  EXPECT_EQ(p.coldMisses(), 2u);
  EXPECT_EQ(p.countAtDistance(1), 2u);  // each line one below the other
}

}  // namespace
}  // namespace memx
