#include <gtest/gtest.h>

#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/kernel_parser.hpp"
#include "memx/loopir/ref_classes.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

constexpr const char* kCompressText = R"(
# Example 1 of the paper
array a[32][32] : 1
for i = 1 .. 31
  for j = 1 .. 31
    a[i][j] = a[i][j] - a[i-1][j] - a[i][j-1] - 2*a[i-1][j-1]
)";

TEST(KernelParser, ParsesCompressExactly) {
  const Kernel parsed = parseKernel(kCompressText, "compress");
  const Kernel built = compressKernel();
  EXPECT_EQ(parsed.nest.iterationCount(), built.nest.iterationCount());
  ASSERT_EQ(parsed.body.size(), built.body.size());
  // The traces match reference for reference.
  const Trace a = generateTrace(parsed);
  const Trace b = generateTrace(built);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr) << "i=" << i;
    EXPECT_EQ(a[i].type, b[i].type);
  }
}

TEST(KernelParser, AnalysisMatchesBuiltKernel) {
  const Kernel parsed = parseKernel(kCompressText);
  EXPECT_EQ(analyzeReferences(parsed).groups.size(), 2u);
  EXPECT_EQ(minCacheLines(parsed, 8), 4u);
}

TEST(KernelParser, MultipleArraysAndStatements) {
  const Kernel k = parseKernel(R"(
array a[8][8]
array b[8][8] : 2
array c[8][8] : 2
for i = 0 .. 7
  for j = 0 .. 7
    c[i][j] = a[i][j] + b[i][j]
    b[i][j] = a[i][j]
)");
  EXPECT_EQ(k.arrays.size(), 3u);
  EXPECT_EQ(k.arrays[1].elemBytes, 2u);
  // Statement 1: 2 reads + 1 write; statement 2: 1 read + 1 write.
  EXPECT_EQ(k.body.size(), 5u);
  EXPECT_EQ(k.body[2].type, AccessType::Write);
  EXPECT_EQ(k.body[4].type, AccessType::Write);
}

TEST(KernelParser, StepAndDeepNests) {
  const Kernel k = parseKernel(R"(
array a[64]
for i = 0 .. 63 step 4
  a[i] = a[i] + 1
)");
  EXPECT_EQ(k.nest.iterationCount(), 16u);
  const Kernel deep = parseKernel(R"(
array t[4][4][4]
for i = 0 .. 3
  for j = 0 .. 3
    for k = 0 .. 3
      t[i][j][k] = t[i][j][k] + 1
)");
  EXPECT_EQ(deep.nest.iterationCount(), 64u);
  EXPECT_EQ(deep.nest.depth(), 3u);
}

TEST(KernelParser, ScaledAndMixedSubscripts) {
  const Kernel k = parseKernel(R"(
array f[4096]
for i = 0 .. 15
  for j = 0 .. 63
    f[64*i + j] = f[64*i + j] + 1
)");
  const Trace t = generateTrace(k);
  EXPECT_EQ(t[0].addr, 0u);
  EXPECT_EQ(t[2].addr, 1u);            // j = 1
  EXPECT_EQ(t[2 * 64].addr, 64u);      // i = 1, j = 0
}

TEST(KernelParser, TransposedSubscripts) {
  const Kernel k = parseKernel(R"(
array a[8][8]
array b[8][8]
for i = 0 .. 7
  for j = 0 .. 7
    a[i][j] = b[j][i]
)");
  const RefAnalysis analysis = analyzeReferences(k);
  EXPECT_EQ(analysis.cases.size(), 2u);
}

TEST(KernelParser, ConstantsInExpressionsIgnored) {
  const Kernel k = parseKernel(R"(
array a[8]
for i = 0 .. 7
  a[i] = 3 + 2*a[i] - 1
)");
  EXPECT_EQ(k.body.size(), 2u);  // one read, one write
}

TEST(KernelParser, ErrorsCarryLineNumbers) {
  try {
    (void)parseKernel("array a[8]\nfor i = 0 .. 7\n  q[i] = a[i]\n");
    FAIL() << "expected a parse error";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos);
    EXPECT_NE(what.find("unknown array 'q'"), std::string::npos);
  }
}

TEST(KernelParser, RejectsMalformedInput) {
  EXPECT_THROW(parseKernel(""), ContractViolation);  // no loop
  EXPECT_THROW(parseKernel("array a[8]\n"), ContractViolation);
  EXPECT_THROW(parseKernel("array a[8]\nfor i = 0 .. 7\n"),
               ContractViolation);  // empty body
  EXPECT_THROW(
      parseKernel("array a[8]\nfor i = 0 .. 7\n  a[i] = a[k]\n"),
      ContractViolation);  // unknown variable
  EXPECT_THROW(
      parseKernel("array a[8]\narray a[4]\nfor i = 0 .. 3\n a[i]=a[i]\n"),
      ContractViolation);  // duplicate array
  EXPECT_THROW(
      parseKernel("array a[8]\nfor i = 0 .. 7 step 0\n  a[i] = a[i]\n"),
      ContractViolation);  // bad step
  EXPECT_THROW(
      parseKernel("array a[8]\nfor i = 0 .. 7\n  a[i] = a[i]\n junk"),
      ContractViolation);  // trailing garbage
}

TEST(KernelParser, HugeIntegerLiteralRejectedWithLineNumber) {
  // 2^63 does not fit int64; accumulating it is signed overflow, so the
  // lexer must reject the literal before the arithmetic happens.
  try {
    (void)parseKernel(
        "array a[8]\nfor i = 0 .. 9223372036854775808\n  a[i] = a[i]\n");
    FAIL() << "expected a parse error";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("too large"), std::string::npos) << what;
  }
  // A 100-digit literal as an array extent.
  EXPECT_THROW(
      parseKernel("array a[" + std::string(100, '9') +
                  "]\nfor i = 0 .. 3\n  a[i] = a[i]\n"),
      ContractViolation);
  // INT64_MAX itself still lexes (the guard is not off by one).
  const Kernel k = parseKernel(
      "array a[9223372036854775807]\nfor i = 0 .. 3\n  a[i] = a[i]\n");
  EXPECT_EQ(k.arrays[0].extents[0], 9223372036854775807);
}

TEST(KernelParser, PathologicallyDeepNestFailsCleanly) {
  // 500 nested loops must produce a parse error, not a stack overflow.
  std::string text = "array a[4]\n";
  for (int i = 0; i < 500; ++i) {
    text += "for v" + std::to_string(i) + " = 0 .. 1\n";
  }
  text += "a[0] = a[0]\n";
  try {
    (void)parseKernel(text);
    FAIL() << "expected a parse error";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("deeper than"),
              std::string::npos);
  }
}

TEST(KernelParser, FuzzerShapedInputsThrowInsteadOfCrashing) {
  // None of these may crash, hang or UB; all must throw the contract
  // error with a line number.
  const char* cases[] = {
      "\xff\xfe\xfd",
      "for",
      "for = ..",
      "array\narray\narray",
      "array a[1]]]]]\nfor i = 0 .. 1\n  a[0] = a[0]\n",
      "array a[1]\nfor i = 0 .. 1\n  a[i] = 99999999999999999999 * a[i]\n",
      "array a[1]\nfor i = 0 .. 1\n  a[i] = -\n",
      "array a[1]\nfor i = 0 .. 1\n  a[i - ] = a[i]\n",
      "array a[1] :\nfor i = 0 .. 1\n  a[i] = a[i]\n",
      "array a[1]\nfor i = 0 ..\n",
      "# only a comment",
      "....",
      "\"\"\"",
  };
  for (const char* text : cases) {
    EXPECT_THROW((void)parseKernel(text), ContractViolation)
        << "input: " << text;
  }
}

TEST(KernelParser, CommentsAndWhitespaceTolerated) {
  const Kernel k = parseKernel(
      "# header\narray   a[4]   # decl\nfor i = 0 .. 3\n"
      "  a[i] = a[i]  # stmt\n# trailing\n");
  EXPECT_EQ(k.nest.iterationCount(), 4u);
}

}  // namespace
}  // namespace memx
