#include <gtest/gtest.h>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/util/assert.hpp"
#include "memx/xform/fusion.hpp"

namespace memx {
namespace {

/// c[i][j] = a[i][j] * 2 over n x n (producer).
Kernel scaleKernel(std::int64_t n) {
  Kernel k;
  k.name = "scale";
  k.arrays = {ArrayDecl{"a", {n, n}, 1}, ArrayDecl{"c", {n, n}, 1}};
  k.nest = LoopNest::rectangular({{0, n - 1}, {0, n - 1}});
  k.body = {
      makeAccess(0, {AffineExpr::var(0), AffineExpr::var(1)}),
      makeAccess(1, {AffineExpr::var(0), AffineExpr::var(1)},
                 AccessType::Write),
  };
  return k;
}

/// d[i][j] = c[i][j] + a[i][j] (consumer of both).
Kernel sumKernel(std::int64_t n) {
  Kernel k;
  k.name = "sum";
  k.arrays = {ArrayDecl{"c", {n, n}, 1}, ArrayDecl{"a", {n, n}, 1},
              ArrayDecl{"d", {n, n}, 1}};
  k.nest = LoopNest::rectangular({{0, n - 1}, {0, n - 1}});
  k.body = {
      makeAccess(0, {AffineExpr::var(0), AffineExpr::var(1)}),
      makeAccess(1, {AffineExpr::var(0), AffineExpr::var(1)}),
      makeAccess(2, {AffineExpr::var(0), AffineExpr::var(1)},
                 AccessType::Write),
  };
  return k;
}

TEST(Fusion, SameIterationSpaceDetection) {
  EXPECT_TRUE(sameIterationSpace(scaleKernel(16), sumKernel(16)));
  EXPECT_FALSE(sameIterationSpace(scaleKernel(16), sumKernel(8)));
  EXPECT_FALSE(sameIterationSpace(scaleKernel(16), compressKernel()));
}

TEST(Fusion, SharedArraysAreMergedByName) {
  const Kernel fused = fuseKernels(scaleKernel(16), sumKernel(16));
  // Arrays: a, c (from scale) + d (new from sum); c and a shared.
  ASSERT_EQ(fused.arrays.size(), 3u);
  EXPECT_EQ(fused.arrays[0].name, "a");
  EXPECT_EQ(fused.arrays[1].name, "c");
  EXPECT_EQ(fused.arrays[2].name, "d");
  EXPECT_EQ(fused.body.size(), 5u);
}

TEST(Fusion, BodyOrderIsProducerThenConsumer) {
  const Kernel fused = fuseKernels(scaleKernel(8), sumKernel(8));
  // Per iteration: read a, write c, read c, read a, write d.
  EXPECT_EQ(fused.body[1].type, AccessType::Write);
  EXPECT_EQ(fused.body[1].arrayIndex, fused.arrayIndexOf("c"));
  EXPECT_EQ(fused.body[2].arrayIndex, fused.arrayIndexOf("c"));
  EXPECT_EQ(fused.body[4].arrayIndex, fused.arrayIndexOf("d"));
}

TEST(Fusion, PreservesTotalAccessCount) {
  const Kernel a = scaleKernel(16);
  const Kernel b = sumKernel(16);
  const Kernel fused = fuseKernels(a, b);
  EXPECT_EQ(fused.referenceCount(),
            a.referenceCount() + b.referenceCount());
}

TEST(Fusion, ImprovesLocalityOverSequentialExecution) {
  // Sequential: scale streams a and c; sum then re-reads both after the
  // cache has evicted them. Fused: the re-reads hit the just-touched
  // lines.
  const std::int64_t n = 32;
  const Kernel a = scaleKernel(n);
  const Kernel b = sumKernel(n);
  const Kernel fused = fuseKernels(a, b);

  CacheConfig cache;
  cache.sizeBytes = 64;
  cache.lineBytes = 8;
  // 4-way so the three tight-packed arrays (1 KiB apart, aliasing in a
  // direct-mapped cache) don't drown the reuse signal in conflicts.
  cache.associativity = 4;

  // Sequential composite: run scale's trace then sum's, with both
  // kernels seeing the same (fused) address space.
  const MemoryLayout layout = MemoryLayout::tight(fused);
  Kernel aView = fused;
  aView.body.assign(fused.body.begin(), fused.body.begin() + 2);
  Kernel bView = fused;
  bView.body.assign(fused.body.begin() + 2, fused.body.end());
  Trace sequential = generateTrace(aView, layout);
  sequential.append(generateTrace(bView, layout));
  const Trace fusedTrace = generateTrace(fused, layout);
  ASSERT_EQ(sequential.size(), fusedTrace.size());

  const double seqMiss = simulateTrace(cache, sequential).missRate();
  const double fusedMiss = simulateTrace(cache, fusedTrace).missRate();
  EXPECT_LT(fusedMiss, seqMiss * 0.7);
}

TEST(Fusion, RejectsMismatchedSpacesAndShapes) {
  EXPECT_THROW(fuseKernels(scaleKernel(16), sumKernel(8)),
               ContractViolation);
  // Same name, different shape.
  Kernel bad = sumKernel(16);
  bad.arrays[1].elemBytes = 4;
  EXPECT_THROW(fuseKernels(scaleKernel(16), bad), ContractViolation);
}

TEST(Fusion, FusedKernelWorksWithTightLayout) {
  const Kernel fused = fuseKernels(scaleKernel(8), sumKernel(8));
  EXPECT_NO_THROW(generateTrace(fused));
}

TEST(Distribution, SplitsBodyIntoTwoKernels) {
  const Kernel fused = fuseKernels(scaleKernel(8), sumKernel(8));
  const auto [first, second] = distributeKernel(fused, 2);
  EXPECT_EQ(first.body.size(), 2u);
  EXPECT_EQ(second.body.size(), 3u);
  EXPECT_EQ(first.arrays.size(), fused.arrays.size());
  EXPECT_EQ(first.referenceCount() + second.referenceCount(),
            fused.referenceCount());
}

TEST(Distribution, RoundTripsFusion) {
  // distribute(fuse(a, b)) at a's boundary recovers both traces.
  const Kernel a = scaleKernel(8);
  const Kernel b = sumKernel(8);
  const Kernel fused = fuseKernels(a, b);
  const auto [first, second] = distributeKernel(fused, a.body.size());
  const MemoryLayout layout = MemoryLayout::tight(fused);
  const Trace ta = generateTrace(first, layout);
  const Trace tb = generateTrace(second, layout);
  EXPECT_EQ(ta.size(), a.referenceCount());
  EXPECT_EQ(tb.size(), b.referenceCount());
}

TEST(Distribution, RejectsEmptyHalves) {
  const Kernel k = scaleKernel(8);
  EXPECT_THROW(distributeKernel(k, 0), ContractViolation);
  EXPECT_THROW(distributeKernel(k, k.body.size()), ContractViolation);
}

}  // namespace
}  // namespace memx
