#include <gtest/gtest.h>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/victim_cache.hpp"
#include "memx/kernels/benchmarks.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/trace/generators.hpp"
#include "memx/util/assert.hpp"

namespace memx {
namespace {

CacheConfig dm(std::uint32_t size, std::uint32_t line) {
  CacheConfig c;
  c.sizeBytes = size;
  c.lineBytes = line;
  return c;
}

TEST(VictimCache, RejectsSetAssociativeMain) {
  CacheConfig c = dm(64, 8);
  c.associativity = 2;
  EXPECT_THROW(VictimCache(c, 2), ContractViolation);
  EXPECT_THROW(VictimCache(dm(64, 8), 0), ContractViolation);
}

TEST(VictimCache, RescuesPingPongConflicts) {
  // Two lines aliasing in the direct-mapped cache; one victim entry
  // rescues every repeat.
  VictimCache vc(dm(64, 8), 1);
  vc.run(pingPongTrace(0, 64, 20, 0));
  EXPECT_EQ(vc.stats().victimMisses, 2u);  // the two cold fetches
  EXPECT_EQ(vc.stats().victimHits, 38u);
  EXPECT_DOUBLE_EQ(vc.stats().effectiveMissRate(), 2.0 / 40.0);
}

TEST(VictimCache, PlainDirectMappedThrashesSameWorkload) {
  CacheSim plain(dm(64, 8));
  plain.run(pingPongTrace(0, 64, 20, 0));
  EXPECT_EQ(plain.stats().misses(), 40u);
}

TEST(VictimCache, BufferTooSmallForThreeWayConflict) {
  // Three aliasing lines round-robin; a 1-entry buffer always holds the
  // wrong line, a 2-entry buffer rescues everything after warmup.
  Trace t;
  for (int r = 0; r < 10; ++r) {
    t.push(readRef(0));
    t.push(readRef(64));
    t.push(readRef(128));
  }
  VictimCache one(dm(64, 8), 1);
  one.run(t);
  VictimCache two(dm(64, 8), 2);
  two.run(t);
  EXPECT_GT(one.stats().victimMisses, two.stats().victimMisses);
  EXPECT_EQ(two.stats().victimMisses, 3u);  // cold only
}

TEST(VictimCache, NoEffectOnSequentialStream) {
  VictimCache vc(dm(64, 8), 4);
  vc.run(stridedTrace(0, 128, 8, 4));
  EXPECT_EQ(vc.stats().victimHits, 0u);  // nothing ever returns
  EXPECT_EQ(vc.stats().victimMisses, 128u);
}

TEST(VictimCache, HitsCountedPerLineProbe) {
  VictimCache vc(dm(64, 8), 2);
  vc.access(readRef(6, 4));  // straddles two lines: two probes
  EXPECT_EQ(vc.stats().main.accesses(), 2u);
}

TEST(VictimCache, RescueRateComputed) {
  VictimCache vc(dm(64, 8), 1);
  vc.run(pingPongTrace(0, 64, 10, 0));
  EXPECT_NEAR(vc.stats().rescueRate(), 18.0 / 20.0, 1e-12);
}

TEST(VictimCache, HardwareVsSoftwareConflictFixOnCompress) {
  // The Section-4.1 layout and a 4-entry victim buffer attack the same
  // conflict misses; both should beat the plain direct-mapped cache.
  const Kernel k = compressKernel(32, 4);  // word rows alias at C64
  const CacheConfig cache = dm(64, 8);
  const Trace tight = generateTrace(k, sequentialLayout(k));

  CacheSim plain(cache);
  plain.run(tight);

  VictimCache vc(cache, 4);
  vc.run(tight);

  const AssignmentPlan plan = assignConflictFree(k, cache);
  CacheSim optimized(cache);
  optimized.run(generateTrace(k, plan.layout));

  EXPECT_LT(vc.stats().effectiveMissRate(), plain.stats().missRate());
  EXPECT_LT(optimized.stats().missRate(), plain.stats().missRate());
}

/// Property: a victim buffer never makes things worse, and monotonically
/// improves (weakly) with more entries.
class VictimSweep : public ::testing::TestWithParam<int> {};

TEST_P(VictimSweep, MoreEntriesNeverWorse) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Trace t = randomTrace(0, 2048, 4000, seed);
  double prev = 1.0;
  CacheSim plain(dm(128, 8));
  plain.run(t);
  prev = plain.stats().missRate();
  for (const std::uint32_t entries : {1u, 2u, 4u, 8u}) {
    VictimCache vc(dm(128, 8), entries);
    vc.run(t);
    // Weak monotonicity (the buffer is not a strict stack algorithm, so
    // allow simulation noise of up to one percentage point).
    EXPECT_LE(vc.stats().effectiveMissRate(), prev + 0.01)
        << "entries=" << entries;
    prev = vc.stats().effectiveMissRate();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VictimSweep, ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace memx
