#include "memx/mpeg/chained.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/util/assert.hpp"

namespace memx {

ChainedRun runChained(const CompositeProgram& program,
                      const CacheConfig& cache) {
  MEMX_EXPECTS(program.kernelCount() > 0,
               "composite program has no kernels");
  cache.validate();

  ChainedRun run;
  CacheSim warm(cache);

  double coldWeightedMiss = 0.0;
  double totalTrips = 0.0;
  std::uint64_t nextBase = 0;

  for (std::size_t j = 0; j < program.kernelCount(); ++j) {
    const Kernel& kernel = program.kernel(j);
    const std::uint64_t trips = program.trips(j);

    const MemoryLayout layout = MemoryLayout::tight(kernel, nextBase);
    nextBase = layout.endAddr(kernel);
    const Trace trace = generateTrace(kernel, layout);

    // Cold-cache reference number (the paper's methodology).
    const double coldMiss = simulateTrace(cache, trace).missRate();
    coldWeightedMiss += coldMiss * static_cast<double>(trips);
    totalTrips += static_cast<double>(trips);

    // Warm chain: repeat the kernel its trip count without resetting.
    const CacheStats before = warm.stats();
    for (std::uint64_t t = 0; t < trips; ++t) warm.run(trace);
    const CacheStats after = warm.stats();
    const std::uint64_t accesses = after.accesses() - before.accesses();
    const std::uint64_t misses = after.misses() - before.misses();
    run.kernelMissRates.push_back(
        accesses == 0 ? 0.0
                      : static_cast<double>(misses) /
                            static_cast<double>(accesses));
  }

  run.total = warm.stats();
  run.coldAggregateMissRate = coldWeightedMiss / totalTrips;
  return run;
}

}  // namespace memx
