// Whole-program exploration from kernel records (paper Section 5).
//
// A large program is a set of kernels j with trip counts trip(j); for each
// shared cache configuration the program-level metrics are
//
//   MISS_R = sum_j mr(j)*trip(j) / sum_j trip(j)
//   CYCLES = sum_j C(j)*trip(j)
//   ENERGY = sum_j E(j)*trip(j)
//
// which is exactly how the paper combines the MPEG decoder's kernels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memx/core/explorer.hpp"
#include "memx/loopir/kernel.hpp"

namespace memx {

/// A program built from weighted kernels.
class CompositeProgram {
public:
  explicit CompositeProgram(std::string name) : name_(std::move(name)) {}

  /// Add a kernel invoked `trips` times per program run.
  void add(Kernel kernel, std::uint64_t trips);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t kernelCount() const noexcept {
    return kernels_.size();
  }
  [[nodiscard]] const Kernel& kernel(std::size_t i) const;
  [[nodiscard]] std::uint64_t trips(std::size_t i) const;

  /// Exploration of the composite plus each constituent.
  struct Result {
    ExplorationResult combined;
    std::vector<ExplorationResult> perKernel;
    std::vector<std::uint64_t> tripCounts;
  };

  /// Sweep every kernel with `explorer` and fold the records together.
  /// All kernels share the explorer's sweep grid, so every combined point
  /// aggregates a record from every kernel.
  [[nodiscard]] Result explore(const Explorer& explorer) const;

private:
  std::string name_;
  std::vector<Kernel> kernels_;
  std::vector<std::uint64_t> trips_;
};

/// Fold already-computed per-kernel sweeps (same grid) into program-level
/// design points using the paper's trip-weighted formulas.
[[nodiscard]] ExplorationResult combineResults(
    const std::string& name,
    const std::vector<ExplorationResult>& perKernel,
    const std::vector<std::uint64_t>& trips);

/// The Section-5 MPEG decoder assembled from the nine modeled kernels.
[[nodiscard]] CompositeProgram mpegDecoder();

}  // namespace memx
