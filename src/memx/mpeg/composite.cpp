#include "memx/mpeg/composite.hpp"

#include "memx/kernels/mpeg_kernels.hpp"
#include "memx/util/assert.hpp"

namespace memx {

void CompositeProgram::add(Kernel kernel, std::uint64_t trips) {
  kernel.validate();
  MEMX_EXPECTS(trips >= 1, "trip count must be at least 1");
  kernels_.push_back(std::move(kernel));
  trips_.push_back(trips);
}

const Kernel& CompositeProgram::kernel(std::size_t i) const {
  MEMX_EXPECTS(i < kernels_.size(), "kernel index out of range");
  return kernels_[i];
}

std::uint64_t CompositeProgram::trips(std::size_t i) const {
  MEMX_EXPECTS(i < trips_.size(), "kernel index out of range");
  return trips_[i];
}

ExplorationResult combineResults(
    const std::string& name,
    const std::vector<ExplorationResult>& perKernel,
    const std::vector<std::uint64_t>& trips) {
  MEMX_EXPECTS(!perKernel.empty(), "nothing to combine");
  MEMX_EXPECTS(perKernel.size() == trips.size(),
               "one trip count per kernel result required");

  ExplorationResult out;
  out.workload = name;

  double totalTrips = 0.0;
  for (const std::uint64_t t : trips) {
    totalTrips += static_cast<double>(t);
  }

  // The grid of the first result defines the combined grid; every other
  // result must contain each key (same sweep ranges).
  for (const DesignPoint& head : perKernel.front().points) {
    DesignPoint combined;
    combined.key = head.key;
    double weightedMiss = 0.0;
    for (std::size_t j = 0; j < perKernel.size(); ++j) {
      const DesignPoint& p = perKernel[j].at(head.key);
      const double w = static_cast<double>(trips[j]);
      weightedMiss += p.missRate * w;
      combined.cycles += p.cycles * w;
      combined.energyNj += p.energyNj * w;
      combined.accesses += p.accesses * trips[j];
    }
    combined.missRate = weightedMiss / totalTrips;
    out.points.push_back(combined);
  }
  return out;
}

CompositeProgram::Result CompositeProgram::explore(
    const Explorer& explorer) const {
  MEMX_EXPECTS(!kernels_.empty(), "composite program has no kernels");
  Result result;
  result.tripCounts = trips_;
  result.perKernel.reserve(kernels_.size());
  for (const Kernel& k : kernels_) {
    result.perKernel.push_back(explorer.explore(k));
  }
  result.combined = combineResults(name_, result.perKernel, trips_);
  return result;
}

CompositeProgram mpegDecoder() {
  CompositeProgram program("mpeg-decoder");
  std::vector<WeightedKernel> ks = mpegDecoderKernels();
  for (WeightedKernel& wk : ks) {
    program.add(std::move(wk.kernel), wk.trips);
  }
  return program;
}

}  // namespace memx
