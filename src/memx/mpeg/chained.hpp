// Chained (warm-cache) whole-program simulation.
//
// Section 5 aggregates per-kernel metrics measured on cold caches; in a
// real decoder the kernels run back-to-back through one cache, so each
// kernel inherits the previous one's contents (reuse across kernels,
// or pollution). This module runs the composite program as one chained
// trace in a shared address space and quantifies what the paper's
// cold-cache assumption costs.
#pragma once

#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/cache_stats.hpp"
#include "memx/mpeg/composite.hpp"

namespace memx {

/// Result of one chained run.
struct ChainedRun {
  CacheStats total;                    ///< whole-chain counters
  std::vector<double> kernelMissRates; ///< per kernel, in program order
  /// Trip-weighted cold-cache aggregate of the same kernels on the same
  /// cache (the paper's Section-5 number) for comparison.
  double coldAggregateMissRate = 0.0;

  [[nodiscard]] double warmMissRate() const noexcept {
    return total.missRate();
  }
};

/// Run `program`'s kernels back-to-back (each repeated its trip count)
/// through one cache. Every kernel's arrays get a disjoint region of the
/// shared address space (tight within the kernel).
[[nodiscard]] ChainedRun runChained(const CompositeProgram& program,
                                    const CacheConfig& cache);

}  // namespace memx
