// Differential oracle runner for the optimized sweep engine.
//
// Each seeded case replays one generated reference stream through every
// production simulation path — CacheSim's bulk fast path, its
// per-access outcome path, a MultiCacheSim bank, the two-level
// CacheHierarchy, the set-sampling estimator, the stack-distance bank
// (StackDistSim on an always-in-domain LRU config plus its
// fully-associative and direct-mapped siblings) and the policy-grid
// bank (the same sibling scheme on a seed-pure FIFO or tree-PLRU
// config, exercising PolicyGridProfile) — and diffs the full
// statistics of each against the naive RefCacheSim oracle. Full
// simulation must match bit for bit (including the Random replacement
// policy, which both sides draw from identically-seeded engines); set
// sampling must match the oracle's re-statement of the estimator
// exactly. On a mismatch the runner shrinks the stream to the shortest
// failing prefix and reports a one-line repro (`seed=S len=N ...`) that
// reconstructs the case from the seed alone via replayDiffCase().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// One generated differential case: everything derives from the seed.
struct DiffCase {
  std::uint64_t seed = 0;
  CacheConfig config;  ///< primary configuration under test
  CacheConfig l2;      ///< inclusive outer level for the hierarchy path
  CacheConfig lru;     ///< LRU/write-allocate config for the stack-
                       ///< distance path (StackDistSim's domain)
  CacheConfig grid;    ///< FIFO/TreePLRU write-allocate config for the
                       ///< policy-grid path (PolicyGridProfile's domain)
  Trace trace;
};

/// Generate the case for `seed` (config from randomCacheConfig, L2 from
/// randomL2Config, lru from randomLruCacheConfig, grid from
/// randomGridCacheConfig, stream from randomCheckTrace — policies cover
/// all 16 combinations over any 16 consecutive seeds).
[[nodiscard]] DiffCase makeDiffCase(std::uint64_t seed);

/// One-line reproduction header for `c` truncated to `len` references
/// ("MEMX_DIFF repro: seed=S len=N cfg=... | rerun: ..."). Every failure
/// message starts with this line.
[[nodiscard]] std::string diffCaseRepro(const DiffCase& c,
                                        std::size_t len);

/// Outcome of one differential check.
struct DiffResult {
  bool ok = true;
  /// Empty when ok; otherwise a one-line repro followed by the first
  /// mismatching engine path/field with expected vs actual values.
  std::string message;

  explicit operator bool() const noexcept { return ok; }
};

/// Diff every engine path against the oracle on the first `len`
/// references of `c.trace` (len is clamped to the trace length).
[[nodiscard]] DiffResult checkDiffCase(const DiffCase& c, std::size_t len);

/// Reconstruct the case for `seed` and check its first `len` references
/// — the one-call reproduction entry point printed in repro lines.
[[nodiscard]] DiffResult replayDiffCase(std::uint64_t seed,
                                        std::size_t len);

/// Run the full case for `seed`; on failure, minimize to the shortest
/// failing prefix and return its repro message.
[[nodiscard]] DiffResult runDifferentialCase(std::uint64_t seed);

/// Aggregate of a seed-range sweep.
struct DiffSummary {
  std::size_t casesRun = 0;
  std::vector<std::string> failures;  ///< minimized repro messages

  [[nodiscard]] bool allOk() const noexcept { return failures.empty(); }
};

/// Run `count` cases for seeds firstSeed .. firstSeed + count - 1.
[[nodiscard]] DiffSummary runDifferential(std::uint64_t firstSeed,
                                          std::size_t count);

}  // namespace memx
