#include "memx/check/ref_cache_sim.hpp"

#include "memx/util/assert.hpp"

namespace memx {

RefCacheSim::RefCacheSim(const CacheConfig& config, std::uint64_t rngSeed)
    : config_(config), rng_(rngSeed) {
  config_.validate();
  sets_.assign(config_.numSets(), std::vector<Way>(config_.associativity));
  // A binary tree over `associativity` leaves has fewer than
  // 2 * associativity internal nodes under the 2n+1/2n+2 indexing.
  plru_.assign(config_.numSets(),
               std::vector<std::uint8_t>(2 * config_.associativity, 0));
}

void RefCacheSim::plruTouch(std::vector<std::uint8_t>& bits,
                            std::size_t node, std::size_t lo,
                            std::size_t hi, std::size_t way) {
  if (hi - lo <= 1) return;
  const std::size_t mid = lo + (hi - lo) / 2;
  if (way < mid) {
    bits[node] = 1;  // touched the left half: point right, away from it
    plruTouch(bits, 2 * node + 1, lo, mid, way);
  } else {
    bits[node] = 0;  // touched the right half: point left
    plruTouch(bits, 2 * node + 2, mid, hi, way);
  }
}

std::size_t RefCacheSim::plruVictim(const std::vector<std::uint8_t>& bits,
                                    std::size_t node, std::size_t lo,
                                    std::size_t hi) const {
  if (hi - lo <= 1) return lo;
  const std::size_t mid = lo + (hi - lo) / 2;
  if (bits[node] != 0) return plruVictim(bits, 2 * node + 2, mid, hi);
  return plruVictim(bits, 2 * node + 1, lo, mid);
}

std::size_t RefCacheSim::chooseVictim(std::size_t setIndex) {
  std::vector<Way>& set = sets_[setIndex];
  // An invalid way always wins, lowest index first.
  for (std::size_t w = 0; w < set.size(); ++w) {
    if (!set[w].valid) return w;
  }
  switch (config_.replacement) {
    case ReplacementPolicy::LRU: {
      std::size_t oldest = 0;
      for (std::size_t w = 1; w < set.size(); ++w) {
        if (set[w].lastUse < set[oldest].lastUse) oldest = w;
      }
      return oldest;
    }
    case ReplacementPolicy::FIFO: {
      std::size_t oldest = 0;
      for (std::size_t w = 1; w < set.size(); ++w) {
        if (set[w].filledAt < set[oldest].filledAt) oldest = w;
      }
      return oldest;
    }
    case ReplacementPolicy::Random: {
      if (set.size() == 1) return 0;
      std::uniform_int_distribution<std::size_t> dist(0, set.size() - 1);
      return dist(rng_);
    }
    case ReplacementPolicy::TreePLRU: {
      return plruVictim(plru_[setIndex], 0, 0, set.size());
    }
  }
  return 0;
}

void RefCacheSim::recordWrite(Way& way) {
  if (config_.writePolicy == WritePolicy::WriteBack) {
    way.dirty = true;
  } else {
    ++stats_.memWrites;  // write-through: the store also goes to memory
  }
}

bool RefCacheSim::probeLine(std::uint64_t lineIndex, AccessType type,
                            RefAccessOutcome& outcome) {
  const std::uint64_t numSets = config_.numSets();
  const std::size_t setIndex = static_cast<std::size_t>(lineIndex % numSets);
  const std::uint64_t tag = lineIndex / numSets;
  std::vector<Way>& set = sets_[setIndex];
  ++time_;

  // Hit?
  for (std::size_t w = 0; w < set.size(); ++w) {
    Way& way = set[w];
    if (way.valid && way.tag == tag) {
      if (config_.replacement == ReplacementPolicy::LRU) {
        way.lastUse = time_;
      }
      if (config_.replacement == ReplacementPolicy::TreePLRU &&
          set.size() > 1) {
        plruTouch(plru_[setIndex], 0, 0, set.size(), w);
      }
      if (type == AccessType::Write) recordWrite(way);
      return true;
    }
  }

  // Miss. A no-allocate write goes around the cache untouched.
  if (type == AccessType::Write &&
      config_.allocatePolicy == AllocatePolicy::NoWriteAllocate) {
    ++stats_.memWrites;
    return false;
  }

  const std::size_t w = chooseVictim(setIndex);
  Way& victim = set[w];
  if (victim.valid && victim.dirty) {
    ++stats_.writebacks;
    ++outcome.writebacks;
    const std::uint64_t victimLine = victim.tag * numSets + setIndex;
    outcome.evictedDirtyLines.push_back(victimLine * config_.lineBytes);
  }
  victim.valid = true;
  victim.tag = tag;
  victim.dirty = false;
  victim.lastUse = time_;
  victim.filledAt = time_;
  if (config_.replacement == ReplacementPolicy::TreePLRU && set.size() > 1) {
    plruTouch(plru_[setIndex], 0, 0, set.size(), w);
  }
  ++stats_.lineFills;
  ++outcome.fills;
  if (type == AccessType::Write) recordWrite(victim);
  return false;
}

RefAccessOutcome RefCacheSim::access(const MemRef& ref) {
  MEMX_EXPECTS(ref.size > 0, "access size must be positive");
  const std::uint64_t firstLine = ref.addr / config_.lineBytes;
  const std::uint64_t lastLine =
      (ref.addr + ref.size - 1) / config_.lineBytes;
  RefAccessOutcome outcome;
  bool allHit = true;
  for (std::uint64_t line = firstLine; line <= lastLine; ++line) {
    if (!probeLine(line, ref.type, outcome)) allHit = false;
  }
  outcome.hit = allHit;
  if (isReadLike(ref.type)) {
    ++stats_.reads;
    if (allHit) {
      ++stats_.readHits;
    } else {
      ++stats_.readMisses;
    }
  } else {
    ++stats_.writes;
    if (allHit) {
      ++stats_.writeHits;
    } else {
      ++stats_.writeMisses;
    }
  }
  return outcome;
}

void RefCacheSim::run(const Trace& trace) {
  for (const MemRef& ref : trace) access(ref);
}

void RefCacheSim::reset() {
  for (std::vector<Way>& set : sets_) {
    for (Way& way : set) way = Way{};
  }
  for (std::vector<std::uint8_t>& bits : plru_) {
    for (std::uint8_t& b : bits) b = 0;
  }
  time_ = 0;
  stats_ = CacheStats{};
}

CacheStats refSimulateTrace(const CacheConfig& config, const Trace& trace) {
  RefCacheSim sim(config);
  sim.run(trace);
  return sim.stats();
}

RefHierarchyStats refSimulateHierarchy(const CacheConfig& l1,
                                       const CacheConfig& l2,
                                       const Trace& trace) {
  RefCacheSim simL1(l1);
  RefCacheSim simL2(l2);
  RefHierarchyStats stats;
  for (const MemRef& ref : trace) {
    const RefAccessOutcome l1Out = simL1.access(ref);
    for (const std::uint64_t victimAddr : l1Out.evictedDirtyLines) {
      const MemRef writeback{victimAddr, l1.lineBytes, AccessType::Write};
      const RefAccessOutcome out = simL2.access(writeback);
      stats.mainWrites += out.writebacks;
    }
    if (!l1Out.hit) {
      const MemRef fill{ref.addr, ref.size, AccessType::Read};
      const RefAccessOutcome l2Out = simL2.access(fill);
      stats.mainReads += l2Out.fills;
      stats.mainWrites += l2Out.writebacks;
    }
  }
  stats.l1 = simL1.stats();
  stats.l2 = simL2.stats();
  return stats;
}

double refEstimateMissRateBySetSampling(const CacheConfig& config,
                                        const Trace& trace,
                                        std::uint32_t factor,
                                        std::uint32_t offset) {
  config.validate();
  if (factor == 1) return refSimulateTrace(config, trace).missRate();
  MEMX_EXPECTS(config.numSets() % factor == 0,
               "factor must divide the set count");

  const std::uint64_t L = config.lineBytes;
  const std::uint64_t sets = config.numSets();
  const std::uint64_t shrunkSets = sets / factor;

  // The simulator probes every line an access touches, and each line
  // has its own set; walk the touched lines one by one, keep the byte
  // range falling in sampled sets, remapped so set s becomes set
  // s/factor of a cache 1/factor the size while tags are preserved.
  Trace remapped;
  for (const MemRef& ref : trace) {
    const std::uint64_t end = ref.addr + ref.size - 1;
    for (std::uint64_t line = ref.addr / L; line <= end / L; ++line) {
      const std::uint64_t set = line % sets;
      if (set % factor != offset) continue;
      const std::uint64_t lo = std::max(ref.addr, line * L);
      const std::uint64_t hi = std::min(end, line * L + L - 1);
      const std::uint64_t tag = line / sets;
      const std::uint64_t newLine = tag * shrunkSets + set / factor;
      remapped.push(MemRef{newLine * L + lo % L,
                           static_cast<std::uint32_t>(hi - lo + 1),
                           ref.type});
    }
  }
  if (remapped.empty()) return 0.0;

  CacheConfig shrunk = config;
  shrunk.sizeBytes = config.sizeBytes / factor;
  return refSimulateTrace(shrunk, remapped).missRate();
}

}  // namespace memx
