#include "memx/check/ref_stack_dist.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

RefReuseProfile::RefReuseProfile(const Trace& trace,
                                 std::uint32_t lineBytes) {
  MEMX_EXPECTS(isPow2(lineBytes), "line size must be a power of two");

  // LRU stack, most recent first.
  std::vector<std::uint64_t> stack;
  auto touch = [&](std::uint64_t line) {
    ++accesses_;
    const auto it = std::find(stack.begin(), stack.end(), line);
    if (it == stack.end()) {
      ++cold_;
      stack.insert(stack.begin(), line);
      histogram_.resize(stack.size(), 0);
      return;
    }
    const auto distance = static_cast<std::uint64_t>(it - stack.begin());
    ++histogram_[distance];
    stack.erase(it);
    stack.insert(stack.begin(), line);
  };

  for (const MemRef& ref : trace) {
    const std::uint64_t first = ref.addr / lineBytes;
    const std::uint64_t last = (ref.addr + ref.size - 1) / lineBytes;
    for (std::uint64_t line = first; line <= last; ++line) touch(line);
  }
}

}  // namespace memx
