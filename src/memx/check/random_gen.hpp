// Seeded random-case generators for the verification harness.
//
// Everything here is a pure function of its seed, so any failure a
// harness reports reproduces from the printed seed alone. The kernel
// generator is the one historically embedded in random_kernel_test.cpp,
// promoted to the library so the differential and metamorphic suites
// draw from the same distribution.
#pragma once

#include <cstdint>

#include "memx/cachesim/cache_config.hpp"
#include "memx/loopir/kernel.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// A random valid cache geometry: L in {4..32}, 1..16 sets, 1..8 ways
/// (sizeBytes = L * sets * ways, so the config always validates) with
/// the replacement/write/allocate policies cycling through all 16
/// combinations as `seed % 16` — 16 consecutive seeds cover every
/// policy combination.
[[nodiscard]] CacheConfig randomCacheConfig(std::uint64_t seed);

/// A random geometry restricted to the stack-distance domain: same
/// L/sets/ways distribution as randomCacheConfig (from an independent
/// rng stream), but always LRU replacement with write-allocate fills;
/// the write policy alternates write-back / write-through with
/// `seed % 2`. Feed these to StackDistSim-vs-simulator differentials.
[[nodiscard]] CacheConfig randomLruCacheConfig(std::uint64_t seed);

/// A random geometry restricted to the policy-grid domain: same
/// L/sets/ways distribution again (independent rng stream), FIFO for
/// even seeds and tree-PLRU for odd ones, always write-allocate, with
/// the write policy alternating on `(seed / 2) % 2` so four consecutive
/// seeds cover both policies under both write policies. Feed these to
/// PolicyGridProfile-vs-simulator differentials.
[[nodiscard]] CacheConfig randomGridCacheConfig(std::uint64_t seed);

/// The L2 companion of randomCacheConfig(seed): a valid inclusive outer
/// level (line >= L1 line, capacity >= L1 capacity) with its own
/// seed-derived associativity and policies.
[[nodiscard]] CacheConfig randomL2Config(const CacheConfig& l1,
                                         std::uint64_t seed);

/// A random mixed-locality reference stream: strided runs, loop
/// re-traversals, ping-pong conflict pairs and uniform noise over a
/// small address window (so modest caches see hits, misses, conflicts
/// and evictions), with read/write/instruction-fetch types and access
/// widths of 1..16 bytes, including widths that straddle line
/// boundaries. Length is in [minRefs, maxRefs].
[[nodiscard]] Trace randomCheckTrace(std::uint64_t seed,
                                     std::size_t minRefs = 200,
                                     std::size_t maxRefs = 2000);

/// A random 2-deep stencil kernel: 1-3 arrays, identity-ish accesses
/// with offsets in [-1, +1], exactly one write (to array 0 at (i, j)).
/// Constant loop bounds, so the Section-4.1 layout machinery applies.
[[nodiscard]] Kernel randomStencilKernel(std::uint64_t seed);

}  // namespace memx
