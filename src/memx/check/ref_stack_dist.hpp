// Reference stack-distance profile: the retired O(n * uniqueLines)
// linear Mattson walk, kept as the oracle for the Fenwick-tree
// OrderedStack engine that replaced it in production (ReuseProfile).
// Deliberately the dumbest correct implementation — an explicit LRU
// stack vector searched front to back — so a disagreement with the
// production profile always indicts the clever side.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/trace/trace.hpp"

namespace memx {

/// Stack-distance histogram of one trace at a given line size, computed
/// by the naive walk. Mirrors the ReuseProfile accessors the tests
/// compare field by field.
class RefReuseProfile {
public:
  /// `lineBytes` must be a power of two.
  RefReuseProfile(const Trace& trace, std::uint32_t lineBytes);

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return accesses_;
  }
  [[nodiscard]] std::uint64_t coldMisses() const noexcept { return cold_; }
  [[nodiscard]] std::uint64_t uniqueLines() const noexcept {
    return static_cast<std::uint64_t>(histogram_.size());
  }
  [[nodiscard]] std::uint64_t countAtDistance(std::uint64_t d) const {
    return d < histogram_.size() ? histogram_[d] : 0;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& histogram()
      const noexcept {
    return histogram_;
  }

private:
  std::vector<std::uint64_t> histogram_;  ///< index = stack distance
  std::uint64_t cold_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace memx
