#include "memx/check/differential.hpp"

#include <algorithm>
#include <sstream>

#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/hierarchy.hpp"
#include "memx/cachesim/multi_sim.hpp"
#include "memx/cachesim/set_sampling.hpp"
#include "memx/check/random_gen.hpp"
#include "memx/check/ref_cache_sim.hpp"
#include "memx/stackdist/stackdist_sim.hpp"

namespace memx {

namespace {

/// First `len` references of `trace` as an independent trace.
Trace prefixOf(const Trace& trace, std::size_t len) {
  len = std::min(len, trace.size());
  std::vector<MemRef> refs(trace.refs().begin(),
                           trace.refs().begin() +
                               static_cast<std::ptrdiff_t>(len));
  return Trace(std::move(refs));
}

}  // namespace

std::string diffCaseRepro(const DiffCase& c, std::size_t len) {
  std::ostringstream os;
  os << "MEMX_DIFF repro: seed=" << c.seed << " len=" << len
     << " cfg=" << c.config.label()
     << " repl=" << toString(c.config.replacement)
     << " write=" << toString(c.config.writePolicy)
     << " alloc=" << toString(c.config.allocatePolicy)
     << " l2=" << c.l2.label()
     << " lru=" << c.lru.label()
     << " grid=" << c.grid.label()
     << "/" << toString(c.grid.replacement)
     << " | rerun: memx::replayDiffCase(" << c.seed << ", " << len << ")";
  return os.str();
}

namespace {

/// Describe the first differing CacheStats field, or "" when equal.
std::string diffStats(const std::string& path, const CacheStats& oracle,
                      const CacheStats& actual) {
  const struct {
    const char* name;
    std::uint64_t CacheStats::*field;
  } fields[] = {
      {"reads", &CacheStats::reads},
      {"writes", &CacheStats::writes},
      {"readHits", &CacheStats::readHits},
      {"readMisses", &CacheStats::readMisses},
      {"writeHits", &CacheStats::writeHits},
      {"writeMisses", &CacheStats::writeMisses},
      {"lineFills", &CacheStats::lineFills},
      {"writebacks", &CacheStats::writebacks},
      {"memWrites", &CacheStats::memWrites},
  };
  for (const auto& f : fields) {
    if (oracle.*(f.field) != actual.*(f.field)) {
      std::ostringstream os;
      os << path << "." << f.name << ": oracle=" << oracle.*(f.field)
         << " actual=" << actual.*(f.field);
      return os.str();
    }
  }
  return {};
}

/// Core diff of every engine path on `trace`; returns the first
/// mismatch description, or "" when all paths agree with the oracle.
std::string diffAllPaths(const DiffCase& c, const Trace& trace) {
  // Oracle statistics for the primary config.
  const CacheStats oracle = refSimulateTrace(c.config, trace);

  // Path 1: CacheSim bulk fast path (run -> accessLinesFast).
  {
    CacheSim sim(c.config);
    sim.run(trace);
    const std::string d = diffStats("CacheSim.run", oracle, sim.stats());
    if (!d.empty()) return d;
  }

  // Path 2: CacheSim per-access outcome path, diffed per reference
  // (hit flag, fills, writebacks and the evicted dirty-line list).
  {
    CacheSim sim(c.config);
    RefCacheSim ref(c.config);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const AccessOutcome got = sim.access(trace[i]);
      const RefAccessOutcome want = ref.access(trace[i]);
      if (got.hit != want.hit || got.fills != want.fills ||
          got.writebacks != want.writebacks ||
          got.evictedDirtyLines != want.evictedDirtyLines) {
        std::ostringstream os;
        os << "CacheSim.access outcome at ref " << i
           << ": oracle(hit=" << want.hit << " fills=" << want.fills
           << " wb=" << want.writebacks << ") actual(hit=" << got.hit
           << " fills=" << got.fills << " wb=" << got.writebacks << ")";
        return os.str();
      }
    }
    const std::string d =
        diffStats("CacheSim.access", ref.stats(), sim.stats());
    if (!d.empty()) return d;
  }

  // Path 3: MultiCacheSim bank — primary, its L2 companion and a
  // direct-mapped sibling share one pass; every member must match a
  // fresh oracle run.
  {
    CacheConfig sibling = c.config;
    sibling.associativity = 1;
    const std::vector<CacheConfig> bank = {c.config, c.l2, sibling};
    MultiCacheSim multi(bank);
    multi.run(trace);
    for (std::size_t i = 0; i < bank.size(); ++i) {
      const std::string d =
          diffStats("MultiCacheSim[" + std::to_string(i) + "]",
                    refSimulateTrace(bank[i], trace), multi.stats(i));
      if (!d.empty()) return d;
    }
  }

  // Path 4: two-level hierarchy against the oracle's re-statement of
  // the inclusive protocol.
  {
    CacheHierarchy hier(c.config, c.l2);
    hier.run(trace);
    const RefHierarchyStats want =
        refSimulateHierarchy(c.config, c.l2, trace);
    std::string d = diffStats("Hierarchy.l1", want.l1, hier.stats().l1);
    if (d.empty()) d = diffStats("Hierarchy.l2", want.l2, hier.stats().l2);
    if (!d.empty()) return d;
    if (want.mainReads != hier.stats().mainReads ||
        want.mainWrites != hier.stats().mainWrites) {
      std::ostringstream os;
      os << "Hierarchy.main: oracle(reads=" << want.mainReads
         << " writes=" << want.mainWrites
         << ") actual(reads=" << hier.stats().mainReads
         << " writes=" << hier.stats().mainWrites << ")";
      return os.str();
    }
  }

  // Path 5: set-sampling estimator. The estimator is exact relative to
  // its own definition (filter + set compression + shrunk simulation),
  // so the oracle's re-statement must agree to the last bit; only its
  // relation to the full-trace miss rate is approximate (see
  // docs/TESTING.md).
  for (const std::uint32_t factor : {2u, 4u}) {
    if (c.config.numSets() % factor != 0) continue;
    const double got =
        estimateMissRateBySetSampling(c.config, trace, factor);
    const double want =
        refEstimateMissRateBySetSampling(c.config, trace, factor);
    if (got != want) {
      std::ostringstream os;
      os.precision(17);
      os << "SetSampling factor=" << factor << ": oracle=" << want
         << " actual=" << got;
      return os.str();
    }
  }

  // Path 6: stack-distance bank. c.lru is always in StackDistSim's
  // domain; its fully-associative and direct-mapped siblings ride in
  // the same bank so one profile is read at three (sets, ways) corners,
  // and a write-back sibling guarantees every case exercises the
  // dirty-stack accounting even when c.lru drew write-through. Every
  // field must match BOTH the oracle and the production simulator
  // exactly — including write-back `writebacks` (dirty-stack
  // accounting) and write-through memWrites; nothing is masked.
  {
    CacheConfig fa = c.lru;
    fa.associativity = fa.numLines();
    CacheConfig dm = c.lru;
    dm.associativity = 1;
    CacheConfig wb = c.lru;
    wb.writePolicy = WritePolicy::WriteBack;
    const std::vector<CacheConfig> bank = {c.lru, fa, dm, wb};
    StackDistSim stackBank(bank);
    stackBank.run(trace);
    for (std::size_t i = 0; i < bank.size(); ++i) {
      const CacheStats oracleStats = refSimulateTrace(bank[i], trace);
      const CacheStats simStats = simulateTrace(bank[i], trace);
      const std::string path = "StackDist[" + std::to_string(i) + "]";
      std::string d =
          diffStats(path + " vs RefCacheSim", oracleStats,
                    stackBank.stats(i));
      if (d.empty()) {
        d = diffStats(path + " vs CacheSim.run", simStats,
                      stackBank.stats(i));
      }
      if (!d.empty()) return d;
    }
  }

  // Path 7: policy-grid bank. c.grid draws FIFO or tree-PLRU (both
  // write policies across seeds), so this bank lands on StackDistSim's
  // PolicyGridProfile engine instead of the Hill–Smith profile. The
  // same sibling scheme as path 6 reads the single pass at several
  // (sets, ways) corners — fully-associative (capped at the grid's
  // 64-way limit), direct-mapped and a forced write-back sibling that
  // exercises the per-cell dirty masks even when c.grid drew
  // write-through — and every member must match BOTH the oracle and the
  // production simulator field for field.
  {
    CacheConfig fa = c.grid;
    fa.associativity = std::min(fa.numLines(), 64u);
    CacheConfig dm = c.grid;
    dm.associativity = 1;
    CacheConfig wb = c.grid;
    wb.writePolicy = WritePolicy::WriteBack;
    const std::vector<CacheConfig> bank = {c.grid, fa, dm, wb};
    StackDistSim gridBank(bank);
    gridBank.run(trace);
    for (std::size_t i = 0; i < bank.size(); ++i) {
      const CacheStats oracleStats = refSimulateTrace(bank[i], trace);
      const CacheStats simStats = simulateTrace(bank[i], trace);
      const std::string path = "PolicyGrid[" + std::to_string(i) + "]";
      std::string d = diffStats(path + " vs RefCacheSim", oracleStats,
                                gridBank.stats(i));
      if (d.empty()) {
        d = diffStats(path + " vs CacheSim.run", simStats,
                      gridBank.stats(i));
      }
      if (!d.empty()) return d;
    }
  }

  return {};
}

}  // namespace

DiffCase makeDiffCase(std::uint64_t seed) {
  DiffCase c;
  c.seed = seed;
  c.config = randomCacheConfig(seed);
  c.l2 = randomL2Config(c.config, seed);
  c.lru = randomLruCacheConfig(seed);
  c.grid = randomGridCacheConfig(seed);
  c.trace = randomCheckTrace(seed);
  return c;
}

DiffResult checkDiffCase(const DiffCase& c, std::size_t len) {
  const Trace prefix = prefixOf(c.trace, len);
  const std::string mismatch = diffAllPaths(c, prefix);
  if (mismatch.empty()) return DiffResult{};
  return DiffResult{false,
                    diffCaseRepro(c, prefix.size()) + "\n  " + mismatch};
}

DiffResult replayDiffCase(std::uint64_t seed, std::size_t len) {
  return checkDiffCase(makeDiffCase(seed), len);
}

DiffResult runDifferentialCase(std::uint64_t seed) {
  const DiffCase c = makeDiffCase(seed);
  DiffResult full = checkDiffCase(c, c.trace.size());
  if (full.ok) return full;

  // Shrink to the shortest failing prefix. Stats divergence is
  // monotone in practice; if it is not for some case, `hi` still always
  // indexes a failing prefix, so the repro stays valid.
  std::size_t lo = 0;                  // passing
  std::size_t hi = c.trace.size();     // failing
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (checkDiffCase(c, mid).ok) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return checkDiffCase(c, hi);
}

DiffSummary runDifferential(std::uint64_t firstSeed, std::size_t count) {
  DiffSummary summary;
  for (std::size_t i = 0; i < count; ++i) {
    ++summary.casesRun;
    const DiffResult r = runDifferentialCase(firstSeed + i);
    if (!r.ok) summary.failures.push_back(r.message);
  }
  return summary;
}

}  // namespace memx
