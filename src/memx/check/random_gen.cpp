#include "memx/check/random_gen.hpp"

#include <algorithm>
#include <random>
#include <string>

#include "memx/loopir/affine.hpp"
#include "memx/loopir/loop_nest.hpp"

namespace memx {

namespace {

int pickInt(std::mt19937_64& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

std::uint64_t pickU64(std::mt19937_64& rng, std::uint64_t lo,
                      std::uint64_t hi) {
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(rng);
}

AccessType pickType(std::mt19937_64& rng) {
  // Reads dominate, as in real kernels; writes and ifetches keep the
  // write/allocate policies and the Instr plumbing exercised.
  const int r = pickInt(rng, 0, 9);
  if (r < 6) return AccessType::Read;
  if (r < 9) return AccessType::Write;
  return AccessType::Instr;
}

std::uint32_t pickSize(std::mt19937_64& rng) {
  // Mostly word-ish sizes, sometimes wide or odd ones so accesses
  // straddle line boundaries.
  switch (pickInt(rng, 0, 7)) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 8;
    case 3: return 16;
    case 4: return 3;
    default: return 4;
  }
}

}  // namespace

CacheConfig randomCacheConfig(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  CacheConfig config;
  config.lineBytes = 4u << pickInt(rng, 0, 3);            // 4..32
  const std::uint32_t sets = 1u << pickInt(rng, 0, 4);    // 1..16
  config.associativity = 1u << pickInt(rng, 0, 3);        // 1..8
  config.sizeBytes = config.lineBytes * sets * config.associativity;

  // seed % 16 walks every replacement x write x allocate combination.
  const std::uint64_t combo = seed % 16;
  switch (combo % 4) {
    case 0: config.replacement = ReplacementPolicy::LRU; break;
    case 1: config.replacement = ReplacementPolicy::FIFO; break;
    case 2: config.replacement = ReplacementPolicy::Random; break;
    default: config.replacement = ReplacementPolicy::TreePLRU; break;
  }
  config.writePolicy = ((combo / 4) % 2 == 0) ? WritePolicy::WriteBack
                                              : WritePolicy::WriteThrough;
  config.allocatePolicy = ((combo / 8) % 2 == 0)
                              ? AllocatePolicy::WriteAllocate
                              : AllocatePolicy::NoWriteAllocate;
  config.validate();
  return config;
}

CacheConfig randomLruCacheConfig(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 4);
  CacheConfig config;
  config.lineBytes = 4u << pickInt(rng, 0, 3);            // 4..32
  const std::uint32_t sets = 1u << pickInt(rng, 0, 4);    // 1..16
  config.associativity = 1u << pickInt(rng, 0, 3);        // 1..8
  config.sizeBytes = config.lineBytes * sets * config.associativity;
  config.replacement = ReplacementPolicy::LRU;
  config.allocatePolicy = AllocatePolicy::WriteAllocate;
  config.writePolicy = (seed % 2 == 0) ? WritePolicy::WriteBack
                                       : WritePolicy::WriteThrough;
  config.validate();
  return config;
}

CacheConfig randomGridCacheConfig(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 5);
  CacheConfig config;
  config.lineBytes = 4u << pickInt(rng, 0, 3);            // 4..32
  const std::uint32_t sets = 1u << pickInt(rng, 0, 4);    // 1..16
  config.associativity = 1u << pickInt(rng, 0, 3);        // 1..8
  config.sizeBytes = config.lineBytes * sets * config.associativity;
  config.replacement = (seed % 2 == 0) ? ReplacementPolicy::FIFO
                                       : ReplacementPolicy::TreePLRU;
  config.allocatePolicy = AllocatePolicy::WriteAllocate;
  config.writePolicy = ((seed / 2) % 2 == 0) ? WritePolicy::WriteBack
                                             : WritePolicy::WriteThrough;
  config.validate();
  return config;
}

CacheConfig randomL2Config(const CacheConfig& l1, std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 2);
  CacheConfig l2;
  l2.lineBytes = l1.lineBytes << pickInt(rng, 0, 1);
  l2.sizeBytes = l1.sizeBytes << pickInt(rng, 2, 4);
  l2.associativity = 1u << pickInt(rng, 0, 2);
  l2.associativity =
      std::min(l2.associativity, l2.sizeBytes / l2.lineBytes);
  l2.replacement = (seed % 2 == 0) ? ReplacementPolicy::LRU
                                   : ReplacementPolicy::FIFO;
  l2.writePolicy = WritePolicy::WriteBack;
  l2.allocatePolicy = AllocatePolicy::WriteAllocate;
  l2.validate();
  return l2;
}

Trace randomCheckTrace(std::uint64_t seed, std::size_t minRefs,
                       std::size_t maxRefs) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 3);
  const std::size_t target =
      pickU64(rng, minRefs, std::max(minRefs, maxRefs));
  // A window a few KiB wide: small enough that the generated caches
  // see reuse and conflicts, large enough to overflow them.
  const std::uint64_t window = 1ull << pickInt(rng, 10, 13);

  Trace trace;
  while (trace.size() < target) {
    const std::uint64_t base = pickU64(rng, 0, window - 64);
    switch (pickInt(rng, 0, 3)) {
      case 0: {  // strided run
        const std::int64_t stride = std::int64_t{1}
                                    << pickInt(rng, 0, 5);
        const AccessType type = pickType(rng);
        const std::uint32_t size = pickSize(rng);
        std::uint64_t addr = base;
        for (int i = pickInt(rng, 4, 40); i > 0; --i) {
          trace.push(MemRef{addr % window, size, type});
          addr += static_cast<std::uint64_t>(stride);
        }
        break;
      }
      case 1: {  // loop re-traversal of a small working set
        const std::size_t elems =
            static_cast<std::size_t>(pickInt(rng, 4, 32));
        const int rounds = pickInt(rng, 2, 4);
        const std::uint32_t size = pickSize(rng);
        for (int r = 0; r < rounds; ++r) {
          for (std::size_t e = 0; e < elems; ++e) {
            trace.push(MemRef{(base + e * size) % window, size,
                              pickType(rng)});
          }
        }
        break;
      }
      case 2: {  // ping-pong between two (possibly aliasing) bases
        const std::uint64_t other = pickU64(rng, 0, window - 64);
        const std::uint32_t size = pickSize(rng);
        for (int i = pickInt(rng, 4, 24); i > 0; --i) {
          trace.push(MemRef{base, size, pickType(rng)});
          trace.push(MemRef{other, size, pickType(rng)});
        }
        break;
      }
      default: {  // uniform noise
        for (int i = pickInt(rng, 4, 24); i > 0; --i) {
          trace.push(MemRef{pickU64(rng, 0, window - 32), pickSize(rng),
                            pickType(rng)});
        }
        break;
      }
    }
  }
  return trace;
}

Kernel randomStencilKernel(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&](int lo, int hi) { return pickInt(rng, lo, hi); };

  Kernel k;
  k.name = "rnd" + std::to_string(seed);
  const int nArrays = pick(1, 3);
  const std::int64_t n = 8 * pick(2, 4);  // 16..32
  const std::uint32_t elem = 1u << pick(0, 2);
  for (int a = 0; a < nArrays; ++a) {
    k.arrays.push_back(
        ArrayDecl{"a" + std::to_string(a), {n + 2, n + 2}, elem});
  }
  k.nest = LoopNest::rectangular({{1, n}, {1, n}});

  const int nAccesses = pick(2, 5);
  for (int i = 0; i < nAccesses; ++i) {
    const auto arrayIdx = static_cast<std::size_t>(pick(0, nArrays - 1));
    const bool transposed = pick(0, 3) == 0;
    AffineExpr s0 = transposed ? AffineExpr::var(1) : AffineExpr::var(0);
    AffineExpr s1 = transposed ? AffineExpr::var(0) : AffineExpr::var(1);
    s0 = s0.plusConstant(pick(-1, 1));
    s1 = s1.plusConstant(pick(-1, 1));
    k.body.push_back(makeAccess(arrayIdx, {s0, s1}));
  }
  // Exactly one write, to array 0 at (i, j).
  k.body.push_back(makeAccess(0, {AffineExpr::var(0), AffineExpr::var(1)},
                              AccessType::Write));
  k.validate();
  return k;
}

}  // namespace memx
