// Reference cache-simulator oracle for differential testing.
//
// RefCacheSim is a deliberately naive re-implementation of the CacheSim
// contract: per-set vectors of ways searched associatively, separate
// last-use and fill-time fields instead of the merged replacement stamp,
// plain division/modulo instead of shift/mask address splitting, and a
// recursive tree-PLRU. It covers every replacement (LRU, FIFO, Random,
// TreePLRU), write (write-back, write-through) and allocate
// (write-allocate, no-write-allocate) policy CacheSim supports, and is
// specified to produce bit-identical CacheStats for any reference
// stream when seeded identically. It is the obviously-correct side of
// the differential harness (see docs/TESTING.md); never use it on a hot
// path.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/cache_stats.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Per-access outcome mirroring AccessOutcome (kept separate so the
/// oracle shares no types with the code under test beyond the contract
/// structs CacheStats/CacheConfig/MemRef).
struct RefAccessOutcome {
  bool hit = true;
  std::uint32_t fills = 0;
  std::uint32_t writebacks = 0;
  /// Byte addresses of evicted dirty lines, in eviction order.
  std::vector<std::uint64_t> evictedDirtyLines;
};

/// The oracle: associative search over plain vectors, no bit tricks.
class RefCacheSim {
public:
  explicit RefCacheSim(const CacheConfig& config, std::uint64_t rngSeed = 1);

  /// Present one reference; returns the per-access outcome.
  RefAccessOutcome access(const MemRef& ref);

  /// Run a whole trace (statistics only).
  void run(const Trace& trace);

  /// Drop contents and statistics (configuration kept).
  void reset();

  [[nodiscard]] const CacheConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

private:
  /// One way of one set. LRU reads lastUse, FIFO reads filledAt; keeping
  /// them separate (unlike CacheSim's merged stamp) is the point: the
  /// oracle states the policies directly.
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lastUse = 0;
    std::uint64_t filledAt = 0;
    bool valid = false;
    bool dirty = false;
  };

  /// Probe one line of an access; true on hit.
  bool probeLine(std::uint64_t lineIndex, AccessType type,
                 RefAccessOutcome& outcome);
  [[nodiscard]] std::size_t chooseVictim(std::size_t setIndex);
  void recordWrite(Way& way);

  /// Recursive tree-PLRU over way range [lo, hi); node bit set = the
  /// tree points right. Same spec as CacheSim's iterative bit walk.
  void plruTouch(std::vector<std::uint8_t>& bits, std::size_t node,
                 std::size_t lo, std::size_t hi, std::size_t way);
  [[nodiscard]] std::size_t plruVictim(const std::vector<std::uint8_t>& bits,
                                       std::size_t node, std::size_t lo,
                                       std::size_t hi) const;

  CacheConfig config_;
  std::vector<std::vector<Way>> sets_;  ///< [numSets][associativity]
  std::vector<std::vector<std::uint8_t>> plru_;  ///< per-set tree nodes
  std::uint64_t time_ = 0;
  CacheStats stats_;
  std::mt19937_64 rng_;
};

/// Convenience: run `trace` on a fresh oracle, return the statistics.
[[nodiscard]] CacheStats refSimulateTrace(const CacheConfig& config,
                                          const Trace& trace);

/// Statistics of a naive inclusive L1+L2 replay (the CacheHierarchy
/// protocol re-stated on two RefCacheSims): dirty L1 victims are written
/// into the L2, L1 misses fetch through the L2.
struct RefHierarchyStats {
  CacheStats l1;
  CacheStats l2;
  std::uint64_t mainReads = 0;
  std::uint64_t mainWrites = 0;
};

[[nodiscard]] RefHierarchyStats refSimulateHierarchy(const CacheConfig& l1,
                                                     const CacheConfig& l2,
                                                     const Trace& trace);

/// Naive re-statement of estimateMissRateBySetSampling: keep the
/// byte ranges whose line's set satisfies set % factor == offset
/// (walking every line an access touches, as the simulator's probes
/// do), compress the kept sets into a cache 1/factor the size, and
/// measure the oracle's miss rate.
[[nodiscard]] double refEstimateMissRateBySetSampling(
    const CacheConfig& config, const Trace& trace, std::uint32_t factor,
    std::uint32_t offset = 0);

}  // namespace memx
