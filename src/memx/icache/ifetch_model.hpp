// Instruction-fetch modeling: the paper's stated extension.
//
// "The exploration procedure described here for data caches can be
// extended to instruction caches by merging the method of Kirovski et
// al with ours." (Section 1.) This module provides that extension for
// loop kernels: a structural code-layout model maps each loop nest to a
// contiguous instruction region, an instruction-fetch trace is generated
// alongside the iteration traversal, and the standard trace explorer
// sweeps I-cache configurations over it.
//
// Code-layout model (one basic block per loop level plus the body):
//
//   [prologue][loop-0 header][loop-1 header]...[body][latch-0][latch-1]..
//
// Per innermost iteration the body is fetched sequentially; each loop
// level's header+latch instructions are fetched once per iteration of
// that level. This captures exactly what matters to an I-cache: small
// hot loops re-fetch the same lines, so the minimum-energy I-cache is
// the smallest one that holds the body.
#pragma once

#include <cstdint>

#include "memx/loopir/kernel.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Structural code-size model of a compiled kernel.
struct InstructionLayout {
  std::uint64_t codeBase = 0x10000;    ///< where the kernel's code lives
  std::uint32_t instrBytes = 4;        ///< fixed-width ISA
  std::uint32_t instrPerAccess = 3;    ///< address calc + load/store + use
  std::uint32_t arithPerIteration = 4; ///< non-memory body instructions
  std::uint32_t loopOverhead = 3;      ///< per-level increment/test/branch

  void validate() const;

  /// Instructions in the innermost body for `kernel`.
  [[nodiscard]] std::uint32_t bodyInstructions(const Kernel& kernel) const;

  /// Total static code footprint of the kernel in bytes.
  [[nodiscard]] std::uint64_t codeBytes(const Kernel& kernel) const;
};

/// Generate the instruction-fetch trace of `kernel` under `layout`.
/// Every reference is a read of `instrBytes` bytes.
[[nodiscard]] Trace generateIFetchTrace(const Kernel& kernel,
                                        const InstructionLayout& layout);

}  // namespace memx
