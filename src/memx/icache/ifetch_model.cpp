#include "memx/icache/ifetch_model.hpp"

#include "memx/util/assert.hpp"

namespace memx {

void InstructionLayout::validate() const {
  MEMX_EXPECTS(instrBytes > 0, "instruction width must be positive");
  MEMX_EXPECTS(instrPerAccess > 0,
               "memory accesses take at least one instruction");
}

std::uint32_t InstructionLayout::bodyInstructions(
    const Kernel& kernel) const {
  return static_cast<std::uint32_t>(kernel.body.size()) * instrPerAccess +
         arithPerIteration;
}

std::uint64_t InstructionLayout::codeBytes(const Kernel& kernel) const {
  const std::uint64_t instrs =
      bodyInstructions(kernel) +
      static_cast<std::uint64_t>(kernel.nest.depth()) * loopOverhead;
  return instrs * instrBytes;
}

Trace generateIFetchTrace(const Kernel& kernel,
                          const InstructionLayout& layout) {
  kernel.validate();
  layout.validate();

  const std::size_t depth = kernel.nest.depth();
  // Header block start per level; body after the last header.
  std::vector<std::uint64_t> headerAddr(depth);
  std::uint64_t cursor = layout.codeBase;
  for (std::size_t l = 0; l < depth; ++l) {
    headerAddr[l] = cursor;
    cursor += layout.loopOverhead * layout.instrBytes;
  }
  const std::uint64_t bodyAddr = cursor;
  const std::uint32_t bodyInstrs = layout.bodyInstructions(kernel);

  Trace trace;
  std::vector<std::int64_t> previous;
  bool first = true;
  kernel.nest.forEachIteration([&](std::span<const std::int64_t> iv) {
    // Determine which loop levels (re)started: every level at or below
    // the outermost changed index re-fetches its header block.
    std::size_t changed = 0;
    if (first) {
      changed = 0;
      first = false;
    } else {
      changed = depth;
      for (std::size_t l = 0; l < depth; ++l) {
        if (previous[l] != iv[l]) {
          changed = l;
          break;
        }
      }
    }
    previous.assign(iv.begin(), iv.end());

    for (std::size_t l = changed; l < depth; ++l) {
      for (std::uint32_t i = 0; i < layout.loopOverhead; ++i) {
        trace.push(readRef(headerAddr[l] + i * layout.instrBytes,
                           layout.instrBytes));
      }
    }
    for (std::uint32_t i = 0; i < bodyInstrs; ++i) {
      trace.push(
          readRef(bodyAddr + i * layout.instrBytes, layout.instrBytes));
    }
  });
  return trace;
}

}  // namespace memx
