// Exploration-result serialization: CSV and a minimal JSON emitter.
//
// CSV round-trips (write + parse) so sweeps can be archived and diffed;
// JSON is write-only, for plotting pipelines.
#pragma once

#include <iosfwd>
#include <string>

#include "memx/core/explorer.hpp"

namespace memx {

/// Write `result` as CSV with the header
/// `workload,cache,line,assoc,tiling,accesses,miss_rate,cycles,energy_nj`.
/// Workload names containing commas, quotes or newlines are quoted
/// RFC-4180 style (inner quotes doubled) so the file round-trips.
void writeResultCsv(std::ostream& os, const ExplorationResult& result);

/// Parse the CSV produced by writeResultCsv, honoring quoted fields.
/// Throws memx::ContractViolation naming the offending line number on
/// malformed input (wrong header, bad quoting, wrong column count).
[[nodiscard]] ExplorationResult readResultCsv(std::istream& is);

/// Write `result` as a JSON object
/// `{"workload": ..., "points": [{...}, ...]}`.
void writeResultJson(std::ostream& os, const ExplorationResult& result);

/// String convenience wrappers.
[[nodiscard]] std::string toCsvString(const ExplorationResult& result);
[[nodiscard]] ExplorationResult fromCsvString(const std::string& text);
[[nodiscard]] std::string toJsonString(const ExplorationResult& result);

}  // namespace memx
