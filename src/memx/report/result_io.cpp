#include "memx/report/result_io.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "memx/util/assert.hpp"
#include "memx/util/numeric_io.hpp"

namespace memx {

namespace {

constexpr const char* kHeader =
    "workload,cache,line,assoc,tiling,accesses,miss_rate,cycles,"
    "energy_nj";

/// RFC-4180-style field escaping: fields containing a comma, quote or
/// newline are wrapped in quotes with inner quotes doubled. Used for the
/// workload name, the only free-text CSV column.
std::string csvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Split one CSV line honoring quoted fields ("" inside quotes is a
/// literal quote). Throws with the 1-based `lineNo` on unbalanced quotes
/// or garbage after a closing quote.
std::vector<std::string> splitCsvLine(const std::string& line,
                                      std::size_t lineNo) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  bool cellWasQuoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      MEMX_EXPECTS(cell.empty() && !cellWasQuoted,
                   "exploration-CSV row " + std::to_string(lineNo) +
                       ": quote inside an unquoted field");
      quoted = true;
      cellWasQuoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
      cellWasQuoted = false;
    } else {
      MEMX_EXPECTS(!cellWasQuoted,
                   "exploration-CSV row " + std::to_string(lineNo) +
                       ": content after a closing quote");
      cell += c;
    }
  }
  MEMX_EXPECTS(!quoted, "exploration-CSV row " + std::to_string(lineNo) +
                            ": unterminated quoted field");
  cells.push_back(std::move(cell));
  return cells;
}

/// Strict unsigned parse: digits only, fully consumed, within `max`.
/// stoul-style silent truncation (2^32 reading back as 0) and negative
/// wraparound are exactly the corruptions a result file can carry, so
/// they are hard errors with the row and column named.
std::uint64_t parseUnsigned(const std::string& cell, std::uint64_t max,
                            std::size_t lineNo, const char* column) {
  const std::optional<std::uint64_t> v = parseUnsignedText(cell, max);
  MEMX_EXPECTS(v.has_value(),
               "exploration-CSV row " + std::to_string(lineNo) +
                   " column " + column +
                   ": not an unsigned integer in range");
  return *v;
}

/// Strict double parse: fully consumed, finite, and locale-independent
/// ("1e999", "nan" and a de_DE-style "3,14" are rejected, not absorbed).
double parseDouble(const std::string& cell, std::size_t lineNo,
                   const char* column) {
  const std::optional<double> v = parseDoubleText(cell);
  MEMX_EXPECTS(v.has_value(), "exploration-CSV row " +
                                  std::to_string(lineNo) + " column " +
                                  column + ": not a finite number");
  return *v;
}

/// Escape the few JSON-special characters a workload name could contain.
std::string jsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void writeResultCsv(std::ostream& os, const ExplorationResult& result) {
  // Full round-trip fidelity for the floating-point fields; the classic
  // locale pins '.' decimals and no grouping under any global locale.
  const ClassicLocaleGuard locale(os);
  os << std::setprecision(17);
  os << kHeader << '\n';
  for (const DesignPoint& p : result.points) {
    os << csvEscape(result.workload) << ',' << p.key.cacheBytes << ','
       << p.key.lineBytes << ',' << p.key.associativity << ','
       << p.key.tiling << ',' << p.accesses << ',' << p.missRate << ','
       << p.cycles << ',' << p.energyNj << '\n';
  }
}

ExplorationResult readResultCsv(std::istream& is) {
  std::string line;
  MEMX_EXPECTS(std::getline(is, line) && line == kHeader,
               "missing or wrong exploration-CSV header");
  ExplorationResult result;
  std::size_t lineNo = 1;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty()) continue;
    const std::vector<std::string> cells = splitCsvLine(line, lineNo);
    MEMX_EXPECTS(cells.size() == 9, "exploration-CSV row " +
                                        std::to_string(lineNo) +
                                        " has wrong column count");
    DesignPoint p;
    if (result.workload.empty()) result.workload = cells[0];
    constexpr std::uint64_t kU32 = 0xffffffffull;
    constexpr std::uint64_t kU64 = ~0ull;
    p.key.cacheBytes = static_cast<std::uint32_t>(
        parseUnsigned(cells[1], kU32, lineNo, "cache"));
    p.key.lineBytes = static_cast<std::uint32_t>(
        parseUnsigned(cells[2], kU32, lineNo, "line"));
    p.key.associativity = static_cast<std::uint32_t>(
        parseUnsigned(cells[3], kU32, lineNo, "assoc"));
    p.key.tiling = static_cast<std::uint32_t>(
        parseUnsigned(cells[4], kU32, lineNo, "tiling"));
    p.accesses = parseUnsigned(cells[5], kU64, lineNo, "accesses");
    p.missRate = parseDouble(cells[6], lineNo, "miss_rate");
    p.cycles = parseDouble(cells[7], lineNo, "cycles");
    p.energyNj = parseDouble(cells[8], lineNo, "energy_nj");
    result.points.push_back(p);
  }
  return result;
}

void writeResultJson(std::ostream& os, const ExplorationResult& result) {
  const ClassicLocaleGuard locale(os);
  os << std::setprecision(17);
  os << "{\"workload\": \"" << jsonEscape(result.workload)
     << "\", \"points\": [";
  bool first = true;
  for (const DesignPoint& p : result.points) {
    if (!first) os << ", ";
    first = false;
    os << "{\"cache\": " << p.key.cacheBytes
       << ", \"line\": " << p.key.lineBytes
       << ", \"assoc\": " << p.key.associativity
       << ", \"tiling\": " << p.key.tiling
       << ", \"accesses\": " << p.accesses
       << ", \"miss_rate\": " << p.missRate
       << ", \"cycles\": " << p.cycles
       << ", \"energy_nj\": " << p.energyNj << "}";
  }
  os << "]}";
}

std::string toCsvString(const ExplorationResult& result) {
  std::ostringstream os;
  writeResultCsv(os, result);
  return os.str();
}

ExplorationResult fromCsvString(const std::string& text) {
  std::istringstream is(text);
  return readResultCsv(is);
}

std::string toJsonString(const ExplorationResult& result) {
  std::ostringstream os;
  writeResultJson(os, result);
  return os.str();
}

}  // namespace memx
