// Fixed-width ASCII tables and CSV output used by every bench binary to
// print paper-style rows.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace memx {

/// A simple column-aligned table.
class Table {
public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rowCount() const noexcept {
    return rows_.size();
  }
  [[nodiscard]] std::size_t columnCount() const noexcept {
    return headers_.size();
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const;

  /// Render with aligned columns and a header underline.
  [[nodiscard]] std::string toString() const;

  /// Write RFC-4180-style CSV (quotes cells containing commas/quotes).
  void writeCsv(std::ostream& os) const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t) {
    return os << t.toString();
  }

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format with `decimals` digits after the point (fixed notation).
[[nodiscard]] std::string fmtFixed(double v, int decimals);

/// Round to three significant figures the way the paper prints values
/// (0.969, 37300, 1110000, ...).
[[nodiscard]] std::string fmtSig3(double v);

}  // namespace memx
