#include "memx/report/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <locale>
#include <sstream>

#include "memx/util/assert.hpp"

namespace memx {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MEMX_EXPECTS(!headers_.empty(), "table needs at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
  MEMX_EXPECTS(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

const std::vector<std::string>& Table::row(std::size_t i) const {
  MEMX_EXPECTS(i < rows_.size(), "row index out of range");
  return rows_[i];
}

std::string Table::toString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w;
  os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::writeCsv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << quote(cells[c]);
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmtFixed(double v, int decimals) {
  // Imbued: the formatted tables and CSVs these feed are diffed and
  // parsed by scripts, so the decimal point must be '.' under any
  // global locale.
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string fmtSig3(double v) {
  if (v == 0.0) return "0";
  const double mag = std::abs(v);
  const int exponent = static_cast<int>(std::floor(std::log10(mag)));
  const int decimals = std::max(0, 2 - exponent);
  const double scale = std::pow(10.0, exponent - 2);
  const double rounded = std::round(v / scale) * scale;
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::fixed << std::setprecision(decimals) << rounded;
  std::string s = os.str();
  // Trim trailing zeros after a decimal point ("0.9690" -> "0.969").
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace memx
