// Small bit-manipulation helpers shared by the cache simulator and the
// energy model's bus-activity accounting.
#pragma once

#include <bit>
#include <cstdint>

namespace memx {

/// True iff `v` is a (nonzero) power of two.
[[nodiscard]] constexpr bool isPow2(std::uint64_t v) noexcept {
  return v != 0 && std::has_single_bit(v);
}

/// floor(log2(v)) for v > 0.
[[nodiscard]] constexpr unsigned log2Floor(std::uint64_t v) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(v | 1u));
}

/// Exact log2 of a power of two.
[[nodiscard]] constexpr unsigned log2Exact(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Reflected-binary (Gray) encoding of `v`. The DAC'99 energy model assumes
/// Gray-coded address buses, so sequential addresses toggle one wire.
[[nodiscard]] constexpr std::uint64_t grayEncode(std::uint64_t v) noexcept {
  return v ^ (v >> 1);
}

/// Inverse of grayEncode.
[[nodiscard]] constexpr std::uint64_t grayDecode(std::uint64_t g) noexcept {
  std::uint64_t v = g;
  for (unsigned shift = 1; shift < 64; shift <<= 1) v ^= v >> shift;
  return v;
}

/// Number of bus wires that toggle between two consecutive bus values.
[[nodiscard]] constexpr unsigned hammingDistance(std::uint64_t a,
                                                 std::uint64_t b) noexcept {
  return static_cast<unsigned>(std::popcount(a ^ b));
}

/// Round `v` up to the next multiple of the power-of-two `align`.
[[nodiscard]] constexpr std::uint64_t alignUp(std::uint64_t v,
                                              std::uint64_t align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace memx
