// Locale-independent numeric text I/O.
//
// Every CSV/JSON surface in memx is machine-read: a daemon started under
// de_DE.UTF-8 must neither emit "3,14" nor reject "3.14". Parsing goes
// through std::from_chars (locale-blind by specification) and fails
// closed: the full field must be consumed and doubles must be finite.
// Formatting goes through streams imbued with std::locale::classic(), so
// the byte output matches the C-locale "%.17g" convention the golden
// corpus and the benchmark JSON files were recorded with, regardless of
// the process-global locale.
#pragma once

#include <cstdint>
#include <ios>
#include <locale>
#include <optional>
#include <string>
#include <string_view>

namespace memx {

/// Strict double parse: the whole field, finite, locale-independent.
/// Rejects empty fields, leading whitespace/'+', trailing garbage,
/// overflow ("1e999"), underflow, "nan"/"inf" and hex floats.
[[nodiscard]] std::optional<double> parseDoubleText(
    std::string_view text) noexcept;

/// Strict unsigned parse: decimal digits only, fully consumed, <= max.
[[nodiscard]] std::optional<std::uint64_t> parseUnsignedText(
    std::string_view text, std::uint64_t max) noexcept;

/// `v` formatted like C-locale "%.17g": shortest-in-style general form
/// at 17 significant digits, '.' decimal point, round-trip exact.
[[nodiscard]] std::string formatDouble17(double v);

/// Imbue std::locale::classic() on a stream for the current scope and
/// restore the previous locale on destruction. Wrap every writer that
/// streams doubles into a caller-supplied std::ostream with this so a
/// hostile global locale cannot leak group separators or ','-decimals
/// into machine-read output (the caller's locale choice is restored).
class ClassicLocaleGuard {
public:
  explicit ClassicLocaleGuard(std::ios_base& stream)
      : stream_(stream), saved_(stream.imbue(std::locale::classic())) {}
  ~ClassicLocaleGuard() { stream_.imbue(saved_); }

  ClassicLocaleGuard(const ClassicLocaleGuard&) = delete;
  ClassicLocaleGuard& operator=(const ClassicLocaleGuard&) = delete;

private:
  std::ios_base& stream_;
  std::locale saved_;
};

}  // namespace memx
