// Contract-checking helpers used at every public API boundary.
//
// Following the C++ Core Guidelines (I.6 "Prefer Expects() for expressing
// preconditions"), argument validation failures throw, so misuse is
// diagnosable in release builds and testable with gtest.
#pragma once

#include <stdexcept>
#include <string>

namespace memx {

/// Thrown when a caller violates a documented precondition.
class ContractViolation : public std::invalid_argument {
public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] void throwContract(const char* what, const char* expr,
                                const char* file, int line,
                                const std::string& message);
}  // namespace detail

}  // namespace memx

/// Validate a documented precondition of a public function.
/// On failure throws memx::ContractViolation with location information.
#define MEMX_EXPECTS(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::memx::detail::throwContract("precondition", #cond, __FILE__,         \
                                    __LINE__, (msg));                        \
    }                                                                        \
  } while (false)

/// Validate an internal invariant / postcondition.
#define MEMX_ENSURES(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::memx::detail::throwContract("postcondition", #cond, __FILE__,        \
                                    __LINE__, (msg));                        \
    }                                                                        \
  } while (false)
