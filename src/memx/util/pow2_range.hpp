// Power-of-two sweep ranges: the MemExplore loops of the paper iterate every
// parameter "in powers of 2", so ranges of that shape appear throughout the
// exploration engine and the benchmark harness.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

/// The inclusive power-of-two range [lo, hi], e.g. {4, 8, 16, 32}.
/// Both endpoints must be powers of two with lo <= hi.
[[nodiscard]] std::vector<std::uint64_t> pow2Range(std::uint64_t lo,
                                                   std::uint64_t hi);

}  // namespace memx
