#include "memx/util/assert.hpp"

#include <sstream>

namespace memx::detail {

void throwContract(const char* what, const char* expr, const char* file,
                   int line, const std::string& message) {
  std::ostringstream os;
  os << what << " violated: " << message << " [" << expr << "] at " << file
     << ':' << line;
  throw ContractViolation(os.str());
}

}  // namespace memx::detail
