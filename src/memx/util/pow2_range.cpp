#include "memx/util/pow2_range.hpp"

namespace memx {

std::vector<std::uint64_t> pow2Range(std::uint64_t lo, std::uint64_t hi) {
  MEMX_EXPECTS(isPow2(lo), "pow2Range lower bound must be a power of two");
  MEMX_EXPECTS(isPow2(hi), "pow2Range upper bound must be a power of two");
  MEMX_EXPECTS(lo <= hi, "pow2Range requires lo <= hi");
  std::vector<std::uint64_t> out;
  // Break on v == hi *before* shifting: both endpoints are powers of two
  // with lo <= hi, so v hits hi exactly, and shifting past it would wrap
  // to 0 when hi is the top bit (2^63) and loop forever.
  for (std::uint64_t v = lo;; v <<= 1) {
    out.push_back(v);
    if (v == hi) break;
  }
  return out;
}

}  // namespace memx
