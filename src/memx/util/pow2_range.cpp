#include "memx/util/pow2_range.hpp"

namespace memx {

std::vector<std::uint64_t> pow2Range(std::uint64_t lo, std::uint64_t hi) {
  MEMX_EXPECTS(isPow2(lo), "pow2Range lower bound must be a power of two");
  MEMX_EXPECTS(isPow2(hi), "pow2Range upper bound must be a power of two");
  MEMX_EXPECTS(lo <= hi, "pow2Range requires lo <= hi");
  std::vector<std::uint64_t> out;
  for (std::uint64_t v = lo; v <= hi; v <<= 1) {
    out.push_back(v);
    if (v > (hi >> 1) && v != hi) break;  // defensive against overflow
  }
  return out;
}

}  // namespace memx
