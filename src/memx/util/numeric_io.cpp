#include "memx/util/numeric_io.hpp"

#include <charconv>
#include <cmath>
#include <sstream>

namespace memx {

std::optional<double> parseDoubleText(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parseUnsignedText(std::string_view text,
                                               std::uint64_t max) noexcept {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string_view::npos) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  const char* const first = text.data();
  const char* const last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || value > max) return std::nullopt;
  return value;
}

std::string formatDouble17(double v) {
  // An imbued ostringstream reproduces C-locale "%.17g" byte for byte
  // (general float format at precision 17, trailing zeros trimmed,
  // two-digit exponents) while staying immune to the global locale.
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace memx
