#include "memx/spm/spm_explorer.hpp"

#include <sstream>

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/cachesim/cache_sim.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/timing/cycle_model.hpp"
#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

namespace {

/// The kernel with every access to an SPM-resident array removed.
Kernel cacheSideKernel(const Kernel& kernel, const SpmAllocation& alloc) {
  Kernel filtered = kernel;
  filtered.name = kernel.name + "_cacheside";
  filtered.body.clear();
  for (const ArrayAccess& acc : kernel.body) {
    if (!alloc.contains(acc.arrayIndex)) filtered.body.push_back(acc);
  }
  return filtered;
}

}  // namespace

std::string SplitResult::label() const {
  std::ostringstream os;
  os << "SPM" << spmBytes << '+' << cache.label();
  return os.str();
}

SplitResult evaluateSplit(const Kernel& kernel, const ScratchpadConfig& spm,
                          const CacheConfig& cache,
                          const SpmSplitOptions& options) {
  kernel.validate();
  spm.validate();
  cache.validate();
  options.spmCost.validate();

  const std::vector<ArrayUsage> usages = profileArrayUsage(kernel);
  const SpmAllocation alloc = allocateOptimal(usages, spm.sizeBytes);

  SplitResult result;
  result.spmBytes = spm.sizeBytes;
  result.cache = cache;
  result.spmAccesses = alloc.capturedAccesses;
  result.totalAccesses = kernel.referenceCount();
  for (const std::size_t a : alloc.arrayIndices) {
    result.spmArrays.push_back(kernel.arrays[a].name);
  }

  const double spmEnergyPerAccess = options.spmCost.accessEnergyNj(spm);
  const double spmCycles =
      static_cast<double>(result.spmAccesses) * options.spmCost.accessCycles;
  const double spmEnergy =
      static_cast<double>(result.spmAccesses) * spmEnergyPerAccess;

  const Kernel filtered = cacheSideKernel(kernel, alloc);
  if (filtered.body.empty()) {
    result.cacheMissRate = 0.0;
    result.cycles = spmCycles;
    result.energyNj = spmEnergy;
    return result;
  }

  CacheConfig config = cache;
  config.writePolicy = options.base.writePolicy;
  config.replacement = options.base.replacement;
  const MemoryLayout layout =
      options.base.optimizeLayout
          ? assignConflictFree(filtered, config).layout
          : sequentialLayout(filtered);
  const Trace trace = generateTrace(filtered, layout);
  const CacheStats stats = simulateTrace(config, trace);
  const double addBs = options.base.measureBusActivity
                           ? measureAddrActivity(trace)
                           : kDefaultAddrSwitchesPerAccess;

  const CycleModel cycleModel(options.base.timing);
  const CacheEnergyModel energyModel(config, options.base.energy, addBs);

  result.cacheMissRate = stats.missRate();
  result.cycles = spmCycles + cycleModel.cycles(stats, config, 1);
  result.energyNj = spmEnergy + energyModel.totalNj(stats);
  return result;
}

std::vector<SplitResult> exploreBudgetSplits(const Kernel& kernel,
                                             std::uint32_t budgetBytes,
                                             std::uint32_t lineBytes,
                                             const SpmSplitOptions& options) {
  MEMX_EXPECTS(isPow2(budgetBytes), "budget must be a power of two");
  MEMX_EXPECTS(budgetBytes >= 32, "budget must be at least 32 bytes");

  std::vector<SplitResult> results;

  // Cache-only baseline.
  CacheConfig fullCache;
  fullCache.sizeBytes = budgetBytes;
  fullCache.lineBytes = lineBytes;
  {
    ScratchpadConfig noSpm;
    noSpm.sizeBytes = 4;  // smallest valid; allocation captures nothing
    SplitResult r = evaluateSplit(kernel, noSpm, fullCache, options);
    r.spmBytes = 0;
    results.push_back(std::move(r));
  }

  // Mixed splits: for each power-of-two SPM size, give the cache the
  // largest power of two that still fits the remaining budget.
  for (std::uint32_t s = 4; s <= budgetBytes / 2; s <<= 1) {
    const std::uint32_t rest = budgetBytes - s;
    std::uint32_t cacheSize = 1u << log2Floor(rest);
    if (cacheSize < 2 * lineBytes) continue;
    ScratchpadConfig spm;
    spm.sizeBytes = s;
    CacheConfig cache;
    cache.sizeBytes = cacheSize;
    cache.lineBytes = lineBytes;
    results.push_back(evaluateSplit(kernel, spm, cache, options));
  }
  return results;
}

}  // namespace memx
