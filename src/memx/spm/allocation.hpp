// Array-to-scratchpad allocation.
//
// Panda-Dutt-Nicolau style: each array is a candidate for the scratchpad
// with profit = number of accesses it would capture and weight = its
// size in bytes; picking the best subset under the SPM capacity is a 0/1
// knapsack. Both the classic greedy-by-density heuristic and the exact
// dynamic program are provided (capacities are small enough for DP).
#pragma once

#include <cstdint>
#include <vector>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// Static usage profile of one kernel array.
struct ArrayUsage {
  std::size_t arrayIndex = 0;
  std::uint64_t sizeBytes = 0;
  std::uint64_t accesses = 0;  ///< references over the whole execution

  /// Accesses captured per byte of scratchpad spent.
  [[nodiscard]] double density() const noexcept {
    return sizeBytes == 0 ? 0.0
                          : static_cast<double>(accesses) /
                                static_cast<double>(sizeBytes);
  }
};

/// Count each array's accesses analytically (iterations x references per
/// iteration; indirect references count toward their target array).
[[nodiscard]] std::vector<ArrayUsage> profileArrayUsage(
    const Kernel& kernel);

/// A chosen subset of arrays.
struct SpmAllocation {
  std::vector<std::size_t> arrayIndices;  ///< arrays placed in the SPM
  std::uint64_t usedBytes = 0;
  std::uint64_t capturedAccesses = 0;

  [[nodiscard]] bool contains(std::size_t arrayIndex) const noexcept;
};

/// Greedy: sort by density, take what fits. O(n log n).
[[nodiscard]] SpmAllocation allocateGreedy(
    const std::vector<ArrayUsage>& usages, std::uint64_t capacityBytes);

/// Exact 0/1 knapsack by dynamic programming over bytes.
/// O(n * capacity); capacities here are at most a few KiB.
[[nodiscard]] SpmAllocation allocateOptimal(
    const std::vector<ArrayUsage>& usages, std::uint64_t capacityBytes);

}  // namespace memx
