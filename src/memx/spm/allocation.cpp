#include "memx/spm/allocation.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"

namespace memx {

std::vector<ArrayUsage> profileArrayUsage(const Kernel& kernel) {
  kernel.validate();
  const std::uint64_t iterations = kernel.nest.iterationCount();
  std::vector<ArrayUsage> usages(kernel.arrays.size());
  for (std::size_t a = 0; a < kernel.arrays.size(); ++a) {
    usages[a].arrayIndex = a;
    usages[a].sizeBytes = kernel.arrays[a].sizeBytes();
  }
  for (const ArrayAccess& acc : kernel.body) {
    usages[acc.arrayIndex].accesses += iterations;
  }
  return usages;
}

bool SpmAllocation::contains(std::size_t arrayIndex) const noexcept {
  return std::find(arrayIndices.begin(), arrayIndices.end(), arrayIndex) !=
         arrayIndices.end();
}

SpmAllocation allocateGreedy(const std::vector<ArrayUsage>& usages,
                             std::uint64_t capacityBytes) {
  std::vector<ArrayUsage> sorted = usages;
  std::sort(sorted.begin(), sorted.end(),
            [](const ArrayUsage& x, const ArrayUsage& y) {
              if (x.density() != y.density()) {
                return x.density() > y.density();
              }
              return x.arrayIndex < y.arrayIndex;
            });
  SpmAllocation alloc;
  for (const ArrayUsage& u : sorted) {
    if (u.sizeBytes == 0 || u.accesses == 0) continue;
    if (alloc.usedBytes + u.sizeBytes > capacityBytes) continue;
    alloc.arrayIndices.push_back(u.arrayIndex);
    alloc.usedBytes += u.sizeBytes;
    alloc.capturedAccesses += u.accesses;
  }
  std::sort(alloc.arrayIndices.begin(), alloc.arrayIndices.end());
  return alloc;
}

SpmAllocation allocateOptimal(const std::vector<ArrayUsage>& usages,
                              std::uint64_t capacityBytes) {
  MEMX_EXPECTS(capacityBytes <= (1u << 16),
               "knapsack capacity too large for the byte-level DP");
  const std::size_t cap = static_cast<std::size_t>(capacityBytes);
  const std::size_t n = usages.size();

  // Full DP table for exact backtracking: dp[i][c] = best profit using
  // the first i items with capacity c.
  std::vector<std::vector<std::uint64_t>> dp(
      n + 1, std::vector<std::uint64_t>(cap + 1, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const ArrayUsage& u = usages[i];
    const bool usable =
        u.sizeBytes > 0 && u.sizeBytes <= cap && u.accesses > 0;
    const std::size_t w =
        usable ? static_cast<std::size_t>(u.sizeBytes) : 0;
    for (std::size_t c = 0; c <= cap; ++c) {
      dp[i + 1][c] = dp[i][c];
      if (usable && c >= w) {
        dp[i + 1][c] =
            std::max(dp[i + 1][c], dp[i][c - w] + u.accesses);
      }
    }
  }

  SpmAllocation alloc;
  std::size_t c = cap;
  for (std::size_t i = n; i-- > 0;) {
    if (dp[i + 1][c] == dp[i][c]) continue;  // item i not taken
    alloc.arrayIndices.push_back(usages[i].arrayIndex);
    alloc.usedBytes += usages[i].sizeBytes;
    alloc.capturedAccesses += usages[i].accesses;
    c -= static_cast<std::size_t>(usages[i].sizeBytes);
  }
  std::sort(alloc.arrayIndices.begin(), alloc.arrayIndices.end());
  return alloc;
}

}  // namespace memx
