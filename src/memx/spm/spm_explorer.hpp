// Combined scratchpad + cache exploration (Panda-Dutt style).
//
// Given an on-chip SRAM budget, split it between a software-managed
// scratchpad (holding whole arrays, chosen by knapsack) and a data cache
// (serving everything else), and evaluate each split with the paper's
// cycle and energy models. This is exactly the exploration the paper's
// predecessor work performs, layered on this library's substrate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memx/core/explorer.hpp"
#include "memx/spm/allocation.hpp"
#include "memx/spm/scratchpad.hpp"

namespace memx {

/// Evaluation of one (SPM size, cache config) split.
struct SplitResult {
  std::uint32_t spmBytes = 0;   ///< 0 = cache-only
  CacheConfig cache;
  std::vector<std::string> spmArrays;  ///< names of arrays in the SPM
  std::uint64_t totalAccesses = 0;
  std::uint64_t spmAccesses = 0;   ///< captured by the scratchpad
  double cacheMissRate = 0.0;      ///< among cache-served accesses only
  double cycles = 0.0;             ///< SPM + cache combined
  double energyNj = 0.0;           ///< SPM + cache combined

  [[nodiscard]] std::string label() const;
};

/// Options of a split evaluation.
struct SpmSplitOptions {
  ExploreOptions base;          ///< cache-side models and layout policy
  ScratchpadCostModel spmCost;  ///< scratchpad energy/latency
};

/// Evaluate one split: allocate arrays into `spm` by exact knapsack, run
/// the remaining accesses through `cache`, combine metrics.
[[nodiscard]] SplitResult evaluateSplit(const Kernel& kernel,
                                        const ScratchpadConfig& spm,
                                        const CacheConfig& cache,
                                        const SpmSplitOptions& options = {});

/// Sweep all power-of-two budget splits (spm, cache) with
/// spm + cache == budgetBytes (spm = 0 means cache-only; cache is at
/// least 16 bytes). The cache uses line size `lineBytes`, direct-mapped.
[[nodiscard]] std::vector<SplitResult> exploreBudgetSplits(
    const Kernel& kernel, std::uint32_t budgetBytes,
    std::uint32_t lineBytes, const SpmSplitOptions& options = {});

}  // namespace memx
