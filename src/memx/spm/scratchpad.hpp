// Scratchpad memory (SPM) modeling.
//
// The paper's lineage (Panda, Dutt & Nicolau) explores *software-managed*
// on-chip SRAM as the alternative to a cache: arrays mapped to the
// scratchpad are guaranteed on-chip hits at SRAM cost, everything else
// goes through the data cache. This module models the scratchpad itself;
// the allocation policy lives in spm/allocation.hpp and the combined
// cache+SPM exploration in spm/spm_explorer.hpp.
#pragma once

#include <cstdint>

namespace memx {

/// An on-chip software-managed SRAM.
struct ScratchpadConfig {
  std::uint32_t sizeBytes = 256;

  void validate() const;
};

/// Per-access energy/latency model of the scratchpad. The array has no
/// tags, no comparators and no miss path, so an access costs a fixed
/// fraction of an equal-capacity cache's cell energy (Banakar et al.
/// measured ~40% savings; `efficiency` = energy relative to the cache).
struct ScratchpadCostModel {
  double betaPj = 2.0;     ///< pJ per cell unit (same beta as the cache)
  double efficiency = 0.6; ///< SPM access energy / cache hit energy
  double accessCycles = 1.0;  ///< SPM access latency

  void validate() const;

  /// Energy of one scratchpad access in nJ (capacity-proportional, like
  /// the cache's E_cell, scaled by `efficiency`).
  [[nodiscard]] double accessEnergyNj(
      const ScratchpadConfig& config) const;
};

}  // namespace memx
