#include "memx/spm/scratchpad.hpp"

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

void ScratchpadConfig::validate() const {
  MEMX_EXPECTS(isPow2(sizeBytes), "scratchpad size must be a power of two");
  MEMX_EXPECTS(sizeBytes >= 4, "scratchpad must hold at least one word");
}

void ScratchpadCostModel::validate() const {
  MEMX_EXPECTS(betaPj > 0, "beta must be positive");
  MEMX_EXPECTS(efficiency > 0 && efficiency <= 1,
               "efficiency must be in (0, 1]");
  MEMX_EXPECTS(accessCycles > 0, "access latency must be positive");
}

double ScratchpadCostModel::accessEnergyNj(
    const ScratchpadConfig& config) const {
  config.validate();
  validate();
  return efficiency * betaPj * 8.0 * config.sizeBytes * 1e-3;
}

}  // namespace memx
