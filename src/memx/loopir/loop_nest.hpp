// Loop nests with affine (possibly min/max-clamped) bounds.
//
// Rectangular nests cover the paper's kernels; clamped bounds appear after
// tiling, whose boundary loops run `for j = t, min(t + B - 1, n)`.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "memx/loopir/affine.hpp"

namespace memx {

/// A loop bound: max of `exprs` for lower bounds, min of `exprs` for upper
/// bounds (both inclusive). At least one expression is required.
struct LoopBound {
  std::vector<AffineExpr> exprs;

  LoopBound() = default;
  /// Constant bound.
  explicit LoopBound(std::int64_t c) : exprs{AffineExpr(c)} {}
  explicit LoopBound(AffineExpr e) : exprs{std::move(e)} {}
  LoopBound(std::initializer_list<AffineExpr> es) : exprs(es) {}

  /// Evaluate as a lower bound (max over expressions).
  [[nodiscard]] std::int64_t evalLower(
      std::span<const std::int64_t> outer) const;
  /// Evaluate as an upper bound (min over expressions).
  [[nodiscard]] std::int64_t evalUpper(
      std::span<const std::int64_t> outer) const;
};

/// One loop level: `for name = lower, upper, step`.
struct Loop {
  std::string name;
  LoopBound lower;
  LoopBound upper;
  std::int64_t step = 1;
};

/// A perfect nest of loops, outermost first.
class LoopNest {
public:
  LoopNest() = default;
  explicit LoopNest(std::vector<Loop> loops);

  /// Convenience: a rectangular nest with constant inclusive bounds.
  /// bounds[k] = {lower, upper} for loop k.
  static LoopNest rectangular(
      std::vector<std::pair<std::int64_t, std::int64_t>> bounds);

  [[nodiscard]] std::size_t depth() const noexcept { return loops_.size(); }
  [[nodiscard]] const Loop& loop(std::size_t k) const { return loops_[k]; }
  [[nodiscard]] const std::vector<Loop>& loops() const noexcept {
    return loops_;
  }

  /// Visit every iteration in lexicographic order; the visitor receives
  /// the full iteration vector (outermost first).
  void forEachIteration(
      const std::function<void(std::span<const std::int64_t>)>& visit) const;

  /// Like forEachIteration, but stops as soon as the visitor returns
  /// false. Returns false when the walk was cut short.
  bool forEachIterationWhile(
      const std::function<bool(std::span<const std::int64_t>)>& visit) const;

  /// Number of iterations executed (product of dynamic trip counts).
  [[nodiscard]] std::uint64_t iterationCount() const;

private:
  bool recurse(
      std::size_t level, std::vector<std::int64_t>& iv,
      const std::function<bool(std::span<const std::int64_t>)>& visit) const;

  std::vector<Loop> loops_;
};

}  // namespace memx
