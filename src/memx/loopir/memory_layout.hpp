// Off-chip memory layouts: where each array lives and how its dimensions
// are strided.
//
// The paper's Section-4.1 optimization is entirely expressed here: a layout
// with padded bases (Example 2: b at 38, c at 76) and/or padded row pitch
// (Compress: pitch 36 instead of 32 bytes) eliminates conflict misses.
// The placement *algorithms* live in memx/layout; this type is just the
// addressing function trace generation uses.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// Placement of one array: base byte address plus a byte pitch per
/// dimension (outermost first; innermost is normally elemBytes).
struct ArrayPlacement {
  std::uint64_t baseAddr = 0;
  std::vector<std::uint64_t> pitches;

  /// Byte address of the element at `subscripts`.
  [[nodiscard]] std::uint64_t address(
      std::span<const std::int64_t> subscripts) const;

  /// Bytes from base to one past the last element of an array with the
  /// given extents.
  [[nodiscard]] std::uint64_t spanBytes(
      const ArrayDecl& decl) const;
};

/// A complete layout for a kernel's arrays.
class MemoryLayout {
public:
  MemoryLayout() = default;
  explicit MemoryLayout(std::vector<ArrayPlacement> placements)
      : placements_(std::move(placements)) {}

  /// Tight row-major placement: arrays back to back starting at
  /// `startAddr`, no padding anywhere. This is the paper's "unoptimized"
  /// baseline layout.
  static MemoryLayout tight(const Kernel& kernel,
                            std::uint64_t startAddr = 0);

  [[nodiscard]] std::size_t arrayCount() const noexcept {
    return placements_.size();
  }
  [[nodiscard]] const ArrayPlacement& placement(std::size_t arrayIdx) const;
  [[nodiscard]] ArrayPlacement& placement(std::size_t arrayIdx);

  /// Byte address of kernel array `arrayIdx` at `subscripts`.
  [[nodiscard]] std::uint64_t address(
      std::size_t arrayIdx, std::span<const std::int64_t> subscripts) const;

  /// One past the highest byte any array occupies (padding included).
  [[nodiscard]] std::uint64_t endAddr(const Kernel& kernel) const;

  /// Canonical text form of the placement (bases and pitches). Two
  /// layouts with equal signatures address every element identically, so
  /// they generate identical traces — the sweep engine keys its trace
  /// cache on this.
  [[nodiscard]] std::string signature() const;

private:
  std::vector<ArrayPlacement> placements_;
};

/// Row-major pitches for a declaration (innermost = elemBytes), with the
/// second-innermost ("row") pitch optionally overridden to `rowPitchBytes`
/// for intra-array padding. rowPitchBytes = 0 means tight.
[[nodiscard]] std::vector<std::uint64_t> rowMajorPitches(
    const ArrayDecl& decl, std::uint64_t rowPitchBytes = 0);

}  // namespace memx
