#include "memx/loopir/memory_layout.hpp"

#include "memx/util/assert.hpp"

namespace memx {

std::uint64_t ArrayPlacement::address(
    std::span<const std::int64_t> subscripts) const {
  MEMX_EXPECTS(subscripts.size() == pitches.size(),
               "subscript count must match placement rank");
  std::uint64_t addr = baseAddr;
  for (std::size_t d = 0; d < pitches.size(); ++d) {
    MEMX_EXPECTS(subscripts[d] >= 0, "negative subscript");
    addr += static_cast<std::uint64_t>(subscripts[d]) * pitches[d];
  }
  return addr;
}

std::uint64_t ArrayPlacement::spanBytes(const ArrayDecl& decl) const {
  MEMX_EXPECTS(pitches.size() == decl.extents.size(),
               "placement rank must match declaration rank");
  std::uint64_t last = 0;
  for (std::size_t d = 0; d < pitches.size(); ++d) {
    last += static_cast<std::uint64_t>(decl.extents[d] - 1) * pitches[d];
  }
  return last + decl.elemBytes;
}

std::vector<std::uint64_t> rowMajorPitches(const ArrayDecl& decl,
                                           std::uint64_t rowPitchBytes) {
  const std::size_t rank = decl.extents.size();
  std::vector<std::uint64_t> pitches(rank, decl.elemBytes);
  if (rank == 0) return pitches;
  // Build from innermost outwards.
  for (std::size_t d = rank; d-- > 0;) {
    if (d == rank - 1) {
      pitches[d] = decl.elemBytes;
    } else if (d == rank - 2 && rowPitchBytes != 0) {
      MEMX_EXPECTS(rowPitchBytes >= pitches[d + 1] *
                                        static_cast<std::uint64_t>(
                                            decl.extents[d + 1]),
                   "row pitch smaller than the row it must hold");
      pitches[d] = rowPitchBytes;
    } else {
      pitches[d] =
          pitches[d + 1] * static_cast<std::uint64_t>(decl.extents[d + 1]);
    }
  }
  return pitches;
}

MemoryLayout MemoryLayout::tight(const Kernel& kernel,
                                 std::uint64_t startAddr) {
  std::vector<ArrayPlacement> placements;
  placements.reserve(kernel.arrays.size());
  std::uint64_t next = startAddr;
  for (const ArrayDecl& decl : kernel.arrays) {
    ArrayPlacement p;
    p.baseAddr = next;
    p.pitches = rowMajorPitches(decl);
    next += decl.sizeBytes();
    placements.push_back(std::move(p));
  }
  return MemoryLayout(std::move(placements));
}

const ArrayPlacement& MemoryLayout::placement(std::size_t arrayIdx) const {
  MEMX_EXPECTS(arrayIdx < placements_.size(), "array index out of range");
  return placements_[arrayIdx];
}

ArrayPlacement& MemoryLayout::placement(std::size_t arrayIdx) {
  MEMX_EXPECTS(arrayIdx < placements_.size(), "array index out of range");
  return placements_[arrayIdx];
}

std::uint64_t MemoryLayout::address(
    std::size_t arrayIdx, std::span<const std::int64_t> subscripts) const {
  return placement(arrayIdx).address(subscripts);
}

std::string MemoryLayout::signature() const {
  std::string sig;
  for (const ArrayPlacement& p : placements_) {
    sig += std::to_string(p.baseAddr);
    sig += '@';
    for (const std::uint64_t pitch : p.pitches) {
      sig += std::to_string(pitch);
      sig += ',';
    }
    sig += ';';
  }
  return sig;
}

std::uint64_t MemoryLayout::endAddr(const Kernel& kernel) const {
  MEMX_EXPECTS(placements_.size() == kernel.arrays.size(),
               "layout does not match kernel arrays");
  std::uint64_t end = 0;
  for (std::size_t a = 0; a < placements_.size(); ++a) {
    end = std::max(end, placements_[a].baseAddr +
                            placements_[a].spanBytes(kernel.arrays[a]));
  }
  return end;
}

}  // namespace memx
