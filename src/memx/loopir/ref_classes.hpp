// Uniformly-generated reference analysis (paper Section 3).
//
// Two references a[f(i)] and a[g(i)] are *uniformly generated* when
// f(i) = H i + c_f and g(i) = H i + c_g for the same linear part H.
// References with the same H on the same array form a *class*; groups with
// the same H on different arrays form a *case*. From the constant-vector
// spread within each class the paper derives the minimum number of cache
// lines that avoids all intra-class conflicts, and hence the minimum
// useful cache size (min lines * L).
#pragma once

#include <cstdint>
#include <vector>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// The linear part H of a reference: one coefficient row per array
/// dimension (trailing zero coefficients trimmed so equal maps compare
/// equal regardless of construction).
struct HSignature {
  std::vector<std::vector<std::int64_t>> rows;

  [[nodiscard]] friend bool operator==(const HSignature&,
                                       const HSignature&) = default;
};

/// A class of uniformly generated references: same array, same H, and the
/// same constants on every array dimension that does not vary with the
/// innermost loop. (The last condition splits Compress's a[i-1][*] row
/// from its a[i][*] row — the paper's "class 1" and "class 2": references
/// a whole row apart cannot share cache lines, so they are accounted — and
/// placed — separately.)
struct RefGroup {
  std::size_t arrayIndex = 0;
  HSignature h;
  /// Constants of the non-inner-varying dimensions (key component).
  std::vector<std::int64_t> outerConstants;
  std::vector<std::size_t> accessIndices;  ///< indices into Kernel::body
  /// Constant vectors flattened to row-major element offsets.
  std::int64_t minFlatOffset = 0;
  std::int64_t maxFlatOffset = 0;
  /// Flat element stride per unit step of the innermost loop (0 when the
  /// group is invariant in the innermost loop).
  std::int64_t innerStrideElems = 0;

  /// Spread of the constant vectors in elements.
  [[nodiscard]] std::int64_t spanElems() const noexcept {
    return maxFlatOffset - minFlatOffset;
  }
};

/// A case: every class (RefGroup) sharing one H, across arrays.
struct RefCase {
  HSignature h;
  std::vector<std::size_t> groupIndices;  ///< indices into groups
};

/// Result of partitioning a kernel's references.
struct RefAnalysis {
  std::vector<RefGroup> groups;
  std::vector<RefCase> cases;
  std::vector<std::size_t> indirectAccesses;  ///< unanalyzable body indices
};

/// Partition the affine references of `kernel` into classes and cases.
[[nodiscard]] RefAnalysis analyzeReferences(const Kernel& kernel);

/// The paper's compatibility test: both references affine with the same
/// linear part (their address difference is independent of the loop
/// indices). Works across arrays.
[[nodiscard]] bool compatible(const Kernel& kernel, const ArrayAccess& a,
                              const ArrayAccess& b);

/// Section-3 distance of one class: floor(|span| / loopStride) + 1.
[[nodiscard]] std::int64_t groupDistance(const RefGroup& group,
                                         std::int64_t innermostStep);

/// Cache lines this class needs so its elements never conflict
/// (the paper's formula: +1 when distance mod L in {0, 1}, else +2,
/// with L in elements).
[[nodiscard]] std::uint64_t linesNeeded(const RefGroup& group,
                                        std::uint32_t lineBytes,
                                        std::uint32_t elemBytes,
                                        std::int64_t innermostStep);

/// Tight bound on the lines a class keeps live at once: the worst-case
/// alignment of a `distance`-element window over lines of `lineBytes`.
/// (The paper's linesNeeded formula overcounts when a line holds a single
/// element; feasibility checks use this bound instead.)
[[nodiscard]] std::uint64_t linesLive(const RefGroup& group,
                                      std::uint32_t lineBytes,
                                      std::uint32_t elemBytes,
                                      std::int64_t innermostStep);

/// Sum of linesNeeded over all classes of `kernel` at line size L.
[[nodiscard]] std::uint64_t minCacheLines(const Kernel& kernel,
                                          std::uint32_t lineBytes);

/// Sum of linesLive over all classes (tight feasibility bound).
[[nodiscard]] std::uint64_t minLiveLines(const Kernel& kernel,
                                         std::uint32_t lineBytes);

/// minCacheLines * lineBytes: the smallest conflict-avoiding cache.
[[nodiscard]] std::uint64_t minCacheSizeBytes(const Kernel& kernel,
                                              std::uint32_t lineBytes);

}  // namespace memx
