#include "memx/loopir/ref_classes.hpp"

#include <algorithm>
#include <cstdlib>

#include "memx/util/assert.hpp"

namespace memx {

namespace {

std::vector<std::int64_t> trimmed(const std::vector<std::int64_t>& v) {
  std::vector<std::int64_t> out = v;
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

HSignature signatureOf(const ArrayAccess& acc) {
  HSignature h;
  h.rows.reserve(acc.subscripts.size());
  for (const AffineExpr& e : acc.subscripts) h.rows.push_back(trimmed(e.coeffs));
  return h;
}

/// Row-major element weights of an array declaration (innermost = 1).
std::vector<std::int64_t> rowMajorWeights(const ArrayDecl& decl) {
  std::vector<std::int64_t> w(decl.rank(), 1);
  for (std::size_t d = decl.rank() - 1; d-- > 0;) {
    w[d] = w[d + 1] * decl.extents[d + 1];
  }
  return w;
}

std::int64_t flatConstantOffset(const ArrayAccess& acc,
                                const ArrayDecl& decl) {
  const auto weights = rowMajorWeights(decl);
  std::int64_t off = 0;
  for (std::size_t d = 0; d < acc.subscripts.size(); ++d) {
    off += acc.subscripts[d].constant * weights[d];
  }
  return off;
}

std::int64_t flatInnerStride(const ArrayAccess& acc, const ArrayDecl& decl,
                             std::size_t innermostDim) {
  const auto weights = rowMajorWeights(decl);
  std::int64_t stride = 0;
  for (std::size_t d = 0; d < acc.subscripts.size(); ++d) {
    stride += acc.subscripts[d].coeff(innermostDim) * weights[d];
  }
  return stride;
}

/// Constants of the array dimensions whose subscript does not vary with
/// the innermost loop (class-splitting key; see RefGroup).
std::vector<std::int64_t> outerConstantsOf(const ArrayAccess& acc,
                                           std::size_t innermostDim) {
  std::vector<std::int64_t> out;
  for (const AffineExpr& e : acc.subscripts) {
    if (e.coeff(innermostDim) == 0) out.push_back(e.constant);
  }
  return out;
}

}  // namespace

RefAnalysis analyzeReferences(const Kernel& kernel) {
  kernel.validate();
  RefAnalysis out;
  const std::size_t innermostDim =
      kernel.nest.depth() == 0 ? 0 : kernel.nest.depth() - 1;

  for (std::size_t i = 0; i < kernel.body.size(); ++i) {
    const ArrayAccess& acc = kernel.body[i];
    if (!acc.isAffine()) {
      out.indirectAccesses.push_back(i);
      continue;
    }
    const ArrayDecl& decl = kernel.arrays[acc.arrayIndex];
    const HSignature h = signatureOf(acc);
    const std::vector<std::int64_t> outerC =
        outerConstantsOf(acc, innermostDim);
    const std::int64_t off = flatConstantOffset(acc, decl);

    auto it = std::find_if(out.groups.begin(), out.groups.end(),
                           [&](const RefGroup& g) {
                             return g.arrayIndex == acc.arrayIndex &&
                                    g.h == h && g.outerConstants == outerC;
                           });
    if (it == out.groups.end()) {
      RefGroup g;
      g.arrayIndex = acc.arrayIndex;
      g.h = h;
      g.outerConstants = outerC;
      g.accessIndices.push_back(i);
      g.minFlatOffset = off;
      g.maxFlatOffset = off;
      g.innerStrideElems = flatInnerStride(acc, decl, innermostDim);
      out.groups.push_back(std::move(g));
    } else {
      it->accessIndices.push_back(i);
      it->minFlatOffset = std::min(it->minFlatOffset, off);
      it->maxFlatOffset = std::max(it->maxFlatOffset, off);
    }
  }

  // Cases: classes sharing one H across arrays.
  for (std::size_t g = 0; g < out.groups.size(); ++g) {
    auto it = std::find_if(out.cases.begin(), out.cases.end(),
                           [&](const RefCase& c) {
                             return c.h == out.groups[g].h;
                           });
    if (it == out.cases.end()) {
      out.cases.push_back(RefCase{out.groups[g].h, {g}});
    } else {
      it->groupIndices.push_back(g);
    }
  }
  return out;
}

bool compatible(const Kernel& kernel, const ArrayAccess& a,
                const ArrayAccess& b) {
  (void)kernel;
  if (!a.isAffine() || !b.isAffine()) return false;
  return signatureOf(a) == signatureOf(b);
}

std::int64_t groupDistance(const RefGroup& group,
                           std::int64_t innermostStep) {
  MEMX_EXPECTS(innermostStep > 0, "loop step must be positive");
  const std::int64_t span = group.spanElems();
  // Invariant groups touch a single element per traversal.
  const std::int64_t stride =
      group.innerStrideElems == 0
          ? 1
          : std::abs(group.innerStrideElems) * innermostStep;
  return span / stride + 1;
}

std::uint64_t linesNeeded(const RefGroup& group, std::uint32_t lineBytes,
                          std::uint32_t elemBytes,
                          std::int64_t innermostStep) {
  MEMX_EXPECTS(lineBytes >= elemBytes,
               "line size must hold at least one element");
  MEMX_EXPECTS(lineBytes % elemBytes == 0,
               "line size must be a multiple of the element size");
  const std::int64_t lineElems = lineBytes / elemBytes;
  const std::int64_t distance = groupDistance(group, innermostStep);
  const std::int64_t rem = distance % lineElems;
  const std::int64_t base = distance / lineElems;
  return static_cast<std::uint64_t>(rem == 0 || rem == 1 ? base + 1
                                                         : base + 2);
}

std::uint64_t linesLive(const RefGroup& group, std::uint32_t lineBytes,
                        std::uint32_t elemBytes,
                        std::int64_t innermostStep) {
  MEMX_EXPECTS(lineBytes >= elemBytes,
               "line size must hold at least one element");
  const std::int64_t lineElems = lineBytes / elemBytes;
  const std::int64_t distance = groupDistance(group, innermostStep);
  // A window of `distance` consecutive elements spans at most
  // ceil((distance + lineElems - 1) / lineElems) lines.
  return static_cast<std::uint64_t>((distance + 2 * (lineElems - 1)) /
                                    lineElems);
}

std::uint64_t minCacheLines(const Kernel& kernel, std::uint32_t lineBytes) {
  const RefAnalysis analysis = analyzeReferences(kernel);
  const std::int64_t step =
      kernel.nest.depth() == 0
          ? 1
          : kernel.nest.loop(kernel.nest.depth() - 1).step;
  std::uint64_t lines = 0;
  for (const RefGroup& g : analysis.groups) {
    lines += linesNeeded(g, lineBytes, kernel.arrays[g.arrayIndex].elemBytes,
                         step);
  }
  // Unanalyzable (indirect) references get one line each as a floor.
  lines += analysis.indirectAccesses.size();
  return lines;
}

std::uint64_t minLiveLines(const Kernel& kernel, std::uint32_t lineBytes) {
  const RefAnalysis analysis = analyzeReferences(kernel);
  const std::int64_t step =
      kernel.nest.depth() == 0
          ? 1
          : kernel.nest.loop(kernel.nest.depth() - 1).step;
  std::uint64_t lines = 0;
  for (const RefGroup& g : analysis.groups) {
    lines += linesLive(g, lineBytes, kernel.arrays[g.arrayIndex].elemBytes,
                       step);
  }
  lines += analysis.indirectAccesses.size();
  return lines;
}

std::uint64_t minCacheSizeBytes(const Kernel& kernel,
                                std::uint32_t lineBytes) {
  return minCacheLines(kernel, lineBytes) * lineBytes;
}

}  // namespace memx
