#include "memx/loopir/trace_gen.hpp"

#include <limits>

#include "memx/util/assert.hpp"

namespace memx {

namespace {

/// SplitMix64: deterministic hash for indirect-access subscripts.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t indirectElem(const ArrayAccess& acc, const ArrayDecl& decl,
                           std::span<const std::int64_t> iv) {
  std::uint64_t h = *acc.indirectSeed;
  for (const std::int64_t i : iv) {
    h = mix64(h ^ static_cast<std::uint64_t>(i));
  }
  return h % decl.elemCount();
}

Trace generateUpTo(const Kernel& kernel, const MemoryLayout& layout,
                   std::size_t maxRefs) {
  kernel.validate();
  Trace trace;
  std::vector<std::int64_t> subs;
  kernel.nest.forEachIterationWhile(
      [&](std::span<const std::int64_t> iv) -> bool {
        for (const ArrayAccess& acc : kernel.body) {
          if (trace.size() >= maxRefs) return false;
          const ArrayDecl& decl = kernel.arrays[acc.arrayIndex];
          std::uint64_t addr = 0;
          if (acc.isAffine()) {
            subs.clear();
            for (std::size_t d = 0; d < acc.subscripts.size(); ++d) {
              const std::int64_t s = acc.subscripts[d].eval(iv);
              MEMX_EXPECTS(s >= 0 && s < decl.extents[d],
                           "subscript out of bounds in kernel " +
                               kernel.name + " array " + decl.name);
              subs.push_back(s);
            }
            addr = layout.address(acc.arrayIndex, subs);
          } else {
            // Data-dependent access: a deterministic pseudo-random
            // element, addressed through the placement so padding (if
            // any) is respected.
            const std::uint64_t elem = indirectElem(acc, decl, iv);
            subs.assign(decl.rank(), 0);
            std::uint64_t rest = elem;
            for (std::size_t d = decl.rank(); d-- > 0;) {
              const auto extent =
                  static_cast<std::uint64_t>(decl.extents[d]);
              subs[d] = static_cast<std::int64_t>(rest % extent);
              rest /= extent;
            }
            addr = layout.placement(acc.arrayIndex).address(subs);
          }
          trace.push(MemRef{addr, decl.elemBytes, acc.type});
        }
        return trace.size() < maxRefs;
      });
  return trace;
}

}  // namespace

Trace generateTrace(const Kernel& kernel, const MemoryLayout& layout) {
  return generateUpTo(kernel, layout,
                      std::numeric_limits<std::size_t>::max());
}

Trace generateTrace(const Kernel& kernel) {
  return generateTrace(kernel, MemoryLayout::tight(kernel));
}

Trace generateTracePrefix(const Kernel& kernel, const MemoryLayout& layout,
                          std::size_t maxRefs) {
  return generateUpTo(kernel, layout, maxRefs);
}

}  // namespace memx
