#include "memx/loopir/trace_gen.hpp"

#include <limits>

#include "memx/util/assert.hpp"

namespace memx {

namespace {

/// SplitMix64: deterministic hash for indirect-access subscripts.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t indirectElem(const ArrayAccess& acc, const ArrayDecl& decl,
                           std::span<const std::int64_t> iv) {
  std::uint64_t h = *acc.indirectSeed;
  for (const std::int64_t i : iv) {
    h = mix64(h ^ static_cast<std::uint64_t>(i));
  }
  return h % decl.elemCount();
}

/// Resolve the element an access touches at iteration `iv` into `subs`
/// (affine evaluation with range checks, or indirect decomposition).
void resolveSubscripts(const Kernel& kernel, const ArrayAccess& acc,
                       const ArrayDecl& decl,
                       std::span<const std::int64_t> iv,
                       std::vector<std::int64_t>& subs) {
  if (acc.isAffine()) {
    subs.clear();
    for (std::size_t d = 0; d < acc.subscripts.size(); ++d) {
      const std::int64_t s = acc.subscripts[d].eval(iv);
      MEMX_EXPECTS(s >= 0 && s < decl.extents[d],
                   "subscript out of bounds in kernel " + kernel.name +
                       " array " + decl.name);
      subs.push_back(s);
    }
  } else {
    // Data-dependent access: a deterministic pseudo-random element.
    const std::uint64_t elem = indirectElem(acc, decl, iv);
    subs.assign(decl.rank(), 0);
    std::uint64_t rest = elem;
    for (std::size_t d = decl.rank(); d-- > 0;) {
      const auto extent = static_cast<std::uint64_t>(decl.extents[d]);
      subs[d] = static_cast<std::int64_t>(rest % extent);
      rest /= extent;
    }
  }
}

Trace generateUpTo(const Kernel& kernel, const MemoryLayout& layout,
                   std::size_t maxRefs) {
  kernel.validate();
  Trace trace;
  std::vector<std::int64_t> subs;
  kernel.nest.forEachIterationWhile(
      [&](std::span<const std::int64_t> iv) -> bool {
        for (const ArrayAccess& acc : kernel.body) {
          if (trace.size() >= maxRefs) return false;
          const ArrayDecl& decl = kernel.arrays[acc.arrayIndex];
          resolveSubscripts(kernel, acc, decl, iv, subs);
          // Addressed through the placement so padding (if any) is
          // respected.
          const std::uint64_t addr =
              layout.placement(acc.arrayIndex).address(subs);
          trace.push(MemRef{addr, decl.elemBytes, acc.type});
        }
        return trace.size() < maxRefs;
      });
  return trace;
}

}  // namespace

AccessPattern generateAccessPattern(const Kernel& kernel) {
  kernel.validate();
  AccessPattern pattern;
  pattern.ranks.reserve(kernel.arrays.size());
  pattern.elemBytes.reserve(kernel.arrays.size());
  for (const ArrayDecl& decl : kernel.arrays) {
    pattern.ranks.push_back(static_cast<std::uint32_t>(decl.rank()));
    pattern.elemBytes.push_back(decl.elemBytes);
  }
  const std::uint64_t expected = kernel.referenceCount();
  pattern.refs.reserve(expected);
  std::vector<std::int64_t> subs;
  kernel.nest.forEachIterationWhile(
      [&](std::span<const std::int64_t> iv) -> bool {
        for (const ArrayAccess& acc : kernel.body) {
          const ArrayDecl& decl = kernel.arrays[acc.arrayIndex];
          resolveSubscripts(kernel, acc, decl, iv, subs);
          pattern.refs.push_back(AccessPattern::Ref{
              static_cast<std::uint32_t>(acc.arrayIndex), acc.type});
          pattern.coords.insert(pattern.coords.end(), subs.begin(),
                                subs.end());
        }
        return true;
      });
  return pattern;
}

Trace materializeTrace(const AccessPattern& pattern,
                       const MemoryLayout& layout) {
  MEMX_EXPECTS(layout.arrayCount() >= pattern.ranks.size(),
               "layout covers fewer arrays than the pattern references");
  std::vector<MemRef> refs;
  refs.reserve(pattern.refs.size());
  std::size_t coord = 0;
  for (const AccessPattern::Ref& ref : pattern.refs) {
    const std::uint32_t rank = pattern.ranks[ref.arrayIndex];
    const std::span<const std::int64_t> subs(pattern.coords.data() + coord,
                                             rank);
    coord += rank;
    refs.push_back(MemRef{layout.placement(ref.arrayIndex).address(subs),
                          pattern.elemBytes[ref.arrayIndex], ref.type});
  }
  return Trace(std::move(refs));
}

Trace generateTrace(const Kernel& kernel, const MemoryLayout& layout) {
  return generateUpTo(kernel, layout,
                      std::numeric_limits<std::size_t>::max());
}

Trace generateTrace(const Kernel& kernel) {
  return generateTrace(kernel, MemoryLayout::tight(kernel));
}

Trace generateTracePrefix(const Kernel& kernel, const MemoryLayout& layout,
                          std::size_t maxRefs) {
  return generateUpTo(kernel, layout, maxRefs);
}

}  // namespace memx
