// Executes a kernel symbolically and emits its data-reference trace.
//
// This is the bridge from the paper's program-level view (loop nests over
// arrays) to the simulator's view (a byte-address stream): every iteration
// of the nest emits the body's accesses in program order, addressed
// through a MemoryLayout.
#pragma once

#include "memx/loopir/kernel.hpp"
#include "memx/loopir/memory_layout.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Generate the full reference trace of `kernel` under `layout`.
/// Affine subscripts are range-checked against the array extents
/// (a violation throws); indirect accesses touch a deterministic
/// pseudo-random element.
[[nodiscard]] Trace generateTrace(const Kernel& kernel,
                                  const MemoryLayout& layout);

/// Generate the trace under the tight (unoptimized) layout.
[[nodiscard]] Trace generateTrace(const Kernel& kernel);

/// Generate at most the first `maxRefs` references of the kernel's trace
/// (cheap probe used by layout verification).
[[nodiscard]] Trace generateTracePrefix(const Kernel& kernel,
                                        const MemoryLayout& layout,
                                        std::size_t maxRefs);

}  // namespace memx
