// Executes a kernel symbolically and emits its data-reference trace.
//
// This is the bridge from the paper's program-level view (loop nests over
// arrays) to the simulator's view (a byte-address stream): every iteration
// of the nest emits the body's accesses in program order, addressed
// through a MemoryLayout.
#pragma once

#include <cstdint>
#include <vector>

#include "memx/loopir/kernel.hpp"
#include "memx/loopir/memory_layout.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// A layout-independent record of a kernel's reference stream: for every
/// reference, which array element it touches (resolved subscripts) and
/// how. Executing the nest — affine evaluation, bounds checks, indirect
/// resolution — is the expensive part of trace generation and depends
/// only on the (tiled) kernel, not on where arrays live; the sweep engine
/// records it once and materializes a byte-address trace per candidate
/// layout with a single multiply-add pass.
struct AccessPattern {
  /// One reference: which array, which direction. The element size comes
  /// from the array declaration, the subscripts from `coords`.
  struct Ref {
    std::uint32_t arrayIndex = 0;
    AccessType type = AccessType::Read;
  };

  std::vector<Ref> refs;
  /// Resolved subscripts of every reference, concatenated; each ref
  /// occupies rank(arrayIndex) entries in order.
  std::vector<std::int64_t> coords;
  /// Per kernel array: subscript count and element size (copied from the
  /// declarations so materialization needs no Kernel).
  std::vector<std::uint32_t> ranks;
  std::vector<std::uint32_t> elemBytes;

  [[nodiscard]] std::size_t size() const noexcept { return refs.size(); }
  [[nodiscard]] bool empty() const noexcept { return refs.empty(); }
  /// Approximate heap footprint in bytes (trace-cache accounting).
  [[nodiscard]] std::size_t footprintBytes() const noexcept {
    return refs.capacity() * sizeof(Ref) +
           coords.capacity() * sizeof(std::int64_t);
  }
};

/// Execute `kernel` symbolically and record its reference stream without
/// committing to a layout. Performs the same range checks as
/// generateTrace (a violation throws memx::ContractViolation).
[[nodiscard]] AccessPattern generateAccessPattern(const Kernel& kernel);

/// Turn a recorded pattern into the byte-address trace it denotes under
/// `layout`. materializeTrace(generateAccessPattern(k), l) is
/// bit-identical to generateTrace(k, l).
[[nodiscard]] Trace materializeTrace(const AccessPattern& pattern,
                                     const MemoryLayout& layout);

/// Generate the full reference trace of `kernel` under `layout`.
/// Affine subscripts are range-checked against the array extents
/// (a violation throws); indirect accesses touch a deterministic
/// pseudo-random element.
[[nodiscard]] Trace generateTrace(const Kernel& kernel,
                                  const MemoryLayout& layout);

/// Generate the trace under the tight (unoptimized) layout.
[[nodiscard]] Trace generateTrace(const Kernel& kernel);

/// Generate at most the first `maxRefs` references of the kernel's trace
/// (cheap probe used by layout verification).
[[nodiscard]] Trace generateTracePrefix(const Kernel& kernel,
                                        const MemoryLayout& layout,
                                        std::size_t maxRefs);

}  // namespace memx
