// Kernels: arrays + a loop nest + an ordered list of array accesses.
//
// This is the program representation everything else consumes: trace
// generation executes it, Section-3 analysis partitions its references,
// the layout module places its arrays, tiling rewrites its nest.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "memx/loopir/affine.hpp"
#include "memx/loopir/loop_nest.hpp"
#include "memx/trace/memref.hpp"

namespace memx {

/// A (multi-dimensional) array operand.
struct ArrayDecl {
  std::string name;
  std::vector<std::int64_t> extents;  ///< per-dimension sizes, outer first
  std::uint32_t elemBytes = 4;

  /// Total number of elements.
  [[nodiscard]] std::uint64_t elemCount() const noexcept;
  /// Total size in bytes with tight row-major packing.
  [[nodiscard]] std::uint64_t sizeBytes() const noexcept {
    return elemCount() * elemBytes;
  }
  [[nodiscard]] std::size_t rank() const noexcept { return extents.size(); }
};

/// One array reference in the kernel body: array[ H*iv + c ], executed once
/// per iteration. `indirectSeed` marks data-dependent (incompatible)
/// accesses like VLD's `table[b[i]]`: the subscripts are ignored and a
/// deterministic pseudo-random element of the array is touched instead.
struct ArrayAccess {
  std::size_t arrayIndex = 0;
  std::vector<AffineExpr> subscripts;  ///< one per array dimension
  AccessType type = AccessType::Read;
  std::optional<std::uint64_t> indirectSeed;

  /// True for affine (analyzable, "compatible"-capable) references.
  [[nodiscard]] bool isAffine() const noexcept {
    return !indirectSeed.has_value();
  }
};

/// A named loop kernel.
struct Kernel {
  std::string name;
  std::vector<ArrayDecl> arrays;
  LoopNest nest;
  std::vector<ArrayAccess> body;  ///< accesses per iteration, program order

  /// Checks structural consistency: array indices in range, subscript
  /// counts match array ranks. Throws memx::ContractViolation.
  void validate() const;

  /// Total references the kernel emits = iterations * body size.
  [[nodiscard]] std::uint64_t referenceCount() const;

  /// Index of an array by name; throws when absent.
  [[nodiscard]] std::size_t arrayIndexOf(const std::string& name) const;
};

/// Builder-style helpers for the common access shapes.
/// a2(arr, e0, e1) -> ArrayAccess with two subscripts.
[[nodiscard]] ArrayAccess makeAccess(std::size_t arrayIndex,
                                     std::vector<AffineExpr> subscripts,
                                     AccessType type = AccessType::Read);

}  // namespace memx
