#include "memx/loopir/loop_nest.hpp"

#include <algorithm>
#include <limits>

#include "memx/util/assert.hpp"

namespace memx {

std::int64_t LoopBound::evalLower(
    std::span<const std::int64_t> outer) const {
  MEMX_EXPECTS(!exprs.empty(), "loop bound has no expressions");
  std::int64_t v = std::numeric_limits<std::int64_t>::min();
  for (const AffineExpr& e : exprs) v = std::max(v, e.eval(outer));
  return v;
}

std::int64_t LoopBound::evalUpper(
    std::span<const std::int64_t> outer) const {
  MEMX_EXPECTS(!exprs.empty(), "loop bound has no expressions");
  std::int64_t v = std::numeric_limits<std::int64_t>::max();
  for (const AffineExpr& e : exprs) v = std::min(v, e.eval(outer));
  return v;
}

LoopNest::LoopNest(std::vector<Loop> loops) : loops_(std::move(loops)) {
  for (const Loop& l : loops_) {
    MEMX_EXPECTS(l.step != 0, "loop step cannot be zero");
    MEMX_EXPECTS(l.step > 0, "only forward loops are supported");
    MEMX_EXPECTS(!l.lower.exprs.empty() && !l.upper.exprs.empty(),
                 "loop bounds must be specified");
  }
}

LoopNest LoopNest::rectangular(
    std::vector<std::pair<std::int64_t, std::int64_t>> bounds) {
  std::vector<Loop> loops;
  loops.reserve(bounds.size());
  std::size_t k = 0;
  for (const auto& [lo, hi] : bounds) {
    Loop l;
    // Built in two steps: GCC 12's -O3 restrict checker false-positives
    // on operator+(const char*, std::string&&) here.
    l.name = "i";
    l.name += std::to_string(k++);
    l.lower = LoopBound(lo);
    l.upper = LoopBound(hi);
    loops.push_back(std::move(l));
  }
  return LoopNest(std::move(loops));
}

bool LoopNest::recurse(
    std::size_t level, std::vector<std::int64_t>& iv,
    const std::function<bool(std::span<const std::int64_t>)>& visit) const {
  if (level == loops_.size()) {
    return visit(std::span<const std::int64_t>(iv));
  }
  const Loop& l = loops_[level];
  const std::span<const std::int64_t> outer(iv.data(), level);
  const std::int64_t lo = l.lower.evalLower(outer);
  const std::int64_t hi = l.upper.evalUpper(outer);
  for (std::int64_t i = lo; i <= hi; i += l.step) {
    iv[level] = i;
    if (!recurse(level + 1, iv, visit)) return false;
  }
  return true;
}

void LoopNest::forEachIteration(
    const std::function<void(std::span<const std::int64_t>)>& visit) const {
  std::vector<std::int64_t> iv(loops_.size(), 0);
  recurse(0, iv, [&](std::span<const std::int64_t> it) {
    visit(it);
    return true;
  });
}

bool LoopNest::forEachIterationWhile(
    const std::function<bool(std::span<const std::int64_t>)>& visit) const {
  std::vector<std::int64_t> iv(loops_.size(), 0);
  return recurse(0, iv, visit);
}

std::uint64_t LoopNest::iterationCount() const {
  std::uint64_t n = 0;
  forEachIteration([&](std::span<const std::int64_t>) { ++n; });
  return n;
}

}  // namespace memx
