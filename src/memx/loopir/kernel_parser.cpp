#include "memx/loopir/kernel_parser.hpp"

#include <cctype>
#include <istream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "memx/util/assert.hpp"

namespace memx {

namespace {

enum class TokKind { Name, Number, Symbol, End };

struct Token {
  TokKind kind = TokKind::End;
  std::string text;
  std::int64_t number = 0;
  std::size_t line = 0;
};

class Lexer {
public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  const Token& peek() const { return current_; }

  Token next() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& message) const {
    MEMX_EXPECTS(false, "kernel parse error (line " +
                            std::to_string(current_.line) +
                            "): " + message);
    std::abort();  // unreachable; MEMX_EXPECTS(false, ...) throws
  }

private:
  void advance() {
    // Skip whitespace and comments.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= text_.size()) {
      current_.kind = TokKind::End;
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) !=
                  0 ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokKind::Name;
      current_.text = text_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // Accumulate with an overflow guard: `v * 10 + d` on a huge
      // literal is signed overflow (UB), so reject before it happens.
      constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
      std::int64_t v = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        const std::int64_t d = text_[pos_] - '0';
        MEMX_EXPECTS(v <= (kMax - d) / 10,
                     "kernel parse error (line " + std::to_string(line_) +
                         "): integer literal too large");
        v = v * 10 + d;
        ++pos_;
      }
      current_.kind = TokKind::Number;
      current_.number = v;
      return;
    }
    // Multi-char symbol "..".
    if (c == '.' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '.') {
      current_.kind = TokKind::Symbol;
      current_.text = "..";
      pos_ += 2;
      return;
    }
    current_.kind = TokKind::Symbol;
    current_.text = std::string(1, c);
    ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  Token current_;
};

class Parser {
public:
  Parser(const std::string& text, const std::string& name)
      : lex_(text), name_(name) {}

  Kernel parse() {
    Kernel k;
    k.name = name_;
    while (isName("array")) parseArrayDecl(k);
    if (!isName("for")) lex_.fail("expected a 'for' loop");
    std::vector<Loop> loops;
    parseLoop(k, loops);
    k.nest = LoopNest(std::move(loops));
    if (lex_.peek().kind != TokKind::End) {
      lex_.fail("unexpected trailing input");
    }
    k.validate();
    return k;
  }

private:
  bool isName(const std::string& word) const {
    return lex_.peek().kind == TokKind::Name && lex_.peek().text == word;
  }
  bool isSymbol(const std::string& s) const {
    return lex_.peek().kind == TokKind::Symbol && lex_.peek().text == s;
  }
  void expectSymbol(const std::string& s) {
    if (!isSymbol(s)) lex_.fail("expected '" + s + "'");
    lex_.next();
  }
  std::string expectName() {
    if (lex_.peek().kind != TokKind::Name) lex_.fail("expected a name");
    return lex_.next().text;
  }
  std::int64_t expectNumber() {
    bool negative = false;
    if (isSymbol("-")) {
      lex_.next();
      negative = true;
    }
    if (lex_.peek().kind != TokKind::Number) {
      lex_.fail("expected a number");
    }
    const std::int64_t v = lex_.next().number;
    return negative ? -v : v;
  }

  void parseArrayDecl(Kernel& k) {
    lex_.next();  // "array"
    ArrayDecl decl;
    decl.name = expectName();
    if (arrays_.count(decl.name) != 0) {
      lex_.fail("array '" + decl.name + "' declared twice");
    }
    while (isSymbol("[")) {
      lex_.next();
      decl.extents.push_back(expectNumber());
      expectSymbol("]");
    }
    if (decl.extents.empty()) {
      lex_.fail("array '" + decl.name + "' needs at least one dimension");
    }
    decl.elemBytes = 1;
    if (isSymbol(":")) {
      lex_.next();
      decl.elemBytes = static_cast<std::uint32_t>(expectNumber());
    }
    arrays_[decl.name] = k.arrays.size();
    k.arrays.push_back(std::move(decl));
  }

  void parseLoop(Kernel& k, std::vector<Loop>& loops) {
    // parseLoop recurses per nest level; cap the depth so adversarial
    // input fails with a parse error instead of exhausting the stack.
    if (loops.size() >= 64) lex_.fail("loop nest deeper than 64 levels");
    lex_.next();  // "for"
    Loop loop;
    loop.name = expectName();
    if (varIndex_.count(loop.name) != 0) {
      lex_.fail("loop variable '" + loop.name + "' reused");
    }
    expectSymbol("=");
    loop.lower = LoopBound(expectNumber());
    expectSymbol("..");
    loop.upper = LoopBound(expectNumber());
    if (isName("step")) {
      lex_.next();
      loop.step = expectNumber();
      if (loop.step <= 0) lex_.fail("step must be positive");
    }
    varIndex_[loop.name] = loops.size();
    loops.push_back(std::move(loop));

    if (isName("for")) {
      parseLoop(k, loops);
      return;
    }
    // Statements until EOF.
    bool any = false;
    while (lex_.peek().kind == TokKind::Name && !isName("for")) {
      parseStatement(k);
      any = true;
    }
    if (!any) lex_.fail("loop body needs at least one statement");
  }

  void parseStatement(Kernel& k) {
    const ArrayAccess lhs = parseRef();
    expectSymbol("=");
    std::vector<ArrayAccess> reads;
    parseExpr(reads);
    for (ArrayAccess& r : reads) k.body.push_back(std::move(r));
    ArrayAccess write = lhs;
    write.type = AccessType::Write;
    k.body.push_back(std::move(write));
  }

  // expr := term (("+"|"-") term)*
  void parseExpr(std::vector<ArrayAccess>& reads) {
    parseTerm(reads);
    while (isSymbol("+") || isSymbol("-")) {
      lex_.next();
      parseTerm(reads);
    }
  }

  // term := [INT "*"] (ref | INT)
  void parseTerm(std::vector<ArrayAccess>& reads) {
    if (lex_.peek().kind == TokKind::Number) {
      lex_.next();
      if (isSymbol("*")) {
        lex_.next();
      } else {
        return;  // bare constant
      }
    }
    if (lex_.peek().kind != TokKind::Name) {
      lex_.fail("expected an array reference");
    }
    reads.push_back(parseRef());
  }

  ArrayAccess parseRef() {
    const std::string arrayName = expectName();
    const auto it = arrays_.find(arrayName);
    if (it == arrays_.end()) {
      lex_.fail("unknown array '" + arrayName + "'");
    }
    ArrayAccess acc;
    acc.arrayIndex = it->second;
    if (!isSymbol("[")) lex_.fail("expected '[' after array name");
    while (isSymbol("[")) {
      lex_.next();
      acc.subscripts.push_back(parseAffine());
      expectSymbol("]");
    }
    return acc;
  }

  // affine := aterm (("+"|"-") aterm)*, aterm := [INT "*"] NAME | INT
  AffineExpr parseAffine() {
    AffineExpr e;
    std::int64_t sign = 1;
    if (isSymbol("-")) {
      lex_.next();
      sign = -1;
    }
    e = parseAffineTerm(sign);
    while (isSymbol("+") || isSymbol("-")) {
      const std::int64_t s = lex_.next().text == "+" ? 1 : -1;
      e = e.plus(parseAffineTerm(s));
    }
    return e;
  }

  AffineExpr parseAffineTerm(std::int64_t sign) {
    if (lex_.peek().kind == TokKind::Number) {
      const std::int64_t v = lex_.next().number;
      if (isSymbol("*")) {
        lex_.next();
        return AffineExpr::var(expectVar(), sign * v);
      }
      return AffineExpr(sign * v);
    }
    return AffineExpr::var(expectVar(), sign);
  }

  std::size_t expectVar() {
    const std::string var = expectName();
    const auto it = varIndex_.find(var);
    if (it == varIndex_.end()) {
      lex_.fail("unknown loop variable '" + var + "'");
    }
    return it->second;
  }

  Lexer lex_;
  std::string name_;
  std::map<std::string, std::size_t> arrays_;
  std::map<std::string, std::size_t> varIndex_;
};

}  // namespace

Kernel parseKernel(const std::string& text, const std::string& name) {
  return Parser(text, name).parse();
}

Kernel parseKernel(std::istream& is, const std::string& name) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parseKernel(buffer.str(), name);
}

}  // namespace memx
