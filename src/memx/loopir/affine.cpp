#include "memx/loopir/affine.hpp"

#include <algorithm>
#include <sstream>

#include "memx/util/assert.hpp"

namespace memx {

AffineExpr AffineExpr::var(std::size_t dim, std::int64_t coeff) {
  AffineExpr e;
  e.coeffs.assign(dim + 1, 0);
  e.coeffs[dim] = coeff;
  return e;
}

std::int64_t AffineExpr::eval(std::span<const std::int64_t> iv) const {
  std::int64_t v = constant;
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    if (coeffs[k] == 0) continue;
    MEMX_EXPECTS(k < iv.size(),
                 "affine expression references a loop deeper than the "
                 "iteration vector");
    v += coeffs[k] * iv[k];
  }
  return v;
}

bool AffineExpr::isConstant() const noexcept {
  return std::all_of(coeffs.begin(), coeffs.end(),
                     [](std::int64_t c) { return c == 0; });
}

AffineExpr AffineExpr::plus(const AffineExpr& other) const {
  AffineExpr out;
  out.constant = constant + other.constant;
  out.coeffs.assign(std::max(coeffs.size(), other.coeffs.size()), 0);
  for (std::size_t k = 0; k < coeffs.size(); ++k) out.coeffs[k] = coeffs[k];
  for (std::size_t k = 0; k < other.coeffs.size(); ++k) {
    out.coeffs[k] += other.coeffs[k];
  }
  return out;
}

AffineExpr AffineExpr::plusConstant(std::int64_t delta) const {
  AffineExpr out = *this;
  out.constant += delta;
  return out;
}

std::int64_t AffineExpr::coeff(std::size_t dim) const noexcept {
  return dim < coeffs.size() ? coeffs[dim] : 0;
}

std::string AffineExpr::toString() const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    if (coeffs[k] == 0) continue;
    if (!first) os << (coeffs[k] > 0 ? " + " : " - ");
    else if (coeffs[k] < 0) os << '-';
    const std::int64_t mag = coeffs[k] < 0 ? -coeffs[k] : coeffs[k];
    if (mag != 1) os << mag << '*';
    os << 'i' << k;
    first = false;
  }
  if (first) {
    os << constant;
  } else if (constant > 0) {
    os << " + " << constant;
  } else if (constant < 0) {
    os << " - " << -constant;
  }
  return os.str();
}

}  // namespace memx
