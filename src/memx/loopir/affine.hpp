// Affine expressions over loop induction variables.
//
// Everything the paper analyzes — uniformly generated references,
// compatibility, tiled loop bounds — is affine in the iteration vector;
// AffineExpr is the shared representation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace memx {

/// c + sum_k coeffs[k] * iv[k], where iv is the iteration vector of the
/// enclosing loops (outermost first). Missing trailing coefficients are
/// treated as zero so expressions survive loop-nest deepening (tiling).
struct AffineExpr {
  std::int64_t constant = 0;
  std::vector<std::int64_t> coeffs;

  AffineExpr() = default;
  /// Constant expression.
  explicit AffineExpr(std::int64_t c) : constant(c) {}
  AffineExpr(std::int64_t c, std::vector<std::int64_t> k)
      : constant(c), coeffs(std::move(k)) {}

  /// Expression equal to one induction variable: iv[dim].
  static AffineExpr var(std::size_t dim, std::int64_t coeff = 1);

  /// Value at the given iteration vector. Coefficients beyond iv.size()
  /// must be zero (checked).
  [[nodiscard]] std::int64_t eval(std::span<const std::int64_t> iv) const;

  /// True when no induction variable appears (all coefficients zero).
  [[nodiscard]] bool isConstant() const noexcept;

  /// this + other (element-wise coefficients).
  [[nodiscard]] AffineExpr plus(const AffineExpr& other) const;
  /// this + constant delta.
  [[nodiscard]] AffineExpr plusConstant(std::int64_t delta) const;

  /// Coefficient on dimension `dim` (0 when beyond stored coefficients).
  [[nodiscard]] std::int64_t coeff(std::size_t dim) const noexcept;

  /// Human-readable form like "2*i0 + i2 - 1" for diagnostics.
  [[nodiscard]] std::string toString() const;

  [[nodiscard]] friend bool operator==(const AffineExpr&,
                                       const AffineExpr&) = default;
};

}  // namespace memx
