#include "memx/loopir/kernel.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"

namespace memx {

std::uint64_t ArrayDecl::elemCount() const noexcept {
  std::uint64_t n = 1;
  for (const std::int64_t e : extents) {
    n *= static_cast<std::uint64_t>(e);
  }
  return n;
}

void Kernel::validate() const {
  MEMX_EXPECTS(!name.empty(), "kernel needs a name");
  MEMX_EXPECTS(!arrays.empty(), "kernel needs at least one array");
  MEMX_EXPECTS(!body.empty(), "kernel needs at least one access");
  for (const ArrayDecl& a : arrays) {
    MEMX_EXPECTS(!a.extents.empty(), "array needs at least one dimension");
    MEMX_EXPECTS(a.elemBytes > 0, "array element size must be positive");
    for (const std::int64_t e : a.extents) {
      MEMX_EXPECTS(e > 0, "array extents must be positive");
    }
  }
  for (const ArrayAccess& acc : body) {
    MEMX_EXPECTS(acc.arrayIndex < arrays.size(),
                 "access references an undeclared array");
    MEMX_EXPECTS(acc.subscripts.size() ==
                     arrays[acc.arrayIndex].extents.size(),
                 "subscript count must match array rank");
  }
}

std::uint64_t Kernel::referenceCount() const {
  return nest.iterationCount() * body.size();
}

std::size_t Kernel::arrayIndexOf(const std::string& arrayName) const {
  const auto it = std::find_if(
      arrays.begin(), arrays.end(),
      [&](const ArrayDecl& a) { return a.name == arrayName; });
  MEMX_EXPECTS(it != arrays.end(), "unknown array: " + arrayName);
  return static_cast<std::size_t>(it - arrays.begin());
}

ArrayAccess makeAccess(std::size_t arrayIndex,
                       std::vector<AffineExpr> subscripts, AccessType type) {
  ArrayAccess acc;
  acc.arrayIndex = arrayIndex;
  acc.subscripts = std::move(subscripts);
  acc.type = type;
  return acc;
}

}  // namespace memx
