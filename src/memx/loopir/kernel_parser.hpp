// A small textual front end for kernels.
//
// Lets users describe their loop nest in a few lines and run the whole
// exploration on it (memx_cli explore-file), instead of building the IR
// by hand:
//
//     # Example 1 of the paper
//     array a[32][32] : 1
//     for i = 1 .. 31
//       for j = 1 .. 31
//         a[i][j] = a[i][j] - a[i-1][j] - a[i][j-1] - 2*a[i-1][j-1]
//
// Grammar (line comments with '#'):
//
//   file   := decl* loop
//   decl   := "array" NAME ("[" INT "]")+ [":" INT]      elem bytes, default 1
//   loop   := "for" NAME "=" INT ".." INT ["step" INT] body
//   body   := loop | stmt+
//   stmt   := ref "=" expr
//   expr   := term (("+" | "-") term)*
//   term   := [INT "*"] (ref | INT)
//   ref    := NAME ("[" affine "]")+
//   affine := aterm (("+" | "-") aterm)*
//   aterm  := [INT "*"] NAME | INT
//
// Semantics: statements execute in order once per innermost iteration;
// every ref on the right-hand side is a read (in left-to-right order),
// the left-hand side is a write. Loop variables are the enclosing `for`
// names, outermost first. Subscripts must be affine in them.
#pragma once

#include <iosfwd>
#include <string>

#include "memx/loopir/kernel.hpp"

namespace memx {

/// Parse a kernel description. `name` labels the resulting kernel.
/// Throws memx::ContractViolation with a line number on syntax or
/// semantic errors (unknown array/variable, rank mismatch, bounds).
[[nodiscard]] Kernel parseKernel(const std::string& text,
                                 const std::string& name = "parsed");

/// Parse from a stream (reads to EOF).
[[nodiscard]] Kernel parseKernel(std::istream& is,
                                 const std::string& name = "parsed");

}  // namespace memx
