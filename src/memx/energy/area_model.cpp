#include "memx/energy/area_model.hpp"

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

void AreaParams::validate() const {
  MEMX_EXPECTS(sramCellRbe > 0, "SRAM cell area must be positive");
  MEMX_EXPECTS(comparatorRbe >= 0, "comparator area cannot be negative");
  MEMX_EXPECTS(addressBits >= 8 && addressBits <= 64,
               "address width out of range");
}

std::uint32_t tagBits(const CacheConfig& config, std::uint32_t addressBits) {
  config.validate();
  const std::uint32_t indexBits = log2Exact(config.numSets());
  const std::uint32_t offsetBits = log2Exact(config.lineBytes);
  MEMX_EXPECTS(addressBits > indexBits + offsetBits,
               "address width too small for this geometry");
  return addressBits - indexBits - offsetBits;
}

CacheArea estimateArea(const CacheConfig& config, const AreaParams& params) {
  config.validate();
  params.validate();

  const double lines = config.numLines();
  CacheArea area;
  area.dataRbe = params.sramCellRbe * 8.0 * config.sizeBytes;
  area.tagRbe =
      params.sramCellRbe * lines * tagBits(config, params.addressBits);
  area.statusRbe = params.sramCellRbe * lines * params.statusBitsPerLine;
  area.comparatorRbe = params.comparatorRbe * config.associativity *
                       tagBits(config, params.addressBits);
  return area;
}

}  // namespace memx
