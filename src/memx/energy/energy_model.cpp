#include "memx/energy/energy_model.hpp"

#include "memx/energy/area_model.hpp"
#include "memx/util/assert.hpp"

namespace memx {

namespace {
constexpr double kPjToNj = 1e-3;
}

void EnergyParams::validate() const {
  MEMX_EXPECTS(alphaPj > 0, "alpha must be positive");
  MEMX_EXPECTS(betaPj > 0, "beta must be positive");
  MEMX_EXPECTS(gammaPj > 0, "gamma must be positive");
  MEMX_EXPECTS(dataActivity >= 0 && dataActivity <= 1,
               "data activity must be in [0,1]");
  MEMX_EXPECTS(emNj > 0, "Em must be positive");
  MEMX_EXPECTS(mainBytesPerAccess > 0,
               "main memory width must be positive");
  MEMX_EXPECTS(addressBits >= 8 && addressBits <= 64,
               "address width out of range");
  MEMX_EXPECTS(leakagePjPerBytePerCycle >= 0,
               "leakage cannot be negative");
}

CacheEnergyModel::CacheEnergyModel(const CacheConfig& config,
                                   const EnergyParams& params,
                                   double addrSwitchesPerAccess)
    : config_(config), params_(params), addBs_(addrSwitchesPerAccess) {
  config_.validate();
  params_.validate();
  MEMX_EXPECTS(addrSwitchesPerAccess >= 0,
               "address activity cannot be negative");
}

double CacheEnergyModel::decodeEnergyNj() const noexcept {
  return params_.alphaPj * addBs_ * kPjToNj;
}

double CacheEnergyModel::cellEnergyNj() const noexcept {
  // word_line_size: all S ways of one set read in parallel, 8 bits/byte.
  const double wordLineCells =
      8.0 * config_.lineBytes * config_.associativity;
  const double bitLineCells = config_.numSets();
  return params_.betaPj * wordLineCells * bitLineCells * kPjToNj;
}

double CacheEnergyModel::ioEnergyNj() const noexcept {
  const double dataBits = params_.dataActivity * 8.0 * config_.lineBytes;
  return params_.gammaPj * (dataBits + addBs_) * kPjToNj;
}

double CacheEnergyModel::mainEnergyNj() const noexcept {
  const double dataBits = params_.dataActivity * 8.0 * config_.lineBytes;
  const double mainAccesses =
      static_cast<double>(config_.lineBytes) / params_.mainBytesPerAccess;
  return params_.gammaPj * dataBits * kPjToNj + params_.emNj * mainAccesses;
}

double CacheEnergyModel::tagEnergyNj() const noexcept {
  if (!params_.includeTagArray) return 0.0;
  // Tag word line: all S ways' tags read in parallel; bit line: sets.
  const double wordLineCells =
      static_cast<double>(tagBits(config_, params_.addressBits)) *
      config_.associativity;
  const double bitLineCells = config_.numSets();
  return params_.betaPj * wordLineCells * bitLineCells * kPjToNj;
}

double CacheEnergyModel::hitEnergyNj() const noexcept {
  return decodeEnergyNj() + cellEnergyNj() + tagEnergyNj();
}

double CacheEnergyModel::missEnergyNj() const noexcept {
  return hitEnergyNj() + ioEnergyNj() + mainEnergyNj();
}

double CacheEnergyModel::perAccessNj(double missRate) const {
  MEMX_EXPECTS(missRate >= 0.0 && missRate <= 1.0,
               "miss rate must be in [0,1]");
  return (1.0 - missRate) * hitEnergyNj() + missRate * missEnergyNj();
}

double CacheEnergyModel::totalNj(std::uint64_t accesses,
                                 double missRate) const {
  return static_cast<double>(accesses) * perAccessNj(missRate);
}

double CacheEnergyModel::totalNj(const CacheStats& stats) const {
  return totalNj(stats.accesses(), stats.missRate());
}

double CacheEnergyModel::leakageNj(double cycles) const {
  MEMX_EXPECTS(cycles >= 0, "cycles cannot be negative");
  return params_.leakagePjPerBytePerCycle * config_.sizeBytes * cycles *
         kPjToNj;
}

double CacheEnergyModel::memoryTransferNj(std::uint32_t bytes) const {
  const double dataBits = params_.dataActivity * 8.0 * bytes;
  const double mainAccesses =
      static_cast<double>(bytes) / params_.mainBytesPerAccess;
  return params_.gammaPj * dataBits * kPjToNj + params_.emNj * mainAccesses;
}

double CacheEnergyModel::totalIncludingWritesNj(
    const CacheStats& stats) const {
  // Every access pays the array read/write cost; misses add the fill.
  double total = static_cast<double>(stats.hits()) * hitEnergyNj() +
                 static_cast<double>(stats.misses()) * missEnergyNj();
  // Store traffic: write-through word stores and write-back line
  // evictions move data out through the pads and into the SRAM.
  const std::uint32_t wordBytes = 4;
  total += static_cast<double>(stats.memWrites) *
           memoryTransferNj(wordBytes);
  total += static_cast<double>(stats.writebacks) *
           memoryTransferNj(config_.lineBytes);
  return total;
}

EnergyBreakdown CacheEnergyModel::breakdown(double missRate) const {
  MEMX_EXPECTS(missRate >= 0.0 && missRate <= 1.0,
               "miss rate must be in [0,1]");
  EnergyBreakdown b;
  b.decodeNj = decodeEnergyNj();
  b.cellNj = cellEnergyNj();
  b.ioNj = missRate * ioEnergyNj();
  b.mainNj = missRate * mainEnergyNj();
  return b;
}

}  // namespace memx
