#include "memx/energy/dram_model.hpp"

#include "memx/cachesim/cache_sim.hpp"
#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"

namespace memx {

void DramConfig::validate() const {
  MEMX_EXPECTS(isPow2(rowBytes), "row size must be a power of two");
  MEMX_EXPECTS(isPow2(accessBytes), "access width must be a power of two");
  MEMX_EXPECTS(accessBytes <= rowBytes, "access wider than a row");
  MEMX_EXPECTS(rowHitNj > 0 && rowMissNj > 0,
               "energies must be positive");
  MEMX_EXPECTS(rowMissNj >= rowHitNj,
               "a row miss cannot be cheaper than a row hit");
}

DramModel::DramModel(const DramConfig& config) : config_(config) {
  config_.validate();
}

void DramModel::fill(std::uint64_t addr, std::uint32_t lineBytes) {
  MEMX_EXPECTS(lineBytes >= config_.accessBytes,
               "line smaller than the memory access width");
  for (std::uint64_t offset = 0; offset < lineBytes;
       offset += config_.accessBytes) {
    const std::uint64_t row = (addr + offset) / config_.rowBytes;
    ++stats_.accesses;
    if (row == openRow_) {
      ++stats_.rowHits;
      stats_.energyNj += config_.rowHitNj;
    } else {
      ++stats_.rowMisses;
      stats_.energyNj += config_.rowMissNj;
      openRow_ = row;
    }
  }
}

DramStats replayMissStream(const CacheConfig& cache, const Trace& trace,
                           const DramConfig& dram) {
  CacheSim sim(cache);
  DramModel memory(dram);
  for (const MemRef& ref : trace) {
    const AccessOutcome out = sim.access(ref);
    if (out.fills > 0) {
      const std::uint64_t base =
          ref.addr / cache.lineBytes * cache.lineBytes;
      for (std::uint32_t f = 0; f < out.fills; ++f) {
        memory.fill(base + static_cast<std::uint64_t>(f) *
                               cache.lineBytes,
                    cache.lineBytes);
      }
    }
  }
  return memory.stats();
}

}  // namespace memx
