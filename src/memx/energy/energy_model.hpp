// The paper's (rectified) cache energy model.
//
// Section 2.3 defines per-access read energies
//
//   Energy      = hit_rate * Energy_hit + miss_rate * Energy_miss
//   Energy_hit  = E_dec + E_cell
//   Energy_miss = E_dec + E_cell + E_io + E_main
//   E_dec  = alpha * Add_bs
//   E_cell = beta  * word_line_size * bit_line_size
//   E_io   = gamma * (Data_bs * line_size + Add_bs)
//   E_main = gamma * (Data_bs * line_size) + Em * line_size
//
// with alpha = 0.001, beta = 2, gamma = 20 for 0.8 um CMOS, Gray-coded
// address buses and an assumed data-bus activity factor of 0.5.
//
// Unit convention (the paper mixes units; we make them explicit):
//  - component formulas are evaluated in picojoules, with the paper's
//    constants mapped to alphaPj = 1.0 (0.001 nJ), betaPj = 2.0,
//    gammaPj = 20.0;
//  - Em is in nanojoules per main-memory access (datasheet figure);
//  - all public results are reported in nanojoules.
//
// Physical-organization interpretation (documented, parameterizable):
//  - word_line_size = cells on one word line = 8 * L * S (all ways of a
//    set are read in parallel),
//  - bit_line_size  = cells on one bit line = number of sets = T/(L*S),
//  - Data_bs * line_size = dataActivity * 8 * L bit switches per line
//    transfer.
#pragma once

#include <cstdint>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/cache_stats.hpp"

namespace memx {

/// Technology / bus parameters of the energy model.
struct EnergyParams {
  double alphaPj = 1.0;    ///< pJ per address-bus bit switch (paper: 0.001 nJ)
  double betaPj = 2.0;     ///< pJ per (word-line cell x bit-line cell) unit
  double gammaPj = 20.0;   ///< pJ per I/O-pad bit switch
  double dataActivity = 0.5;  ///< assumed data-bus switching activity
  double emNj = 4.95;      ///< main-memory energy per access (nJ)
  /// Bytes delivered per main-memory access; 1 reproduces the paper's
  /// literal `Em * line_size` term, 2 models a 16-bit-wide part.
  std::uint32_t mainBytesPerAccess = 1;
  /// Add the tag-array read energy to every access. The paper (following
  /// Kamble-Ghose) drops tag/comparator energy as insignificant; the
  /// `ablation_tag_energy` bench quantifies what that omission costs.
  bool includeTagArray = false;
  /// Physical address width used to size the tags when enabled.
  std::uint32_t addressBits = 32;
  /// Static (leakage) power per cache byte per cycle, in pJ. 0 keeps the
  /// paper's purely dynamic model; the journal follow-up (Shiue &
  /// Chakrabarti 2001) adds exactly this term, which penalizes large
  /// caches in proportion to runtime.
  double leakagePjPerBytePerCycle = 0.0;

  /// Throws when any coefficient is non-positive.
  void validate() const;
};

/// Per-access energy split into the model's four components (nJ).
struct EnergyBreakdown {
  double decodeNj = 0.0;  ///< E_dec
  double cellNj = 0.0;    ///< E_cell
  double ioNj = 0.0;      ///< E_io
  double mainNj = 0.0;    ///< E_main

  [[nodiscard]] double totalNj() const noexcept {
    return decodeNj + cellNj + ioNj + mainNj;
  }
};

/// Evaluates the DAC'99 energy model for one cache configuration.
class CacheEnergyModel {
public:
  /// Throws on invalid params or cache config.
  CacheEnergyModel(const CacheConfig& config, const EnergyParams& params,
                   double addrSwitchesPerAccess);

  /// E_dec in nJ for the configured address activity.
  [[nodiscard]] double decodeEnergyNj() const noexcept;
  /// E_cell in nJ (grows with cache capacity).
  [[nodiscard]] double cellEnergyNj() const noexcept;
  /// Tag-array read energy in nJ; 0 unless params.includeTagArray.
  [[nodiscard]] double tagEnergyNj() const noexcept;
  /// E_io in nJ (grows with line size).
  [[nodiscard]] double ioEnergyNj() const noexcept;
  /// E_main in nJ (grows with line size and Em).
  [[nodiscard]] double mainEnergyNj() const noexcept;

  /// Energy of one hit: E_dec + E_cell (+ E_tag when enabled).
  [[nodiscard]] double hitEnergyNj() const noexcept;
  /// Energy of one miss: E_dec + E_cell + E_io + E_main.
  [[nodiscard]] double missEnergyNj() const noexcept;

  /// Per-access expected energy at the given miss rate (nJ).
  [[nodiscard]] double perAccessNj(double missRate) const;

  /// Whole-run energy (nJ) for `accesses` references at `missRate`.
  [[nodiscard]] double totalNj(std::uint64_t accesses,
                               double missRate) const;

  /// Whole-run energy directly from simulator statistics.
  [[nodiscard]] double totalNj(const CacheStats& stats) const;

  /// Whole-run energy *including* write traffic, which the paper's
  /// read-only model ignores: write hits pay E_hit, write misses pay
  /// E_miss (write-allocate fills), write-through stores and write-back
  /// evictions each pay the I/O + main-memory cost of the data they
  /// move. The `ablation_write_energy` bench quantifies the difference
  /// against totalNj.
  [[nodiscard]] double totalIncludingWritesNj(
      const CacheStats& stats) const;

  /// Energy of moving one `bytes`-sized chunk to main memory
  /// (I/O pads + SRAM accesses); the unit the write terms build on.
  [[nodiscard]] double memoryTransferNj(std::uint32_t bytes) const;

  /// Static energy leaked over `cycles` of execution (0 when the
  /// leakage coefficient is 0, i.e. the paper's model).
  [[nodiscard]] double leakageNj(double cycles) const;

  /// Expected per-access component split at `missRate`.
  [[nodiscard]] EnergyBreakdown breakdown(double missRate) const;

  [[nodiscard]] const CacheConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const EnergyParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] double addrSwitchesPerAccess() const noexcept {
    return addBs_;
  }

private:
  CacheConfig config_;
  EnergyParams params_;
  double addBs_;
};

/// Default Add_bs when no measured bus trace is available: with Gray-coded
/// buses and mostly small strides, consecutive addresses toggle very few
/// wires; 2.0 switches/access is the analytic default we use.
inline constexpr double kDefaultAddrSwitchesPerAccess = 2.0;

}  // namespace memx
