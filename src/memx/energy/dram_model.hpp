// Row-buffer (page-mode) main-memory model.
//
// The paper's Em is one constant per access — a good fit for the
// asynchronous SRAMs it cites. DRAM-style parts (and later SDRAMs) have
// a row buffer: an access to the open row is cheap, a row change pays
// activation + precharge. This model replays a miss-address stream
// through one bank's row buffer, so the `ablation_dram` bench can show
// when the flat-Em assumption distorts the energy ranking.
#pragma once

#include <cstdint>

#include "memx/cachesim/cache_config.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// One-bank page-mode memory.
struct DramConfig {
  std::uint32_t rowBytes = 512;     ///< row-buffer size
  double rowHitNj = 1.2;            ///< access to the open row
  double rowMissNj = 12.0;          ///< activate + access + precharge
  std::uint32_t accessBytes = 2;    ///< data per access (16-bit part)

  void validate() const;
};

/// Accumulated memory-side statistics.
struct DramStats {
  std::uint64_t accesses = 0;  ///< word accesses the memory served
  std::uint64_t rowHits = 0;
  std::uint64_t rowMisses = 0;
  double energyNj = 0.0;

  [[nodiscard]] double rowHitRate() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(rowHits) /
                               static_cast<double>(accesses);
  }
  /// Energy of the flat-Em model for the same access count.
  [[nodiscard]] double flatEnergyNj(double emNj) const noexcept {
    return emNj * static_cast<double>(accesses);
  }
};

/// Replays line-fill addresses (the cache's miss stream) through the
/// row buffer; each fill of `lineBytes` becomes lineBytes/accessBytes
/// word accesses.
class DramModel {
public:
  explicit DramModel(const DramConfig& config);

  /// One line fill starting at `addr`.
  void fill(std::uint64_t addr, std::uint32_t lineBytes);

  [[nodiscard]] const DramStats& stats() const noexcept { return stats_; }

  /// The flat per-access Em that would dissipate the same total energy
  /// on this exact stream (what the paper's constant should have been).
  [[nodiscard]] double equivalentEmNj() const noexcept {
    return stats_.accesses == 0
               ? 0.0
               : stats_.energyNj / static_cast<double>(stats_.accesses);
  }

private:
  DramConfig config_;
  std::uint64_t openRow_ = ~0ull;
  DramStats stats_;
};

/// Convenience: simulate `trace` on a cache and replay its line-fill
/// stream through the row buffer; returns the memory-side statistics.
[[nodiscard]] DramStats replayMissStream(const CacheConfig& cache,
                                          const Trace& trace,
                                          const DramConfig& dram = {});

}  // namespace memx
