// Cache area estimation (register-bit-equivalent model).
//
// The paper's first metric is "cache size" in bytes; for a design-space
// tool an area figure that includes the tag store and per-line status
// bits is more faithful — two configurations of equal data capacity can
// differ by >30% in silicon. This module implements a Mulder-style RBE
// (register-bit-equivalent) model: every storage bit costs a fixed RBE,
// tags shrink as lines grow, and associativity adds comparator overhead.
#pragma once

#include <cstdint>

#include "memx/cachesim/cache_config.hpp"

namespace memx {

/// Technology constants of the area model.
struct AreaParams {
  double sramCellRbe = 0.6;      ///< RBE per SRAM bit (Mulder et al.)
  double comparatorRbe = 6.0;    ///< RBE per tag-comparator bit per way
  std::uint32_t addressBits = 32;  ///< physical address width
  std::uint32_t statusBitsPerLine = 2;  ///< valid + dirty

  void validate() const;
};

/// Area split of one configuration.
struct CacheArea {
  double dataRbe = 0.0;
  double tagRbe = 0.0;
  double statusRbe = 0.0;
  double comparatorRbe = 0.0;

  [[nodiscard]] double totalRbe() const noexcept {
    return dataRbe + tagRbe + statusRbe + comparatorRbe;
  }
  /// Overhead of everything that is not data, relative to data.
  [[nodiscard]] double overheadRatio() const noexcept {
    return dataRbe == 0.0 ? 0.0 : (totalRbe() - dataRbe) / dataRbe;
  }
};

/// Tag width of a configuration: addressBits - log2(sets) - log2(line).
[[nodiscard]] std::uint32_t tagBits(const CacheConfig& config,
                                    std::uint32_t addressBits = 32);

/// Estimate the silicon area of `config` under `params`.
[[nodiscard]] CacheArea estimateArea(const CacheConfig& config,
                                     const AreaParams& params = {});

}  // namespace memx
