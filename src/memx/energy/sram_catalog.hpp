// Off-chip SRAM part catalog.
//
// The paper anchors its main-memory energy Em at three datasheet points:
// the Cypress CY7C 2 Mbit part used for most experiments (4.95 nJ/access),
// and the two Section-3 extremes (2 Mbit @ 2.31 nJ, 16 Mbit @ 43.56 nJ)
// used to show opposite energy-vs-cache-size trends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace memx {

/// One off-chip memory part.
struct SramPart {
  std::string name;
  std::uint64_t bits = 0;         ///< capacity in bits
  double accessNs = 0.0;          ///< access time
  double voltage = 0.0;           ///< supply voltage
  double currentMa = 0.0;         ///< active current
  double energyPerAccessNj = 0.0; ///< the paper's Em

  /// Em computed from electrical parameters (V * I * t_access).
  [[nodiscard]] double derivedEnergyNj() const noexcept {
    return voltage * currentMa * accessNs * 1e-3;  // mA*ns*V = pJ; /1e3 = nJ
  }
};

/// The catalog of parts the paper references.
class SramCatalog {
public:
  /// Catalog preloaded with the three DAC'99 operating points.
  static SramCatalog paperCatalog();

  /// Add a part (name must be unique; throws otherwise).
  void add(SramPart part);

  /// Look up a part by name; throws memx::ContractViolation if missing.
  [[nodiscard]] const SramPart& byName(const std::string& name) const;

  /// True when `name` is present.
  [[nodiscard]] bool contains(const std::string& name) const noexcept;

  [[nodiscard]] const std::vector<SramPart>& parts() const noexcept {
    return parts_;
  }

private:
  std::vector<SramPart> parts_;
};

/// Em of the SRAM CY7C the paper uses for most experiments (nJ/access).
inline constexpr double kEmCypress2MbitNj = 4.95;
/// Em of the cheap 2 Mbit extreme in Section 3 (nJ/access).
inline constexpr double kEmLow2MbitNj = 2.31;
/// Em of the expensive 16 Mbit extreme in Section 3 (nJ/access).
inline constexpr double kEmHigh16MbitNj = 43.56;

}  // namespace memx
