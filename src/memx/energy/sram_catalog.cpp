#include "memx/energy/sram_catalog.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"

namespace memx {

SramCatalog SramCatalog::paperCatalog() {
  SramCatalog cat;
  // Cypress CY7C (Section 2.3): 2 Mbit, 4 ns, 3.3 V, 375 mA, 4.95 nJ.
  cat.add(SramPart{"CY7C-2Mbit", 2u * 1024 * 1024, 4.0, 3.3, 375.0,
                   kEmCypress2MbitNj});
  // Section-3 low-Em extreme: 2 Mbit SRAM at 2.31 nJ/access.
  cat.add(SramPart{"SRAM-2Mbit-low", 2u * 1024 * 1024, 4.0, 3.3, 175.0,
                   kEmLow2MbitNj});
  // Section-3 high-Em extreme: 16 Mbit SRAM at 43.56 nJ/access.
  cat.add(SramPart{"SRAM-16Mbit", 16u * 1024 * 1024, 12.0, 3.3, 1100.0,
                   kEmHigh16MbitNj});
  return cat;
}

void SramCatalog::add(SramPart part) {
  MEMX_EXPECTS(!part.name.empty(), "SRAM part needs a name");
  MEMX_EXPECTS(!contains(part.name), "duplicate SRAM part name");
  MEMX_EXPECTS(part.energyPerAccessNj > 0,
               "SRAM part needs a positive energy per access");
  parts_.push_back(std::move(part));
}

const SramPart& SramCatalog::byName(const std::string& name) const {
  const auto it =
      std::find_if(parts_.begin(), parts_.end(),
                   [&](const SramPart& p) { return p.name == name; });
  MEMX_EXPECTS(it != parts_.end(), "unknown SRAM part: " + name);
  return *it;
}

bool SramCatalog::contains(const std::string& name) const noexcept {
  return std::any_of(parts_.begin(), parts_.end(),
                     [&](const SramPart& p) { return p.name == name; });
}

}  // namespace memx
