// Differential oracle runner for the Pareto search engine.
//
// Each seeded case draws a random stencil kernel and a small joint
// design space (clamped to at most 512 valid genomes), runs NsgaSearch
// with a full-enumeration budget — which the budget mop-up turns into
// an exhaustive, provably exact search — and diffs its front against
// the brute-force non-dominated set computed over a fresh evaluator's
// enumeration of the same space. The fronts must match genome for
// genome with bit-identical objectives.
//
// On a mismatch the runner shrinks the design space through a fixed
// list of reduction transforms (drop L2, freeze layout, single policy,
// halve each geometry range) for as long as the failure persists, and
// reports a one-line repro (`MEMX_SEARCH_DIFF repro: seed=S
// shrink={...}`) that reconstructs the minimized case from the seed
// and transform list alone via replaySearchDiffCase().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memx/check/differential.hpp"
#include "memx/core/explorer.hpp"
#include "memx/loopir/kernel.hpp"
#include "memx/search/design_space.hpp"

namespace memx::search {

/// One generated search-differential case: everything derives from the
/// seed plus the recorded shrink transforms.
struct SearchDiffCase {
  std::uint64_t seed = 0;
  Kernel kernel;
  DesignSpaceOptions space;
  ExploreOptions base;
  /// Reduction transforms applied after generation (in order). Empty
  /// for a freshly generated case; runSearchDifferentialCase fills it
  /// while minimizing a failure.
  std::vector<std::size_t> shrinkSteps;
};

/// Number of distinct shrink transforms (valid step ids are
/// 0 .. kSearchShrinkSteps - 1).
inline constexpr std::size_t kSearchShrinkSteps = 8;

/// Apply one reduction transform to `space` in place. Returns false
/// when the transform is a no-op (already minimal along that axis).
/// The transformed options always stay valid.
bool applySearchShrinkStep(DesignSpaceOptions& space, std::size_t step);

/// Generate the case for `seed`: kernel from randomStencilKernel, a
/// seed-derived joint space capped at 512 genomes, and the sweep
/// backend alternating Auto / forced-MultiSim with seed parity.
[[nodiscard]] SearchDiffCase makeSearchDiffCase(std::uint64_t seed);

/// One-line reproduction header for `c`. Every failure message starts
/// with this line.
[[nodiscard]] std::string searchDiffRepro(const SearchDiffCase& c);

/// Run the exact search and diff it against the brute-force front.
[[nodiscard]] DiffResult checkSearchDiffCase(const SearchDiffCase& c);

/// Reconstruct the case for `seed`, replay the recorded shrink
/// transforms, and check it — the one-call reproduction entry point
/// printed in repro lines.
[[nodiscard]] DiffResult replaySearchDiffCase(
    std::uint64_t seed, const std::vector<std::size_t>& shrinkSteps);

/// Run the case for `seed`; on failure, greedily shrink the space for
/// as long as the failure persists and return the minimized repro.
[[nodiscard]] DiffResult runSearchDifferentialCase(std::uint64_t seed);

/// Run `count` cases for seeds firstSeed .. firstSeed + count - 1.
[[nodiscard]] DiffSummary runSearchDifferential(std::uint64_t firstSeed,
                                                std::size_t count);

}  // namespace memx::search
