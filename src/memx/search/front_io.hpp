// CSV serialization for Pareto fronts.
//
// The golden-front corpus under tests/golden/ stores fronts in this
// format, and `memx_cli --search --csv` emits it. Doubles round-trip
// exactly (printed with %.17g), so a re-read front compares bit for
// bit against the in-memory one — which is what the golden tests rely
// on for their per-point delta reporting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "memx/search/nsga.hpp"

namespace memx::search {

/// One parsed front row. Mirrors SearchPoint but carries only what the
/// CSV stores (no genome indices: those are space-relative).
struct FrontRow {
  std::string workload;
  std::uint32_t cacheBytes = 0;
  std::uint32_t lineBytes = 0;
  std::uint32_t associativity = 0;
  std::uint32_t tiling = 0;
  std::string replacement;
  std::string writePolicy;
  std::string layout;       ///< "opt" or "tight"
  std::uint32_t l2Bytes = 0;  ///< 0 = single-level
  Objectives objectives{};    ///< {energy nJ, cycles, size RBE}
};

/// The exact header line written by writeFrontCsv.
[[nodiscard]] const std::string& frontCsvHeader();

/// Convert a search point to its CSV row form.
[[nodiscard]] FrontRow toFrontRow(const std::string& workload,
                                  const SearchPoint& point);

/// Write `rows` as CSV (header + one line per row, doubles as %.17g).
void writeFrontCsv(std::ostream& out, const std::vector<FrontRow>& rows);

/// Parse a front CSV produced by writeFrontCsv. Throws
/// std::runtime_error naming the offending line and column on any
/// malformed input (wrong header, field count, or unparsable number).
[[nodiscard]] std::vector<FrontRow> readFrontCsv(std::istream& in);

}  // namespace memx::search
