#include "memx/search/search_diff.hpp"

#include <algorithm>
#include <random>
#include <utility>

#include "memx/check/random_gen.hpp"
#include "memx/util/numeric_io.hpp"
#include "memx/search/dominance.hpp"
#include "memx/search/evaluator.hpp"
#include "memx/search/nsga.hpp"

namespace memx::search {

namespace {

/// Largest joint space a differential case may span. Small enough that
/// the exhaustive oracle is instant, large enough to exercise every
/// gene (policies, layout, L2) in one case.
constexpr std::uint64_t kMaxDiffSpace = 512;

std::string f64(double v) { return formatDouble17(v); }

}  // namespace

bool applySearchShrinkStep(DesignSpaceOptions& space, std::size_t step) {
  switch (step) {
    case 0:
      if (space.l2CapacityBytes.empty()) return false;
      space.l2CapacityBytes.clear();
      return true;
    case 1:
      if (!space.sweepLayout) return false;
      space.sweepLayout = false;
      return true;
    case 2:
      if (space.replacements.size() <= 1) return false;
      space.replacements.resize(1);
      return true;
    case 3:
      if (space.writePolicies.size() <= 1) return false;
      space.writePolicies.resize(1);
      return true;
    case 4:
      if (space.ranges.maxCacheBytes / 2 < space.ranges.minCacheBytes) {
        return false;
      }
      space.ranges.maxCacheBytes /= 2;
      return true;
    case 5:
      if (space.ranges.maxLineBytes / 2 < space.ranges.minLineBytes) {
        return false;
      }
      space.ranges.maxLineBytes /= 2;
      return true;
    case 6:
      if (space.ranges.maxAssociativity <= 1) return false;
      space.ranges.maxAssociativity /= 2;
      return true;
    case 7:
      if (space.ranges.maxTiling <= 1) return false;
      space.ranges.maxTiling /= 2;
      return true;
    default:
      return false;
  }
}

SearchDiffCase makeSearchDiffCase(std::uint64_t seed) {
  SearchDiffCase c;
  c.seed = seed;
  c.kernel = randomStencilKernel(seed);
  // Alternate the sweep backend so half the cases force MultiSim
  // everywhere and half resolve per combo (LRU analytic).
  c.base.backend =
      seed % 2 == 0 ? SweepBackend::MultiSim : SweepBackend::Auto;

  std::mt19937_64 rng(seed ^ 0x5eacd1ff00dull);
  DesignSpaceOptions& s = c.space;
  s.ranges.minCacheBytes = 16;
  s.ranges.maxCacheBytes = 16u << (rng() % 4);
  s.ranges.onChipBytes = s.ranges.maxCacheBytes;
  s.ranges.minLineBytes = 4;
  s.ranges.maxLineBytes = 4u << (rng() % 3);
  s.ranges.maxAssociativity = 1u << (rng() % 3);
  s.ranges.maxTiling = 1u << (rng() % 3);

  constexpr ReplacementPolicy kRepls[] = {
      ReplacementPolicy::LRU, ReplacementPolicy::FIFO,
      ReplacementPolicy::Random, ReplacementPolicy::TreePLRU};
  s.replacements = {kRepls[rng() % 4]};
  const ReplacementPolicy extra = kRepls[rng() % 4];
  if (rng() % 2 == 0 && extra != s.replacements[0]) {
    s.replacements.push_back(extra);
  }
  switch (rng() % 3) {
    case 0:
      s.writePolicies = {WritePolicy::WriteBack};
      break;
    case 1:
      s.writePolicies = {WritePolicy::WriteThrough};
      break;
    default:
      s.writePolicies = {WritePolicy::WriteBack, WritePolicy::WriteThrough};
      break;
  }
  s.sweepLayout = rng() % 2 == 0;
  s.defaultOptimizeLayout = rng() % 2 == 0;
  if (rng() % 3 == 0) {
    s.l2CapacityBytes = {s.ranges.maxCacheBytes * (rng() % 2 == 0 ? 2 : 4)};
  }

  // Cap the space: cycle the shrink transforms until it fits. These
  // generation-time reductions are part of the case, not recorded in
  // shrinkSteps — replaying from the seed retraces them identically.
  std::size_t step = 0;
  std::size_t idle = 0;
  while (DesignSpace(s).size() > kMaxDiffSpace &&
         idle < kSearchShrinkSteps) {
    idle = applySearchShrinkStep(s, step % kSearchShrinkSteps) ? 0
                                                              : idle + 1;
    ++step;
  }
  return c;
}

std::string searchDiffRepro(const SearchDiffCase& c) {
  std::string steps;
  for (const std::size_t s : c.shrinkSteps) {
    if (!steps.empty()) steps += ',';
    steps += std::to_string(s);
  }
  return "MEMX_SEARCH_DIFF repro: seed=" + std::to_string(c.seed) +
         " shrink={" + steps + "} space=" +
         std::to_string(DesignSpace(c.space).size()) +
         " | rerun: memx::search::replaySearchDiffCase(" +
         std::to_string(c.seed) + ", {" + steps + "})";
}

DiffResult checkSearchDiffCase(const SearchDiffCase& c) {
  DiffResult result;
  const auto fail = [&](const std::string& what) {
    result.ok = false;
    result.message = searchDiffRepro(c) + "\n  " + what;
    return result;
  };

  DesignSpace space(c.space);

  // The engine under test: full-enumeration budget, so the mop-up
  // guarantees every genome is visited and the front is exact.
  SearchOptions options;
  options.seed = c.seed;
  options.populationSize = 16;
  options.generations = 3;
  options.maxEvaluations = space.size();
  options.finishExhaustively = true;
  NsgaSearch engine(c.kernel, DesignSpace(c.space), c.base, options);
  const SearchResult got = engine.run();
  if (!got.exact) {
    return fail("search claims inexact coverage of a " +
                std::to_string(space.size()) +
                "-genome space despite a full-enumeration budget");
  }

  // The oracle: a fresh evaluator over the plain enumeration, fronted
  // by the O(n^2) brute-force extractor. enumerate() yields packed
  // order, matching the search result's front order.
  SearchEvaluator oracle(c.kernel, space, c.base);
  const std::vector<Genome> all = space.enumerate();
  const std::vector<Objectives> objectives = oracle.evaluate(all);
  const std::vector<std::size_t> front = bruteForceFront(objectives);

  if (got.front.size() != front.size()) {
    return fail("front size mismatch: search returned " +
                std::to_string(got.front.size()) + " points, oracle has " +
                std::to_string(front.size()));
  }
  for (std::size_t i = 0; i < front.size(); ++i) {
    const Genome& expectGenome = all[front[i]];
    const Objectives& expect = objectives[front[i]];
    const SearchPoint& gotPoint = got.front[i];
    if (gotPoint.genome != expectGenome) {
      return fail("front point " + std::to_string(i) +
                  " genome mismatch: search has " + gotPoint.decoded.label() +
                  ", oracle expects " + space.decode(expectGenome).label());
    }
    for (std::size_t o = 0; o < expect.size(); ++o) {
      if (gotPoint.objectives[o] != expect[o]) {
        static const char* const kNames[] = {"energy_nj", "cycles",
                                             "size_rbe"};
        return fail("front point " + std::to_string(i) + " (" +
                    gotPoint.decoded.label() + ") objective " + kNames[o] +
                    " mismatch: search=" + f64(gotPoint.objectives[o]) +
                    " oracle=" + f64(expect[o]));
      }
    }
  }
  return result;
}

DiffResult replaySearchDiffCase(
    std::uint64_t seed, const std::vector<std::size_t>& shrinkSteps) {
  SearchDiffCase c = makeSearchDiffCase(seed);
  for (const std::size_t step : shrinkSteps) {
    applySearchShrinkStep(c.space, step);
    c.shrinkSteps.push_back(step);
  }
  return checkSearchDiffCase(c);
}

DiffResult runSearchDifferentialCase(std::uint64_t seed) {
  SearchDiffCase c = makeSearchDiffCase(seed);
  DiffResult result = checkSearchDiffCase(c);
  if (result.ok) return result;

  // Greedy minimization: keep any reduction that preserves the
  // failure, until a full pass over the transforms changes nothing.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t step = 0; step < kSearchShrinkSteps; ++step) {
      SearchDiffCase trial = c;
      if (!applySearchShrinkStep(trial.space, step)) continue;
      trial.shrinkSteps.push_back(step);
      DiffResult trialResult = checkSearchDiffCase(trial);
      if (!trialResult.ok) {
        c = std::move(trial);
        result = std::move(trialResult);
        changed = true;
      }
    }
  }
  return result;
}

DiffSummary runSearchDifferential(std::uint64_t firstSeed,
                                  std::size_t count) {
  DiffSummary summary;
  for (std::size_t i = 0; i < count; ++i) {
    const DiffResult r = runSearchDifferentialCase(firstSeed + i);
    ++summary.casesRun;
    if (!r.ok) summary.failures.push_back(r.message);
  }
  return summary;
}

}  // namespace memx::search
