#include "memx/search/front_io.hpp"

#include <cinttypes>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "memx/cachesim/cache_config.hpp"
#include "memx/util/numeric_io.hpp"

namespace memx::search {

namespace {

const char* const kColumns[] = {
    "workload",    "cache_bytes", "line_bytes", "associativity",
    "tiling",      "replacement", "write",      "layout",
    "l2_bytes",    "energy_nj",   "cycles",     "size_rbe",
};
constexpr std::size_t kColumnCount = std::size(kColumns);

[[noreturn]] void fail(std::size_t lineNo, const std::string& what) {
  throw std::runtime_error("front CSV line " + std::to_string(lineNo) +
                           ": " + what);
}

std::vector<std::string> splitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

std::uint32_t parseU32(const std::string& field, std::size_t lineNo,
                       const char* column) {
  const std::optional<std::uint64_t> value =
      parseUnsignedText(field, 0xffffffffull);
  if (!value) {
    fail(lineNo, std::string("column '") + column +
                     "' is not an unsigned integer: '" + field + "'");
  }
  return static_cast<std::uint32_t>(*value);
}

double parseF64(const std::string& field, std::size_t lineNo,
                const char* column) {
  // from_chars is locale-independent: a front written on one machine
  // parses on any other, and a hostile LC_NUMERIC cannot make the
  // reader accept "3,14" or reject "3.14".
  const std::optional<double> value = parseDoubleText(field);
  if (!value) {
    fail(lineNo, std::string("column '") + column +
                     "' is not a number: '" + field + "'");
  }
  return *value;
}

std::string f64(double v) { return formatDouble17(v); }

}  // namespace

const std::string& frontCsvHeader() {
  static const std::string header = [] {
    std::string h;
    for (std::size_t i = 0; i < kColumnCount; ++i) {
      if (i != 0) h += ',';
      h += kColumns[i];
    }
    return h;
  }();
  return header;
}

FrontRow toFrontRow(const std::string& workload, const SearchPoint& point) {
  FrontRow row;
  row.workload = workload;
  row.cacheBytes = point.decoded.key.cacheBytes;
  row.lineBytes = point.decoded.key.lineBytes;
  row.associativity = point.decoded.key.associativity;
  row.tiling = point.decoded.key.tiling;
  row.replacement = toString(point.decoded.replacement);
  row.writePolicy = toString(point.decoded.writePolicy);
  row.layout = point.decoded.optimizeLayout ? "opt" : "tight";
  row.l2Bytes = point.decoded.l2 ? point.decoded.l2->sizeBytes : 0;
  row.objectives = point.objectives;
  return row;
}

void writeFrontCsv(std::ostream& out, const std::vector<FrontRow>& rows) {
  // Integer columns stream through num_put: pin the classic locale so a
  // grouping-happy global locale cannot emit "1.024" cache sizes.
  const ClassicLocaleGuard locale(out);
  out << frontCsvHeader() << '\n';
  for (const FrontRow& r : rows) {
    out << r.workload << ',' << r.cacheBytes << ',' << r.lineBytes << ','
        << r.associativity << ',' << r.tiling << ',' << r.replacement << ','
        << r.writePolicy << ',' << r.layout << ',' << r.l2Bytes << ','
        << f64(r.objectives[0]) << ',' << f64(r.objectives[1]) << ','
        << f64(r.objectives[2]) << '\n';
  }
}

std::vector<FrontRow> readFrontCsv(std::istream& in) {
  std::string line;
  std::size_t lineNo = 1;
  if (!std::getline(in, line)) fail(lineNo, "empty file (missing header)");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != frontCsvHeader()) {
    fail(lineNo, "bad header: expected '" + frontCsvHeader() + "', got '" +
                     line + "'");
  }
  std::vector<FrontRow> rows;
  while (std::getline(in, line)) {
    ++lineNo;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> fields = splitFields(line);
    if (fields.size() != kColumnCount) {
      fail(lineNo, "expected " + std::to_string(kColumnCount) +
                       " fields, got " + std::to_string(fields.size()));
    }
    FrontRow row;
    row.workload = fields[0];
    row.cacheBytes = parseU32(fields[1], lineNo, kColumns[1]);
    row.lineBytes = parseU32(fields[2], lineNo, kColumns[2]);
    row.associativity = parseU32(fields[3], lineNo, kColumns[3]);
    row.tiling = parseU32(fields[4], lineNo, kColumns[4]);
    row.replacement = fields[5];
    row.writePolicy = fields[6];
    row.layout = fields[7];
    if (row.layout != "opt" && row.layout != "tight") {
      fail(lineNo, "column 'layout' must be 'opt' or 'tight', got '" +
                       row.layout + "'");
    }
    row.l2Bytes = parseU32(fields[8], lineNo, kColumns[8]);
    row.objectives[0] = parseF64(fields[9], lineNo, kColumns[9]);
    row.objectives[1] = parseF64(fields[10], lineNo, kColumns[10]);
    row.objectives[2] = parseF64(fields[11], lineNo, kColumns[11]);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace memx::search
