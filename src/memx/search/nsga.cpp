#include "memx/search/nsga.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "memx/obs/recorder.hpp"
#include "memx/util/assert.hpp"

namespace memx::search {

namespace {

/// Canonical uniform double in [0, 1): 53 top bits of one engine draw,
/// so the draw count per decision is fixed and platform-independent.
double u01(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

bool chance(std::mt19937_64& rng, double p) { return u01(rng) < p; }

/// Spaces up to this size may be enumerated for stratified seeding and
/// the exhaustive mop-up; larger spaces never are.
constexpr std::uint64_t kEnumerationLimit = 1ull << 20;

}  // namespace

void SearchOptions::validate() const {
  MEMX_EXPECTS(populationSize >= 2, "population needs at least 2");
  MEMX_EXPECTS(tournamentSize >= 1, "tournament needs at least 1 pick");
  MEMX_EXPECTS(crossoverRate >= 0.0 && crossoverRate <= 1.0,
               "crossover rate out of [0, 1]");
  MEMX_EXPECTS(mutationRate >= 0.0 && mutationRate <= 1.0,
               "mutation rate out of [0, 1]");
}

NsgaSearch::NsgaSearch(Kernel kernel, DesignSpace space, ExploreOptions base,
                       SearchOptions options, obs::Recorder* recorder)
    : space_(std::move(space)),
      options_(std::move(options)),
      recorder_(recorder),
      evaluator_(std::move(kernel), space_, std::move(base), recorder),
      workload_(evaluator_.kernel().name) {
  options_.validate();
}

std::vector<Genome> NsgaSearch::initialPopulation(std::mt19937_64& rng) {
  std::vector<Genome> population;
  population.reserve(options_.populationSize);
  // Deterministic corner seeds: the extreme genomes anchor the front's
  // boundary regions (min size, max performance) from generation zero.
  const auto corner = [&](bool maxGeometry, bool maxRest) {
    Genome g{};
    for (std::size_t i = 0; i < kGeneCount; ++i) {
      const bool geometry = i <= static_cast<std::size_t>(Gene::Tiling);
      if (geometry ? maxGeometry : maxRest) {
        g[i] = static_cast<std::uint8_t>(
            space_.dimSize(static_cast<Gene>(i)) - 1);
      }
    }
    return space_.repair(g);
  };
  population.push_back(corner(false, false));
  population.push_back(corner(true, false));
  population.push_back(corner(false, true));
  population.push_back(corner(true, true));
  // Stratified seeds: every k-th genome of the enumeration covers the
  // space evenly — cheap insurance against a cold random start (only
  // for spaces small enough to enumerate).
  if (space_.size() <= kEnumerationLimit &&
      population.size() < options_.populationSize) {
    const std::vector<Genome> all = space_.enumerate();
    const std::size_t want = std::min<std::size_t>(
        options_.populationSize / 2,
        options_.populationSize - population.size());
    const std::size_t count = std::min<std::size_t>(want, all.size());
    for (std::size_t i = 0; i < count; ++i) {
      population.push_back(all[i * all.size() / count]);
    }
  }
  while (population.size() < options_.populationSize) {
    population.push_back(space_.randomGenome(rng));
  }
  population.resize(
      std::min<std::size_t>(population.size(), options_.populationSize));
  return population;
}

void NsgaSearch::rankPopulation(std::vector<Individual>& pop) const {
  std::vector<Objectives> objs;
  objs.reserve(pop.size());
  for (const Individual& ind : pop) objs.push_back(ind.objectives);
  const std::vector<std::uint32_t> ranks = nonDominatedRanks(objs);
  std::map<std::uint32_t, std::vector<std::size_t>> fronts;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    pop[i].rank = ranks[i];
    fronts[ranks[i]].push_back(i);
  }
  for (const auto& [rank, members] : fronts) {
    const std::vector<double> crowd = crowdingDistances(objs, members);
    for (std::size_t m = 0; m < members.size(); ++m) {
      pop[members[m]].crowding = crowd[m];
    }
  }
}

std::size_t NsgaSearch::tournament(const std::vector<Individual>& pop,
                                   std::mt19937_64& rng) const {
  // Crowded-comparison: lower rank wins, then larger crowding, then the
  // smaller packed key as the deterministic last resort.
  const auto better = [&](std::size_t a, std::size_t b) {
    if (pop[a].rank != pop[b].rank) return pop[a].rank < pop[b].rank;
    if (pop[a].crowding != pop[b].crowding) {
      return pop[a].crowding > pop[b].crowding;
    }
    return space_.packed(pop[a].genome) < space_.packed(pop[b].genome);
  };
  std::size_t best = static_cast<std::size_t>(rng() % pop.size());
  for (std::uint32_t k = 1; k < options_.tournamentSize; ++k) {
    const std::size_t challenger =
        static_cast<std::size_t>(rng() % pop.size());
    if (better(challenger, best)) best = challenger;
  }
  return best;
}

Genome NsgaSearch::crossover(const Genome& a, const Genome& b,
                             std::mt19937_64& rng) const {
  Genome child{};
  if (chance(rng, 0.5)) {
    // Uniform: each gene from either parent.
    for (std::size_t i = 0; i < kGeneCount; ++i) {
      child[i] = (rng() & 1) != 0 ? a[i] : b[i];
    }
  } else {
    // Arithmetic on the index scale, odd midpoints rounded by coin.
    for (std::size_t i = 0; i < kGeneCount; ++i) {
      const std::uint32_t sum = static_cast<std::uint32_t>(a[i]) + b[i];
      child[i] = static_cast<std::uint8_t>((sum + (rng() & 1)) / 2);
    }
  }
  return child;
}

Genome NsgaSearch::mutate(Genome g, std::mt19937_64& rng) const {
  for (std::size_t i = 0; i < kGeneCount; ++i) {
    if (!chance(rng, options_.mutationRate)) continue;
    const std::size_t dim = space_.dimSize(static_cast<Gene>(i));
    if (chance(rng, 0.5)) {
      // Creep: one step along the (ordered) dimension.
      const bool up = (rng() & 1) != 0;
      if (up && g[i] + 1u < dim) {
        ++g[i];
      } else if (!up && g[i] > 0) {
        --g[i];
      }
    } else {
      g[i] = static_cast<std::uint8_t>(rng() % dim);
    }
  }
  return g;
}

SearchResult NsgaSearch::run() {
  const obs::ScopedSpan span(recorder_, "search.run");
  std::mt19937_64 rng(options_.seed);
  const std::uint64_t startEvals = evaluator_.evaluations();
  const std::uint64_t startHits = evaluator_.cacheHits();
  const std::uint64_t budget =
      options_.maxEvaluations != 0
          ? options_.maxEvaluations
          : static_cast<std::uint64_t>(options_.populationSize) *
                (options_.generations + 1);
  const auto spent = [&] { return evaluator_.evaluations() - startEvals; };
  const auto remaining = [&] {
    const std::uint64_t used = spent();
    return budget > used ? budget - used : 0;
  };

  /// Every distinct genome evaluated this run, in packed order.
  std::map<std::uint64_t, SearchPoint> visited;

  // Drop fresh genomes beyond the remaining budget (archive hits and
  // in-batch duplicates are free and always kept), so the evaluator
  // never exceeds `budget` fresh evaluations.
  const auto trimToBudget = [&](std::vector<Genome> batch) {
    std::vector<Genome> kept;
    kept.reserve(batch.size());
    std::set<std::uint64_t> freshKeys;
    const std::uint64_t room = remaining();
    for (Genome& g : batch) {
      const std::uint64_t key = space_.packed(g);
      if (!visited.contains(key) && !freshKeys.contains(key)) {
        if (freshKeys.size() >= room) continue;
        freshKeys.insert(key);
      }
      kept.push_back(g);
    }
    return kept;
  };

  const auto evaluateBatch = [&](const std::vector<Genome>& batch) {
    const std::vector<Objectives> objs = evaluator_.evaluate(batch);
    std::vector<Individual> out;
    out.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out.push_back(Individual{batch[i], objs[i], 0, 0.0});
      visited.try_emplace(
          space_.packed(batch[i]),
          SearchPoint{batch[i], space_.decode(batch[i]), objs[i]});
    }
    return out;
  };

  std::vector<Individual> pop =
      evaluateBatch(trimToBudget(initialPopulation(rng)));

  std::uint32_t generationsRun = 0;
  while (generationsRun < options_.generations && remaining() > 0 &&
         !pop.empty()) {
    const obs::ScopedSpan genSpan(recorder_, "search.generation");
    if (recorder_ != nullptr) {
      recorder_->counter("search.generations").add();
    }
    rankPopulation(pop);
    std::vector<Genome> offspring;
    offspring.reserve(options_.populationSize);
    for (std::uint32_t k = 0; k < options_.populationSize; ++k) {
      const Genome& a = pop[tournament(pop, rng)].genome;
      const Genome& b = pop[tournament(pop, rng)].genome;
      Genome child = chance(rng, options_.crossoverRate)
                         ? crossover(a, b, rng)
                         : a;
      offspring.push_back(space_.repair(mutate(child, rng)));
    }
    const std::vector<Individual> kids =
        evaluateBatch(trimToBudget(std::move(offspring)));
    pop.insert(pop.end(), kids.begin(), kids.end());
    rankPopulation(pop);
    // Elitist environmental selection with a fully deterministic order.
    std::sort(pop.begin(), pop.end(),
              [&](const Individual& x, const Individual& y) {
                if (x.rank != y.rank) return x.rank < y.rank;
                if (x.crowding != y.crowding) return x.crowding > y.crowding;
                return space_.packed(x.genome) < space_.packed(y.genome);
              });
    if (pop.size() > options_.populationSize) {
      pop.resize(options_.populationSize);
    }
    ++generationsRun;
  }

  // Budget mop-up: when what's left of the budget covers every genome
  // not yet visited, finish the job — the front becomes exact.
  if (options_.finishExhaustively && visited.size() < space_.size() &&
      space_.size() <= kEnumerationLimit &&
      remaining() >= space_.size() - visited.size()) {
    std::vector<Genome> rest;
    for (const Genome& g : space_.enumerate()) {
      if (!visited.contains(space_.packed(g))) rest.push_back(g);
    }
    (void)evaluateBatch(rest);
  }

  SearchResult result;
  result.workload = workload_;
  std::vector<SearchPoint> points;
  std::vector<Objectives> objs;
  points.reserve(visited.size());
  objs.reserve(visited.size());
  for (const auto& [key, sp] : visited) {
    points.push_back(sp);
    objs.push_back(sp.objectives);
  }
  for (const std::size_t i : nonDominatedFront(objs)) {
    result.front.push_back(points[i]);
  }
  result.evaluations = spent();
  result.cacheHits = evaluator_.cacheHits() - startHits;
  result.generations = generationsRun;
  result.spaceSize = space_.size();
  result.exact = visited.size() == space_.size();
  return result;
}

}  // namespace memx::search
