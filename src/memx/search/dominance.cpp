#include "memx/search/dominance.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "memx/util/assert.hpp"

namespace memx::search {

bool dominates(const Objectives& a, const Objectives& b) noexcept {
  bool strict = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strict = true;
  }
  return strict;
}

std::vector<std::size_t> bruteForceFront(std::span<const Objectives> points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = j != i && dominates(points[j], points[i]);
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<std::size_t> nonDominatedFront(
    std::span<const Objectives> points) {
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (points[a] != points[b]) return points[a] < points[b];
              return a < b;
            });
  // If a dominates b then a <= b componentwise with a != b, so a sorts
  // strictly before b lexicographically: scanning in lex order, every
  // potential dominator of a candidate is already in `front`, and no
  // accepted point can be dominated by a later one.
  std::vector<std::size_t> front;
  for (const std::size_t i : order) {
    bool dominated = false;
    for (const std::size_t j : front) {
      if (dominates(points[j], points[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  std::sort(front.begin(), front.end());
  return front;
}

std::vector<std::uint32_t> nonDominatedRanks(
    std::span<const Objectives> points) {
  const std::size_t n = points.size();
  std::vector<std::uint32_t> rank(n, 0);
  std::vector<std::uint32_t> dominatorCount(n, 0);
  std::vector<std::vector<std::uint32_t>> dominatedBy(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dominates(points[i], points[j])) {
        dominatedBy[i].push_back(static_cast<std::uint32_t>(j));
        ++dominatorCount[j];
      } else if (dominates(points[j], points[i])) {
        dominatedBy[j].push_back(static_cast<std::uint32_t>(i));
        ++dominatorCount[i];
      }
    }
  }
  std::vector<std::uint32_t> current;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (dominatorCount[i] == 0) current.push_back(i);
  }
  std::uint32_t level = 0;
  while (!current.empty()) {
    std::vector<std::uint32_t> next;
    for (const std::uint32_t i : current) {
      rank[i] = level;
      for (const std::uint32_t j : dominatedBy[i]) {
        if (--dominatorCount[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
    ++level;
  }
  return rank;
}

std::vector<double> crowdingDistances(std::span<const Objectives> points,
                                      std::span<const std::size_t> members) {
  const std::size_t n = members.size();
  std::vector<double> distance(n, 0.0);
  if (n == 0) return distance;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> order(n);
  for (std::size_t k = 0; k < std::tuple_size_v<Objectives>; ++k) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Ties broken by member index: equal inputs sort identically, so
    // the distances (and everything selected from them) are
    // reproducible bit for bit.
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                const double va = points[members[a]][k];
                const double vb = points[members[b]][k];
                if (va != vb) return va < vb;
                return members[a] < members[b];
              });
    distance[order.front()] = kInf;
    distance[order.back()] = kInf;
    const double lo = points[members[order.front()]][k];
    const double hi = points[members[order.back()]][k];
    if (hi == lo) continue;  // degenerate objective: no interior spread
    for (std::size_t p = 1; p + 1 < n; ++p) {
      const double below = points[members[order[p - 1]]][k];
      const double above = points[members[order[p + 1]]][k];
      distance[order[p]] += (above - below) / (hi - lo);
    }
  }
  return distance;
}

double hypervolume(std::span<const Objectives> points,
                   const Objectives& ref) {
  // Contributing points must be strictly inside the reference box.
  std::vector<Objectives> inside;
  for (const Objectives& p : points) {
    if (p[0] < ref[0] && p[1] < ref[1] && p[2] < ref[2]) {
      inside.push_back(p);
    }
  }
  if (inside.empty()) return 0.0;
  // Sweep objective 2 ascending; between consecutive sweep positions
  // the dominated region's cross-section is the union of 2-D boxes
  // [x, ref0] x [y, ref1] of the points already passed — a staircase.
  std::sort(inside.begin(), inside.end(),
            [](const Objectives& a, const Objectives& b) {
              return a[2] < b[2];
            });
  struct Step {
    double x;
    double y;
  };
  std::vector<Step> stair;  // x ascending, y strictly descending
  const auto stairArea = [&]() {
    double area = 0.0;
    double prevY = ref[1];
    for (const Step& s : stair) {
      area += (ref[0] - s.x) * (prevY - s.y);
      prevY = s.y;
    }
    return area;
  };
  const auto insert = [&](double x, double y) {
    for (const Step& s : stair) {
      if (s.x <= x && s.y <= y) return;  // 2-D dominated: no new area
    }
    std::erase_if(stair, [&](const Step& s) { return s.x >= x && s.y >= y; });
    const auto pos = std::lower_bound(
        stair.begin(), stair.end(), x,
        [](const Step& s, double v) { return s.x < v; });
    stair.insert(pos, Step{x, y});
  };
  double volume = 0.0;
  double sweepZ = inside.front()[2];
  for (const Objectives& p : inside) {
    if (p[2] > sweepZ) {
      volume += stairArea() * (p[2] - sweepZ);
      sweepZ = p[2];
    }
    insert(p[0], p[1]);
  }
  volume += stairArea() * (ref[2] - sweepZ);
  return volume;
}

}  // namespace memx::search
