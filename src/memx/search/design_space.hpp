// The joint design space behind the multi-objective search engine.
//
// The paper's MemExplore loop sweeps (T, L, S, B) exhaustively; the
// search engine explores the *joint* space — cache geometry x
// replacement/write policy x tiling x layout choice x optional L2
// companion — which is far too large to enumerate. A point of that
// space is encoded as a fixed-length Genome of small integer indices
// into per-dimension value lists, so genetic operators are uniform
// per-gene index arithmetic and every genome packs into one canonical
// 64-bit fitness-cache key.
//
// Not every index tuple is a valid configuration (a line cannot exceed
// the cache, ways and tiles cannot exceed the line count, an L2 must
// hold at least twice the L1). repair() maps any genome to a valid one
// deterministically and idempotently: crossover and mutation compose
// with repair instead of carrying per-operator validity logic.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/core/design_point.hpp"
#include "memx/core/explorer.hpp"

namespace memx::search {

/// Number of genes; see Gene for the dimension order.
inline constexpr std::size_t kGeneCount = 8;

/// A point of the joint space: per-dimension indices into the
/// DesignSpace value lists, in Gene order.
using Genome = std::array<std::uint8_t, kGeneCount>;

/// Dimension order of a Genome. The geometry genes come first so the
/// packed key sorts by (T, L, S, B) like ConfigKey does.
enum class Gene : std::size_t {
  CacheBytes = 0,  ///< T
  LineBytes,       ///< L
  Associativity,   ///< S
  Tiling,          ///< B
  Replacement,     ///< index into DesignSpaceOptions::replacements
  WritePolicy,     ///< index into DesignSpaceOptions::writePolicies
  Layout,          ///< 0 = tight, 1 = Section-4.1 assignment (when swept)
  L2,              ///< 0 = no L2, k = l2CapacityBytes[k - 1]
};

/// What the joint space spans. The geometry bounds reuse ExploreRanges;
/// the policy/layout/hierarchy dimensions are explicit value lists (a
/// singleton list pins the dimension).
struct DesignSpaceOptions {
  ExploreRanges ranges;
  std::vector<ReplacementPolicy> replacements{ReplacementPolicy::LRU};
  std::vector<WritePolicy> writePolicies{WritePolicy::WriteBack};
  /// Sweep the layout choice {tight, Section-4.1 assignment} as a gene.
  /// When false the Layout dimension is the singleton
  /// {defaultOptimizeLayout}.
  bool sweepLayout = false;
  bool defaultOptimizeLayout = true;
  /// Candidate L2 capacities (bytes, powers of two). The L2 dimension
  /// is always {none} plus these; empty = single-level space.
  std::vector<std::uint32_t> l2CapacityBytes{};

  void validate() const;
};

/// One decoded genome: everything an evaluation needs.
struct JointPoint {
  ConfigKey key;  ///< (T, L, S, B)
  ReplacementPolicy replacement = ReplacementPolicy::LRU;
  WritePolicy writePolicy = WritePolicy::WriteBack;
  bool optimizeLayout = true;
  /// Derived inclusive companion (line = 2 * L1 line, 2-way when it
  /// fits) when the L2 gene is nonzero.
  std::optional<CacheConfig> l2;

  /// "C64L8S2B4|LRU|write-back|opt|L2:C1024L16S2" style.
  [[nodiscard]] std::string label() const;
};

/// Enumerable, repairable encoding of the joint space.
class DesignSpace {
public:
  explicit DesignSpace(DesignSpaceOptions options);

  [[nodiscard]] const DesignSpaceOptions& options() const noexcept {
    return options_;
  }

  /// Number of values along `gene` (>= 1).
  [[nodiscard]] std::size_t dimSize(Gene gene) const;

  /// Number of *valid* genomes (counted analytically, not enumerated).
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  /// True iff every index is in range and repair() would be a no-op.
  [[nodiscard]] bool isValid(const Genome& g) const;

  /// Deterministic, idempotent projection onto the valid set: indices
  /// clamp to their dimension, dependent genes (L, S, B, L2) clamp to
  /// the largest value their prefix admits (an L2 smaller than 2xT
  /// falls back to "none").
  [[nodiscard]] Genome repair(Genome g) const;

  /// Decode a valid genome (checked) into its configuration.
  [[nodiscard]] JointPoint decode(const Genome& g) const;

  /// Canonical 64-bit key: gene 0 in the top byte, so packed order is
  /// lexicographic genome order. Injective over valid genomes; used as
  /// the fitness-cache key.
  [[nodiscard]] std::uint64_t packed(const Genome& g) const noexcept;

  /// Every valid genome in lexicographic (= packed) order.
  [[nodiscard]] std::vector<Genome> enumerate() const;

  /// A uniformly drawn index tuple, repaired. Deterministic given the
  /// engine state (consumes exactly kGeneCount draws).
  [[nodiscard]] Genome randomGenome(std::mt19937_64& rng) const;

  // Value-list accessors (for tests and reporting).
  [[nodiscard]] const std::vector<std::uint32_t>& cacheSizes() const noexcept {
    return cacheBytes_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& lineSizes() const noexcept {
    return lineBytes_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& associativities()
      const noexcept {
    return assoc_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& tilings() const noexcept {
    return tiling_;
  }
  /// L2 choice list: element 0 is always 0 (= no L2).
  [[nodiscard]] const std::vector<std::uint32_t>& l2Choices() const noexcept {
    return l2Bytes_;
  }

private:
  [[nodiscard]] std::uint8_t gene(const Genome& g, Gene which) const noexcept {
    return g[static_cast<std::size_t>(which)];
  }

  DesignSpaceOptions options_;
  std::vector<std::uint32_t> cacheBytes_;
  std::vector<std::uint32_t> lineBytes_;
  std::vector<std::uint32_t> assoc_;
  std::vector<std::uint32_t> tiling_;
  std::vector<std::uint8_t> layout_;  ///< 0 = tight, 1 = optimized
  std::vector<std::uint32_t> l2Bytes_;  ///< [0, options.l2CapacityBytes...]
  std::uint64_t size_ = 0;
};

}  // namespace memx::search
