// Pareto dominance over the search objectives, plus the machinery
// NSGA-II needs on top of it: front extraction (a brute-force oracle
// and a sort-accelerated production extractor that must agree bit for
// bit), non-dominated sorting, crowding distances, and an exact 3-D
// hypervolume for the bench gate.
//
// All objectives minimize. Dominance is strict: a dominates b iff a is
// <= b in every objective and < in at least one, so it is a strict
// partial order (irreflexive, antisymmetric, transitive) — properties
// the metamorphic suite fuzzes directly.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace memx::search {

/// Minimized objective vector: {energy (nJ), cycles, size (RBE)}.
using Objectives = std::array<double, 3>;

/// True iff `a` dominates `b` (<= everywhere, < somewhere).
[[nodiscard]] bool dominates(const Objectives& a,
                             const Objectives& b) noexcept;

/// Indices of the non-dominated points, ascending. Quadratic in
/// points.size(); this is the oracle the production extractor and the
/// search front are differentially checked against.
[[nodiscard]] std::vector<std::size_t> bruteForceFront(
    std::span<const Objectives> points);

/// Same set as bruteForceFront (asserted by tests), computed by
/// lexicographic presort: any dominator of a point precedes it in lex
/// order, so each point only checks against already-accepted front
/// members. O(n log n + n * front).
[[nodiscard]] std::vector<std::size_t> nonDominatedFront(
    std::span<const Objectives> points);

/// Fast non-dominated sort: rank[i] = 0 for the first front, 1 for the
/// front once rank-0 points are removed, and so on.
[[nodiscard]] std::vector<std::uint32_t> nonDominatedRanks(
    std::span<const Objectives> points);

/// NSGA-II crowding distances of the subpopulation `members` (indices
/// into `points`), in member order. Boundary points get +infinity.
/// Ties in an objective are ordered by index, so equal inputs always
/// produce bit-identical distances.
[[nodiscard]] std::vector<double> crowdingDistances(
    std::span<const Objectives> points,
    std::span<const std::size_t> members);

/// Exact hypervolume dominated by `points` relative to reference `ref`
/// (minimization: the measure of the union of boxes [p, ref]). Points
/// not strictly below `ref` in every objective contribute nothing.
/// Sweeps the third objective, maintaining a 2-D staircase.
[[nodiscard]] double hypervolume(std::span<const Objectives> points,
                                 const Objectives& ref);

}  // namespace memx::search
