// Seed-deterministic NSGA-II over a DesignSpace.
//
// The classic loop — binary tournaments on (rank, crowding), uniform or
// arithmetic crossover, per-gene mutation, elitist environmental
// selection — with two twists that matter here:
//
//   * Every distinct genome ever evaluated lands in the evaluator's
//     archive, and the returned front is extracted over the archive,
//     not the final population: the search can only gain from points it
//     paid for.
//   * When the remaining evaluation budget covers every not-yet-visited
//     genome, the engine finishes exhaustively ("budget mop-up"). A
//     budget of at least the space size therefore guarantees the
//     *exact* Pareto front — which is what the differential oracle
//     tests exploit on small spaces.
//
// Determinism: one mt19937_64 seeded from SearchOptions::seed drives
// every stochastic choice in a fixed order, all containers iterate in
// deterministic (packed-genome) order, and all evaluation goes through
// the bit-stable sweep machinery — same seed, same front, bit for bit,
// across runs and across sweep backends.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "memx/core/explorer.hpp"
#include "memx/loopir/kernel.hpp"
#include "memx/search/design_space.hpp"
#include "memx/search/dominance.hpp"
#include "memx/search/evaluator.hpp"

namespace memx {
namespace obs {
class Recorder;
}  // namespace obs
}  // namespace memx

namespace memx::search {

/// Knobs of one search run. Defaults suit spaces of 10^3..10^6 points.
struct SearchOptions {
  std::uint64_t seed = 1;
  std::uint32_t populationSize = 64;
  std::uint32_t generations = 40;
  /// Competitors per tournament pick (>= 1; 2 = binary tournament).
  std::uint32_t tournamentSize = 2;
  double crossoverRate = 0.9;   ///< probability a pair recombines
  double mutationRate = 0.15;   ///< per-gene mutation probability
  /// Hard cap on *fresh* evaluations (archive hits are free). 0 means
  /// populationSize * (generations + 1).
  std::uint64_t maxEvaluations = 0;
  /// Finish exhaustively when the remaining budget covers every
  /// unvisited genome; the resulting front is provably exact.
  bool finishExhaustively = true;
  /// Joint space to search. When unset, Explorer::searchPareto derives
  /// a single-level space from the explorer's own options (ranges,
  /// replacement, write policy, layout choice).
  std::optional<DesignSpaceOptions> space;

  void validate() const;
};

/// One archived design with its objectives.
struct SearchPoint {
  Genome genome{};
  JointPoint decoded;
  Objectives objectives{};  ///< {energy nJ, cycles, size RBE}
};

/// Outcome of a search run.
struct SearchResult {
  std::string workload;
  /// Non-dominated set over every evaluated genome, in packed-genome
  /// order (deterministic).
  std::vector<SearchPoint> front;
  std::uint64_t evaluations = 0;   ///< fresh evaluations spent
  std::uint64_t cacheHits = 0;     ///< archive hits along the way
  std::uint32_t generations = 0;   ///< generational loops executed
  std::uint64_t spaceSize = 0;     ///< valid genomes in the space
  /// True iff every valid genome was evaluated: the front is the exact
  /// Pareto front of the space, not an approximation.
  bool exact = false;
};

/// The search driver. Owns the space and evaluator for one run.
class NsgaSearch {
public:
  NsgaSearch(Kernel kernel, DesignSpace space, ExploreOptions base,
             SearchOptions options, obs::Recorder* recorder = nullptr);

  /// Run the configured search once. Repeated calls restart from the
  /// seed but keep the warm evaluator archive (same front, zero fresh
  /// evaluations the second time).
  [[nodiscard]] SearchResult run();

  [[nodiscard]] const DesignSpace& space() const noexcept { return space_; }
  [[nodiscard]] SearchEvaluator& evaluator() noexcept { return evaluator_; }

private:
  struct Individual {
    Genome genome{};
    Objectives objectives{};
    std::uint32_t rank = 0;
    double crowding = 0.0;
  };

  [[nodiscard]] std::vector<Genome> initialPopulation(std::mt19937_64& rng);
  void rankPopulation(std::vector<Individual>& pop) const;
  [[nodiscard]] std::size_t tournament(const std::vector<Individual>& pop,
                                       std::mt19937_64& rng) const;
  [[nodiscard]] Genome crossover(const Genome& a, const Genome& b,
                                 std::mt19937_64& rng) const;
  [[nodiscard]] Genome mutate(Genome g, std::mt19937_64& rng) const;

  DesignSpace space_;
  SearchOptions options_;
  obs::Recorder* recorder_ = nullptr;
  SearchEvaluator evaluator_;
  std::string workload_;
};

}  // namespace memx::search
