// Explorer::searchPareto lives in memx_search (not memx_core) so the
// core library stays free of the search subsystem; linking the
// umbrella `memx` target (or memx_search directly) provides it.
#include "memx/core/explorer.hpp"
#include "memx/search/nsga.hpp"

namespace memx {

search::SearchResult Explorer::searchPareto(
    const Kernel& kernel, const search::SearchOptions& options) const {
  search::DesignSpaceOptions spaceOptions;
  if (options.space) {
    spaceOptions = *options.space;
  } else {
    // Default: this explorer's own single-level sweep space — same
    // ranges, same policies, same layout choice — so searchPareto with
    // plain options explores exactly what explore() would sweep.
    spaceOptions.ranges = options_.ranges;
    spaceOptions.replacements = {options_.replacement};
    spaceOptions.writePolicies = {options_.writePolicy};
    spaceOptions.sweepLayout = false;
    spaceOptions.defaultOptimizeLayout = options_.optimizeLayout;
  }
  search::NsgaSearch engine(kernel, search::DesignSpace(spaceOptions),
                            options_, options, recorder_);
  return engine.run();
}

}  // namespace memx
