#include "memx/search/evaluator.hpp"

#include <utility>

#include "memx/cachesim/hierarchy.hpp"
#include "memx/core/hierarchy_explorer.hpp"
#include "memx/energy/area_model.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/util/assert.hpp"

namespace memx::search {

namespace {

std::uint8_t geneOf(const Genome& g, Gene which) {
  return g[static_cast<std::size_t>(which)];
}

}  // namespace

SearchEvaluator::SearchEvaluator(Kernel kernel, const DesignSpace& space,
                                 ExploreOptions base,
                                 obs::Recorder* recorder)
    : kernel_(std::move(kernel)),
      space_(space),
      base_(std::move(base)),
      recorder_(recorder) {
  base_.ranges = space_.options().ranges;
}

SearchEvaluator::ComboState& SearchEvaluator::comboFor(const Genome& g) {
  const ComboKey key{geneOf(g, Gene::Replacement),
                     geneOf(g, Gene::WritePolicy), geneOf(g, Gene::Layout)};
  auto it = combos_.find(key);
  if (it != combos_.end()) return it->second;

  ExploreOptions options = base_;
  options.replacement = space_.options().replacements[key[0]];
  options.writePolicy = space_.options().writePolicies[key[1]];
  options.optimizeLayout = space_.decode(g).optimizeLayout;
  // A forced MultiSim stays forced; Auto and a forced StackDist both
  // resolve per combo (LRU/FIFO/PLRU combos analytic, Random
  // simulated) so a Random combo never trips the eligibility check.
  options.backend = base_.backend == SweepBackend::MultiSim
                        ? SweepBackend::MultiSim
                        : SweepBackend::Auto;
  ComboState state;
  state.explorer = std::make_unique<Explorer>(std::move(options));
  state.explorer->setRecorder(recorder_);
  return combos_.emplace(key, std::move(state)).first->second;
}

Objectives SearchEvaluator::toObjectives(const DesignPoint& point,
                                         const JointPoint& decoded) const {
  CacheConfig l1;
  l1.sizeBytes = decoded.key.cacheBytes;
  l1.lineBytes = decoded.key.lineBytes;
  l1.associativity = decoded.key.associativity;
  double sizeRbe = estimateArea(l1).totalRbe();
  if (decoded.l2) sizeRbe += estimateArea(*decoded.l2).totalRbe();
  return Objectives{point.energyNj, point.cycles, sizeRbe};
}

const ExplorationResult* SearchEvaluator::archive(
    std::uint8_t replacementIdx, std::uint8_t writePolicyIdx,
    std::uint8_t layoutIdx, std::uint8_t l2Idx) const {
  const auto combo =
      combos_.find(ComboKey{replacementIdx, writePolicyIdx, layoutIdx});
  if (combo == combos_.end()) return nullptr;
  const auto arch = combo->second.archives.find(l2Idx);
  if (arch == combo->second.archives.end()) return nullptr;
  return &arch->second;
}

std::vector<Objectives> SearchEvaluator::evaluate(
    const std::vector<Genome>& genomes) {
  const obs::ScopedSpan span(recorder_, "search.evaluate_batch");
  std::vector<Objectives> results(genomes.size());

  struct Pending {
    std::size_t outIdx = 0;
    Genome genome{};
    JointPoint decoded;
  };
  std::map<ComboKey, std::vector<Pending>> work;
  // First occurrence of each fresh genome in this batch, so in-batch
  // duplicates are served from the batch instead of re-entering a plan.
  std::map<std::uint64_t, std::size_t> firstSeen;
  std::vector<std::pair<std::size_t, std::size_t>> duplicates;

  std::uint64_t hits = 0;
  std::uint64_t fresh = 0;
  for (std::size_t i = 0; i < genomes.size(); ++i) {
    const Genome& g = genomes[i];
    MEMX_EXPECTS(space_.isValid(g),
                 "SearchEvaluator::evaluate requires valid genomes "
                 "(repair before evaluating)");
    JointPoint decoded = space_.decode(g);
    ComboState& state = comboFor(g);
    const std::uint8_t l2Idx = geneOf(g, Gene::L2);
    const auto arch = state.archives.find(l2Idx);
    if (arch != state.archives.end()) {
      if (const DesignPoint* p = arch->second.find(decoded.key)) {
        results[i] = toObjectives(*p, decoded);
        ++hits;
        continue;
      }
    }
    const std::uint64_t packed = space_.packed(g);
    const auto [seen, inserted] = firstSeen.try_emplace(packed, i);
    if (!inserted) {
      duplicates.emplace_back(i, seen->second);
      ++hits;
      continue;
    }
    const ComboKey key{geneOf(g, Gene::Replacement),
                       geneOf(g, Gene::WritePolicy),
                       geneOf(g, Gene::Layout)};
    work[key].push_back(Pending{i, g, std::move(decoded)});
    ++fresh;
  }

  for (auto& [comboKey, pending] : work) {
    ComboState& state = combos_.at(comboKey);
    std::vector<ConfigKey> keys;
    keys.reserve(pending.size());
    for (const Pending& p : pending) keys.push_back(p.decoded.key);
    const SweepPlan plan =
        state.explorer->planSweep(kernel_, std::move(keys));

    std::vector<DesignPoint> points(plan.keys.size());
    for (const SweepPlan::Group& group : plan.groups) {
      auto traceIt = state.traces.find(group.traceKey);
      if (traceIt == state.traces.end()) {
        Trace trace =
            state.explorer->buildGroupTrace(kernel_, group, state.patterns);
        const double activity = state.explorer->addrActivityFor(trace);
        traceIt = state.traces
                      .emplace(group.traceKey,
                               std::make_pair(std::move(trace), activity))
                      .first;
      }
      const Trace& trace = traceIt->second.first;
      const double activity = traceIt->second.second;

      SweepPlan::Group singleLevel = group;
      singleLevel.keyIndices.clear();
      std::vector<std::size_t> twoLevel;
      for (const std::size_t idx : group.keyIndices) {
        if (pending[idx].decoded.l2) {
          twoLevel.push_back(idx);
        } else {
          singleLevel.keyIndices.push_back(idx);
        }
      }
      if (!singleLevel.keyIndices.empty()) {
        state.explorer->evaluateGroup(singleLevel, trace, activity,
                                      plan.keys, points);
      }
      for (const std::size_t idx : twoLevel) {
        const JointPoint& decoded = pending[idx].decoded;
        const CacheConfig l1 = state.explorer->configFor(plan.keys[idx]);
        const HierarchyPoint hp =
            evaluateHierarchyPoint(trace, l1, *decoded.l2, base_.energy,
                                   HierarchyTiming{}, activity);
        DesignPoint point;
        point.key = plan.keys[idx];
        point.accesses = trace.size();
        point.missRate = hp.globalMissRate;
        point.cycles = hp.cycles;
        point.energyNj = hp.energyNj;
        points[idx] = point;
      }
    }

    for (std::size_t j = 0; j < pending.size(); ++j) {
      const Pending& p = pending[j];
      ExplorationResult& archive =
          state.archives[geneOf(p.genome, Gene::L2)];
      if (archive.workload.empty()) archive.workload = kernel_.name;
      archive.points.push_back(points[j]);
      results[p.outIdx] = toObjectives(points[j], p.decoded);
    }
  }

  for (const auto& [dupIdx, srcIdx] : duplicates) {
    results[dupIdx] = results[srcIdx];
  }

  evaluations_ += fresh;
  cacheHits_ += hits;
  if (recorder_ != nullptr) {
    if (fresh != 0) recorder_->counter("search.evals").add(fresh);
    if (hits != 0) recorder_->counter("search.cache_hits").add(hits);
  }
  return results;
}

}  // namespace memx::search
