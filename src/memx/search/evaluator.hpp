// Batched fitness evaluation for the search engine.
//
// Fresh genomes are grouped by their (replacement, write policy,
// layout) combo — the run-global knobs of an Explorer — and each
// combo's batch rides the existing planSweep / buildGroupTrace /
// evaluateGroup machinery, so LRU combos are served analytically by
// the StackDist backend and every combo shares traces across
// generations through a per-combo trace cache. Two-level genomes reuse
// the same shared group trace and go through evaluateHierarchyPoint.
//
// Results archive into per-(combo, L2 choice) ExplorationResults whose
// sorted find-index grows incrementally with the archive — the
// fitness cache is the archive, keyed by the canonical genome, and a
// re-evaluated genome is a pure index lookup.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "memx/core/explorer.hpp"
#include "memx/loopir/kernel.hpp"
#include "memx/search/design_space.hpp"
#include "memx/search/dominance.hpp"

namespace memx {
namespace obs {
class Recorder;
}  // namespace obs
}  // namespace memx

namespace memx::search {

/// Evaluates genomes of one DesignSpace against one kernel. The space
/// must outlive the evaluator. Not thread-safe (batch at will instead:
/// a batch is one sweep).
class SearchEvaluator {
public:
  /// `base` supplies everything the space does not sweep: energy and
  /// timing models, bus-activity measurement, write-energy accounting
  /// and the sweep backend. A forced MultiSim backend is honored
  /// everywhere; Auto (and a forced StackDist) resolve per combo, so
  /// LRU combos stay analytic while others simulate.
  SearchEvaluator(Kernel kernel, const DesignSpace& space,
                  ExploreOptions base, obs::Recorder* recorder = nullptr);

  /// Objectives for each genome (all must be valid), in input order.
  /// Previously seen genomes are archive lookups; the rest are
  /// evaluated in per-combo batches.
  [[nodiscard]] std::vector<Objectives> evaluate(
      const std::vector<Genome>& genomes);

  /// Fresh (non-cached) evaluations performed so far.
  [[nodiscard]] std::uint64_t evaluations() const noexcept {
    return evaluations_;
  }
  /// Archive hits served so far (includes duplicates within a batch).
  [[nodiscard]] std::uint64_t cacheHits() const noexcept {
    return cacheHits_;
  }

  [[nodiscard]] const DesignSpace& space() const noexcept { return space_; }
  [[nodiscard]] const Kernel& kernel() const noexcept { return kernel_; }
  [[nodiscard]] const ExploreOptions& baseOptions() const noexcept {
    return base_;
  }

  /// The archive a combo/L2 choice accumulates results in (nullptr when
  /// nothing of that slice was evaluated yet). Exposed so tests can
  /// assert the find-index stays coherent while the archive grows.
  [[nodiscard]] const ExplorationResult* archive(
      std::uint8_t replacementIdx, std::uint8_t writePolicyIdx,
      std::uint8_t layoutIdx, std::uint8_t l2Idx) const;

private:
  /// (replacement, write, layout) gene indices — one Explorer each.
  using ComboKey = std::array<std::uint8_t, 3>;

  struct ComboState {
    std::unique_ptr<Explorer> explorer;
    Explorer::PatternCache patterns;
    /// Shared group traces with their measured bus activity, keyed by
    /// SweepPlan::Group::traceKey; persists across generations.
    std::map<std::string, std::pair<Trace, double>> traces;
    /// One growing result archive per L2 gene index (ConfigKeys would
    /// collide across L2 choices in a single archive).
    std::map<std::uint8_t, ExplorationResult> archives;
  };

  ComboState& comboFor(const Genome& g);
  [[nodiscard]] Objectives toObjectives(const DesignPoint& point,
                                        const JointPoint& decoded) const;

  Kernel kernel_;
  const DesignSpace& space_;
  ExploreOptions base_;
  obs::Recorder* recorder_ = nullptr;
  std::map<ComboKey, ComboState> combos_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t cacheHits_ = 0;
};

}  // namespace memx::search
