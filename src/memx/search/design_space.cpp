#include "memx/search/design_space.hpp"

#include <algorithm>

#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"
#include "memx/util/pow2_range.hpp"

namespace memx::search {

namespace {

template <typename T>
bool hasDuplicates(std::vector<T> values) {
  std::sort(values.begin(), values.end());
  return std::adjacent_find(values.begin(), values.end()) != values.end();
}

std::vector<std::uint32_t> toU32(const std::vector<std::uint64_t>& values) {
  std::vector<std::uint32_t> out;
  out.reserve(values.size());
  for (const std::uint64_t v : values) {
    out.push_back(static_cast<std::uint32_t>(v));
  }
  return out;
}

/// Number of leading list entries <= bound (lists are ascending).
std::size_t prefixCount(const std::vector<std::uint32_t>& values,
                        std::uint64_t bound) {
  std::size_t n = 0;
  while (n < values.size() && values[n] <= bound) ++n;
  return n;
}

}  // namespace

void DesignSpaceOptions::validate() const {
  ranges.validate();
  MEMX_EXPECTS(ranges.minLineBytes <= ranges.minCacheBytes,
               "the smallest cache must admit at least one line size");
  MEMX_EXPECTS(!ranges.sweepAssociativity || ranges.maxAssociativity <= 8,
               "the cycle model tabulates associativity up to 8-way");
  MEMX_EXPECTS(!replacements.empty(), "replacement dimension is empty");
  MEMX_EXPECTS(!writePolicies.empty(), "write-policy dimension is empty");
  MEMX_EXPECTS(!hasDuplicates(replacements),
               "duplicate replacement policy in the search dimension");
  MEMX_EXPECTS(!hasDuplicates(writePolicies),
               "duplicate write policy in the search dimension");
  for (const std::uint32_t bytes : l2CapacityBytes) {
    MEMX_EXPECTS(isPow2(bytes), "L2 capacities must be powers of two");
    MEMX_EXPECTS(bytes >= 2 * ranges.minCacheBytes,
                 "an L2 candidate smaller than twice the smallest L1 can "
                 "never be selected");
  }
}

std::string JointPoint::label() const {
  std::string s = key.label();
  s += '|';
  s += toString(replacement);
  s += '|';
  s += toString(writePolicy);
  s += optimizeLayout ? "|opt" : "|tight";
  if (l2) {
    s += "|L2:";
    s += l2->label();
  }
  return s;
}

DesignSpace::DesignSpace(DesignSpaceOptions options)
    : options_(std::move(options)) {
  // Normalize the L2 candidate list before validation so equal spaces
  // compare equal regardless of the order the caller listed capacities.
  std::sort(options_.l2CapacityBytes.begin(), options_.l2CapacityBytes.end());
  options_.l2CapacityBytes.erase(
      std::unique(options_.l2CapacityBytes.begin(),
                  options_.l2CapacityBytes.end()),
      options_.l2CapacityBytes.end());
  options_.validate();

  const ExploreRanges& r = options_.ranges;
  const std::uint32_t maxCache = std::min(r.maxCacheBytes, r.onChipBytes);
  cacheBytes_ = toU32(pow2Range(r.minCacheBytes, maxCache));
  lineBytes_ = toU32(
      pow2Range(r.minLineBytes, std::min(r.maxLineBytes, maxCache)));
  assoc_ = r.sweepAssociativity ? toU32(pow2Range(1, r.maxAssociativity))
                                : std::vector<std::uint32_t>{1};
  tiling_ = r.sweepTiling ? toU32(pow2Range(1, r.maxTiling))
                          : std::vector<std::uint32_t>{1};
  layout_ = options_.sweepLayout
                ? std::vector<std::uint8_t>{0, 1}
                : std::vector<std::uint8_t>{
                      options_.defaultOptimizeLayout ? std::uint8_t{1}
                                                    : std::uint8_t{0}};
  l2Bytes_.push_back(0);
  l2Bytes_.insert(l2Bytes_.end(), options_.l2CapacityBytes.begin(),
                  options_.l2CapacityBytes.end());

  const std::size_t maxDim =
      std::max({cacheBytes_.size(), lineBytes_.size(), assoc_.size(),
                tiling_.size(), layout_.size(), l2Bytes_.size(),
                options_.replacements.size(), options_.writePolicies.size()});
  MEMX_EXPECTS(maxDim <= 256, "a genome gene indexes at most 256 values");

  // Valid-genome count, without enumeration: the (S, B, L2) freedoms
  // factor per (T, L) prefix.
  const std::uint64_t comboCount =
      static_cast<std::uint64_t>(options_.replacements.size()) *
      options_.writePolicies.size() * layout_.size();
  for (const std::uint32_t T : cacheBytes_) {
    std::uint64_t l2Count = 1;  // "none" is always valid
    for (std::size_t k = 1; k < l2Bytes_.size(); ++k) {
      if (l2Bytes_[k] >= 2ull * T) ++l2Count;
    }
    for (const std::uint32_t L : lineBytes_) {
      if (L > T) break;
      const std::uint64_t lines = T / L;
      const std::uint64_t sCount = prefixCount(assoc_, lines);
      const std::uint64_t bCount = prefixCount(tiling_, lines);
      size_ += sCount * bCount * comboCount * l2Count;
    }
  }
}

std::size_t DesignSpace::dimSize(Gene which) const {
  switch (which) {
    case Gene::CacheBytes:
      return cacheBytes_.size();
    case Gene::LineBytes:
      return lineBytes_.size();
    case Gene::Associativity:
      return assoc_.size();
    case Gene::Tiling:
      return tiling_.size();
    case Gene::Replacement:
      return options_.replacements.size();
    case Gene::WritePolicy:
      return options_.writePolicies.size();
    case Gene::Layout:
      return layout_.size();
    case Gene::L2:
      return l2Bytes_.size();
  }
  throw ContractViolation("unknown gene");
}

bool DesignSpace::isValid(const Genome& g) const {
  for (std::size_t i = 0; i < kGeneCount; ++i) {
    if (g[i] >= dimSize(static_cast<Gene>(i))) return false;
  }
  const std::uint32_t T = cacheBytes_[gene(g, Gene::CacheBytes)];
  const std::uint32_t L = lineBytes_[gene(g, Gene::LineBytes)];
  if (L > T) return false;
  const std::uint32_t lines = T / L;
  if (assoc_[gene(g, Gene::Associativity)] > lines) return false;
  if (tiling_[gene(g, Gene::Tiling)] > lines) return false;
  const std::uint32_t l2 = l2Bytes_[gene(g, Gene::L2)];
  if (l2 != 0 && l2 < 2ull * T) return false;
  return true;
}

Genome DesignSpace::repair(Genome g) const {
  for (std::size_t i = 0; i < kGeneCount; ++i) {
    const std::uint8_t last =
        static_cast<std::uint8_t>(dimSize(static_cast<Gene>(i)) - 1);
    if (g[i] > last) g[i] = last;
  }
  const std::uint32_t T = cacheBytes_[gene(g, Gene::CacheBytes)];
  auto clampTo = [&](Gene which, const std::vector<std::uint32_t>& values,
                     std::uint64_t bound) {
    // options.validate() guarantees values[0] <= bound here, so the
    // clamped prefix is never empty.
    const std::uint8_t last =
        static_cast<std::uint8_t>(prefixCount(values, bound) - 1);
    std::uint8_t& idx = g[static_cast<std::size_t>(which)];
    if (idx > last) idx = last;
  };
  clampTo(Gene::LineBytes, lineBytes_, T);
  const std::uint32_t lines = T / lineBytes_[gene(g, Gene::LineBytes)];
  clampTo(Gene::Associativity, assoc_, lines);
  clampTo(Gene::Tiling, tiling_, lines);
  std::uint8_t& l2Idx = g[static_cast<std::size_t>(Gene::L2)];
  if (l2Idx != 0 && l2Bytes_[l2Idx] < 2ull * T) l2Idx = 0;
  return g;
}

JointPoint DesignSpace::decode(const Genome& g) const {
  MEMX_EXPECTS(isValid(g), "cannot decode an invalid genome");
  JointPoint point;
  point.key = ConfigKey{cacheBytes_[gene(g, Gene::CacheBytes)],
                        lineBytes_[gene(g, Gene::LineBytes)],
                        assoc_[gene(g, Gene::Associativity)],
                        tiling_[gene(g, Gene::Tiling)]};
  point.replacement = options_.replacements[gene(g, Gene::Replacement)];
  point.writePolicy = options_.writePolicies[gene(g, Gene::WritePolicy)];
  point.optimizeLayout = layout_[gene(g, Gene::Layout)] != 0;
  const std::uint32_t l2 = l2Bytes_[gene(g, Gene::L2)];
  if (l2 != 0) {
    CacheConfig companion;
    companion.sizeBytes = l2;
    // The companion derives from the L1: double lines (inclusion needs
    // line >= L1 line), 2-way when it fits, and the same policies.
    companion.lineBytes = 2 * point.key.lineBytes;
    companion.associativity =
        std::min<std::uint32_t>(2, companion.numLines());
    companion.writePolicy = point.writePolicy;
    companion.replacement = point.replacement;
    companion.validate();
    point.l2 = companion;
  }
  return point;
}

std::uint64_t DesignSpace::packed(const Genome& g) const noexcept {
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < kGeneCount; ++i) {
    key = (key << 8) | g[i];
  }
  return key;
}

std::vector<Genome> DesignSpace::enumerate() const {
  std::vector<Genome> all;
  all.reserve(size_);
  const auto u8 = [](std::size_t v) { return static_cast<std::uint8_t>(v); };
  for (std::size_t ti = 0; ti < cacheBytes_.size(); ++ti) {
    const std::uint32_t T = cacheBytes_[ti];
    for (std::size_t li = 0; li < lineBytes_.size(); ++li) {
      if (lineBytes_[li] > T) break;
      const std::uint32_t lines = T / lineBytes_[li];
      for (std::size_t si = 0; si < assoc_.size(); ++si) {
        if (assoc_[si] > lines) break;
        for (std::size_t bi = 0; bi < tiling_.size(); ++bi) {
          if (tiling_[bi] > lines) break;
          for (std::size_t ri = 0; ri < options_.replacements.size(); ++ri) {
            for (std::size_t wi = 0; wi < options_.writePolicies.size();
                 ++wi) {
              for (std::size_t yi = 0; yi < layout_.size(); ++yi) {
                for (std::size_t hi = 0; hi < l2Bytes_.size(); ++hi) {
                  if (hi != 0 && l2Bytes_[hi] < 2ull * T) continue;
                  all.push_back(Genome{u8(ti), u8(li), u8(si), u8(bi),
                                       u8(ri), u8(wi), u8(yi), u8(hi)});
                }
              }
            }
          }
        }
      }
    }
  }
  return all;
}

Genome DesignSpace::randomGenome(std::mt19937_64& rng) const {
  // One engine draw per gene (modulo bias is negligible against 2^64),
  // so a genome costs exactly kGeneCount draws regardless of dimension
  // sizes — seed-reproducibility does not depend on library details.
  Genome g{};
  for (std::size_t i = 0; i < kGeneCount; ++i) {
    g[i] = static_cast<std::uint8_t>(rng() %
                                     dimSize(static_cast<Gene>(i)));
  }
  return repair(g);
}

}  // namespace memx::search
