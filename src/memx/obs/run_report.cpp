#include "memx/obs/run_report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "memx/util/numeric_io.hpp"

namespace memx::obs {

namespace {

std::string fmtSec(double s) { return fmtFixed(s, 6); }

/// Total length of the union of [start, end) intervals, in seconds.
/// `intervals` is sorted by start on entry.
double unionSec(std::vector<std::pair<std::int64_t, std::int64_t>>& ivs) {
  std::sort(ivs.begin(), ivs.end());
  std::int64_t total = 0;
  std::int64_t curLo = 0;
  std::int64_t curHi = -1;
  bool open = false;
  for (const auto& [lo, hi] : ivs) {
    if (!open || lo > curHi) {
      if (open) total += curHi - curLo;
      curLo = lo;
      curHi = hi;
      open = true;
    } else {
      curHi = std::max(curHi, hi);
    }
  }
  if (open) total += curHi - curLo;
  return static_cast<double>(total) * 1e-9;
}

}  // namespace

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const PhaseStat* RunReport::phase(std::string_view name) const noexcept {
  for (const PhaseStat& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::uint64_t RunReport::counter(std::string_view name) const noexcept {
  const auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

Table RunReport::phaseTable() const {
  Table t({"phase", "count", "total_s", "min_s", "max_s", "share"});
  for (const PhaseStat& p : phases) {
    const double share = wallSec > 0.0 ? p.totalSec / wallSec : 0.0;
    t.addRow({p.name, std::to_string(p.count), fmtSec(p.totalSec),
              fmtSec(p.minSec), fmtSec(p.maxSec),
              fmtFixed(100.0 * share, 1) + "%"});
  }
  return t;
}

std::string RunReport::summary() const {
  std::ostringstream os;
  os << "wall time: " << fmtSec(wallSec) << " s, " << spans.size()
     << " spans, " << workers.size() << " worker thread(s)\n";
  if (!phases.empty()) os << phaseTable() << '\n';
  if (!counters.empty()) {
    Table t({"counter", "value", "per_second"});
    for (const auto& [name, value] : counters) {
      t.addRow({name, std::to_string(value),
                wallSec > 0.0
                    ? fmtSig3(static_cast<double>(value) / wallSec)
                    : "-"});
    }
    os << t << '\n';
  }
  if (!gauges.empty()) {
    Table t({"gauge", "value"});
    for (const auto& [name, value] : gauges) {
      t.addRow({name, fmtSig3(value)});
    }
    os << t << '\n';
  }
  if (!workers.empty()) {
    Table t({"worker", "spans", "busy_s", "utilization"});
    for (const WorkerStat& w : workers) {
      t.addRow({"tid" + std::to_string(w.tid), std::to_string(w.spans),
                fmtSec(w.busySec), fmtFixed(100.0 * w.utilization, 1) + "%"});
    }
    os << t << '\n';
  }
  return os.str();
}

void RunReport::writeChromeTrace(std::ostream& os) const {
  // Both JSON sinks stream doubles: the classic locale keeps the output
  // RFC-8259 parseable when the daemon runs under a ','-decimal locale.
  const ClassicLocaleGuard locale(os);
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const WorkerStat& w : workers) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << w.tid << ",\"args\":{\"name\":\"worker-" << w.tid << "\"}}";
  }
  for (const SpanRecord& s : spans) {
    sep();
    os << "{\"name\":\"" << jsonEscape(s.name)
       << "\",\"cat\":\"memx\",\"ph\":\"X\",\"ts\":"
       << static_cast<double>(s.startNs) * 1e-3
       << ",\"dur\":" << static_cast<double>(s.endNs - s.startNs) * 1e-3
       << ",\"pid\":0,\"tid\":" << s.tid << "}";
  }
  os << "\n]}\n";
}

void RunReport::writeJson(std::ostream& os) const {
  const ClassicLocaleGuard locale(os);
  os << "{\"wall_seconds\":" << wallSec << ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseStat& p = phases[i];
    os << (i ? "," : "") << "{\"name\":\"" << jsonEscape(p.name)
       << "\",\"count\":" << p.count << ",\"total_seconds\":" << p.totalSec
       << ",\"min_seconds\":" << p.minSec
       << ",\"max_seconds\":" << p.maxSec << "}";
  }
  os << "],\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ",") << "\"" << jsonEscape(name) << "\":" << value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "" : ",") << "\"" << jsonEscape(name) << "\":" << value;
    first = false;
  }
  os << "},\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerStat& w = workers[i];
    os << (i ? "," : "") << "{\"tid\":" << w.tid << ",\"spans\":" << w.spans
       << ",\"busy_seconds\":" << w.busySec
       << ",\"utilization\":" << w.utilization << "}";
  }
  os << "]}";
}

/// Defined here (not in recorder.cpp) so report construction logic lives
/// next to the report type; declared in recorder.hpp.
RunReport buildReport(std::vector<SpanRecord> spans,
                      std::map<std::string, std::uint64_t> counters,
                      std::map<std::string, double> gauges) {
  RunReport report;
  report.counters = std::move(counters);
  report.gauges = std::move(gauges);
  report.spans = std::move(spans);
  std::sort(report.spans.begin(), report.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.startNs < b.startNs;
            });

  if (!report.spans.empty()) {
    std::int64_t lo = report.spans.front().startNs;
    std::int64_t hi = lo;
    for (const SpanRecord& s : report.spans) hi = std::max(hi, s.endNs);
    report.wallSec = static_cast<double>(hi - lo) * 1e-9;
  }

  std::map<std::string, PhaseStat> phases;
  std::map<std::uint32_t,
           std::vector<std::pair<std::int64_t, std::int64_t>>>
      perWorker;
  for (const SpanRecord& s : report.spans) {
    const double sec = s.durationSec();
    auto [it, inserted] = phases.try_emplace(s.name);
    PhaseStat& p = it->second;
    if (inserted) {
      p.name = s.name;
      p.minSec = sec;
      p.maxSec = sec;
    }
    p.count += 1;
    p.totalSec += sec;
    p.minSec = std::min(p.minSec, sec);
    p.maxSec = std::max(p.maxSec, sec);
    perWorker[s.tid].emplace_back(s.startNs, s.endNs);
  }
  for (auto& [name, stat] : phases) report.phases.push_back(stat);
  std::stable_sort(report.phases.begin(), report.phases.end(),
                   [](const PhaseStat& a, const PhaseStat& b) {
                     return a.totalSec > b.totalSec;
                   });

  for (auto& [tid, intervals] : perWorker) {
    WorkerStat w;
    w.tid = tid;
    w.spans = intervals.size();
    w.busySec = unionSec(intervals);
    w.utilization = report.wallSec > 0.0 ? w.busySec / report.wallSec : 0.0;
    report.workers.push_back(w);
  }
  return report;
}

}  // namespace memx::obs
