#include "memx/obs/recorder.hpp"

namespace memx::obs {

// Implemented in run_report.cpp next to the RunReport type.
RunReport buildReport(std::vector<SpanRecord> spans,
                      std::map<std::string, std::uint64_t> counters,
                      std::map<std::string, double> gauges);

Counter& Recorder::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::piecewise_construct,
                           std::forward_as_tuple(name),
                           std::forward_as_tuple())
      .first->second;
}

std::uint64_t Recorder::counterValue(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void Recorder::setGauge(std::string_view name, double value) {
  const std::scoped_lock lock(mutex_);
  gauges_.insert_or_assign(std::string(name), value);
}

std::uint32_t Recorder::threadIndex() {
  const std::scoped_lock lock(mutex_);
  const auto [it, inserted] = threads_.try_emplace(
      std::this_thread::get_id(),
      static_cast<std::uint32_t>(threads_.size()));
  return it->second;
}

void Recorder::recordSpan(std::string_view name, std::uint32_t tid,
                          std::int64_t startNs, std::int64_t endNs) {
  SpanRecord span;
  span.name = std::string(name);
  span.tid = tid;
  span.startNs = startNs;
  span.endNs = endNs;
  const std::scoped_lock lock(mutex_);
  spans_.push_back(std::move(span));
}

std::size_t Recorder::spanCount() const {
  const std::scoped_lock lock(mutex_);
  return spans_.size();
}

RunReport Recorder::report() const {
  std::vector<SpanRecord> spans;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  {
    const std::scoped_lock lock(mutex_);
    spans = spans_;
    for (const auto& [name, counter] : counters_) {
      counters.emplace(name, counter.value());
    }
    for (const auto& [name, value] : gauges_) gauges.emplace(name, value);
  }
  return buildReport(std::move(spans), std::move(counters),
                     std::move(gauges));
}

}  // namespace memx::obs
