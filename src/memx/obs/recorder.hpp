// Lightweight run instrumentation: named counters, gauges, and scoped
// monotonic phase timers feeding a per-run RunReport.
//
// Design rules:
//   - No sink, no cost: every instrumentation site takes a `Recorder*`
//     and the null case is one predictable branch — no clock reads, no
//     locks, no allocation. Results are never affected either way; the
//     recorder only observes.
//   - Thread-safe: counters are lock-free atomics behind a registry
//     lock taken only on first use of a name; completed spans append
//     under a mutex (one lock per span, i.e. per trace group — far off
//     the per-access hot path).
//   - Monotonic: all times come from steady_clock relative to the
//     recorder's construction epoch, so spans from different workers
//     interleave correctly in the exported timeline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "memx/obs/run_report.hpp"

namespace memx::obs {

/// A named monotonically increasing value. Lock-free; references stay
/// valid for the owning Recorder's lifetime.
class Counter {
public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::uint64_t> value_{0};
};

/// Collects spans, counters, and gauges for one run. All members are
/// safe to call concurrently from any thread.
class Recorder {
public:
  Recorder() : epoch_(std::chrono::steady_clock::now()) {}
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// The counter registered under `name` (created zero on first use).
  /// The reference stays valid until the Recorder is destroyed, so hot
  /// loops can look it up once and bump it without the registry lock.
  [[nodiscard]] Counter& counter(std::string_view name);

  /// Current value of `name` (0 when never bumped).
  [[nodiscard]] std::uint64_t counterValue(std::string_view name) const;

  /// Record the latest value of a named gauge (last write wins).
  void setGauge(std::string_view name, double value);

  /// Dense index of the calling thread (0, 1, 2, ... in first-seen
  /// order). Stable for the recorder's lifetime; used as the trace tid.
  [[nodiscard]] std::uint32_t threadIndex();

  /// Monotonic nanoseconds since this recorder's construction.
  [[nodiscard]] std::int64_t nowNs() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Append one completed span (ScopedSpan calls this from its
  /// destructor; direct use is fine for externally timed intervals).
  void recordSpan(std::string_view name, std::uint32_t tid,
                  std::int64_t startNs, std::int64_t endNs);

  [[nodiscard]] std::size_t spanCount() const;

  /// Snapshot everything collected so far into an aggregated report.
  [[nodiscard]] RunReport report() const;

private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  /// std::map keeps node addresses stable across inserts, which is what
  /// lets counter() hand out long-lived references.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::thread::id, std::uint32_t> threads_;
  std::vector<SpanRecord> spans_;
};

/// RAII phase timer. Records a span named `name` covering its lifetime
/// on the calling thread; with a null recorder it does nothing (the
/// null-sink fast path — a single branch, no clock read).
///
/// `name` is captured by reference: pass a string literal or a string
/// that outlives the span.
class ScopedSpan {
public:
  ScopedSpan(Recorder* recorder, std::string_view name)
      : recorder_(recorder) {
    if (recorder_ == nullptr) return;
    name_ = name;
    tid_ = recorder_->threadIndex();
    startNs_ = recorder_->nowNs();
  }

  ~ScopedSpan() {
    if (recorder_ == nullptr) return;
    // A throwing sink must not turn an in-flight exception into
    // std::terminate; losing one span is the better failure mode.
    try {
      recorder_->recordSpan(name_, tid_, startNs_, recorder_->nowNs());
    } catch (...) {
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
  Recorder* recorder_;
  std::string_view name_;
  std::uint32_t tid_ = 0;
  std::int64_t startNs_ = 0;
};

}  // namespace memx::obs
