// Aggregated view of one instrumented run.
//
// A RunReport is a snapshot of everything a Recorder collected: completed
// spans, counters, and gauges, folded into per-phase wall-time statistics
// and per-worker utilization. Two sinks render it: a human-readable
// summary (column-aligned tables via memx/report/table) and Chrome
// trace-event JSON that chrome://tracing / Perfetto load directly, which
// turns the parallel explorer's group-queue drain into a visual timeline.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "memx/report/table.hpp"

namespace memx::obs {

/// One completed span: a named [start, end) interval on one thread.
/// Times are nanoseconds since the owning Recorder's epoch.
struct SpanRecord {
  std::string name;
  std::uint32_t tid = 0;  ///< recorder-assigned dense thread index
  std::int64_t startNs = 0;
  std::int64_t endNs = 0;

  [[nodiscard]] double durationSec() const noexcept {
    return static_cast<double>(endNs - startNs) * 1e-9;
  }
};

/// Wall-time statistics of all spans sharing one name.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  double totalSec = 0.0;
  double minSec = 0.0;
  double maxSec = 0.0;
};

/// Busy time of one thread, nested spans counted once (interval union).
struct WorkerStat {
  std::uint32_t tid = 0;
  std::uint64_t spans = 0;
  double busySec = 0.0;
  double utilization = 0.0;  ///< busySec / report wall time
};

/// Everything a run recorded, aggregated. Plain data: safe to copy, hold
/// past the Recorder's lifetime, and serialize from another thread.
struct RunReport {
  /// First span start to last span end (0 when no spans were recorded).
  double wallSec = 0.0;
  std::vector<PhaseStat> phases;    ///< sorted by totalSec, descending
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::vector<WorkerStat> workers;  ///< sorted by tid
  std::vector<SpanRecord> spans;    ///< chronological by startNs

  /// Phase stats by name; nullptr when the phase never ran.
  [[nodiscard]] const PhaseStat* phase(std::string_view name) const noexcept;
  /// Counter value by name (0 when never bumped).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;

  /// Phase table alone (name / count / total / min / max / share).
  [[nodiscard]] Table phaseTable() const;
  /// Full human-readable summary: phases, counters with per-second
  /// rates over the wall time, gauges, and per-worker utilization.
  [[nodiscard]] std::string summary() const;

  /// Chrome trace-event JSON ("X" complete events, ts/dur in µs) plus
  /// thread-name metadata. Load via chrome://tracing or ui.perfetto.dev.
  void writeChromeTrace(std::ostream& os) const;
  /// Machine-readable report (phases/counters/gauges/workers) as one
  /// JSON object, for embedding into BENCH_*.json files.
  void writeJson(std::ostream& os) const;
};

/// `s` with JSON string escapes applied (quotes, backslashes, control
/// characters), without the surrounding quotes.
[[nodiscard]] std::string jsonEscape(std::string_view s);

}  // namespace memx::obs
