#include "memx/core/selection.hpp"

#include "memx/energy/area_model.hpp"
#include <algorithm>
#include <limits>

namespace memx {

namespace {

bool energyLess(const DesignPoint& a, const DesignPoint& b) {
  if (a.energyNj != b.energyNj) return a.energyNj < b.energyNj;
  if (a.cycles != b.cycles) return a.cycles < b.cycles;
  return a.key < b.key;
}

bool cyclesLess(const DesignPoint& a, const DesignPoint& b) {
  if (a.cycles != b.cycles) return a.cycles < b.cycles;
  if (a.energyNj != b.energyNj) return a.energyNj < b.energyNj;
  return a.key < b.key;
}

}  // namespace

std::optional<DesignPoint> minEnergyPoint(
    std::span<const DesignPoint> points, std::optional<double> cycleBound) {
  std::optional<DesignPoint> best;
  for (const DesignPoint& p : points) {
    if (cycleBound && p.cycles > *cycleBound) continue;
    if (!best || energyLess(p, *best)) best = p;
  }
  return best;
}

std::optional<DesignPoint> minCyclePoint(
    std::span<const DesignPoint> points, std::optional<double> energyBound) {
  std::optional<DesignPoint> best;
  for (const DesignPoint& p : points) {
    if (energyBound && p.energyNj > *energyBound) continue;
    if (!best || cyclesLess(p, *best)) best = p;
  }
  return best;
}

std::vector<DesignPoint> paretoFront(std::span<const DesignPoint> points) {
  std::vector<DesignPoint> sorted(points.begin(), points.end());
  std::sort(sorted.begin(), sorted.end(), cyclesLess);
  std::vector<DesignPoint> front;
  double bestEnergy = std::numeric_limits<double>::infinity();
  for (const DesignPoint& p : sorted) {
    if (p.energyNj < bestEnergy) {
      front.push_back(p);
      bestEnergy = p.energyNj;
    }
  }
  return front;
}

std::optional<DesignPoint> minEdpPoint(
    std::span<const DesignPoint> points) {
  std::optional<DesignPoint> best;
  double bestEdp = std::numeric_limits<double>::infinity();
  for (const DesignPoint& p : points) {
    const double edp = p.energyNj * p.cycles;
    if (!best || edp < bestEdp ||
        (edp == bestEdp && energyLess(p, *best))) {
      best = p;
      bestEdp = edp;
    }
  }
  return best;
}

std::optional<DesignPoint> minEnergyPointWithinArea(
    std::span<const DesignPoint> points, double maxAreaRbe) {
  std::optional<DesignPoint> best;
  for (const DesignPoint& p : points) {
    if (estimateArea(p.cacheConfig()).totalRbe() > maxAreaRbe) continue;
    if (!best || energyLess(p, *best)) best = p;
  }
  return best;
}

std::optional<DesignPoint> bestUnderBounds(
    std::span<const DesignPoint> points, std::optional<double> cycleBound,
    std::optional<double> energyBound) {
  std::optional<DesignPoint> best;
  for (const DesignPoint& p : points) {
    if (cycleBound && p.cycles > *cycleBound) continue;
    if (energyBound && p.energyNj > *energyBound) continue;
    if (!best || energyLess(p, *best)) best = p;
  }
  return best;
}

}  // namespace memx
