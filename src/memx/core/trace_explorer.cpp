#include "memx/core/trace_explorer.hpp"

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/cachesim/cache_sim.hpp"
#include "memx/timing/cycle_model.hpp"

namespace memx {

DesignPoint evaluateTracePoint(const Trace& trace, const CacheConfig& cache,
                               const ExploreOptions& options) {
  cache.validate();
  options.energy.validate();

  CacheConfig config = cache;
  config.writePolicy = options.writePolicy;
  config.replacement = options.replacement;

  const CacheStats stats = simulateTrace(config, trace);
  const double addBs = options.measureBusActivity
                           ? measureAddrActivity(trace)
                           : kDefaultAddrSwitchesPerAccess;
  const CycleModel cycleModel(options.timing);
  const CacheEnergyModel energyModel(config, options.energy, addBs);

  DesignPoint point;
  point.key = ConfigKey{config.sizeBytes, config.lineBytes,
                        config.associativity, 1};
  point.accesses = stats.accesses();
  point.missRate = stats.missRate();
  point.cycles = cycleModel.cycles(stats, config, 1);
  point.energyNj = energyModel.totalNj(stats);
  return point;
}

ExplorationResult exploreTrace(const std::string& name, const Trace& trace,
                               const ExploreOptions& options) {
  ExploreOptions o = options;
  o.ranges.sweepTiling = false;
  const Explorer grid(o);  // reuse the sweep-key generator

  ExplorationResult result;
  result.workload = name;
  for (const ConfigKey& key : grid.sweepKeys()) {
    CacheConfig cache;
    cache.sizeBytes = key.cacheBytes;
    cache.lineBytes = key.lineBytes;
    cache.associativity = key.associativity;
    result.points.push_back(evaluateTracePoint(trace, cache, o));
  }
  return result;
}

}  // namespace memx
