#include "memx/core/trace_explorer.hpp"

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/multi_sim.hpp"
#include "memx/stackdist/stackdist_sim.hpp"
#include "memx/timing/cycle_model.hpp"

namespace memx {

namespace {

DesignPoint foldTracePoint(const CacheConfig& config, const CacheStats& stats,
                           double addBs, const ExploreOptions& options,
                           const CycleModel& cycleModel) {
  const CacheEnergyModel energyModel(config, options.energy, addBs);
  DesignPoint point;
  point.key = ConfigKey{config.sizeBytes, config.lineBytes,
                        config.associativity, 1};
  point.accesses = stats.accesses();
  point.missRate = stats.missRate();
  point.cycles = cycleModel.cycles(stats, config, 1);
  point.energyNj = energyModel.totalNj(stats);
  return point;
}

}  // namespace

DesignPoint evaluateTracePoint(const Trace& trace, const CacheConfig& cache,
                               const ExploreOptions& options) {
  cache.validate();
  options.energy.validate();

  CacheConfig config = cache;
  config.writePolicy = options.writePolicy;
  config.replacement = options.replacement;

  const CacheStats stats = simulateTrace(config, trace);
  const double addBs = options.measureBusActivity
                           ? measureAddrActivity(trace)
                           : kDefaultAddrSwitchesPerAccess;
  const CycleModel cycleModel(options.timing);
  return foldTracePoint(config, stats, addBs, options, cycleModel);
}

ExplorationResult exploreTrace(const std::string& name, const Trace& trace,
                               const ExploreOptions& options) {
  ExploreOptions o = options;
  o.ranges.sweepTiling = false;
  const Explorer grid(o);  // reuse the sweep-key generator; validates

  // The trace is fixed, so the whole (T, L, S) grid is one config bank:
  // a single trace pass, with the bus activity measured once instead of
  // per point. The bank honors the same backend resolution explore()
  // uses (stack-distance profiles for LRU/write-allocate runs,
  // MultiCacheSim otherwise).
  const std::vector<ConfigKey> keys = grid.sweepKeys();
  std::vector<CacheConfig> configs;
  configs.reserve(keys.size());
  for (const ConfigKey& key : keys) configs.push_back(grid.configFor(key));

  ExplorationResult result;
  result.workload = name;
  if (keys.empty()) return result;

  const std::vector<CacheStats> stats =
      grid.resolvedBackend() == SweepBackend::StackDist
          ? stackDistStats(configs, trace)
          : simulateTraceMulti(configs, trace);
  const double addBs = o.measureBusActivity
                           ? measureAddrActivity(trace)
                           : kDefaultAddrSwitchesPerAccess;
  const CycleModel cycleModel(o.timing);
  result.points.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    result.points.push_back(
        foldTracePoint(configs[i], stats[i], addBs, o, cycleModel));
  }
  return result;
}

}  // namespace memx
