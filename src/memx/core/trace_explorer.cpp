#include "memx/core/trace_explorer.hpp"

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/multi_sim.hpp"
#include "memx/stackdist/stackdist_sim.hpp"
#include "memx/timing/cycle_model.hpp"

namespace memx {

namespace {

DesignPoint foldTracePoint(const CacheConfig& config, const CacheStats& stats,
                           double addBs, const ExploreOptions& options,
                           const CycleModel& cycleModel) {
  const CacheEnergyModel energyModel(config, options.energy, addBs);
  DesignPoint point;
  point.key = ConfigKey{config.sizeBytes, config.lineBytes,
                        config.associativity, 1};
  point.accesses = stats.accesses();
  point.missRate = stats.missRate();
  point.cycles = cycleModel.cycles(stats, config, 1);
  point.energyNj = energyModel.totalNj(stats);
  return point;
}

/// Tees every delivered reference into a BusMonitor (when measuring bus
/// activity) on its way to the replay loop, so the streamed path gets
/// Add_bs from the same single pass instead of a second trace scan.
class MeterSource final : public TraceSource {
public:
  MeterSource(TraceSource& inner, BusMonitor* bus)
      : inner_(&inner), bus_(bus) {}

  [[nodiscard]] std::optional<MemRef> next() override {
    auto ref = inner_->next();
    if (ref && bus_ != nullptr) bus_->observe(*ref);
    return ref;
  }
  [[nodiscard]] IngestStats ingest() const override {
    return inner_->ingest();
  }

private:
  TraceSource* inner_;
  BusMonitor* bus_;
};

/// Counted-region results of one streamed replay.
struct StreamedReplay {
  std::vector<CacheStats> stats;  ///< per-member, warmup excluded
  double addBs = 0.0;             ///< counted-region Add_bs
};

/// Drive `bank` (MultiCacheSim or StackDistSim — same run/stats
/// interface) from `source` under `window`. Warmup exclusion is a
/// snapshot subtraction: every CacheStats and BusStats field is an
/// additive accumulator, so counted = end - warmup boundary.
template <typename Bank>
StreamedReplay replayStreamed(Bank& bank, std::size_t members,
                              TraceSource& source, const TraceWindow& window,
                              bool measureBus, std::size_t chunkRefs,
                              obs::Recorder* recorder) {
  obs::ScopedSpan ingestSpan(recorder, "trace.ingest");
  const IngestStats ingestBase = source.ingest();

  WindowedSource windowed(source, window);
  BusMonitor bus;
  MeterSource metered(windowed, measureBus ? &bus : nullptr);

  std::vector<CacheStats> base(members);
  BusStats busBase;
  if (window.warmup > 0) {
    obs::ScopedSpan warmSpan(recorder, "trace.warmup");
    WindowedSource warm(metered, TraceWindow{0, 0, window.warmup});
    bank.run(warm, chunkRefs);
    for (std::size_t i = 0; i < members; ++i) base[i] = bank.stats(i);
    busBase = bus.stats();
  }
  {
    obs::ScopedSpan replaySpan(recorder, "trace.replay");
    bank.run(metered, chunkRefs);
  }

  if (recorder != nullptr) {
    const IngestStats ingestEnd = source.ingest();
    recorder->counter("trace.bytes_read")
        .add(ingestEnd.bytesRead - ingestBase.bytesRead);
    recorder->counter("trace.refs_decoded")
        .add(ingestEnd.refsDecoded - ingestBase.refsDecoded);
  }

  StreamedReplay out;
  out.stats.reserve(members);
  for (std::size_t i = 0; i < members; ++i) {
    out.stats.push_back(bank.stats(i) - base[i]);
  }
  const BusStats busEnd = bus.stats();
  const std::uint64_t busAccesses = busEnd.accesses - busBase.accesses;
  // With a trivial window this division is bit-for-bit the one
  // measureAddrActivity performs, keeping streamed DesignPoints
  // identical to the materialized path.
  out.addBs =
      busAccesses == 0
          ? 0.0
          : static_cast<double>(busEnd.addrBitSwitches -
                                busBase.addrBitSwitches) /
                static_cast<double>(busAccesses);
  return out;
}

}  // namespace

DesignPoint evaluateTracePoint(const Trace& trace, const CacheConfig& cache,
                               const ExploreOptions& options) {
  cache.validate();
  options.energy.validate();

  CacheConfig config = cache;
  config.writePolicy = options.writePolicy;
  config.replacement = options.replacement;

  const CacheStats stats = simulateTrace(config, trace);
  const double addBs = options.measureBusActivity
                           ? measureAddrActivity(trace)
                           : kDefaultAddrSwitchesPerAccess;
  const CycleModel cycleModel(options.timing);
  return foldTracePoint(config, stats, addBs, options, cycleModel);
}

ExplorationResult exploreTrace(const std::string& name, const Trace& trace,
                               const ExploreOptions& options) {
  ExploreOptions o = options;
  o.ranges.sweepTiling = false;
  const Explorer grid(o);  // reuse the sweep-key generator; validates

  // The trace is fixed, so the whole (T, L, S) grid is one config bank:
  // a single trace pass, with the bus activity measured once instead of
  // per point. The bank honors the same backend resolution explore()
  // uses (stack-distance profiles for LRU/write-allocate runs,
  // MultiCacheSim otherwise).
  const std::vector<ConfigKey> keys = grid.sweepKeys();
  std::vector<CacheConfig> configs;
  configs.reserve(keys.size());
  for (const ConfigKey& key : keys) configs.push_back(grid.configFor(key));

  ExplorationResult result;
  result.workload = name;
  if (keys.empty()) return result;

  const std::vector<CacheStats> stats =
      grid.resolvedBackend() == SweepBackend::StackDist
          ? stackDistStats(configs, trace)
          : simulateTraceMulti(configs, trace);
  const double addBs = o.measureBusActivity
                           ? measureAddrActivity(trace)
                           : kDefaultAddrSwitchesPerAccess;
  const CycleModel cycleModel(o.timing);
  result.points.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    result.points.push_back(
        foldTracePoint(configs[i], stats[i], addBs, o, cycleModel));
  }
  return result;
}

DesignPoint evaluateTracePoint(TraceSource& source, const CacheConfig& cache,
                               const ExploreOptions& options,
                               const TraceWindow& window,
                               std::size_t chunkRefs,
                               obs::Recorder* recorder) {
  cache.validate();
  options.energy.validate();

  CacheConfig config = cache;
  config.writePolicy = options.writePolicy;
  config.replacement = options.replacement;

  // A one-member MultiCacheSim bank replays exactly as simulateTrace
  // does (same default seed), so the trivial-window result matches the
  // Trace overload bit for bit.
  MultiCacheSim bank({config});
  const StreamedReplay replay =
      replayStreamed(bank, 1, source, window, options.measureBusActivity,
                     chunkRefs, recorder);
  const double addBs = options.measureBusActivity
                           ? replay.addBs
                           : kDefaultAddrSwitchesPerAccess;
  const CycleModel cycleModel(options.timing);
  return foldTracePoint(config, replay.stats[0], addBs, options, cycleModel);
}

ExplorationResult exploreTrace(const std::string& name, TraceSource& source,
                               const ExploreOptions& options,
                               const TraceWindow& window,
                               std::size_t chunkRefs,
                               obs::Recorder* recorder) {
  ExploreOptions o = options;
  o.ranges.sweepTiling = false;
  const Explorer grid(o);  // reuse the sweep-key generator; validates

  const std::vector<ConfigKey> keys = grid.sweepKeys();
  std::vector<CacheConfig> configs;
  configs.reserve(keys.size());
  for (const ConfigKey& key : keys) configs.push_back(grid.configFor(key));

  ExplorationResult result;
  result.workload = name;
  if (keys.empty()) return result;

  // One bank, one pass over the stream, same backend resolution as the
  // Trace overload. The two bank types share the run/stats interface,
  // so one driver serves both.
  StreamedReplay replay;
  if (grid.resolvedBackend() == SweepBackend::StackDist) {
    StackDistSim bank(configs);
    replay = replayStreamed(bank, configs.size(), source, window,
                            o.measureBusActivity, chunkRefs, recorder);
  } else {
    MultiCacheSim bank(configs);
    replay = replayStreamed(bank, configs.size(), source, window,
                            o.measureBusActivity, chunkRefs, recorder);
  }
  const double addBs = o.measureBusActivity ? replay.addBs
                                            : kDefaultAddrSwitchesPerAccess;
  const CycleModel cycleModel(o.timing);
  result.points.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    result.points.push_back(
        foldTracePoint(configs[i], replay.stats[i], addBs, o, cycleModel));
  }
  return result;
}

}  // namespace memx
