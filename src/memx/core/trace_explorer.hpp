// MemExplore over a fixed reference trace.
//
// The kernel-based Explorer regenerates traces per tiling/layout; this
// entry point sweeps (T, L, S) over a trace that already exists — an
// instruction-fetch stream, a Dinero file, or any recorded workload.
#pragma once

#include <string>

#include "memx/core/explorer.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/trace/trace.hpp"
#include "memx/trace/trace_source.hpp"

namespace memx {

/// Evaluate one cache configuration against a fixed trace using the
/// paper's cycle and energy models (tiling term B = 1).
[[nodiscard]] DesignPoint evaluateTracePoint(const Trace& trace,
                                             const CacheConfig& cache,
                                             const ExploreOptions& options);

/// Sweep every (T, L, S) of `options.ranges` over `trace`. Tiling is not
/// applicable to a fixed trace; all points carry B = 1.
[[nodiscard]] ExplorationResult exploreTrace(const std::string& name,
                                             const Trace& trace,
                                             const ExploreOptions& options);

// Streamed variants: identical models and statistics, but the trace is
// pulled from a TraceSource in chunks of `chunkRefs` references, so
// out-of-core traces (e.g. a FileTraceSource over a .din.gz) evaluate
// in memory bounded by the chunk size, independent of trace length.
// With a trivial window the results are bit-identical to materializing
// the stream and calling the Trace overloads — same replay order, same
// integer statistics, same Add_bs double.
//
// `window` drops `skip` references, replays `warmup` references to
// prime cache (and bus) state without counting them, then counts up to
// `limit` references (0 = to exhaustion). Warmup exclusion is exact:
// every statistic is an additive accumulator, so the counted-region
// stats are end-of-run minus the warmup-boundary snapshot.
//
// `recorder`, when non-null, receives `trace.bytes_read` /
// `trace.refs_decoded` counter deltas (from the source's IngestStats)
// and `trace.ingest` / `trace.warmup` / `trace.replay` spans.

/// Streamed single-configuration evaluation (simulation backend).
[[nodiscard]] DesignPoint evaluateTracePoint(
    TraceSource& source, const CacheConfig& cache,
    const ExploreOptions& options, const TraceWindow& window = {},
    std::size_t chunkRefs = kDefaultTraceChunkRefs,
    obs::Recorder* recorder = nullptr);

/// Streamed (T, L, S) sweep. Honors the same backend resolution as the
/// Trace overload: one stack-distance pass for LRU/write-allocate
/// sweeps, a MultiCacheSim bank otherwise.
[[nodiscard]] ExplorationResult exploreTrace(
    const std::string& name, TraceSource& source,
    const ExploreOptions& options, const TraceWindow& window = {},
    std::size_t chunkRefs = kDefaultTraceChunkRefs,
    obs::Recorder* recorder = nullptr);

}  // namespace memx
