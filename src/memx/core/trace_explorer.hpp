// MemExplore over a fixed reference trace.
//
// The kernel-based Explorer regenerates traces per tiling/layout; this
// entry point sweeps (T, L, S) over a trace that already exists — an
// instruction-fetch stream, a Dinero file, or any recorded workload.
#pragma once

#include <string>

#include "memx/core/explorer.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

/// Evaluate one cache configuration against a fixed trace using the
/// paper's cycle and energy models (tiling term B = 1).
[[nodiscard]] DesignPoint evaluateTracePoint(const Trace& trace,
                                             const CacheConfig& cache,
                                             const ExploreOptions& options);

/// Sweep every (T, L, S) of `options.ranges` over `trace`. Tiling is not
/// applicable to a fixed trace; all points carry B = 1.
[[nodiscard]] ExplorationResult exploreTrace(const std::string& name,
                                             const Trace& trace,
                                             const ExploreOptions& options);

}  // namespace memx
