// Two-level (L1 + L2) exploration — the paper's MemExplore loop extended
// one memory level down.
//
// Energy: every access pays the L1 hit energy; L1 misses add the L2
// access energy; L2 misses add the I/O + main-memory energy of the L2's
// line. Cycles use the two-level latency model. Both levels sweep in
// powers of two, inclusion constraints enforced.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memx/cachesim/cache_config.hpp"
#include "memx/cachesim/hierarchy.hpp"
#include "memx/core/explorer.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

namespace obs {
class Recorder;
}  // namespace obs

/// One evaluated (L1, L2) pair.
struct HierarchyPoint {
  CacheConfig l1;
  CacheConfig l2;
  double l1MissRate = 0.0;
  double globalMissRate = 0.0;  ///< off-chip accesses / processor accesses
  double cycles = 0.0;
  double energyNj = 0.0;

  [[nodiscard]] std::string label() const;
};

/// Sweep ranges of a two-level exploration.
struct HierarchyRanges {
  std::uint32_t minL1Bytes = 32;
  std::uint32_t maxL1Bytes = 256;
  std::uint32_t l1LineBytes = 8;
  std::uint32_t minL2Bytes = 256;
  std::uint32_t maxL2Bytes = 4096;
  std::uint32_t l2LineBytes = 16;
  std::uint32_t l2Associativity = 2;

  void validate() const;
};

/// Evaluate one (l1, l2) pair on `trace`.
[[nodiscard]] HierarchyPoint evaluateHierarchyPoint(
    const Trace& trace, const CacheConfig& l1, const CacheConfig& l2,
    const EnergyParams& energy = {}, const HierarchyTiming& timing = {});

/// Same, with the trace's address-bus activity supplied by the caller so
/// a sweep measures it once instead of re-walking the trace per point.
[[nodiscard]] HierarchyPoint evaluateHierarchyPoint(
    const Trace& trace, const CacheConfig& l1, const CacheConfig& l2,
    const EnergyParams& energy, const HierarchyTiming& timing,
    double addBs);

/// Sweep every valid (L1, L2) pair (L2 >= L1) over `trace`. `recorder`
/// (optional) collects an "exploreHierarchy" span, per-point
/// "hierarchy.point" spans, and hierarchy.points / hierarchy.accesses
/// counters; results are identical with or without it.
[[nodiscard]] std::vector<HierarchyPoint> exploreHierarchy(
    const Trace& trace, const HierarchyRanges& ranges,
    const EnergyParams& energy = {}, const HierarchyTiming& timing = {},
    obs::Recorder* recorder = nullptr);

}  // namespace memx
