// Bound-constrained configuration selection (the paper's end goal):
// the minimum-energy configuration if time is the hard constraint, or the
// minimum-time configuration if energy is the hard constraint — plus the
// full energy-time Pareto frontier for unconstrained trade-off studies.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "memx/core/design_point.hpp"

namespace memx {

/// The point with minimal energy among those with cycles <= cycleBound
/// (no bound = global energy minimum). Ties broken by fewer cycles, then
/// smaller cache. Returns nullopt when no point meets the bound.
[[nodiscard]] std::optional<DesignPoint> minEnergyPoint(
    std::span<const DesignPoint> points,
    std::optional<double> cycleBound = std::nullopt);

/// The point with minimal cycles among those with energy <= energyBound
/// (no bound = global cycle minimum). Ties broken by lower energy, then
/// smaller cache. Returns nullopt when no point meets the bound.
[[nodiscard]] std::optional<DesignPoint> minCyclePoint(
    std::span<const DesignPoint> points,
    std::optional<double> energyBound = std::nullopt);

/// Points not dominated in (cycles, energy): no other point is <= in both
/// and < in one. Sorted by ascending cycles.
[[nodiscard]] std::vector<DesignPoint> paretoFront(
    std::span<const DesignPoint> points);

/// Minimum-energy point satisfying both bounds (either may be absent).
[[nodiscard]] std::optional<DesignPoint> bestUnderBounds(
    std::span<const DesignPoint> points, std::optional<double> cycleBound,
    std::optional<double> energyBound);

/// Minimum energy-delay product (energy * cycles): the standard single
/// scalar when neither metric is a hard constraint. Ties broken by lower
/// energy, then smaller cache.
[[nodiscard]] std::optional<DesignPoint> minEdpPoint(
    std::span<const DesignPoint> points);

/// Minimum-energy point whose estimated silicon area (data + tags +
/// status + comparators, in RBE) does not exceed `maxAreaRbe` — the
/// paper's "cache size" metric made physical.
[[nodiscard]] std::optional<DesignPoint> minEnergyPointWithinArea(
    std::span<const DesignPoint> points, double maxAreaRbe);

}  // namespace memx
