#include "memx/core/explorer.hpp"

#include <algorithm>
#include <utility>

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/cachesim/cache_sim.hpp"
#include "memx/cachesim/multi_sim.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/stackdist/stackdist_sim.hpp"
#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"
#include "memx/util/numeric_io.hpp"
#include "memx/util/pow2_range.hpp"
#include "memx/xform/tiling.hpp"

namespace memx {

std::string toString(SweepBackend backend) {
  switch (backend) {
    case SweepBackend::Auto:
      return "auto";
    case SweepBackend::MultiSim:
      return "multisim";
    case SweepBackend::StackDist:
      return "stackdist";
  }
  return "auto";
}

SweepBackend parseSweepBackend(const std::string& name) {
  if (name == "auto") return SweepBackend::Auto;
  if (name == "multisim") return SweepBackend::MultiSim;
  if (name == "stackdist") return SweepBackend::StackDist;
  throw ContractViolation("unknown sweep backend \"" + name +
                          "\" (expected auto, multisim or stackdist)");
}

std::string canonicalRangesKey(const ExploreRanges& r) {
  std::string key;
  key.reserve(128);
  const auto u = [&](const char* name, std::uint64_t v) {
    key += name;
    key += '=';
    key += std::to_string(v);
    key += ';';
  };
  u("onchip", r.onChipBytes);
  u("minT", r.minCacheBytes);
  u("maxT", r.maxCacheBytes);
  u("minL", r.minLineBytes);
  u("maxL", r.maxLineBytes);
  u("maxS", r.maxAssociativity);
  u("maxB", r.maxTiling);
  u("sweepS", r.sweepAssociativity ? 1 : 0);
  u("sweepB", r.sweepTiling ? 1 : 0);
  return key;
}

std::string canonicalModelKey(const ExploreOptions& options) {
  const EnergyParams& e = options.energy;
  const TimingParams& t = options.timing;
  std::string key;
  key.reserve(256);
  const auto u = [&](const char* name, std::uint64_t v) {
    key += name;
    key += '=';
    key += std::to_string(v);
    key += ';';
  };
  const auto d = [&](const char* name, double v) {
    key += name;
    key += '=';
    key += formatDouble17(v);
    key += ';';
  };
  d("alpha", e.alphaPj);
  d("beta", e.betaPj);
  d("gamma", e.gammaPj);
  d("dact", e.dataActivity);
  d("em", e.emNj);
  u("mainbpa", e.mainBytesPerAccess);
  u("tag", e.includeTagArray ? 1 : 0);
  u("abits", e.addressBits);
  d("leak", e.leakagePjPerBytePerCycle);
  key += "hit=";
  for (const double v : t.hitCyclesByAssoc) key += formatDouble17(v) + ",";
  key += ";miss=";
  for (const double v : t.missCyclesByLine) key += formatDouble17(v) + ",";
  key += ';';
  u("layout", options.optimizeLayout ? 1 : 0);
  u("bus", options.measureBusActivity ? 1 : 0);
  u("wenergy", options.includeWriteEnergy ? 1 : 0);
  key += "wp=" + toString(options.writePolicy) + ";";
  key += "repl=" + toString(options.replacement) + ";";
  // Auto collapses to its resolution so an Auto run and the equivalent
  // forced run share cache entries (their points are bit-identical by
  // the golden forced-backend equality gates).
  SweepBackend backend = options.backend;
  if (backend == SweepBackend::Auto) {
    backend = options.replacement != ReplacementPolicy::Random
                  ? SweepBackend::StackDist
                  : SweepBackend::MultiSim;
  }
  key += "backend=" + toString(backend);
  return key;
}

std::string canonicalExploreKey(const ExploreOptions& options) {
  return canonicalRangesKey(options.ranges) + canonicalModelKey(options);
}

void ExploreRanges::validate() const {
  MEMX_EXPECTS(isPow2(onChipBytes) && isPow2(minCacheBytes) &&
                   isPow2(maxCacheBytes) && isPow2(minLineBytes) &&
                   isPow2(maxLineBytes) && isPow2(maxAssociativity) &&
                   isPow2(maxTiling),
               "all sweep bounds must be powers of two");
  MEMX_EXPECTS(minCacheBytes <= maxCacheBytes, "cache range inverted");
  MEMX_EXPECTS(minLineBytes <= maxLineBytes, "line range inverted");
  MEMX_EXPECTS(minLineBytes >= 4,
               "the cycle model tabulates line sizes from 4 bytes");
}

ExplorationResult::ExplorationResult(const ExplorationResult& other)
    : workload(other.workload), points(other.points) {}

ExplorationResult& ExplorationResult::operator=(
    const ExplorationResult& other) {
  if (this != &other) {
    workload = other.workload;
    points = other.points;
    const std::unique_lock lock(indexMutex_);
    index_.clear();
    indexBuilt_ = false;
  }
  return *this;
}

ExplorationResult::ExplorationResult(ExplorationResult&& other) noexcept
    : workload(std::move(other.workload)),
      points(std::move(other.points)) {
  // The moved-from index would alias positions in the now-empty points
  // vector; drop it so a stray find() on the source rebuilds cleanly.
  other.index_.clear();
  other.indexBuilt_ = false;
}

ExplorationResult& ExplorationResult::operator=(
    ExplorationResult&& other) noexcept {
  if (this != &other) {
    workload = std::move(other.workload);
    points = std::move(other.points);
    index_.clear();
    indexBuilt_ = false;
    other.index_.clear();
    other.indexBuilt_ = false;
  }
  return *this;
}

const DesignPoint& ExplorationResult::at(const ConfigKey& key) const {
  const DesignPoint* p = find(key);
  MEMX_EXPECTS(p != nullptr,
               "design point " + key.label() + " was not explored");
  return *p;
}

const DesignPoint* ExplorationResult::find(const ConfigKey& key) const {
  {
    // Fast path: the index is current, so concurrent lookups share the
    // lock and never touch mutable state.
    const std::shared_lock lock(indexMutex_);
    if (indexCurrentLocked()) {
      const Lookup r = lookupLocked(key);
      if (!r.stale) return r.point;
    }
  }
  const std::unique_lock lock(indexMutex_);
  if (!indexCurrentLocked()) refreshIndexLocked();
  Lookup r = lookupLocked(key);
  // Last line of defense against an in-place key rewrite that skipped
  // invalidateIndex(): the entry must still describe its point. A
  // mismatch means the index is stale — rebuild once and retry rather
  // than returning a point whose key is not `key`.
  if (r.stale) {
    rebuildIndexLocked();
    r = lookupLocked(key);
  }
  return r.point;
}

void ExplorationResult::buildIndex() const {
  const std::unique_lock lock(indexMutex_);
  if (!indexCurrentLocked()) refreshIndexLocked();
}

void ExplorationResult::invalidateIndex() noexcept {
  const std::unique_lock lock(indexMutex_);
  ++generation_;
}

std::uint64_t ExplorationResult::indexRebuilds() const noexcept {
  const std::shared_lock lock(indexMutex_);
  return indexRebuilds_;
}

std::uint64_t ExplorationResult::indexAppends() const noexcept {
  const std::shared_lock lock(indexMutex_);
  return indexAppends_;
}

bool ExplorationResult::indexCurrentLocked() const {
  return indexBuilt_ && indexedGeneration_ == generation_ &&
         index_.size() == points.size();
}

void ExplorationResult::refreshIndexLocked() const {
  if (indexBuilt_ && indexedGeneration_ == generation_ &&
      index_.size() < points.size()) {
    appendToIndexLocked();
  } else {
    rebuildIndexLocked();
  }
}

ExplorationResult::Lookup ExplorationResult::lookupLocked(
    const ConfigKey& key) const {
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const std::pair<ConfigKey, std::size_t>& entry,
         const ConfigKey& k) { return entry.first < k; });
  if (it == index_.end() || it->first != key) return {nullptr, false};
  if (points[it->second].key != key) return {nullptr, true};
  return {&points[it->second], false};
}

void ExplorationResult::rebuildIndexLocked() const {
  index_.clear();
  index_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    index_.emplace_back(points[i].key, i);
  }
  std::sort(index_.begin(), index_.end());
  indexedGeneration_ = generation_;
  indexBuilt_ = true;
  ++indexRebuilds_;
}

void ExplorationResult::appendToIndexLocked() const {
  const std::size_t start = index_.size();
  index_.reserve(points.size());
  for (std::size_t i = start; i < points.size(); ++i) {
    index_.emplace_back(points[i].key, i);
  }
  // (key, position) pairs: sorting the tail and merging keeps equal
  // keys ordered by position, exactly like a full rebuild, so find()
  // still returns the first occurrence.
  std::sort(index_.begin() + static_cast<std::ptrdiff_t>(start),
            index_.end());
  std::inplace_merge(index_.begin(),
                     index_.begin() + static_cast<std::ptrdiff_t>(start),
                     index_.end());
  ++indexAppends_;
}

Explorer::Explorer(ExploreOptions options)
    : options_(std::move(options)), cycleModel_(options_.timing) {
  options_.ranges.validate();
  options_.energy.validate();
  MEMX_EXPECTS(options_.backend != SweepBackend::StackDist ||
                   stackDistEligible(),
               "SweepBackend::StackDist requires LRU, FIFO or TreePLRU "
               "replacement (Random draws from a simulator-owned rng "
               "stream; write policy and includeWriteEnergy are "
               "unrestricted — dirty accounting makes write-back "
               "writeback counts exact for every analytic policy); use "
               "SweepBackend::Auto to fall back to simulation");
}

bool Explorer::stackDistEligible() const noexcept {
  // configFor() always leaves allocatePolicy at WriteAllocate, so the
  // replacement policy is the whole domain check: LRU sweeps read a
  // Hill-Smith stack-distance profile, FIFO and tree-PLRU sweeps read
  // a single-pass policy-grid profile, and only Random (whose victims
  // come from a simulator-owned rng stream) must simulate. Every
  // statistic the models read is exact for both write policies:
  // write-through memWrites are one word store per write probe, and
  // write-back writebacks fall out of each profile's dirty accounting,
  // so includeWriteEnergy never forces simulation.
  return options_.replacement != ReplacementPolicy::Random;
}

SweepBackend Explorer::resolvedBackend() const noexcept {
  if (options_.backend == SweepBackend::MultiSim) return SweepBackend::MultiSim;
  if (options_.backend == SweepBackend::StackDist) {
    return SweepBackend::StackDist;  // eligibility enforced at construction
  }
  return stackDistEligible() ? SweepBackend::StackDist
                             : SweepBackend::MultiSim;
}

const MemoryLayout& Explorer::layoutFor(const Kernel& kernel,
                                        const CacheConfig& cache,
                                        const Kernel* tiledProbe,
                                        std::uint32_t tiling) const {
  const std::string key =
      kernel.name + '|' + cache.label() + "|B" + std::to_string(tiling);
  const auto it = layoutCache_.find(key);
  if (it != layoutCache_.end()) {
    if (recorder_ != nullptr) recorder_->counter("layout.cache_hit").add();
    return it->second;
  }
  if (recorder_ != nullptr) recorder_->counter("layout.cache_miss").add();
  MemoryLayout layout =
      options_.optimizeLayout
          ? assignConflictFree(kernel, cache, 0, tiledProbe).layout
          : sequentialLayout(kernel);
  return layoutCache_.emplace(key, std::move(layout)).first->second;
}

CacheConfig Explorer::configFor(const ConfigKey& key) const {
  CacheConfig config;
  config.sizeBytes = key.cacheBytes;
  config.lineBytes = key.lineBytes;
  config.associativity = key.associativity;
  config.writePolicy = options_.writePolicy;
  config.replacement = options_.replacement;
  return config;
}

double Explorer::addrActivityFor(const Trace& trace) const {
  return options_.measureBusActivity ? measureAddrActivity(trace)
                                     : kDefaultAddrSwitchesPerAccess;
}

DesignPoint Explorer::makePoint(const CacheConfig& config,
                                std::uint32_t tiling,
                                const CacheStats& stats,
                                double addBs) const {
  const CacheEnergyModel energyModel(config, options_.energy, addBs);
  DesignPoint point;
  point.key = ConfigKey{config.sizeBytes, config.lineBytes,
                        config.associativity, tiling};
  point.accesses = stats.accesses();
  point.missRate = stats.missRate();
  point.cycles = cycleModel_.cycles(stats, config, tiling);
  point.energyNj = options_.includeWriteEnergy
                       ? energyModel.totalIncludingWritesNj(stats)
                       : energyModel.totalNj(stats);
  point.energyNj += energyModel.leakageNj(point.cycles);
  return point;
}

DesignPoint Explorer::evaluate(const Kernel& kernel,
                               const CacheConfig& cache,
                               std::uint32_t tiling) const {
  const obs::ScopedSpan span(recorder_, "evaluate.point");
  cache.validate();
  MEMX_EXPECTS(tiling >= 1, "tiling size must be at least 1");

  CacheConfig config = cache;
  config.writePolicy = options_.writePolicy;
  config.replacement = options_.replacement;

  // The class analysis behind the Section-4.1 layout always runs on the
  // untiled kernel, but candidate layouts are certified against the
  // traversal that will actually execute (the tiled one when B > 1).
  const bool tileable = tiling > 1 && kernel.nest.depth() >= 2;
  std::optional<Kernel> tiled;
  if (tileable) tiled = tile2D(kernel, tiling);

  const MemoryLayout& layout =
      layoutFor(kernel, config, tiled ? &*tiled : nullptr, tiling);

  const Trace trace =
      tiled ? generateTrace(*tiled, layout) : generateTrace(kernel, layout);

  const CacheStats stats = simulateTrace(config, trace);
  return makePoint(config, tiling, stats, addrActivityFor(trace));
}

std::vector<ConfigKey> Explorer::sweepKeys() const {
  const ExploreRanges& r = options_.ranges;
  std::vector<ConfigKey> keys;
  const std::uint32_t maxCache =
      std::min(r.maxCacheBytes, r.onChipBytes);
  for (const std::uint64_t T : pow2Range(r.minCacheBytes, maxCache)) {
    const std::uint64_t maxLine =
        std::min<std::uint64_t>(r.maxLineBytes, T);
    for (const std::uint64_t L : pow2Range(r.minLineBytes, maxLine)) {
      const std::uint64_t lines = T / L;
      const std::uint64_t maxS =
          r.sweepAssociativity
              ? std::min<std::uint64_t>(r.maxAssociativity, lines)
              : 1;
      for (const std::uint64_t S : pow2Range(1, maxS)) {
        const std::uint64_t maxB =
            r.sweepTiling ? std::min<std::uint64_t>(r.maxTiling, lines)
                          : 1;
        for (const std::uint64_t B : pow2Range(1, maxB)) {
          keys.push_back(ConfigKey{static_cast<std::uint32_t>(T),
                                   static_cast<std::uint32_t>(L),
                                   static_cast<std::uint32_t>(S),
                                   static_cast<std::uint32_t>(B)});
        }
      }
    }
  }
  return keys;
}

SweepPlan Explorer::planSweep(const Kernel& kernel,
                              std::vector<ConfigKey> keys) const {
  const obs::ScopedSpan span(recorder_, "planSweep");
  SweepPlan plan;
  plan.generation = cacheGeneration_;
  plan.keys = std::move(keys);
  // Policies are run-global, so every group of this plan resolves to the
  // same engine; stamping each group keeps evaluateGroup self-contained.
  const SweepBackend backend = resolvedBackend();
  // Tiled variants used only to certify layouts; the trace-generating
  // tiling happens later, once per pattern.
  std::map<std::uint32_t, Kernel> tiledProbes;
  std::map<std::string, std::size_t> groupIndex;
  for (std::size_t i = 0; i < plan.keys.size(); ++i) {
    const ConfigKey& key = plan.keys[i];
    MEMX_EXPECTS(key.tiling >= 1, "tiling size must be at least 1");
    const CacheConfig config = configFor(key);
    config.validate();

    const bool tileable = key.tiling > 1 && kernel.nest.depth() >= 2;
    const Kernel* probe = nullptr;
    if (tileable) {
      auto it = tiledProbes.find(key.tiling);
      if (it == tiledProbes.end()) {
        it = tiledProbes.emplace(key.tiling, tile2D(kernel, key.tiling))
                 .first;
      }
      probe = &it->second;
    }
    const MemoryLayout& layout = layoutFor(kernel, config, probe, key.tiling);

    // Keys whose traversal is untiled (B = 1, or a nest too shallow to
    // tile) share one pattern regardless of the B they carry.
    const std::uint32_t traceTiling = tileable ? key.tiling : 1;
    const std::string traceKey = kernel.name + "|B" +
                                 std::to_string(traceTiling) + '|' +
                                 layout.signature();
    const auto [it, inserted] =
        groupIndex.try_emplace(traceKey, plan.groups.size());
    if (inserted) {
      plan.groups.push_back(SweepPlan::Group{traceTiling, traceKey,
                                             &layout, {},
                                             cacheGeneration_, backend});
    }
    plan.groups[it->second].keyIndices.push_back(i);
  }
  if (recorder_ != nullptr) {
    recorder_->counter("plan.keys").add(plan.keys.size());
    recorder_->counter("plan.groups").add(plan.groups.size());
  }
  return plan;
}

Trace Explorer::buildGroupTrace(const Kernel& kernel,
                                const SweepPlan::Group& group,
                                PatternCache& patterns) const {
  MEMX_EXPECTS(group.generation == cacheGeneration_,
               "stale SweepPlan: Explorer::clearCaches() invalidated this "
               "plan's layout pointers; re-plan with planSweep()");
  const obs::ScopedSpan span(recorder_, "trace.build");
  auto it = patterns.find(group.traceTiling);
  if (it == patterns.end()) {
    if (recorder_ != nullptr) recorder_->counter("pattern.cache_miss").add();
    AccessPattern pattern =
        group.traceTiling > 1
            ? generateAccessPattern(tile2D(kernel, group.traceTiling))
            : generateAccessPattern(kernel);
    it = patterns.emplace(group.traceTiling, std::move(pattern)).first;
  } else if (recorder_ != nullptr) {
    recorder_->counter("pattern.cache_hit").add();
  }
  Trace trace = materializeTrace(it->second, *group.layout);
  if (recorder_ != nullptr) {
    recorder_->counter("trace.accesses").add(trace.size());
    recorder_->counter("trace.bytes").add(trace.size() * sizeof(MemRef));
  }
  return trace;
}

void Explorer::evaluateGroup(const SweepPlan::Group& group,
                             const Trace& trace, double addrActivity,
                             const std::vector<ConfigKey>& keys,
                             std::vector<DesignPoint>& out) const {
  MEMX_EXPECTS(group.generation == cacheGeneration_,
               "stale SweepPlan: Explorer::clearCaches() invalidated this "
               "plan's layout pointers; re-plan with planSweep()");
  const obs::ScopedSpan span(recorder_, "group.evaluate");
  std::vector<CacheConfig> configs;
  configs.reserve(group.keyIndices.size());
  for (const std::size_t idx : group.keyIndices) {
    configs.push_back(configFor(keys[idx]));
  }
  if (group.backend == SweepBackend::StackDist) {
    StackDistSim bank(configs);
    bank.run(trace);
    for (std::size_t j = 0; j < group.keyIndices.size(); ++j) {
      const std::size_t idx = group.keyIndices[j];
      out[idx] = makePoint(configs[j], keys[idx].tiling, bank.stats(j),
                           addrActivity);
    }
    if (recorder_ != nullptr) {
      recorder_->counter("sweep.groups").add();
      recorder_->counter("sweep.groups_stackdist").add();
      recorder_->counter("sweep.points").add(group.keyIndices.size());
      recorder_->counter("stackdist.passes").add(bank.passCount());
      // FIFO/PLRU groups run as single-pass grid simulations; count
      // those passes and the (sets, ways) cells they cover so sweep
      // reports show how much of the run the grid engine carried.
      recorder_->counter("stackdist.grid_passes").add(bank.gridPassCount());
      recorder_->counter("stackdist.grid_cells").add(bank.gridCellCount());
      // Trace references actually profiled (one pass per line size),
      // versus the trace.size() * configs a simulating backend pays.
      recorder_->counter("stackdist.accesses")
          .add(trace.size() * bank.passCount());
      // Dirty evictions the analytic pass charged across the group's
      // member configs (0 for write-through runs, where lines never
      // dirty) — the write-back traffic the energy model sees.
      std::uint64_t dirtyEvictions = 0;
      for (std::size_t j = 0; j < group.keyIndices.size(); ++j) {
        dirtyEvictions += bank.stats(j).writebacks;
      }
      recorder_->counter("stackdist.dirty_evictions").add(dirtyEvictions);
    }
    return;
  }
  MultiCacheSim bank(configs);
  bank.run(trace);
  for (std::size_t j = 0; j < group.keyIndices.size(); ++j) {
    const std::size_t idx = group.keyIndices[j];
    out[idx] =
        makePoint(configs[j], keys[idx].tiling, bank.stats(j), addrActivity);
  }
  if (recorder_ != nullptr) {
    recorder_->counter("sweep.groups").add();
    recorder_->counter("sweep.groups_multisim").add();
    recorder_->counter("sweep.points").add(group.keyIndices.size());
    recorder_->counter("sim.accesses")
        .add(trace.size() * group.keyIndices.size());
  }
}

const Explorer::TraceEntry& Explorer::traceFor(
    const Kernel& kernel, const SweepPlan::Group& group,
    PatternCache& patterns) const {
  auto it = traceCache_.find(group.traceKey);
  if (it == traceCache_.end()) {
    if (recorder_ != nullptr) recorder_->counter("trace.cache_miss").add();
    TraceEntry entry;
    entry.trace = buildGroupTrace(kernel, group, patterns);
    entry.addrActivity = addrActivityFor(entry.trace);
    it = traceCache_.emplace(group.traceKey, std::move(entry)).first;
  } else if (recorder_ != nullptr) {
    recorder_->counter("trace.cache_hit").add();
    recorder_->counter("trace.cache_hit_bytes")
        .add(it->second.trace.size() * sizeof(MemRef));
  }
  return it->second;
}

ExplorationResult Explorer::explore(const Kernel& kernel) const {
  const obs::ScopedSpan span(recorder_, "explore");
  const SweepPlan plan = planSweep(kernel, sweepKeys());
  ExplorationResult result;
  result.workload = kernel.name;
  result.points.resize(plan.keys.size());
  PatternCache patterns;
  for (const SweepPlan::Group& group : plan.groups) {
    const TraceEntry& entry = traceFor(kernel, group, patterns);
    evaluateGroup(group, entry.trace, entry.addrActivity, plan.keys,
                  result.points);
  }
  return result;
}

void Explorer::clearCaches() noexcept {
  layoutCache_.clear();
  traceCache_.clear();
  ++cacheGeneration_;
}

std::size_t Explorer::traceCacheBytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& [key, entry] : traceCache_) {
    bytes += key.size() + entry.trace.size() * sizeof(MemRef);
  }
  return bytes;
}

}  // namespace memx
