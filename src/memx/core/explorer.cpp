#include "memx/core/explorer.hpp"

#include <algorithm>

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/cachesim/cache_sim.hpp"
#include "memx/layout/offchip_assign.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"
#include "memx/util/pow2_range.hpp"
#include "memx/xform/tiling.hpp"

namespace memx {

void ExploreRanges::validate() const {
  MEMX_EXPECTS(isPow2(onChipBytes) && isPow2(minCacheBytes) &&
                   isPow2(maxCacheBytes) && isPow2(minLineBytes) &&
                   isPow2(maxLineBytes) && isPow2(maxAssociativity) &&
                   isPow2(maxTiling),
               "all sweep bounds must be powers of two");
  MEMX_EXPECTS(minCacheBytes <= maxCacheBytes, "cache range inverted");
  MEMX_EXPECTS(minLineBytes <= maxLineBytes, "line range inverted");
  MEMX_EXPECTS(minLineBytes >= 4,
               "the cycle model tabulates line sizes from 4 bytes");
}

const DesignPoint& ExplorationResult::at(const ConfigKey& key) const {
  const DesignPoint* p = find(key);
  MEMX_EXPECTS(p != nullptr,
               "design point " + key.label() + " was not explored");
  return *p;
}

const DesignPoint* ExplorationResult::find(
    const ConfigKey& key) const noexcept {
  const auto it =
      std::find_if(points.begin(), points.end(),
                   [&](const DesignPoint& p) { return p.key == key; });
  return it == points.end() ? nullptr : &*it;
}

Explorer::Explorer(ExploreOptions options)
    : options_(std::move(options)), cycleModel_(options_.timing) {
  options_.ranges.validate();
  options_.energy.validate();
}

const MemoryLayout& Explorer::layoutFor(const Kernel& kernel,
                                        const CacheConfig& cache,
                                        const Kernel* tiledProbe,
                                        std::uint32_t tiling) const {
  const std::string key =
      kernel.name + '|' + cache.label() + "|B" + std::to_string(tiling);
  const auto it = layoutCache_.find(key);
  if (it != layoutCache_.end()) return it->second;
  MemoryLayout layout =
      options_.optimizeLayout
          ? assignConflictFree(kernel, cache, 0, tiledProbe).layout
          : sequentialLayout(kernel);
  return layoutCache_.emplace(key, std::move(layout)).first->second;
}

DesignPoint Explorer::evaluate(const Kernel& kernel,
                               const CacheConfig& cache,
                               std::uint32_t tiling) const {
  cache.validate();
  MEMX_EXPECTS(tiling >= 1, "tiling size must be at least 1");

  CacheConfig config = cache;
  config.writePolicy = options_.writePolicy;
  config.replacement = options_.replacement;

  // The class analysis behind the Section-4.1 layout always runs on the
  // untiled kernel, but candidate layouts are certified against the
  // traversal that will actually execute (the tiled one when B > 1).
  const bool tileable = tiling > 1 && kernel.nest.depth() >= 2;
  std::optional<Kernel> tiled;
  if (tileable) tiled = tile2D(kernel, tiling);

  const MemoryLayout& layout =
      layoutFor(kernel, config, tiled ? &*tiled : nullptr, tiling);

  const Trace trace =
      tiled ? generateTrace(*tiled, layout) : generateTrace(kernel, layout);

  const CacheStats stats = simulateTrace(config, trace);
  const double addBs = options_.measureBusActivity
                           ? measureAddrActivity(trace)
                           : kDefaultAddrSwitchesPerAccess;
  const CacheEnergyModel energyModel(config, options_.energy, addBs);

  DesignPoint point;
  point.key = ConfigKey{config.sizeBytes, config.lineBytes,
                        config.associativity, tiling};
  point.accesses = stats.accesses();
  point.missRate = stats.missRate();
  point.cycles = cycleModel_.cycles(stats, config, tiling);
  point.energyNj = options_.includeWriteEnergy
                       ? energyModel.totalIncludingWritesNj(stats)
                       : energyModel.totalNj(stats);
  point.energyNj += energyModel.leakageNj(point.cycles);
  return point;
}

std::vector<ConfigKey> Explorer::sweepKeys() const {
  const ExploreRanges& r = options_.ranges;
  std::vector<ConfigKey> keys;
  const std::uint32_t maxCache =
      std::min(r.maxCacheBytes, r.onChipBytes);
  for (const std::uint64_t T : pow2Range(r.minCacheBytes, maxCache)) {
    const std::uint64_t maxLine =
        std::min<std::uint64_t>(r.maxLineBytes, T);
    for (const std::uint64_t L : pow2Range(r.minLineBytes, maxLine)) {
      const std::uint64_t lines = T / L;
      const std::uint64_t maxS =
          r.sweepAssociativity
              ? std::min<std::uint64_t>(r.maxAssociativity, lines)
              : 1;
      for (const std::uint64_t S : pow2Range(1, maxS)) {
        const std::uint64_t maxB =
            r.sweepTiling ? std::min<std::uint64_t>(r.maxTiling, lines)
                          : 1;
        for (const std::uint64_t B : pow2Range(1, maxB)) {
          keys.push_back(ConfigKey{static_cast<std::uint32_t>(T),
                                   static_cast<std::uint32_t>(L),
                                   static_cast<std::uint32_t>(S),
                                   static_cast<std::uint32_t>(B)});
        }
      }
    }
  }
  return keys;
}

ExplorationResult Explorer::explore(const Kernel& kernel) const {
  ExplorationResult result;
  result.workload = kernel.name;
  for (const ConfigKey& key : sweepKeys()) {
    CacheConfig cache;
    cache.sizeBytes = key.cacheBytes;
    cache.lineBytes = key.lineBytes;
    cache.associativity = key.associativity;
    result.points.push_back(evaluate(kernel, cache, key.tiling));
  }
  return result;
}

}  // namespace memx
