// Sensitivity analysis of the selected configuration to model constants.
//
// Figure 1's lesson is that the *selected* cache flips with Em; this
// module generalizes that: sweep any scalar model parameter, re-run the
// exploration, and report where the minimum-energy (and minimum-cycle)
// choices move. A selection that is stable across the parameter's
// plausible range can be trusted despite model uncertainty.
#pragma once

#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "memx/core/explorer.hpp"
#include "memx/core/selection.hpp"

namespace memx {

namespace obs {
class Recorder;
}  // namespace obs

/// Thrown when one sweep of a sensitivity analysis produced no design
/// points; the message names the offending parameter value.
class EmptySweepError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// One row of a sensitivity sweep.
struct SensitivityRow {
  double parameterValue = 0.0;
  ConfigKey minEnergyKey;
  double minEnergyNj = 0.0;
  ConfigKey minCycleKey;
  double minCycles = 0.0;
};

/// Applies one parameter value to the exploration options.
using OptionsMutator = std::function<void(ExploreOptions&, double)>;

/// Fold one finished exploration into a sensitivity row. Throws
/// EmptySweepError naming `value` when `result` holds no points.
[[nodiscard]] SensitivityRow summarizeSweep(double value,
                                            const ExplorationResult& result);

/// Re-explore `kernel` for every value in `values`, mutating a copy of
/// `base` through `mutator` each time. Each value's sweep runs on the
/// parallel shared-trace engine (`threads` as in exploreParallel; 0 =
/// hardware concurrency). A sweep yielding no points raises
/// EmptySweepError naming the parameter value. `recorder` (optional)
/// observes every per-value exploration plus a "sensitivity.value"
/// span per row.
[[nodiscard]] std::vector<SensitivityRow> sweepSensitivity(
    const Kernel& kernel, std::span<const double> values,
    const OptionsMutator& mutator, const ExploreOptions& base = {},
    obs::Recorder* recorder = nullptr, unsigned threads = 0);

/// The Figure-1 special case: sweep the main-memory energy Em.
[[nodiscard]] std::vector<SensitivityRow> sweepEmSensitivity(
    const Kernel& kernel, std::span<const double> emValues,
    const ExploreOptions& base = {}, obs::Recorder* recorder = nullptr,
    unsigned threads = 0);

/// True when the min-energy selection is identical across all rows.
[[nodiscard]] bool selectionStable(std::span<const SensitivityRow> rows);

}  // namespace memx
