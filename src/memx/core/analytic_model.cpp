#include "memx/core/analytic_model.hpp"

#include <algorithm>
#include <cstdlib>

#include "memx/loopir/ref_classes.hpp"
#include "memx/util/assert.hpp"

namespace memx {

double analyticMissRate(const Kernel& kernel, const CacheConfig& cache,
                        bool conflictFreeLayout) {
  kernel.validate();
  cache.validate();

  const RefAnalysis analysis = analyzeReferences(kernel);
  const std::int64_t step =
      kernel.nest.depth() == 0
          ? 1
          : kernel.nest.loop(kernel.nest.depth() - 1).step;
  const std::uint64_t iterations = kernel.nest.iterationCount();
  const std::uint64_t totalAccesses = iterations * kernel.body.size();
  if (totalAccesses == 0) return 0.0;

  const std::uint64_t neededLines = minLiveLines(kernel, cache.lineBytes);
  const bool conflictFree =
      conflictFreeLayout && cache.numLines() >= neededLines;

  double misses = 0.0;
  for (const RefGroup& g : analysis.groups) {
    const ArrayDecl& decl = kernel.arrays[g.arrayIndex];
    const double lineElems =
        static_cast<double>(cache.lineBytes) / decl.elemBytes;
    const double stride =
        static_cast<double>(std::abs(g.innerStrideElems) * step);
    const double groupAccesses =
        static_cast<double>(iterations * g.accessIndices.size());
    if (!conflictFree) {
      // Cross-class evictions defeat both spatial and temporal reuse:
      // every reference of the class finds its line evicted (this is why
      // the paper's unoptimized miss rates sit near 1).
      misses += groupAccesses;
      continue;
    }
    // Streaming model: one new line per lineElems/stride iterations.
    const double newLineRate =
        stride == 0.0 ? 0.0 : std::min(1.0, stride / lineElems);
    misses += newLineRate * static_cast<double>(iterations);
  }

  // Indirect references: miss with the probability that a random element
  // of the array is not resident.
  for (const std::size_t idx : analysis.indirectAccesses) {
    const ArrayDecl& decl = kernel.arrays[kernel.body[idx].arrayIndex];
    const double arrayBytes = static_cast<double>(decl.sizeBytes());
    const double resident = std::min(
        1.0, static_cast<double>(cache.sizeBytes) / arrayBytes);
    misses += (1.0 - resident) * static_cast<double>(iterations);
  }

  return std::min(1.0, misses / static_cast<double>(totalAccesses));
}

}  // namespace memx
