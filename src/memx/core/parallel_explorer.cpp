#include "memx/core/parallel_explorer.hpp"

#include <algorithm>
#include <thread>
#include <vector>

namespace memx {

ExplorationResult exploreParallel(const Kernel& kernel,
                                  const ExploreOptions& options,
                                  unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const Explorer grid(options);
  const std::vector<ConfigKey> keys = grid.sweepKeys();
  threads = std::min<unsigned>(
      threads, std::max<std::size_t>(1, keys.size()));

  std::vector<DesignPoint> points(keys.size());
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      // Each worker owns an Explorer so the layout memo stays private.
      const Explorer local(options);
      for (std::size_t i = t; i < keys.size(); i += threads) {
        CacheConfig cache;
        cache.sizeBytes = keys[i].cacheBytes;
        cache.lineBytes = keys[i].lineBytes;
        cache.associativity = keys[i].associativity;
        points[i] = local.evaluate(kernel, cache, keys[i].tiling);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  ExplorationResult result;
  result.workload = kernel.name;
  result.points = std::move(points);
  return result;
}

}  // namespace memx
