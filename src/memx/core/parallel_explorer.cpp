#include "memx/core/parallel_explorer.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "memx/obs/recorder.hpp"

namespace memx {

ExplorationResult exploreParallel(const Kernel& kernel,
                                  const ExploreOptions& options,
                                  unsigned threads) {
  const Explorer grid(options);
  return exploreParallel(grid, kernel, threads);
}

ExplorationResult exploreParallel(const Explorer& grid, const Kernel& kernel,
                                  unsigned threads) {
  obs::Recorder* const recorder = grid.recorder();
  const obs::ScopedSpan total(recorder, "exploreParallel");
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Planning is serial: it fills the layout memo the group pointers
  // alias. Workers afterwards only read the plan and the grid.
  const SweepPlan plan = grid.planSweep(kernel, grid.sweepKeys());
  threads = std::min<unsigned>(
      threads, static_cast<unsigned>(std::max<std::size_t>(
                   1, plan.groups.size())));
  if (recorder != nullptr) {
    recorder->counter("parallel.workers").add(threads);
  }

  std::vector<DesignPoint> points(plan.keys.size());
  std::atomic<std::size_t> nextGroup{0};
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      // Patterns are memoized per worker: the nest walk happens at most
      // once per distinct tiling per worker, traces once per group.
      Explorer::PatternCache patterns;
      try {
        // One span per worker covering its whole queue drain: the
        // exported timeline shows each worker's share of the group
        // queue, and the report folds these into per-worker busy time
        // and utilization.
        const obs::ScopedSpan drain(recorder, "worker.drain");
        for (;;) {
          const std::size_t g =
              nextGroup.fetch_add(1, std::memory_order_relaxed);
          if (g >= plan.groups.size() ||
              failed.load(std::memory_order_relaxed)) {
            break;
          }
          if (recorder != nullptr) {
            recorder->counter("parallel.groups_claimed").add();
          }
          const SweepPlan::Group& group = plan.groups[g];
          const Trace trace = grid.buildGroupTrace(kernel, group, patterns);
          grid.evaluateGroup(group, trace, grid.addrActivityFor(trace),
                             plan.keys, points);
        }
      } catch (...) {
        errors[t] = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  ExplorationResult result;
  result.workload = kernel.name;
  result.points = std::move(points);
  return result;
}

}  // namespace memx
