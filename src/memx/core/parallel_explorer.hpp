// Multi-threaded MemExplore sweep.
//
// The sweep is partitioned into trace groups — sets of (T, L, S, B)
// points sharing one tiling and one memory layout, hence one reference
// trace. Workers claim whole groups from a shared counter; each worker
// materializes the group's trace once (with a worker-local access-pattern
// cache) and evaluates the group's configuration bank against it in a
// single MultiCacheSim pass. Results are identical to the serial sweep,
// in the same key order.
//
// Exceptions thrown inside a worker (for example a contract violation
// while generating a kernel's trace) are captured per worker and the
// first one is rethrown on the calling thread after all workers joined —
// they never reach a thread boundary and terminate the process.
#pragma once

#include <cstdint>

#include "memx/core/explorer.hpp"

namespace memx {

/// Run the full sweep over `kernel` with `threads` workers (0 = use the
/// hardware concurrency, at least 1). Deterministic: equal to
/// Explorer(options).explore(kernel) point for point.
[[nodiscard]] ExplorationResult exploreParallel(
    const Kernel& kernel, const ExploreOptions& options,
    unsigned threads = 0);

/// Same, reusing an existing Explorer so its memoized layouts carry over
/// between runs (the planning phase runs serially on the calling thread
/// and may grow `grid`'s layout memo; workers only read it).
[[nodiscard]] ExplorationResult exploreParallel(const Explorer& grid,
                                                const Kernel& kernel,
                                                unsigned threads = 0);

}  // namespace memx
