// Multi-threaded MemExplore sweep.
//
// Design points are independent, so the sweep parallelizes trivially:
// the key grid is partitioned across worker threads, each with its own
// Explorer (the layout memo is not thread-safe by design). Results are
// identical to the serial sweep, in the same key order.
#pragma once

#include <cstdint>

#include "memx/core/explorer.hpp"

namespace memx {

/// Run the full sweep over `kernel` with `threads` workers (0 = use the
/// hardware concurrency, at least 1). Deterministic: equal to
/// Explorer(options).explore(kernel) point for point.
[[nodiscard]] ExplorationResult exploreParallel(
    const Kernel& kernel, const ExploreOptions& options,
    unsigned threads = 0);

}  // namespace memx
