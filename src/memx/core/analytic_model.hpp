// Closed-form miss-rate estimation.
//
// The authors explicitly chose analytical expressions over a trace-driven
// simulator ("We chose to do this rather than developing a trace driven
// simulator that could be ported to Dinero", Section 4.1). This module is
// that closed form, kept deliberately simple:
//
//  * each uniformly generated class is a streaming reference: it fetches a
//    new line every lineElems/stride innermost iterations (pure spatial
//    locality),
//  * with a conflict-free layout and a cache of at least the Section-3
//    minimum size, those streaming misses are the only misses,
//  * with an unoptimized layout (or a cache below the minimum size),
//    cross-class conflicts evict lines before reuse and the classes'
//    accesses all miss,
//  * indirect (data-dependent) references miss with probability
//    1 - residentFraction of their array.
//
// The trace-driven Explorer is the reference; the ablation bench
// `ablation_analytic_vs_sim` quantifies where this closed form deviates.
#pragma once

#include "memx/cachesim/cache_config.hpp"
#include "memx/loopir/kernel.hpp"

namespace memx {

/// Estimated miss rate of `kernel` under `cache`.
/// `conflictFreeLayout` states whether the Section-4.1 assignment is
/// assumed applied (the analytic model cannot see actual addresses).
[[nodiscard]] double analyticMissRate(const Kernel& kernel,
                                      const CacheConfig& cache,
                                      bool conflictFreeLayout = true);

}  // namespace memx
