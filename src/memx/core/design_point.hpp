// One evaluated point of the MemExplore design space.
#pragma once

#include <cstdint>
#include <string>

#include "memx/cachesim/cache_config.hpp"

namespace memx {

/// The (T, L, S, B) coordinate of a design point.
struct ConfigKey {
  std::uint32_t cacheBytes = 0;   ///< T
  std::uint32_t lineBytes = 0;    ///< L
  std::uint32_t associativity = 1;  ///< S
  std::uint32_t tiling = 1;       ///< B

  [[nodiscard]] friend auto operator<=>(const ConfigKey&,
                                        const ConfigKey&) = default;

  /// "C64L8S2B4" (S/B omitted when 1).
  [[nodiscard]] std::string label() const;
};

/// A fully evaluated cache configuration for one workload.
struct DesignPoint {
  ConfigKey key;
  std::uint64_t accesses = 0;  ///< the paper's trip count
  double missRate = 0.0;
  double cycles = 0.0;
  double energyNj = 0.0;

  [[nodiscard]] std::string label() const { return key.label(); }

  /// CacheConfig view of the key (write/replacement policies default).
  [[nodiscard]] CacheConfig cacheConfig() const;
};

}  // namespace memx
