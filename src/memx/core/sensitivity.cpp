#include "memx/core/sensitivity.hpp"

#include "memx/util/assert.hpp"

namespace memx {

std::vector<SensitivityRow> sweepSensitivity(
    const Kernel& kernel, std::span<const double> values,
    const OptionsMutator& mutator, const ExploreOptions& base) {
  MEMX_EXPECTS(static_cast<bool>(mutator), "mutator must be callable");
  std::vector<SensitivityRow> rows;
  rows.reserve(values.size());
  for (const double v : values) {
    ExploreOptions options = base;
    mutator(options, v);
    const Explorer explorer(options);
    const ExplorationResult result = explorer.explore(kernel);
    const auto minE = minEnergyPoint(result.points);
    const auto minC = minCyclePoint(result.points);
    MEMX_ENSURES(minE.has_value() && minC.has_value(),
                 "exploration produced no points");
    SensitivityRow row;
    row.parameterValue = v;
    row.minEnergyKey = minE->key;
    row.minEnergyNj = minE->energyNj;
    row.minCycleKey = minC->key;
    row.minCycles = minC->cycles;
    rows.push_back(row);
  }
  return rows;
}

std::vector<SensitivityRow> sweepEmSensitivity(
    const Kernel& kernel, std::span<const double> emValues,
    const ExploreOptions& base) {
  return sweepSensitivity(
      kernel, emValues,
      [](ExploreOptions& o, double em) { o.energy.emNj = em; }, base);
}

bool selectionStable(std::span<const SensitivityRow> rows) {
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (!(rows[i].minEnergyKey == rows[0].minEnergyKey)) return false;
  }
  return true;
}

}  // namespace memx
