#include "memx/core/sensitivity.hpp"

#include <sstream>

#include "memx/core/parallel_explorer.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/util/assert.hpp"

namespace memx {

SensitivityRow summarizeSweep(double value,
                              const ExplorationResult& result) {
  const auto minE = minEnergyPoint(result.points);
  const auto minC = minCyclePoint(result.points);
  if (!minE.has_value() || !minC.has_value()) {
    std::ostringstream os;
    os << "sensitivity sweep produced no design points at parameter value "
       << value
       << (result.workload.empty() ? std::string()
                                   : " (workload " + result.workload + ")");
    throw EmptySweepError(os.str());
  }
  SensitivityRow row;
  row.parameterValue = value;
  row.minEnergyKey = minE->key;
  row.minEnergyNj = minE->energyNj;
  row.minCycleKey = minC->key;
  row.minCycles = minC->cycles;
  return row;
}

std::vector<SensitivityRow> sweepSensitivity(
    const Kernel& kernel, std::span<const double> values,
    const OptionsMutator& mutator, const ExploreOptions& base,
    obs::Recorder* recorder, unsigned threads) {
  MEMX_EXPECTS(static_cast<bool>(mutator), "mutator must be callable");
  std::vector<SensitivityRow> rows;
  rows.reserve(values.size());
  for (const double v : values) {
    const obs::ScopedSpan span(recorder, "sensitivity.value");
    ExploreOptions options = base;
    mutator(options, v);
    Explorer explorer(options);
    explorer.setRecorder(recorder);
    rows.push_back(
        summarizeSweep(v, exploreParallel(explorer, kernel, threads)));
  }
  return rows;
}

std::vector<SensitivityRow> sweepEmSensitivity(
    const Kernel& kernel, std::span<const double> emValues,
    const ExploreOptions& base, obs::Recorder* recorder,
    unsigned threads) {
  return sweepSensitivity(
      kernel, emValues,
      [](ExploreOptions& o, double em) { o.energy.emNj = em; }, base,
      recorder, threads);
}

bool selectionStable(std::span<const SensitivityRow> rows) {
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (!(rows[i].minEnergyKey == rows[0].minEnergyKey)) return false;
  }
  return true;
}

}  // namespace memx
