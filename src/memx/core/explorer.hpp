// The MemExplore algorithm (paper Section 1):
//
//   for on-chip memory size M (powers of 2)
//     for cache size T <= M
//       for line size L <= T
//         for set associativity S <= 8
//           for tiling size B <= T/L
//             estimate cycles C and energy E
//   select (T, L, S, B) maximizing performance under the given bounds.
//
// Every point is evaluated by trace-driven simulation of the (optionally
// tiled) kernel under the chosen off-chip layout, then run through the
// paper's cycle and energy models.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "memx/core/design_point.hpp"
#include "memx/energy/energy_model.hpp"
#include "memx/loopir/kernel.hpp"
#include "memx/loopir/memory_layout.hpp"
#include "memx/timing/cycle_model.hpp"

namespace memx {

/// Power-of-two sweep bounds of the MemExplore loops.
struct ExploreRanges {
  std::uint32_t onChipBytes = 1024;   ///< M: upper limit on cache size
  std::uint32_t minCacheBytes = 16;   ///< smallest T
  std::uint32_t maxCacheBytes = 1024; ///< largest T (clamped to M)
  std::uint32_t minLineBytes = 4;     ///< smallest L
  std::uint32_t maxLineBytes = 64;    ///< largest L (clamped to T)
  std::uint32_t maxAssociativity = 8; ///< largest S (paper caps at 8)
  std::uint32_t maxTiling = 16;       ///< largest B (clamped to T/L)
  bool sweepAssociativity = true;     ///< false => direct-mapped only
  bool sweepTiling = true;            ///< false => B = 1 only

  void validate() const;
};

/// Everything that parameterizes an exploration run.
struct ExploreOptions {
  ExploreRanges ranges;
  EnergyParams energy;
  TimingParams timing;
  /// Apply the Section-4.1 conflict-free off-chip assignment before
  /// simulating (the paper's "optimized" rows); false = tight layout.
  bool optimizeLayout = true;
  /// Measure Add_bs from the generated trace (Gray-coded) instead of
  /// using the analytic default of kDefaultAddrSwitchesPerAccess.
  bool measureBusActivity = true;
  /// Account write traffic in the energy metric (the paper's model is
  /// read-only; see CacheEnergyModel::totalIncludingWritesNj).
  bool includeWriteEnergy = false;
  WritePolicy writePolicy = WritePolicy::WriteBack;
  ReplacementPolicy replacement = ReplacementPolicy::LRU;
};

/// All evaluated points for one workload.
struct ExplorationResult {
  std::string workload;
  std::vector<DesignPoint> points;

  /// Point with the given key; throws when the sweep did not visit it.
  [[nodiscard]] const DesignPoint& at(const ConfigKey& key) const;
  /// Point with the given key, if visited.
  [[nodiscard]] const DesignPoint* find(const ConfigKey& key) const noexcept;
};

/// Drives the sweep and evaluates individual design points.
class Explorer {
public:
  explicit Explorer(ExploreOptions options = {});

  /// Evaluate one (cache, tiling) point of `kernel` by simulation.
  [[nodiscard]] DesignPoint evaluate(const Kernel& kernel,
                                     const CacheConfig& cache,
                                     std::uint32_t tiling = 1) const;

  /// Run the full MemExplore sweep over `kernel`.
  [[nodiscard]] ExplorationResult explore(const Kernel& kernel) const;

  /// Every (T, L, S, B) coordinate the configured ranges visit.
  [[nodiscard]] std::vector<ConfigKey> sweepKeys() const;

  [[nodiscard]] const ExploreOptions& options() const noexcept {
    return options_;
  }

private:
  /// Memoized Section-4.1 layout per (kernel, T, L, S, B); candidates are
  /// certified against the tiled traversal when one is supplied. Keyed by
  /// kernel name + cache label + tiling; not thread-safe.
  const MemoryLayout& layoutFor(const Kernel& kernel,
                                const CacheConfig& cache,
                                const Kernel* tiledProbe,
                                std::uint32_t tiling) const;

  ExploreOptions options_;
  CycleModel cycleModel_;
  mutable std::map<std::string, MemoryLayout> layoutCache_;
};

}  // namespace memx
