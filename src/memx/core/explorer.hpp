// The MemExplore algorithm (paper Section 1):
//
//   for on-chip memory size M (powers of 2)
//     for cache size T <= M
//       for line size L <= T
//         for set associativity S <= 8
//           for tiling size B <= T/L
//             estimate cycles C and energy E
//   select (T, L, S, B) maximizing performance under the given bounds.
//
// Every point is evaluated by trace-driven simulation of the (optionally
// tiled) kernel under the chosen off-chip layout, then run through the
// paper's cycle and energy models.
//
// The sweep hot path is trace-reusing and one-pass: the reference trace
// of a design point depends only on the tiling B and the memory layout,
// so explore() groups the (T, L, S, B) grid by (B, layout signature),
// generates each distinct trace once (cached in a TraceCache keyed like
// the layout memo), and evaluates every configuration of a group against
// the shared immutable trace in a single pass. Two backends exist for
// that pass: a MultiCacheSim bank (simulates every config; any policy)
// and StackDistSim (one stack-distance profile per line size serves all
// (T, S) at once; LRU/write-allocate only). SweepBackend::Auto picks
// StackDist whenever the run's policies allow it. Results are
// bit-identical to evaluating each point in isolation either way.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "memx/cachesim/cache_stats.hpp"
#include "memx/core/design_point.hpp"
#include "memx/energy/energy_model.hpp"
#include "memx/loopir/kernel.hpp"
#include "memx/loopir/memory_layout.hpp"
#include "memx/loopir/trace_gen.hpp"
#include "memx/timing/cycle_model.hpp"
#include "memx/trace/trace.hpp"

namespace memx {

namespace obs {
class Recorder;
}  // namespace obs

namespace search {
struct SearchOptions;
struct SearchResult;
}  // namespace search

/// Power-of-two sweep bounds of the MemExplore loops.
struct ExploreRanges {
  std::uint32_t onChipBytes = 1024;   ///< M: upper limit on cache size
  std::uint32_t minCacheBytes = 16;   ///< smallest T
  std::uint32_t maxCacheBytes = 1024; ///< largest T (clamped to M)
  std::uint32_t minLineBytes = 4;     ///< smallest L
  std::uint32_t maxLineBytes = 64;    ///< largest L (clamped to T)
  std::uint32_t maxAssociativity = 8; ///< largest S (paper caps at 8)
  std::uint32_t maxTiling = 16;       ///< largest B (clamped to T/L)
  bool sweepAssociativity = true;     ///< false => direct-mapped only
  bool sweepTiling = true;            ///< false => B = 1 only

  void validate() const;
};

/// How sweep groups evaluate their configurations against the shared
/// trace.
enum class SweepBackend : std::uint8_t {
  /// Pick per run: StackDist when the configured policies are in the
  /// stack-distance domain, MultiSim otherwise.
  Auto,
  /// Simulate every configuration (MultiCacheSim bank). Always exact,
  /// cost scales with the number of configurations.
  MultiSim,
  /// Stack-distance analysis (StackDistSim): one profile per line size
  /// serves every (T, S) at once. Exact for LRU/write-allocate under
  /// both write policies (dirty-stack accounting covers write-back); an
  /// Explorer constructed with this backend forced outside that domain
  /// throws.
  StackDist,
};

[[nodiscard]] std::string toString(SweepBackend backend);
/// Parse "auto" / "multisim" / "stackdist" (case-sensitive); throws
/// memx::ContractViolation on anything else.
[[nodiscard]] SweepBackend parseSweepBackend(const std::string& name);

/// Everything that parameterizes an exploration run.
struct ExploreOptions {
  ExploreRanges ranges;
  EnergyParams energy;
  TimingParams timing;
  /// Apply the Section-4.1 conflict-free off-chip assignment before
  /// simulating (the paper's "optimized" rows); false = tight layout.
  bool optimizeLayout = true;
  /// Measure Add_bs from the generated trace (Gray-coded) instead of
  /// using the analytic default of kDefaultAddrSwitchesPerAccess.
  bool measureBusActivity = true;
  /// Account write traffic in the energy metric (the paper's model is
  /// read-only; see CacheEnergyModel::totalIncludingWritesNj).
  bool includeWriteEnergy = false;
  WritePolicy writePolicy = WritePolicy::WriteBack;
  ReplacementPolicy replacement = ReplacementPolicy::LRU;
  /// Sweep evaluation engine; Auto resolves per run (see
  /// Explorer::resolvedBackend). Forcing StackDist with options outside
  /// its domain is rejected at Explorer construction.
  SweepBackend backend = SweepBackend::Auto;
};

/// Stable text form of the sweep bounds alone. Part of
/// canonicalExploreKey; exposed separately so the serve result store
/// can strip the bounds off a key and recognize covering-range cache
/// hits (a narrower request served from a wider cached sweep).
[[nodiscard]] std::string canonicalRangesKey(const ExploreRanges& ranges);

/// Stable text form of everything in `options` *except* the ranges:
/// energy and timing coefficients, layout/bus/write-energy flags,
/// policies, and the *resolved* backend (Auto collapses to what it
/// would pick, so an Auto run and the equivalent forced run share one
/// key). Equal model keys mean any sweep key visited by both runs gets
/// the bit-identical point.
[[nodiscard]] std::string canonicalModelKey(const ExploreOptions& options);

/// canonicalRangesKey + canonicalModelKey: everything in `options` that
/// determines a sweep's numerical output. Two option sets with equal
/// keys produce bit-identical results for the same workload — this is
/// the cache-key half of the serve result store. Locale-independent
/// (doubles via %.17g-equivalent round-trip formatting).
[[nodiscard]] std::string canonicalExploreKey(const ExploreOptions& options);

/// All evaluated points for one workload.
///
/// Thread-safety: concurrent find()/at()/buildIndex() calls on a shared
/// result are safe — the lazily built lookup index is guarded by a
/// shared mutex, so logically-const reads never race on its
/// construction (the serve result store hands one cached result to many
/// workers at once). Mutating `workload`/`points` (or calling
/// invalidateIndex()) still requires external synchronization, like any
/// non-const use.
struct ExplorationResult {
  std::string workload;
  std::vector<DesignPoint> points;

  ExplorationResult() = default;
  /// Copies and moves carry the data, not the index: the destination
  /// rebuilds lazily on first find(). (The index is position-relative,
  /// and dropping it keeps these members safe against concurrent
  /// lookups on the source.)
  ExplorationResult(const ExplorationResult& other);
  ExplorationResult& operator=(const ExplorationResult& other);
  ExplorationResult(ExplorationResult&& other) noexcept;
  ExplorationResult& operator=(ExplorationResult&& other) noexcept;

  /// Point with the given key; throws when the sweep did not visit it.
  [[nodiscard]] const DesignPoint& at(const ConfigKey& key) const;
  /// Point with the given key, if visited. Backed by a lazily built
  /// sorted index, so repeated lookups over a full sweep are O(log n)
  /// instead of a linear scan. Not noexcept: the rebuild allocates.
  /// When `points` only grew since the last lookup, the new tail is
  /// sorted and merged into the index instead of rebuilding it from
  /// scratch — incremental archives (searchPareto evaluates in many
  /// small batches) stay O(new + merge) per batch, not O(n log n).
  /// A full rebuild happens when invalidateIndex() was called, when
  /// `points` shrank, or when an indexed entry no longer matches its
  /// point (in-place key mutation is detected on lookup rather than
  /// silently returning the wrong point).
  [[nodiscard]] const DesignPoint* find(const ConfigKey& key) const;

  /// Precompute the lookup index now (idempotent). Publishers that
  /// share a result across threads call this once at publish time so
  /// every subsequent concurrent find() takes only the shared lock.
  void buildIndex() const;

  /// Declare the index stale after mutating `points` in place (for
  /// example rewriting a point's key). Size changes are picked up
  /// automatically; same-size mutations need this call so the next
  /// find() rebuilds instead of consulting stale entries.
  void invalidateIndex() noexcept;

  /// Full index rebuilds performed so far (diagnostic: a growing
  /// archive should append, not rebuild — see the regression test).
  [[nodiscard]] std::uint64_t indexRebuilds() const noexcept;
  /// Incremental merges of appended points into the index.
  [[nodiscard]] std::uint64_t indexAppends() const noexcept;

private:
  struct Lookup {
    const DesignPoint* point = nullptr;
    bool stale = false;  ///< an indexed entry no longer matches its point
  };

  /// True when the index mirrors `points` at the current generation.
  [[nodiscard]] bool indexCurrentLocked() const;
  /// Rebuild or append as appropriate; requires the unique lock.
  void refreshIndexLocked() const;
  void rebuildIndexLocked() const;
  /// Index only the points appended since the index was built and
  /// merge them in (requires a current index that is a prefix view).
  void appendToIndexLocked() const;
  [[nodiscard]] Lookup lookupLocked(const ConfigKey& key) const;

  /// Guards every index_* member below. find() takes it shared on the
  /// built-index fast path and exclusive to (re)build.
  mutable std::shared_mutex indexMutex_;
  /// (key, position) pairs sorted lexicographically; duplicate keys keep
  /// their points order so find() returns the first occurrence.
  mutable std::vector<std::pair<ConfigKey, std::size_t>> index_;
  /// Bumped by invalidateIndex(); the index remembers the generation it
  /// was built at and rebuilds on mismatch.
  std::uint64_t generation_ = 0;
  mutable std::uint64_t indexedGeneration_ = 0;
  mutable bool indexBuilt_ = false;
  mutable std::uint64_t indexRebuilds_ = 0;
  mutable std::uint64_t indexAppends_ = 0;
};

/// A sweep restructured for shared-trace evaluation: the key grid plus
/// its partition into trace groups. All keys of one group share a tiling
/// and a memory layout, hence one reference trace. Group layout pointers
/// alias the owning Explorer's layout memo: a plan stays valid until
/// that Explorer is destroyed or clearCaches() is called. Plans carry
/// the layout-memo generation they were stamped with at planSweep time;
/// using a group after clearCaches() fails the generation check with a
/// ContractViolation instead of dereferencing a dangling layout.
struct SweepPlan {
  struct Group {
    /// Tiling applied to the loop nest for this group's trace (1 when
    /// the kernel is too shallow to tile, whatever B the keys carry).
    std::uint32_t traceTiling = 1;
    /// Kernel + tiling + layout-signature key of the shared trace.
    std::string traceKey;
    const MemoryLayout* layout = nullptr;
    std::vector<std::size_t> keyIndices;  ///< indices into `keys`
    /// Layout-memo generation at planning time; checked by
    /// buildGroupTrace/evaluateGroup against the owning Explorer.
    std::uint64_t generation = 0;
    /// Evaluation engine resolved at planSweep time (never Auto).
    SweepBackend backend = SweepBackend::MultiSim;
  };

  std::vector<ConfigKey> keys;
  std::vector<Group> groups;
  std::uint64_t generation = 0;  ///< same stamp, plan-level
};

/// Drives the sweep and evaluates individual design points.
class Explorer {
public:
  /// Layout-independent access patterns memoized per trace tiling.
  /// Thread-confined: the parallel explorer gives each worker its own.
  using PatternCache = std::map<std::uint32_t, AccessPattern>;

  explicit Explorer(ExploreOptions options = {});

  /// Evaluate one (cache, tiling) point of `kernel` by simulation. This
  /// is the reference per-point path: it regenerates the trace on every
  /// call (the sweep entry points below share traces instead).
  [[nodiscard]] DesignPoint evaluate(const Kernel& kernel,
                                     const CacheConfig& cache,
                                     std::uint32_t tiling = 1) const;

  /// Run the full MemExplore sweep over `kernel` on the shared-trace
  /// one-pass engine. Bit-identical to calling evaluate() per sweep key.
  [[nodiscard]] ExplorationResult explore(const Kernel& kernel) const;

  /// Multi-objective NSGA-II search over the joint design space,
  /// returning a Pareto front over (energy, cycles, size) instead of a
  /// grid of points. By default the space is this explorer's own
  /// single-level (T, L, S, B) range with its configured policies and
  /// layout choice; SearchOptions::space widens it to joint
  /// policy/layout/L2 spaces. Evaluations route through the same
  /// planSweep machinery as explore(), so fronts are bit-identical
  /// across sweep backends and deterministic per seed. Defined in
  /// memx/search (link memx_search or the umbrella `memx` target).
  [[nodiscard]] search::SearchResult searchPareto(
      const Kernel& kernel, const search::SearchOptions& options) const;

  /// Every (T, L, S, B) coordinate the configured ranges visit.
  [[nodiscard]] std::vector<ConfigKey> sweepKeys() const;

  /// Partition `keys` into trace groups (computing and memoizing the
  /// layouts). Serial; the returned plan can then be evaluated group by
  /// group, concurrently if desired.
  [[nodiscard]] SweepPlan planSweep(const Kernel& kernel,
                                    std::vector<ConfigKey> keys) const;

  /// Generate (or fetch from `patterns`) the access pattern behind
  /// `group` and materialize its trace. Pure apart from `patterns`;
  /// safe to call concurrently with distinct pattern caches.
  [[nodiscard]] Trace buildGroupTrace(const Kernel& kernel,
                                      const SweepPlan::Group& group,
                                      PatternCache& patterns) const;

  /// Evaluate every key of `group` against its shared trace in one
  /// MultiCacheSim pass, writing results into `out` at the keys'
  /// positions. Touches no mutable Explorer state (thread-safe).
  void evaluateGroup(const SweepPlan::Group& group, const Trace& trace,
                     double addrActivity,
                     const std::vector<ConfigKey>& keys,
                     std::vector<DesignPoint>& out) const;

  /// True iff the configured policies are in the analytic domain:
  /// LRU, FIFO or TreePLRU replacement (configFor always uses
  /// write-allocate fills); only Random must simulate. Write policy
  /// and includeWriteEnergy are unrestricted — each profile's dirty
  /// accounting yields exact write-back writeback counts, so
  /// write-energy sweeps stay analytic too.
  [[nodiscard]] bool stackDistEligible() const noexcept;

  /// The engine sweeps will actually use: Auto resolves to StackDist
  /// when eligible, else MultiSim; explicit choices pass through.
  [[nodiscard]] SweepBackend resolvedBackend() const noexcept;

  /// Add_bs for `trace` under the configured measurement option.
  [[nodiscard]] double addrActivityFor(const Trace& trace) const;

  /// CacheConfig for a sweep key with this run's policies applied.
  [[nodiscard]] CacheConfig configFor(const ConfigKey& key) const;

  /// Drop the memoized layouts and traces and bump the cache
  /// generation: outstanding SweepPlans become stale and every
  /// buildGroupTrace/evaluateGroup call on them throws a
  /// ContractViolation (re-plan with planSweep() to continue). The
  /// caches only ever grow otherwise; see traceCacheBytes() for the
  /// footprint.
  void clearCaches() noexcept;

  /// Approximate heap footprint of the trace cache in bytes.
  [[nodiscard]] std::size_t traceCacheBytes() const noexcept;

  /// Attach an observability recorder (nullptr detaches). Not owned;
  /// must outlive every exploration call made through this Explorer.
  /// With no recorder attached every instrumentation site reduces to a
  /// single null check; results are bit-identical either way.
  void setRecorder(obs::Recorder* recorder) noexcept {
    recorder_ = recorder;
  }
  [[nodiscard]] obs::Recorder* recorder() const noexcept {
    return recorder_;
  }

  [[nodiscard]] const ExploreOptions& options() const noexcept {
    return options_;
  }

private:
  /// Memoized Section-4.1 layout per (kernel, T, L, S, B); candidates are
  /// certified against the tiled traversal when one is supplied. Keyed by
  /// kernel name + cache label + tiling; not thread-safe.
  const MemoryLayout& layoutFor(const Kernel& kernel,
                                const CacheConfig& cache,
                                const Kernel* tiledProbe,
                                std::uint32_t tiling) const;

  /// A shared immutable trace plus its measured bus activity.
  struct TraceEntry {
    Trace trace;
    double addrActivity = 0.0;
  };

  /// Memoized trace per SweepPlan::Group::traceKey (serial use only;
  /// the parallel explorer materializes worker-local traces instead).
  const TraceEntry& traceFor(const Kernel& kernel,
                             const SweepPlan::Group& group,
                             PatternCache& patterns) const;

  /// Fold simulated stats into a DesignPoint via the paper's cycle and
  /// energy models (the shared tail of both evaluation paths).
  [[nodiscard]] DesignPoint makePoint(const CacheConfig& config,
                                      std::uint32_t tiling,
                                      const CacheStats& stats,
                                      double addBs) const;

  ExploreOptions options_;
  CycleModel cycleModel_;
  obs::Recorder* recorder_ = nullptr;
  mutable std::map<std::string, MemoryLayout> layoutCache_;
  mutable std::map<std::string, TraceEntry> traceCache_;
  /// Bumped by clearCaches(); plans stamped with an older generation
  /// are rejected before their dangling layout pointers can be read.
  mutable std::uint64_t cacheGeneration_ = 0;
};

}  // namespace memx
