#include "memx/core/design_point.hpp"

#include <sstream>

namespace memx {

std::string ConfigKey::label() const {
  std::ostringstream os;
  os << 'C' << cacheBytes << 'L' << lineBytes;
  if (associativity > 1) os << 'S' << associativity;
  if (tiling > 1) os << 'B' << tiling;
  return os.str();
}

CacheConfig DesignPoint::cacheConfig() const {
  CacheConfig c;
  c.sizeBytes = key.cacheBytes;
  c.lineBytes = key.lineBytes;
  c.associativity = key.associativity;
  return c;
}

}  // namespace memx
