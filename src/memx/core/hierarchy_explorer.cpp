#include "memx/core/hierarchy_explorer.hpp"

#include <sstream>

#include "memx/cachesim/bus_monitor.hpp"
#include "memx/energy/energy_model.hpp"
#include "memx/obs/recorder.hpp"
#include "memx/util/assert.hpp"
#include "memx/util/bits.hpp"
#include "memx/util/pow2_range.hpp"

namespace memx {

std::string HierarchyPoint::label() const {
  std::ostringstream os;
  os << "L1:" << l1.label() << "+L2:" << l2.label();
  return os.str();
}

void HierarchyRanges::validate() const {
  MEMX_EXPECTS(isPow2(minL1Bytes) && isPow2(maxL1Bytes) &&
                   isPow2(minL2Bytes) && isPow2(maxL2Bytes) &&
                   isPow2(l1LineBytes) && isPow2(l2LineBytes) &&
                   isPow2(l2Associativity),
               "hierarchy sweep bounds must be powers of two");
  MEMX_EXPECTS(minL1Bytes <= maxL1Bytes && minL2Bytes <= maxL2Bytes,
               "hierarchy ranges inverted");
  MEMX_EXPECTS(l1LineBytes <= l2LineBytes,
               "L2 lines must be at least L1 lines");
}

HierarchyPoint evaluateHierarchyPoint(const Trace& trace,
                                      const CacheConfig& l1,
                                      const CacheConfig& l2,
                                      const EnergyParams& energy,
                                      const HierarchyTiming& timing) {
  return evaluateHierarchyPoint(trace, l1, l2, energy, timing,
                                measureAddrActivity(trace));
}

HierarchyPoint evaluateHierarchyPoint(const Trace& trace,
                                      const CacheConfig& l1,
                                      const CacheConfig& l2,
                                      const EnergyParams& energy,
                                      const HierarchyTiming& timing,
                                      double addBs) {
  CacheHierarchy stack(l1, l2);
  stack.run(trace);
  const HierarchyStats& s = stack.stats();

  const CacheEnergyModel l1Model(l1, energy, addBs);
  const CacheEnergyModel l2Model(l2, energy, addBs);

  HierarchyPoint point;
  point.l1 = l1;
  point.l2 = l2;
  point.l1MissRate = s.l1.missRate();
  point.globalMissRate = s.globalMissRate();
  point.cycles = timing.cycles(s);
  // Every access reads the L1 array; L1 misses read the L2 array; L2
  // misses pay the L2 line's I/O + main-memory cost.
  point.energyNj =
      static_cast<double>(s.l1.accesses()) * l1Model.hitEnergyNj() +
      static_cast<double>(s.l2.accesses()) * l2Model.hitEnergyNj() +
      static_cast<double>(s.l2.misses()) *
          (l2Model.ioEnergyNj() + l2Model.mainEnergyNj());
  return point;
}

std::vector<HierarchyPoint> exploreHierarchy(const Trace& trace,
                                             const HierarchyRanges& ranges,
                                             const EnergyParams& energy,
                                             const HierarchyTiming& timing,
                                             obs::Recorder* recorder) {
  const obs::ScopedSpan span(recorder, "exploreHierarchy");
  ranges.validate();
  // One trace walk for the bus activity; every point below reuses it.
  const double addBs = measureAddrActivity(trace);
  std::vector<HierarchyPoint> points;
  for (const std::uint64_t s1 :
       pow2Range(ranges.minL1Bytes, ranges.maxL1Bytes)) {
    for (const std::uint64_t s2 :
         pow2Range(ranges.minL2Bytes, ranges.maxL2Bytes)) {
      if (s2 < s1) continue;
      CacheConfig l1;
      l1.sizeBytes = static_cast<std::uint32_t>(s1);
      l1.lineBytes = ranges.l1LineBytes;
      CacheConfig l2;
      l2.sizeBytes = static_cast<std::uint32_t>(s2);
      l2.lineBytes = ranges.l2LineBytes;
      l2.associativity = ranges.l2Associativity;
      const obs::ScopedSpan pointSpan(recorder, "hierarchy.point");
      points.push_back(
          evaluateHierarchyPoint(trace, l1, l2, energy, timing, addBs));
    }
  }
  if (recorder != nullptr) {
    recorder->counter("hierarchy.points").add(points.size());
    recorder->counter("hierarchy.accesses")
        .add(trace.size() * points.size());
  }
  return points;
}

}  // namespace memx
