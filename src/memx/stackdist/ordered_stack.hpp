// Ordered LRU stack with O(log U) distance queries — the engine behind
// Mattson-style stack-distance analysis (Mattson et al. 1970).
//
// The naive formulation keeps the LRU stack as a list and finds each
// accessed line by a linear walk: O(n * uniqueLines) over a trace. This
// implementation keeps only each line's *last-touch position* in a hash
// map and marks those positions in a Fenwick tree, so the stack distance
// of a touch — the number of distinct lines touched since the previous
// touch of the same line — is one prefix-sum query: O(log U) amortized
// per touch, O(uniqueLines) space. Positions grow monotonically and are
// compacted in place when the tree would outgrow twice the number of
// live lines, which is what keeps the tree (and the log factor) sized by
// U rather than by the trace length.
//
// Header-only on purpose: memx_trace's ReuseProfile builds on this
// engine while memx_stackdist's all-associativity profile builds on
// Trace, and a header-only core keeps that dependency edge one-way.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace memx {

/// Distance reported for a first touch (cold miss): no previous access,
/// so the distance is infinite.
inline constexpr std::uint64_t kColdDistance = ~std::uint64_t{0};

/// LRU recency order over an unbounded universe of line ids.
class OrderedStack {
public:
  /// `initialCapacity` sizes the first Fenwick tree; tests shrink it to
  /// force compactions early, production code keeps the default.
  explicit OrderedStack(std::size_t initialCapacity = 64)
      : capacity_(std::max<std::size_t>(initialCapacity, 2)) {
    tree_.assign(capacity_ + 1, 0);
  }

  /// Move `line` to the top of the stack and return its previous stack
  /// distance: 0 for a re-access of the most recently used line,
  /// kColdDistance for a first touch.
  std::uint64_t touch(std::uint64_t line) {
    const auto it = last_.find(line);
    std::uint64_t distance = kColdDistance;
    if (it != last_.end()) {
      const std::size_t prev = it->second;
      // Lines above `line` in the stack are exactly the marked
      // positions greater than its own: total marks minus the prefix
      // through `prev` (which includes `prev` itself).
      distance =
          static_cast<std::uint64_t>(last_.size()) - prefixThrough(prev);
      add(prev, -1);
      last_.erase(it);
    }
    if (next_ == capacity_) compact();
    const std::size_t pos = next_++;
    add(pos, +1);
    last_.emplace(line, pos);
    return distance;
  }

  /// Number of distinct lines touched so far.
  [[nodiscard]] std::uint64_t uniqueLines() const noexcept {
    return static_cast<std::uint64_t>(last_.size());
  }

private:
  void add(std::size_t pos, std::int64_t delta) {
    for (std::size_t x = pos + 1; x <= capacity_; x += x & (~x + 1)) {
      tree_[x] += delta;
    }
  }

  /// Number of marked positions in [0, pos].
  [[nodiscard]] std::uint64_t prefixThrough(std::size_t pos) const {
    std::int64_t sum = 0;
    for (std::size_t x = pos + 1; x > 0; x -= x & (~x + 1)) {
      sum += tree_[x];
    }
    return static_cast<std::uint64_t>(sum);
  }

  /// Reassign the live positions to 0..U-1 (preserving order) and
  /// rebuild the tree at capacity 2(U+1). Amortized: at least half the
  /// capacity's worth of touches happen between compactions.
  void compact() {
    std::vector<std::pair<std::size_t, std::uint64_t>> order;
    order.reserve(last_.size());
    for (const auto& [line, pos] : last_) order.emplace_back(pos, line);
    std::sort(order.begin(), order.end());
    capacity_ = std::max<std::size_t>(capacity_, 2 * (order.size() + 1));
    tree_.assign(capacity_ + 1, 0);
    next_ = 0;
    for (const auto& [pos, line] : order) {
      last_[line] = next_;
      add(next_, +1);
      ++next_;
    }
  }

  std::unordered_map<std::uint64_t, std::uint64_t> last_;
  std::vector<std::int64_t> tree_;  ///< Fenwick tree, 1-based
  std::size_t next_ = 0;            ///< next free position
  std::size_t capacity_ = 0;        ///< positions the tree covers
};

}  // namespace memx
